(* wmark — query-preserving watermarking from the command line.

   Relational instances travel in the Textio format (see
   lib/relational/textio.mli); XML documents as plain XML.  Queries are
   written in the formula syntax of Wm_logic.Parser, XML patterns in the
   Wm_xml.Pattern syntax.

     wmark gen-travel --travels 50 --transports 120 -o db.txt
     wmark info db.txt -q "Route(u,v)"
     wmark mark db.txt -q "Route(u,v)" --message 11 --bits 5 -o marked.txt
     wmark detect db.txt marked.txt -q "Route(u,v)" --bits 5
     wmark update db.txt --edits script.txt -q "Route(u,v)" -o edited.txt
     wmark perturb marked.txt -q "Route(u,v)" --kind flips --count 5 -o att.txt
     wmark perturb marked.txt -q "Route(u,v)" --kind delete --fraction 0.2 -o att.txt
     wmark attack db.txt -q "Route(u,v)" --bits 4 --redundancy 5 --csv grid.csv
     wmark attack --jobs 4 --json grid.json   # generated workload, 4 domains
     wmark attack --stats --trace-json trace.json   # counters + trace spans
     wmark capacity small.txt -q "E(u,v)" --cond le --d 1
     wmark gen-school --students 40 -o school.xml
     wmark xml-mark school.xml -p "school/student[firstname=$a]/exam" \
       --message 5 --bits 4 -o marked.xml
     wmark xml-detect school.xml marked.xml -p "..." --bits 4 *)

open Qpwm
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments *)

let query_term =
  let doc = "Parametric query formula, e.g. 'Route(u,v)'." in
  Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"FORMULA" ~doc)

let params_term =
  let doc = "Comma-separated parameter variables." in
  Arg.(value & opt string "u" & info [ "params" ] ~docv:"VARS" ~doc)

let results_term =
  let doc = "Comma-separated result variables." in
  Arg.(value & opt string "v" & info [ "results" ] ~docv:"VARS" ~doc)

let rho_term =
  let doc = "Locality rank (default: Gaifman bound of the formula)." in
  Arg.(value & opt (some int) (Some 1) & info [ "rho" ] ~docv:"RHO" ~doc)

let epsilon_term =
  let doc = "Distortion parameter: global budget is ceil(1/epsilon)." in
  Arg.(value & opt float 1.0 & info [ "epsilon" ] ~docv:"EPS" ~doc)

let seed_term =
  let doc = "PRNG seed (scheme preparation is deterministic per seed)." in
  Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_term =
  let doc =
    "Worker domains for the parallel sections (type indexing, detection, \
     the attack grid).  Default: $(b,WMARK_JOBS) or the machine's \
     recommended domain count; 1 forces sequential execution.  Results \
     are identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let set_jobs = function
  | Some j when j < 1 ->
      failwith (Printf.sprintf "--jobs %d: must be a positive worker count" j)
  | Some _ as j -> Par.set_jobs j
  | None -> ()

let width_term =
  let doc =
    "Bounded-width typing fast path (DESIGN.md 5.14): spheres whose \
     min-degree tree decomposition has width at most $(docv) are typed by \
     canonical decomposition codes instead of per-tuple isomorphism preps; \
     wider spheres fall back to the generic path.  0 forces the generic \
     path; default: $(b,WMARK_WIDTH_BOUND) or off.  Results are \
     bit-identical for every value ($(b,wmark info) prints the per-sphere \
     max width to bound against)."
  in
  Arg.(value & opt (some int) None & info [ "width-bound" ] ~docv:"K" ~doc)

let set_width_bound = function
  | Some k when k < 0 ->
      failwith
        (Printf.sprintf "--width-bound %d: must be a nonnegative width" k)
  | Some _ as k -> Neighborhood.set_width_bound k
  | None -> ()

let stats_term =
  let doc =
    "Collect counters/timers while running and print the table afterwards \
     (same as setting $(b,WMARK_STATS=1))."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let trace_term =
  let doc =
    "Write the full observability snapshot — counters, timers and trace \
     spans — as qpwm-trace/1 JSON to $(docv).  Implies collection."
  in
  Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc)

(* Run [f] with collection on when requested; report afterwards even if
   [f] raises, so a failing run still shows where the time went. *)
let with_obs ~stats ~trace f =
  if stats || trace <> None then Obs.set_enabled true;
  let report () =
    if stats || trace <> None then begin
      let snap = Obs.snapshot () in
      if stats then print_string (Obs_report.render snap);
      match trace with
      | None -> ()
      | Some out ->
          Json.to_file out (Obs_report.trace_json snap);
          Printf.printf "wrote %s\n" out
    end
  in
  Fun.protect ~finally:report f

let out_term =
  let doc = "Output file." in
  Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let bits_term =
  let doc = "Message length in bits." in
  Arg.(required & opt (some int) None & info [ "bits" ] ~docv:"N" ~doc)

let message_term =
  let doc = "Message as a non-negative integer." in
  Arg.(required & opt (some int) None & info [ "m"; "message" ] ~docv:"N" ~doc)

let pattern_term =
  let doc = "XML pattern, e.g. 'school/student[firstname=\\$a]/exam'." in
  Arg.(required & opt (some string) None & info [ "p"; "pattern" ] ~docv:"PATTERN" ~doc)

let split_commas s = String.split_on_char ',' s |> List.map String.trim

let parse_query ~query ~params ~results =
  Parser.query_of_string ~params:(split_commas params)
    ~results:(split_commas results) query

let prepare_scheme file ~query ~params ~results ~rho ~epsilon ~seed =
  let ws = Textio.load file in
  let q = parse_query ~query ~params ~results in
  let options = { Local_scheme.seed; rho; epsilon; selection = `Greedy } in
  match Local_scheme.prepare ~options ws q with
  | Ok scheme -> (ws, q, scheme)
  | Error e -> failwith ("prepare: " ^ e)

let handle f =
  try f (); 0
  with
  | Failure m | Invalid_argument m | Sys_error m ->
      Printf.eprintf "wmark: %s\n" m;
      1
  | Wm_relational.Textio.Format_error m ->
      Printf.eprintf "wmark: bad input file: %s\n" m;
      1
  | Wm_logic.Parser.Error m ->
      Printf.eprintf "wmark: bad formula: %s\n" m;
      1
  | Wm_xml.Pattern.Parse_error m ->
      Printf.eprintf "wmark: bad pattern: %s\n" m;
      1
  | Wm_xml.Xml.Parse_error m ->
      Printf.eprintf "wmark: bad XML: %s\n" m;
      1
  | Not_found ->
      Printf.eprintf "wmark: internal lookup failed (malformed input?)\n";
      1
  | e ->
      Printf.eprintf "wmark: %s\n" (Printexc.to_string e);
      1

(* ------------------------------------------------------------------ *)
(* info *)

let info_cmd =
  let run file query params results rho epsilon seed jobs width stats trace =
    handle @@ fun () ->
    set_jobs jobs;
    set_width_bound width;
    with_obs ~stats ~trace @@ fun () ->
    let ws, _, scheme =
      prepare_scheme file ~query ~params ~results ~rho ~epsilon ~seed
    in
    let r = Local_scheme.report scheme in
    Printf.printf "gaifman degree : %d\n" r.Local_scheme.degree;
    Printf.printf "locality rank  : %d\n" r.Local_scheme.rho;
    Printf.printf "types (ntp)    : %d\n" r.Local_scheme.ntp;
    Printf.printf "active |W|     : %d\n" r.Local_scheme.active;
    Printf.printf "pairs          : %d available, %d selected\n"
      r.Local_scheme.pairs_available r.Local_scheme.pairs_selected;
    Printf.printf "capacity       : %d bits\n" r.Local_scheme.pairs_selected;
    Printf.printf "budget         : %d (certified max distortion %d)\n"
      r.Local_scheme.budget r.Local_scheme.max_split;
    (* Width survey for the bounded-width fast path: the instance-level
       heuristic treewidth, and the max over the per-sphere decompositions
       the fast path actually probes — any --width-bound at or above the
       latter routes every sphere through the decomposition codes. *)
    let g = ws.Weighted.graph in
    Printf.printf "treewidth      : <= %d (min-degree heuristic)\n"
      (Treewidth.heuristic_width g);
    Printf.printf
      "sphere width   : max %d at rho %d (use --width-bound >= this to \
       bypass iso typing)\n"
      (Neighborhood.max_sphere_width g ~rho:r.Local_scheme.rho)
      r.Local_scheme.rho
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "info" ~doc:"Report a scheme's capacity and certificates.")
    Term.(
      const run $ file $ query_term $ params_term $ results_term $ rho_term
      $ epsilon_term $ seed_term $ jobs_term $ width_term $ stats_term
      $ trace_term)

(* mark *)

let mark_cmd =
  let run file query params results rho epsilon seed jobs width stats trace
      message bits out =
    handle @@ fun () ->
    set_jobs jobs;
    set_width_bound width;
    with_obs ~stats ~trace @@ fun () ->
    let ws, _, scheme =
      prepare_scheme file ~query ~params ~results ~rho ~epsilon ~seed
    in
    if bits > Local_scheme.capacity scheme then
      failwith
        (Printf.sprintf "message needs %d bits, capacity is %d" bits
           (Local_scheme.capacity scheme));
    let m = Codec.of_int ~bits message in
    let marked = Local_scheme.mark scheme m ws.Weighted.weights in
    Textio.save out { ws with Weighted.weights = marked };
    Printf.printf "embedded %d (%d bits) into %s\n" message bits out
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "mark" ~doc:"Embed a message into a weighted structure.")
    Term.(
      const run $ file $ query_term $ params_term $ results_term $ rho_term
      $ epsilon_term $ seed_term $ jobs_term $ width_term $ stats_term
      $ trace_term $ message_term $ bits_term $ out_term)

(* detect *)

let detect_cmd =
  let run original suspect query params results rho epsilon seed jobs width
      stats trace bits =
    handle @@ fun () ->
    set_jobs jobs;
    set_width_bound width;
    with_obs ~stats ~trace @@ fun () ->
    let ws, _, scheme =
      prepare_scheme original ~query ~params ~results ~rho ~epsilon ~seed
    in
    let sus = Textio.load suspect in
    let decoded =
      Local_scheme.detect_weights scheme ~original:ws.Weighted.weights
        ~suspect:sus.Weighted.weights ~length:bits
    in
    Printf.printf "decoded: %d (bits %s)\n" (Codec.to_int decoded)
      (Format.asprintf "%a" Bitvec.pp decoded)
  in
  let original = Arg.(required & pos 0 (some file) None & info [] ~docv:"ORIGINAL") in
  let suspect = Arg.(required & pos 1 (some file) None & info [] ~docv:"SUSPECT") in
  Cmd.v
    (Cmd.info "detect" ~doc:"Read a mark back from a suspect copy.")
    Term.(
      const run $ original $ suspect $ query_term $ params_term $ results_term
      $ rho_term $ epsilon_term $ seed_term $ jobs_term $ width_term
      $ stats_term $ trace_term $ bits_term)

(* update — apply an edit script, reindex incrementally, report the
   Theorem 7/8 keep-vs-remark decision *)

let update_cmd =
  let run file edits_path query params results rho epsilon seed jobs width
      stats trace out =
    handle @@ fun () ->
    set_jobs jobs;
    set_width_bound width;
    with_obs ~stats ~trace @@ fun () ->
    let ws, q, scheme =
      prepare_scheme file ~query ~params ~results ~rho ~epsilon ~seed
    in
    let edits =
      let ic = open_in edits_path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          Textio.edits_of_string
            (really_input_string ic (in_channel_length ic)))
    in
    let edited, dirty = Structure.apply_edits ws.Weighted.graph edits in
    let n' = Structure.size edited in
    (* weights of removed elements disappear with them *)
    let weights' =
      List.fold_left
        (fun w (t, v) ->
          if Array.for_all (fun x -> x >= 0 && x < n') t then Weighted.set w t v
          else w)
        (Weighted.create
           ~default:(Weighted.default ws.Weighted.weights)
           (Weighted.arity ws.Weighted.weights))
        (Weighted.bindings ws.Weighted.weights)
    in
    let ws' = Weighted.make edited weights' in
    match Local_scheme.update scheme ~old:ws ws' q ~dirty with
    | Error e -> failwith ("update: " ^ e)
    | Ok scheme' ->
        let r = Local_scheme.report scheme in
        let r' = Local_scheme.report scheme' in
        let decision =
          Incremental.update_decision_ix ~old_graph:ws.Weighted.graph
            ~old_index:(Local_scheme.index scheme) ~new_graph:edited
            ~new_index:(Local_scheme.index scheme')
        in
        Printf.printf "edits          : %d (%d dirty elements)\n"
          (List.length edits) (List.length dirty);
        Printf.printf "universe       : %d -> %d elements\n"
          (Structure.size ws.Weighted.graph)
          n';
        Printf.printf "types (ntp)    : %d -> %d\n" r.Local_scheme.ntp
          r'.Local_scheme.ntp;
        Printf.printf "capacity       : %d -> %d bits\n"
          (Local_scheme.capacity scheme)
          (Local_scheme.capacity scheme');
        Printf.printf "decision       : %s\n"
          (match decision with
          | `Keep_mark ->
              "keep mark (type-preserving update, Theorem 7: marks propagate)"
          | `Remark_required ->
              "re-mark required (a neighborhood type appeared or vanished, \
               Theorem 8)");
        match out with
        | None -> ()
        | Some o ->
            Textio.save o ws';
            Printf.printf "wrote %s\n" o
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let edits =
    let doc = "Edit script (see the Textio edit-script format)." in
    Arg.(required & opt (some file) None & info [ "edits" ] ~docv:"SCRIPT" ~doc)
  in
  let out =
    let doc = "Write the edited weighted structure to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:
         "Apply an edit script to a prepared instance, maintain the \
          neighborhood index incrementally (Gaifman locality), and report \
          whether the mark survives (Theorem 7) or a re-mark is needed \
          (Theorem 8).")
    Term.(
      const run $ file $ edits $ query_term $ params_term $ results_term
      $ rho_term $ epsilon_term $ seed_term $ jobs_term $ width_term
      $ stats_term $ trace_term $ out)

(* capacity *)

let capacity_cmd =
  let run file query params results cond d =
    handle @@ fun () ->
    let ws = Textio.load file in
    let q = parse_query ~query ~params ~results in
    let qs = Query_system.of_relational ws.Weighted.graph q in
    let condition =
      match cond with
      | "le" -> Capacity.Max_le d
      | "eq" -> Capacity.Max_eq d
      | "alleq" -> Capacity.All_eq d
      | c -> failwith ("unknown condition " ^ c)
    in
    Printf.printf "#Mark(%s %d) = %d\n" cond d (Capacity.count qs condition)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let cond =
    Arg.(value & opt string "le" & info [ "cond" ] ~docv:"le|eq|alleq")
  in
  let d = Arg.(value & opt int 1 & info [ "d" ] ~docv:"D") in
  Cmd.v
    (Cmd.info "capacity"
       ~doc:"Count exact watermarking capacity (#P-hard; small inputs).")
    Term.(const run $ file $ query_term $ params_term $ results_term $ cond $ d)

(* perturb — apply one attack, weight-level or structural, to a copy *)

let perturb_cmd =
  let run file query params results kind amplitude count fraction seed out =
    handle @@ fun () ->
    let ws = Textio.load file in
    let g = Prng.create seed in
    let weights a =
      let q = parse_query ~query ~params ~results in
      let qs = Query_system.of_relational ws.Weighted.graph q in
      let attacked =
        Adversary.apply g a ~active:(Query_system.active qs)
          ws.Weighted.weights
      in
      Textio.save out { ws with Weighted.weights = attacked };
      Printf.printf "%s: spent global budget %d, wrote %s\n"
        (Adversary.describe a)
        (Distortion.global qs ws.Weighted.weights attacked)
        out
    in
    let structural a =
      let attacked = Adversary.apply_structural g a ws in
      Textio.save out attacked;
      Printf.printf "%s: %d -> %d elements, wrote %s\n"
        (Adversary.describe_structural a)
        (Structure.size ws.Weighted.graph)
        (Structure.size attacked.Weighted.graph)
        out
    in
    match kind with
    | "noise" -> weights (Adversary.Uniform_noise { amplitude })
    | "flips" -> weights (Adversary.Random_flips { count; amplitude })
    | "rounding" -> weights (Adversary.Rounding { multiple = max 1 amplitude })
    | "offset" -> weights (Adversary.Constant_offset { delta = amplitude })
    | "delete" -> structural (Adversary.Delete_tuples { fraction })
    | "sample" -> structural (Adversary.Subset_sample { keep = fraction })
    | "insert" -> structural (Adversary.Insert_noise_tuples { count; amplitude })
    | "shuffle" -> structural Adversary.Shuffle_universe
    | k -> failwith ("unknown attack " ^ k)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let kind =
    Arg.(
      value & opt string "flips"
      & info [ "kind" ]
          ~docv:"noise|flips|rounding|offset|delete|sample|insert|shuffle")
  in
  let amplitude = Arg.(value & opt int 1 & info [ "amplitude" ] ~docv:"A") in
  let count = Arg.(value & opt int 5 & info [ "count" ] ~docv:"N") in
  let fraction =
    Arg.(value & opt float 0.2 & info [ "fraction" ] ~docv:"F")
  in
  Cmd.v
    (Cmd.info "perturb"
       ~doc:
         "Apply one adversarial distortion — weight-level or structural — \
          to a copy.")
    Term.(
      const run $ file $ query_term $ params_term $ results_term $ kind
      $ amplitude $ count $ fraction $ seed_term $ out_term)

(* attack — the full survivability grid *)

let attack_cmd =
  let run file query params results rho epsilon seed jobs width stats trace
      bits redundancies csv json only =
    handle @@ fun () ->
    set_jobs jobs;
    set_width_bound width;
    with_obs ~stats ~trace @@ fun () ->
    let ws, workload =
      match file with
      | Some f -> (Textio.load f, f)
      | None ->
          ( Random_struct.travel (Prng.create seed) ~travels:100 ~transports:400,
            "generated travel database (100 travels, 400 transports)" )
    in
    let q = parse_query ~query ~params ~results in
    let options = { Local_scheme.seed; rho; epsilon; selection = `Greedy } in
    let redundancies = if redundancies = [] then [ 1; 3; 5 ] else redundancies in
    let only = if only = [] then None else Some only in
    match
      Attack_suite.run ~options ~seed ~redundancies ~message_bits:bits ?only
        ~workload ws q
    with
    | Error e -> failwith e
    | Ok report ->
        print_string (Attack_suite.render report);
        (match csv with
        | None -> ()
        | Some out ->
            let oc = open_out out in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (Attack_suite.to_csv report));
            Printf.printf "wrote %s\n" out);
        (match json with
        | None -> ()
        | Some out ->
            Json.to_file out (Attack_suite.to_json report);
            Printf.printf "wrote %s\n" out)
  in
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE") in
  let query_dflt =
    let doc = "Query to preserve (default the travel workload's Route)." in
    Arg.(value & opt string "Route(u,v)" & info [ "q"; "query" ] ~docv:"FORMULA" ~doc)
  in
  let bits = Arg.(value & opt int 4 & info [ "bits" ] ~docv:"N") in
  let redundancies =
    let doc = "Redundancy factor; repeatable (default 1, 3 and 5)." in
    Arg.(value & opt_all int [] & info [ "redundancy" ] ~docv:"R" ~doc)
  in
  let csv =
    let doc = "Also write the grid as CSV to $(docv)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let json =
    let doc = "Also write the grid as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let only =
    let doc =
      "Replay only the listed grid cell index; repeatable.  Cells keep \
       the PRNG of their grid position (reported as grid_index/cell_seed \
       in the CSV, JSON and trace spans), so the replayed numbers are \
       identical to the full sweep's."
    in
    Arg.(value & opt_all int [] & info [ "only" ] ~docv:"INDEX" ~doc)
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:
         "Run the deterministic attack-survivability grid: mark, attack \
          (weight-level and structural), realign, detect, repair, \
          re-detect.")
    Term.(
      const run $ file $ query_dflt $ params_term $ results_term $ rho_term
      $ epsilon_term $ seed_term $ jobs_term $ width_term $ stats_term
      $ trace_term $ bits $ redundancies $ csv $ json $ only)

(* ------------------------------------------------------------------ *)
(* fingerprint / trace — multi-recipient marking and traitor tracing *)

let master_term =
  let doc = "Master fingerprinting key; per-recipient keys derive from it." in
  Arg.(value & opt int 0xF1D0 & info [ "master" ] ~docv:"KEY" ~doc)

let fp_length_term =
  let doc = "Codeword length in bits (default min 128 capacity)." in
  Arg.(value & opt (some int) None & info [ "length" ] ~docv:"N" ~doc)

let fp_times_term =
  let doc = "Codeword repetitions (default the largest odd fit)." in
  Arg.(value & opt (some int) None & info [ "times" ] ~docv:"R" ~doc)

let fingerprint_of_scheme ?length ?times ~master scheme =
  match Fingerprint.of_local ?length ?times ~master scheme with
  | Ok fp -> fp
  | Error e -> failwith e

let fingerprint_cmd =
  let run file query params results rho epsilon seed jobs stats trace master
      length times recipient out =
    handle @@ fun () ->
    set_jobs jobs;
    with_obs ~stats ~trace @@ fun () ->
    let ws, _, scheme =
      prepare_scheme file ~query ~params ~results ~rho ~epsilon ~seed
    in
    let fp = fingerprint_of_scheme ?length ?times ~master scheme in
    let marked = Fingerprint.mark_for fp recipient ws.Weighted.weights in
    Textio.save out { ws with Weighted.weights = marked };
    Printf.printf
      "fingerprinted for %s: %d-bit codeword x %d, digest %x, into %s\n"
      recipient (Fingerprint.length fp) (Fingerprint.times fp)
      (Fingerprint.digest marked) out
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let recipient =
    let doc = "Recipient id the copy is fingerprinted for." in
    Arg.(
      required
      & opt (some string) None
      & info [ "recipient" ] ~docv:"RID" ~doc)
  in
  Cmd.v
    (Cmd.info "fingerprint"
       ~doc:
         "Generate one recipient's fingerprinted copy: the recipient's \
          key derives from the master key, its codeword is embedded \
          through the same query-preserving scheme.")
    Term.(
      const run $ file $ query_term $ params_term $ results_term $ rho_term
      $ epsilon_term $ seed_term $ jobs_term $ stats_term $ trace_term
      $ master_term $ fp_length_term $ fp_times_term $ recipient $ out_term)

let trace_cmd =
  let run original suspect query params results rho epsilon seed jobs stats
      trace master length times count prefix alpha =
    handle @@ fun () ->
    set_jobs jobs;
    with_obs ~stats ~trace @@ fun () ->
    let ws, _, scheme =
      prepare_scheme original ~query ~params ~results ~rho ~epsilon ~seed
    in
    let fp = fingerprint_of_scheme ?length ?times ~master scheme in
    let sus = Textio.load suspect in
    let rep =
      Fingerprint.trace ~alpha fp ~original:ws.Weighted.weights
        ~suspect:sus.Weighted.weights
        (List.init count (fun i -> prefix ^ string_of_int i))
    in
    Printf.printf
      "candidates %d, decided bits %d/%d, threshold %.3g (Sidak, alpha %g)\n"
      rep.Fingerprint.candidates rep.Fingerprint.decided
      (Fingerprint.length fp) rep.Fingerprint.threshold
      rep.Fingerprint.alpha;
    (match rep.Fingerprint.accused with
    | [] -> print_endline "no recipient accused"
    | accused ->
        List.iter
          (fun (s : Fingerprint.score) ->
            if s.Fingerprint.accused then
              Printf.printf "ACCUSED %s: %d/%d bits agree, p = %.3g\n"
                s.Fingerprint.rid s.Fingerprint.agreements
                s.Fingerprint.trials s.Fingerprint.pvalue)
          rep.Fingerprint.scores;
        Printf.printf "accused: %s\n" (String.concat ", " accused))
  in
  let original =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"ORIGINAL")
  in
  let suspect =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"SUSPECT")
  in
  let count =
    let doc = "Number of candidate recipients (ids prefix0..prefixN-1)." in
    Arg.(value & opt int 1000 & info [ "count" ] ~docv:"N" ~doc)
  in
  let prefix =
    let doc = "Recipient id prefix." in
    Arg.(value & opt string "r" & info [ "prefix" ] ~docv:"P" ~doc)
  in
  let alpha =
    let doc =
      "Family-wise false-accusation level; the per-candidate threshold is \
       Sidak-corrected over all candidates."
    in
    Arg.(value & opt float 0.01 & info [ "alpha" ] ~docv:"A" ~doc)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Score every candidate recipient against a suspect copy and \
          accuse below the multiple-testing-corrected threshold.")
    Term.(
      const run $ original $ suspect $ query_term $ params_term
      $ results_term $ rho_term $ epsilon_term $ seed_term $ jobs_term
      $ stats_term $ trace_term $ master_term $ fp_length_term
      $ fp_times_term $ count $ prefix $ alpha)

(* ------------------------------------------------------------------ *)
(* audit / repair — tamper localization and detect-and-recover *)

let key_term =
  let doc = "Certificate key (must match between protect and audit)." in
  Arg.(
    value
    & opt int Recovery.default_options.Recovery.key
    & info [ "key" ] ~docv:"KEY" ~doc)

let copies_term =
  let doc = "Certificate copies per group (redundant replication)." in
  Arg.(
    value
    & opt int
        Recovery.default_options.Recovery.redundancy
    & info [ "copies" ] ~docv:"N" ~doc)

let group_size_term =
  let doc = "Maximum elements per Gaifman-local group." in
  Arg.(
    value
    & opt int
        Recovery.default_options.Recovery.group_size
    & info [ "group-size" ] ~docv:"N" ~doc)

let recovery_options ~key ~copies ~group_size =
  { Recovery.key; redundancy = copies; group_size }

let audit_cmd =
  let run marked suspect key copies group_size jobs stats trace json =
    handle @@ fun () ->
    set_jobs jobs;
    with_obs ~stats ~trace @@ fun () ->
    let mws = Textio.load marked in
    let sus = Textio.load suspect in
    let cap =
      Recovery.protect ~options:(recovery_options ~key ~copies ~group_size) mws
    in
    let a = Recovery.audit cap ~suspect:sus in
    print_string (Recovery.render_audit cap a);
    match json with
    | None -> ()
    | Some out ->
        Json.to_file out (Recovery.audit_json cap a);
        Printf.printf "wrote %s\n" out
  in
  let marked = Arg.(required & pos 0 (some file) None & info [] ~docv:"MARKED") in
  let suspect = Arg.(required & pos 1 (some file) None & info [] ~docv:"SUSPECT") in
  let json =
    let doc = "Also write the tamper map as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Localize tampering: partition the marked copy into Gaifman-local \
          groups, verify each group of the suspect against its keyed \
          certificate, print the intact/distorted/erased/blind map.")
    Term.(
      const run $ marked $ suspect $ key_term $ copies_term $ group_size_term
      $ jobs_term $ stats_term $ trace_term $ json)

let repair_cmd =
  let run marked suspect key copies group_size jobs stats trace out json =
    handle @@ fun () ->
    set_jobs jobs;
    with_obs ~stats ~trace @@ fun () ->
    let mws = Textio.load marked in
    let sus = Textio.load suspect in
    let cap =
      Recovery.protect ~options:(recovery_options ~key ~copies ~group_size) mws
    in
    let repaired, report = Recovery.repair cap ~suspect:sus in
    Textio.save out repaired;
    print_string (Recovery.render_audit cap report.Recovery.findings);
    Printf.printf
      "repaired %d/%d damaged groups (%d unrepairable); restored %d \
       weights, %d elements, %d tuples; confidence %.2f\nwrote %s\n"
      report.Recovery.repaired
      (report.Recovery.repaired + report.Recovery.unrepairable)
      report.Recovery.unrepairable report.Recovery.restored_weights
      report.Recovery.restored_elements report.Recovery.restored_tuples
      report.Recovery.confidence out;
    match json with
    | None -> ()
    | Some jout ->
        Json.to_file jout (Recovery.repair_json report);
        Printf.printf "wrote %s\n" jout
  in
  let marked = Arg.(required & pos 0 (some file) None & info [] ~docv:"MARKED") in
  let suspect = Arg.(required & pos 1 (some file) None & info [] ~docv:"SUSPECT") in
  let json =
    let doc = "Also write the repair report as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Best-effort restoration of a tampered copy from its surviving \
          keyed certificates; run wmark detect against the repaired output \
          for the repair-then-detect pipeline.")
    Term.(
      const run $ marked $ suspect $ key_term $ copies_term $ group_size_term
      $ jobs_term $ stats_term $ trace_term $ out_term $ json)

(* multi-query mark/detect: -q can be repeated; all queries share the
   default u/v variable convention. *)

let queries_term =
  let doc = "Query formula; repeatable to preserve several queries at once." in
  Arg.(non_empty & opt_all string [] & info [ "q"; "query" ] ~docv:"FORMULA" ~doc)

let parse_queries ~queries ~params ~results =
  List.map (fun query -> parse_query ~query ~params ~results) queries

let multi_mark_cmd =
  let run file queries params results rho epsilon seed jobs stats trace message
      bits out =
    handle @@ fun () ->
    set_jobs jobs;
    with_obs ~stats ~trace @@ fun () ->
    let ws = Textio.load file in
    let qs = parse_queries ~queries ~params ~results in
    let options = { Local_scheme.seed; rho; epsilon; selection = `Greedy } in
    match Multi_scheme.prepare ~options ws qs with
    | Error e -> failwith ("prepare: " ^ e)
    | Ok scheme ->
        if bits > Multi_scheme.capacity scheme then
          failwith
            (Printf.sprintf "message needs %d bits, capacity is %d" bits
               (Multi_scheme.capacity scheme));
        let marked =
          Multi_scheme.mark scheme (Codec.of_int ~bits message) ws.Weighted.weights
        in
        Textio.save out { ws with Weighted.weights = marked };
        Printf.printf "embedded %d (%d bits) preserving %d queries into %s\n"
          message bits (List.length qs) out
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "multi-mark"
       ~doc:"Embed a message while preserving several queries at once.")
    Term.(
      const run $ file $ queries_term $ params_term $ results_term $ rho_term
      $ epsilon_term $ seed_term $ jobs_term $ stats_term $ trace_term
      $ message_term $ bits_term $ out_term)

let multi_detect_cmd =
  let run original suspect queries params results rho epsilon seed jobs stats
      trace bits =
    handle @@ fun () ->
    set_jobs jobs;
    with_obs ~stats ~trace @@ fun () ->
    let ws = Textio.load original in
    let sus = Textio.load suspect in
    let qs = parse_queries ~queries ~params ~results in
    let options = { Local_scheme.seed; rho; epsilon; selection = `Greedy } in
    match Multi_scheme.prepare ~options ws qs with
    | Error e -> failwith ("prepare: " ^ e)
    | Ok scheme ->
        let decoded =
          Multi_scheme.detect_weights scheme ~original:ws.Weighted.weights
            ~suspect:sus.Weighted.weights ~length:bits
        in
        Printf.printf "decoded: %d (bits %s)\n" (Codec.to_int decoded)
          (Format.asprintf "%a" Bitvec.pp decoded)
  in
  let original = Arg.(required & pos 0 (some file) None & info [] ~docv:"ORIGINAL") in
  let suspect = Arg.(required & pos 1 (some file) None & info [] ~docv:"SUSPECT") in
  Cmd.v
    (Cmd.info "multi-detect"
       ~doc:"Read a multi-query mark back from a suspect copy.")
    Term.(
      const run $ original $ suspect $ queries_term $ params_term
      $ results_term $ rho_term $ epsilon_term $ seed_term $ jobs_term
      $ stats_term $ trace_term $ bits_term)

(* vc *)

let vc_cmd =
  let run file query params results =
    handle @@ fun () ->
    let ws = Textio.load file in
    let q = parse_query ~query ~params ~results in
    let ix = Query_vc.of_query ws.Weighted.graph q in
    let universe = Setfam.universe_size ix.Query_vc.fam in
    if universe > 24 then
      failwith
        (Printf.sprintf "active set too large for exact VC computation (%d)"
           universe);
    let d = Vc.dimension ix.Query_vc.fam in
    Printf.printf "active |W|      : %d\n" universe;
    Printf.printf "distinct W_a    : %d\n" (Setfam.cardinal ix.Query_vc.fam);
    Printf.printf "VC dimension    : %d\n" d;
    Printf.printf "maximal (VC=|W|): %s\n"
      (if Query_vc.maximal_on ws.Weighted.graph q then
         "yes - Theorem 2 forbids a watermarking scheme here"
       else "no");
    Printf.printf "sauer-shelah    : |C| = %d <= %d\n"
      (Setfam.cardinal ix.Query_vc.fam)
      (Vc.sauer_shelah ~d ~n:universe)
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "vc"
       ~doc:
         "Compute the VC-dimension of the query's definable family — the \
          owner's watermarkability estimate (Theorem 2 / Section 2).")
    Term.(const run $ file $ query_term $ params_term $ results_term)

(* generators *)

let gen_travel_cmd =
  let run travels transports seed out =
    handle @@ fun () ->
    Textio.save out (Random_struct.travel (Prng.create seed) ~travels ~transports);
    Printf.printf "wrote %s\n" out
  in
  let travels = Arg.(value & opt int 50 & info [ "travels" ] ~docv:"N") in
  let transports = Arg.(value & opt int 120 & info [ "transports" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "gen-travel" ~doc:"Generate a random travel database.")
    Term.(const run $ travels $ transports $ seed_term $ out_term)

let gen_school_cmd =
  let run students seed out =
    handle @@ fun () ->
    let doc = School_xml.generate (Prng.create seed) ~students () in
    let oc = open_out out in
    output_string oc (Xml.to_string (Utree.to_xml doc));
    close_out oc;
    Printf.printf "wrote %s\n" out
  in
  let students = Arg.(value & opt int 30 & info [ "students" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "gen-school" ~doc:"Generate a random school XML document.")
    Term.(const run $ students $ seed_term $ out_term)

let gen_biblio_cmd =
  let run articles seed out =
    handle @@ fun () ->
    let doc = Biblio_xml.generate (Prng.create seed) ~articles () in
    let oc = open_out out in
    output_string oc (Xml.to_string (Utree.to_xml doc));
    close_out oc;
    Printf.printf "wrote %s (pattern: %s)\n" out
      (Pattern.to_string Biblio_xml.pattern)
  in
  let articles = Arg.(value & opt int 40 & info [ "articles" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "gen-biblio"
       ~doc:"Generate a random bibliography XML document (descendant-axis demo).")
    Term.(const run $ articles $ seed_term $ out_term)

(* XML mark/detect *)

let block_term =
  let doc =
    "Block size for the tree scheme (default 2m, m = automaton states).  \
     Smaller blocks raise capacity; the distortion certificate is \
     unaffected, only the chance of finding behavioral twins."
  in
  Arg.(value & opt (some int) None & info [ "block" ] ~docv:"N" ~doc)

let load_xml path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Utree.of_xml (Xml.parse (really_input_string ic (in_channel_length ic))))

let xml_mark_cmd =
  let run file pattern message bits seed block out =
    handle @@ fun () ->
    let doc = load_xml file in
    let p = Pattern.parse pattern in
    let options = { Tree_scheme.default_options with seed; block_size = block } in
    match Pipeline.prepare_xml ~options doc p with
    | Error e -> failwith e
    | Ok xs ->
        if bits > Tree_scheme.capacity xs.Pipeline.scheme then
          failwith
            (Printf.sprintf "message needs %d bits, capacity is %d" bits
               (Tree_scheme.capacity xs.Pipeline.scheme));
        let marked = Pipeline.mark_xml xs ~message:(Codec.of_int ~bits message) doc in
        let oc = open_out out in
        output_string oc (Xml.to_string (Utree.to_xml marked));
        close_out oc;
        Printf.printf "embedded %d (%d bits) into %s\n" message bits out
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"DOC") in
  Cmd.v
    (Cmd.info "xml-mark" ~doc:"Embed a message into an XML document.")
    Term.(const run $ file $ pattern_term $ message_term $ bits_term $ seed_term $ block_term $ out_term)

let xml_detect_cmd =
  let run original suspect pattern bits seed block =
    handle @@ fun () ->
    let doc = load_xml original in
    let sus = load_xml suspect in
    let p = Pattern.parse pattern in
    let options = { Tree_scheme.default_options with seed; block_size = block } in
    match Pipeline.prepare_xml ~options doc p with
    | Error e -> failwith e
    | Ok xs ->
        let decoded = Pipeline.detect_xml xs ~original:doc ~suspect:sus ~length:bits in
        Printf.printf "decoded: %d (bits %s)\n" (Codec.to_int decoded)
          (Format.asprintf "%a" Bitvec.pp decoded)
  in
  let original = Arg.(required & pos 0 (some file) None & info [] ~docv:"ORIGINAL") in
  let suspect = Arg.(required & pos 1 (some file) None & info [] ~docv:"SUSPECT") in
  Cmd.v
    (Cmd.info "xml-detect" ~doc:"Read a mark back from a suspect XML document.")
    Term.(const run $ original $ suspect $ pattern_term $ bits_term $ seed_term $ block_term)

(* serve — watermarking as a service over length-prefixed frames.

   Requests arrive as qpwm-serve/1 frames (4-byte big-endian length +
   text payload, see lib/serve/protocol.mli) on stdin or on a Unix
   socket; one response frame per request.  The loop stops cleanly at
   EOF or after answering a [shutdown] request. *)

let serve_loop engine ic oc =
  let rec go at =
    match Frame.read ic ~at with
    | Ok None -> `Eof
    | Error e ->
        (* A framing error poisons the byte stream — answer once and
           stop rather than resynchronize on garbage. *)
        Frame.write oc (Serve_protocol.err_payload (Frame.error_to_string e));
        `Eof
    | Ok (Some (payload, at')) ->
        Frame.write oc (Serve_engine.handle engine payload);
        if Serve_engine.stopped engine then `Shutdown else go at'
  in
  go 0

let serve_cmd =
  let run dir socket jobs width stats trace =
    handle @@ fun () ->
    set_jobs jobs;
    (* Engine index/update requests go through Shard.index ->
       Neighborhood.index, which honor the process-wide bound. *)
    set_width_bound width;
    (* The stats endpoint and the per-endpoint serve.lat.* histograms
       only exist while collection is on; a server always collects. *)
    Obs.set_enabled true;
    with_obs ~stats ~trace @@ fun () ->
    (match dir with
    | Some d when not (Sys.file_exists d) -> Unix.mkdir d 0o755
    | _ -> ());
    let engine = Serve_engine.create ?dir ?jobs () in
    match socket with
    | None ->
        set_binary_mode_in stdin true;
        set_binary_mode_out stdout true;
        ignore (serve_loop engine stdin stdout)
    | Some path ->
        let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        if Sys.file_exists path then Unix.unlink path;
        Unix.bind sock (Unix.ADDR_UNIX path);
        Unix.listen sock 16;
        Printf.eprintf "wmark serve: listening on %s\n%!" path;
        let rec accept_loop () =
          let fd, _ = Unix.accept sock in
          let ic = Unix.in_channel_of_descr fd
          and oc = Unix.out_channel_of_descr fd in
          set_binary_mode_in ic true;
          set_binary_mode_out oc true;
          let outcome = serve_loop engine ic oc in
          (try flush oc with Sys_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if outcome = `Shutdown then ()
          else accept_loop ()
        in
        Fun.protect
          ~finally:(fun () ->
            (try Unix.close sock with Unix.Unix_error _ -> ());
            if Sys.file_exists path then Unix.unlink path)
          accept_loop
  in
  let dir =
    let doc =
      "Store directory for $(b,load)/$(b,snapshot) persistence (created if \
       missing)."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let socket =
    let doc =
      "Listen on a Unix domain socket instead of stdin/stdout; connections \
       are served one at a time."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve mark/detect/update/audit requests over length-prefixed \
          frames (qpwm-serve/1).")
    Term.(
      const run $ dir $ socket $ jobs_term $ width_term $ stats_term
      $ trace_term)

let main =
  let doc = "query-preserving watermarking of relational databases and XML" in
  Cmd.group
    (Cmd.info "wmark" ~version:"1.0.0" ~doc)
    [
      info_cmd; mark_cmd; detect_cmd; update_cmd; multi_mark_cmd;
      multi_detect_cmd; capacity_cmd; vc_cmd; perturb_cmd; attack_cmd;
      fingerprint_cmd; trace_cmd; audit_cmd; repair_cmd; serve_cmd;
      gen_travel_cmd; gen_school_cmd; gen_biblio_cmd; xml_mark_cmd;
      xml_detect_cmd;
    ]

let () = exit (Cmd.eval' main)
