type t = {
  label : string array;
  is_text : bool array;
  children : int array array;
  parent : int array;
  attrs : (string * string) list array;
}

let rec count_nodes (x : Xml.t) =
  match x with
  | Text _ -> 1
  | Element { children; _ } -> 1 + List.fold_left (fun a c -> a + count_nodes c) 0 children

let of_xml doc =
  let n = count_nodes doc in
  let label = Array.make n "" in
  let is_text = Array.make n false in
  let children = Array.make n [||] in
  let parent = Array.make n (-1) in
  let attrs = Array.make n [] in
  let next = ref 0 in
  let rec go par (x : Xml.t) =
    let id = !next in
    incr next;
    parent.(id) <- par;
    (match x with
    | Text s ->
        label.(id) <- s;
        is_text.(id) <- true
    | Element { tag; children = cs; attrs = ats } ->
        label.(id) <- tag;
        attrs.(id) <- ats;
        children.(id) <- Array.of_list (List.map (go id) cs));
    id
  in
  ignore (go (-1) doc);
  { label; is_text; children; parent; attrs }

let size t = Array.length t.label
let root _ = 0
let label t v = t.label.(v)
let is_text t v = t.is_text.(v)
let children t v = Array.to_list t.children.(v)
let parent t v = if t.parent.(v) < 0 then None else Some t.parent.(v)

let rec node_to_xml t v : Xml.t =
  if t.is_text.(v) then Text t.label.(v)
  else
    Element
      {
        tag = t.label.(v);
        attrs = t.attrs.(v);
        children = List.map (node_to_xml t) (children t v);
      }

let to_xml t = node_to_xml t 0

let value_of t v =
  if t.is_text.(v) then int_of_string_opt t.label.(v) else None

let value_nodes t =
  List.filter
    (fun v -> value_of t v <> None)
    (List.init (size t) Fun.id)

let weights t =
  List.fold_left
    (fun w v ->
      match value_of t v with
      | Some x -> Weighted.set_elt w v x
      | None -> w)
    (Weighted.create 1) (value_nodes t)

let with_weights t w =
  let label = Array.copy t.label in
  List.iter
    (fun v -> label.(v) <- string_of_int (Weighted.get_elt w v))
    (value_nodes t);
  { t with label }

let attrs t v = t.attrs.(v)

let nodes_with_label t name =
  List.filter (fun v -> t.label.(v) = name) (List.init (size t) Fun.id)

let tags t =
  let acc = ref [] in
  Array.iteri (fun v l -> if not t.is_text.(v) then acc := l :: !acc) t.label;
  List.sort_uniq compare !acc

let pp fmt t =
  let rec go depth v =
    Format.fprintf fmt "%s%s%s@,"
      (String.make (2 * depth) ' ')
      (if t.is_text.(v) then "\"" ^ t.label.(v) ^ "\"" else t.label.(v))
      (Printf.sprintf " (%d)" v);
    List.iter (go (depth + 1)) (children t v)
  in
  Format.fprintf fmt "@[<v>";
  go 0 0;
  Format.fprintf fmt "@]"
