(** XPath-style parametric pattern queries (Example 4).

    The paper's running XML query is

    {v psi(a, v) = school/student[firstname=a]/exam v}

    — for a user-supplied first name [a], return the exam values of the
    matching students.  This module implements such single-path patterns
    with one parametric predicate and both XPath axes:

    {v tag_0/tag_1[...]//tag_i[ptag=$p]/.../tag_k v}

    ([/] steps to a child, [//] to any proper descendant.)

    Semantics: an {e anchor chain} x_0/x_1/.../x_k of elements labeled by
    the path with x_0 the document root, consecutive elements related by
    their step's axis; the {e structural parameter} a is a text child of a
    [ptag] child of x_i; the {e result} v is a text child of x_k of the
    same chain.  Final users address the parameter by value (["Robert"]);
    the query machinery works with the text {e node} — the value-level
    result set is the union over the parameter's occurrences (see
    DESIGN.md on how the distortion bound transfers).

    Two independent implementations are provided and cross-checked in the
    tests: a direct recursive evaluator on the unranked tree, and
    compilation to MSO over the binary encoding, hence (by Lemma 2) to a
    tree automaton — the input format of the Theorem 5 watermarking
    scheme.  In the first-child/next-sibling encoding, a child step is
    "left child, then a chain of right children" (one set quantifier) and
    a descendant step is "left child, then anywhere below" (the binary
    tree order). *)

type axis = Child | Descendant

type t = {
  steps : (axis * string) list;
      (** the anchor chain, root first; the first step's axis is ignored
          (the root is fixed) *)
  pred_step : int;  (** index into [steps] where the predicate attaches *)
  pred_tag : string;  (** tag of the child element holding the parameter *)
  const_preds : (int * string * string) list;
      (** constant-value filters [(step, tag, value)], e.g.
          [student[lastname=Smith]]: the anchor at [step] must have a [tag]
          child whose text equals [value] *)
}

exception Parse_error of string

val parse : string -> t
(** [parse "school//student[firstname=$a][lastname=Smith]/exam"].  Exactly
    one parametric [[tag=$x]] predicate is required; any number of constant
    [[tag=value]] filters may accompany it. @raise Parse_error otherwise. *)

val constants : t -> string list
(** The constant predicate values, sorted — pass them to
    {!Encode.to_binary_abstract} and {!Encode.abstract_alphabet} so the
    compiled automaton can read them. *)

val to_string : t -> string

(** {1 Direct evaluation on unranked trees} *)

val structural_params : t -> Utree.t -> int list
(** Text nodes that can act as parameter (the candidates for a). *)

val eval_node : t -> Utree.t -> int -> int list
(** W_a for a structural parameter node: result text nodes, ascending. *)

val eval_value : t -> Utree.t -> string -> int list
(** Value-level answer: union of [eval_node] over parameter nodes whose
    content equals the given value. *)

val f_value : t -> Utree.t -> string -> int
(** Sum of integer values of [eval_value] nodes — the f of Example 4
    ([f_value school "Robert" = 28] on the paper's document). *)

(** {1 Compilation to a tree automaton} *)

val to_mso : t -> Mso.t
(** The defining MSO formula over the FCNS binary encoding, free element
    variables ["a"] (parameter) then ["v"] (result). *)

val compile : t -> alphabet:string list -> Wm_trees.Tree_query.t
(** Compile for documents whose
    [Encode.abstract_alphabet ~constants:(constants p)] equals [alphabet].
    The resulting query has k = 1, s = 1 and runs on
    [Encode.to_binary_abstract ~constants:(constants p)] views. *)
