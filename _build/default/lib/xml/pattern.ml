type axis = Child | Descendant

type t = {
  steps : (axis * string) list;
  pred_step : int;
  pred_tag : string;
  const_preds : (int * string * string) list;
}

exception Parse_error of string

(* A segment is a tag followed by zero or more bracketed predicates:
   "student[firstname=$a][lastname=Smith]". *)
let parse_segment i seg =
  match String.index_opt seg '[' with
  | None -> (seg, [], [])
  | Some b ->
      let tag = String.sub seg 0 b in
      let rest = String.sub seg b (String.length seg - b) in
      let params = ref [] and consts = ref [] in
      let pos = ref 0 in
      let n = String.length rest in
      while !pos < n do
        if rest.[!pos] <> '[' then raise (Parse_error "malformed predicate");
        let close =
          match String.index_from_opt rest !pos ']' with
          | Some c -> c
          | None -> raise (Parse_error "unterminated predicate")
        in
        let inside = String.sub rest (!pos + 1) (close - !pos - 1) in
        (match String.index_opt inside '=' with
        | Some e ->
            let k = String.sub inside 0 e in
            let v = String.sub inside (e + 1) (String.length inside - e - 1) in
            if k = "" || v = "" then raise (Parse_error "empty predicate part");
            if v.[0] = '$' then params := (i, k) :: !params
            else consts := (i, k, v) :: !consts
        | None -> raise (Parse_error "predicate must have the form [tag=$x] or [tag=value]"));
        pos := close + 1
      done;
      (tag, !params, !consts)

(* "a/b//c" splits on '/' into ["a"; "b"; ""; "c"]: an empty field means
   the following segment is reached by the descendant axis. *)
let parse s =
  let fields = String.split_on_char '/' s in
  let rec to_steps axis acc = function
    | [] -> List.rev acc
    | "" :: rest ->
        if axis = Descendant then raise (Parse_error "'///' is not a step");
        to_steps Descendant acc rest
    | seg :: rest -> to_steps Child ((axis, seg) :: acc) rest
  in
  let raw = to_steps Child [] fields in
  if raw = [] then raise (Parse_error "empty pattern");
  (match raw with
  | (Descendant, _) :: _ -> raise (Parse_error "pattern cannot start with //")
  | _ -> ());
  let params = ref [] and consts = ref [] in
  let steps =
    List.mapi
      (fun i (axis, seg) ->
        if seg = "" then raise (Parse_error "empty path segment");
        let tag, ps, cs = parse_segment i seg in
        params := ps @ !params;
        consts := cs @ !consts;
        (axis, tag))
      raw
  in
  match !params with
  | [ (pred_step, pred_tag) ] ->
      { steps; pred_step; pred_tag; const_preds = List.rev !consts }
  | [] -> raise (Parse_error "pattern needs one [tag=$x] predicate")
  | _ -> raise (Parse_error "pattern supports a single parametric predicate")

let constants p =
  List.sort_uniq compare (List.map (fun (_, _, v) -> v) p.const_preds)

let to_string p =
  String.concat ""
    (List.mapi
       (fun i (axis, tag) ->
         let sep = if i = 0 then "" else match axis with Child -> "/" | Descendant -> "//" in
         let param = if i = p.pred_step then Printf.sprintf "[%s=$a]" p.pred_tag else "" in
         let cs =
           List.filter_map
             (fun (j, k, v) ->
               if j = i then Some (Printf.sprintf "[%s=%s]" k v) else None)
             p.const_preds
         in
         sep ^ tag ^ param ^ String.concat "" cs)
       p.steps)

(* ------------------------------------------------------------------ *)
(* Direct evaluation. *)

let element_children u v tag =
  List.filter
    (fun c -> (not (Utree.is_text u c)) && Utree.label u c = tag)
    (Utree.children u v)

let rec element_descendants u v tag =
  List.concat_map
    (fun c ->
      if Utree.is_text u c then []
      else
        (if Utree.label u c = tag then [ c ] else [])
        @ element_descendants u c tag)
    (Utree.children u v)

let matching u v (axis, tag) =
  match axis with
  | Child -> element_children u v tag
  | Descendant -> element_descendants u v tag

let text_children u v =
  List.filter (fun c -> Utree.is_text u c) (Utree.children u v)

(* Does an element satisfy a constant predicate [tag=value]? *)
let const_pred_holds u anchor tag value =
  List.exists
    (fun c -> List.exists (fun t -> Utree.label u t = value) (text_children u c))
    (element_children u anchor tag)

(* All anchor chains of the pattern, as lists of elements, root first. *)
let chains p u =
  match p.steps with
  | [] -> []
  | (_, root_tag) :: rest ->
      if Utree.is_text u (Utree.root u) || Utree.label u (Utree.root u) <> root_tag
      then []
      else
        let rec extend chain = function
          | [] -> [ List.rev chain ]
          | step :: more ->
              List.concat_map
                (fun c -> extend (c :: chain) more)
                (matching u (List.hd chain) step)
        in
        extend [ Utree.root u ] rest
        |> List.filter (fun chain ->
               List.for_all
                 (fun (i, tag, value) ->
                   const_pred_holds u (List.nth chain i) tag value)
                 p.const_preds)

let param_nodes_of_chain p u chain =
  let anchor = List.nth chain p.pred_step in
  List.concat_map (text_children u) (element_children u anchor p.pred_tag)

let structural_params p u =
  List.sort_uniq compare
    (List.concat_map (param_nodes_of_chain p u) (chains p u))

let eval_node p u a =
  let hits =
    List.filter
      (fun chain -> List.mem a (param_nodes_of_chain p u chain))
      (chains p u)
  in
  List.sort_uniq compare
    (List.concat_map
       (fun chain ->
         text_children u (List.nth chain (List.length p.steps - 1)))
       hits)

let eval_value p u value =
  let params =
    List.filter (fun a -> Utree.label u a = value) (structural_params p u)
  in
  List.sort_uniq compare (List.concat_map (eval_node p u) params)

let f_value p u value =
  List.fold_left
    (fun acc v ->
      match Utree.value_of u v with Some x -> acc + x | None -> acc)
    0 (eval_value p u value)

(* ------------------------------------------------------------------ *)
(* MSO compilation (over the FCNS binary encoding, abstract alphabet). *)

let mso_rchain z y : Mso.t =
  (* y is z or reachable from z by S2 edges: every S2-closed set containing
     z contains y. *)
  Forall_set
    ( "X",
      Implies
        ( And
            ( In (z, "X"),
              Forall
                ( "u",
                  Forall
                    ( "w",
                      Implies
                        (And (In ("u", "X"), Atom ("S2", [ "u"; "w" ])), In ("w", "X"))
                    ) ) ),
          In (y, "X") ) )

let mso_child x y : Mso.t =
  (* y is an unranked child of x: first binary child of x, then sibling
     chain. *)
  Exists ("z", And (Atom ("S1", [ x; "z" ]), mso_rchain "z" y))

let mso_descendant x y : Mso.t =
  (* y is a proper unranked descendant of x: in the FCNS encoding, the
     binary subtree rooted at x's left child is exactly the forest of x's
     children. *)
  Exists ("z", And (Atom ("S1", [ x; "z" ]), Atom ("Leq", [ "z"; y ])))

let mso_step axis x y =
  match axis with Child -> mso_child x y | Descendant -> mso_descendant x y

let mso_root x : Mso.t =
  Forall ("r", Implies (Atom ("Leq", [ "r"; x ]), Eq ("r", x)))

let to_mso p =
  let k = List.length p.steps - 1 in
  let xvar i = Printf.sprintf "x%d" i in
  let conj = List.fold_left (fun a b -> Mso.And (a, b)) in
  let labels =
    List.mapi (fun i (_, tag) -> Mso.Atom (tag, [ xvar i ])) p.steps
  in
  let chain_steps =
    List.mapi
      (fun i (axis, _) -> (i, axis))
      p.steps
    |> List.filter_map (fun (i, axis) ->
           if i = 0 then None
           else Some (mso_step axis (xvar (i - 1)) (xvar i)))
  in
  (* A text node whose content equals a constant carries that constant's
     dedicated letter, so "is a text node" must accept every textual
     letter. *)
  let is_textual var =
    List.fold_left
      (fun acc v -> Mso.Or (acc, Mso.Atom (Encode.constant_letter v, [ var ])))
      (Mso.Atom (Encode.text_letter, [ var ]))
      (constants p)
  in
  let param_part =
    Mso.Exists
      ( "pp",
        conj
          (Mso.Atom (p.pred_tag, [ "pp" ]))
          [
            mso_child (xvar p.pred_step) "pp";
            mso_child "pp" "a";
            is_textual "a";
          ] )
  in
  let const_parts =
    List.map
      (fun (i, tag, value) ->
        (* exists a [tag] child of x_i with a text child carrying the
           constant's dedicated letter. *)
        Mso.Exists
          ( "cc",
            conj
              (Mso.Atom (tag, [ "cc" ]))
              [
                mso_child (xvar i) "cc";
                Mso.Exists
                  ( "ct",
                    Mso.And
                      ( mso_child "cc" "ct",
                        Mso.Atom (Encode.constant_letter value, [ "ct" ]) ) );
              ] ))
      p.const_preds
  in
  let result_part = Mso.And (mso_child (xvar k) "v", is_textual "v") in
  let body =
    conj (mso_root (xvar 0))
      (labels @ chain_steps @ const_parts @ [ param_part; result_part ])
  in
  let rec close i phi =
    if i > k then phi else close (i + 1) (Mso.Exists (xvar i, phi))
  in
  close 0 body

let compile p ~alphabet =
  let base = Array.of_list (List.sort_uniq compare alphabet) in
  let compiled = Mso_compile.compile ~base ~free:[ "a"; "v" ] (to_mso p) in
  Tree_query.of_compiled compiled ~params:[ "a" ] ~results:[ "v" ]
