lib/xml/pattern.mli: Mso Utree Wm_trees
