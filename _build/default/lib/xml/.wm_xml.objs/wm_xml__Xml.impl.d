lib/xml/xml.ml: Buffer List Printf String
