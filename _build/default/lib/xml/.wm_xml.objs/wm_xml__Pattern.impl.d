lib/xml/pattern.ml: Array Encode List Mso Mso_compile Printf String Tree_query Utree
