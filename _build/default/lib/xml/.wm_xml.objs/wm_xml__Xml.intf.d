lib/xml/xml.mli:
