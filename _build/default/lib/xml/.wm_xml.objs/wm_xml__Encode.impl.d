lib/xml/encode.ml: Btree List String Utree Wm_trees Xml
