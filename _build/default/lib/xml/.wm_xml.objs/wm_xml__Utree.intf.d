lib/xml/utree.mli: Format Weighted Xml
