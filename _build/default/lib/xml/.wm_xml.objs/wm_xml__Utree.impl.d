lib/xml/utree.ml: Array Format Fun List Printf String Weighted Xml
