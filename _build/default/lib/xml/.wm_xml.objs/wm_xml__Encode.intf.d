lib/xml/encode.mli: Utree Wm_trees
