(** Unranked labeled trees — the tree model of XML documents.

    Nodes are integers in preorder.  Element nodes carry their tag as
    label; text nodes carry their content.  Attributes are not part of the
    query/watermarking tree model, but they are carried along and re-emitted
    by {!to_xml}, so marking a document preserves them byte for byte. *)

type t

val of_xml : Xml.t -> t
val to_xml : t -> Xml.t

val size : t -> int
val root : t -> int

val label : t -> int -> string
val is_text : t -> int -> bool
val children : t -> int -> int list
val parent : t -> int -> int option

val value_nodes : t -> int list
(** Text nodes whose content parses as an integer — the weighted elements
    of an XML document in the paper's sense (exam marks, durations, ...). *)

val value_of : t -> int -> int option
(** Integer content of a node, when it is a value node. *)

val weights : t -> Weighted.t
(** Weight assignment on value nodes (arity 1, keyed by node id). *)

val with_weights : t -> Weighted.t -> t
(** Rewrites each value node's content from the assignment — how a marker's
    weight distortions are folded back into the document. *)

val attrs : t -> int -> (string * string) list
(** Attributes of an element node ([[]] for text nodes). *)

val nodes_with_label : t -> string -> int list

val tags : t -> string list
(** Distinct element tags, sorted. *)

val pp : Format.formatter -> t -> unit
