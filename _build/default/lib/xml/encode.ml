open Wm_trees

let text_letter = "#text"

(* Build the FCNS spec for the subtree rooted at [v] followed by the
   sibling chain [rest]. *)
let rec fcns_spec labeler (u : Utree.t) v rest : Btree.spec =
  let first_child =
    match Utree.children u v with
    | [] -> None
    | c :: cs -> Some (fcns_spec labeler u c cs)
  in
  let next_sibling =
    match rest with
    | [] -> None
    | s :: ss -> Some (fcns_spec labeler u s ss)
  in
  N (labeler v, first_child, next_sibling)

let to_binary_with labeler alphabet u =
  Btree.of_spec_with_alphabet alphabet (fcns_spec labeler u (Utree.root u) [])

(* Full labels mark text nodes with a "#text:" prefix so the inverse can
   tell <exam>11</exam>'s text apart from a hypothetical <11/> element. *)
let full_label u v =
  if Utree.is_text u v then text_letter ^ ":" ^ Utree.label u v
  else Utree.label u v

let full_alphabet u =
  List.sort_uniq compare (List.init (Utree.size u) (full_label u))

let to_binary_full u = to_binary_with (full_label u) (full_alphabet u) u

let constant_letter value = text_letter ^ "=" ^ value

let abstract_alphabet ?(constants = []) u =
  List.sort_uniq compare
    ((text_letter :: List.map constant_letter constants) @ Utree.tags u)

let to_binary_abstract ?(constants = []) u =
  let labeler v =
    if Utree.is_text u v then
      if List.mem (Utree.label u v) constants then
        constant_letter (Utree.label u v)
      else text_letter
    else Utree.label u v
  in
  to_binary_with labeler (abstract_alphabet ~constants u) u

let of_binary_full b =
  if Btree.right b (Btree.root b) <> None then
    invalid_arg "Encode.of_binary_full: root has a sibling";
  (* Children of v in the unranked tree: left child of v, then its chain of
     right children. *)
  let rec chain = function
    | None -> []
    | Some c -> c :: chain (Btree.right b c)
  in
  let prefix = text_letter ^ ":" in
  let plen = String.length prefix in
  let rec to_xml v : Xml.t =
    let kids = chain (Btree.left b v) in
    let lbl = Btree.label_name b v in
    if String.length lbl >= plen && String.sub lbl 0 plen = prefix then
      Text (String.sub lbl plen (String.length lbl - plen))
    else Element { tag = lbl; attrs = []; children = List.map to_xml kids }
  in
  Utree.of_xml (to_xml (Btree.root b))
