(** Unranked-to-binary tree encoding.

    XML deals with unranked trees; the paper (after [15]) encodes them into
    binary trees and restricts attention to the binary case.  We use the
    classical first-child / next-sibling encoding: the binary left child of
    a node is its first unranked child, the binary right child its next
    sibling.  With both trees numbered in preorder the node ids coincide,
    so weights and query answers transfer between the views without
    translation tables.

    Two label regimes:
    - {e full}: every distinct label (tags and text contents) is a letter —
      faithful, used for round-trips;
    - {e abstract}: element tags are letters, every text node is the letter
      ["#text"] — the small alphabet tree automata run on.  Pattern queries
      never need to {e read} text contents because parameters are pebbles
      (see {!Pattern}). *)

val text_letter : string
(** ["#text"]. *)

val to_binary_full : Utree.t -> Wm_trees.Btree.t
(** FCNS encoding with the full label set. *)

val to_binary_abstract : ?constants:string list -> Utree.t -> Wm_trees.Btree.t
(** FCNS encoding over [tags(doc) + {#text}].  [constants] lists text
    values the automata must be able to {e read} (the constant predicates
    of a pattern, e.g. [lastname=Smith]): a text node whose content is a
    listed constant gets the letter ["#text=<content>"] instead of
    ["#text"]. *)

val constant_letter : string -> string
(** ["#text=" ^ value]. *)

val abstract_alphabet : ?constants:string list -> Utree.t -> string list
(** The letters [to_binary_abstract] uses, sorted: document tags,
    {!text_letter}, and one {!constant_letter} per constant. *)

val of_binary_full : Wm_trees.Btree.t -> Utree.t
(** Inverse of {!to_binary_full}: fails with [Invalid_argument] if the
    binary root has a right child (no sibling of the root exists). *)
