(** Parse trees of clique-width terms, as binary Sigma-trees.

    Letters: ["v<l>"] for [Vertex l] (leaves), ["union"] (two children),
    ["eta_<a>_<b>"] and ["rho_<a>_<b>"] (one left child).  The alphabet is
    a function of the label count alone, so one compiled automaton serves
    every width-k term.

    Node ids are the binary tree's preorder; the i-th leaf in preorder is
    graph vertex i, so a weight assignment on graph vertices transports to
    the parse tree by reindexing through {!vertex_nodes}. *)

val alphabet : labels:int -> string list
(** All letters for width-[labels] terms, in a fixed order. *)

val letter_vertex : int -> string
val letter_union : string
val letter_eta : int -> int -> string
val letter_rho : int -> int -> string

val to_tree : labels:int -> Cw_term.t -> Btree.t
(** @raise Invalid_argument if the term uses a label >= labels. *)

val vertex_nodes : Btree.t -> int array
(** [vertex_nodes t].(i) = parse-tree node of graph vertex i (the i-th
    vertex leaf in preorder). *)

val vertex_weights : Btree.t -> Weighted.t -> Weighted.t
(** Transport a weight assignment on graph vertex ids to one on parse-tree
    node ids. *)

val weights_to_graph : Btree.t -> Weighted.t -> Weighted.t
(** The inverse transport (parse-tree node ids -> vertex ids). *)
