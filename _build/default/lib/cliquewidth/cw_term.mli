(** Clique-width parse terms (Theorem 4).

    Theorem 4 extends the tree scheme to structures of bounded clique-width
    via their parse trees: "to a structure G with bounded clique-width we
    can associate a labeled parse-tree T [such that] psi(G) =
    psi~(T)".  This module is that algebra: the k-label graph operations

    - [Vertex l]          — a fresh vertex carrying label l,
    - [Union (s, t)]      — disjoint union,
    - [Add_edges (a,b,t)] — eta_{a,b}: edges between every a-labeled and
                            every b-labeled vertex (a <> b),
    - [Relabel (a,b,t)]   — rho_{a->b},

    together with evaluation to a graph structure, builders for classic
    families (cliques have clique-width 2, paths 3), and a random-term
    generator for the experiments.  Graph vertices are numbered by the
    preorder of the term's [Vertex] leaves, which is also the preorder of
    the corresponding leaf nodes in {!Cw_parse}'s binary parse tree — so
    vertex weights and parse-tree leaf weights coincide without
    translation. *)

type t =
  | Vertex of int
  | Union of t * t
  | Add_edges of int * int * t
  | Relabel of int * int * t

val width : t -> int
(** Number of labels used = 1 + the largest label mentioned. *)

val vertex_count : t -> int

val validate : t -> (unit, string) result
(** Labels non-negative, eta's two labels distinct. *)

val eval : t -> Structure.t
(** The graph over schema {!Schema.graph} (symmetric edge relation),
    universe = vertices in leaf preorder. *)

val labels_after : t -> int array
(** Final label of each vertex (diagnostic). *)

val clique : int -> t
(** K_n with 2 labels. *)

val path : int -> t
(** P_n with 3 labels. *)

val of_tree_graph : Structure.t -> (t * int array) option
(** The classical "trees have clique-width <= 3" construction: for a
    structure whose Gaifman graph is a forest, a 3-label term evaluating to
    it, together with the vertex map [orig.(term vertex id) = structure
    element].  [None] when the Gaifman graph has a cycle.  With
    {!Treewidth} this closes Theorem 4's chain for the width-1 case
    (tree-width 1 -> clique-width <= 3 -> parse-tree watermarking). *)

val random : Prng.t -> labels:int -> vertices:int -> t
(** A random term: vertices with random labels combined by random unions,
    each union followed by a random eta (and sometimes a rho), so the
    resulting graphs are connected-ish and have plenty of edges.  The
    clique-width is at most [labels]. *)

val pp : Format.formatter -> t -> unit
