let letter_vertex l = Printf.sprintf "v%d" l
let letter_union = "union"
let letter_eta a b = Printf.sprintf "eta_%d_%d" a b
let letter_rho a b = Printf.sprintf "rho_%d_%d" a b

let alphabet ~labels =
  let vs = List.init labels letter_vertex in
  let pairs f =
    List.concat
      (List.init labels (fun a ->
           List.filter_map
             (fun b -> if a = b then None else Some (f a b))
             (List.init labels Fun.id)))
  in
  (* rho with equal labels is the identity and never emitted; eta requires
     distinct labels.  rho_{a->b} for all ordered distinct pairs. *)
  vs @ [ letter_union ] @ pairs letter_eta @ pairs letter_rho

let rec spec ~labels (term : Cw_term.t) : Btree.spec =
  match term with
  | Vertex l ->
      if l >= labels then invalid_arg "Cw_parse.to_tree: label out of range";
      Btree.leaf (letter_vertex l)
  | Union (s, t) ->
      Btree.node letter_union (spec ~labels s) (spec ~labels t)
  | Add_edges (a, b, t) ->
      if max a b >= labels then invalid_arg "Cw_parse.to_tree: label out of range";
      Btree.node1 (letter_eta a b) (spec ~labels t)
  | Relabel (a, b, t) ->
      if max a b >= labels then invalid_arg "Cw_parse.to_tree: label out of range";
      if a = b then spec ~labels t
      else Btree.node1 (letter_rho a b) (spec ~labels t)

let to_tree ~labels term =
  Btree.of_spec_with_alphabet (alphabet ~labels) (spec ~labels term)

let is_vertex_letter s = String.length s >= 2 && s.[0] = 'v'

let vertex_nodes tree =
  let acc = ref [] in
  for v = Btree.size tree - 1 downto 0 do
    if is_vertex_letter (Btree.label_name tree v) then acc := v :: !acc
  done;
  Array.of_list !acc

let vertex_weights tree w =
  let nodes = vertex_nodes tree in
  Array.to_list nodes
  |> List.mapi (fun vertex node -> (Tuple.singleton node, Weighted.get_elt w vertex))
  |> Weighted.of_list 1

let weights_to_graph tree w =
  let nodes = vertex_nodes tree in
  Array.to_list nodes
  |> List.mapi (fun vertex node -> (Tuple.singleton vertex, Weighted.get_elt w node))
  |> Weighted.of_list 1
