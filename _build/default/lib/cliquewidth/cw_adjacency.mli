(** The translated adjacency query psi~ on parse trees (Theorem 4).

    For psi(u, v) = E(u, v) on a clique-width-k graph, the translated query
    on the parse tree is recognized by a small hand-built automaton with
    two pebbles: bottom-up it tracks the current label of the pebbled
    vertices (labels change under rho) and whether an eta operation has
    already connected them.  States: (label of u's vertex | none) x
    (label of v's vertex | none) x (adjacent yet?) plus a rejecting sink
    for ill-placed pebbles — 2(k+1)^2 + 1 states, independent of the
    graph's size {e and} of its degree, which is the whole point: cliques
    have clique-width 2 and unbounded degree, so Theorem 3's machinery
    cannot certify them but this can. *)

val automaton : labels:int -> Dta.t * Alphabet.t
(** Over {!Cw_parse.alphabet} extended with two pebble bits (bit 0 = the
    parameter u, bit 1 = the result v). *)

val query : labels:int -> Tree_query.t
(** The automaton wrapped as a k = 1, s = 1 tree query: run it on
    {!Cw_parse.to_tree} views; B(a, T) = parse-tree leaves of the
    neighbors of a's vertex (pebbles on non-leaf nodes are never
    accepted). *)

val neighbors_via_tree : labels:int -> Cw_term.t -> int -> int list
(** Convenience: the graph neighbors of a vertex computed entirely through
    the parse-tree automaton (vertex ids).  Must equal the Gaifman
    neighborhood of the evaluated graph — the correspondence the tests
    assert. *)

(** {1 A second translated query: distance two}

    psi(u, v) = exists w. E(u,w) & E(w,v) (with w distinct from u and v).
    Beyond tracking the pebbles' labels, the automaton carries three label
    {e sets}: the labels present among non-pebbled vertices, and the labels
    of some non-pebbled neighbor of u (resp. v) — existence information
    that relabeling updates exactly.  The natural state space is
    (k+1)^2 8^k, of which only a sliver is reachable:
    {!Dta.make_reachable} materializes just that sliver. *)

val distance2_query : labels:int -> Tree_query.t
(** k = 1, s = 1, over the same pebble alphabet as {!query}.  Supported
    for [labels <= 2] (which already covers cliques, cographs and the
    other width-2 classes): the reachable state space and the exact
    minimization grow steeply with the label count — the generic price of
    Theorem 4's automata that the paper's "q can be rather huge for
    practical applications" remark is about.
    @raise Invalid_argument for labels > 2. *)
