lib/cliquewidth/cw_parse.ml: Array Btree Cw_term Fun List Printf String Tuple Weighted
