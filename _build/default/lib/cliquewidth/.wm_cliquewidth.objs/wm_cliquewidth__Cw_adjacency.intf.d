lib/cliquewidth/cw_adjacency.mli: Alphabet Cw_term Dta Tree_query
