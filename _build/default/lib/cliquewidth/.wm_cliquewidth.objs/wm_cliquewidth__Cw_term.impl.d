lib/cliquewidth/cw_term.ml: Array Format Gaifman List Prng Schema Structure
