lib/cliquewidth/treewidth.ml: Array Gaifman Int List Queue Set Structure
