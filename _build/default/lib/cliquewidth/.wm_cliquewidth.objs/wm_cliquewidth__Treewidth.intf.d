lib/cliquewidth/treewidth.mli: Structure
