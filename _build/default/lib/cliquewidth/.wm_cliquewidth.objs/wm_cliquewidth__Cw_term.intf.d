lib/cliquewidth/cw_term.mli: Format Prng Structure
