lib/cliquewidth/cw_adjacency.ml: Alphabet Array Cw_parse Dta Hashtbl List Option String Tree_query Tuple
