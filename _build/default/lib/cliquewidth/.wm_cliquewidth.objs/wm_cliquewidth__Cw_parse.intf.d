lib/cliquewidth/cw_parse.mli: Btree Cw_term Weighted
