(* State encoding: lx, ly in 0..k (k = "not seen"), adj in {0,1}:
   id = ((lx * (k+1)) + ly) * 2 + adj; dead = 2 (k+1)^2. *)

let automaton ~labels =
  let k = labels in
  let none = k in
  let encode lx ly adj = (((lx * (k + 1)) + ly) * 2) + adj in
  let dead = 2 * (k + 1) * (k + 1) in
  let nstates = dead + 1 in
  let decode q = (q / 2 / (k + 1), q / 2 mod (k + 1), q land 1) in
  let base_letters = Array.of_list (Cw_parse.alphabet ~labels) in
  let alpha = Alphabet.make ~base_size:(Array.length base_letters) ~bits:2 in
  let parse_letter s =
    if String.length s > 1 && s.[0] = 'v' then
      `Vertex (int_of_string (String.sub s 1 (String.length s - 1)))
    else if s = Cw_parse.letter_union then `Union
    else
      match String.split_on_char '_' s with
      | [ "eta"; a; b ] -> `Eta (int_of_string a, int_of_string b)
      | [ "rho"; a; b ] -> `Rho (int_of_string a, int_of_string b)
      | _ -> invalid_arg ("Cw_adjacency: unknown letter " ^ s)
  in
  let parsed = Array.map parse_letter base_letters in
  let delta ql qr letter =
    let b = Alphabet.base alpha letter in
    let bx = Alphabet.bit alpha letter 0 and by = Alphabet.bit alpha letter 1 in
    let empty = encode none none 0 in
    let ql = if ql < 0 then empty else ql in
    let qr = if qr < 0 then empty else qr in
    if ql = dead || qr = dead then dead
    else begin
      let lx1, ly1, a1 = decode ql in
      let lx2, ly2, a2 = decode qr in
      (* Merge the children's pebble views; two sightings of a pebble is an
         invalid placement. *)
      let merge m1 m2 =
        if m1 <> none && m2 <> none then None
        else Some (if m1 <> none then m1 else m2)
      in
      match (merge lx1 lx2, merge ly1 ly2) with
      | None, _ | _, None -> dead
      | Some lx, Some ly -> (
          let adj = if a1 + a2 > 0 then 1 else 0 in
          match parsed.(b) with
          | `Vertex l ->
              (* Must be a leaf with no pebbles inside. *)
              if lx <> none || ly <> none || adj = 1 then dead
              else
                let lx = if bx then l else none in
                let ly = if by then l else none in
                encode lx ly 0
          | `Union ->
              if bx || by then dead (* pebble on a non-vertex node *)
              else encode lx ly adj
          | `Eta (a, b') ->
              if bx || by then dead
              else
                let adj =
                  if
                    lx <> none && ly <> none
                    && ((lx = a && ly = b') || (lx = b' && ly = a))
                  then 1
                  else adj
                in
                encode lx ly adj
          | `Rho (a, b') ->
              if bx || by then dead
              else
                let relabel l = if l = a then b' else l in
                let lx = if lx = none then none else relabel lx in
                let ly = if ly = none then none else relabel ly in
                encode lx ly adj)
    end
  in
  let final q =
    q <> dead
    &&
    let lx, ly, adj = decode q in
    lx <> none && ly <> none && adj = 1
  in
  (Dta.make ~nstates ~nlabels:(Alphabet.size alpha) ~final delta, alpha)

(* Construction (especially minimization) is label-count-dependent but
   input-independent, so both query builders memoize per label count. *)
let query_cache : (int, Tree_query.t) Hashtbl.t = Hashtbl.create 4

let query ~labels =
  match Hashtbl.find_opt query_cache labels with
  | Some q -> q
  | None ->
      let auto, alpha = automaton ~labels in
      (* Many (lx, ly, adj) combinations are behaviorally equal (e.g. all
         "x seen, y never will be" states); minimizing shrinks m and
         thereby the 2m block threshold of the Theorem 5 scheme. *)
      let q = Tree_query.make (Dta.minimize auto) ~alpha ~k:1 ~s:1 in
      Hashtbl.replace query_cache labels q;
      q

(* ------------------------------------------------------------------ *)
(* Distance two. *)

type d2 = {
  lu : int;  (* current label of u's vertex, or [k] = not seen *)
  lv : int;
  present : int;  (* label bitmask of non-pebbled vertices *)
  wu : int;  (* labels of some non-pebbled neighbor of u *)
  wv : int;
  via : bool;  (* exists non-pebbled w adjacent to both u and v *)
}

type d2_state = D2_dead | D2 of d2

let shared_parse ~labels =
  let base_letters = Array.of_list (Cw_parse.alphabet ~labels) in
  let alpha = Alphabet.make ~base_size:(Array.length base_letters) ~bits:2 in
  let parse_letter s =
    if String.length s > 1 && s.[0] = 'v' then
      `Vertex (int_of_string (String.sub s 1 (String.length s - 1)))
    else if s = Cw_parse.letter_union then `Union
    else
      match String.split_on_char '_' s with
      | [ "eta"; a; b ] -> `Eta (int_of_string a, int_of_string b)
      | [ "rho"; a; b ] -> `Rho (int_of_string a, int_of_string b)
      | _ -> invalid_arg ("Cw_adjacency: unknown letter " ^ s)
  in
  (alpha, Array.map parse_letter base_letters)

let distance2_automaton ~labels =
  let k = labels in
  let none = k in
  let alpha, parsed = shared_parse ~labels in
  let empty = D2 { lu = none; lv = none; present = 0; wu = 0; wv = 0; via = false } in
  let mem m l = (m lsr l) land 1 = 1 in
  let relabel_set a b m =
    if mem m a then (m land lnot (1 lsl a)) lor (1 lsl b) else m
  in
  (* Once the witness exists, only the pebbles' presence matters for
     acceptance (via stays true; lu/lv evolve independently of the sets),
     so collapsing the sets caps the reachable state count. *)
  let canon = function
    | D2 s when s.via -> D2 { s with present = 0; wu = 0; wv = 0 }
    | st -> st
  in
  let delta_raw ql qr letter =
    let b = Alphabet.base alpha letter in
    let bx = Alphabet.bit alpha letter 0 and by = Alphabet.bit alpha letter 1 in
    let ql = Option.value ~default:empty ql
    and qr = Option.value ~default:empty qr in
    match (ql, qr) with
    | D2_dead, _ | _, D2_dead -> D2_dead
    | D2 s1, D2 s2 -> (
        let pick m1 m2 =
          if m1 <> none && m2 <> none then None
          else Some (if m1 <> none then m1 else m2)
        in
        match (pick s1.lu s2.lu, pick s1.lv s2.lv) with
        | None, _ | _, None -> D2_dead
        | Some lu, Some lv -> (
            let merged =
              {
                lu;
                lv;
                present = s1.present lor s2.present;
                wu = s1.wu lor s2.wu;
                wv = s1.wv lor s2.wv;
                via = s1.via || s2.via;
              }
            in
            match parsed.(b) with
            | `Vertex l ->
                if merged.present <> 0 || lu <> none || lv <> none || merged.via
                then D2_dead
                else if bx || by then
                  D2
                    {
                      lu = (if bx then l else none);
                      lv = (if by then l else none);
                      present = 0;
                      wu = 0;
                      wv = 0;
                      via = false;
                    }
                else D2 { merged with present = 1 lsl l }
            | `Union -> if bx || by then D2_dead else D2 merged
            | `Eta (a, b') ->
                if bx || by then D2_dead
                else begin
                  let gain l m =
                    (* new neighbor labels for a pebble currently labeled l *)
                    let m = if l = a && mem merged.present b' then m lor (1 lsl b') else m in
                    if l = b' && mem merged.present a then m lor (1 lsl a) else m
                  in
                  let wu = gain merged.lu merged.wu in
                  let wv = gain merged.lv merged.wv in
                  let both_new =
                    (merged.lu = a && merged.lv = a && mem merged.present b')
                    || (merged.lu = b' && merged.lv = b' && mem merged.present a)
                  in
                  let one_new =
                    (merged.lu = a && mem merged.wv b')
                    || (merged.lu = b' && mem merged.wv a)
                    || (merged.lv = a && mem merged.wu b')
                    || (merged.lv = b' && mem merged.wu a)
                  in
                  D2 { merged with wu; wv; via = merged.via || both_new || one_new }
                end
            | `Rho (a, b') ->
                if bx || by then D2_dead
                else
                  let rl l = if l = a then b' else l in
                  D2
                    {
                      merged with
                      lu = (if merged.lu = none then none else rl merged.lu);
                      lv = (if merged.lv = none then none else rl merged.lv);
                      present = relabel_set a b' merged.present;
                      wu = relabel_set a b' merged.wu;
                      wv = relabel_set a b' merged.wv;
                    }))
  in
  let delta ql qr letter = canon (delta_raw ql qr letter) in
  let final = function
    | D2_dead -> false
    | D2 s -> s.lu <> none && s.lv <> none && s.via
  in
  (Dta.make_reachable ~nlabels:(Alphabet.size alpha) ~final ~delta, alpha)

let d2_cache : (int, Tree_query.t) Hashtbl.t = Hashtbl.create 4

let distance2_query ~labels =
  if labels > 2 then
    invalid_arg
      "Cw_adjacency.distance2_query: supported for labels <= 2 (state space \
       grows steeply with the label count)";
  match Hashtbl.find_opt d2_cache labels with
  | Some q -> q
  | None ->
      let auto, alpha = distance2_automaton ~labels in
      let q = Tree_query.make (Dta.minimize auto) ~alpha ~k:1 ~s:1 in
      Hashtbl.replace d2_cache labels q;
      q

let neighbors_via_tree ~labels term a =
  let tree = Cw_parse.to_tree ~labels term in
  let nodes = Cw_parse.vertex_nodes tree in
  let node_vertex = Hashtbl.create 16 in
  Array.iteri (fun vertex node -> Hashtbl.replace node_vertex node vertex) nodes;
  let q = query ~labels in
  Tree_query.result_set q tree (Tuple.singleton nodes.(a))
  |> Tuple.Set.elements
  |> List.filter_map (fun t -> Hashtbl.find_opt node_vertex t.(0))
  |> List.sort compare
