(** Compact bit vectors.

    Used for two distinct purposes in the library: as the representation of
    watermark messages (a mark is a word in {0,1}^l, Definition 2), and as
    the set representation inside the VC-dimension toolkit where families of
    query results over an indexed universe are manipulated as bitsets. *)

type t
(** A fixed-length vector of bits. *)

val create : int -> t
(** [create n] is the all-zero vector of length [n].  [n >= 0]. *)

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> bool -> unit

val copy : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val popcount : t -> int
(** Number of set bits. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** Pointwise boolean operations; arguments must have equal length. *)

val is_subset : t -> t -> bool
(** [is_subset a b] iff every bit of [a] is set in [b]. *)

val iter_set : (int -> unit) -> t -> unit
(** Iterate over indices of set bits, ascending. *)

val to_list : t -> int list
(** Indices of set bits, ascending. *)

val of_list : int -> int list -> t
(** [of_list n ixs] is the length-[n] vector with exactly [ixs] set. *)

val of_bools : bool array -> t
val to_bools : t -> bool array

val pp : Format.formatter -> t -> unit
(** Prints as a 0/1 string, index 0 leftmost. *)
