(** Watermark message codec.

    A mark is a boolean word m in {0,1}^l (Definition 2).  Owners usually
    want to embed an identity — a server id or a short string — so this
    module converts between the representations used at the API boundary:
    integers, ASCII strings, and {!Bitvec.t} messages. *)

val of_int : bits:int -> int -> Bitvec.t
(** [of_int ~bits n] is the little-endian [bits]-long encoding of [n].
    Requires [0 <= n < 2^bits]. *)

val to_int : Bitvec.t -> int
(** Little-endian decoding; requires length <= 62. *)

val of_string : string -> Bitvec.t
(** 8 bits per byte, little-endian within each byte. *)

val to_string : Bitvec.t -> string
(** Inverse of {!of_string}; requires length divisible by 8. *)

val of_bool_list : bool list -> Bitvec.t
val to_bool_list : Bitvec.t -> bool list

val random : Prng.t -> int -> Bitvec.t
(** [random g l] is a uniform message of length [l]. *)

val hamming : Bitvec.t -> Bitvec.t -> int
(** Number of positions where the two messages differ (equal lengths). *)

val repeat : times:int -> Bitvec.t -> Bitvec.t
(** [repeat ~times m] concatenates [times] copies of [m]: the redundancy
    encoding used by the adversarial (Khanna-Zane style) wrapper. *)

val majority_decode : times:int -> Bitvec.t -> Bitvec.t
(** Inverse of {!repeat} by per-position majority vote.  The input length
    must be a multiple of [times]; ties decode to [false]. *)
