type align = Left | Right

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
}

let create ?aligns headers =
  let headers = Array.of_list headers in
  let n = Array.length headers in
  let aligns =
    match aligns with
    | Some a ->
        assert (List.length a = n);
        Array.of_list a
    | None -> Array.init n (fun i -> if i = 0 then Left else Right)
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  let n = Array.length t.headers in
  if List.length cells > n then invalid_arg "Texttab.add_row: too many cells";
  let row = Array.make n "" in
  List.iteri (fun i c -> row.(i) <- c) cells;
  t.rows <- row :: t.rows

let addf t fmt =
  Format.kasprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.headers in
  let width = Array.map String.length t.headers in
  List.iter
    (fun row ->
      Array.iteri (fun i c -> width.(i) <- max width.(i) (String.length c)) row)
    rows;
  let pad i s =
    let w = width.(i) in
    let missing = w - String.length s in
    if missing <= 0 then s
    else
      match t.aligns.(i) with
      | Left -> s ^ String.make missing ' '
      | Right -> String.make missing ' ' ^ s
  in
  let line cells =
    String.concat "  " (List.mapi pad (Array.to_list cells))
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') width))
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  ignore n;
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some s ->
      print_newline ();
      print_endline s;
      print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (render t)

let cell_int = string_of_int

let cell_float ?(digits = 3) x = Printf.sprintf "%.*f" digits x

let cell_bool b = if b then "yes" else "no"
