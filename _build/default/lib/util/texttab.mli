(** Plain-text table rendering for the experiment harness.

    Every experiment in [bench/main.exe] prints one table in the style of the
    paper's figures; this module keeps the formatting in one place so the
    tables line up and are diffable across runs. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to [Left] for the
    first column and [Right] for the rest (headers are labels, data are
    numbers in most experiment tables). *)

val add_row : t -> string list -> unit
(** Appends a row; short rows are padded with empty cells, long rows raise
    [Invalid_argument]. *)

val addf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [addf t fmt ...] formats a single row as a ['|']-separated string, e.g.
    [addf t "%d|%s|%.2f" 3 "x" 0.5]. *)

val render : t -> string
(** The table as a string with a header rule, columns padded to content. *)

val print : ?title:string -> t -> unit
(** [print ~title t] writes the optional title and the rendered table to
    stdout. *)

val cell_int : int -> string
val cell_float : ?digits:int -> float -> string
val cell_bool : bool -> string
(** Uniform cell formatting helpers ([digits] defaults to 3). *)
