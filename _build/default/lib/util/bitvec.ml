type t = { len : int; data : Bytes.t }

let create n =
  assert (n >= 0);
  { len = n; data = Bytes.make ((n + 7) / 8) '\000' }

let length v = v.len

let get v i =
  assert (i >= 0 && i < v.len);
  Char.code (Bytes.get v.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set v i b =
  assert (i >= 0 && i < v.len);
  let byte = Char.code (Bytes.get v.data (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.set v.data (i lsr 3) (Char.chr byte)

let copy v = { len = v.len; data = Bytes.copy v.data }

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let compare a b =
  let c = Stdlib.compare a.len b.len in
  if c <> 0 then c else Bytes.compare a.data b.data

let hash v = Hashtbl.hash (v.len, Bytes.to_string v.data)

let popcount_byte =
  let t = Array.make 256 0 in
  for i = 1 to 255 do
    t.(i) <- t.(i lsr 1) + (i land 1)
  done;
  t

let popcount v =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte.(Char.code c)) v.data;
  !n

let map2 f a b =
  assert (a.len = b.len);
  let r = create a.len in
  for i = 0 to Bytes.length a.data - 1 do
    let c = f (Char.code (Bytes.get a.data i)) (Char.code (Bytes.get b.data i)) in
    Bytes.set r.data i (Char.chr (c land 0xff))
  done;
  r

let union = map2 ( lor )
let inter = map2 ( land )
let diff = map2 (fun x y -> x land lnot y)

let is_subset a b =
  assert (a.len = b.len);
  let ok = ref true in
  for i = 0 to Bytes.length a.data - 1 do
    let x = Char.code (Bytes.get a.data i) and y = Char.code (Bytes.get b.data i) in
    if x land lnot y <> 0 then ok := false
  done;
  !ok

let iter_set f v =
  for i = 0 to v.len - 1 do
    if get v i then f i
  done

let to_list v =
  let acc = ref [] in
  for i = v.len - 1 downto 0 do
    if get v i then acc := i :: !acc
  done;
  !acc

let of_list n ixs =
  let v = create n in
  List.iter (fun i -> set v i true) ixs;
  v

let of_bools a =
  let v = create (Array.length a) in
  Array.iteri (fun i b -> if b then set v i true) a;
  v

let to_bools v = Array.init v.len (get v)

let pp fmt v =
  for i = 0 to v.len - 1 do
    Format.pp_print_char fmt (if get v i then '1' else '0')
  done
