(** Deterministic, splittable pseudo-random number generator.

    The watermarking algorithms of the paper are probabilistic (Definition 2
    speaks of a probability space [Omega] over the marker's coin flips), and
    detection requires the owner to replay the marker's choices exactly.  We
    therefore avoid the global [Stdlib.Random] state and thread an explicit
    generator everywhere.  The implementation is SplitMix64, which is fast,
    has a 64-bit state, and supports cheap splitting for independent
    substreams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Equal seeds give
    equal streams on every platform. *)

val copy : t -> t
(** [copy g] is an independent generator whose future output equals [g]'s. *)

val split : t -> t
(** [split g] advances [g] and returns a statistically independent child
    generator; used to give each pair / each experiment its own stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val pm_one : t -> int
(** Uniform in {-1, +1}. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample g k a] draws [min k (Array.length a)] distinct elements uniformly
    without replacement (order unspecified). *)

val subset : t -> float -> 'a list -> 'a list
(** [subset g p xs] keeps each element independently with probability [p]. *)
