lib/util/prng.mli:
