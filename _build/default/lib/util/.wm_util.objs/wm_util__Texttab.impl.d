lib/util/texttab.ml: Array Buffer Format List Printf String
