lib/util/codec.ml: Array Bitvec Char Prng String
