lib/util/codec.mli: Bitvec Prng
