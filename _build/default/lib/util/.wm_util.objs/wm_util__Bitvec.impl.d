lib/util/bitvec.ml: Array Bytes Char Format Hashtbl List Stdlib
