lib/util/stats.mli:
