type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = bits64 g in
  { state = mix s }

let int g n =
  assert (n > 0);
  (* Rejection-free for our sizes: take 62 non-negative bits and mod.  The
     modulo bias is < 2^-50 for any n we use. *)
  let x = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  x mod n

let bool g = Int64.logand (bits64 g) 1L = 1L

let float g x =
  let b = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  b /. 9007199254740992.0 *. x

let bernoulli g p = float g 1.0 < p

let pm_one g = if bool g then 1 else -1

let choose g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample g k a =
  let a = Array.copy a in
  shuffle g a;
  Array.sub a 0 (min k (Array.length a))

let subset g p xs = List.filter (fun _ -> bernoulli g p) xs
