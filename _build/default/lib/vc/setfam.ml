module Bset = Set.Make (struct
  type t = Bitvec.t

  let compare = Bitvec.compare
end)

type t = { universe : int; sets : Bitvec.t list }

let create ~universe sets =
  List.iter
    (fun s ->
      if Bitvec.length s <> universe then
        invalid_arg "Setfam.create: bitset length mismatch")
    sets;
  { universe; sets = Bset.elements (Bset.of_list sets) }

let of_int_sets ~universe int_sets =
  create ~universe (List.map (Bitvec.of_list universe) int_sets)

let universe_size f = f.universe
let cardinal f = List.length f.sets
let sets f = f.sets

let mem_set f ixs =
  let v = Bitvec.of_list f.universe ixs in
  List.exists (Bitvec.equal v) f.sets

let trace_of u s =
  (* u: element array; trace as an int mask over u's positions. *)
  let m = ref 0 in
  Array.iteri (fun i x -> if Bitvec.get s x then m := !m lor (1 lsl i)) u;
  !m

let distinct_traces f ixs =
  let u = Array.of_list ixs in
  if Array.length u > 25 then invalid_arg "Setfam: subset too large";
  let seen = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace seen (trace_of u s) ()) f.sets;
  seen

let trace_count f ixs = Hashtbl.length (distinct_traces f ixs)

let shatters f ixs =
  let k = List.length ixs in
  k <= 25 && trace_count f ixs = 1 lsl k

let restriction f ixs =
  let u = Array.of_list ixs in
  let k = Array.length u in
  let traces = distinct_traces f ixs in
  let sets =
    Hashtbl.fold
      (fun mask () acc ->
        let v = Bitvec.create k in
        for i = 0 to k - 1 do
          Bitvec.set v i ((mask lsr i) land 1 = 1)
        done;
        v :: acc)
      traces []
  in
  create ~universe:k sets
