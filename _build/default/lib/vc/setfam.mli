(** Finite set families over an indexed universe.

    The VC-dimension machinery of Section 1-2 works on the family
    C(psi, G) = { psi(a, G) : a in U^r } of query result sets.  Here a
    family is a deduplicated list of bitsets over [0 .. universe-1]; the
    translation from tuples is in {!Query_vc}. *)

type t

val create : universe:int -> Bitvec.t list -> t
(** Deduplicates; every bitset must have length [universe]. *)

val of_int_sets : universe:int -> int list list -> t

val universe_size : t -> int
val cardinal : t -> int
(** Number of distinct sets. *)

val sets : t -> Bitvec.t list

val mem_set : t -> int list -> bool
(** Is the given set (as sorted element list) one of the family's sets? *)

val trace_count : t -> int list -> int
(** Number of distinct traces C ∩ U for U the given subset. *)

val shatters : t -> int list -> bool
(** C shatters U iff the traces realize all 2^|U| subsets of U.  U must
    have at most 25 elements. *)

val restriction : t -> int list -> t
(** The trace family C|U, re-indexed over [0 .. |U|-1]. *)
