lib/vc/vc.ml: List Setfam
