lib/vc/vc.mli: Setfam
