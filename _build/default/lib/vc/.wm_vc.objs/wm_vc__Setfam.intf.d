lib/vc/setfam.mli: Bitvec
