lib/vc/query_vc.ml: Array Bitvec Fun List Query Setfam Tuple Vc
