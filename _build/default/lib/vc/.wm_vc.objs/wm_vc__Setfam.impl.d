lib/vc/setfam.ml: Array Bitvec Hashtbl List Set
