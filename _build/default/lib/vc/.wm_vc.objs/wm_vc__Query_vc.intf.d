lib/vc/query_vc.mli: Query Setfam Structure Tuple
