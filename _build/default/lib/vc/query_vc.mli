(** VC-dimension of query-definable families.

    Bridges {!Wm_logic.Query} result sets and the bitset families of
    {!Setfam}: the universe is the active set W (indexed in tuple order),
    and the family is { W_a : a in U^r }. *)

type indexed = {
  fam : Setfam.t;
  index : Tuple.t array;  (** universe position -> tuple *)
}

val of_result_sets : Tuple.Set.t list -> indexed
(** Universe = union of the given sets. *)

val of_query : Structure.t -> Query.t -> indexed
(** The family C(psi, G) over the active elements. *)

val dimension_of_query : Structure.t -> Query.t -> int
(** VC(psi, G). *)

val maximal_on : Structure.t -> Query.t -> bool
(** The impossibility condition of Theorem 2: VC(psi, G) = |W| because W
    itself is shattered. *)

val bounded_on_class : (int -> Structure.t) -> Query.t -> sizes:int list ->
  bound:int -> bool
(** [bounded_on_class make q ~sizes ~bound] checks VC(psi, make n) <= bound
    for each listed size — the empirical side of "psi has bounded
    VC-dimension on K". *)
