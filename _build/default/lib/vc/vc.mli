(** Exact VC-dimension computation and Sauer-Shelah bounds.

    VC(C) is the size of the largest subset of the universe shattered by C
    (Section 1).  Theorem 2 turns maximal VC-dimension
    (VC(psi, G) = |W|) into a watermarking impossibility; experiment E3
    verifies the shattering side with this module. *)

val dimension : ?max:int -> Setfam.t -> int
(** Exact VC-dimension by level-wise search: shattered k-sets are only
    extended from shattered (k-1)-sets (shattering is hereditary), which
    keeps the search tractable for the family sizes in the experiments.
    [max] (default: universe size) caps the search. *)

val shattered_sets : Setfam.t -> int -> int list list
(** All shattered subsets of the given size (each sorted ascending). *)

val is_maximal : Setfam.t -> active:int list -> bool
(** The Theorem 2 condition VC(psi, G) = |W|: the whole active set is
    shattered. *)

val sauer_shelah : d:int -> n:int -> int
(** The Sauer-Shelah bound sum_{i<=d} C(n, i) on the number of distinct
    sets of a family with VC-dimension d over an n-element universe
    (saturates at [max_int/2]). *)

val respects_sauer_shelah : Setfam.t -> bool
(** |C| <= sauer_shelah (dimension C) n — true for every family; a
    property-test hook for the implementation itself. *)

val growth : Setfam.t -> int -> int
(** The shatter function pi_C(m): the maximum number of traces over any
    m-element subset.  Exponential in m; keep m small. *)
