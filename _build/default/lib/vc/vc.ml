let shattered_level f prev =
  (* Extend each shattered set by one element larger than its maximum:
     every shattered (k+1)-set has all its k-subsets shattered, in
     particular its prefix, so this enumeration is exhaustive. *)
  let n = Setfam.universe_size f in
  List.concat_map
    (fun set ->
      let lo = match List.rev set with [] -> -1 | m :: _ -> m in
      let rec go x acc =
        if x >= n then List.rev acc
        else
          let cand = set @ [ x ] in
          if Setfam.shatters f cand then go (x + 1) (cand :: acc)
          else go (x + 1) acc
      in
      go (lo + 1) [])
    prev

let dimension ?max f =
  let cap = match max with Some m -> m | None -> Setfam.universe_size f in
  let rec go d level =
    if d >= cap then d
    else
      match shattered_level f level with
      | [] -> d
      | next -> go (d + 1) next
  in
  go 0 [ [] ]

let shattered_sets f size =
  let rec go k level =
    if k = size then level else go (k + 1) (shattered_level f level)
  in
  if size < 0 then []
  else go 0 [ [] ]

let is_maximal f ~active = Setfam.shatters f active

let sauer_shelah ~d ~n =
  let cap = max_int / 2 in
  let rec binom n k =
    if k < 0 || k > n then 0
    else if k = 0 then 1
    else
      let prev = binom (n - 1) (k - 1) in
      if prev > cap / n then cap else prev * n / k
  in
  let rec total i acc =
    if i > d then acc
    else
      let b = binom n i in
      if acc > cap - b then cap else total (i + 1) (acc + b)
  in
  total 0 0

let respects_sauer_shelah f =
  Setfam.cardinal f
  <= sauer_shelah ~d:(dimension f) ~n:(Setfam.universe_size f)

let growth f m =
  let n = Setfam.universe_size f in
  let best = ref 0 in
  let rec go start set k =
    if k = 0 then best := max !best (Setfam.trace_count f (List.rev set))
    else
      for x = start to n - k do
        go (x + 1) (x :: set) (k - 1)
      done
  in
  if m > n then invalid_arg "Vc.growth: m exceeds universe";
  go 0 [] m;
  !best
