type indexed = { fam : Setfam.t; index : Tuple.t array }

let of_result_sets results =
  let universe =
    List.fold_left Tuple.Set.union Tuple.Set.empty results
  in
  let index = Array.of_list (Tuple.Set.elements universe) in
  let pos = Tuple.Hashtbl.create (Array.length index) in
  Array.iteri (fun i t -> Tuple.Hashtbl.replace pos t i) index;
  let n = Array.length index in
  let to_bits s =
    let v = Bitvec.create n in
    Tuple.Set.iter (fun t -> Bitvec.set v (Tuple.Hashtbl.find pos t) true) s;
    v
  in
  { fam = Setfam.create ~universe:n (List.map to_bits results); index }

let of_query g q =
  of_result_sets (List.map snd (Query.tabulate g q))

let dimension_of_query g q = Vc.dimension (of_query g q).fam

let maximal_on g q =
  let ix = of_query g q in
  let all = List.init (Array.length ix.index) Fun.id in
  Vc.is_maximal ix.fam ~active:all

let bounded_on_class make q ~sizes ~bound =
  List.for_all (fun n -> dimension_of_query (make n) q <= bound) sizes
