(** Tuples of universe elements.

    A database instance interprets each relation symbol as a set of tuples
    over a finite universe; we represent universe elements as integers
    [0 .. n-1] and tuples as immutable-by-convention int arrays.  Weighted
    elements (the [s]-tuples carrying weights) use the same representation. *)

type t = int array

val compare : t -> t -> int
(** Lexicographic; shorter tuples sort first. *)

val equal : t -> t -> bool
val hash : t -> int

val arity : t -> int

val of_list : int list -> t
val to_list : t -> int list

val singleton : int -> t
val pair : int -> int -> t

val concat : t -> t -> t
(** [concat a b] is the (r+s)-tuple a followed by b — used to glue a query
    parameter to a candidate result before evaluation. *)

val mem_elt : int -> t -> bool
(** Does the element occur in the tuple? *)

val max_elt : t -> int
(** Largest element; -1 for the empty tuple. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(a,b,c)]; bare element for arity 1. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

module Hashtbl : Hashtbl.S with type key = t
