(** Finite relations: sets of equal-arity tuples. *)

type t

val empty : int -> t
(** [empty arity] is the empty relation of the given arity. *)

val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val mem : Tuple.t -> t -> bool
val add : Tuple.t -> t -> t
(** @raise Invalid_argument if the tuple's arity differs. *)

val remove : Tuple.t -> t -> t

val of_list : int -> Tuple.t list -> t
val of_pairs : (int * int) list -> t
(** Convenience builder for binary relations. *)

val to_list : t -> Tuple.t list
(** Ascending tuple order. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Tuple.t -> bool) -> t -> t
val for_all : (Tuple.t -> bool) -> t -> bool
val exists : (Tuple.t -> bool) -> t -> bool

val union : t -> t -> t
val equal : t -> t -> bool

val restrict : (int -> bool) -> t -> t
(** [restrict keep r] keeps the tuples all of whose elements satisfy [keep]
    — the relation part of an induced substructure. *)

val rename : (int -> int) -> t -> t
(** Applies an element renaming to every tuple. *)

val max_elt : t -> int
(** Largest element mentioned, -1 if empty. *)

val pp : Format.formatter -> t -> unit
