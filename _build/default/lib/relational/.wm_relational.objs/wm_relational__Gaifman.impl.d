lib/relational/gaifman.ml: Array Int List Queue Relation Set Structure
