lib/relational/structure.mli: Format Relation Schema Tuple
