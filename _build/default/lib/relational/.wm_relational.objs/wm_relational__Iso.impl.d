lib/relational/iso.ml: Array Gaifman Hashtbl List Queue Relation Structure
