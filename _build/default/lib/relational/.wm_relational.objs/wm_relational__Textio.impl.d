lib/relational/textio.ml: Array Buffer Fun List Printf Relation Schema String Structure Tuple Weighted
