lib/relational/neighborhood.mli: Gaifman Structure Tuple
