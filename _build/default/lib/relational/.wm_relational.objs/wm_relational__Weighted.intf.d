lib/relational/weighted.mli: Format Structure Tuple
