lib/relational/iso.mli: Structure
