lib/relational/structure.ml: Array Format Fun Hashtbl List Map Relation Schema String Tuple
