lib/relational/textio.mli: Weighted
