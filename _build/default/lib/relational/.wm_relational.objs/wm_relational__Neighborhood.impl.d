lib/relational/neighborhood.ml: Array Gaifman Hashtbl Iso List Structure Tuple
