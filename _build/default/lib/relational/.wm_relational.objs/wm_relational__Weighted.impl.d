lib/relational/weighted.ml: Array Format List Schema Structure Tuple
