lib/relational/gaifman.mli: Structure Tuple
