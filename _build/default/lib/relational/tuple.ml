type t = int array

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c = Stdlib.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let hash (a : t) =
  Array.fold_left (fun acc x -> (acc * 1000003) + x + 1) 17 a

let arity = Array.length

let of_list = Array.of_list
let to_list = Array.to_list

let singleton x = [| x |]
let pair x y = [| x; y |]

let concat = Array.append

let mem_elt x t = Array.exists (( = ) x) t

let max_elt t = Array.fold_left max (-1) t

let pp fmt t =
  match Array.length t with
  | 1 -> Format.pp_print_int fmt t.(0)
  | _ ->
      Format.fprintf fmt "(%s)"
        (String.concat "," (List.map string_of_int (Array.to_list t)))

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Hashtbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
