type nbh = {
  sub : Structure.t;
  center : int list;
  original : int array;
}

let of_tuple g gf ~rho c =
  let sphere = Gaifman.sphere_tuple gf ~rho c in
  (* Put the tuple's own elements first so their new ids are stable. *)
  let sub, original = Structure.induced g (Array.to_list c @ sphere) in
  let new_id = Hashtbl.create 16 in
  Array.iteri (fun nw old -> Hashtbl.replace new_id old nw) original;
  let center = List.map (Hashtbl.find new_id) (Array.to_list c) in
  { sub; center; original }

let equivalent g gf ~rho a b =
  let na = of_tuple g gf ~rho a and nb = of_tuple g gf ~rho b in
  Iso.isomorphic na.sub na.center nb.sub nb.center

type index = {
  rho : int;
  types : int Tuple.Map.t;
  representatives : Tuple.t array;
}

let all_tuples g ~arity =
  let n = Structure.size g in
  let rec go k acc =
    if k = 0 then acc
    else
      go (k - 1)
        (List.concat_map
           (fun rest -> List.init n (fun x -> x :: rest))
           acc)
  in
  List.map Tuple.of_list (go arity [ [] ])

let index g ~rho tuples =
  let gf = Gaifman.of_structure g in
  (* Buckets keyed by certificate; each bucket holds a list of
     (type id, representative neighborhood, representative tuple). *)
  let buckets : (int, (int * nbh) list ref) Hashtbl.t = Hashtbl.create 64 in
  let reps = ref [] in
  let next_ty = ref 0 in
  let types =
    List.fold_left
      (fun acc c ->
        if Tuple.Map.mem c acc then acc
        else
          let nb = of_tuple g gf ~rho c in
          let cert = Iso.certificate nb.sub nb.center in
          let bucket =
            match Hashtbl.find_opt buckets cert with
            | Some b -> b
            | None ->
                let b = ref [] in
                Hashtbl.add buckets cert b;
                b
          in
          let ty =
            match
              List.find_opt
                (fun (_, rep) ->
                  Iso.isomorphic nb.sub nb.center rep.sub rep.center)
                !bucket
            with
            | Some (ty, _) -> ty
            | None ->
                let ty = !next_ty in
                incr next_ty;
                bucket := (ty, nb) :: !bucket;
                reps := c :: !reps;
                ty
          in
          Tuple.Map.add c ty acc)
      Tuple.Map.empty tuples
  in
  { rho; types; representatives = Array.of_list (List.rev !reps) }

let index_universe g ~rho ~arity = index g ~rho (all_tuples g ~arity)

let ntp ix = Array.length ix.representatives

let type_of ix c =
  match Tuple.Map.find_opt c ix.types with
  | Some ty -> ty
  | None -> raise Not_found
