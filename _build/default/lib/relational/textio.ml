exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

let to_string (ws : Weighted.structure) =
  let g = ws.Weighted.graph in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# qpwm weighted structure\n";
  add "schema %s\n"
    (String.concat " "
       (List.map
          (fun (s : Schema.symbol) -> Printf.sprintf "%s/%d" s.name s.arity)
          (Schema.symbols (Structure.schema g))));
  add "weight_arity %d\n" (Schema.weight_arity (Structure.schema g));
  add "size %d\n" (Structure.size g);
  List.iter
    (fun x ->
      let n = Structure.name_of g x in
      if n <> string_of_int x then add "name %d %s\n" x n)
    (Structure.universe g);
  Structure.fold_relations
    (fun name r () ->
      Relation.iter
        (fun t ->
          add "rel %s %s\n" name
            (String.concat " " (List.map string_of_int (Tuple.to_list t))))
        r)
    g ();
  List.iter
    (fun (t, v) ->
      add "weight %s %d\n"
        (String.concat " " (List.map string_of_int (Tuple.to_list t)))
        v)
    (Weighted.bindings ws.Weighted.weights);
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let schema = ref None in
  let weight_arity = ref 1 in
  let size = ref None in
  let names = ref [] in
  let rels = ref [] in
  let weights = ref [] in
  let int_of s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> fail "not an integer: %S" s
  in
  List.iteri
    (fun lineno line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then begin
        let words = String.split_on_char ' ' line |> List.filter (( <> ) "") in
        match words with
        | "schema" :: syms ->
            let parse_sym s =
              match String.split_on_char '/' s with
              | [ name; ar ] -> { Schema.name; arity = int_of ar }
              | _ -> fail "line %d: bad symbol %S" (lineno + 1) s
            in
            schema := Some (List.map parse_sym syms)
        | [ "weight_arity"; a ] -> weight_arity := int_of a
        | [ "size"; n ] -> size := Some (int_of n)
        | "name" :: x :: rest ->
            names := (int_of x, String.concat " " rest) :: !names
        | "rel" :: name :: elts ->
            rels := (name, List.map int_of elts) :: !rels
        | "weight" :: parts -> begin
            match List.rev parts with
            | v :: rev_t ->
                weights := (List.rev_map int_of rev_t, int_of v) :: !weights
            | [] -> fail "line %d: empty weight" (lineno + 1)
          end
        | _ -> fail "line %d: unknown directive %S" (lineno + 1) line
      end)
    lines;
  let symbols = match !schema with Some s -> s | None -> fail "missing schema" in
  let size = match !size with Some n -> n | None -> fail "missing size" in
  let schema = Schema.make ~weight_arity:!weight_arity symbols in
  let name_arr =
    if !names = [] then None
    else begin
      let a = Array.init size string_of_int in
      List.iter
        (fun (x, n) ->
          if x < 0 || x >= size then fail "name index %d out of range" x;
          a.(x) <- n)
        !names;
      Some a
    end
  in
  let g = ref (Structure.create ?names:name_arr schema size) in
  List.iter
    (fun (name, elts) ->
      match Structure.add_tuple !g name (Tuple.of_list elts) with
      | g' -> g := g'
      | exception Not_found -> fail "unknown relation %S" name
      | exception Invalid_argument m -> fail "bad tuple for %s: %s" name m)
    (List.rev !rels);
  let w =
    List.fold_left
      (fun w (t, v) -> Weighted.set w (Tuple.of_list t) v)
      (Weighted.create !weight_arity)
      (List.rev !weights)
  in
  match Weighted.make !g w with
  | ws -> ws
  | exception Invalid_argument m -> fail "inconsistent weights: %s" m

let save path ws =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ws))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
