type symbol = { name : string; arity : int }

type t = { symbols : symbol list; weight_arity : int }

let make ?(weight_arity = 1) symbols =
  if weight_arity < 1 then invalid_arg "Schema.make: weight_arity < 1";
  List.iter
    (fun s -> if s.arity < 1 then invalid_arg "Schema.make: arity < 1")
    symbols;
  let names = List.map (fun s -> s.name) symbols in
  let sorted = List.sort_uniq String.compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Schema.make: duplicate symbol name";
  { symbols; weight_arity }

let symbols t = t.symbols
let weight_arity t = t.weight_arity

let arity_of t name =
  match List.find_opt (fun s -> s.name = name) t.symbols with
  | Some s -> s.arity
  | None -> raise Not_found

let mem t name = List.exists (fun s -> s.name = name) t.symbols

let graph = make [ { name = "E"; arity = 2 } ]

let travel =
  make [ { name = "Route"; arity = 2 }; { name = "Timetable"; arity = 4 } ]

let pp fmt t =
  Format.fprintf fmt "{%s; s=%d}"
    (String.concat ", "
       (List.map (fun s -> Printf.sprintf "%s/%d" s.name s.arity) t.symbols))
    t.weight_arity
