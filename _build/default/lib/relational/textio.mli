(** Plain-text serialization of weighted structures.

    The on-disk format the [wmark] CLI reads and writes.  Line-oriented,
    comments with [#]:

    {v
    # qpwm weighted structure
    schema Route/2 Timetable/4
    weight_arity 1
    size 18
    name 0 India discovery      # optional, one per line
    rel Route 0 3
    rel Timetable 3 9 10 15
    weight 3 635
    v}

    Unknown directives are an error; names may contain spaces (the rest of
    the line). *)

exception Format_error of string

val to_string : Weighted.structure -> string
val of_string : string -> Weighted.structure

val save : string -> Weighted.structure -> unit
val load : string -> Weighted.structure
(** File variants. @raise Sys_error on IO problems, @raise Format_error on
    malformed content. *)
