(* Exact isomorphism by backtracking, with color-refinement invariants used
   both for candidate pruning and for the stand-alone certificate. *)

let initial_colors g dist =
  let n = Structure.size g in
  let dist_ix = Array.make n (-1) in
  List.iteri (fun i a -> dist_ix.(a) <- i) dist;
  let incid = Array.make n [] in
  Structure.fold_relations
    (fun name r () ->
      Relation.iter
        (fun t ->
          Array.iteri
            (fun pos a -> incid.(a) <- (name, pos) :: incid.(a))
            t)
        r)
    g ();
  Array.init n (fun a ->
      Hashtbl.hash (dist_ix.(a), List.sort compare incid.(a)))

let refine gf colors =
  let n = Array.length colors in
  Array.init n (fun a ->
      let ns = List.map (fun b -> colors.(b)) (Gaifman.neighbors gf a) in
      Hashtbl.hash (colors.(a), List.sort compare ns))

let stable_colors g dist =
  let gf = Gaifman.of_structure g in
  let n = Structure.size g in
  let rec go colors k =
    if k = 0 then colors
    else
      let colors' = refine gf colors in
      if colors' = colors then colors else go colors' (k - 1)
  in
  go (initial_colors g dist) (max 1 n)

let certificate g dist =
  let colors = stable_colors g dist in
  let census = Array.to_list colors |> List.sort compare in
  let rel_sizes =
    Structure.fold_relations
      (fun name r acc -> (name, Relation.cardinal r) :: acc)
      g []
    |> List.sort compare
  in
  let dist_colors = List.map (fun a -> colors.(a)) dist in
  Hashtbl.hash (Structure.size g, rel_sizes, census, dist_colors)

let isomorphic ga da gb db =
  let n = Structure.size ga in
  if n <> Structure.size gb || List.length da <> List.length db then false
  else begin
    let ca = stable_colors ga da and cb = stable_colors gb db in
    let census c = List.sort compare (Array.to_list c) in
    if census ca <> census cb then false
    else begin
      let rel_names =
        Structure.fold_relations (fun name _ acc -> name :: acc) ga []
      in
      let sizes_ok =
        List.for_all
          (fun name ->
            Relation.cardinal (Structure.relation ga name)
            = Relation.cardinal (Structure.relation gb name))
          rel_names
      in
      if not sizes_ok then false
      else begin
        (* Forced images of distinguished elements; duplicates in [da] must
           repeat consistently in [db] and images must be distinct. *)
        let forced = Hashtbl.create 8 in
        let forced_ok =
          List.for_all2
            (fun a b ->
              match Hashtbl.find_opt forced a with
              | Some b' -> b = b'
              | None ->
                  if Hashtbl.fold (fun _ v acc -> acc || v = b) forced false
                  then false
                  else begin
                    Hashtbl.add forced a b;
                    true
                  end)
            da db
        in
        if not forced_ok then false
        else begin
        (* Tuples of A indexed by their highest-ordered element so we check a
           tuple exactly once, as soon as it becomes fully mapped. *)
        let map = Array.make n (-1) in
        let used = Array.make n false in
        let order = Array.make n (-1) in
        (* Order: distinguished first, then a BFS-ish sweep to keep partial
           maps connected when possible. *)
        let pos = ref 0 in
        let placed = Array.make n false in
        List.iter
          (fun a ->
            if not placed.(a) then begin
              order.(!pos) <- a;
              placed.(a) <- true;
              incr pos
            end)
          da;
        let gfa = Gaifman.of_structure ga in
        let queue = Queue.create () in
        List.iter (fun a -> Queue.add a queue) da;
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          List.iter
            (fun v ->
              if not placed.(v) then begin
                order.(!pos) <- v;
                placed.(v) <- true;
                incr pos;
                Queue.add v queue
              end)
            (Gaifman.neighbors gfa u)
        done;
        for a = 0 to n - 1 do
          if not placed.(a) then begin
            order.(!pos) <- a;
            placed.(a) <- true;
            incr pos
          end
        done;
        let order_ix = Array.make n (-1) in
        Array.iteri (fun i a -> order_ix.(a) <- i) order;
        (* tuples_at.(i): tuples of A whose latest element (in order) is
           order.(i), paired with their relation. *)
        let tuples_at = Array.make n [] in
        Structure.fold_relations
          (fun name r () ->
            Relation.iter
              (fun t ->
                let last =
                  Array.fold_left (fun acc x -> max acc order_ix.(x)) (-1) t
                in
                tuples_at.(last) <- (name, t) :: tuples_at.(last))
              r)
          ga ();
        let rec extend i =
          if i = n then true
          else
            let a = order.(i) in
            let candidates =
              match Hashtbl.find_opt forced a with
              | Some b -> [ b ]
              | None -> Structure.universe gb
            in
            List.exists
              (fun b ->
                (not used.(b))
                && ca.(a) = cb.(b)
                &&
                begin
                  map.(a) <- b;
                  used.(b) <- true;
                  let ok =
                    List.for_all
                      (fun (name, t) ->
                        let img = Array.map (fun x -> map.(x)) t in
                        Relation.mem img (Structure.relation gb name))
                      tuples_at.(i)
                  in
                  let ok = ok && extend (i + 1) in
                  if not ok then begin
                    map.(a) <- -1;
                    used.(b) <- false
                  end;
                  ok
                end)
              candidates
        in
        extend 0
        end
      end
    end
  end
