(** Database schemas (signatures).

    A signature tau is a finite set of relation symbols with arities
    (Section 1).  The schema additionally fixes the weight arity [s]: the
    arity of the tuples the weight assignment W : U^s -> N is defined on.
    In all the paper's examples s = 1 (weights sit on single elements,
    e.g. the [duration] of a transport), but the machinery is generic. *)

type symbol = { name : string; arity : int }

type t

val make : ?weight_arity:int -> symbol list -> t
(** [make symbols] builds a schema.  Symbol names must be distinct and
    arities positive; [weight_arity] defaults to 1. *)

val symbols : t -> symbol list
val weight_arity : t -> int

val arity_of : t -> string -> int
(** Arity of a named symbol.  @raise Not_found on unknown names. *)

val mem : t -> string -> bool

val graph : t
(** The schema of plain graphs: one binary symbol ["E"], weight arity 1. *)

val travel : t
(** The schema of the paper's Example 1: binary ["Route"] and 4-ary
    ["Timetable"], weight arity 1 (weights on transports). *)

val pp : Format.formatter -> t -> unit
