(** Isomorphism of small structures with distinguished elements.

    Neighborhood equivalence a ~rho b (Section 3) is isomorphism of the
    neighborhoods N_rho(a) and N_rho(b), where the i-th distinguished
    element of one must map to the i-th of the other.  Bounded-degree
    spheres are small, so a certificate-bucketed backtracking search is
    exact and fast enough; the certificate (iterated color refinement) is
    sound — isomorphic inputs always get equal certificates — and is used
    to avoid the quadratic number of pairwise tests when typing all
    parameters. *)

val isomorphic :
  Structure.t -> int list -> Structure.t -> int list -> bool
(** [isomorphic a da b db] decides whether there is an isomorphism of [a]
    onto [b] mapping the i-th element of [da] to the i-th of [db].  The two
    structures must share a schema; distinguished lists must have equal
    lengths. *)

val certificate : Structure.t -> int list -> int
(** Refinement-based invariant of [(structure, distinguished)] up to
    isomorphism: equal for isomorphic inputs, usually different
    otherwise. *)
