let mark_relational ?options (ws : Weighted.structure) q ~message =
  let prepared =
    match options with
    | Some o -> Local_scheme.prepare ~options:o ws q
    | None -> Local_scheme.prepare ws q
  in
  match prepared with
  | Error e -> Error e
  | Ok scheme ->
      if Bitvec.length message > Local_scheme.capacity scheme then
        Error
          (Printf.sprintf "message needs %d bits but capacity is %d"
             (Bitvec.length message)
             (Local_scheme.capacity scheme))
      else
        let marked = Local_scheme.mark scheme message ws.Weighted.weights in
        Ok (scheme, { ws with Weighted.weights = marked })

let detect_relational scheme ~original ~suspect ~length =
  Local_scheme.detect_weights scheme ~original:original.Weighted.weights
    ~suspect:suspect.Weighted.weights ~length

type xml_scheme = {
  scheme : Tree_scheme.t;
  binary : Wm_trees.Btree.t;
  pattern : Wm_xml.Pattern.t;
}

let prepare_xml ?options doc pattern =
  let constants = Wm_xml.Pattern.constants pattern in
  let binary = Wm_xml.Encode.to_binary_abstract ~constants doc in
  let alphabet = Wm_xml.Encode.abstract_alphabet ~constants doc in
  match Wm_xml.Pattern.compile pattern ~alphabet with
  | exception Wm_trees.Mso_compile.Unsupported msg -> Error msg
  | query -> (
      let prepared =
        match options with
        | Some o -> Tree_scheme.prepare ~options:o binary query
        | None -> Tree_scheme.prepare binary query
      in
      match prepared with
      | Error e -> Error e
      | Ok scheme -> Ok { scheme; binary; pattern })

let mark_xml xs ~message doc =
  let w = Wm_xml.Utree.weights doc in
  let w' = Tree_scheme.mark xs.scheme message w in
  Wm_xml.Utree.with_weights doc w'

let detect_xml xs ~original ~suspect ~length =
  if Wm_xml.Utree.size original <> Wm_xml.Utree.size suspect then
    invalid_arg "Pipeline.detect_xml: structurally different documents";
  Tree_scheme.detect_weights xs.scheme
    ~original:(Wm_xml.Utree.weights original)
    ~suspect:(Wm_xml.Utree.weights suspect)
    ~length
