(** Exact watermarking-capacity counting — #Mark (Theorem 1).

    #Mark counts the distinct weight perturbations of an instance meeting a
    distortion condition.  Computing it for distortion exactly d is
    #P-complete; this module implements the brute-force counter (usable on
    small instances) and the reduction of Theorem 1, whose correctness is
    checked against Ryser's permanent in experiment E2. *)

type condition =
  | Max_le of int  (** every parameter's |distortion| <= d *)
  | Max_eq of int  (** ... <= d with equality somewhere *)
  | All_eq of int  (** every parameter's distortion = +d exactly —
                       the reduction's condition with d = 1 *)

val count :
  ?deltas:int list -> Query_system.t -> condition -> int
(** [count qs cond] enumerates assignments of per-element deltas (default
    [[-1; 0; 1]]; the reduction uses [[0; 1]]) over the active elements,
    counting those whose per-parameter summed distortion satisfies the
    condition.  Branch-and-bound on reachable distortion intervals prunes
    the search.  Exponential in |W| — guard with [max_active]. *)

val count_matchings : Weighted.structure -> Query.t -> int
(** The counting side of the Theorem 1 reduction: on the marking problem
    built by {!Wm_workload.Bipartite.to_marking_problem}, count {0,+1}
    markings distorting every query by exactly 1.  Equals the graph's
    permanent — that equality {e is} the reduction's correctness
    (experiment E2). *)
