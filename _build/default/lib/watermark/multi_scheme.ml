type options = Local_scheme.options

type report = {
  queries : int;
  rho : int list;
  ntp : int list;
  active : int;
  pairs_available : int;
  pairs_selected : int;
  budget : int;
  max_split : int;
}

type t = {
  systems : Query_system.t list;
  combined : Query_system.t;
  selected : Pairing.pair list;
  rep : report;
}

(* Disjoint union of query systems: parameters carry their query index as
   a leading component.  Result sets (hence active sets, split counts,
   distortion) are untouched — only parameter identity is enriched. *)
let tag i a = Tuple.concat (Tuple.singleton i) a

let combined_of systems =
  let arr = Array.of_list systems in
  let params =
    List.concat
      (List.mapi
         (fun i qs -> List.map (tag i) (Query_system.params qs))
         systems)
  in
  Query_system.of_custom ~params
    ~result_set:(fun tagged ->
      let i = tagged.(0) in
      let a = Array.sub tagged 1 (Array.length tagged - 1) in
      Query_system.result_set arr.(i) a)
    ~weight_arity:(Query_system.weight_arity (List.hd systems))

let prepare ?(options = Local_scheme.default_options) (ws : Weighted.structure)
    queries =
  let g = ws.Weighted.graph in
  if queries = [] then Error "no queries"
  else if
    List.exists
      (fun q -> Query.result_arity q <> Weighted.arity ws.Weighted.weights)
      queries
  then Error "some query's result arity differs from the weight arity"
  else begin
    let systems = List.map (Query_system.of_relational g) queries in
    let combined = combined_of systems in
    if Query_system.active combined = [] then
      Error "queries have no active weighted elements"
    else begin
      let rhos =
        List.map
          (fun q ->
            match options.Local_scheme.rho with
            | Some r -> r
            | None -> Locality.best_rank q.Query.phi)
          queries
      in
      let indexes =
        List.map2
          (fun q rho -> Neighborhood.index g ~rho (Query.all_params g q))
          queries rhos
      in
      let canonical =
        List.concat
          (List.mapi
             (fun i ix ->
               List.map (tag i)
                 (Array.to_list ix.Neighborhood.representatives))
             indexes)
      in
      let all_pairs = Pairing.s_partition combined ~canonical in
      let budget =
        int_of_float (ceil (1.0 /. options.Local_scheme.epsilon))
      in
      let selected =
        Pairing.select_greedy
          (Prng.create options.Local_scheme.seed)
          combined all_pairs ~budget
      in
      if selected = [] then Error "no pair survived eps-good selection"
      else
        Ok
          {
            systems;
            combined;
            selected;
            rep =
              {
                queries = List.length queries;
                rho = rhos;
                ntp = List.map Neighborhood.ntp indexes;
                active = List.length (Query_system.active combined);
                pairs_available = List.length all_pairs;
                pairs_selected = List.length selected;
                budget;
                max_split = Pairing.max_split combined selected;
              };
          }
    end
  end

let report t = t.rep
let capacity t = List.length t.selected
let pairs t = t.selected

let mark t message w =
  Weighted.apply_marks w (Pairing.orientation_marks t.selected message)

let detect_weights t ~original ~suspect ~length =
  if length > capacity t then
    invalid_arg "Multi_scheme.detect_weights: length exceeds capacity";
  let observed =
    Query_system.reconstruct t.combined (Query_system.server t.combined suspect)
  in
  (Detector.read t.selected ~original ~observed ~length).Detector.decoded

let distortion t w w' =
  List.mapi (fun i qs -> (i, Distortion.global qs w w')) t.systems
