(** The Theorem 5 watermarking scheme: automaton queries on trees.

    Following Lemma 3: a postorder pass groups active weighted nodes into
    minimal blocks of at least [2m] ungrouped members (m = automaton state
    count); blocks with at most one block-descendant are kept, each with
    its region V_i (the subtree at its root minus the subtree at its child
    block's root); inside each block we look for two {e behaviorally
    equivalent} candidates — nodes b, b' such that, for every possible
    entering state at the child block's root, the automaton reaches the
    same state at the block root whether the result pebble sits on b or on
    b'.  Such a pair satisfies, for every parameter a outside V_i,
    b in W_a iff b' in W_a, so orienting the pair (+1,-1) moves no f(a)
    with a outside V_i; a parameter inside V_i meets exactly one pair, so
    the global distortion of {e any} message is at most the number of
    pairs per block (default 1).

    DESIGN.md section 3.2 records why behavioral equivalence (rather than
    the paper's per-entering-state pairs) is used: it is the sound reading
    of the lemma when several pairs are marked at once. *)

type options = {
  seed : int;
  block_size : int option;  (** override the 2m member threshold *)
  pairs_per_block : int;  (** default 1; raising it trades distortion for capacity *)
}

val default_options : options

type report = {
  states : int;  (** m *)
  tree_size : int;
  active : int;  (** |W| *)
  predicted_pairs : int;  (** the lemma's |W| / 4m *)
  blocks_formed : int;
  blocks_kept : int;  (** blocks with <= 1 child block *)
  blocks_paired : int;  (** blocks where a behavioral collision existed *)
  capacity : int;  (** total pairs = message bits *)
  certified_distortion : int;  (** pairs_per_block — holds for any message *)
}

type t

val prepare :
  ?options:options -> Wm_trees.Btree.t -> Wm_trees.Tree_query.t ->
  (t, string) result
(** Requires k = 1, s = 1.  Fails when no block yields a pair. *)

val report : t -> report
val capacity : t -> int
val pairs : t -> Pairing.pair list
val regions : t -> (int * int option) list
(** (block root, child block root) for each paired block — diagnostics. *)

val query_system : t -> Query_system.t

val mark : t -> Bitvec.t -> Weighted.t -> Weighted.t
val detect : t -> original:Weighted.t -> server:Query_system.server ->
  length:int -> Bitvec.t
val detect_weights : t -> original:Weighted.t -> suspect:Weighted.t ->
  length:int -> Bitvec.t
