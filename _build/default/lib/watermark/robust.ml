type base = {
  capacity : int;
  embed : Bitvec.t -> Weighted.t -> Weighted.t;
  extract : original:Weighted.t -> server:Query_system.server -> Bitvec.t;
}

let of_local scheme =
  {
    capacity = Local_scheme.capacity scheme;
    embed = (fun m w -> Local_scheme.mark scheme m w);
    extract =
      (fun ~original ~server ->
        Local_scheme.detect scheme ~original ~server
          ~length:(Local_scheme.capacity scheme));
  }

let of_tree scheme =
  {
    capacity = Tree_scheme.capacity scheme;
    embed = (fun m w -> Tree_scheme.mark scheme m w);
    extract =
      (fun ~original ~server ->
        Tree_scheme.detect scheme ~original ~server
          ~length:(Tree_scheme.capacity scheme));
  }

let redundancy_for base ~message_length =
  if message_length <= 0 then invalid_arg "Robust.redundancy_for";
  let r = max 1 (base.capacity / message_length) in
  if r mod 2 = 0 then max 1 (r - 1) else r

let pad v n =
  let out = Bitvec.create n in
  for i = 0 to min (Bitvec.length v) n - 1 do
    Bitvec.set out i (Bitvec.get v i)
  done;
  out

let mark base ~times message w =
  let l = Bitvec.length message in
  if times * l > base.capacity then invalid_arg "Robust.mark: over capacity";
  base.embed (pad (Codec.repeat ~times message) base.capacity) w

let detect base ~times ~length ~original ~server =
  let raw = base.extract ~original ~server in
  let used = Bitvec.create (times * length) in
  for i = 0 to (times * length) - 1 do
    Bitvec.set used i (Bitvec.get raw i)
  done;
  Codec.majority_decode ~times used
