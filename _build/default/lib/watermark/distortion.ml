let per_param qs w w' =
  List.map
    (fun a -> (a, Query_system.f qs w' a - Query_system.f qs w a))
    (Query_system.params qs)

let global qs w w' =
  List.fold_left (fun acc (_, d) -> max acc (abs d)) 0 (per_param qs w w')

let is_global ~d qs w w' = global qs w w' <= d

let of_marks qs marks =
  let delta = Tuple.Hashtbl.create 16 in
  List.iter
    (fun (t, d) ->
      let prev = Option.value ~default:0 (Tuple.Hashtbl.find_opt delta t) in
      Tuple.Hashtbl.replace delta t (prev + d))
    marks;
  List.fold_left
    (fun acc a ->
      let s =
        Tuple.Set.fold
          (fun b acc ->
            acc + Option.value ~default:0 (Tuple.Hashtbl.find_opt delta b))
          (Query_system.result_set qs a) 0
      in
      max acc (abs s))
    0 (Query_system.params qs)

let worst_params qs w w' ~top =
  per_param qs w w'
  |> List.sort (fun (_, a) (_, b) -> compare (abs b) (abs a))
  |> List.filteri (fun i _ -> i < top)

type aggregate = Sum | Mean | Min | Max

let f_agg agg qs w a =
  let values =
    Tuple.Set.fold
      (fun b acc -> float_of_int (Weighted.get w b) :: acc)
      (Query_system.result_set qs a) []
  in
  match (agg, values) with
  | _, [] -> 0.
  | Sum, vs -> List.fold_left ( +. ) 0. vs
  | Mean, vs -> List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)
  | Min, v :: vs -> List.fold_left min v vs
  | Max, v :: vs -> List.fold_left max v vs

let global_agg agg qs w w' =
  List.fold_left
    (fun acc a -> Float.max acc (Float.abs (f_agg agg qs w' a -. f_agg agg qs w a)))
    0. (Query_system.params qs)
