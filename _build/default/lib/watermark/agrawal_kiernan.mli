(** The Agrawal-Kiernan watermarking baseline ([1], VLDB 2002).

    The scheme the paper positions itself against: a secret key selects
    roughly 1/gamma of the tuples by keyed hash; in each, one of the xi
    least-significant bits of the numeric attribute is set to a
    key-derived bit.  Detection needs no original: it recomputes the
    selection and counts how many selected bit positions match — a match
    rate near 1 identifies the mark, near 1/2 is noise.

    Experimentally (their observation, reproduced in E12) the global mean
    and variance barely move; but nothing bounds the distortion of a
    {e parametric query's} sum, which is exactly the gap query-preserving
    watermarking closes — the E12 table shows AK's max per-parameter
    distortion growing while the Theorem 3 scheme's stays at its
    certificate. *)

type params = {
  key : int;  (** secret *)
  gamma : int;  (** mark about 1/gamma of the weights; >= 1 *)
  xi : int;  (** usable least-significant bits; >= 1 *)
}

val mark : params -> Weighted.t -> Weighted.t
(** Marks every supported tuple selected by the keyed hash. *)

val marked_positions : params -> Weighted.t -> Tuple.t list
(** Which tuples the key selects (for diagnostics/tests). *)

val detect : params -> Weighted.t -> int * int
(** (matches, selected): how many selected positions carry the expected
    bit. *)

val match_rate : params -> Weighted.t -> float

val is_detected : ?threshold:float -> params -> Weighted.t -> bool
(** [threshold] defaults to 0.95. *)
