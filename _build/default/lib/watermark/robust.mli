(** The Khanna-Zane adversarial wrapper (Fact 1).

    Any non-adversarial scheme becomes adversarial under the bounded-
    distortion and limited-knowledge assumptions: spread each message bit
    over R pair slots and majority-vote at detection.  An attacker who can
    move each weight by a bounded amount and does not know the pair
    positions must corrupt a majority of a bit's R copies to flip it —
    the failure probability decays with R, which experiment E10 measures
    against attack budgets. *)

type base = {
  capacity : int;
  embed : Bitvec.t -> Weighted.t -> Weighted.t;
      (** message of length [capacity] -> marked weights *)
  extract : original:Weighted.t -> server:Query_system.server -> Bitvec.t;
      (** read back all [capacity] bits *)
}
(** A non-adversarial scheme reduced to its carrier interface. *)

val of_local : Local_scheme.t -> base
val of_tree : Tree_scheme.t -> base

val redundancy_for : base -> message_length:int -> int
(** Largest odd R with R * message_length <= capacity (>= 1). *)

val mark : base -> times:int -> Bitvec.t -> Weighted.t -> Weighted.t
(** Embed [times] interleaved copies. *)

val detect :
  base -> times:int -> length:int -> original:Weighted.t ->
  server:Query_system.server -> Bitvec.t
(** Majority-vote decode of a length-[length] message. *)
