(** Attack models for the adversarial setting (Section 1 / Fact 1).

    An attacker holds a marked instance and perturbs weights to erase the
    mark, under the {e bounded distortion} assumption (it must still sell
    useful data) and the {e limited knowledge} assumption (it does not know
    which weights carry the mark).  Attacks transform weight assignments;
    they never touch the structure (that would change the data's meaning,
    and membership in query results is parameter data by definition). *)

type attack =
  | Uniform_noise of { amplitude : int }
      (** Add an independent uniform integer in [-amplitude, amplitude] to
          every active weight. *)
  | Random_flips of { count : int; amplitude : int }
      (** Add +-amplitude to [count] randomly chosen active weights —
          the attacker guessing mark positions. *)
  | Rounding of { multiple : int }
      (** Round every active weight to the nearest multiple — the classic
          "launder the low bits" attack that kills LSB schemes. *)
  | Constant_offset of { delta : int }
      (** Shift every active weight — pair-difference detectors are
          provably immune. *)
  | Back_to_original of { original : Weighted.t; fraction : float }
      (** Reset a random fraction of active weights to their values in
          another copy the attacker obtained (models partial knowledge
          leakage; fraction 1.0 erases the mark completely). *)

val apply :
  Prng.t -> attack -> active:Tuple.t list -> Weighted.t -> Weighted.t

val describe : attack -> string

val global_budget_used :
  Query_system.t -> before:Weighted.t -> after:Weighted.t -> int
(** The d' the attack actually spent (max query-weight change) — reported
    next to detection rates in experiment E10. *)
