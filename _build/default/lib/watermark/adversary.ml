type attack =
  | Uniform_noise of { amplitude : int }
  | Random_flips of { count : int; amplitude : int }
  | Rounding of { multiple : int }
  | Constant_offset of { delta : int }
  | Back_to_original of { original : Weighted.t; fraction : float }

let apply g attack ~active w =
  match attack with
  | Uniform_noise { amplitude } ->
      List.fold_left
        (fun w t ->
          Weighted.add_delta w t (Prng.int g ((2 * amplitude) + 1) - amplitude))
        w active
  | Random_flips { count; amplitude } ->
      let targets = Prng.sample g count (Array.of_list active) in
      Array.fold_left
        (fun w t -> Weighted.add_delta w t (Prng.pm_one g * amplitude))
        w targets
  | Rounding { multiple } ->
      assert (multiple > 0);
      List.fold_left
        (fun w t ->
          let v = Weighted.get w t in
          let down = v - (((v mod multiple) + multiple) mod multiple) in
          let rounded =
            if v - down <= multiple / 2 then down else down + multiple
          in
          Weighted.set w t rounded)
        w active
  | Constant_offset { delta } ->
      List.fold_left (fun w t -> Weighted.add_delta w t delta) w active
  | Back_to_original { original; fraction } ->
      List.fold_left
        (fun w t ->
          if Prng.bernoulli g fraction then
            Weighted.set w t (Weighted.get original t)
          else w)
        w active

let describe = function
  | Uniform_noise { amplitude } -> Printf.sprintf "uniform noise +-%d" amplitude
  | Random_flips { count; amplitude } ->
      Printf.sprintf "%d random +-%d flips" count amplitude
  | Rounding { multiple } -> Printf.sprintf "round to multiples of %d" multiple
  | Constant_offset { delta } -> Printf.sprintf "offset %+d" delta
  | Back_to_original { fraction; _ } ->
      Printf.sprintf "reset %.0f%% to a leaked copy" (100. *. fraction)

let global_budget_used qs ~before ~after = Distortion.global qs before after
