open Wm_trees

type options = { seed : int; block_size : int option; pairs_per_block : int }

let default_options = { seed = 0xC0FFEE; block_size = None; pairs_per_block = 1 }

type report = {
  states : int;
  tree_size : int;
  active : int;
  predicted_pairs : int;
  blocks_formed : int;
  blocks_kept : int;
  blocks_paired : int;
  capacity : int;
  certified_distortion : int;
}

type block = { broot : int; hole : int option; members : int list }

type t = {
  tree : Btree.t;
  query : Tree_query.t;
  qs : Query_system.t;
  selected : Pairing.pair list;
  paired_blocks : block list;
  rep : report;
}

(* Postorder of the nodes of subtree(root) excluding everything strictly
   below [hole] ([hole] itself included, as the summary point). *)
let region_postorder tree broot hole =
  let keep v =
    Btree.ancestor_or_equal tree broot v
    && match hole with
       | Some h -> not (Btree.strictly_below tree h v)
       | None -> true
  in
  Array.to_list (Btree.postorder tree) |> List.filter keep

(* State reached at [broot] when running [auto] over the region with the
   result pebble (bit [bit]) on node [b] and the hole (if any) entering in
   state [q]. *)
let region_state auto alpha tree region broot hole q ~bit b =
  let state = Hashtbl.create (List.length region) in
  let get v = match Hashtbl.find_opt state v with Some s -> s | None -> -1 in
  List.iter
    (fun v ->
      if hole = Some v then Hashtbl.replace state v q
      else begin
        let ql = match Btree.left tree v with Some c -> get c | None -> -1 in
        let qr = match Btree.right tree v with Some c -> get c | None -> -1 in
        let base = Btree.label tree v in
        let mask = if v = b then 1 lsl bit else 0 in
        let letter = Alphabet.encode alpha ~base ~mask in
        Hashtbl.replace state v (Dta.delta auto ql qr letter)
      end)
    region;
  get broot

let behavior auto alpha tree region broot hole ~bit b =
  match hole with
  | None -> [ region_state auto alpha tree region broot hole (-1) ~bit b ]
  | Some _ ->
      List.init (Dta.nstates auto) (fun q ->
          region_state auto alpha tree region broot hole q ~bit b)

let prepare ?(options = default_options) tree query =
  if Tree_query.k query <> 1 || Tree_query.s query <> 1 then
    Error "tree scheme requires one parameter and one result pebble"
  else begin
    let auto = Tree_query.automaton query in
    let alpha = Tree_query.alpha query in
    let m = Dta.nstates auto in
    let qs = Query_system.of_tree query tree in
    let active = Query_system.active_set qs in
    let active_node v = Tuple.Set.mem (Tuple.singleton v) active in
    let nactive = Tuple.Set.cardinal active in
    if nactive = 0 then Error "query has no active weighted elements"
    else begin
      let threshold =
        match options.block_size with Some b -> max 2 b | None -> 2 * m
      in
      (* Phase 1: minimal blocks of >= threshold ungrouped active nodes. *)
      let n = Btree.size tree in
      let cnt = Array.make n 0 in
      let grouped = Array.make n false in
      let blocks = ref [] in
      Array.iter
        (fun v ->
          let c =
            (match Btree.left tree v with Some c -> cnt.(c) | None -> 0)
            + (match Btree.right tree v with Some c -> cnt.(c) | None -> 0)
            + if active_node v then 1 else 0
          in
          if c >= threshold then begin
            let members =
              List.filter
                (fun u -> active_node u && not grouped.(u))
                (Btree.subtree_nodes tree v)
            in
            List.iter (fun u -> grouped.(u) <- true) members;
            blocks := (v, members) :: !blocks;
            cnt.(v) <- 0
          end
          else cnt.(v) <- c)
        (Btree.postorder tree);
      let blocks = List.rev !blocks in
      let blocks_formed = List.length blocks in
      (* Phase 2: the forest over block roots; keep blocks with <= 1
         child. *)
      let roots = List.map fst blocks in
      let parent_of r =
        (* nearest strict ancestor among block roots *)
        List.filter
          (fun r' -> r' <> r && Btree.ancestor_or_equal tree r' r)
          roots
        |> List.fold_left
             (fun best r' ->
               match best with
               | None -> Some r'
               | Some b ->
                   if Btree.ancestor_or_equal tree b r' then Some r' else best)
             None
      in
      let children = Hashtbl.create 16 in
      List.iter
        (fun r ->
          match parent_of r with
          | Some p ->
              Hashtbl.replace children p (r :: Option.value ~default:[] (Hashtbl.find_opt children p))
          | None -> ())
        roots;
      let kept =
        List.filter_map
          (fun (r, members) ->
            match Option.value ~default:[] (Hashtbl.find_opt children r) with
            | [] -> Some { broot = r; hole = None; members }
            | [ c ] -> Some { broot = r; hole = Some c; members }
            | _ -> None)
          blocks
      in
      let blocks_kept = List.length kept in
      (* Phase 3: behavioral collisions. *)
      let bit = Tree_query.k query in
      let rng = Prng.create options.seed in
      let paired =
        List.filter_map
          (fun b ->
            let region = region_postorder tree b.broot b.hole in
            let members =
              (* Defensive: candidates must lie in the region (which, like
                 the paper's V_i, excludes the child block's root). *)
              List.filter
                (fun u ->
                  match b.hole with
                  | Some h -> not (Btree.ancestor_or_equal tree h u)
                  | None -> true)
                b.members
            in
            let groups = Hashtbl.create 16 in
            List.iter
              (fun u ->
                let beh = behavior auto alpha tree region b.broot b.hole ~bit u in
                Hashtbl.replace groups beh
                  (u :: Option.value ~default:[] (Hashtbl.find_opt groups beh)))
              members;
            let collisions =
              Hashtbl.fold
                (fun _ us acc -> if List.length us >= 2 then us :: acc else acc)
                groups []
            in
            let rec take_pairs budget acc = function
              | u :: u' :: rest when budget > 0 ->
                  take_pairs (budget - 1)
                    ({ Pairing.fst = Tuple.singleton u; snd = Tuple.singleton u' }
                     :: acc)
                    rest
              | _ -> acc
            in
            let pairs =
              List.fold_left
                (fun acc us ->
                  take_pairs (options.pairs_per_block - List.length acc) acc
                    (List.sort compare us))
                [] collisions
            in
            ignore rng;
            if pairs = [] then None else Some (b, pairs))
          kept
      in
      let selected = List.concat_map snd paired in
      if selected = [] then Error "no block yielded a behavioral pair"
      else
        let rep =
          {
            states = m;
            tree_size = n;
            active = nactive;
            predicted_pairs = nactive / (4 * m);
            blocks_formed;
            blocks_kept;
            blocks_paired = List.length paired;
            capacity = List.length selected;
            certified_distortion = options.pairs_per_block;
          }
        in
        Ok
          {
            tree;
            query;
            qs;
            selected;
            paired_blocks = List.map fst paired;
            rep;
          }
    end
  end

let report t = t.rep
let capacity t = List.length t.selected
let pairs t = t.selected

let regions t = List.map (fun b -> (b.broot, b.hole)) t.paired_blocks

let query_system t = t.qs

let mark t message w =
  Weighted.apply_marks w (Pairing.orientation_marks t.selected message)

let detect t ~original ~server ~length =
  if length > capacity t then
    invalid_arg "Tree_scheme.detect: length exceeds capacity";
  let observed = Query_system.reconstruct t.qs server in
  let delta b =
    match Tuple.Map.find_opt b observed with
    | Some v -> v - Weighted.get original b
    | None -> 0
  in
  let message = Bitvec.create length in
  List.iteri
    (fun i { Pairing.fst; snd } ->
      if i < length then Bitvec.set message i (delta fst - delta snd > 0))
    t.selected;
  message

let detect_weights t ~original ~suspect ~length =
  detect t ~original ~server:(Query_system.server t.qs suspect) ~length
