type condition = Max_le of int | Max_eq of int | All_eq of int

let count_with qs ~deltas ~leaf_ok ~prune =
  let elements = Array.of_list (Query_system.active qs) in
  let k = Array.length elements in
  let params = Array.of_list (Query_system.params qs) in
  let np = Array.length params in
  let membership =
    (* For each element index, the parameter indices whose result set
       contains it. *)
    Array.map
      (fun w ->
        Array.to_list
          (Array.mapi
             (fun pi a ->
               if Tuple.Set.mem w (Query_system.result_set qs a) then Some pi
               else None)
             params)
        |> List.filter_map Fun.id)
      elements
  in
  (* suffix.(pi).(i): how many elements with index >= i belong to param pi. *)
  let suffix = Array.make_matrix np (k + 1) 0 in
  for i = k - 1 downto 0 do
    for pi = 0 to np - 1 do
      suffix.(pi).(i) <- suffix.(pi).(i + 1)
    done;
    List.iter (fun pi -> suffix.(pi).(i) <- suffix.(pi).(i) + 1) membership.(i)
  done;
  let dmin = List.fold_left min max_int deltas in
  let dmax = List.fold_left max min_int deltas in
  let cur = Array.make np 0 in
  let total = ref 0 in
  let rec go i =
    if i = k then begin
      if leaf_ok cur then incr total
    end
    else if not (prune cur suffix i dmin dmax) then
      List.iter
        (fun d ->
          List.iter (fun pi -> cur.(pi) <- cur.(pi) + d) membership.(i);
          go (i + 1);
          List.iter (fun pi -> cur.(pi) <- cur.(pi) - d) membership.(i))
        deltas
  in
  go 0;
  !total

let count_le qs ~deltas d =
  count_with qs ~deltas
    ~leaf_ok:(fun cur -> Array.for_all (fun x -> abs x <= d) cur)
    ~prune:(fun cur suffix i dmin dmax ->
      let np = Array.length cur in
      let rec bad pi =
        pi < np
        &&
        let cnt = suffix.(pi).(i) in
        let lo = cur.(pi) + (dmin * cnt) and hi = cur.(pi) + (dmax * cnt) in
        lo > d || hi < -d || bad (pi + 1)
      in
      bad 0)

let count_all_eq qs ~deltas d =
  count_with qs ~deltas
    ~leaf_ok:(fun cur -> Array.for_all (fun x -> x = d) cur)
    ~prune:(fun cur suffix i dmin dmax ->
      let np = Array.length cur in
      let rec bad pi =
        pi < np
        &&
        let cnt = suffix.(pi).(i) in
        let lo = cur.(pi) + (dmin * cnt) and hi = cur.(pi) + (dmax * cnt) in
        d < lo || d > hi || bad (pi + 1)
      in
      bad 0)

let max_active = 26

let count ?(deltas = [ -1; 0; 1 ]) qs cond =
  if List.length (Query_system.active qs) > max_active then
    invalid_arg "Capacity.count: too many active elements for brute force";
  if deltas = [] then invalid_arg "Capacity.count: empty delta set";
  match cond with
  | Max_le d -> count_le qs ~deltas d
  | Max_eq d ->
      count_le qs ~deltas d - (if d = 0 then 0 else count_le qs ~deltas (d - 1))
  | All_eq d -> count_all_eq qs ~deltas d

let count_matchings (ws : Weighted.structure) q =
  let qs = Query_system.of_relational ws.Weighted.graph q in
  count ~deltas:[ 0; 1 ] qs (All_eq 1)
