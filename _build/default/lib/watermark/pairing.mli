(** S-partitions and pair markings (Section 3).

    Given canonical parameters S (one per neighborhood type), the class
    cl(w) of an active element w is the set of types whose canonical result
    set contains w.  An S-partition pairs active elements of equal class;
    marking a pair (+1, -1) keeps every canonical parameter's f unchanged
    (Proposition 1), and the distortion on non-canonical parameters is
    controlled by how many selected pairs a result set {e splits}
    (contains exactly one endpoint of). *)

type pair = { fst : Tuple.t; snd : Tuple.t }

val classes : Query_system.t -> canonical:Tuple.t list -> (Tuple.t * int list) list
(** cl(w) for every active element, as sorted lists of canonical indexes. *)

val s_partition : Query_system.t -> canonical:Tuple.t list -> pair list
(** Greedy pairing inside each class group; leftover singletons are
    dropped.  Deterministic given the query system. *)

val orientation_marks : pair list -> Bitvec.t -> (Tuple.t * int) list
(** Bit i of the message orients pair i: 1 embeds (+1 on fst, -1 on snd),
    0 embeds (-1, +1).  Pairs beyond the message length are untouched.
    The message must not be longer than the pair list. *)

val split_counts : Query_system.t -> pair list -> (Tuple.t * int) list
(** For every parameter, the number of listed pairs its result set splits
    — an upper bound on |f' - f| there, valid for every message. *)

val max_split : Query_system.t -> pair list -> int

val select_random :
  Prng.t -> Query_system.t -> pair list -> p:float -> budget:int ->
  pair list option
(** The paper's randomized selection (Proposition 2): keep each pair with
    probability [p]; succeed if the worst-case split count stays within
    [budget].  One draw; [None] on failure. *)

val select_greedy :
  Prng.t -> Query_system.t -> pair list -> budget:int -> pair list
(** Deterministic-capacity variant: shuffle, then admit pairs one by one,
    skipping any that would push some parameter's split count over
    [budget].  Never fails; dominates the random draw's capacity.  (A
    deviation from the paper noted in DESIGN.md — the marker "generates
    random W' and checks until an eps-good marking is obtained"; greedy
    admission reaches the same certificate with fewer retries.) *)
