lib/watermark/incremental.ml: Array Gaifman Iso List Neighborhood Tuple Weighted
