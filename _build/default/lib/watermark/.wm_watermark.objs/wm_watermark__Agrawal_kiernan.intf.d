lib/watermark/agrawal_kiernan.mli: Tuple Weighted
