lib/watermark/agrawal_kiernan.ml: Int64 List Prng Stats Tuple Weighted
