lib/watermark/query_system.ml: List Query Tuple Weighted Wm_trees
