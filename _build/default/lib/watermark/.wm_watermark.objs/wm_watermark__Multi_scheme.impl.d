lib/watermark/multi_scheme.ml: Array Detector Distortion List Local_scheme Locality Neighborhood Pairing Prng Query Query_system Tuple Weighted
