lib/watermark/pairing.ml: Array Bitvec Fun Hashtbl List Option Prng Query_system Tuple
