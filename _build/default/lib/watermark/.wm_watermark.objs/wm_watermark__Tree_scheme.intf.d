lib/watermark/tree_scheme.mli: Bitvec Pairing Query_system Weighted Wm_trees
