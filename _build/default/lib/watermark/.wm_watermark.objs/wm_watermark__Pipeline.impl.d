lib/watermark/pipeline.ml: Bitvec Local_scheme Printf Tree_scheme Weighted Wm_trees Wm_xml
