lib/watermark/robust.mli: Bitvec Local_scheme Query_system Tree_scheme Weighted
