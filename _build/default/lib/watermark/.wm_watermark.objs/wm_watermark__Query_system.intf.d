lib/watermark/query_system.mli: Query Structure Tuple Weighted Wm_trees
