lib/watermark/adversary.mli: Prng Query_system Tuple Weighted
