lib/watermark/capacity.mli: Query Query_system Weighted
