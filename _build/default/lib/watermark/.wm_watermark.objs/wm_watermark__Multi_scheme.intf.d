lib/watermark/multi_scheme.mli: Bitvec Local_scheme Pairing Query Weighted
