lib/watermark/local_scheme.mli: Bitvec Pairing Query Query_system Weighted
