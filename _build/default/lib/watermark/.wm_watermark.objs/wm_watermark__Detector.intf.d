lib/watermark/detector.mli: Bitvec Pairing Tuple Weighted
