lib/watermark/distortion.mli: Query_system Tuple Weighted
