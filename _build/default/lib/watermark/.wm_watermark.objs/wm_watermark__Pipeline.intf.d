lib/watermark/pipeline.mli: Bitvec Local_scheme Query Tree_scheme Weighted Wm_trees Wm_xml
