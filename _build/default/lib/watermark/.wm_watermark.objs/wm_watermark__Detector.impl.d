lib/watermark/detector.ml: Bitvec Codec List Pairing Tuple Weighted
