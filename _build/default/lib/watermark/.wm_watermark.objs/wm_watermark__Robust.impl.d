lib/watermark/robust.ml: Bitvec Codec Local_scheme Query_system Tree_scheme Weighted
