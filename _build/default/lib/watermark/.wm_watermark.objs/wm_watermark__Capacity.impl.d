lib/watermark/capacity.ml: Array Fun List Query_system Tuple Weighted
