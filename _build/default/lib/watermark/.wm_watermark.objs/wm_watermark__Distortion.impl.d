lib/watermark/distortion.ml: Float List Option Query_system Tuple Weighted
