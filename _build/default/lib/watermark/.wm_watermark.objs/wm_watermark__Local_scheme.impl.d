lib/watermark/local_scheme.ml: Array Bitvec Gaifman List Locality Neighborhood Pairing Prng Query Query_system Tuple Weighted
