lib/watermark/incremental.mli: Structure Weighted
