lib/watermark/tree_scheme.ml: Alphabet Array Bitvec Btree Dta Hashtbl List Option Pairing Prng Query_system Tree_query Tuple Weighted Wm_trees
