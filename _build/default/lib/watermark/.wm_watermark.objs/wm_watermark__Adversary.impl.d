lib/watermark/adversary.ml: Array Distortion List Printf Prng Weighted
