lib/watermark/pairing.mli: Bitvec Prng Query_system Tuple
