(** End-to-end helpers: the five-minute API.

    These wrap the full paper pipeline for the two document kinds:

    - relational: structure + FO query --(Theorem 3)--> marked structure;
    - XML: document + pattern --(encode, compile, Theorem 5)--> marked
      document.

    Preparation is deterministic given (document, query, options), so the
    owner re-runs it at detection time and reads the mark from the suspect
    server's answers. *)

(** {1 Relational documents} *)

val mark_relational :
  ?options:Local_scheme.options ->
  Weighted.structure -> Query.t -> message:Bitvec.t ->
  (Local_scheme.t * Weighted.structure, string) result
(** Prepare and embed; fails if the message exceeds capacity. *)

val detect_relational :
  Local_scheme.t -> original:Weighted.structure -> suspect:Weighted.structure ->
  length:int -> Bitvec.t

(** {1 XML documents} *)

type xml_scheme = {
  scheme : Tree_scheme.t;
  binary : Wm_trees.Btree.t;  (** abstract binary view of the original *)
  pattern : Wm_xml.Pattern.t;
}

val prepare_xml :
  ?options:Tree_scheme.options ->
  Wm_xml.Utree.t -> Wm_xml.Pattern.t -> (xml_scheme, string) result

val mark_xml : xml_scheme -> message:Bitvec.t -> Wm_xml.Utree.t -> Wm_xml.Utree.t
(** Rewrites the value nodes of the document (which must be the prepared
    document or a weights-only update of it). *)

val detect_xml :
  xml_scheme -> original:Wm_xml.Utree.t -> suspect:Wm_xml.Utree.t ->
  length:int -> Bitvec.t
(** The suspect document must be structurally identical (weights-only
    distortions) — the paper's model where structure is parameter data. *)
