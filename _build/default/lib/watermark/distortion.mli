(** Distortion measures (Section 1).

    The c-local assumption bounds individual weight changes and lives in
    {!Wm_relational.Weighted}; the d-global assumption bounds the change of
    every query weight f(a) and needs a query system. *)

val per_param : Query_system.t -> Weighted.t -> Weighted.t -> (Tuple.t * int) list
(** Signed distortion f'(a) - f(a) for every parameter. *)

val global : Query_system.t -> Weighted.t -> Weighted.t -> int
(** max_a |f'(a) - f(a)| — the smallest d for which the d-global distortion
    assumption holds. *)

val is_global : d:int -> Query_system.t -> Weighted.t -> Weighted.t -> bool

val of_marks : Query_system.t -> (Tuple.t * int) list -> int
(** Global distortion a mark list would induce, without materializing the
    marked weights (deltas summed per parameter). *)

val worst_params : Query_system.t -> Weighted.t -> Weighted.t -> top:int -> (Tuple.t * int) list
(** The [top] parameters with the largest absolute distortion — experiment
    diagnostics. *)

(** {1 Other aggregates}

    The paper notes that the sum in f can be replaced by mean, min or max
    without affecting the positive results.  These variants make that
    concrete: a (+1,-1) pair marking moves the mean of a result set that
    contains both members by exactly 0, and min/max of any result set by at
    most the local distortion c. *)

type aggregate = Sum | Mean | Min | Max

val f_agg : aggregate -> Query_system.t -> Weighted.t -> Tuple.t -> float
(** Aggregate of the weights over W_a.  Empty result sets give 0 for Sum
    and Mean and 0 for Min/Max (nothing to distort). *)

val global_agg : aggregate -> Query_system.t -> Weighted.t -> Weighted.t -> float
(** max over parameters of |f'_agg(a) - f_agg(a)|. *)
