type pair = { fst : Tuple.t; snd : Tuple.t }

let classes qs ~canonical =
  let canon_sets =
    List.mapi (fun i a -> (i, Query_system.result_set qs a)) canonical
  in
  List.map
    (fun w ->
      let cl =
        List.filter_map
          (fun (i, s) -> if Tuple.Set.mem w s then Some i else None)
          canon_sets
      in
      (w, cl))
    (Query_system.active qs)

let s_partition qs ~canonical =
  let by_class = Hashtbl.create 16 in
  List.iter
    (fun (w, cl) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_class cl) in
      Hashtbl.replace by_class cl (w :: prev))
    (classes qs ~canonical);
  let pairs = ref [] in
  Hashtbl.iter
    (fun _ ws ->
      let rec pair_up = function
        | a :: b :: rest ->
            pairs := { fst = a; snd = b } :: !pairs;
            pair_up rest
        | _ -> ()
      in
      (* Keep deterministic order inside the group. *)
      pair_up (List.sort Tuple.compare ws))
    by_class;
  List.sort (fun p q -> Tuple.compare p.fst q.fst) !pairs

let orientation_marks pairs message =
  let l = Bitvec.length message in
  if l > List.length pairs then
    invalid_arg "Pairing.orientation_marks: message longer than capacity";
  List.concat
    (List.mapi
       (fun i { fst; snd } ->
         if i >= l then []
         else if Bitvec.get message i then [ (fst, 1); (snd, -1) ]
         else [ (fst, -1); (snd, 1) ])
       pairs)

let split_counts qs pairs =
  List.map
    (fun a ->
      let s = Query_system.result_set qs a in
      let count =
        List.fold_left
          (fun acc { fst; snd } ->
            if Tuple.Set.mem fst s <> Tuple.Set.mem snd s then acc + 1 else acc)
          0 pairs
      in
      (a, count))
    (Query_system.params qs)

let max_split qs pairs =
  List.fold_left (fun acc (_, c) -> max acc c) 0 (split_counts qs pairs)

let select_random g qs pairs ~p ~budget =
  let chosen = List.filter (fun _ -> Prng.bernoulli g p) pairs in
  if max_split qs chosen <= budget then Some chosen else None

let select_greedy g qs pairs ~budget =
  let arr = Array.of_list pairs in
  Prng.shuffle g arr;
  (* Incremental split counts per parameter. *)
  let params = Array.of_list (Query_system.params qs) in
  let split = Array.make (Array.length params) 0 in
  let member_sets = Array.map (Query_system.result_set qs) params in
  let chosen = ref [] in
  Array.iter
    (fun pr ->
      let touches =
        Array.to_list
          (Array.mapi
             (fun i s ->
               if Tuple.Set.mem pr.fst s <> Tuple.Set.mem pr.snd s then Some i
               else None)
             member_sets)
        |> List.filter_map Fun.id
      in
      if List.for_all (fun i -> split.(i) + 1 <= budget) touches then begin
        List.iter (fun i -> split.(i) <- split.(i) + 1) touches;
        chosen := pr :: !chosen
      end)
    arr;
  List.sort (fun p q -> Tuple.compare p.fst q.fst) !chosen
