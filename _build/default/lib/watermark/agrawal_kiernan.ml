type params = { key : int; gamma : int; xi : int }

(* Keyed hash: one SplitMix64 step over key and tuple hash. *)
let hash p t salt =
  let g = Prng.create ((p.key * 1_000_003) lxor (Tuple.hash t * 31) lxor salt) in
  Int64.to_int (Int64.logand (Prng.bits64 g) 0x3FFFFFFFFFFFFFFFL)

let selected p t = hash p t 0 mod p.gamma = 0

let bit_position p t = hash p t 1 mod p.xi

let bit_value p t = hash p t 2 land 1

let mark p w =
  if p.gamma < 1 || p.xi < 1 then invalid_arg "Agrawal_kiernan.mark";
  List.fold_left
    (fun w (t, v) ->
      if selected p t then begin
        let j = bit_position p t and b = bit_value p t in
        let v' = if b = 1 then v lor (1 lsl j) else v land lnot (1 lsl j) in
        Weighted.set w t v'
      end
      else w)
    w (Weighted.bindings w)

let marked_positions p w =
  List.filter (selected p) (Weighted.support w)

let detect p w =
  List.fold_left
    (fun (matches, total) (t, v) ->
      if selected p t then begin
        let j = bit_position p t and b = bit_value p t in
        let got = (v lsr j) land 1 in
        ((if got = b then matches + 1 else matches), total + 1)
      end
      else (matches, total))
    (0, 0) (Weighted.bindings w)

let match_rate p w =
  let matches, total = detect p w in
  Stats.rate matches total

let is_detected ?(threshold = 0.95) p w = match_rate p w >= threshold
