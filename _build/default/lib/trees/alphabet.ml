type t = { base_size : int; bits : int }

let make ~base_size ~bits =
  if base_size < 1 then invalid_arg "Alphabet.make: empty base alphabet";
  if bits < 0 then invalid_arg "Alphabet.make: negative bit count";
  if bits > 20 || base_size lsl bits > 1 lsl 20 then
    invalid_arg "Alphabet.make: extended alphabet too large";
  { base_size; bits }

let size a = a.base_size lsl a.bits

let encode a ~base ~mask =
  assert (base >= 0 && base < a.base_size);
  assert (mask >= 0 && mask < 1 lsl a.bits);
  base + (a.base_size * mask)

let base a letter = letter mod a.base_size
let mask a letter = letter / a.base_size

let bit a letter i = (mask a letter lsr i) land 1 = 1

let with_bit a letter i v =
  let m = mask a letter in
  let m = if v then m lor (1 lsl i) else m land lnot (1 lsl i) in
  encode a ~base:(base a letter) ~mask:m

let insert_bit a p v letter =
  assert (p >= 0 && p <= a.bits);
  let c = base a letter and m = mask a letter in
  let low = m land ((1 lsl p) - 1) in
  let high = m lsr p in
  let m' = low lor ((if v then 1 else 0) lsl p) lor (high lsl (p + 1)) in
  c + (a.base_size * m')

let drop_bit a p letter =
  assert (p >= 0 && p < a.bits);
  let c = base a letter and m = mask a letter in
  let low = m land ((1 lsl p) - 1) in
  let high = m lsr (p + 1) in
  c + (a.base_size * (low lor (high lsl p)))

let labeler a tree pebbles =
  let masks = Array.make (Btree.size tree) 0 in
  List.iter
    (fun (i, node) ->
      assert (i >= 0 && i < a.bits);
      masks.(node) <- masks.(node) lor (1 lsl i))
    pebbles;
  fun v -> encode a ~base:(Btree.label tree v) ~mask:masks.(v)
