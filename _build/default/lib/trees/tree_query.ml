type t = { auto : Dta.t; alpha : Alphabet.t; k : int; s : int }

let make auto ~alpha ~k ~s =
  if k < 0 || s < 1 then invalid_arg "Tree_query.make: bad arities";
  if alpha.Alphabet.bits < k + s then
    invalid_arg "Tree_query.make: alphabet has too few pebble bits";
  if Dta.nlabels auto <> Alphabet.size alpha then
    invalid_arg "Tree_query.make: automaton/alphabet mismatch";
  { auto; alpha; k; s }

let of_compiled (c : Mso_compile.t) ~params ~results =
  let order = params @ results in
  let declared = List.map fst c.free_bits in
  if List.sort compare order <> List.sort compare declared then
    invalid_arg "Tree_query.of_compiled: params+results <> free variables";
  (* Bits were assigned in the order [free] was given to [compile]; require
     that order to be params then results so bit layout matches. *)
  if order <> declared then
    invalid_arg
      "Tree_query.of_compiled: compile with ~free:(params @ results)";
  make c.auto ~alpha:c.alpha ~k:(List.length params) ~s:(List.length results)

let k t = t.k
let s t = t.s
let automaton t = t.auto
let alpha t = t.alpha

let pebbles t a b =
  List.mapi (fun i node -> (i, node)) (Array.to_list a)
  @ List.mapi (fun i node -> (t.k + i, node)) (Array.to_list b)

let member t tree a b =
  assert (Tuple.arity a = t.k && Tuple.arity b = t.s);
  Dta.accepts t.auto tree
    ~label_of:(Alphabet.labeler t.alpha tree (pebbles t a b))

let rec tuples_over n arity =
  if arity = 0 then [ [] ]
  else
    List.concat_map
      (fun rest -> List.init n (fun x -> x :: rest))
      (tuples_over n (arity - 1))

(* For s = 1 the whole result set W_a comes out of two linear passes: a
   bottom-up run with only the parameter pebbles placed, then a top-down
   "context acceptance" table Acc(v, q) = "would the tree be accepted if
   the state at v were q".  Placing the result pebble on b only changes
   b's own letter, so b is in W_a iff Acc(b, delta(ql, qr, letter_b with
   the result bit set)).  O(n * states) per parameter instead of n runs. *)
let result_set_s1 t tree a =
  let n = Btree.size tree in
  let m = Dta.nstates t.auto in
  let label_of =
    Alphabet.labeler t.alpha tree
      (List.mapi (fun i node -> (i, node)) (Array.to_list a))
  in
  let state = Dta.run t.auto tree ~label_of in
  let acc = Array.make_matrix n m false in
  let root = Btree.root tree in
  for q = 0 to m - 1 do
    acc.(root).(q) <- Dta.is_final t.auto q
  done;
  (* Preorder: parents before children. *)
  for v = 0 to n - 1 do
    let ql = match Btree.left tree v with Some c -> state.(c) | None -> -1 in
    let qr = match Btree.right tree v with Some c -> state.(c) | None -> -1 in
    let lv = label_of v in
    (match Btree.left tree v with
    | Some c ->
        for q = 0 to m - 1 do
          acc.(c).(q) <- acc.(v).(Dta.delta t.auto q qr lv)
        done
    | None -> ());
    match Btree.right tree v with
    | Some c ->
        for q = 0 to m - 1 do
          acc.(c).(q) <- acc.(v).(Dta.delta t.auto ql q lv)
        done
    | None -> ()
  done;
  let result = ref Tuple.Set.empty in
  for b = 0 to n - 1 do
    let ql = match Btree.left tree b with Some c -> state.(c) | None -> -1 in
    let qr = match Btree.right tree b with Some c -> state.(c) | None -> -1 in
    let letter = Alphabet.with_bit t.alpha (label_of b) t.k true in
    if acc.(b).(Dta.delta t.auto ql qr letter) then
      result := Tuple.Set.add (Tuple.singleton b) !result
  done;
  !result

let result_set t tree a =
  assert (Tuple.arity a = t.k);
  if t.s = 1 then result_set_s1 t tree a
  else
    let n = Btree.size tree in
    List.fold_left
      (fun acc b ->
        let b = Tuple.of_list b in
        if member t tree a b then Tuple.Set.add b acc else acc)
      Tuple.Set.empty (tuples_over n t.s)

let all_params t tree =
  List.map Tuple.of_list (tuples_over (Btree.size tree) t.k)

let active t tree =
  List.fold_left
    (fun acc a -> Tuple.Set.union acc (result_set t tree a))
    Tuple.Set.empty (all_params t tree)

let f t tree ~weights a =
  Tuple.Set.fold
    (fun b acc -> acc + Weighted.get weights b)
    (result_set t tree a) 0

let answer t tree ~weights a =
  Tuple.Set.fold
    (fun b acc -> (b, Weighted.get weights b) :: acc)
    (result_set t tree a) []
  |> List.rev
