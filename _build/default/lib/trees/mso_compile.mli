(** Compilation of MSO formulas to tree automata (Lemma 2, after
    Grohe-Turán / Thatcher-Wright).

    Vocabulary tau(Sigma): binary [S1] (left child), [S2] (right child),
    [Leq] (reflexive tree order: [Leq(x,y)] iff x is an ancestor of y or
    x = y), equality, set membership, and one unary predicate per letter of
    Sigma written as an atom named by the letter, e.g. [exam(x)].

    The compilation is compositional over a {e fixed} pebble alphabet
    Sigma x {0,1}^K, where K counts the free variables plus all
    (alpha-renamed) bound variables: atoms become 3-5 state automata that
    read only their own bits, conjunction and disjunction become products,
    negation becomes complement intersected with the singleton validity of
    the free element variables, and quantifiers become bit projection
    followed by subset-construction determinization.  Keeping the alphabet
    fixed turns cylindrification into a no-op (an automaton simply ignores
    bits it does not read); projected bits must be 0 on input trees, which
    they are — the caller only pebbles free variables. *)

type t = {
  auto : Dta.t;  (** deterministic, complete, reduced *)
  alpha : Alphabet.t;  (** Sigma x {0,1}^K *)
  base : string array;  (** Sigma *)
  free_bits : (string * int) list;  (** free variable -> pebble bit *)
}

exception Unsupported of string
(** Raised on atoms outside the tree vocabulary. *)

val compile : base:string array -> free:string list -> Mso.t -> t
(** [compile ~base ~free phi] compiles [phi]; [free] must list exactly the
    free variables (element and set), in the bit order the caller wants.
    @raise Unsupported on non-tree atoms,
    @raise Invalid_argument when [free] mismatches the formula. *)

val accepts :
  t -> Btree.t -> elems:(string * int) list -> sets:(string * int list) list
  -> bool
(** Run the compiled automaton on T_{assignment}: element variables pebble
    one node, set variables pebble a set of nodes.  All free variables must
    be assigned. *)

val size_report : t -> string
(** "states=.., labels=.." — experiment E8 reports compiled sizes. *)
