type t = {
  auto : Dta.t;
  alpha : Alphabet.t;
  base : string array;
  free_bits : (string * int) list;
}

exception Unsupported of string

(* ------------------------------------------------------------------ *)
(* Alpha-renaming: make every bound variable unique and distinct from
   free variables, so each variable owns one pebble bit. *)

let alpha_rename phi =
  let counter = ref 0 in
  let fresh x =
    incr counter;
    Printf.sprintf "%s#%d" x !counter
  in
  let module M = Map.Make (String) in
  let subst env x = match M.find_opt x env with Some y -> y | None -> x in
  let rec go env (phi : Mso.t) : Mso.t =
    match phi with
    | True -> True
    | False -> False
    | Atom (r, vs) -> Atom (r, List.map (subst env) vs)
    | Eq (x, y) -> Eq (subst env x, subst env y)
    | In (x, sx) -> In (subst env x, subst env sx)
    | Not a -> Not (go env a)
    | And (a, b) -> And (go env a, go env b)
    | Or (a, b) -> Or (go env a, go env b)
    | Implies (a, b) -> Implies (go env a, go env b)
    | Exists (x, a) ->
        let x' = fresh x in
        Exists (x', go (M.add x x' env) a)
    | Forall (x, a) ->
        let x' = fresh x in
        Forall (x', go (M.add x x' env) a)
    | Exists_set (x, a) ->
        let x' = fresh x in
        Exists_set (x', go (M.add x x' env) a)
    | Forall_set (x, a) ->
        let x' = fresh x in
        Forall_set (x', go (M.add x x' env) a)
  in
  go M.empty phi

(* ------------------------------------------------------------------ *)
(* Atom automata.  Each is a small complete DTA over the alphabet
   Sigma x {0,1}^(number of its own variables): products, negations and
   cylindrifications assemble them into the full formula automaton.  The
   counting automata use occurrence counts capped at 2 (2 = dead); the
   child/order atoms use the explicit state sets documented inline. *)

let cap2 x = if x > 2 then 2 else x

(* Exactly one node carries bit j. *)
let sing alpha j =
  Dta.make ~nstates:3 ~nlabels:(Alphabet.size alpha)
    ~final:(fun q -> q = 1)
    (fun ql qr l ->
      let c q = if q < 0 then 0 else q in
      cap2 (c ql + c qr + if Alphabet.bit alpha l j then 1 else 0))

(* Exactly one node carries bit i, and [ok] holds of its letter. *)
let one_node_satisfying alpha i ok =
  Dta.make ~nstates:3 ~nlabels:(Alphabet.size alpha)
    ~final:(fun q -> q = 1)
    (fun ql qr l ->
      let c q = if q < 0 then 0 else q in
      if Alphabet.bit alpha l i && not (ok l) then 2
      else cap2 (c ql + c qr + if Alphabet.bit alpha l i then 1 else 0))

let eq_atom alpha i j =
  if i = j then sing alpha i
  else
    Dta.product
      (one_node_satisfying alpha i (fun l -> Alphabet.bit alpha l j))
      (sing alpha j) ~final:( && )

let in_atom alpha i jset =
  one_node_satisfying alpha i (fun l -> Alphabet.bit alpha l jset)

let label_atom alpha i letter =
  one_node_satisfying alpha i (fun l -> Alphabet.base alpha l = letter)

(* States shared by the child/order atoms:
   n = nothing relevant inside, y = the pattern's y-part found,
   x = x found alone (order atom only), d = pair established, f = dead. *)
let sn = 0
and sy = 1
and sd = 2
and sf = 3
and sx = 4

(* y (bit j) is the left (resp. right) child of x (bit i). *)
let child_atom alpha ~left:is_left i j =
  Dta.make ~nstates:4 ~nlabels:(Alphabet.size alpha)
    ~final:(fun q -> q = sd)
    (fun ql qr l ->
      let ql = if ql < 0 then sn else ql and qr = if qr < 0 then sn else qr in
      if ql = sf || qr = sf then sf
      else
        let bi = Alphabet.bit alpha l i and bj = Alphabet.bit alpha l j in
        if bi && bj then sf
        else if bj then if ql = sn && qr = sn then sy else sf
        else if bi then begin
          let want, other = if is_left then (ql, qr) else (qr, ql) in
          if want = sy && other = sn then sd else sf
        end
        else
          match (ql, qr) with
          | q, r when q = sn && r = sn -> sn
          | q, r when (q = sd && r = sn) || (q = sn && r = sd) -> sd
          | _ -> sf)

(* x (bit i) is an ancestor of, or equal to, y (bit j). *)
let leq_atom alpha i j =
  if i = j then sing alpha i
  else
    Dta.make ~nstates:5 ~nlabels:(Alphabet.size alpha)
      ~final:(fun q -> q = sd)
      (fun ql qr l ->
        let ql = if ql < 0 then sn else ql
        and qr = if qr < 0 then sn else qr in
        if ql = sf || qr = sf then sf
        else
          let bi = Alphabet.bit alpha l i and bj = Alphabet.bit alpha l j in
          if bi && bj then if ql = sn && qr = sn then sd else sf
          else if bj then if ql = sn && qr = sn then sy else sf
          else if bi then
            match (ql, qr) with
            | q, r when (q = sy && r = sn) || (q = sn && r = sy) -> sd
            | q, r when q = sn && r = sn -> sx
            | _ -> sf
          else
            match (ql, qr) with
            | q, r when q = sn && r = sn -> sn
            | q, r when (q = sy && r = sn) || (q = sn && r = sy) -> sy
            | q, r when (q = sx && r = sn) || (q = sn && r = sx) -> sx
            | q, r when (q = sd && r = sn) || (q = sn && r = sd) -> sd
            | _ -> sf)

(* ------------------------------------------------------------------ *)

module Svars = Set.Make (String)

(* Element variables are those used in an element position; set variables
   those used in a set position. *)
let rec classify (phi : Mso.t) (elems, sets) =
  match phi with
  | True | False -> (elems, sets)
  | Atom (_, vs) -> (Svars.union elems (Svars.of_list vs), sets)
  | Eq (x, y) -> (Svars.union elems (Svars.of_list [ x; y ]), sets)
  | In (x, sx) -> (Svars.add x elems, Svars.add sx sets)
  | Not a -> classify a (elems, sets)
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      classify b (classify a (elems, sets))
  | Exists (x, a) | Forall (x, a) -> classify a (Svars.add x elems, sets)
  | Exists_set (x, a) | Forall_set (x, a) ->
      classify a (elems, Svars.add x sets)

let minimize_threshold = 220

let tidy auto =
  let auto = Dta.reduce auto in
  if Dta.nstates auto <= minimize_threshold then Dta.minimize auto else auto

(* An automaton paired with the sorted list of variables its alphabet's
   pebble bits stand for (bit i = i-th variable in the list). *)
type partial = { dta : Dta.t; fv : string list }

let compile ~base ~free phi =
  let phi = alpha_rename phi in
  let declared = Svars.of_list free in
  if Svars.cardinal declared <> List.length free then
    invalid_arg "Mso_compile.compile: duplicate free variable";
  let actual_free =
    Svars.of_list (Mso.free_elem_vars phi @ Mso.free_set_vars phi)
  in
  if not (Svars.subset actual_free declared) then
    invalid_arg "Mso_compile.compile: formula has undeclared free variables";
  let nbase = Array.length base in
  let alpha_for fv = Alphabet.make ~base_size:nbase ~bits:(List.length fv) in
  let pos fv v =
    let rec go i = function
      | [] -> invalid_arg ("Mso_compile: variable not in scope: " ^ v)
      | w :: _ when w = v -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 fv
  in
  let letter_of name =
    let rec go i =
      if i = nbase then raise (Unsupported ("unknown letter predicate " ^ name))
      else if base.(i) = name then i
      else go (i + 1)
    in
    go 0
  in
  let elem_vars, _set_vars = classify phi (Svars.empty, Svars.empty) in
  (* Lift an automaton over [a.fv] to an automaton over the sorted union of
     [a.fv] and [vars], inserting one pebble bit per missing variable. *)
  let cylindrify a vars =
    let target = List.sort_uniq compare (vars @ a.fv) in
    let lift acc v =
      if List.mem v acc.fv then acc
      else begin
        let fv' = List.sort compare (v :: acc.fv) in
        let p = pos fv' v in
        let big = alpha_for fv' in
        let dta =
          Dta.make ~nstates:(Dta.nstates acc.dta) ~nlabels:(Alphabet.size big)
            ~final:(Dta.is_final acc.dta)
            (fun ql qr l -> Dta.delta acc.dta ql qr (Alphabet.drop_bit big p l))
        in
        { dta; fv = fv' }
      end
    in
    List.fold_left lift a target
  in
  (* Singleton-validity automaton for the free element variables of a
     partial result — re-imposed after complementation. *)
  let valid_of a =
    let alpha = alpha_for a.fv in
    List.fold_left
      (fun acc v ->
        if Svars.mem v elem_vars then
          Dta.product acc (sing alpha (pos a.fv v)) ~final:( && )
        else acc)
      (Dta.accept_all ~nlabels:(Alphabet.size alpha))
      a.fv
  in
  let binary a b ~final =
    let a = cylindrify a b.fv in
    let b = cylindrify b a.fv in
    { dta = tidy (Dta.product a.dta b.dta ~final); fv = a.fv }
  in
  let quantify ~elem x body =
    if not (List.mem x body.fv) then body
      (* x does not occur: Ex.a = a (tree universes are non-empty). *)
    else begin
      let alpha = alpha_for body.fv in
      let p = pos body.fv x in
      let dta =
        if elem then Dta.product body.dta (sing alpha p) ~final:( && )
        else body.dta
      in
      let nta = Nta.project dta ~alpha ~bit:p in
      { dta = tidy (Nta.determinize nta); fv = List.filter (( <> ) x) body.fv }
    end
  in
  let rec go (phi : Mso.t) : partial =
    match phi with
    | True ->
        { dta = Dta.accept_all ~nlabels:(Alphabet.size (alpha_for [])); fv = [] }
    | False ->
        { dta = Dta.accept_none ~nlabels:(Alphabet.size (alpha_for [])); fv = [] }
    | Atom ("S1", [ x; y ]) | Atom ("S2", [ x; y ])
    | Atom ("Leq", [ x; y ]) | Eq (x, y) | In (x, y) ->
        let fv = List.sort_uniq compare [ x; y ] in
        let alpha = alpha_for fv in
        let i = pos fv x and j = pos fv y in
        let dta =
          match phi with
          | Atom ("S1", _) -> child_atom alpha ~left:true i j
          | Atom ("S2", _) -> child_atom alpha ~left:false i j
          | Atom ("Leq", _) -> leq_atom alpha i j
          | Eq _ -> eq_atom alpha i j
          | In _ -> in_atom alpha i j
          | _ -> assert false
        in
        { dta; fv }
    | Atom (name, [ x ]) ->
        let fv = [ x ] in
        { dta = label_atom (alpha_for fv) 0 (letter_of name); fv }
    | Atom (name, _) ->
        raise (Unsupported ("atom with unexpected arity: " ^ name))
    | And (a, b) -> binary (go a) (go b) ~final:( && )
    | Or (a, b) -> binary (go a) (go b) ~final:( || )
    | Implies (a, b) -> go (Or (Not a, b))
    | Not a ->
        let a = go a in
        {
          dta = tidy (Dta.product (Dta.complement a.dta) (valid_of a) ~final:( && ));
          fv = a.fv;
        }
    | Exists (x, a) -> quantify ~elem:true x (go a)
    | Exists_set (x, a) -> quantify ~elem:false x (go a)
    | Forall (x, a) -> go (Not (Exists (x, Not a)))
    | Forall_set (x, a) -> go (Not (Exists_set (x, Not a)))
  in
  let result = cylindrify (go phi) free in
  (* result.fv is the declared free set in sorted order; permute pebble bits
     so that bit i corresponds to free.(i), the caller's order. *)
  let k = List.length free in
  let sorted = result.fv in
  let alpha = Alphabet.make ~base_size:nbase ~bits:k in
  let to_internal l =
    let b = Alphabet.base alpha l in
    let m = ref 0 in
    List.iteri
      (fun i v ->
        if Alphabet.bit alpha l i then m := !m lor (1 lsl pos sorted v))
      free;
    Alphabet.encode alpha ~base:b ~mask:!m
  in
  let auto =
    if free = sorted then result.dta
    else
      Dta.make ~nstates:(Dta.nstates result.dta) ~nlabels:(Alphabet.size alpha)
        ~final:(Dta.is_final result.dta)
        (fun ql qr l -> Dta.delta result.dta ql qr (to_internal l))
  in
  { auto; alpha; base; free_bits = List.mapi (fun i v -> (v, i)) free }

let accepts t tree ~elems ~sets =
  let bit v =
    match List.assoc_opt v t.free_bits with
    | Some i -> i
    | None -> invalid_arg ("Mso_compile.accepts: not a free variable: " ^ v)
  in
  let missing =
    List.filter
      (fun (v, _) ->
        (not (List.mem_assoc v elems)) && not (List.mem_assoc v sets))
      t.free_bits
  in
  if missing <> [] then
    invalid_arg "Mso_compile.accepts: unassigned free variable";
  let pebbles =
    List.map (fun (v, node) -> (bit v, node)) elems
    @ List.concat_map
        (fun (v, nodes) -> List.map (fun node -> (bit v, node)) nodes)
        sets
  in
  Dta.accepts t.auto tree ~label_of:(Alphabet.labeler t.alpha tree pebbles)

let size_report t =
  Printf.sprintf "states=%d labels=%d" (Dta.nstates t.auto)
    (Alphabet.size t.alpha)
