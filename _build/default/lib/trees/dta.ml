type t = {
  nstates : int;
  nlabels : int;
  table : int array; (* [(ql+1) * (n+1) + (qr+1)] * nlabels + label *)
  final : bool array;
}

let idx t ql qr label =
  ((((ql + 1) * (t.nstates + 1)) + (qr + 1)) * t.nlabels) + label

let make ~nstates ~nlabels ~final f =
  if nstates < 1 then invalid_arg "Dta.make: need at least one state";
  if nlabels < 1 then invalid_arg "Dta.make: need at least one label";
  let t =
    {
      nstates;
      nlabels;
      table = Array.make ((nstates + 1) * (nstates + 1) * nlabels) 0;
      final = Array.init nstates final;
    }
  in
  for ql = -1 to nstates - 1 do
    for qr = -1 to nstates - 1 do
      for l = 0 to nlabels - 1 do
        let q = f ql qr l in
        if q < 0 || q >= nstates then invalid_arg "Dta.make: state out of range";
        t.table.(idx t ql qr l) <- q
      done
    done
  done;
  t

let make_reachable (type s) ~nlabels ~(final : s -> bool)
    ~(delta : s option -> s option -> int -> s) =
  let ids : (s, int) Hashtbl.t = Hashtbl.create 64 in
  let states : s option array ref = ref (Array.make 8 None) in
  let count = ref 0 in
  let intern st =
    match Hashtbl.find_opt ids st with
    | Some id -> (id, false)
    | None ->
        let id = !count in
        incr count;
        if id >= Array.length !states then begin
          let bigger = Array.make (2 * Array.length !states) None in
          Array.blit !states 0 bigger 0 (Array.length !states);
          states := bigger
        end;
        !states.(id) <- Some st;
        Hashtbl.add ids st id;
        (id, true)
  in
  let get id = Option.get !states.(id) in
  let table : (int * int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let arg i = if i < 0 then None else Some (get i) in
  let fill sl sr l =
    if Hashtbl.mem table (sl, sr, l) then false
    else begin
      let id, fresh = intern (delta (arg sl) (arg sr) l) in
      Hashtbl.replace table (sl, sr, l) id;
      fresh
    end
  in
  (* Worklist closure: when a state is processed it is paired (both ways,
     and with '*') against every state discovered so far; pairs with states
     discovered later are handled when those are processed.  Each ordered
     pair is visited O(1) times. *)
  for l = 0 to nlabels - 1 do
    ignore (fill (-1) (-1) l)
  done;
  let processed = ref 0 in
  while !processed < !count do
    let s = !processed in
    incr processed;
    for l = 0 to nlabels - 1 do
      ignore (fill s (-1) l);
      ignore (fill (-1) s l);
      for t = 0 to !processed - 1 do
        ignore (fill s t l);
        ignore (fill t s l)
      done
    done
  done;
  let n = max 1 !count in
  make ~nstates:n ~nlabels
    ~final:(fun id -> id < !count && final (get id))
    (fun ql qr l ->
      match Hashtbl.find_opt table (ql, qr, l) with Some id -> id | None -> 0)

let nstates t = t.nstates
let nlabels t = t.nlabels
let is_final t q = t.final.(q)

let delta t ql qr label = t.table.(idx t ql qr label)

let run t tree ~label_of =
  let n = Btree.size tree in
  let state = Array.make n (-1) in
  Array.iter
    (fun v ->
      let ql = match Btree.left tree v with Some c -> state.(c) | None -> -1 in
      let qr = match Btree.right tree v with Some c -> state.(c) | None -> -1 in
      state.(v) <- delta t ql qr (label_of v))
    (Btree.postorder tree);
  state

let state_at_root t tree ~label_of = (run t tree ~label_of).(Btree.root tree)

let accepts t tree ~label_of = is_final t (state_at_root t tree ~label_of)

let run_with_hole_states t tree ~label_of ~hole q =
  let n = Btree.size tree in
  let state = Array.make n (-1) in
  let hole_state = match q with Some q -> q | None -> -1 in
  Array.iter
    (fun v ->
      if v = hole then state.(v) <- hole_state
      else if not (Btree.strictly_below tree hole v) then begin
        let ql =
          match Btree.left tree v with Some c -> state.(c) | None -> -1
        in
        let qr =
          match Btree.right tree v with Some c -> state.(c) | None -> -1
        in
        state.(v) <- delta t ql qr (label_of v)
      end)
    (Btree.postorder tree);
  state

let run_with_hole t tree ~label_of ~hole q =
  (run_with_hole_states t tree ~label_of ~hole q).(Btree.root tree)

let product a b ~final =
  if a.nlabels <> b.nlabels then invalid_arg "Dta.product: alphabet mismatch";
  let n = a.nstates * b.nstates in
  let pair qa qb = (qa * b.nstates) + qb in
  make ~nstates:n ~nlabels:a.nlabels
    ~final:(fun q -> final a.final.(q / b.nstates) b.final.(q mod b.nstates))
    (fun ql qr l ->
      let split q = if q < 0 then (-1, -1) else (q / b.nstates, q mod b.nstates) in
      let qla, qlb = split ql and qra, qrb = split qr in
      pair (delta a qla qra l) (delta b qlb qrb l))

let complement t = { t with final = Array.map not t.final }

let accept_all ~nlabels =
  make ~nstates:1 ~nlabels ~final:(fun _ -> true) (fun _ _ _ -> 0)

let accept_none ~nlabels =
  make ~nstates:1 ~nlabels ~final:(fun _ -> false) (fun _ _ _ -> 0)

let reachable t =
  let reach = Array.make t.nstates false in
  let frontier = Queue.create () in
  let add q =
    if not reach.(q) then begin
      reach.(q) <- true;
      Queue.add q frontier
    end
  in
  for l = 0 to t.nlabels - 1 do
    add (delta t (-1) (-1) l)
  done;
  while not (Queue.is_empty frontier) do
    let q = Queue.pop frontier in
    for l = 0 to t.nlabels - 1 do
      add (delta t q (-1) l);
      add (delta t (-1) q l);
      for q' = 0 to t.nstates - 1 do
        if reach.(q') then begin
          add (delta t q q' l);
          add (delta t q' q l)
        end
      done
    done
  done;
  reach

let reduce t =
  let reach = reachable t in
  let remap = Array.make t.nstates (-1) in
  let k = ref 0 in
  Array.iteri
    (fun q r ->
      if r then begin
        remap.(q) <- !k;
        incr k
      end)
    reach;
  let n' = max 1 !k in
  let back = Array.make n' 0 in
  Array.iteri (fun q m -> if m >= 0 then back.(m) <- q) remap;
  make ~nstates:n' ~nlabels:t.nlabels
    ~final:(fun q -> !k > 0 && t.final.(back.(q)))
    (fun ql qr l ->
      if !k = 0 then 0
      else
        let lift q = if q < 0 then -1 else back.(q) in
        let q = delta t (lift ql) (lift qr) l in
        (* Images of reachable states are reachable; other entries are
           irrelevant, point them anywhere valid. *)
        if remap.(q) >= 0 then remap.(q) else 0)

let minimize t =
  let t = reduce t in
  let n = t.nstates in
  let cls = Array.init n (fun q -> if t.final.(q) then 1 else 0) in
  let changed = ref true in
  while !changed do
    changed := false;
    let sig_of q =
      let acc = ref [ cls.(q) ] in
      for l = 0 to t.nlabels - 1 do
        acc := cls.(delta t q (-1) l) :: cls.(delta t (-1) q l) :: !acc;
        for r = 0 to n - 1 do
          acc := cls.(delta t q r l) :: cls.(delta t r q l) :: !acc
        done
      done;
      !acc
    in
    let sigs = Array.init n sig_of in
    let fresh = Hashtbl.create 16 in
    let next = ref 0 in
    let newcls =
      Array.init n (fun q ->
          let key = (cls.(q), sigs.(q)) in
          match Hashtbl.find_opt fresh key with
          | Some c -> c
          | None ->
              let c = !next in
              incr next;
              Hashtbl.add fresh key c;
              c)
    in
    if newcls <> cls then begin
      Array.blit newcls 0 cls 0 n;
      changed := true
    end
  done;
  let nclasses = Array.fold_left max 0 cls + 1 in
  let rep = Array.make nclasses 0 in
  for q = n - 1 downto 0 do
    rep.(cls.(q)) <- q
  done;
  make ~nstates:nclasses ~nlabels:t.nlabels
    ~final:(fun c -> t.final.(rep.(c)))
    (fun cl cr l ->
      let lift c = if c < 0 then -1 else rep.(c) in
      cls.(delta t (lift cl) (lift cr) l))

let is_empty t =
  let reach = reachable t in
  not (Array.exists2 (fun r f -> r && f) reach t.final)

let equivalent a b =
  is_empty (product a b ~final:(fun x y -> x <> y))

let pp fmt t =
  let finals =
    List.filter (fun q -> t.final.(q)) (List.init t.nstates Fun.id)
  in
  Format.fprintf fmt "dta{%d states, %d labels, final=%s}" t.nstates t.nlabels
    (String.concat "," (List.map string_of_int finals))
