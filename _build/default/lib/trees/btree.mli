(** Labeled ordered binary trees (Section 4).

    A Sigma-tree is a binary tree each of whose nodes carries exactly one
    letter of a finite alphabet Sigma.  Nodes are integers [0 .. size-1] in
    preorder; every query about shape (children, ancestorship, lca) is O(1)
    after construction. *)

type t

type spec = N of string * spec option * spec option
(** Algebraic description used to build trees: label, left child, right
    child. *)

val leaf : string -> spec
val node1 : string -> spec -> spec
(** Single left child. *)

val node : string -> spec -> spec -> spec

val of_spec : spec -> t
(** Builds the tree; the alphabet is the set of labels occurring, sorted. *)

val of_spec_with_alphabet : string list -> spec -> t
(** Same, but with a fixed alphabet (a superset of the labels used) so that
    automata compiled for that alphabet apply.  @raise Invalid_argument if a
    label is missing from the list. *)

val size : t -> int
val root : t -> int
val alphabet : t -> string array

val label : t -> int -> int
(** Label id of a node (index into {!alphabet}). *)

val label_name : t -> int -> string

val left : t -> int -> int option
val right : t -> int -> int option
val parent : t -> int -> int option
val depth : t -> int -> int

val is_leaf : t -> int -> bool

val ancestor_or_equal : t -> int -> int -> bool
(** [ancestor_or_equal t x y]: x lies on the path from the root to y
    (inclusive) — the reflexive tree order. *)

val strictly_below : t -> int -> int -> bool
(** The paper's [x <^T y] (transitive closure of the child relations):
    [strictly_below t x y] iff y is a proper descendant of x. *)

val lca : t -> int -> int -> int

val postorder : t -> int array
(** Node ids in postorder — the evaluation order of bottom-up automata. *)

val subtree_nodes : t -> int -> int list
(** Nodes of the subtree rooted at the given node, ascending. *)

val subtree_size : t -> int -> int

val nodes_with_label : t -> string -> int list

val to_structure : t -> Structure.t
(** Relational view over schema {S1/2, S2/2, Leq/2, one unary symbol per
    letter}: feeds the MSO oracle of {!Wm_logic.Mso}.  [Leq] is the
    reflexive tree order. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering, one node per line. *)
