lib/trees/tree_query.ml: Alphabet Array Btree Dta List Mso_compile Tuple Weighted
