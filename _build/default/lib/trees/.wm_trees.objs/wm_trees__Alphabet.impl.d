lib/trees/alphabet.ml: Array Btree List
