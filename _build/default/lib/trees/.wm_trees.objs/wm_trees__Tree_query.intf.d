lib/trees/tree_query.mli: Alphabet Btree Dta Mso_compile Tuple Weighted
