lib/trees/nta.ml: Alphabet Array Btree Dta Hashtbl Int List Set
