lib/trees/btree.mli: Format Structure
