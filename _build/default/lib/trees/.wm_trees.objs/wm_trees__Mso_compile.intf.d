lib/trees/mso_compile.mli: Alphabet Btree Dta Mso
