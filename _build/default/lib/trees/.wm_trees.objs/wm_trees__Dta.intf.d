lib/trees/dta.mli: Btree Format
