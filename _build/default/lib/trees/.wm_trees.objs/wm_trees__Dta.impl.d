lib/trees/dta.ml: Array Btree Format Fun Hashtbl List Option Queue String
