lib/trees/alphabet.mli: Btree
