lib/trees/btree.ml: Array Format Fun Hashtbl List Schema String Structure Tuple
