lib/trees/mso_compile.ml: Alphabet Array Dta List Map Mso Nta Printf Set String
