lib/trees/nta.mli: Alphabet Btree Dta
