(** Deterministic bottom-up tree automata (Section 4).

    B = (Q, delta, F) with delta : (Q u {*})^2 x Sigma -> Q, where [*]
    stands for a missing child, exactly as in the paper's run definition.
    Automata here are complete (the transition table is total), which makes
    complementation a final-flip.  States are integers [0 .. nstates-1];
    [*] is represented as [-1] at the API boundary. *)

type t

val make :
  nstates:int ->
  nlabels:int ->
  final:(int -> bool) ->
  (int -> int -> int -> int) ->
  t
(** [make ~nstates ~nlabels ~final f] tabulates [f ql qr label] for
    [ql, qr] in [-1 .. nstates-1] ([-1] = [*]).  The result of [f] must lie
    in [0 .. nstates-1]. *)

val make_reachable :
  nlabels:int ->
  final:('s -> bool) ->
  delta:('s option -> 's option -> int -> 's) ->
  t
(** Build from a symbolic transition function over an arbitrary state type
    ([None] = [*]), materializing only the bottom-up-reachable states by
    worklist closure — for automata whose natural state space is a large
    product of which only a sliver is reachable (e.g. the clique-width
    query automata).  States are interned by structural equality; [delta]
    must be pure and reach finitely many states. *)

val nstates : t -> int
val nlabels : t -> int
val is_final : t -> int -> bool

val delta : t -> int -> int -> int -> int
(** [delta t ql qr label]; [-1] stands for [*]. *)

val run : t -> Btree.t -> label_of:(int -> int) -> int array
(** The run rho : T -> Q on a tree relabeled by [label_of] (use
    {!Alphabet.labeler} to place pebbles).  Index = node id. *)

val state_at_root : t -> Btree.t -> label_of:(int -> int) -> int
val accepts : t -> Btree.t -> label_of:(int -> int) -> bool

val run_with_hole :
  t -> Btree.t -> label_of:(int -> int) -> hole:int -> int option -> int
(** [run_with_hole t tree ~label_of ~hole q] evaluates the run on the
    subtree rooted at the root, except that the subtree rooted at [hole] is
    not descended into: its state is assumed to be [q] ([None] means the
    hole node is absent together with its subtree — used when summarizing a
    block whose child block may or may not exist).  Returns the state at the
    root.  The tree-scheme's behavior functions (Lemma 3) are tabulated with
    this. *)

val run_with_hole_states :
  t -> Btree.t -> label_of:(int -> int) -> hole:int -> int option -> int array
(** Like {!run_with_hole} but returns the whole state array (entries
    strictly below the hole are -1), so callers can read the state at an
    inner node such as a block root. *)

val product : t -> t -> final:(bool -> bool -> bool) -> t
(** Pairing construction; [final] combines the two finality predicates
    (conjunction = intersection, disjunction = union, xor = symmetric
    difference). *)

val complement : t -> t

val accept_all : nlabels:int -> t
val accept_none : nlabels:int -> t

val reduce : t -> t
(** Restricts to bottom-up-reachable states (and renumbers).  The language
    is unchanged; unreachable states would otherwise poison minimization
    and inflate the m of Theorem 5. *)

val minimize : t -> t
(** Moore partition refinement on a reduced automaton.  Quadratic in the
    state count per round; intended for the small automata of pattern
    queries. *)

val is_empty : t -> bool
(** No reachable final state. *)

val equivalent : t -> t -> bool
(** Same language (decided via the symmetric-difference product). *)

val pp : Format.formatter -> t -> unit
(** Summary line: state and label counts, final states. *)
