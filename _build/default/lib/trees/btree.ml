type t = {
  label : int array;
  left : int array;
  right : int array;
  parent : int array;
  depth : int array;
  tin : int array;
  tout : int array;
  size_below : int array;  (* subtree sizes *)
  root : int;
  alphabet : string array;
  post : int array;
}

type spec = N of string * spec option * spec option

let leaf l = N (l, None, None)
let node1 l c = N (l, Some c, None)
let node l a b = N (l, Some a, Some b)

let rec spec_size (N (_, l, r)) =
  1
  + (match l with Some s -> spec_size s | None -> 0)
  + (match r with Some s -> spec_size s | None -> 0)

let rec spec_labels acc (N (lbl, l, r)) =
  let acc = lbl :: acc in
  let acc = match l with Some s -> spec_labels acc s | None -> acc in
  match r with Some s -> spec_labels acc s | None -> acc

let build alphabet spec =
  let lookup = Hashtbl.create 16 in
  Array.iteri (fun i a -> Hashtbl.replace lookup a i) alphabet;
  let n = spec_size spec in
  let label = Array.make n 0
  and left = Array.make n (-1)
  and right = Array.make n (-1)
  and parent = Array.make n (-1)
  and depth = Array.make n 0
  and tin = Array.make n 0
  and tout = Array.make n 0
  and size_below = Array.make n 1 in
  let next = ref 0 in
  let clock = ref 0 in
  let post_acc = ref [] in
  let rec go par dep (N (lbl, l, r)) =
    let id = !next in
    incr next;
    (match Hashtbl.find_opt lookup lbl with
    | Some li -> label.(id) <- li
    | None -> invalid_arg ("Btree: label not in alphabet: " ^ lbl));
    parent.(id) <- par;
    depth.(id) <- dep;
    tin.(id) <- !clock;
    incr clock;
    (match l with
    | Some s ->
        let c = go id (dep + 1) s in
        left.(id) <- c;
        size_below.(id) <- size_below.(id) + size_below.(c)
    | None -> ());
    (match r with
    | Some s ->
        let c = go id (dep + 1) s in
        right.(id) <- c;
        size_below.(id) <- size_below.(id) + size_below.(c)
    | None -> ());
    tout.(id) <- !clock;
    incr clock;
    post_acc := id :: !post_acc;
    id
  in
  let root = go (-1) 0 spec in
  {
    label;
    left;
    right;
    parent;
    depth;
    tin;
    tout;
    size_below;
    root;
    alphabet;
    post = Array.of_list (List.rev !post_acc);
  }

let of_spec spec =
  let labels = List.sort_uniq String.compare (spec_labels [] spec) in
  build (Array.of_list labels) spec

let of_spec_with_alphabet labels spec =
  let sorted = List.sort_uniq String.compare labels in
  if List.length sorted <> List.length labels then
    invalid_arg "Btree.of_spec_with_alphabet: duplicate label";
  build (Array.of_list labels) spec

let size t = Array.length t.label
let root t = t.root
let alphabet t = t.alphabet
let label t v = t.label.(v)
let label_name t v = t.alphabet.(t.label.(v))
let left t v = if t.left.(v) < 0 then None else Some t.left.(v)
let right t v = if t.right.(v) < 0 then None else Some t.right.(v)
let parent t v = if t.parent.(v) < 0 then None else Some t.parent.(v)
let depth t v = t.depth.(v)
let is_leaf t v = t.left.(v) < 0 && t.right.(v) < 0

let ancestor_or_equal t x y = t.tin.(x) <= t.tin.(y) && t.tout.(y) <= t.tout.(x)

let strictly_below t x y = x <> y && ancestor_or_equal t x y

let lca t x y =
  let rec go x y =
    if ancestor_or_equal t x y then x
    else go t.parent.(x) y
  in
  go x y

let postorder t = t.post

let subtree_nodes t v =
  let acc = ref [] in
  for u = size t - 1 downto 0 do
    if ancestor_or_equal t v u then acc := u :: !acc
  done;
  !acc

let subtree_size t v = t.size_below.(v)

let nodes_with_label t name =
  let li = ref (-1) in
  Array.iteri (fun i a -> if a = name then li := i) t.alphabet;
  if !li < 0 then []
  else
    List.filter (fun v -> t.label.(v) = !li) (List.init (size t) Fun.id)

let to_structure t =
  let n = size t in
  let symbols =
    [
      { Schema.name = "S1"; arity = 2 };
      { Schema.name = "S2"; arity = 2 };
      { Schema.name = "Leq"; arity = 2 };
    ]
    @ Array.to_list
        (Array.map (fun a -> { Schema.name = a; arity = 1 }) t.alphabet)
  in
  let schema = Schema.make symbols in
  let g = ref (Structure.create schema n) in
  for v = 0 to n - 1 do
    if t.left.(v) >= 0 then g := Structure.add_tuple !g "S1" (Tuple.pair v t.left.(v));
    if t.right.(v) >= 0 then
      g := Structure.add_tuple !g "S2" (Tuple.pair v t.right.(v));
    g := Structure.add_tuple !g t.alphabet.(t.label.(v)) (Tuple.singleton v)
  done;
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      if ancestor_or_equal t x y then
        g := Structure.add_tuple !g "Leq" (Tuple.pair x y)
    done
  done;
  !g

let pp fmt t =
  let rec go v =
    Format.fprintf fmt "%s%s (%d)@,"
      (String.make (2 * t.depth.(v)) ' ')
      (label_name t v) v;
    (match left t v with Some c -> go c | None -> ());
    match right t v with Some c -> go c | None -> ()
  in
  Format.fprintf fmt "@[<v>";
  go t.root;
  Format.fprintf fmt "@]"
