module Iset = Set.Make (Int)

type t = {
  nstates : int;
  nlabels : int;
  (* (ql+1, qr+1, label) -> possible states; key uses 0 for '*'. *)
  trans : (int * int * int, Iset.t) Hashtbl.t;
  final : bool array;
}

let nstates t = t.nstates
let nlabels t = t.nlabels

let of_dta d =
  let n = Dta.nstates d and nl = Dta.nlabels d in
  let trans = Hashtbl.create (n * n * nl / 2) in
  for ql = -1 to n - 1 do
    for qr = -1 to n - 1 do
      for l = 0 to nl - 1 do
        Hashtbl.replace trans (ql + 1, qr + 1, l)
          (Iset.singleton (Dta.delta d ql qr l))
      done
    done
  done;
  { nstates = n; nlabels = nl; trans; final = Array.init n (Dta.is_final d) }

let lookup t key =
  match Hashtbl.find_opt t.trans key with Some s -> s | None -> Iset.empty

let project d ~alpha ~bit =
  let n = Dta.nstates d in
  let small =
    Alphabet.make ~base_size:alpha.Alphabet.base_size
      ~bits:(alpha.Alphabet.bits - 1)
  in
  let nl = Alphabet.size small in
  let trans = Hashtbl.create (n * n * nl / 2) in
  for ql = -1 to n - 1 do
    for qr = -1 to n - 1 do
      for l = 0 to nl - 1 do
        let l0 = Alphabet.insert_bit small bit false l in
        let l1 = Alphabet.insert_bit small bit true l in
        Hashtbl.replace trans
          (ql + 1, qr + 1, l)
          (Iset.of_list [ Dta.delta d ql qr l0; Dta.delta d ql qr l1 ])
      done
    done
  done;
  { nstates = n; nlabels = nl; trans; final = Array.init n (Dta.is_final d) }

let accepts t tree ~label_of =
  let n = Btree.size tree in
  let state = Array.make n Iset.empty in
  let states_of = function
    | None -> [ 0 ]
    | Some c -> List.map (fun q -> q + 1) (Iset.elements state.(c))
  in
  Array.iter
    (fun v ->
      let ls = states_of (Btree.left tree v) in
      let rs = states_of (Btree.right tree v) in
      let l = label_of v in
      let acc = ref Iset.empty in
      List.iter
        (fun ql ->
          List.iter
            (fun qr -> acc := Iset.union !acc (lookup t (ql, qr, l)))
            rs)
        ls;
      state.(v) <- !acc)
    (Btree.postorder tree);
  Iset.exists (fun q -> t.final.(q)) state.(Btree.root tree)

let determinize t =
  let subset_ids : (int list, int) Hashtbl.t = Hashtbl.create 64 in
  let subsets : Iset.t array ref = ref (Array.make 8 Iset.empty) in
  let count = ref 0 in
  let intern s =
    let key = Iset.elements s in
    match Hashtbl.find_opt subset_ids key with
    | Some id -> (id, false)
    | None ->
        let id = !count in
        incr count;
        if id >= Array.length !subsets then begin
          let bigger = Array.make (2 * Array.length !subsets) Iset.empty in
          Array.blit !subsets 0 bigger 0 (Array.length !subsets);
          subsets := bigger
        end;
        !subsets.(id) <- s;
        Hashtbl.add subset_ids key id;
        (id, true)
    in
  (* delta on subset ids; -1 encodes '*'. *)
  let step sl sr l =
    let side s = if s < 0 then [ 0 ] else List.map (fun q -> q + 1) (Iset.elements !subsets.(s)) in
    let acc = ref Iset.empty in
    List.iter
      (fun ql ->
        List.iter (fun qr -> acc := Iset.union !acc (lookup t (ql, qr, l))) (side sr))
      (side sl);
    !acc
  in
  let table : (int * int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let fill sl sr l =
    if not (Hashtbl.mem table (sl, sr, l)) then begin
      let id, fresh = intern (step sl sr l) in
      Hashtbl.replace table (sl, sr, l) id;
      fresh
    end
    else false
  in
  (* Seed with leaf transitions, then close under pairing until no new
     subset-state appears.  Every state materialized this way is bottom-up
     reachable, so no separate reduction pass is needed. *)
  for l = 0 to t.nlabels - 1 do
    ignore (fill (-1) (-1) l)
  done;
  let stable = ref false in
  while not !stable do
    stable := true;
    let n = !count in
    for sl = -1 to n - 1 do
      for sr = -1 to n - 1 do
        if sl >= 0 || sr >= 0 then
          for l = 0 to t.nlabels - 1 do
            if fill sl sr l then stable := false
          done
      done
    done;
    if !count > n then stable := false
  done;
  let nst = max 1 !count in
  Dta.make ~nstates:nst ~nlabels:t.nlabels
    ~final:(fun id ->
      id < !count && Iset.exists (fun q -> t.final.(q)) !subsets.(id))
    (fun ql qr l ->
      match Hashtbl.find_opt table (ql, qr, l) with
      | Some id -> id
      | None -> 0)
