(** Pebble alphabets Sigma_k = Sigma x {0,1}^k (Section 4).

    A tree with k distinguishable pebbles placed on vertices is a tree over
    the product alphabet: each node's extended label records its base letter
    and, for each pebble, whether the pebble sits on it.  We encode the
    extended letter [(c, b_0 .. b_{k-1})] as the integer
    [c + base_size * mask] where [mask] has bit i set iff b_i = 1. *)

type t = { base_size : int; bits : int }
(** An extended-alphabet descriptor. *)

val make : base_size:int -> bits:int -> t
(** [bits] may be 0 (plain alphabet).  Size must stay below 2^20. *)

val size : t -> int
(** base_size * 2^bits — the number of extended letters. *)

val encode : t -> base:int -> mask:int -> int
val base : t -> int -> int
val mask : t -> int -> int

val bit : t -> int -> int -> bool
(** [bit a letter i] is pebble bit i of the extended letter. *)

val with_bit : t -> int -> int -> bool -> int
(** Extended letter with pebble bit i forced to the given value. *)

val insert_bit : t -> int -> bool -> int -> int
(** [insert_bit a p v letter]: [letter] is over [a]; the result is the
    letter over the (bits+1)-alphabet whose bit [p] is [v] and whose other
    bits are [letter]'s, shifted.  Cylindrification uses this to translate
    letters between a subformula's alphabet and its superformula's. *)

val drop_bit : t -> int -> int -> int
(** [drop_bit a p letter]: [letter] is over [a]; forget its bit [p],
    producing a letter over the (bits-1)-alphabet.  Inverse of
    {!insert_bit} up to the dropped bit's value. *)

val labeler : t -> Btree.t -> (int * int) list -> int -> int
(** [labeler a tree pebbles] is the extended labeling of [tree] where
    [pebbles] lists (bit index, node) placements — the tree T_{a b} of the
    paper.  Unlisted bits are 0 everywhere.  Placing two pebbles of the same
    index on different nodes is allowed (that encodes a set bit, used by the
    MSO semantics); the function is the node-to-letter map. *)
