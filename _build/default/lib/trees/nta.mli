(** Nondeterministic bottom-up tree automata.

    Only two operations of the MSO pipeline genuinely need
    nondeterminism: projecting a pebble bit away (the automaton guesses
    where the quantified variable sits) and its undoing, determinization by
    subset construction.  NTAs are transient values between a {!Dta.t} and
    the next {!determinize}. *)

type t

val of_dta : Dta.t -> t

val nstates : t -> int
val nlabels : t -> int

val project : Dta.t -> alpha:Alphabet.t -> bit:int -> t
(** [project d ~alpha ~bit] is existential quantification over pebble bit
    [bit]: the resulting NTA reads the {e smaller} alphabet (bit removed)
    and, on each letter, may take the transition [d] had with that bit 0 or
    with it 1.  [alpha] is [d]'s alphabet. *)

val determinize : t -> Dta.t
(** Subset construction; only reachable subset-states are materialized, and
    the result is complete (the empty subset is the sink). *)

val accepts : t -> Btree.t -> label_of:(int -> int) -> bool
(** Direct nondeterministic evaluation (set-of-states simulation); used by
    tests to cross-check determinization. *)
