(** Automaton-defined parametric queries on trees (Section 4).

    A Sigma_{k+s}-tree automaton defines an s-ary query with k parameters:
    B(a, T) = { b : B accepts T_{a b} }.  Pebble bits [0 .. k-1] carry the
    parameter, bits [k .. k+s-1] the candidate result.  This module is the
    tree-side counterpart of {!Wm_logic.Query}: it produces result sets
    W_a, the active set W, and server answers, which is exactly the
    interface the watermarking schemes consume. *)

type t

val make : Dta.t -> alpha:Alphabet.t -> k:int -> s:int -> t
(** [make auto ~alpha ~k ~s]: the automaton must be over [alpha], which
    needs at least [k + s] pebble bits.  Extra bits (left over from bound
    variables of a compiled formula) are fine: they stay 0. *)

val of_compiled :
  Mso_compile.t -> params:string list -> results:string list -> t
(** Wraps a compiled MSO formula; [params] and [results] must together be
    exactly its free variables (all element variables). *)

val k : t -> int
val s : t -> int
val automaton : t -> Dta.t
val alpha : t -> Alphabet.t

val member : t -> Btree.t -> Tuple.t -> Tuple.t -> bool
(** [member q tree a b]: is b in B(a, T)?  One automaton run. *)

val result_set : t -> Btree.t -> Tuple.t -> Tuple.Set.t
(** W_a.  For s = 1, computed by a bottom-up run plus a top-down
    context-acceptance pass — O(size * states) per parameter; for s > 1,
    brute force over candidate tuples (size^s runs). *)

val all_params : t -> Btree.t -> Tuple.t list
(** All k-tuples of nodes (size^k of them). *)

val active : t -> Btree.t -> Tuple.Set.t
(** W = union of W_a; size^(k+s) automaton runs — see DESIGN.md 5.2 on
    evaluator cost being part of the reproduced substrate. *)

val f : t -> Btree.t -> weights:Weighted.t -> Tuple.t -> int
(** Weight of the query result for a parameter (the f of Section 1). *)

val answer : t -> Btree.t -> weights:Weighted.t -> Tuple.t -> (Tuple.t * int) list
(** What a server returns: result tuples with their weights. *)
