lib/logic/parser.mli: Fo Mso Query
