lib/logic/mso.ml: Array Fo Format Fun Int List Map Option Relation Set String Structure Tuple
