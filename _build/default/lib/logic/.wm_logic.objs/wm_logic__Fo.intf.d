lib/logic/fo.mli: Format Schema
