lib/logic/mso.mli: Fo Format Structure Tuple
