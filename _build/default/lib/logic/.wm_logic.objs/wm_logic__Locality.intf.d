lib/logic/locality.mli: Fo Query Structure
