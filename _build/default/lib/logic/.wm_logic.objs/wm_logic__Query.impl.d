lib/logic/query.ml: Eval Fo Format List Neighborhood Set String Tuple Weighted
