lib/logic/query.mli: Fo Format Structure Tuple Weighted
