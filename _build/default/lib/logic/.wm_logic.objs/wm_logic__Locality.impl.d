lib/logic/locality.ml: Array Eval Fo Hashtbl List Map Neighborhood Option Printf Query Queue Stdlib String Structure
