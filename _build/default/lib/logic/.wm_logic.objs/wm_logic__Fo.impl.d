lib/logic/fo.ml: Format List Schema Set String
