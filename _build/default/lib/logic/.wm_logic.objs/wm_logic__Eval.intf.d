lib/logic/eval.mli: Fo Structure Tuple
