lib/logic/parser.ml: List Mso Printf Query String
