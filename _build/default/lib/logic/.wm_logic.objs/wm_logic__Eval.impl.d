lib/logic/eval.ml: Array Fo List Map Relation String Structure Tuple
