(** First-order model checking over finite structures.

    The straightforward recursive evaluator: quantifiers range over the
    whole universe, so checking a formula of quantifier rank q on a
    structure of size n costs O(n^q) per assignment.  This is the semantics
    substrate everything else is defined against; the experiment harness
    reports its cost rather than hiding it. *)

type env
(** A partial assignment of variables to universe elements. *)

val empty_env : env
val bind : env -> string -> int -> env
val bind_all : env -> string list -> Tuple.t -> env
(** [bind_all env vars t] binds [vars] pointwise to the elements of [t];
    lengths must agree. *)

val lookup : env -> string -> int
(** @raise Not_found on unbound variables. *)

val holds : Structure.t -> env -> Fo.t -> bool
(** [holds g env phi]: G |= phi under [env].  Every free variable of [phi]
    must be bound.  @raise Not_found otherwise. *)

val satisfying :
  Structure.t -> env -> string list -> Fo.t -> Tuple.Set.t
(** [satisfying g env vars phi] enumerates the assignments of [vars] making
    [phi] true, as tuples in the order of [vars], with other free variables
    taken from [env]. *)
