type t =
  | True
  | False
  | Atom of string * string list
  | Eq of string * string
  | In of string * string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t
  | Forall of string * t
  | Exists_set of string * t
  | Forall_set of string * t

let rec of_fo (phi : Fo.t) : t =
  match phi with
  | True -> True
  | False -> False
  | Atom (r, vs) -> Atom (r, vs)
  | Eq (x, y) -> Eq (x, y)
  | Not a -> Not (of_fo a)
  | And (a, b) -> And (of_fo a, of_fo b)
  | Or (a, b) -> Or (of_fo a, of_fo b)
  | Implies (a, b) -> Implies (of_fo a, of_fo b)
  | Exists (x, a) -> Exists (x, of_fo a)
  | Forall (x, a) -> Forall (x, of_fo a)

let rec to_fo (phi : t) : Fo.t option =
  let open Option in
  let map2 f a b =
    bind (to_fo a) (fun a -> bind (to_fo b) (fun b -> Some (f a b)))
  in
  match phi with
  | True -> Some Fo.True
  | False -> Some Fo.False
  | Atom (r, vs) -> Some (Fo.Atom (r, vs))
  | Eq (x, y) -> Some (Fo.Eq (x, y))
  | In _ | Exists_set _ | Forall_set _ -> None
  | Not a -> bind (to_fo a) (fun a -> Some (Fo.Not a))
  | And (a, b) -> map2 (fun a b -> Fo.And (a, b)) a b
  | Or (a, b) -> map2 (fun a b -> Fo.Or (a, b)) a b
  | Implies (a, b) -> map2 (fun a b -> Fo.Implies (a, b)) a b
  | Exists (x, a) -> bind (to_fo a) (fun a -> Some (Fo.Exists (x, a)))
  | Forall (x, a) -> bind (to_fo a) (fun a -> Some (Fo.Forall (x, a)))

module Svars = Set.Make (String)

let rec fev = function
  | True | False -> Svars.empty
  | Atom (_, vs) -> Svars.of_list vs
  | Eq (x, y) -> Svars.of_list [ x; y ]
  | In (x, _) -> Svars.singleton x
  | Not a -> fev a
  | And (a, b) | Or (a, b) | Implies (a, b) -> Svars.union (fev a) (fev b)
  | Exists (x, a) | Forall (x, a) -> Svars.remove x (fev a)
  | Exists_set (_, a) | Forall_set (_, a) -> fev a

let rec fsv = function
  | True | False | Atom _ | Eq _ -> Svars.empty
  | In (_, sx) -> Svars.singleton sx
  | Not a -> fsv a
  | And (a, b) | Or (a, b) | Implies (a, b) -> Svars.union (fsv a) (fsv b)
  | Exists (_, a) | Forall (_, a) -> fsv a
  | Exists_set (sx, a) | Forall_set (sx, a) -> Svars.remove sx (fsv a)

let free_elem_vars phi = Svars.elements (fev phi)
let free_set_vars phi = Svars.elements (fsv phi)

module Smap = Map.Make (String)
module Iset = Set.Make (Int)

let holds g ~elems ~sets phi =
  let n = Structure.size g in
  let rec go (ev : int Smap.t) (sv : Iset.t Smap.t) = function
    | True -> true
    | False -> false
    | Atom (r, vs) ->
        let t = Tuple.of_list (List.map (fun x -> Smap.find x ev) vs) in
        Relation.mem t (Structure.relation g r)
    | Eq (x, y) -> Smap.find x ev = Smap.find y ev
    | In (x, sx) -> Iset.mem (Smap.find x ev) (Smap.find sx sv)
    | Not a -> not (go ev sv a)
    | And (a, b) -> go ev sv a && go ev sv b
    | Or (a, b) -> go ev sv a || go ev sv b
    | Implies (a, b) -> (not (go ev sv a)) || go ev sv b
    | Exists (x, a) ->
        let rec loop v = v < n && (go (Smap.add x v ev) sv a || loop (v + 1)) in
        loop 0
    | Forall (x, a) ->
        let rec loop v = v >= n || (go (Smap.add x v ev) sv a && loop (v + 1)) in
        loop 0
    | Exists_set (sx, a) ->
        let rec loop mask =
          if mask >= 1 lsl n then false
          else
            let s =
              Iset.of_list
                (List.filter (fun i -> (mask lsr i) land 1 = 1)
                   (List.init n Fun.id))
            in
            go ev (Smap.add sx s sv) a || loop (mask + 1)
        in
        if n > 22 then invalid_arg "Mso.holds: structure too large for oracle";
        loop 0
    | Forall_set (sx, a) -> not (go ev sv (Exists_set (sx, Not a)))
  in
  let ev = List.fold_left (fun m (x, v) -> Smap.add x v m) Smap.empty elems in
  let sv =
    List.fold_left
      (fun m (x, vs) -> Smap.add x (Iset.of_list vs) m)
      Smap.empty sets
  in
  go ev sv phi

let result_set g ~params ~results a phi =
  if List.length params <> Array.length a then
    invalid_arg "Mso.result_set: parameter arity mismatch";
  let base = List.combine params (Array.to_list a) in
  let n = Structure.size g in
  let rec enum prefix = function
    | [] ->
        let b = Tuple.of_list (List.rev prefix) in
        fun acc ->
          let elems = base @ List.combine results (Array.to_list b) in
          if holds g ~elems ~sets:[] phi then Tuple.Set.add b acc else acc
    | _ :: rest ->
        fun acc ->
          let acc = ref acc in
          for v = 0 to n - 1 do
            acc := enum (v :: prefix) rest !acc
          done;
          !acc
  in
  enum [] results Tuple.Set.empty

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Atom (r, vs) -> Format.fprintf fmt "%s(%s)" r (String.concat "," vs)
  | Eq (x, y) -> Format.fprintf fmt "%s = %s" x y
  | In (x, sx) -> Format.fprintf fmt "%s in %s" x sx
  | Not a -> Format.fprintf fmt "~%a" pp_negand a
  | And (a, b) -> Format.fprintf fmt "%a & %a" pp_atomic a pp_atomic b
  | Or (a, b) -> Format.fprintf fmt "%a | %a" pp_atomic a pp_atomic b
  | Implies (a, b) -> Format.fprintf fmt "%a -> %a" pp_atomic a pp_atomic b
  | Exists (x, a) -> Format.fprintf fmt "exists %s. %a" x pp a
  | Forall (x, a) -> Format.fprintf fmt "forall %s. %a" x pp a
  | Exists_set (x, a) -> Format.fprintf fmt "existsS %s. %a" x pp a
  | Forall_set (x, a) -> Format.fprintf fmt "forallS %s. %a" x pp a

and pp_atomic fmt phi =
  match phi with
  | True | False | Atom _ | Eq _ | In _ | Not _ -> pp fmt phi
  | _ -> Format.fprintf fmt "(%a)" pp phi

and pp_negand fmt phi =
  match phi with
  | True | False | Atom _ | Not _ -> pp fmt phi
  | _ -> Format.fprintf fmt "(%a)" pp phi
