(** First-order formulas over a relational schema.

    Formulas are built from atomic formulas R(x1,...,xk) and equalities with
    the boolean connectives and element quantifiers (Section 1).  Variables
    are named; there are no constant or function symbols — query parameters
    are just free variables that the evaluator binds externally. *)

type t =
  | True
  | False
  | Atom of string * string list  (** R(x1, ..., xk) *)
  | Eq of string * string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t
  | Forall of string * t

val atom : string -> string list -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val neg : t -> t
val exists : string -> t -> t
val forall : string -> t -> t
val eq : string -> string -> t

val conj : t list -> t
(** Conjunction of a list; [True] when empty. *)

val disj : t list -> t

val free_vars : t -> string list
(** Free variables, sorted, without duplicates. *)

val quantifier_rank : t -> int
(** Depth of quantifier nesting — the parameter Gaifman's bound on locality
    rank is exponential in. *)

val well_formed : Schema.t -> t -> bool
(** Every atom uses a schema symbol with the right arity. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
