(** Monadic second-order logic and a naive evaluation oracle.

    MSO extends FO with quantification over {e sets} of elements
    (Section 1).  On trees MSO is the yardstick query language for XML
    pattern queries; Lemma 2 compiles it to tree automata.  This module
    provides the AST and a brute-force evaluator — it enumerates all 2^n
    subsets per set quantifier, so it is strictly a specification/test
    oracle against which the automaton pipeline of {!Wm_trees} is checked
    (experiment E8).

    Convention: set variables are any names; element and set variables live
    in separate namespaces selected by the binder and by the [In] atom. *)

type t =
  | True
  | False
  | Atom of string * string list  (** R(x1,...,xk), element variables *)
  | Eq of string * string
  | In of string * string  (** x in X *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t  (** element quantifier *)
  | Forall of string * t
  | Exists_set of string * t
  | Forall_set of string * t

val of_fo : Fo.t -> t
val to_fo : t -> Fo.t option
(** [to_fo phi] is the FO image when [phi] has no set construct. *)

val free_elem_vars : t -> string list
val free_set_vars : t -> string list

val holds :
  Structure.t ->
  elems:(string * int) list ->
  sets:(string * int list) list ->
  t ->
  bool
(** Brute-force model checking; set quantifiers enumerate all subsets of
    the universe, so keep structures below ~18 elements. *)

val result_set :
  Structure.t -> params:string list -> results:string list ->
  Tuple.t -> t -> Tuple.Set.t
(** psi(a, G) for an MSO formula whose free element variables split into
    parameters and results (no free set variables). *)

val pp : Format.formatter -> t -> unit
