exception Error of string

type token =
  | Ident of string
  | Lpar
  | Rpar
  | Comma
  | Dot
  | Amp
  | Bar
  | Tilde
  | Arrow
  | Equal
  | Kw_true
  | Kw_false
  | Kw_exists
  | Kw_forall
  | Kw_exists_set
  | Kw_forall_set
  | Kw_in
  | Eof

let lex s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '\''
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '(' then (toks := Lpar :: !toks; incr i)
    else if c = ')' then (toks := Rpar :: !toks; incr i)
    else if c = ',' then (toks := Comma :: !toks; incr i)
    else if c = '.' then (toks := Dot :: !toks; incr i)
    else if c = '&' then (toks := Amp :: !toks; incr i)
    else if c = '|' then (toks := Bar :: !toks; incr i)
    else if c = '~' then (toks := Tilde :: !toks; incr i)
    else if c = '=' then (toks := Equal :: !toks; incr i)
    else if c = '-' then begin
      if !i + 1 < n && s.[!i + 1] = '>' then (toks := Arrow :: !toks; i := !i + 2)
      else raise (Error (Printf.sprintf "unexpected '-' at offset %d" !i))
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      let word = String.sub s !i (!j - !i) in
      i := !j;
      let tok =
        match word with
        | "true" -> Kw_true
        | "false" -> Kw_false
        | "exists" -> Kw_exists
        | "forall" -> Kw_forall
        | "existsS" -> Kw_exists_set
        | "forallS" -> Kw_forall_set
        | "in" -> Kw_in
        | w -> Ident w
      in
      toks := tok :: !toks
    end
    else raise (Error (Printf.sprintf "unexpected character %C at offset %d" c !i))
  done;
  List.rev (Eof :: !toks)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Eof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st tok what =
  if peek st = tok then advance st
  else raise (Error (Printf.sprintf "expected %s" what))

let ident st =
  match peek st with
  | Ident w ->
      advance st;
      w
  | _ -> raise (Error "expected an identifier")

let rec parse_formula st : Mso.t = parse_implies st

and parse_implies st =
  let lhs = parse_or st in
  if peek st = Arrow then begin
    advance st;
    let rhs = parse_implies st in
    Implies (lhs, rhs)
  end
  else lhs

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = Bar do
    advance st;
    lhs := Mso.Or (!lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_unary st) in
  while peek st = Amp do
    advance st;
    lhs := Mso.And (!lhs, parse_unary st)
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Tilde ->
      advance st;
      Not (parse_unary st)
  | Kw_exists -> parse_quant st (fun x a -> Mso.Exists (x, a))
  | Kw_forall -> parse_quant st (fun x a -> Mso.Forall (x, a))
  | Kw_exists_set -> parse_quant st (fun x a -> Mso.Exists_set (x, a))
  | Kw_forall_set -> parse_quant st (fun x a -> Mso.Forall_set (x, a))
  | _ -> parse_atom st

and parse_quant st mk =
  advance st;
  let vars = ref [ ident st ] in
  while (match peek st with Ident _ -> true | _ -> false) do
    vars := ident st :: !vars
  done;
  expect st Dot "'.' after quantified variables";
  let body = parse_formula st in
  List.fold_left (fun acc x -> mk x acc) body !vars

and parse_atom st =
  match peek st with
  | Kw_true ->
      advance st;
      True
  | Kw_false ->
      advance st;
      False
  | Lpar ->
      advance st;
      let f = parse_formula st in
      expect st Rpar "')'";
      f
  | Ident w -> begin
      advance st;
      match peek st with
      | Lpar ->
          advance st;
          let args = ref [ ident st ] in
          while peek st = Comma do
            advance st;
            args := ident st :: !args
          done;
          expect st Rpar "')' closing atom";
          Atom (w, List.rev !args)
      | Equal ->
          advance st;
          Eq (w, ident st)
      | Kw_in ->
          advance st;
          In (w, ident st)
      | _ -> raise (Error (Printf.sprintf "dangling identifier %S" w))
    end
  | _ -> raise (Error "expected an atom")

let mso_of_string s =
  let st = { toks = lex s } in
  let f = parse_formula st in
  if peek st <> Eof then raise (Error "trailing input after formula");
  f

let fo_of_string s =
  match Mso.to_fo (mso_of_string s) with
  | Some f -> f
  | None -> raise (Error "formula uses second-order constructs")

let query_of_string ~params ~results s =
  Query.make ~params ~results (fo_of_string s)
