type t =
  | True
  | False
  | Atom of string * string list
  | Eq of string * string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Exists of string * t
  | Forall of string * t

let atom r vars = Atom (r, vars)
let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let neg a = Not a
let exists x a = Exists (x, a)
let forall x a = Forall (x, a)
let eq x y = Eq (x, y)

let conj = function [] -> True | x :: xs -> List.fold_left ( &&& ) x xs
let disj = function [] -> False | x :: xs -> List.fold_left ( ||| ) x xs

module Svars = Set.Make (String)

let rec free_vars_set = function
  | True | False -> Svars.empty
  | Atom (_, vars) -> Svars.of_list vars
  | Eq (x, y) -> Svars.of_list [ x; y ]
  | Not a -> free_vars_set a
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      Svars.union (free_vars_set a) (free_vars_set b)
  | Exists (x, a) | Forall (x, a) -> Svars.remove x (free_vars_set a)

let free_vars phi = Svars.elements (free_vars_set phi)

let rec quantifier_rank = function
  | True | False | Atom _ | Eq _ -> 0
  | Not a -> quantifier_rank a
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      max (quantifier_rank a) (quantifier_rank b)
  | Exists (_, a) | Forall (_, a) -> 1 + quantifier_rank a

let rec well_formed schema = function
  | True | False | Eq _ -> true
  | Atom (r, vars) ->
      Schema.mem schema r && Schema.arity_of schema r = List.length vars
  | Not a -> well_formed schema a
  | And (a, b) | Or (a, b) | Implies (a, b) ->
      well_formed schema a && well_formed schema b
  | Exists (_, a) | Forall (_, a) -> well_formed schema a

let rec pp fmt = function
  | True -> Format.pp_print_string fmt "true"
  | False -> Format.pp_print_string fmt "false"
  | Atom (r, vars) ->
      Format.fprintf fmt "%s(%s)" r (String.concat "," vars)
  | Eq (x, y) -> Format.fprintf fmt "%s = %s" x y
  | Not a -> Format.fprintf fmt "~%a" pp_negand a
  | And (a, b) -> Format.fprintf fmt "%a & %a" pp_atomic a pp_atomic b
  | Or (a, b) -> Format.fprintf fmt "%a | %a" pp_atomic a pp_atomic b
  | Implies (a, b) -> Format.fprintf fmt "%a -> %a" pp_atomic a pp_atomic b
  | Exists (x, a) -> Format.fprintf fmt "exists %s. %a" x pp a
  | Forall (x, a) -> Format.fprintf fmt "forall %s. %a" x pp a

and pp_atomic fmt phi =
  match phi with
  | True | False | Atom _ | Eq _ | Not _ -> pp fmt phi
  | _ -> Format.fprintf fmt "(%a)" pp phi

(* "~x = y" would re-parse as (~x) = y, so negated equalities keep their
   parentheses. *)
and pp_negand fmt phi =
  match phi with
  | True | False | Atom _ | Not _ -> pp fmt phi
  | _ -> Format.fprintf fmt "(%a)" pp phi

let to_string phi = Format.asprintf "%a" pp phi
