let saturating_pow base exp =
  let cap = max_int / 4 in
  let rec go acc i =
    if i = 0 then acc
    else if acc > cap / base then cap
    else go (acc * base) (i - 1)
  in
  go 1 exp

let gaifman_bound phi =
  let qr = Fo.quantifier_rank phi in
  (saturating_pow 7 qr - 1) / 2

(* Make bound variables globally unique so existentials can be hoisted
   through conjunctions (Ex.a & b = Ex.(a & b) when x is not free in b). *)
let fo_alpha_rename phi =
  let counter = ref 0 in
  let module M = Map.Make (String) in
  let subst env x = match M.find_opt x env with Some y -> y | None -> x in
  let rec go env (phi : Fo.t) : Fo.t =
    match phi with
    | True -> True
    | False -> False
    | Atom (r, vs) -> Atom (r, List.map (subst env) vs)
    | Eq (x, y) -> Eq (subst env x, subst env y)
    | Not a -> Not (go env a)
    | And (a, b) -> And (go env a, go env b)
    | Or (a, b) -> Or (go env a, go env b)
    | Implies (a, b) -> Implies (go env a, go env b)
    | Exists (x, a) ->
        incr counter;
        let x' = Printf.sprintf "%s#%d" x !counter in
        Exists (x', go (M.add x x' env) a)
    | Forall (x, a) ->
        incr counter;
        let x' = Printf.sprintf "%s#%d" x !counter in
        Forall (x', go (M.add x x' env) a)
  in
  go M.empty phi

(* Conjunctive-query shape: a conjunction of relational/equality atoms
   under existential quantifiers (anywhere, thanks to renaming); returns
   (bound vars, atom variable lists) or None. *)
let rec cq_shape (phi : Fo.t) =
  match phi with
  | Exists (x, body) ->
      Option.map (fun (bound, ats) -> (x :: bound, ats)) (cq_shape body)
  | And (a, b) ->
      Option.bind (cq_shape a) (fun (ba, aa) ->
          Option.map (fun (bb, ab) -> (ba @ bb, aa @ ab)) (cq_shape b))
  | Atom (_, vars) -> Some ([], [ vars ])
  | Eq (x, y) -> Some ([], [ [ x; y ] ])
  | True -> Some ([], [])
  | False | Or _ | Implies _ | Not _ | Forall _ -> None

let cq_rank phi =
  let phi = fo_alpha_rename phi in
  match cq_shape phi with
  | None -> None
  | Some (bound, atoms) ->
      let free = Fo.free_vars phi in
      let vars =
        List.sort_uniq compare (free @ bound @ List.concat atoms)
      in
      let ix v =
        let rec go i = function
          | [] -> assert false
          | w :: _ when w = v -> i
          | _ :: rest -> go (i + 1) rest
        in
        go 0 vars
      in
      let n = List.length vars in
      (* BFS from the set of free variables over the query graph (variables
         co-occurring in an atom are adjacent). *)
      let adj = Array.make n [] in
      List.iter
        (fun atom_vars ->
          let is' = List.sort_uniq compare (List.map ix atom_vars) in
          List.iter
            (fun a ->
              List.iter (fun b -> if a <> b then adj.(a) <- b :: adj.(a)) is')
            is')
        atoms;
      let dist = Array.make n (-1) in
      let q = Queue.create () in
      List.iter
        (fun v ->
          dist.(ix v) <- 0;
          Queue.add (ix v) q)
        free;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun v ->
            if dist.(v) < 0 then begin
              dist.(v) <- dist.(u) + 1;
              Queue.add v q
            end)
          adj.(u)
      done;
      (* Unreached variables live in components without free variables:
         per-structure constants, irrelevant to the rank. *)
      Some (Array.fold_left max 0 dist)

let best_rank phi =
  match cq_rank phi with Some r -> r | None -> gaifman_bound phi

let respects_rank g phi ~rho =
  let vars = Fo.free_vars phi in
  let arity = List.length vars in
  if arity = 0 then true
  else begin
    let tuples = Neighborhood.all_tuples g ~arity in
    let ix = Neighborhood.index g ~rho tuples in
    (* Within each type, satisfaction must be constant. *)
    let verdict = Hashtbl.create 16 in
    List.for_all
      (fun t ->
        let ty = Neighborhood.type_of ix t in
        let sat = Eval.holds g (Eval.bind_all Eval.empty_env vars t) phi in
        match Hashtbl.find_opt verdict ty with
        | Some s -> s = sat
        | None ->
            Hashtbl.add verdict ty sat;
            true)
      tuples
  end

let minimal_rank g phi ~max =
  let rec go rho =
    if rho > max then None
    else if respects_rank g phi ~rho then Some rho
    else go (rho + 1)
  in
  go 0

let eta q ~k ~rho =
  let r = Query.param_arity q in
  let cap = max_int / 4 in
  let pow = saturating_pow (Stdlib.max 1 k) ((2 * rho) + 1) in
  if pow > cap / (2 * Stdlib.max 1 r) then cap else 2 * r * pow

let query_count_bound g q =
  saturating_pow (Stdlib.max 1 (Structure.size g)) (Query.param_arity q)
