(** Concrete syntax for formulas.

    A small hand-rolled recursive-descent parser so the CLI and the tests
    can state queries as text.  Grammar (lowest to highest precedence):

    {v
    formula  ::= implies
    implies  ::= or ('->' implies)?
    or       ::= and ('|' and)*
    and      ::= unary ('&' unary)*
    unary    ::= '~' unary | quantifier | atom
    quantifier ::= ('exists' | 'forall') ident ident* '.' formula
                 | ('existsS' | 'forallS') ident ident* '.' formula
    atom     ::= 'true' | 'false' | '(' formula ')'
               | ident '(' ident (',' ident)* ')'
               | ident '=' ident
               | ident 'in' ident
    v}

    Quantifying several variables at once nests binders left to right. *)

exception Error of string
(** Raised with a human-readable message on syntax errors. *)

val mso_of_string : string -> Mso.t
(** Parse an MSO formula. @raise Error on bad input. *)

val fo_of_string : string -> Fo.t
(** Parse, then require the result to be first-order.
    @raise Error when the text uses set quantifiers or membership. *)

val query_of_string :
  params:string list -> results:string list -> string -> Query.t
(** Parse an FO formula and wrap it as a parametric query. *)
