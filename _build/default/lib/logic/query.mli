(** Parametric queries psi(u, v) (Section 1).

    A formula with parameter is a formula with two distinguished variable
    vectors: the parameter vector u (bound by a final user) and the result
    vector v of arity s.  For a structure G and parameter value a,
    psi(a, G) = { b : G |= psi(a, b) } is the set of weighted s-tuples the
    server returns together with their weights. *)

type t = private {
  phi : Fo.t;
  params : string list;  (** u, arity r *)
  results : string list;  (** v, arity s *)
}

val make : params:string list -> results:string list -> Fo.t -> t
(** Validates that [params] and [results] are disjoint, cover all free
    variables of the formula, and that [results] is non-empty. *)

val param_arity : t -> int
val result_arity : t -> int

val result_set : Structure.t -> t -> Tuple.t -> Tuple.Set.t
(** W_a = psi(a, G), the set of weighted elements involved for parameter
    [a].  Note it does not depend on the weight assignment. *)

val all_params : Structure.t -> t -> Tuple.t list
(** U^r, every possible final-user input. *)

val active : Structure.t -> t -> Tuple.Set.t
(** W = union of W_a over all parameters: the active weighted elements.
    Distortions outside W are invisible to final users and useless for
    watermarking (Section 1). *)

val weight_of : Weighted.t -> Tuple.Set.t -> int
(** Sum of weights over a result set. *)

val f : Weighted.structure -> t -> Tuple.t -> int
(** f_(G,W)(a, psi) — the weight of the query result (Section 1), the
    quantity the d-global distortion assumption bounds. *)

val answer : Weighted.structure -> t -> Tuple.t -> (Tuple.t * int) list
(** A_a = { (b, W(b)) : b in psi(a, G) } — exactly what a server returns
    to a final user. *)

val tabulate : Structure.t -> t -> (Tuple.t * Tuple.Set.t) list
(** All (parameter, result set) pairs; the detector's "ask everything"
    primitive and the evaluator behind distortion checks. *)

val pp : Format.formatter -> t -> unit
