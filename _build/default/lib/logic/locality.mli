(** Locality ranks (Definition 5) and the Lemma 1 bound.

    Gaifman's theorem makes every FO query local with a rank exponential in
    the quantifier rank; the local scheme only needs {e some} correct rank,
    and smaller ranks give more neighborhood types collapsing, hence more
    capacity.  We expose the worst-case bound, an empirical verifier, and
    the Lemma 1 quantities eta and the query-count bound N. *)

val gaifman_bound : Fo.t -> int
(** rho <= (7^qr - 1) / 2, the classical bound from Gaifman's proof.
    Saturates at [max_int/4] to avoid overflow for deep formulas. *)

val cq_rank : Fo.t -> int option
(** A tight locality rank for {e conjunctive queries} — formulas of the
    form [exists w1 ... wn. (conjunction of relational atoms and
    equalities)].  A homomorphic image of the query's variable graph keeps
    its distances, so every bound variable lands within its query-graph
    distance of a free variable, and satisfaction only depends on the
    neighborhood of radius

      max over variables v connected to a free variable of
        (distance in the query graph from v to the nearest free variable)

    (components not touching any free variable are per-structure constants
    and do not affect Definition 5, which compares tuples of the same
    structure).  Returns [None] when the formula is not a conjunctive
    query.  For the paper's examples: [cq_rank "E(x,y)"] = 0,
    [cq_rank "exists w. E(x,w) & E(w,y)"] = 1, versus Gaifman bounds of 0
    and 3. *)

val best_rank : Fo.t -> int
(** [cq_rank] when the formula is a CQ, the Gaifman bound otherwise — the
    rank {!Wm_watermark.Local_scheme} should default to. *)

val respects_rank : Structure.t -> Fo.t -> rho:int -> bool
(** Checks Definition 5 on one structure: for every pair of tuples (over
    the formula's free variables) with isomorphic rho-neighborhoods,
    satisfaction agrees.  Exponential in the number of free variables —
    meant for tests and small instances. *)

val minimal_rank : Structure.t -> Fo.t -> max:int -> int option
(** Smallest rho <= max respecting Definition 5 on the given structure. *)

val eta : Query.t -> k:int -> rho:int -> int
(** Lemma 1: on STRUCT_k, tuples with ~rho-equivalent parameters have
    result sets differing in at most eta = 2 r k^(2 rho + 1) elements
    (we use the proof's bound, which covers s >= 1 by the sphere-size
    argument).  Saturates on overflow. *)

val query_count_bound : Structure.t -> Query.t -> int
(** N, the number of distinct possible queries = |U|^r, used to set the
    pair-selection probability p = 1 / (eta (2N)^eps). *)
