type t = { phi : Fo.t; params : string list; results : string list }

let make ~params ~results phi =
  if results = [] then invalid_arg "Query.make: empty result vector";
  let module S = Set.Make (String) in
  let ps = S.of_list params and rs = S.of_list results in
  if S.cardinal ps <> List.length params then
    invalid_arg "Query.make: duplicate parameter variable";
  if S.cardinal rs <> List.length results then
    invalid_arg "Query.make: duplicate result variable";
  if not (S.is_empty (S.inter ps rs)) then
    invalid_arg "Query.make: parameter and result variables overlap";
  let free = S.of_list (Fo.free_vars phi) in
  if not (S.subset free (S.union ps rs)) then
    invalid_arg "Query.make: free variable neither parameter nor result";
  { phi; params; results }

let param_arity q = List.length q.params
let result_arity q = List.length q.results

let result_set g q a =
  let env = Eval.bind_all Eval.empty_env q.params a in
  Eval.satisfying g env q.results q.phi

let all_params g q = Neighborhood.all_tuples g ~arity:(param_arity q)

let active g q =
  List.fold_left
    (fun acc a -> Tuple.Set.union acc (result_set g q a))
    Tuple.Set.empty (all_params g q)

let weight_of w s = Tuple.Set.fold (fun b acc -> acc + Weighted.get w b) s 0

let f (ws : Weighted.structure) q a =
  weight_of ws.weights (result_set ws.graph q a)

let answer (ws : Weighted.structure) q a =
  Tuple.Set.fold
    (fun b acc -> (b, Weighted.get ws.weights b) :: acc)
    (result_set ws.graph q a) []
  |> List.rev

let tabulate g q = List.map (fun a -> (a, result_set g q a)) (all_params g q)

let pp fmt q =
  Format.fprintf fmt "psi(%s; %s) = %a"
    (String.concat "," q.params)
    (String.concat "," q.results)
    Fo.pp q.phi
