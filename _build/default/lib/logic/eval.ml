module Smap = Map.Make (String)

type env = int Smap.t

let empty_env = Smap.empty

let bind env x v = Smap.add x v env

let bind_all env vars t =
  if List.length vars <> Array.length t then
    invalid_arg "Eval.bind_all: length mismatch";
  List.fold_left2 bind env vars (Array.to_list t)

let lookup env x =
  match Smap.find_opt x env with Some v -> v | None -> raise Not_found

let rec holds g env (phi : Fo.t) =
  match phi with
  | True -> true
  | False -> false
  | Atom (r, vars) ->
      let t = Tuple.of_list (List.map (lookup env) vars) in
      Relation.mem t (Structure.relation g r)
  | Eq (x, y) -> lookup env x = lookup env y
  | Not a -> not (holds g env a)
  | And (a, b) -> holds g env a && holds g env b
  | Or (a, b) -> holds g env a || holds g env b
  | Implies (a, b) -> (not (holds g env a)) || holds g env b
  | Exists (x, a) ->
      let n = Structure.size g in
      let rec go v = v < n && (holds g (bind env x v) a || go (v + 1)) in
      go 0
  | Forall (x, a) ->
      let n = Structure.size g in
      let rec go v = v >= n || (holds g (bind env x v) a && go (v + 1)) in
      go 0

let satisfying g env vars phi =
  let n = Structure.size g in
  let rec go env = function
    | [] -> fun acc partial -> if holds g env phi then Tuple.Set.add (Tuple.of_list (List.rev partial)) acc else acc
    | x :: rest ->
        fun acc partial ->
          let acc = ref acc in
          for v = 0 to n - 1 do
            acc := go (bind env x v) rest !acc (v :: partial)
          done;
          !acc
  in
  go env vars Tuple.Set.empty []
