(** The school XML document of Example 4, and a scalable generator.

    The paper's document: a <school> with students, each carrying
    <firstname>, <lastname> and a numeric <exam> mark; the parametric query
    is school/student[firstname=a]/exam and f(Robert) = 28 on the
    original. *)

val example4 : Wm_xml.Utree.t
(** The exact document of Example 4 (one school, three students). *)

val example4_pattern : Wm_xml.Pattern.t
(** school/student[firstname=$a]/exam. *)

val generate :
  Prng.t -> students:int -> ?first_names:string list -> unit -> Wm_xml.Utree.t
(** A school with [students] students; first names drawn from the pool
    (default: 8 common names, so repetitions — the interesting case —
    appear quickly), last names unique, exam marks uniform in 0..20. *)
