(** The worked examples of the paper, verbatim.

    These instances anchor the test suite and experiment E1: every number
    the paper prints about them (query weights, neighborhood types, the
    pair marking of Figures 2-4) is asserted against this code. *)

(** {1 Example 1-3: the travel database}

    Schema: Route(travel, transport), Timetable(transport, departure,
    arrival, type).  The weight attribute is the duration of a transport,
    modeled in minutes (10:35 -> 635). *)

val travel : Weighted.structure
(** The instance of Example 1 (universe: 3 travels, 6 transports, 6 cities,
    3 transport types; named elements). *)

val travel_query : Query.t
(** psi(u, v) = Route(u, v). *)

val travel_of : Weighted.structure -> string -> int
(** [travel_of ws name] is f(name) in minutes, e.g.
    [travel_of travel "India discovery" = 1015] (= 16:55). *)

val timetable' : Weighted.structure
(** The distortion Timetable' of Example 3: 0:10-local but not 0:10-global
    (f changes by 0:20 on "India discovery"). *)

val timetable'' : Weighted.structure
(** The distortion Timetable'' of Example 3: both 0:10-local and
    0:10-global. *)

(** {1 Figures 1-4: the six-element graph}

    Undirected graph on elements a..f (ids 0..5) with edges
    a-d, a-e, b-d, b-e, c-d, e-f; query psi(u,v) = E(u,v).
    With rho = 1 it has exactly three neighborhood types
    ({a,b}, {d,e}, {c,f}), and the pair (d,e) marked (+1,-1) realizes the
    zero-distortion trick of Section 3. *)

val figure1 : Weighted.structure
(** Weights: every element weighs 10 (the paper leaves them symbolic). *)

val figure1_query : Query.t

val figure1_names : string array
(** [|"a"; ...; "f"|] — display names, index = element id. *)
