(** Bipartite graphs and the Theorem 1 reduction input (experiment E2).

    Theorem 1 reduces PERMANENT (counting perfect matchings) to computing
    the watermarking capacity #Mark(=d): the reduction's marking problem
    has one "query" W_a per left vertex a, namely the set of edges incident
    to a... realized here as the parametric query over a structure whose
    weighted elements are the {e edges} (encoded as result pairs). *)

type t = { n : int; adj : bool array array }
(** A balanced bipartite graph: [adj.(i).(j)] = edge between left i and
    right j. *)

val random : Prng.t -> n:int -> p:float -> t
(** Each edge present independently with probability [p]. *)

val complete : int -> t

val permanent : t -> int
(** Number of perfect matchings, by Ryser's inclusion-exclusion formula
    (O(2^n n^2)); n <= 20. *)

val to_marking_problem : t -> Weighted.structure * Query.t
(** The reduction: universe = left vertices + right vertices; weighted
    elements are edge pairs (i, j) (weight arity 2, all weights 1);
    psi(u; v1, v2) = E(v1, v2) & (u = v1 | u = v2), so W_u is the set of
    edges incident to u, for both sides — matching the proof's
    "for all a in U, W_a = {(u,v) : E(u,v)}" family. *)
