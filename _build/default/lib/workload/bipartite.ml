type t = { n : int; adj : bool array array }

let random g ~n ~p =
  if n < 1 then invalid_arg "Bipartite.random";
  { n; adj = Array.init n (fun _ -> Array.init n (fun _ -> Prng.bernoulli g p)) }

let complete n = { n; adj = Array.make_matrix n n true }

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

(* Ryser's formula: perm(A) = (-1)^n sum_{S subseteq cols} (-1)^|S|
   prod_i sum_{j in S} A_ij. *)
let permanent { n; adj } =
  if n > 20 then invalid_arg "Bipartite.permanent: n > 20";
  let total = ref 0 in
  for mask = 0 to (1 lsl n) - 1 do
    let prod = ref 1 in
    (try
       for i = 0 to n - 1 do
         let row = ref 0 in
         for j = 0 to n - 1 do
           if (mask lsr j) land 1 = 1 && adj.(i).(j) then incr row
         done;
         if !row = 0 then raise Exit;
         prod := !prod * !row
       done
     with Exit -> prod := 0);
    let parity = if (n - popcount mask) land 1 = 1 then -1 else 1 in
    total := !total + (parity * !prod)
  done;
  !total

let to_marking_problem { n; adj } =
  let schema = Schema.make ~weight_arity:2 [ { Schema.name = "E"; arity = 2 } ] in
  let g = ref (Structure.create schema (2 * n)) in
  let w = ref (Weighted.create 2) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if adj.(i).(j) then begin
        g := Structure.add_tuple !g "E" (Tuple.pair i (n + j));
        w := Weighted.set !w (Tuple.pair i (n + j)) 1
      end
    done
  done;
  let open Fo in
  let q =
    Query.make ~params:[ "u" ] ~results:[ "v1"; "v2" ]
      (atom "E" [ "v1"; "v2" ] &&& (eq "u" "v1" ||| eq "u" "v2"))
  in
  (Weighted.make !g !w, q)
