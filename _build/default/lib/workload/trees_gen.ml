open Wm_trees

let random_spec g ~alphabet ~size =
  if size < 1 then invalid_arg "Trees_gen.random_spec: size < 1";
  let letters = Array.of_list alphabet in
  let letter () = Prng.choose g letters in
  (* Split the remaining node budget randomly between the two subtrees. *)
  let rec build n =
    assert (n >= 1);
    let lbl = letter () in
    if n = 1 then Btree.leaf lbl
    else begin
      let rest = n - 1 in
      let to_left = Prng.int g (rest + 1) in
      let to_right = rest - to_left in
      if to_left = 0 then Btree.N (lbl, None, Some (build to_right))
      else if to_right = 0 then Btree.N (lbl, Some (build to_left), None)
      else Btree.N (lbl, Some (build to_left), Some (build to_right))
    end
  in
  build size

let random_tree g ~alphabet ~size =
  Btree.of_spec_with_alphabet alphabet (random_spec g ~alphabet ~size)

let random_weights g tree ~lo ~hi =
  assert (hi >= lo);
  let w = ref (Weighted.create 1) in
  for v = 0 to Btree.size tree - 1 do
    w := Weighted.set_elt !w v (lo + Prng.int g (hi - lo + 1))
  done;
  !w

let caterpillar ~alphabet ~size =
  let letters = Array.of_list alphabet in
  let letter i = letters.(i mod Array.length letters) in
  let rec build i =
    if i = size - 1 then Btree.leaf (letter i)
    else Btree.N (letter i, Some (build (i + 1)), None)
  in
  Btree.of_spec_with_alphabet alphabet (build 0)

let complete ~label ~depth =
  let rec build d =
    if d = 1 then Btree.leaf label
    else Btree.node label (build (d - 1)) (build (d - 1))
  in
  if depth < 1 then invalid_arg "Trees_gen.complete: depth < 1";
  Btree.of_spec (build depth)
