open Wm_xml

let student first last exam =
  Xml.element "student"
    [
      Xml.element "firstname" [ Xml.text first ];
      Xml.element "lastname" [ Xml.text last ];
      Xml.element "exam" [ Xml.int_text exam ];
    ]

let example4 =
  Utree.of_xml
    (Xml.element "school"
       [
         student "John" "Doe" 11;
         student "Robert" "Durant" 16;
         student "Robert" "Smith" 12;
       ])

let example4_pattern = Pattern.parse "school/student[firstname=$a]/exam"

let default_first_names =
  [ "John"; "Robert"; "Alice"; "Mary"; "Wei"; "Amina"; "Ravi"; "Sofia" ]

let generate g ~students ?(first_names = default_first_names) () =
  let pool = Array.of_list first_names in
  let kids =
    List.init students (fun i ->
        student (Prng.choose g pool)
          (Printf.sprintf "Name%04d" i)
          (Prng.int g 21))
  in
  Utree.of_xml (Xml.element "school" kids)
