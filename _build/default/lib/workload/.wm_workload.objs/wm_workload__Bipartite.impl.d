lib/workload/bipartite.ml: Array Fo Prng Query Schema Structure Tuple Weighted
