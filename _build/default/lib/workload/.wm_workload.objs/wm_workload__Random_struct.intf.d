lib/workload/random_struct.mli: Prng Query Weighted
