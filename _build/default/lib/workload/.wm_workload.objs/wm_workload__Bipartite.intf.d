lib/workload/bipartite.mli: Prng Query Weighted
