lib/workload/shatter.ml: Fo List Query Schema Structure Tuple Weighted
