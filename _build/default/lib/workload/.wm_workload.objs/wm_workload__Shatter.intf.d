lib/workload/shatter.mli: Query Weighted
