lib/workload/school_xml.mli: Prng Wm_xml
