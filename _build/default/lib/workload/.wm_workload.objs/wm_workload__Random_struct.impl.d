lib/workload/random_struct.ml: Array Fo Hashtbl Prng Query Schema Structure Tuple Weighted
