lib/workload/paper_examples.mli: Query Weighted
