lib/workload/grid.ml: Fo Query Schema Structure Tuple Weighted
