lib/workload/trees_gen.ml: Array Btree Prng Weighted Wm_trees
