lib/workload/paper_examples.ml: Array Fo List Query Schema Structure Tuple Weighted
