lib/workload/biblio_xml.mli: Prng Wm_xml
