lib/workload/school_xml.ml: Array List Pattern Printf Prng Utree Wm_xml Xml
