lib/workload/trees_gen.mli: Prng Weighted Wm_trees
