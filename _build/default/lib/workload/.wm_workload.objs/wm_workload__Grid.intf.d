lib/workload/grid.mli: Query Weighted
