let random_weights g structure =
  Weighted.weigh (fun _ -> 100 + Prng.int g 900) structure

let graph g ~n ~max_degree ~edges =
  if n < 2 then invalid_arg "Random_struct.graph: n < 2";
  let degree = Array.make n 0 in
  let s = ref (Structure.create Schema.graph n) in
  let attempts = ref 0 in
  let placed = ref 0 in
  let seen = Hashtbl.create (2 * edges) in
  while !placed < edges && !attempts < 20 * edges do
    incr attempts;
    let a = Prng.int g n and b = Prng.int g n in
    let a, b = (min a b, max a b) in
    if a <> b && (not (Hashtbl.mem seen (a, b)))
       && degree.(a) < max_degree && degree.(b) < max_degree
    then begin
      Hashtbl.add seen (a, b) ();
      degree.(a) <- degree.(a) + 1;
      degree.(b) <- degree.(b) + 1;
      s := Structure.add_pairs !s "E" [ (a, b); (b, a) ];
      incr placed
    end
  done;
  random_weights g !s

let regular_rings g ~n =
  if n < 3 then invalid_arg "Random_struct.regular_rings: n < 3";
  let s = ref (Structure.create Schema.graph n) in
  let start = ref 0 in
  while !start < n do
    let want = 3 + Prng.int g 6 in
    let len = min want (n - !start) in
    let len = if len < 3 then n - !start else len in
    if len >= 3 then
      for i = 0 to len - 1 do
        let a = !start + i and b = !start + ((i + 1) mod len) in
        s := Structure.add_pairs !s "E" [ (a, b); (b, a) ]
      done
    else begin
      (* Tail shorter than a triangle: close it onto the previous ring by a
         chain so degrees stay <= 3. *)
      for i = 0 to len - 1 do
        let a = !start + i in
        let b = if i = 0 then !start - 1 else a - 1 in
        s := Structure.add_pairs !s "E" [ (a, b); (b, a) ]
      done
    end;
    start := !start + len
  done;
  random_weights g !s

let travel_query =
  Query.make ~params:[ "u" ] ~results:[ "v" ] (Fo.atom "Route" [ "u"; "v" ])

let travel g ~travels ~transports =
  if travels < 1 || transports < 1 then invalid_arg "Random_struct.travel";
  let cities = max 2 (int_of_float (sqrt (float_of_int transports))) in
  let types = 3 in
  let n = travels + transports + cities + types in
  let travel_id i = i in
  let transport_id i = travels + i in
  let city_id i = travels + transports + i in
  let type_id i = travels + transports + cities + i in
  let s = ref (Structure.create Schema.travel n) in
  for t = 0 to transports - 1 do
    let dep = Prng.int g cities in
    let arr = (dep + 1 + Prng.int g (cities - 1)) mod cities in
    let ty = Prng.int g types in
    s :=
      Structure.add_tuple !s "Timetable"
        (Tuple.of_list [ transport_id t; city_id dep; city_id arr; type_id ty ])
  done;
  for tr = 0 to travels - 1 do
    let legs = 2 + Prng.int g 4 in
    for _ = 1 to legs do
      s :=
        Structure.add_tuple !s "Route"
          (Tuple.pair (travel_id tr) (transport_id (Prng.int g transports)))
    done
  done;
  let w = ref (Weighted.create 1) in
  for t = 0 to transports - 1 do
    w := Weighted.set_elt !w (transport_id t) (30 + Prng.int g 720)
  done;
  (* Inactive elements also carry weights (like G13 in Example 1). *)
  Weighted.make !s !w
