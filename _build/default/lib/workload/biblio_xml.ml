open Wm_xml

let pattern = Pattern.parse "bibliography//article[author=$a]/citations"

let default_authors =
  [ "Codd"; "Fagin"; "Vardi"; "Abiteboul"; "Libkin"; "Grohe"; "Vianu";
    "Immerman"; "Papadimitriou"; "Courcelle" ]

let article g authors i =
  Xml.element "article"
    [
      Xml.element "author" [ Xml.text (Prng.choose g authors) ];
      Xml.element "title" [ Xml.text (Printf.sprintf "On Problem %04d" i) ];
      Xml.element "citations" [ Xml.int_text (Prng.int g 100) ];
    ]

let generate g ~articles ?(authors = default_authors) () =
  let pool = Array.of_list authors in
  let groups = max 1 ((articles + 7) / 8) in
  let next = ref 0 in
  let year y =
    let here = min 8 (articles - !next) in
    let arts =
      List.init here (fun _ ->
          let i = !next in
          incr next;
          article g pool i)
    in
    (* Non-numeric label text so year labels never count as value nodes. *)
    Xml.element "year"
      (Xml.element "label" [ Xml.text (Printf.sprintf "y%d" (1990 + y)) ] :: arts)
  in
  Utree.of_xml (Xml.element "bibliography" (List.init groups year))
