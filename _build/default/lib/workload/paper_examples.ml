(* Example 1: the travel database.  Element ids follow [names] below. *)

let names =
  [|
    (* travels: 0-2 *)
    "India discovery";
    "Nepal Trek";
    "TourNepal";
    (* transports: 3-8 *)
    "F21";
    "G12";
    "R5";
    "F2";
    "T33";
    "G13";
    (* cities: 9-14 *)
    "Paris";
    "Delhi";
    "Nawalgarh";
    "Kathmandu";
    "Simikot";
    "Daman";
    (* transport types: 15-17 *)
    "plane";
    "bus";
    "jeep";
  |]

let id name =
  let rec go i =
    if i = Array.length names then invalid_arg ("unknown name " ^ name)
    else if names.(i) = name then i
    else go (i + 1)
  in
  go 0

let minutes h m = (h * 60) + m

let routes =
  [
    ("India discovery", "F21");
    ("India discovery", "G12");
    ("Nepal Trek", "F21");
    ("Nepal Trek", "R5");
    ("Nepal Trek", "F2");
    ("TourNepal", "F2");
    ("TourNepal", "T33");
  ]

let timetable_rows =
  [
    ("F21", "Paris", "Delhi", "plane");
    ("G12", "Delhi", "Nawalgarh", "bus");
    ("R5", "Delhi", "Kathmandu", "plane");
    ("F2", "Kathmandu", "Simikot", "plane");
    ("T33", "Kathmandu", "Daman", "jeep");
    ("G13", "Kathmandu", "Paris", "plane");
  ]

let durations =
  [
    ("F21", minutes 10 35);
    ("G12", minutes 6 20);
    ("R5", minutes 6 15);
    ("F2", minutes 3 30);
    ("T33", minutes 2 50);
    ("G13", minutes 10 0);
  ]

let travel_structure () =
  let g = Structure.create ~names Schema.travel (Array.length names) in
  let g =
    List.fold_left
      (fun g (t, tr) -> Structure.add_tuple g "Route" (Tuple.pair (id t) (id tr)))
      g routes
  in
  List.fold_left
    (fun g (tr, dep, arr, ty) ->
      Structure.add_tuple g "Timetable"
        (Tuple.of_list [ id tr; id dep; id arr; id ty ]))
    g timetable_rows

let with_durations rows =
  let w =
    List.fold_left
      (fun w (tr, d) -> Weighted.set_elt w (id tr) d)
      (Weighted.create 1) rows
  in
  Weighted.make (travel_structure ()) w

let travel = with_durations durations

let travel_query =
  Query.make ~params:[ "u" ] ~results:[ "v" ] (Fo.atom "Route" [ "u"; "v" ])

let travel_of ws name = Query.f ws travel_query (Tuple.singleton (id name))

(* Example 3's two distortions of the timetable. *)

let timetable' =
  with_durations
    [
      ("F21", minutes 10 45);
      ("G12", minutes 6 30);
      ("R5", minutes 6 25);
      ("F2", minutes 3 20);
      ("T33", minutes 3 0);
      ("G13", minutes 10 0);
    ]

let timetable'' =
  with_durations
    [
      ("F21", minutes 10 25);
      ("G12", minutes 6 30);
      ("R5", minutes 6 5);
      ("F2", minutes 3 40);
      (* The published table prints 3:00 here, but that would give TourNepal
         a 0:20 global distortion, contradicting the example's own claim
         that Timetable'' is 0:10-global; 2:40 restores the claim. *)
      ("T33", minutes 2 40);
      ("G13", minutes 10 10);
    ]

(* Figures 1-4: the six-element undirected graph. *)

let figure1_names = [| "a"; "b"; "c"; "d"; "e"; "f" |]

let figure1_query =
  Query.make ~params:[ "u" ] ~results:[ "v" ] (Fo.atom "E" [ "u"; "v" ])

let figure1 =
  let edges = [ (0, 3); (0, 4); (1, 3); (1, 4); (2, 3); (4, 5) ] in
  let g = Structure.create ~names:figure1_names Schema.graph 6 in
  let g =
    List.fold_left
      (fun g (x, y) -> Structure.add_pairs g "E" [ (x, y); (y, x) ])
      g edges
  in
  Weighted.weigh (fun _ -> 10) g
