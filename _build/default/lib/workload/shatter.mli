(** The shattering structure families of Section 2.

    [full n] realizes the paper's impossibility witness: 2^n + n vertices
    where the i-th of the first 2^n vertices is E-linked to the i-th subset
    of the last n vertices.  For psi(u,v) = E(u,v) the active set W is
    those n vertices and C(psi, G) shatters all of W, so
    VC(psi, G) = |W| and Theorem 2 forbids any watermarking scheme.

    [half n] realizes Remark 1: 2^(n/2) + 1 + n vertices; the first 2^(n/2)
    vertices enumerate the subsets of the {e first} n/2 active vertices,
    and one extra vertex [hub] is linked to {e all} n active vertices.  The
    VC-dimension is n/2 (unbounded as a class), yet the last n/2 active
    vertices occur only in W_hub, so balanced (+1,-1) distortions on them
    hide n/4 bits at global distortion 0. *)

val query : Query.t
(** psi(u, v) = E(u, v). *)

val full : int -> Weighted.structure
(** [full n] for 1 <= n <= 16 (the structure has 2^n + n elements). *)

val full_active : int -> int list
(** The element ids of the active set W of [full n] (the last n). *)

val half : int -> Weighted.structure
(** [half n] for even n, 2 <= n <= 20. *)

val half_active : int -> int list
(** Active elements of [half n] (the last n ids). *)

val half_free : int -> int list
(** The n/2 active elements that occur only in W_hub — the carriers of the
    zero-distortion marking of Remark 1. *)

val half_hub : int -> int
(** The special vertex linked to every active element. *)
