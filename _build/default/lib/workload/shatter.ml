let query =
  Query.make ~params:[ "u" ] ~results:[ "v" ] (Fo.atom "E" [ "u"; "v" ])

let weigh g = Weighted.weigh (fun _ -> 100) g

let full n =
  if n < 1 || n > 16 then invalid_arg "Shatter.full: need 1 <= n <= 16";
  let subsets = 1 lsl n in
  let size = subsets + n in
  let g = ref (Structure.create Schema.graph size) in
  for i = 0 to subsets - 1 do
    for b = 0 to n - 1 do
      if (i lsr b) land 1 = 1 then
        g := Structure.add_tuple !g "E" (Tuple.pair i (subsets + b))
    done
  done;
  weigh !g

let full_active n =
  let subsets = 1 lsl n in
  List.init n (fun b -> subsets + b)

let half n =
  if n < 2 || n > 20 || n mod 2 <> 0 then
    invalid_arg "Shatter.half: need even n with 2 <= n <= 20";
  let h = n / 2 in
  let subsets = 1 lsl h in
  let size = subsets + 1 + n in
  let first_active = subsets + 1 in
  let hub = subsets in
  let g = ref (Structure.create Schema.graph size) in
  (* Subset enumerators cover the first n/2 active vertices. *)
  for i = 0 to subsets - 1 do
    for b = 0 to h - 1 do
      if (i lsr b) land 1 = 1 then
        g := Structure.add_tuple !g "E" (Tuple.pair i (first_active + b))
    done
  done;
  (* The hub sees every active vertex. *)
  for b = 0 to n - 1 do
    g := Structure.add_tuple !g "E" (Tuple.pair hub (first_active + b))
  done;
  weigh !g

let half_active n =
  let h = n / 2 in
  let first_active = (1 lsl h) + 1 in
  List.init n (fun b -> first_active + b)

let half_free n =
  let h = n / 2 in
  let first_active = (1 lsl h) + 1 in
  List.init h (fun b -> first_active + h + b)

let half_hub n = 1 lsl (n / 2)
