(** Grid structures — the unbounded-tree-width family of Theorem 6.

    The w x h grid has vertices (i, j) with horizontal and vertical
    successor relations H and V.  Its tree-width is min(w, h), so the grid
    class has unbounded tree-width; Grohe-Turán's Example 19 exhibits an
    MSO formula whose definable family shatters the whole active set on
    grids, which by Theorem 2 (the mechanism experiment E3 measures on the
    {!Shatter.full} family, the paper's own concrete witness) rules out an
    MSO-preserving watermarking scheme.  This module supplies the grids
    themselves: the experiment tables report their growing tree-width next
    to the bounded-degree property that keeps {e FO} watermarking alive on
    them (grids have degree <= 4). *)

val structure : w:int -> h:int -> Weighted.structure
(** Vertex (i, j) has id i*h + j; H links (i,j)->(i+1,j), V links
    (i,j)->(i,j+1); weights all 10. *)

val vertex : h:int -> int -> int -> int

val neighbors_query : Query.t
(** psi(u, v) = H(u,v) | H(v,u) | V(u,v) | V(v,u) — a local query usable by
    the Theorem 3 scheme on grids (degree 4). *)

val tree_width : w:int -> h:int -> int
(** min w h — the classical grid tree-width (reported in E3's table). *)
