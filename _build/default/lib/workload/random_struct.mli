(** Random bounded-degree weighted structures — the STRUCT_k workloads of
    Theorem 3 (experiments E5/E6). *)

val graph :
  Prng.t -> n:int -> max_degree:int -> edges:int -> Weighted.structure
(** A random symmetric graph on [n] vertices with at most [edges] edges,
    inserted uniformly but rejecting any insertion that would push a
    vertex's degree above [max_degree].  Weights uniform in 100..999. *)

val regular_rings :
  Prng.t -> n:int -> Weighted.structure
(** Disjoint rings of pseudo-random sizes 3..8 covering [n] vertices —
    degree exactly 2, many repeated neighborhood types, the friendliest
    STRUCT_k case. *)

val travel :
  Prng.t -> travels:int -> transports:int -> Weighted.structure
(** A scaled-up travel database in the Example 1 schema: each travel books
    2-5 transports, each transport gets random endpoints from a city pool
    of size ~sqrt transports, a type, and a random duration.  Used for
    Remark 2's 5000-weight scenario and the Agrawal-Kiernan comparison. *)

val travel_query : Query.t
(** psi(u, v) = Route(u, v) — same as {!Paper_examples.travel_query}. *)
