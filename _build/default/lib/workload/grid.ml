let grid_schema =
  Schema.make [ { Schema.name = "H"; arity = 2 }; { Schema.name = "V"; arity = 2 } ]

let vertex ~h i j = (i * h) + j

let structure ~w ~h =
  if w < 1 || h < 1 then invalid_arg "Grid.structure";
  let s = ref (Structure.create grid_schema (w * h)) in
  for i = 0 to w - 1 do
    for j = 0 to h - 1 do
      if i + 1 < w then
        s := Structure.add_tuple !s "H" (Tuple.pair (vertex ~h i j) (vertex ~h (i + 1) j));
      if j + 1 < h then
        s := Structure.add_tuple !s "V" (Tuple.pair (vertex ~h i j) (vertex ~h i (j + 1)))
    done
  done;
  Weighted.weigh (fun _ -> 10) !s

let neighbors_query =
  let open Fo in
  Query.make ~params:[ "u" ] ~results:[ "v" ]
    (disj
       [
         atom "H" [ "u"; "v" ];
         atom "H" [ "v"; "u" ];
         atom "V" [ "u"; "v" ];
         atom "V" [ "v"; "u" ];
       ])

let tree_width ~w ~h = min w h
