(** A bibliography XML workload (DBLP-flavored).

    A second, deeper document family for the XML experiments: articles
    nested under year groups under a root, with citation counts as the
    weighted values and the author name as the parameter —

    {v bibliography//article[author=$a]/citations v}

    The descendant axis is load-bearing here (articles sit at depth 2),
    which the paper's flat school example never exercises. *)

val pattern : Wm_xml.Pattern.t

val generate :
  Prng.t -> articles:int -> ?authors:string list -> unit -> Wm_xml.Utree.t
(** Articles spread over ceil(articles/8) year groups; authors drawn from
    the pool (default 10 names), titles unique, citation counts uniform in
    0..99. *)
