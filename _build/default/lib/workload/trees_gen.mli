(** Random binary-tree workloads (experiments E7/E8). *)

val random_spec :
  Prng.t -> alphabet:string list -> size:int -> Wm_trees.Btree.spec
(** A uniformly-shaped random binary tree with [size] nodes (size >= 1) and
    independently uniform labels. *)

val random_tree :
  Prng.t -> alphabet:string list -> size:int -> Wm_trees.Btree.t

val random_weights : Prng.t -> Wm_trees.Btree.t -> lo:int -> hi:int -> Weighted.t
(** Integer node weights uniform in [lo, hi]. *)

val caterpillar : alphabet:string list -> size:int -> Wm_trees.Btree.t
(** Left-leaning chain — the worst case for block construction depth. *)

val complete : label:string -> depth:int -> Wm_trees.Btree.t
(** Perfect binary tree with 2^depth - 1 nodes, single label. *)
