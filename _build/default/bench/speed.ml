(* Bechamel micro-benchmarks: one Test.make per reproduced table, timing the
   computation at that table's heart.  Quotas are small so the whole suite
   stays interactive; absolute numbers are machine-dependent, trends matter. *)

open Qpwm
open Bechamel
open Toolkit

let rings_120 = lazy (Random_struct.regular_rings (Prng.create 1) ~n:120)
let adjacency = Paper_examples.figure1_query

let local_options = { Local_scheme.default_options with rho = Some 1 }

let prepared_local =
  lazy
    (match Local_scheme.prepare ~options:local_options (Lazy.force rings_120) adjacency with
    | Ok s -> s
    | Error e -> failwith e)

let school_300 = lazy (School_xml.generate (Prng.create 2) ~students:300 ())

let child_query =
  lazy
    (let phi = Parser.mso_of_string "S1(x,y) | S2(x,y)" in
     let compiled = Mso_compile.compile ~base:[| "a"; "b" |] ~free:[ "x"; "y" ] phi in
     Tree_query.of_compiled compiled ~params:[ "x" ] ~results:[ "y" ])

let tree_600 =
  lazy (Trees_gen.random_tree (Prng.create 3) ~alphabet:[ "a"; "b" ] ~size:600)

let tests =
  [
    (* E1: neighborhood machinery *)
    Test.make ~name:"e1/type-index rings n=120"
      (Staged.stage (fun () ->
           let ws = Lazy.force rings_120 in
           Neighborhood.index_universe ws.Weighted.graph ~rho:1 ~arity:1));
    (* E2: the permanent side of Theorem 1 *)
    Test.make ~name:"e2/permanent n=9"
      (Staged.stage (fun () -> Bipartite.permanent (Bipartite.complete 9)));
    (* E3/E4: exact VC dimension *)
    Test.make ~name:"e3/vc-dimension full n=8"
      (Staged.stage (fun () ->
           let ws = Shatter.full 8 in
           Vc.dimension (Query_vc.of_query ws.Weighted.graph Shatter.query).Query_vc.fam));
    (* E5: Theorem 3 marker *)
    Test.make ~name:"e5/local prepare rings n=120"
      (Staged.stage (fun () ->
           Local_scheme.prepare ~options:local_options (Lazy.force rings_120) adjacency));
    Test.make ~name:"e5/local mark 8 bits"
      (Staged.stage (fun () ->
           let s = Lazy.force prepared_local in
           let ws = Lazy.force rings_120 in
           Local_scheme.mark s (Codec.of_int ~bits:8 173) ws.Weighted.weights));
    Test.make ~name:"e5/local detect 8 bits"
      (Staged.stage (fun () ->
           let s = Lazy.force prepared_local in
           let ws = Lazy.force rings_120 in
           Local_scheme.detect_weights s ~original:ws.Weighted.weights
             ~suspect:ws.Weighted.weights ~length:8));
    (* E7: Theorem 5 machinery *)
    Test.make ~name:"e7/tree prepare n=600"
      (Staged.stage (fun () ->
           Tree_scheme.prepare (Lazy.force tree_600) (Lazy.force child_query)));
    Test.make ~name:"e7/automaton run n=600"
      (Staged.stage (fun () ->
           let t = Lazy.force tree_600 in
           let q = Lazy.force child_query in
           Dta.run (Tree_query.automaton q) t
             ~label_of:(Alphabet.labeler (Tree_query.alpha q) t [])));
    (* E8: MSO compilation *)
    Test.make ~name:"e8/mso compile root-formula"
      (Staged.stage (fun () ->
           Mso_compile.compile ~base:[| "a"; "b" |] ~free:[ "x" ]
             (Parser.mso_of_string "forall y. (Leq(y,x) -> y = x)")));
    (* E9: XML pattern evaluation *)
    Test.make ~name:"e9/pattern eval school n=300"
      (Staged.stage (fun () ->
           Pattern.f_value School_xml.example4_pattern (Lazy.force school_300) "Robert"));
    (* E12: the baseline *)
    Test.make ~name:"e12/agrawal-kiernan mark"
      (Staged.stage (fun () ->
           let ws = Lazy.force rings_120 in
           Agrawal_kiernan.mark
             { Agrawal_kiernan.key = 1; gamma = 2; xi = 2 }
             ws.Weighted.weights));
  ]

let run () =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg
      [ Instance.monotonic_clock ]
      (Test.make_grouped ~name:"qpwm" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let table = Texttab.create [ "benchmark"; "ns/run" ] in
  List.iter
    (fun (name, o) ->
      let est =
        match Analyze.OLS.estimates o with
        | Some [ e ] -> Printf.sprintf "%.0f" e
        | _ -> "n/a"
      in
      Texttab.add_row table [ name; est ])
    (List.sort compare rows);
  Texttab.print ~title:"micro-benchmarks (Bechamel, monotonic clock)" table
