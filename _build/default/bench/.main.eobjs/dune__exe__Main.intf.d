bench/main.mli:
