(* Incremental watermarking (Section 5, Theorems 7-8).

   The owner updates the database after distributing marked copies:
   - weights-only updates propagate the stored mark (Theorem 7);
   - structural updates are safe iff type-preserving (Theorem 8);
   - re-marking from scratch exposes the owner to auto-collusion
     (averaging two versions), demonstrated last. *)

open Qpwm

let () =
  let ws = Random_struct.regular_rings (Prng.create 5) ~n:60 in
  let query = Paper_examples.figure1_query in
  let options = { Local_scheme.default_options with rho = Some 1 } in
  let scheme =
    match Local_scheme.prepare ~options ws query with
    | Ok s -> s
    | Error e -> failwith e
  in
  let bits = min 6 (Local_scheme.capacity scheme) in
  let message = Codec.random (Prng.create 1) bits in
  let marked = Local_scheme.mark scheme message ws.Weighted.weights in
  Format.printf "embedded %a (%d bits)@." Bitvec.pp message bits;

  (* Theorem 7: the owner raises many base prices; the mark rides along. *)
  let updated =
    List.fold_left
      (fun w t -> Weighted.add_delta w t 25)
      ws.Weighted.weights
      (List.filteri (fun i _ -> i mod 2 = 0) (Weighted.support ws.Weighted.weights))
  in
  let propagated =
    Incremental.propagate ~original:ws.Weighted.weights ~marked ~updated
  in
  let decoded =
    Local_scheme.detect_weights scheme ~original:updated ~suspect:propagated
      ~length:bits
  in
  Format.printf "weights-only update: decoded %a -> %s@." Bitvec.pp decoded
    (if Bitvec.equal decoded message then "mark survives (Theorem 7)" else "LOST");
  assert (Bitvec.equal decoded message);

  (* Theorem 8: structural updates.  A database made of triangle clusters:
     inserting one more triangle realizes no new rho=1 type; bridging two
     triangles creates degree-3 vertices, a brand-new type. *)
  let triangles k =
    Structure.add_pairs
      (Structure.create Schema.graph (3 * k))
      "E"
      (List.concat_map
         (fun c ->
           let b = 3 * c in
           List.concat_map
             (fun (x, y) -> [ (b + x, b + y); (b + y, b + x) ])
             [ (0, 1); (1, 2); (2, 0) ])
         (List.init k Fun.id))
  in
  let report label old_g new_g =
    match
      Incremental.update_decision ~rho:1 ~arity:1 ~old_graph:old_g ~new_graph:new_g
    with
    | `Keep_mark -> Format.printf "%s: type-preserving, keep the mark@." label
    | `Remark_required -> Format.printf "%s: new types, re-mark required@." label
  in
  report "insert a triangle" (triangles 4) (triangles 5);
  let bridged = Structure.add_pairs (triangles 4) "E" [ (0, 3); (3, 0) ] in
  report "bridge two parts" (triangles 4) bridged;

  (* Auto-collusion: a server holding two re-marked versions averages
     them. *)
  let m2 =
    let v = Bitvec.copy message in
    for i = 0 to bits - 1 do
      Bitvec.set v i (not (Bitvec.get message i))
    done;
    v
  in
  let other = Local_scheme.mark scheme m2 ws.Weighted.weights in
  let averaged = Incremental.average marked other in
  Format.printf
    "auto-collusion: averaging two versions leaves distance %d from the@.\
     unmarked original — the mark is erased, which is why Theorem 8's@.\
     type-preservation test matters before re-marking.@."
    (Weighted.local_distance averaged ws.Weighted.weights)
