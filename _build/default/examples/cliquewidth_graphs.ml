(* Theorem 4: watermarking graphs of bounded clique-width through their
   parse trees.

   A clique K_n has clique-width 2 but degree n-1, so the Theorem 3
   machinery (whose guarantees depend on the Gaifman degree k) degrades
   with n — while the parse-tree automaton has a fixed number of states
   and Theorem 5 applies unchanged.  This example watermarks vertex
   weights of K_50 while preserving the adjacency query f(u) = total
   weight of u's neighbors, and shows the same pipeline on a path and on
   a random clique-width-3 graph. *)

open Qpwm

let run name term labels =
  let tree = Cw_parse.to_tree ~labels term in
  let query = Cw_adjacency.query ~labels in
  let graph = Cw_term.eval term in
  let gf = Gaifman.of_structure graph in
  let n = Structure.size graph in
  Format.printf "%s: %d vertices, max degree %d, clique-width <= %d@." name n
    (Gaifman.max_degree gf) labels;
  match Tree_scheme.prepare tree query with
  | Error e -> failwith e
  | Ok scheme ->
      let r = Tree_scheme.report scheme in
      Format.printf
        "  parse tree: %d nodes; automaton m = %d states; capacity %d bits@."
        r.Tree_scheme.tree_size r.Tree_scheme.states r.Tree_scheme.capacity;
      let graph_w =
        Weighted.of_list 1 (List.init n (fun i -> (Tuple.singleton i, 100 + (7 * i))))
      in
      let tree_w = Cw_parse.vertex_weights tree graph_w in
      let cap = min 6 (Tree_scheme.capacity scheme) in
      let message = Codec.random (Prng.create 1) cap in
      let marked_tree_w = Tree_scheme.mark scheme message tree_w in
      let marked_graph_w = Cw_parse.weights_to_graph tree marked_tree_w in
      (* Distortion of the *graph* query. *)
      let f w u =
        List.fold_left
          (fun s v -> s + Weighted.get_elt w v)
          0 (Gaifman.neighbors gf u)
      in
      let worst =
        List.fold_left
          (fun acc u -> max acc (abs (f marked_graph_w u - f graph_w u)))
          0 (Structure.universe graph)
      in
      let decoded =
        Tree_scheme.detect_weights scheme ~original:tree_w
          ~suspect:marked_tree_w ~length:cap
      in
      Format.printf
        "  embedded %a; worst adjacency-query distortion %d; decoded %a -> %s@.@."
        Bitvec.pp message worst Bitvec.pp decoded
        (if Bitvec.equal decoded message then "MATCH" else "MISMATCH");
      assert (Bitvec.equal decoded message);
      assert (worst <= 1)

let () =
  run "clique K50" (Cw_term.clique 50) 2;
  run "path P60" (Cw_term.path 60) 3;
  run "random graph" (Cw_term.random (Prng.create 9) ~labels:3 ~vertices:70) 3;
  Format.printf
    "Same marked bits, read back through parse-tree queries; the graph@.\
     query a server actually answers moves by at most 1 — Theorem 4.@."
