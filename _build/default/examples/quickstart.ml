(* Quickstart: watermark the paper's Example 1 travel database.

   An owner holds a travel database; a server registers the parametric
   query psi(u, v) = Route(u, v) ("which transports does travel u use, and
   how long do they take?").  The owner hides a message in transport
   durations without moving any registered query's total duration by more
   than the budget, then reads the message back from query answers alone. *)

open Qpwm

let () =
  let original = Paper_examples.travel in
  let query = Paper_examples.travel_query in
  Format.printf "Example 1 travel database: %d tuples over %d elements@."
    (Structure.tuples_count original.Weighted.graph)
    (Structure.size original.Weighted.graph);
  let show label ws =
    Format.printf "%s  f(India discovery)=%d  f(Nepal Trek)=%d  f(TourNepal)=%d@."
      label
      (Paper_examples.travel_of ws "India discovery")
      (Paper_examples.travel_of ws "Nepal Trek")
      (Paper_examples.travel_of ws "TourNepal")
  in
  show "original: " original;

  (* Prepare the Theorem 3 scheme.  rho = 1 is a correct locality rank for
     the atomic query; epsilon = 1 allows one minute of distortion per
     query. *)
  let options = { Local_scheme.default_options with rho = Some 1 } in
  match Local_scheme.prepare ~options original query with
  | Error e -> failwith e
  | Ok scheme ->
      let r = Local_scheme.report scheme in
      Format.printf
        "scheme: degree=%d ntp=%d |W|=%d capacity=%d bits (budget %d)@."
        r.Local_scheme.degree r.Local_scheme.ntp r.Local_scheme.active
        r.Local_scheme.pairs_selected r.Local_scheme.budget;

      let message = Codec.of_int ~bits:(Local_scheme.capacity scheme) 1 in
      let marked_w = Local_scheme.mark scheme message original.Weighted.weights in
      let marked = { original with Weighted.weights = marked_w } in
      show "marked:   " marked;

      Format.printf "marked durations:@.";
      List.iter
        (fun (t, v) ->
          let name = Structure.name_of original.Weighted.graph t.(0) in
          let before = Weighted.get original.Weighted.weights t in
          if v <> before then
            Format.printf "  %-4s %d:%02d -> %d:%02d@." name (before / 60)
              (before mod 60) (v / 60) (v mod 60))
        (Weighted.bindings marked_w);

      (* The detector plays final user against the suspect server. *)
      let decoded =
        Local_scheme.detect_weights scheme ~original:original.Weighted.weights
          ~suspect:marked_w ~length:(Bitvec.length message)
      in
      Format.printf "decoded message: %a (embedded %a) -> %s@." Bitvec.pp
        decoded Bitvec.pp message
        (if Bitvec.equal decoded message then "MATCH" else "MISMATCH");
      assert (Bitvec.equal decoded message)
