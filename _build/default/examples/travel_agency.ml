(* The 3-tier scenario from the introduction, end to end.

   A data owner sells a flight/route database to several data servers.
   Each server receives a copy watermarked with its identity.  One server
   leaks its copy; the owner, acting as an ordinary final user, queries the
   suspect website and identifies the leaker — without ever seeing the
   suspect's files. *)

open Qpwm

let () =
  let g = Prng.create 42 in
  let original = Random_struct.travel g ~travels:120 ~transports:300 in
  let query = Random_struct.travel_query in
  Format.printf "owner's database: %d tuples@."
    (Structure.tuples_count original.Weighted.graph);

  let options = { Local_scheme.default_options with rho = Some 1 } in
  let scheme =
    match Local_scheme.prepare ~options original query with
    | Ok s -> s
    | Error e -> failwith e
  in
  let r = Local_scheme.report scheme in
  Format.printf "capacity: %d bits (|W| = %d active transports)@."
    r.Local_scheme.pairs_selected r.Local_scheme.active;

  (* Give each server a copy carrying its id. *)
  let servers = [ "air-low.example"; "cheapfly.example"; "sky-mart.example";
                  "voyage-plus.example"; "trek-zone.example" ] in
  let bits = 4 in
  assert (Local_scheme.capacity scheme >= bits);
  let copies =
    List.mapi
      (fun i name ->
        let message = Codec.of_int ~bits i in
        (name, message, Local_scheme.mark scheme message original.Weighted.weights))
      servers
  in
  List.iter
    (fun (name, message, marked) ->
      let qs = Local_scheme.query_system scheme in
      Format.printf "  shipped to %-22s mark=%a  global distortion=%d@." name
        Bitvec.pp message
        (Distortion.global qs original.Weighted.weights marked))
    copies;

  (* Server #3 leaks.  The owner queries the pirate site. *)
  let _, _, leaked = List.nth copies 3 in
  let pirate_server = Query_system.server (Local_scheme.query_system scheme) leaked in
  let decoded =
    Local_scheme.detect scheme ~original:original.Weighted.weights
      ~server:pirate_server ~length:bits
  in
  let culprit = List.nth servers (Codec.to_int decoded) in
  Format.printf "@.pirate site decoded mark %a -> leaker is %s@." Bitvec.pp
    decoded culprit;
  assert (culprit = "voyage-plus.example");

  (* The same data re-sold with small perturbations still convicts when the
     mark is spread redundantly. *)
  let base = Robust.of_local scheme in
  let times = Robust.redundancy_for base ~message_length:bits in
  let message = Codec.of_int ~bits 3 in
  let hardened = Robust.mark base ~times message original.Weighted.weights in
  let attacked =
    Adversary.apply (Prng.create 7)
      (Adversary.Random_flips { count = 10; amplitude = 1 })
      ~active:(Query_system.active (Local_scheme.query_system scheme))
      hardened
  in
  let decoded' =
    Robust.detect base ~times ~length:bits ~original:original.Weighted.weights
      ~server:(Query_system.server (Local_scheme.query_system scheme) attacked)
  in
  Format.printf
    "after a 10-flip attack on a redundancy-%d copy: decoded %a -> %s@." times
    Bitvec.pp decoded'
    (if Bitvec.equal decoded' message then "still convicts" else "lost");
  assert (Bitvec.equal decoded' message)
