(* An ownership dispute, adjudicated with statistics.

   Three servers answer the same queries: one bought a marked copy and
   leaked it, one computed the same public data independently (innocent
   twin), one serves the marked copy after laundering it with noise.  The
   owner must accuse the right one — and must NOT accuse the innocent one.
   Detector verdicts make the difference quantitative: carrier counts,
   confidence, and binomial p-values. *)

open Qpwm

let () =
  let owner = Random_struct.regular_rings (Prng.create 2026) ~n:150 in
  let query = Paper_examples.figure1_query in
  let scheme =
    match Local_scheme.prepare owner query with
    | Ok s -> s
    | Error e -> failwith e
  in
  let bits = min 12 (Local_scheme.capacity scheme) in
  let licensed_id = Codec.of_int ~bits 1776 in
  let marked = Local_scheme.mark scheme licensed_id owner.Weighted.weights in
  Format.printf "licensed copy carries id %a (%d bits)@.@." Bitvec.pp
    licensed_id bits;

  let qs = Local_scheme.query_system scheme in
  let active = Query_system.active qs in
  let suspects =
    [
      ("leaker.example (verbatim copy)", marked);
      ("twin.example (independent, identical data)", owner.Weighted.weights);
      ( "launder.example (marked + noise)",
        Adversary.apply (Prng.create 7)
          (Adversary.Uniform_noise { amplitude = 1 })
          ~active marked );
    ]
  in
  List.iter
    (fun (name, weights) ->
      let v =
        Detector.read_weights (Local_scheme.pairs scheme)
          ~original:owner.Weighted.weights ~suspect:weights ~length:bits
      in
      let p_id = Detector.match_pvalue ~expected:licensed_id v in
      Format.printf "%s@." name;
      Format.printf
        "  carriers: %d strong, %d weak, %d silent (confidence %.2f)@."
        v.Detector.strong v.Detector.weak v.Detector.silent v.Detector.confidence;
      Format.printf "  mark-presence screen (no id needed): %s@."
        (if Detector.is_marked v then "positive" else "negative");
      Format.printf "  P[reads the licensed id by chance] = %.2g@." p_id;
      (* The accusation rests on the id match: decoding the exact licensed
         id out of sign differentials has probability ~2^-bits on innocent
         data.  The presence screen is what an owner runs first, before it
         knows which licensee to suspect. *)
      let accuse = p_id < 0.01 in
      Format.printf "  verdict: %s@.@."
        (if accuse then "ACCUSE — carries the licensed id"
         else "clear — no statistically defensible mark");
      (* The innocent twin must never be accused. *)
      if name = "twin.example (independent, identical data)" then
        assert (not accuse))
    suspects;
  Format.printf
    "The verbatim copy convicts at p ~ 2^-%d; the laundered copy's noise@.\
     damages carriers but rarely flips a +-2 differential's sign, so the@.\
     licensed id still reads out and convicts; the innocent twin shows@.\
     nothing — accusations rest on statistics, not suspicion.@."
    bits
