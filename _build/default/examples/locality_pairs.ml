(* The worked example of Section 3 (Figures 1-4), reproduced as tables.

   Six elements a..f with psi(u,v) = E(u,v): three neighborhood types at
   rho = 1; canonical parameters; classes cl(w); an S-partition; and the
   (+1,-1) pair-marking distortion table of Figure 3. *)

open Qpwm

let () =
  let ws = Paper_examples.figure1 in
  let g = ws.Weighted.graph in
  let q = Paper_examples.figure1_query in
  let name x = Structure.name_of g x in
  let qs = Query_system.of_relational g q in

  (* Figure 1: neighborhoods and types. *)
  let ix = Neighborhood.index g ~rho:1 (Query.all_params g q) in
  Format.printf "ntp(1, G) = %d neighborhood types@." (Neighborhood.ntp ix);
  let t1 = Texttab.create [ "u"; "type(u)"; "W_u" ] in
  List.iter
    (fun x ->
      let w_u =
        Query_system.result_set qs (Tuple.singleton x)
        |> Tuple.Set.elements
        |> List.map (fun t -> name t.(0))
        |> String.concat " "
      in
      Texttab.add_row t1
        [ name x; string_of_int (Neighborhood.type_of ix (Tuple.singleton x));
          w_u ])
    (Structure.universe g);
  Texttab.print ~title:"Figure 2: types and active weighted elements" t1;

  (* Figure 4: canonical parameters and classes. *)
  let canonical = Array.to_list ix.Neighborhood.representatives in
  Format.printf "@.canonical parameters S = {%s}@."
    (String.concat ", " (List.map (fun t -> name t.(0)) canonical));
  let t2 = Texttab.create [ "w"; "cl(w)" ] in
  List.iter
    (fun (w, cl) ->
      Texttab.add_row t2
        [ name w.(0); String.concat "," (List.map string_of_int cl) ])
    (Pairing.classes qs ~canonical);
  Texttab.print ~title:"Figure 4: classes of active weighted elements" t2;

  (* The S-partition and the two markings of one message bit. *)
  let pairs = Pairing.s_partition qs ~canonical in
  Format.printf "@.S-partition pairs: %s@."
    (String.concat ", "
       (List.map
          (fun p -> Printf.sprintf "(%s,%s)" (name p.Pairing.fst.(0)) (name p.Pairing.snd.(0)))
          pairs));

  let show_marking title marks =
    let w' = Weighted.apply_marks ws.Weighted.weights marks in
    let t = Texttab.create [ "u"; "f before"; "f after"; "distortion" ] in
    List.iter
      (fun a ->
        let before = Query_system.f qs ws.Weighted.weights a in
        let after = Query_system.f qs w' a in
        Texttab.addf t "%s|%d|%d|%+d" (name a.(0)) before after (after - before))
      (Query_system.params qs);
    Texttab.print ~title t
  in
  (* Figure 3's marking: +1 on d, -1 on e. *)
  show_marking "Figure 3: mark (+1 on d, -1 on e)"
    [ (Tuple.singleton 3, 1); (Tuple.singleton 4, -1) ];
  show_marking "Pair marking from the S-partition, bit = 1"
    (Pairing.orientation_marks pairs (Codec.of_int ~bits:(List.length pairs) 1));
  Format.printf "@.max split over all parameters: %d (certifies |distortion| <= 1)@."
    (Pairing.max_split qs pairs)
