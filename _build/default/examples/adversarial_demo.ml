(* The adversarial model (Fact 1, Khanna-Zane): how detection degrades as
   an attacker spends more distortion budget, and how redundancy buys it
   back.  Prints a detection-rate table over attack amplitudes. *)

open Qpwm

let trials = 20

let detection_rate scheme base ~times ~bits original attack_of seed =
  let qs = Local_scheme.query_system scheme in
  let active = Query_system.active qs in
  let ok = ref 0 in
  for t = 1 to trials do
    let g = Prng.create (seed + t) in
    let message = Codec.random g bits in
    let marked = Robust.mark base ~times message original in
    let attacked = Adversary.apply g (attack_of g) ~active marked in
    let decoded =
      Robust.detect base ~times ~length:bits ~original
        ~server:(Query_system.server qs attacked)
    in
    if Bitvec.equal decoded message then incr ok
  done;
  float_of_int !ok /. float_of_int trials

let () =
  let ws = Random_struct.regular_rings (Prng.create 11) ~n:120 in
  let query = Paper_examples.figure1_query in
  let options = { Local_scheme.default_options with rho = Some 1 } in
  let scheme =
    match Local_scheme.prepare ~options ws query with
    | Ok s -> s
    | Error e -> failwith e
  in
  let base = Robust.of_local scheme in
  let bits = 4 in
  Format.printf "capacity %d bits; message length %d@."
    (Local_scheme.capacity scheme) bits;

  let table = Texttab.create [ "attack"; "R=1"; "R=3"; "R=5" ] in
  let row name attack_of seed =
    let rate times =
      if times * bits > Robust.(base.capacity) then "n/a"
      else Printf.sprintf "%.2f"
          (detection_rate scheme base ~times ~bits ws.Weighted.weights attack_of seed)
    in
    Texttab.add_row table [ name; rate 1; rate 3; rate 5 ]
  in
  row "no attack" (fun _ -> Adversary.Constant_offset { delta = 0 }) 100;
  row "constant offset +5" (fun _ -> Adversary.Constant_offset { delta = 5 }) 200;
  List.iter
    (fun count ->
      row
        (Printf.sprintf "%d random +-1 flips" count)
        (fun _ -> Adversary.Random_flips { count; amplitude = 1 })
        (300 + count))
    [ 2; 8; 24; 60 ];
  row "uniform noise +-1" (fun _ -> Adversary.Uniform_noise { amplitude = 1 }) 400;
  Texttab.print ~title:"detection rate vs attack (R = redundancy)" table;
  Format.printf
    "@.Reading: pair-difference detection ignores offsets entirely; random@.\
     flips must hit a majority of a bit's R carrier pairs to flip it, so@.\
     higher R survives bigger budgets — the Fact 1 trade-off.@."
