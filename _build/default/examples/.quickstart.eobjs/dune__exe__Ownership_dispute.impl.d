examples/ownership_dispute.ml: Adversary Bitvec Codec Detector Format List Local_scheme Paper_examples Prng Qpwm Query_system Random_struct Weighted
