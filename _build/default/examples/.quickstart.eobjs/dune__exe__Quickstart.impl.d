examples/quickstart.ml: Array Bitvec Codec Format List Local_scheme Paper_examples Qpwm Structure Weighted
