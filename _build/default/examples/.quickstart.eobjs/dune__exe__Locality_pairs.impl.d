examples/locality_pairs.ml: Array Codec Format List Neighborhood Pairing Paper_examples Printf Qpwm Query Query_system String Structure Texttab Tuple Weighted
