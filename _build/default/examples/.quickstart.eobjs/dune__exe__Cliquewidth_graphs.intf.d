examples/cliquewidth_graphs.mli:
