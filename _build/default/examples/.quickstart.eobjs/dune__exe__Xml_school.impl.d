examples/xml_school.ml: Bitvec Codec Format List Pattern Pipeline Prng Qpwm School_xml Tree_scheme Utree Xml
