examples/ownership_dispute.mli:
