examples/cliquewidth_graphs.ml: Bitvec Codec Cw_adjacency Cw_parse Cw_term Format Gaifman List Prng Qpwm Structure Tree_scheme Tuple Weighted
