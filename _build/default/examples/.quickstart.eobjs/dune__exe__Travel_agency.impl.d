examples/travel_agency.ml: Adversary Bitvec Codec Distortion Format List Local_scheme Prng Qpwm Query_system Random_struct Robust Structure Weighted
