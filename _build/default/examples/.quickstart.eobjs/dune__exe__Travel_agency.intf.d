examples/travel_agency.mli:
