examples/incremental_updates.ml: Bitvec Codec Format Fun Incremental List Local_scheme Paper_examples Prng Qpwm Random_struct Schema Structure Weighted
