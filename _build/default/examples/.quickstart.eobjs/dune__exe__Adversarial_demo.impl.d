examples/adversarial_demo.ml: Adversary Bitvec Codec Format List Local_scheme Paper_examples Printf Prng Qpwm Query_system Random_struct Robust Texttab Weighted
