examples/locality_pairs.mli:
