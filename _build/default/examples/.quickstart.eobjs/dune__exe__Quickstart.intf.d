examples/quickstart.mli:
