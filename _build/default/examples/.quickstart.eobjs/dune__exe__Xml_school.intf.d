examples/xml_school.mli:
