(* Example 4: watermark an XML document while preserving the XPath-style
   query school/student[firstname=a]/exam.

   The document is encoded as a binary tree (first-child/next-sibling), the
   pattern compiles via MSO to a tree automaton (Lemma 2), and the Theorem 5
   scheme hides bits in exam marks with distortion at most 1 per structural
   parameter. *)

open Qpwm

let () =
  (* A larger school so the scheme has room; the paper's 3-student document
     is also printed for recognition. *)
  let paper_doc = School_xml.example4 in
  let pattern = School_xml.example4_pattern in
  Format.printf "Example 4 document:@.%s@."
    (Xml.to_string (Utree.to_xml paper_doc));
  Format.printf "f(Robert) = %d (the paper says 28)@.@."
    (Pattern.f_value pattern paper_doc "Robert");

  let doc = School_xml.generate (Prng.create 2003) ~students:60 () in
  Format.printf "watermarking a school with %d students (%d nodes)...@."
    60 (Utree.size doc);
  match Pipeline.prepare_xml doc pattern with
  | Error e -> failwith e
  | Ok xs ->
      let r = Tree_scheme.report xs.Pipeline.scheme in
      Format.printf
        "automaton states m=%d, |W|=%d, predicted pairs |W|/4m=%d, capacity=%d bits@."
        r.Tree_scheme.states r.Tree_scheme.active r.Tree_scheme.predicted_pairs
        r.Tree_scheme.capacity;

      let cap = Tree_scheme.capacity xs.Pipeline.scheme in
      let message = Codec.random (Prng.create 7) (min 8 cap) in
      let marked = Pipeline.mark_xml xs ~message doc in

      (* Which exams moved? *)
      let moved =
        List.filter
          (fun v -> Utree.value_of doc v <> Utree.value_of marked v)
          (Utree.value_nodes doc)
      in
      Format.printf "message %a embedded by moving %d exam marks by one point@."
        Bitvec.pp message (List.length moved);

      (* Every first name's total moved by at most its occurrence count;
         report the worst. *)
      let names =
        List.sort_uniq compare
          (List.map (Utree.label doc) (Pattern.structural_params pattern doc))
      in
      let worst =
        List.fold_left
          (fun acc n ->
            max acc
              (abs (Pattern.f_value pattern marked n - Pattern.f_value pattern doc n)))
          0 names
      in
      Format.printf "worst value-level distortion across %d first names: %d@."
        (List.length names) worst;

      (* Round-trip through the serialized document, as a real pipeline
         would. *)
      let suspect = Utree.of_xml (Xml.parse (Xml.to_string (Utree.to_xml marked))) in
      let decoded =
        Pipeline.detect_xml xs ~original:doc ~suspect ~length:(Bitvec.length message)
      in
      Format.printf "decoded %a -> %s@." Bitvec.pp decoded
        (if Bitvec.equal decoded message then "MATCH" else "MISMATCH");
      assert (Bitvec.equal decoded message)
