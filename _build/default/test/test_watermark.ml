(* Tests for Wm_watermark: query systems, distortion, pair markings, the
   Theorem 3 and Theorem 5 schemes end to end, the adversarial wrapper,
   capacity counting vs the permanent, incremental updates, and the
   Agrawal-Kiernan baseline. *)

open Wm_watermark
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let list = Alcotest.list
let _ = (int, bool, string, fun x -> list x)

let fig = Paper_examples.figure1
let figq = Paper_examples.figure1_query

let fig_qs () = Query_system.of_relational fig.Weighted.graph figq

let msg bits = Codec.of_bool_list bits

(* --- query systems -------------------------------------------------- *)

let test_qs_matches_query () =
  let qs = fig_qs () in
  check int "param count" 6 (List.length (Query_system.params qs));
  List.iter
    (fun a ->
      check bool "result sets agree" true
        (Tuple.Set.equal
           (Query_system.result_set qs a)
           (Query.result_set fig.Weighted.graph figq a)))
    (Query_system.params qs);
  check int "active" 6 (List.length (Query_system.active qs));
  check int "f(a)" 20 (Query_system.f qs fig.Weighted.weights (Tuple.singleton 0))

let test_qs_reconstruct () =
  let qs = fig_qs () in
  let server = Query_system.server qs fig.Weighted.weights in
  let observed = Query_system.reconstruct qs server in
  List.iter
    (fun w ->
      check int "observed = real" (Weighted.get fig.Weighted.weights w)
        (Tuple.Map.find w observed))
    (Query_system.active qs)

(* --- distortion ------------------------------------------------------ *)

let test_distortion_of_marks () =
  let qs = fig_qs () in
  let marks = [ (Tuple.singleton 3, 1); (Tuple.singleton 4, -1) ] in
  check int "figure 3 global distortion" 1 (Distortion.of_marks qs marks);
  let w' = Weighted.apply_marks fig.Weighted.weights marks in
  check int "agrees with applied" 1
    (Distortion.global qs fig.Weighted.weights w');
  check bool "is_global 1" true
    (Distortion.is_global ~d:1 qs fig.Weighted.weights w');
  check bool "not 0-global" false
    (Distortion.is_global ~d:0 qs fig.Weighted.weights w')

(* --- pairing: the Figure 4 partition --------------------------------- *)

let canonical_of_figure1 () =
  let ix =
    Neighborhood.index fig.Weighted.graph ~rho:1
      (Query.all_params fig.Weighted.graph figq)
  in
  Array.to_list ix.Neighborhood.representatives

let test_classes_figure4 () =
  let qs = fig_qs () in
  let canonical = canonical_of_figure1 () in
  check int "three canonical params" 3 (List.length canonical);
  let classes = Pairing.classes qs ~canonical in
  let cl x = List.assoc (Tuple.singleton x) classes in
  (* Figure 4: cl(a) = cl(b) = cl(c); cl(d) has two types; cl(e) one;
     cl(f) empty. *)
  check bool "a~b~c" true (cl 0 = cl 1 && cl 1 = cl 2);
  check int "|cl d| = 2" 2 (List.length (cl 3));
  check int "|cl e| = 1" 1 (List.length (cl 4));
  check (list int) "cl f empty" [] (cl 5);
  check bool "e's class inside d's" true
    (List.for_all (fun t -> List.mem t (cl 3)) (cl 4))

let test_s_partition_figure4 () =
  let qs = fig_qs () in
  let canonical = canonical_of_figure1 () in
  let pairs = Pairing.s_partition qs ~canonical in
  (* Only {a,b,c} groups more than one element: exactly one pair. *)
  check int "one pair" 1 (List.length pairs);
  let p = List.hd pairs in
  check bool "pair within {a,b,c}" true
    (List.mem p.Pairing.fst [ Tuple.singleton 0; Tuple.singleton 1; Tuple.singleton 2 ]
    && List.mem p.Pairing.snd [ Tuple.singleton 0; Tuple.singleton 1; Tuple.singleton 2 ])

let test_orientation_marks () =
  let pairs =
    [ { Pairing.fst = Tuple.singleton 0; snd = Tuple.singleton 1 };
      { Pairing.fst = Tuple.singleton 2; snd = Tuple.singleton 3 } ]
  in
  let marks = Pairing.orientation_marks pairs (msg [ true; false ]) in
  check int "four deltas" 4 (List.length marks);
  check int "sum zero" 0 (List.fold_left (fun a (_, d) -> a + d) 0 marks);
  check int "bit1 -> +1 on fst" 1 (List.assoc (Tuple.singleton 0) marks);
  check int "bit0 -> -1 on fst" (-1) (List.assoc (Tuple.singleton 2) marks);
  (* Truncated message leaves later pairs alone. *)
  check int "short message" 2
    (List.length (Pairing.orientation_marks pairs (msg [ true ])))

let test_split_counts () =
  let qs = fig_qs () in
  (* The pair (d,e): split by W_c (only d) and W_f (only e), not by W_a. *)
  let pairs = [ { Pairing.fst = Tuple.singleton 3; snd = Tuple.singleton 4 } ] in
  let counts = Pairing.split_counts qs pairs in
  check int "W_a unsplit" 0 (List.assoc (Tuple.singleton 0) counts);
  check int "W_c split" 1 (List.assoc (Tuple.singleton 2) counts);
  check int "W_f split" 1 (List.assoc (Tuple.singleton 5) counts);
  check int "max" 1 (Pairing.max_split qs pairs)

(* --- local scheme (Theorem 3) ---------------------------------------- *)

let test_local_figure1_roundtrip () =
  match Local_scheme.prepare ~options:{ Local_scheme.default_options with rho = Some 1 } fig figq with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let r = Local_scheme.report scheme in
      check int "ntp" 3 r.Local_scheme.ntp;
      check int "degree" 3 r.Local_scheme.degree;
      check bool "capacity >= 1" true (Local_scheme.capacity scheme >= 1);
      check bool "certified split within budget" true
        (r.Local_scheme.max_split <= r.Local_scheme.budget);
      let message = msg [ true ] in
      let marked = Local_scheme.mark scheme message fig.Weighted.weights in
      check bool "1-local" true
        (Weighted.is_local_distortion ~c:1 fig.Weighted.weights marked);
      let qs = Local_scheme.query_system scheme in
      check bool "global within budget" true
        (Distortion.global qs fig.Weighted.weights marked <= r.Local_scheme.budget);
      let decoded =
        Local_scheme.detect_weights scheme ~original:fig.Weighted.weights
          ~suspect:marked ~length:1
      in
      check bool "roundtrip" true (Bitvec.equal decoded message)

let ring_instance seed n =
  Random_struct.regular_rings (Prng.create seed) ~n

let adjacency = figq

let test_local_rings_capacity () =
  let ws = ring_instance 7 40 in
  match Local_scheme.prepare ~options:{ Local_scheme.default_options with rho = Some 1 } ws adjacency with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let r = Local_scheme.report scheme in
      check bool "rings have few types" true (r.Local_scheme.ntp <= 8);
      check bool "capacity grows" true (Local_scheme.capacity scheme >= 5)

let test_local_rings_roundtrip_many_messages () =
  let ws = ring_instance 11 30 in
  match Local_scheme.prepare ~options:{ Local_scheme.default_options with rho = Some 1 } ws adjacency with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let cap = min 6 (Local_scheme.capacity scheme) in
      let g = Prng.create 99 in
      let seen = Hashtbl.create 16 in
      for _ = 1 to 8 do
        let message = Codec.random g cap in
        let marked = Local_scheme.mark scheme message ws.Weighted.weights in
        Hashtbl.replace seen
          (List.map snd (Weighted.bindings marked))
          ();
        let decoded =
          Local_scheme.detect_weights scheme ~original:ws.Weighted.weights
            ~suspect:marked ~length:cap
        in
        check bool "decodes" true (Bitvec.equal decoded message)
      done;
      check bool "distinct messages give distinct copies" true
        (Hashtbl.length seen >= 2)

let test_local_random_selection () =
  (* The paper's randomized draw also works (with retries). *)
  let ws = ring_instance 3 24 in
  let options =
    { Local_scheme.default_options with rho = Some 1; selection = `Random 500 }
  in
  match Local_scheme.prepare ~options ws adjacency with
  | Error e -> Alcotest.fail ("random selection failed: " ^ e)
  | Ok scheme ->
      let r = Local_scheme.report scheme in
      check bool "certificate holds" true
        (r.Local_scheme.max_split <= r.Local_scheme.budget)

let test_local_offset_immune () =
  (* Pair-difference detection shrugs off a constant offset attack. *)
  let ws = ring_instance 5 30 in
  match Local_scheme.prepare ~options:{ Local_scheme.default_options with rho = Some 1 } ws adjacency with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let cap = min 4 (Local_scheme.capacity scheme) in
      let message = Codec.random (Prng.create 1) cap in
      let marked = Local_scheme.mark scheme message ws.Weighted.weights in
      let qs = Local_scheme.query_system scheme in
      let attacked =
        Adversary.apply (Prng.create 2)
          (Adversary.Constant_offset { delta = 7 })
          ~active:(Query_system.active qs) marked
      in
      let decoded =
        Local_scheme.detect_weights scheme ~original:ws.Weighted.weights
          ~suspect:attacked ~length:cap
      in
      check bool "offset immune" true (Bitvec.equal decoded message)

let test_local_error_cases () =
  (match Local_scheme.prepare fig (Query.make ~params:[ "u" ] ~results:[ "v"; "w" ]
        Fo.(atom "E" [ "u"; "v" ] &&& atom "E" [ "u"; "w" ])) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity mismatch accepted");
  let empty = Weighted.weigh (fun _ -> 1) (Structure.create Schema.graph 3) in
  match Local_scheme.prepare empty figq with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty active set accepted"

(* --- weights on pairs: result arity s = 2 ----------------------------- *)

let test_local_edge_weights () =
  (* Edge-weighted graphs: weights sit on ordered pairs, the query returns
     the incident edges of a vertex.  Exercises the s = 2 path through
     pairing, marking and detection. *)
  let n = 24 in
  let ring = Random_struct.regular_rings (Prng.create 2) ~n in
  let schema = Schema.make ~weight_arity:2 [ { Schema.name = "E"; arity = 2 } ] in
  let g =
    Relation.fold
      (fun t acc -> Structure.add_tuple acc "E" t)
      (Structure.relation ring.Weighted.graph "E")
      (Structure.create schema n)
  in
  let w =
    Relation.fold
      (fun t acc -> Weighted.set acc t (100 + t.(0) + t.(1)))
      (Structure.relation g "E") (Weighted.create 2)
  in
  let ws = Weighted.make g w in
  let q =
    Query.make ~params:[ "u" ] ~results:[ "v1"; "v2" ]
      Fo.(atom "E" [ "v1"; "v2" ] &&& (eq "u" "v1" ||| eq "u" "v2"))
  in
  match Local_scheme.prepare ~options:{ Local_scheme.default_options with rho = Some 1 } ws q with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      check bool "has capacity" true (Local_scheme.capacity scheme >= 1);
      let cap = min 4 (Local_scheme.capacity scheme) in
      let message = Codec.random (Prng.create 3) cap in
      let marked = Local_scheme.mark scheme message ws.Weighted.weights in
      let qs = Local_scheme.query_system scheme in
      check bool "within budget" true
        (Distortion.global qs ws.Weighted.weights marked
        <= (Local_scheme.report scheme).Local_scheme.budget);
      check bool "roundtrip" true
        (Bitvec.equal message
           (Local_scheme.detect_weights scheme ~original:ws.Weighted.weights
              ~suspect:marked ~length:cap))

let test_local_pair_parameters () =
  (* Parameters of arity r = 2: psi(u1,u2; v) = E(u1,v) & E(v,u2) — "the
     common neighbors of the pair".  Exercises neighborhood typing and
     canonical parameters over U^2. *)
  let ws = Random_struct.regular_rings (Prng.create 4) ~n:12 in
  let q =
    Query.make ~params:[ "u1"; "u2" ] ~results:[ "v" ]
      Fo.(atom "E" [ "u1"; "v" ] &&& atom "E" [ "v"; "u2" ])
  in
  match
    Local_scheme.prepare
      ~options:{ Local_scheme.default_options with rho = Some 1 }
      ws q
  with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      check bool "capacity" true (Local_scheme.capacity scheme >= 1);
      let cap = min 3 (Local_scheme.capacity scheme) in
      let message = Codec.random (Prng.create 5) cap in
      let marked = Local_scheme.mark scheme message ws.Weighted.weights in
      let qs = Local_scheme.query_system scheme in
      check bool "within budget" true
        (Distortion.global qs ws.Weighted.weights marked
        <= (Local_scheme.report scheme).Local_scheme.budget);
      check bool "roundtrip" true
        (Bitvec.equal message
           (Local_scheme.detect_weights scheme ~original:ws.Weighted.weights
              ~suspect:marked ~length:cap))

let prop_propagate_identity =
  QCheck.Test.make ~count:40 ~name:"propagate over an unchanged base is mark"
    QCheck.(int_range 1 500)
    (fun seed ->
      let g = Prng.create seed in
      let ws = Random_struct.regular_rings g ~n:(12 + Prng.int g 20) in
      let original = ws.Weighted.weights in
      let marked =
        List.fold_left
          (fun w t ->
            if Prng.bernoulli g 0.5 then Weighted.add_delta w t (Prng.pm_one g)
            else w)
          original (Weighted.support original)
      in
      Weighted.equal marked
        (Incremental.propagate ~original ~marked ~updated:original))

(* --- Remark 1: zero-distortion marking on the half family ------------ *)

let test_remark1_zero_distortion () =
  let n = 8 in
  let ws = Shatter.half n in
  let qs = Query_system.of_relational ws.Weighted.graph Shatter.query in
  let free = Shatter.half_free n in
  (* Pair up the free elements: (+1,-1) per pair; every W_a either contains
     both members (a = hub) or neither. *)
  let rec pairs = function
    | a :: b :: rest ->
        { Pairing.fst = Tuple.singleton a; snd = Tuple.singleton b } :: pairs rest
    | _ -> []
  in
  let ps = pairs free in
  check int "n/4 pairs" (n / 4) (List.length ps);
  check int "zero split everywhere" 0 (Pairing.max_split qs ps);
  let message = Codec.random (Prng.create 3) (List.length ps) in
  let marks = Pairing.orientation_marks ps message in
  check int "zero global distortion" 0 (Distortion.of_marks qs marks)

(* --- tree scheme (Theorem 5) ------------------------------------------ *)

let child_query () =
  let phi = Parser.mso_of_string "S1(x,y) | S2(x,y)" in
  let compiled =
    Wm_trees.Mso_compile.compile ~base:[| "a"; "b" |] ~free:[ "x"; "y" ] phi
  in
  Wm_trees.Tree_query.of_compiled compiled ~params:[ "x" ] ~results:[ "y" ]

let test_tree_scheme_roundtrip () =
  let g = Prng.create 17 in
  let tree = Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size:120 in
  let q = child_query () in
  match Tree_scheme.prepare tree q with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let r = Tree_scheme.report scheme in
      check bool "has capacity" true (Tree_scheme.capacity scheme >= 1);
      check int "certified distortion 1" 1 r.Tree_scheme.certified_distortion;
      let weights = Trees_gen.random_weights g tree ~lo:10 ~hi:99 in
      let cap = min 5 (Tree_scheme.capacity scheme) in
      let message = Codec.random g cap in
      let marked = Tree_scheme.mark scheme message weights in
      check bool "1-local" true (Weighted.is_local_distortion ~c:1 weights marked);
      let qs = Tree_scheme.query_system scheme in
      check bool "global distortion <= 1" true
        (Distortion.global qs weights marked <= 1);
      let decoded =
        Tree_scheme.detect_weights scheme ~original:weights ~suspect:marked
          ~length:cap
      in
      check bool "roundtrip" true (Bitvec.equal decoded message)

let test_tree_scheme_blocks_disjoint () =
  let g = Prng.create 23 in
  let tree = Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size:200 in
  let q = child_query () in
  match Tree_scheme.prepare tree q with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      (* Regions (block root minus child subtree) must be pairwise
         disjoint. *)
      (* V_i = subtree(root) minus subtree(hole), the hole node included in
         the exclusion (the paper's lca(U_j) is not in V_i). *)
      let in_region (root, hole) v =
        Wm_trees.Btree.ancestor_or_equal tree root v
        && match hole with
           | Some h -> not (Wm_trees.Btree.ancestor_or_equal tree h v)
           | None -> true
      in
      let regions = Tree_scheme.regions scheme in
      List.iteri
        (fun i ri ->
          List.iteri
            (fun j rj ->
              if i < j then
                for v = 0 to Wm_trees.Btree.size tree - 1 do
                  check bool "disjoint" false (in_region ri v && in_region rj v)
                done)
            regions)
        regions

let test_tree_scheme_rejects_bad_arity () =
  let phi = Parser.mso_of_string "S1(x,y) & S1(y,z)" in
  let compiled =
    Wm_trees.Mso_compile.compile ~base:[| "a"; "b" |] ~free:[ "x"; "y"; "z" ] phi
  in
  let q =
    Wm_trees.Tree_query.of_compiled compiled ~params:[ "x"; "y" ] ~results:[ "z" ]
  in
  let tree = Trees_gen.random_tree (Prng.create 1) ~alphabet:[ "a"; "b" ] ~size:30 in
  match Tree_scheme.prepare tree q with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "k=2 accepted"

(* --- XML pipeline ------------------------------------------------------ *)

let test_pipeline_xml_school () =
  let doc = School_xml.generate (Prng.create 5) ~students:40 () in
  let pattern = School_xml.example4_pattern in
  match Pipeline.prepare_xml doc pattern with
  | Error e -> Alcotest.fail e
  | Ok xs ->
      let cap = min 4 (Tree_scheme.capacity xs.Pipeline.scheme) in
      check bool "capacity >= 1" true (cap >= 1);
      let message = Codec.random (Prng.create 9) cap in
      let marked_doc = Pipeline.mark_xml xs ~message doc in
      (* Serialize and re-parse: the mark must survive the document cycle. *)
      let reparsed =
        Wm_xml.Utree.of_xml (Wm_xml.Xml.parse (Wm_xml.Xml.to_string (Wm_xml.Utree.to_xml marked_doc)))
      in
      let decoded = Pipeline.detect_xml xs ~original:doc ~suspect:reparsed ~length:cap in
      check bool "roundtrip through XML text" true (Bitvec.equal decoded message);
      (* Node-level distortion: <= 1 for every structural parameter
         (Theorem 5's certificate).  Value-level distortion: a first name
         unions its occurrences, so the bound is the occurrence count. *)
      let value_of u v = Option.value ~default:0 (Wm_xml.Utree.value_of u v) in
      List.iter
        (fun a ->
          let d =
            abs
              (List.fold_left (fun s v -> s + value_of reparsed v) 0
                 (Wm_xml.Pattern.eval_node pattern reparsed a)
              - List.fold_left (fun s v -> s + value_of doc v) 0
                  (Wm_xml.Pattern.eval_node pattern doc a))
          in
          check bool (Printf.sprintf "node %d distortion <= 1" a) true (d <= 1))
        (Wm_xml.Pattern.structural_params pattern doc);
      List.iter
        (fun name ->
          let occurrences =
            List.length
              (List.filter
                 (fun a -> Wm_xml.Utree.label doc a = name)
                 (Wm_xml.Pattern.structural_params pattern doc))
          in
          let d =
            abs
              (Wm_xml.Pattern.f_value pattern reparsed name
              - Wm_xml.Pattern.f_value pattern doc name)
          in
          check bool (name ^ " distortion <= occurrences") true (d <= max 1 occurrences))
        [ "John"; "Robert"; "Alice"; "Mary"; "Wei"; "Amina"; "Ravi"; "Sofia" ]

(* --- robustness (Fact 1) ----------------------------------------------- *)

let test_robust_majority_under_flips () =
  let ws = ring_instance 31 60 in
  match Local_scheme.prepare ~options:{ Local_scheme.default_options with rho = Some 1 } ws adjacency with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let base = Robust.of_local scheme in
      let message = msg [ true; false; true ] in
      let times = Robust.redundancy_for base ~message_length:3 in
      check bool "redundancy >= 3" true (times >= 3);
      let marked = Robust.mark base ~times message ws.Weighted.weights in
      (* Attack: flip a few random active weights. *)
      let qs = Local_scheme.query_system scheme in
      let attacked =
        Adversary.apply (Prng.create 4)
          (Adversary.Random_flips { count = 3; amplitude = 1 })
          ~active:(Query_system.active qs) marked
      in
      let decoded =
        Robust.detect base ~times ~length:3 ~original:ws.Weighted.weights
          ~server:(Query_system.server qs attacked)
      in
      check bool "majority survives" true (Bitvec.equal decoded message)

let test_robust_full_reset_erases () =
  let ws = ring_instance 37 40 in
  match Local_scheme.prepare ~options:{ Local_scheme.default_options with rho = Some 1 } ws adjacency with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let base = Robust.of_local scheme in
      let message = msg [ true; true; true ] in
      let times = Robust.redundancy_for base ~message_length:3 in
      let marked = Robust.mark base ~times message ws.Weighted.weights in
      let qs = Local_scheme.query_system scheme in
      let attacked =
        Adversary.apply (Prng.create 5)
          (Adversary.Back_to_original
             { original = ws.Weighted.weights; fraction = 1.0 })
          ~active:(Query_system.active qs) marked
      in
      let decoded =
        Robust.detect base ~times ~length:3 ~original:ws.Weighted.weights
          ~server:(Query_system.server qs attacked)
      in
      (* Full knowledge of the original erases everything: all-zero read. *)
      check bool "erased" false (Bitvec.equal decoded message)

(* --- capacity and the permanent (Theorem 1) ---------------------------- *)

let test_capacity_tiny_by_hand () =
  (* One query owning two weights: markings over {-1,0,1}^2 with |sum|<=1:
     all 9 minus (+1,+1) and (-1,-1) = 7. *)
  let qs =
    Query_system.of_custom
      ~params:[ Tuple.singleton 0 ]
      ~result_set:(fun _ -> Tuple.Set.of_list [ Tuple.singleton 1; Tuple.singleton 2 ])
      ~weight_arity:1
  in
  check int "7 markings" 7 (Capacity.count qs (Capacity.Max_le 1));
  check int "exactly 1" 4 (Capacity.count qs (Capacity.Max_eq 1));
  (* All_eq 1: (0,1),(1,0) = 2. *)
  check int "all-eq 1" 2 (Capacity.count qs (Capacity.All_eq 1))

let test_permanent_known_values () =
  check int "perm(K3) = 3! = 6" 6 (Bipartite.permanent (Bipartite.complete 3));
  check int "perm(K4) = 24" 24 (Bipartite.permanent (Bipartite.complete 4));
  let empty = { Bipartite.n = 3; adj = Array.make_matrix 3 3 false } in
  check int "perm(empty) = 0" 0 (Bipartite.permanent empty)

let test_reduction_equals_permanent () =
  List.iter
    (fun seed ->
      let bg = Bipartite.random (Prng.create seed) ~n:3 ~p:0.6 in
      let ws, q = Bipartite.to_marking_problem bg in
      check int
        (Printf.sprintf "seed %d" seed)
        (Bipartite.permanent bg)
        (Capacity.count_matchings ws q))
    [ 1; 2; 3; 4; 5 ]

let test_reduction_complete_graph () =
  let bg = Bipartite.complete 3 in
  let ws, q = Bipartite.to_marking_problem bg in
  check int "#Mark = 6" 6 (Capacity.count_matchings ws q)

(* --- incremental (Theorems 7-8) ---------------------------------------- *)

let test_incremental_weights_only () =
  let ws = ring_instance 41 30 in
  match Local_scheme.prepare ~options:{ Local_scheme.default_options with rho = Some 1 } ws adjacency with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let cap = min 4 (Local_scheme.capacity scheme) in
      let message = Codec.random (Prng.create 6) cap in
      let marked = Local_scheme.mark scheme message ws.Weighted.weights in
      (* Owner updates base weights. *)
      let updated =
        List.fold_left
          (fun w t -> Weighted.add_delta w t 50)
          ws.Weighted.weights
          (List.filteri (fun i _ -> i mod 3 = 0) (Weighted.support ws.Weighted.weights))
      in
      let propagated =
        Incremental.propagate ~original:ws.Weighted.weights ~marked ~updated
      in
      let decoded =
        Local_scheme.detect_weights scheme ~original:updated ~suspect:propagated
          ~length:cap
      in
      check bool "theorem 7 roundtrip" true (Bitvec.equal decoded message)

let test_incremental_type_preserving () =
  (* Two disjoint triangles vs three: same rho=1 types. *)
  let rings n = (ring_instance 1 n).Weighted.graph in
  let tri2 =
    Structure.add_pairs (Structure.create Schema.graph 6) "E"
      (List.concat_map
         (fun b -> List.concat_map (fun (x, y) -> [ (b + x, b + y); (b + y, b + x) ])
             [ (0, 1); (1, 2); (2, 0) ])
         [ 0; 3 ])
  in
  let tri3 =
    Structure.add_pairs (Structure.create Schema.graph 9) "E"
      (List.concat_map
         (fun b -> List.concat_map (fun (x, y) -> [ (b + x, b + y); (b + y, b + x) ])
             [ (0, 1); (1, 2); (2, 0) ])
         [ 0; 3; 6 ])
  in
  check bool "triangles preserve types" true
    (Incremental.type_preserving ~rho:1 ~arity:1 tri2 tri3);
  (* A path end vertex is a new type relative to triangles. *)
  let tri_plus_path =
    Structure.add_pairs tri2 "E" [] |> fun g ->
    Structure.add_pairs g "E" [ (0, 3); (3, 0) ]
  in
  check bool "bridge breaks types" false
    (Incremental.type_preserving ~rho:1 ~arity:1 tri2 tri_plus_path);
  check bool "decision" true
    (Incremental.update_decision ~rho:1 ~arity:1 ~old_graph:tri2 ~new_graph:tri3
     = `Keep_mark);
  ignore rings

let test_auto_collusion_average () =
  let ws = ring_instance 43 30 in
  match Local_scheme.prepare ~options:{ Local_scheme.default_options with rho = Some 1 } ws adjacency with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let cap = min 4 (Local_scheme.capacity scheme) in
      let m1 = Codec.random (Prng.create 7) cap in
      let m2 =
        (* complement message: orientations all opposite *)
        let v = Bitvec.copy m1 in
        for i = 0 to cap - 1 do
          Bitvec.set v i (not (Bitvec.get m1 i))
        done;
        v
      in
      let c1 = Local_scheme.mark scheme m1 ws.Weighted.weights in
      let c2 = Local_scheme.mark scheme m2 ws.Weighted.weights in
      let avg = Incremental.average c1 c2 in
      (* Averaging opposite orientations reproduces the original weights:
         the mark is gone. *)
      check int "mark cancelled" 0
        (Weighted.local_distance avg ws.Weighted.weights)

(* --- Agrawal-Kiernan baseline ------------------------------------------ *)

let ak = { Agrawal_kiernan.key = 0xBEEF; gamma = 2; xi = 2 }

let test_ak_detects_marked () =
  let ws = Random_struct.travel (Prng.create 3) ~travels:30 ~transports:80 in
  let marked = Agrawal_kiernan.mark ak ws.Weighted.weights in
  check bool "marked detected" true (Agrawal_kiernan.is_detected ak marked);
  check bool "positions nonempty" true
    (Agrawal_kiernan.marked_positions ak marked <> [])

let test_ak_unmarked_rate () =
  let ws = Random_struct.travel (Prng.create 4) ~travels:30 ~transports:200 in
  let rate = Agrawal_kiernan.match_rate ak ws.Weighted.weights in
  check bool "unmarked near 1/2" true (rate > 0.25 && rate < 0.75);
  check bool "unmarked not detected" false
    (Agrawal_kiernan.is_detected ak ws.Weighted.weights)

let test_ak_rounding_kills () =
  let ws = Random_struct.travel (Prng.create 5) ~travels:30 ~transports:200 in
  let marked = Agrawal_kiernan.mark ak ws.Weighted.weights in
  let attacked =
    Adversary.apply (Prng.create 6)
      (Adversary.Rounding { multiple = 8 })
      ~active:(Weighted.support marked) marked
  in
  check bool "rounding erases AK" false (Agrawal_kiernan.is_detected ak attacked)

let test_ak_local_distortion_bound () =
  let ws = Random_struct.travel (Prng.create 7) ~travels:20 ~transports:60 in
  let marked = Agrawal_kiernan.mark ak ws.Weighted.weights in
  check bool "local distortion < 2^xi" true
    (Weighted.local_distance ws.Weighted.weights marked < 1 lsl ak.Agrawal_kiernan.xi)

(* --- properties --------------------------------------------------------- *)

let prop_local_roundtrip =
  QCheck.Test.make ~count:15 ~name:"local scheme: detect o mark = id"
    QCheck.(pair (int_range 1 1000) (int_range 12 40))
    (fun (seed, n) ->
      let ws = Random_struct.regular_rings (Prng.create seed) ~n in
      match
        Local_scheme.prepare
          ~options:{ Local_scheme.default_options with rho = Some 1; seed }
          ws adjacency
      with
      | Error _ -> QCheck.assume_fail ()
      | Ok scheme ->
          let cap = min 8 (Local_scheme.capacity scheme) in
          let message = Codec.random (Prng.create (seed + 1)) cap in
          let marked = Local_scheme.mark scheme message ws.Weighted.weights in
          let qs = Local_scheme.query_system scheme in
          let budget = (Local_scheme.report scheme).Local_scheme.budget in
          Distortion.global qs ws.Weighted.weights marked <= budget
          && Bitvec.equal message
               (Local_scheme.detect_weights scheme ~original:ws.Weighted.weights
                  ~suspect:marked ~length:cap))

let prop_tree_roundtrip =
  QCheck.Test.make ~count:8 ~name:"tree scheme: detect o mark = id"
    QCheck.(int_range 1 100)
    (fun seed ->
      let g = Prng.create seed in
      let tree = Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size:(80 + Prng.int g 60) in
      let q = child_query () in
      match Tree_scheme.prepare tree q with
      | Error _ -> QCheck.assume_fail ()
      | Ok scheme ->
          let weights = Trees_gen.random_weights g tree ~lo:5 ~hi:50 in
          let cap = min 6 (Tree_scheme.capacity scheme) in
          let message = Codec.random g cap in
          let marked = Tree_scheme.mark scheme message weights in
          let qs = Tree_scheme.query_system scheme in
          Distortion.global qs weights marked <= 1
          && Bitvec.equal message
               (Tree_scheme.detect_weights scheme ~original:weights
                  ~suspect:marked ~length:cap))

let prop_capacity_le_monotone =
  QCheck.Test.make ~count:20 ~name:"#Mark monotone in d"
    QCheck.(int_range 1 500)
    (fun seed ->
      let bg = Bipartite.random (Prng.create seed) ~n:2 ~p:0.7 in
      let ws, q = Bipartite.to_marking_problem bg in
      let qs = Query_system.of_relational ws.Weighted.graph q in
      if Query_system.active qs = [] then true
      else
        Capacity.count qs (Capacity.Max_le 0)
        <= Capacity.count qs (Capacity.Max_le 1)
        && Capacity.count qs (Capacity.Max_le 1)
           <= Capacity.count qs (Capacity.Max_le 2))

let suite =
  [
    ("query system mirrors query", `Quick, test_qs_matches_query);
    ("query system reconstruct", `Quick, test_qs_reconstruct);
    ("distortion of marks", `Quick, test_distortion_of_marks);
    ("figure 4 classes", `Quick, test_classes_figure4);
    ("figure 4 partition", `Quick, test_s_partition_figure4);
    ("orientation marks", `Quick, test_orientation_marks);
    ("split counts", `Quick, test_split_counts);
    ("theorem 3 on figure 1", `Quick, test_local_figure1_roundtrip);
    ("theorem 3 capacity on rings", `Quick, test_local_rings_capacity);
    ("theorem 3 many messages", `Quick, test_local_rings_roundtrip_many_messages);
    ("theorem 3 randomized selection", `Quick, test_local_random_selection);
    ("detector immune to offsets", `Quick, test_local_offset_immune);
    ("local scheme error cases", `Quick, test_local_error_cases);
    ("local scheme on edge weights (s=2)", `Quick, test_local_edge_weights);
    ("local scheme on pair parameters (r=2)", `Slow, test_local_pair_parameters);
    QCheck_alcotest.to_alcotest prop_propagate_identity;
    ("remark 1 zero-distortion marking", `Quick, test_remark1_zero_distortion);
    ("theorem 5 roundtrip", `Slow, test_tree_scheme_roundtrip);
    ("theorem 5 regions disjoint", `Slow, test_tree_scheme_blocks_disjoint);
    ("theorem 5 arity guard", `Quick, test_tree_scheme_rejects_bad_arity);
    ("xml pipeline end to end", `Slow, test_pipeline_xml_school);
    ("fact 1: majority survives flips", `Quick, test_robust_majority_under_flips);
    ("fact 1: full reset erases", `Quick, test_robust_full_reset_erases);
    ("capacity by hand", `Quick, test_capacity_tiny_by_hand);
    ("permanent known values", `Quick, test_permanent_known_values);
    ("theorem 1 reduction = permanent", `Quick, test_reduction_equals_permanent);
    ("theorem 1 on K3", `Quick, test_reduction_complete_graph);
    ("theorem 7 weights-only updates", `Quick, test_incremental_weights_only);
    ("theorem 8 type preservation", `Quick, test_incremental_type_preserving);
    ("auto-collusion averaging", `Quick, test_auto_collusion_average);
    ("AK detects its mark", `Quick, test_ak_detects_marked);
    ("AK unmarked rate", `Quick, test_ak_unmarked_rate);
    ("AK dies to rounding", `Quick, test_ak_rounding_kills);
    ("AK local distortion", `Quick, test_ak_local_distortion_bound);
    QCheck_alcotest.to_alcotest prop_local_roundtrip;
    QCheck_alcotest.to_alcotest prop_tree_roundtrip;
    QCheck_alcotest.to_alcotest prop_capacity_le_monotone;
  ]
