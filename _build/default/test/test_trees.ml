(* Tests for Wm_trees: binary trees, tree automata (deterministic and
   nondeterministic), and the MSO -> automaton compilation of Lemma 2.
   The compiled automata are checked against the brute-force MSO oracle on
   randomly generated trees — that equivalence is experiment E8's claim. *)

open Wm_trees
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let int64 = Alcotest.int64
let float = Alcotest.float
let list = Alcotest.list
let array = Alcotest.array
let option = Alcotest.option
let _ = (int, bool, string, int64, float, (fun x -> list x), (fun x -> array x), (fun x -> option x))

(* A small fixed tree:        a0
                             /  \
                            b1    a4
                           /  \     \
                          a2   b3    b5          (ids in preorder) *)
let tree1 =
  Btree.of_spec_with_alphabet [ "a"; "b" ]
    Btree.(
      node "a" (node "b" (leaf "a") (leaf "b")) (N ("a", None, Some (leaf "b"))))

let test_btree_shape () =
  check int "size" 6 (Btree.size tree1);
  check int "root" 0 (Btree.root tree1);
  check (option int) "left of root" (Some 1) (Btree.left tree1 0);
  check (option int) "right of root" (Some 4) (Btree.right tree1 0);
  check (option int) "right of 4" (Some 5) (Btree.right tree1 4);
  check (option int) "left of 4" None (Btree.left tree1 4);
  check (option int) "parent of 5" (Some 4) (Btree.parent tree1 5);
  check string "label 2" "a" (Btree.label_name tree1 2);
  check bool "leaf" true (Btree.is_leaf tree1 3);
  check bool "not leaf" false (Btree.is_leaf tree1 1);
  check int "depth" 2 (Btree.depth tree1 5)

let test_btree_order () =
  check bool "root ancestor of all" true (Btree.ancestor_or_equal tree1 0 5);
  check bool "reflexive" true (Btree.ancestor_or_equal tree1 3 3);
  check bool "not ancestor" false (Btree.ancestor_or_equal tree1 1 5);
  check bool "strict" true (Btree.strictly_below tree1 1 3);
  check bool "strict irreflexive" false (Btree.strictly_below tree1 3 3);
  check int "lca cousins" 0 (Btree.lca tree1 2 5);
  check int "lca siblings" 1 (Btree.lca tree1 2 3);
  check int "lca ancestor" 1 (Btree.lca tree1 1 3)

let test_btree_traversals () =
  check (list int) "subtree of 1" [ 1; 2; 3 ] (Btree.subtree_nodes tree1 1);
  check int "subtree size" 3 (Btree.subtree_size tree1 1);
  let post = Array.to_list (Btree.postorder tree1) in
  check (list int) "postorder" [ 2; 3; 1; 5; 4; 0 ] post;
  check (list int) "a-labeled" [ 0; 2; 4 ] (Btree.nodes_with_label tree1 "a")

let test_btree_to_structure () =
  let g = Btree.to_structure tree1 in
  check bool "S1(0,1)" true (Relation.mem (Tuple.pair 0 1) (Structure.relation g "S1"));
  check bool "S2(0,4)" true (Relation.mem (Tuple.pair 0 4) (Structure.relation g "S2"));
  check bool "Leq(0,5)" true (Relation.mem (Tuple.pair 0 5) (Structure.relation g "Leq"));
  check bool "Leq reflexive" true (Relation.mem (Tuple.pair 3 3) (Structure.relation g "Leq"));
  check bool "a(2)" true (Relation.mem (Tuple.singleton 2) (Structure.relation g "a"))

(* Parity-of-'a' automaton over alphabet {a=0, b=1}. *)
let parity_a =
  Dta.make ~nstates:2 ~nlabels:2
    ~final:(fun q -> q = 1)
    (fun ql qr l ->
      let c q = if q < 0 then 0 else q in
      (c ql + c qr + if l = 0 then 1 else 0) mod 2)

let plain_label tree v = Btree.label tree v

let test_dta_run () =
  (* tree1 has three 'a' nodes -> odd -> accept. *)
  check bool "accepts odd" true
    (Dta.accepts parity_a tree1 ~label_of:(plain_label tree1));
  let states = Dta.run parity_a tree1 ~label_of:(plain_label tree1) in
  check int "leaf a state" 1 states.(2);
  check int "leaf b state" 0 states.(3);
  check int "root state" 1 states.(0)

let test_dta_boolean_ops () =
  let all = Dta.accept_all ~nlabels:2 and none = Dta.accept_none ~nlabels:2 in
  check bool "all accepts" true (Dta.accepts all tree1 ~label_of:(plain_label tree1));
  check bool "none rejects" false (Dta.accepts none tree1 ~label_of:(plain_label tree1));
  check bool "complement flips" false
    (Dta.accepts (Dta.complement parity_a) tree1 ~label_of:(plain_label tree1));
  let both = Dta.product parity_a all ~final:( && ) in
  check bool "product with all" true
    (Dta.accepts both tree1 ~label_of:(plain_label tree1));
  check bool "equivalent to itself" true (Dta.equivalent parity_a parity_a);
  check bool "not equivalent to complement" false
    (Dta.equivalent parity_a (Dta.complement parity_a))

let test_dta_empty () =
  check bool "none empty" true (Dta.is_empty (Dta.accept_none ~nlabels:2));
  check bool "parity not empty" false (Dta.is_empty parity_a);
  (* intersection of parity with its complement is empty *)
  check bool "p & ~p empty" true
    (Dta.is_empty (Dta.product parity_a (Dta.complement parity_a) ~final:( && )))

let test_dta_reduce_minimize () =
  (* Pad parity with junk states via product with accept_all twice, then
     minimize back down to 2 states. *)
  let padded =
    Dta.product (Dta.product parity_a (Dta.accept_all ~nlabels:2) ~final:( && ))
      (Dta.accept_all ~nlabels:2) ~final:( && )
  in
  let m = Dta.minimize padded in
  check int "minimized to 2" 2 (Dta.nstates m);
  check bool "language preserved" true (Dta.equivalent m parity_a)

let test_run_with_hole () =
  let states = Dta.run parity_a tree1 ~label_of:(plain_label tree1) in
  (* Cutting at any node and re-inserting its computed state reproduces the
     root state. *)
  for v = 1 to Btree.size tree1 - 1 do
    check int
      (Printf.sprintf "hole at %d" v)
      states.(Btree.root tree1)
      (Dta.run_with_hole parity_a tree1 ~label_of:(plain_label tree1) ~hole:v
         (Some states.(v)))
  done;
  (* Removing the left subtree of the root (2 a's inside incl. root? the
     subtree at 1 holds one 'a') changes parity accordingly. *)
  let without_left =
    Dta.run_with_hole parity_a tree1 ~label_of:(plain_label tree1) ~hole:1 None
  in
  (* Remaining 'a's: nodes 0 and 4 -> even -> state 0. *)
  check int "hole=None drops subtree" 0 without_left

let test_nta_determinize_preserves () =
  let nta = Nta.of_dta parity_a in
  let det = Nta.determinize nta in
  check bool "same language" true (Dta.equivalent (Dta.minimize det) parity_a);
  let g = Prng.create 11 in
  for _ = 1 to 30 do
    let t = Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size:(1 + Prng.int g 15) in
    let lbl v = Btree.label t v in
    check bool "nta eval agrees" (Dta.accepts parity_a t ~label_of:lbl)
      (Nta.accepts nta t ~label_of:lbl)
  done

(* --- MSO compilation versus the oracle ------------------------------ *)

let base = [| "a"; "b" |]

let oracle_holds tree ~elems phi =
  Mso.holds (Btree.to_structure tree) ~elems ~sets:[] phi

let agree_on_tree phi free tree =
  let compiled = Mso_compile.compile ~base ~free phi in
  let n = Btree.size tree in
  let rec assignments = function
    | [] -> [ [] ]
    | v :: rest ->
        List.concat_map
          (fun partial -> List.init n (fun node -> (v, node) :: partial))
          (assignments rest)
  in
  List.for_all
    (fun elems ->
      Mso_compile.accepts compiled tree ~elems ~sets:[]
      = oracle_holds tree ~elems phi)
    (assignments free)

let check_formula name text free =
  let phi = Parser.mso_of_string text in
  let g = Prng.create 2024 in
  for i = 1 to 12 do
    let size = 1 + Prng.int g 9 in
    let tree = Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size in
    if not (agree_on_tree phi free tree) then
      Alcotest.fail
        (Printf.sprintf "%s: mismatch on random tree #%d (size %d)" name i size)
  done

let test_mso_label () = check_formula "a(x)" "a(x)" [ "x" ]
let test_mso_s1 () = check_formula "S1" "S1(x,y)" [ "x"; "y" ]
let test_mso_s2 () = check_formula "S2" "S2(x,y)" [ "x"; "y" ]
let test_mso_leq () = check_formula "Leq" "Leq(x,y)" [ "x"; "y" ]
let test_mso_eq () = check_formula "eq" "x = y" [ "x"; "y" ]

let test_mso_not () = check_formula "negated S1" "~S1(x,y)" [ "x"; "y" ]

let test_mso_exists () =
  check_formula "has left child" "exists y. S1(x,y)" [ "x" ]

let test_mso_sentence () =
  check_formula "some a exists" "exists x. a(x)" []

let test_mso_root () =
  (* x is the root iff nothing is strictly above it. *)
  check_formula "root" "forall y. (Leq(y,x) -> y = x)" [ "x" ]

let test_mso_leaf () =
  check_formula "leaf" "~(exists y. (S1(x,y) | S2(x,y)))" [ "x" ]

let test_mso_set_quantifier () =
  (* Leq via set closure: x <= y iff every child-closed set containing x
     contains y.  This is the classic MSO definition of reachability and a
     strong end-to-end test of projection/complement/product. *)
  check_formula "Leq via sets"
    "forallS X. ((x in X & forall u. forall v. ((u in X & (S1(u,v) | S2(u,v))) -> v in X)) -> y in X)"
    [ "x"; "y" ]

let test_mso_leq_definability () =
  (* The set-based definition compiles to an automaton equivalent to the
     direct Leq atom's. *)
  let direct = Mso_compile.compile ~base ~free:[ "x"; "y" ]
      (Parser.mso_of_string "Leq(x,y)")
  in
  let viasets = Mso_compile.compile ~base ~free:[ "x"; "y" ]
      (Parser.mso_of_string
         "forallS X. ((x in X & forall u. forall v. ((u in X & (S1(u,v) | S2(u,v))) -> v in X)) -> y in X)")
  in
  (* Compare on trees (not raw language equality: the set-based automaton
     may differ outside singleton-annotated trees). *)
  let g = Prng.create 5 in
  for _ = 1 to 10 do
    let tree = Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size:(1 + Prng.int g 8) in
    let n = Btree.size tree in
    for x = 0 to n - 1 do
      for y = 0 to n - 1 do
        let elems = [ ("x", x); ("y", y) ] in
        check bool "defs agree"
          (Mso_compile.accepts direct tree ~elems ~sets:[])
          (Mso_compile.accepts viasets tree ~elems ~sets:[])
      done
    done
  done

let test_tree_query_basics () =
  (* psi(x, y) = "y is a child of x" as a query: k = 1, s = 1. *)
  let phi = Parser.mso_of_string "S1(x,y) | S2(x,y)" in
  let compiled = Mso_compile.compile ~base ~free:[ "x"; "y" ] phi in
  let q = Tree_query.of_compiled compiled ~params:[ "x" ] ~results:[ "y" ] in
  check bool "member" true
    (Tree_query.member q tree1 (Tuple.singleton 0) (Tuple.singleton 1));
  check bool "not member" false
    (Tree_query.member q tree1 (Tuple.singleton 0) (Tuple.singleton 2));
  let w0 = Tree_query.result_set q tree1 (Tuple.singleton 0) in
  check (list int) "children of root" [ 1; 4 ]
    (List.map (fun t -> t.(0)) (Tuple.Set.elements w0));
  (* Active = all non-root nodes. *)
  let active = Tree_query.active q tree1 in
  check int "active count" 5 (Tuple.Set.cardinal active);
  (* f with unit weights counts children. *)
  let w = Trees_gen.random_weights (Prng.create 1) tree1 ~lo:1 ~hi:1 in
  check int "f = #children" 2 (Tree_query.f q tree1 ~weights:w (Tuple.singleton 0))

(* Property: determinization of a projected automaton preserves the
   nondeterministic semantics. *)
let prop_determinize_agrees =
  QCheck.Test.make ~count:40 ~name:"determinize agrees with NTA simulation"
    QCheck.(int_range 1 40)
    (fun seed ->
      let g = Prng.create seed in
      let alpha = Alphabet.make ~base_size:2 ~bits:1 in
      (* Build an NTA by projecting the bit of a singleton automaton
         product. *)
      let phi = Parser.mso_of_string "exists x. a(x)" in
      let compiled = Mso_compile.compile ~base ~free:[] phi in
      ignore alpha;
      let tree = Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size:(1 + Prng.int g 12) in
      Mso_compile.accepts compiled tree ~elems:[] ~sets:[]
      = List.exists (fun v -> Btree.label_name tree v = "a")
          (List.init (Btree.size tree) Fun.id))

(* Random-automaton algebra: boolean operations and minimization must act
   on the recognized languages, not just on the particular automata built
   by the MSO compiler. *)
let random_dta g ~nstates ~nlabels =
  let table =
    Array.init ((nstates + 1) * (nstates + 1) * nlabels) (fun _ ->
        Prng.int g nstates)
  in
  let finals = Array.init nstates (fun _ -> Prng.bool g) in
  Dta.make ~nstates ~nlabels
    ~final:(fun q -> finals.(q))
    (fun ql qr l ->
      table.((((ql + 1) * (nstates + 1)) + (qr + 1)) * nlabels + l))

let dta_gen = QCheck.int_range 1 10_000

let with_random_setup seed f =
  let g = Prng.create seed in
  let nlabels = 2 in
  let a = random_dta g ~nstates:(2 + Prng.int g 3) ~nlabels in
  let b = random_dta g ~nstates:(2 + Prng.int g 3) ~nlabels in
  let trees =
    List.init 10 (fun _ ->
        Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size:(1 + Prng.int g 12))
  in
  f a b trees

let prop_product_is_intersection =
  QCheck.Test.make ~count:50 ~name:"product(&&) recognizes the intersection"
    dta_gen
    (fun seed ->
      with_random_setup seed (fun a b trees ->
          let both = Dta.product a b ~final:( && ) in
          List.for_all
            (fun t ->
              let lbl v = Btree.label t v in
              Dta.accepts both t ~label_of:lbl
              = (Dta.accepts a t ~label_of:lbl && Dta.accepts b t ~label_of:lbl))
            trees))

let prop_complement_is_negation =
  QCheck.Test.make ~count:50 ~name:"complement recognizes the complement"
    dta_gen
    (fun seed ->
      with_random_setup seed (fun a _ trees ->
          let not_a = Dta.complement a in
          List.for_all
            (fun t ->
              let lbl v = Btree.label t v in
              Dta.accepts not_a t ~label_of:lbl
              = not (Dta.accepts a t ~label_of:lbl))
            trees))

let prop_minimize_preserves_language =
  QCheck.Test.make ~count:50 ~name:"minimize preserves the language" dta_gen
    (fun seed ->
      with_random_setup seed (fun a _ trees ->
          let m = Dta.minimize a in
          Dta.equivalent a m
          && List.for_all
               (fun t ->
                 let lbl v = Btree.label t v in
                 Dta.accepts m t ~label_of:lbl = Dta.accepts a t ~label_of:lbl)
               trees))

let prop_de_morgan_automata =
  QCheck.Test.make ~count:40 ~name:"~(A & B) = ~A | ~B on automata" dta_gen
    (fun seed ->
      with_random_setup seed (fun a b _ ->
          Dta.equivalent
            (Dta.complement (Dta.product a b ~final:( && )))
            (Dta.product (Dta.complement a) (Dta.complement b) ~final:( || ))))

let prop_determinize_of_dta_is_identity_language =
  QCheck.Test.make ~count:40 ~name:"determinize(of_dta) preserves language"
    dta_gen
    (fun seed ->
      with_random_setup seed (fun a _ _ ->
          Dta.equivalent a (Nta.determinize (Nta.of_dta a))))

(* The O(n*m) context-acceptance result_set must agree with per-candidate
   automaton runs. *)
let prop_result_set_fast_agrees =
  QCheck.Test.make ~count:30 ~name:"fast result_set = per-candidate runs"
    QCheck.(int_range 1 60)
    (fun seed ->
      let g = Prng.create (900 + seed) in
      let tree =
        Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size:(2 + Prng.int g 25)
      in
      let phi = Parser.mso_of_string "Leq(x,y) & a(y)" in
      let compiled =
        Mso_compile.compile ~base:[| "a"; "b" |] ~free:[ "x"; "y" ] phi
      in
      let q = Tree_query.of_compiled compiled ~params:[ "x" ] ~results:[ "y" ] in
      let n = Btree.size tree in
      List.for_all
        (fun x ->
          let fast = Tree_query.result_set q tree (Tuple.singleton x) in
          List.for_all
            (fun y ->
              Tuple.Set.mem (Tuple.singleton y) fast
              = Tree_query.member q tree (Tuple.singleton x) (Tuple.singleton y))
            (List.init n Fun.id))
        (List.init n Fun.id))

let suite =
  [
    ("btree shape", `Quick, test_btree_shape);
    ("btree order/lca", `Quick, test_btree_order);
    ("btree traversals", `Quick, test_btree_traversals);
    ("btree to structure", `Quick, test_btree_to_structure);
    ("dta run", `Quick, test_dta_run);
    ("dta boolean ops", `Quick, test_dta_boolean_ops);
    ("dta emptiness", `Quick, test_dta_empty);
    ("dta reduce/minimize", `Quick, test_dta_reduce_minimize);
    ("dta run with hole", `Quick, test_run_with_hole);
    ("nta determinize", `Quick, test_nta_determinize_preserves);
    ("mso: label atom", `Quick, test_mso_label);
    ("mso: S1", `Quick, test_mso_s1);
    ("mso: S2", `Quick, test_mso_s2);
    ("mso: Leq", `Quick, test_mso_leq);
    ("mso: equality", `Quick, test_mso_eq);
    ("mso: negation", `Quick, test_mso_not);
    ("mso: exists", `Quick, test_mso_exists);
    ("mso: sentence", `Quick, test_mso_sentence);
    ("mso: root definition", `Quick, test_mso_root);
    ("mso: leaf definition", `Quick, test_mso_leaf);
    ("mso: set quantifier closure", `Slow, test_mso_set_quantifier);
    ("mso: Leq definability", `Slow, test_mso_leq_definability);
    ("tree query basics", `Quick, test_tree_query_basics);
    QCheck_alcotest.to_alcotest prop_determinize_agrees;
    QCheck_alcotest.to_alcotest prop_result_set_fast_agrees;
    QCheck_alcotest.to_alcotest prop_product_is_intersection;
    QCheck_alcotest.to_alcotest prop_complement_is_negation;
    QCheck_alcotest.to_alcotest prop_minimize_preserves_language;
    QCheck_alcotest.to_alcotest prop_de_morgan_automata;
    QCheck_alcotest.to_alcotest prop_determinize_of_dta_is_identity_language;
  ]
