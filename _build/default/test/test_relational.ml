(* Tests for Wm_relational: tuples, relations, structures, weights,
   Gaifman graphs, isomorphism, neighborhood types — anchored on the
   paper's Figure 1-4 instance and Example 1 travel database. *)

open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let int64 = Alcotest.int64
let float = Alcotest.float
let list = Alcotest.list
let array = Alcotest.array
let option = Alcotest.option
let _ = (int, bool, string, int64, float, (fun x -> list x), (fun x -> array x), (fun x -> option x))

let fig = Paper_examples.figure1
let figg = fig.Weighted.graph

let test_tuple_order () =
  check int "lex" (-1) (Tuple.compare (Tuple.pair 0 1) (Tuple.pair 0 2));
  check bool "equal" true (Tuple.equal (Tuple.of_list [ 1; 2 ]) (Tuple.pair 1 2));
  check int "arity" 3 (Tuple.arity (Tuple.of_list [ 1; 2; 3 ]));
  check string "pp pair" "(1,2)" (Tuple.to_string (Tuple.pair 1 2));
  check string "pp single" "7" (Tuple.to_string (Tuple.singleton 7))

let test_relation_basics () =
  let r = Relation.of_pairs [ (0, 1); (1, 2); (0, 1) ] in
  check int "dedup" 2 (Relation.cardinal r);
  check bool "mem" true (Relation.mem (Tuple.pair 0 1) r);
  check bool "not mem" false (Relation.mem (Tuple.pair 1 0) r);
  let r' = Relation.restrict (fun x -> x < 2) r in
  check int "restrict" 1 (Relation.cardinal r');
  let r'' = Relation.rename (fun x -> x + 10) r in
  check bool "renamed" true (Relation.mem (Tuple.pair 10 11) r'')

let test_relation_arity_guard () =
  Alcotest.check_raises "arity mismatch" (Invalid_argument "Relation.add: arity mismatch")
    (fun () -> ignore (Relation.add (Tuple.singleton 0) (Relation.empty 2)))

let test_structure_range_guard () =
  let g = Structure.create Schema.graph 3 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Structure.add_tuple: element out of range") (fun () ->
      ignore (Structure.add_tuple g "E" (Tuple.pair 0 3)))

let test_structure_induced () =
  let g = Structure.add_pairs (Structure.create Schema.graph 4) "E"
      [ (0, 1); (1, 2); (2, 3) ]
  in
  let sub, old = Structure.induced g [ 1; 2 ] in
  check int "size" 2 (Structure.size sub);
  check (array int) "renaming" [| 1; 2 |] old;
  check bool "edge kept" true (Relation.mem (Tuple.pair 0 1) (Structure.relation sub "E"));
  check bool "edge dropped" false (Relation.mem (Tuple.pair 1 0) (Structure.relation sub "E"))

let test_weighted_distortion () =
  let w = Weighted.of_list 1 [ (Tuple.singleton 0, 5); (Tuple.singleton 1, 7) ] in
  let w' = Weighted.apply_marks w [ (Tuple.singleton 0, 1); (Tuple.singleton 1, -1) ] in
  check int "get" 6 (Weighted.get_elt w' 0);
  check int "local distance" 1 (Weighted.local_distance w w');
  check bool "1-local" true (Weighted.is_local_distortion ~c:1 w w');
  check bool "not 0-local" false (Weighted.is_local_distortion ~c:0 w w')

let test_gaifman_figure1 () =
  let gf = Gaifman.of_structure figg in
  check (list int) "neighbors of a" [ 3; 4 ] (Gaifman.neighbors gf 0);
  check (list int) "neighbors of d" [ 0; 1; 2 ] (Gaifman.neighbors gf 3);
  check int "max degree" 3 (Gaifman.max_degree gf);
  check (option int) "distance a-f" (Some 2) (Gaifman.distance gf 0 5);
  check (option int) "distance c-f" (Some 4) (Gaifman.distance gf 2 5);
  check (list int) "sphere_1(a)" [ 0; 3; 4 ] (Gaifman.sphere gf ~rho:1 0);
  check (list int) "sphere_2(a)" [ 0; 1; 2; 3; 4; 5 ] (Gaifman.sphere gf ~rho:2 0)

let test_gaifman_disconnected () =
  let g = Structure.add_pairs (Structure.create Schema.graph 4) "E" [ (0, 1) ] in
  let gf = Gaifman.of_structure g in
  check (option int) "disconnected" None (Gaifman.distance gf 0 2);
  check int "components" 3 (List.length (Gaifman.connected_components gf))

let test_gaifman_hyperedge () =
  (* A 3-ary tuple makes all its elements pairwise adjacent. *)
  let schema = Schema.make [ { Schema.name = "T"; arity = 3 } ] in
  let g = Structure.add_tuple (Structure.create schema 3) "T" (Tuple.of_list [ 0; 1; 2 ]) in
  let gf = Gaifman.of_structure g in
  check (list int) "clique" [ 1; 2 ] (Gaifman.neighbors gf 0);
  check int "degree" 2 (Gaifman.max_degree gf)

let path_graph n =
  Structure.add_pairs (Structure.create Schema.graph n) "E"
    (List.concat (List.init (n - 1) (fun i -> [ (i, i + 1); (i + 1, i) ])))

let test_iso_positive () =
  let g = path_graph 3 in
  (* Both endpoints of a path look alike. *)
  check bool "endpoints iso" true (Iso.isomorphic g [ 0 ] g [ 2 ]);
  check bool "certificates agree" true
    (Iso.certificate g [ 0 ] = Iso.certificate g [ 2 ])

let test_iso_negative () =
  let g = path_graph 3 in
  check bool "end vs middle" false (Iso.isomorphic g [ 0 ] g [ 1 ])

let test_iso_directed () =
  (* Direction matters: an edge 0->1 is not isomorphic to 1->0 with
     distinguished first element. *)
  let g = Structure.add_pairs (Structure.create Schema.graph 2) "E" [ (0, 1) ] in
  check bool "source vs sink" false (Iso.isomorphic g [ 0 ] g [ 1 ]);
  check bool "source vs source" true (Iso.isomorphic g [ 0 ] g [ 0 ])

let test_iso_distinguished_duplicates () =
  let g = path_graph 2 in
  check bool "dup consistent" true (Iso.isomorphic g [ 0; 0 ] g [ 1; 1 ]);
  check bool "dup inconsistent" false (Iso.isomorphic g [ 0; 0 ] g [ 0; 1 ])

let test_neighborhood_extraction () =
  let gf = Gaifman.of_structure figg in
  let nb = Neighborhood.of_tuple figg gf ~rho:1 (Tuple.singleton 0) in
  check int "sphere size" 3 (Structure.size nb.Neighborhood.sub);
  check (list int) "center" [ 0 ] nb.Neighborhood.center

let test_figure1_types () =
  (* The paper: three types, {a,b}, {d,e}, {c,f}. *)
  let ix =
    Neighborhood.index_universe figg ~rho:1 ~arity:1
  in
  check int "ntp" 3 (Neighborhood.ntp ix);
  let ty x = Neighborhood.type_of ix (Tuple.singleton x) in
  check bool "a~b" true (ty 0 = ty 1);
  check bool "d~e" true (ty 3 = ty 4);
  check bool "c~f" true (ty 2 = ty 5);
  check bool "a<>d" true (ty 0 <> ty 3);
  check bool "a<>c" true (ty 0 <> ty 2);
  check bool "d<>c" true (ty 3 <> ty 2)

let test_figure1_equivalent () =
  let gf = Gaifman.of_structure figg in
  check bool "N1(a)~N1(b)" true
    (Neighborhood.equivalent figg gf ~rho:1 (Tuple.singleton 0) (Tuple.singleton 1));
  check bool "N1(a)!~N1(d)" false
    (Neighborhood.equivalent figg gf ~rho:1 (Tuple.singleton 0) (Tuple.singleton 3))

let test_figure1_rho2_separates () =
  (* At rho = 2, c and f stop being equivalent (c sees a 5-sphere through d,
     f sees a 4-sphere through e... both actually see different shapes). *)
  let ix = Neighborhood.index_universe figg ~rho:2 ~arity:1 in
  check bool "more types at rho=2" true (Neighborhood.ntp ix >= 3)

let test_travel_weights () =
  let t = Paper_examples.travel in
  check int "India discovery = 16:55" ((16 * 60) + 55)
    (Paper_examples.travel_of t "India discovery");
  check int "Nepal Trek = 20:20" ((20 * 60) + 20)
    (Paper_examples.travel_of t "Nepal Trek");
  check int "TourNepal = 6:20" ((6 * 60) + 20)
    (Paper_examples.travel_of t "TourNepal")

let test_travel_example3 () =
  let t = Paper_examples.travel in
  let t' = Paper_examples.timetable' in
  let t'' = Paper_examples.timetable'' in
  (* Timetable' is 0:10-local but violates 0:10-global (17:15 on India
     discovery); Timetable'' satisfies both. *)
  check bool "t' 10-local" true
    (Weighted.is_local_distortion ~c:10 t.Weighted.weights t'.Weighted.weights);
  check int "t' India discovery = 17:15" ((17 * 60) + 15)
    (Paper_examples.travel_of t' "India discovery");
  check bool "t' violates 10-global" true
    (abs (Paper_examples.travel_of t' "India discovery"
          - Paper_examples.travel_of t "India discovery") > 10);
  check bool "t'' 10-local" true
    (Weighted.is_local_distortion ~c:10 t.Weighted.weights t''.Weighted.weights);
  List.iter
    (fun name ->
      check bool ("t'' 10-global on " ^ name) true
        (abs (Paper_examples.travel_of t'' name - Paper_examples.travel_of t name) <= 10))
    [ "India discovery"; "Nepal Trek"; "TourNepal" ]

let test_travel_active () =
  (* Active weighted elements: {F21, G12, R5, F2, T33}; G13 is inactive. *)
  let t = Paper_examples.travel in
  let w = Query.active t.Weighted.graph Paper_examples.travel_query in
  let name_of x = Structure.name_of t.Weighted.graph x in
  let names =
    List.map (fun tu -> name_of tu.(0)) (Tuple.Set.elements w)
    |> List.sort compare
  in
  check (list string) "active set" [ "F2"; "F21"; "G12"; "R5"; "T33" ] names

(* Property tests *)

let random_graph_gen =
  QCheck.Gen.(
    pair (int_range 2 8) (list_size (int_bound 12) (pair (int_bound 7) (int_bound 7))))

let arbitrary_graph =
  QCheck.make random_graph_gen ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) es)))

let build_graph (n, es) =
  let es = List.filter (fun (a, b) -> a < n && b < n) es in
  Structure.add_pairs (Structure.create Schema.graph n) "E" es

let prop_iso_reflexive =
  QCheck.Test.make ~count:60 ~name:"iso is reflexive" arbitrary_graph
    (fun spec ->
      let g = build_graph spec in
      Iso.isomorphic g [ 0 ] g [ 0 ])

let prop_iso_implies_certificate =
  QCheck.Test.make ~count:60 ~name:"iso implies equal certificates"
    (QCheck.pair arbitrary_graph (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (spec, (x, y)) ->
      let g = build_graph spec in
      let n = Structure.size g in
      let x = x mod n and y = y mod n in
      (not (Iso.isomorphic g [ x ] g [ y ]))
      || Iso.certificate g [ x ] = Iso.certificate g [ y ])

let prop_types_refine_satisfaction =
  (* Same rho-type with rho=1 forces same adjacency-query results count for
     the degree — a weak but fully checkable consequence. *)
  QCheck.Test.make ~count:60 ~name:"equal type implies equal degree"
    arbitrary_graph
    (fun spec ->
      let g = build_graph spec in
      let gf = Gaifman.of_structure g in
      let ix = Neighborhood.index_universe g ~rho:1 ~arity:1 in
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              Neighborhood.type_of ix (Tuple.singleton x)
              <> Neighborhood.type_of ix (Tuple.singleton y)
              || Gaifman.degree gf x = Gaifman.degree gf y)
            (Structure.universe g))
        (Structure.universe g))

let prop_sphere_monotone =
  QCheck.Test.make ~count:60 ~name:"spheres grow with rho" arbitrary_graph
    (fun spec ->
      let g = build_graph spec in
      let gf = Gaifman.of_structure g in
      List.for_all
        (fun x ->
          let s1 = Gaifman.sphere gf ~rho:1 x in
          let s2 = Gaifman.sphere gf ~rho:2 x in
          List.for_all (fun e -> List.mem e s2) s1)
        (Structure.universe g))

let suite =
  [
    ("tuple ordering and printing", `Quick, test_tuple_order);
    ("relation basics", `Quick, test_relation_basics);
    ("relation arity guard", `Quick, test_relation_arity_guard);
    ("structure range guard", `Quick, test_structure_range_guard);
    ("structure induced substructure", `Quick, test_structure_induced);
    ("weighted distortion", `Quick, test_weighted_distortion);
    ("gaifman on figure 1", `Quick, test_gaifman_figure1);
    ("gaifman disconnected", `Quick, test_gaifman_disconnected);
    ("gaifman hyperedge clique", `Quick, test_gaifman_hyperedge);
    ("iso positive", `Quick, test_iso_positive);
    ("iso negative", `Quick, test_iso_negative);
    ("iso directed", `Quick, test_iso_directed);
    ("iso duplicate distinguished", `Quick, test_iso_distinguished_duplicates);
    ("neighborhood extraction", `Quick, test_neighborhood_extraction);
    ("figure 1 types", `Quick, test_figure1_types);
    ("figure 1 equivalence", `Quick, test_figure1_equivalent);
    ("figure 1 rho=2", `Quick, test_figure1_rho2_separates);
    ("example 1 query weights", `Quick, test_travel_weights);
    ("example 3 distortions", `Quick, test_travel_example3);
    ("example 1 active elements", `Quick, test_travel_active);
    QCheck_alcotest.to_alcotest prop_iso_reflexive;
    QCheck_alcotest.to_alcotest prop_iso_implies_certificate;
    QCheck_alcotest.to_alcotest prop_types_refine_satisfaction;
    QCheck_alcotest.to_alcotest prop_sphere_monotone;
  ]
