test/test_relational.ml: Alcotest Array Gaifman Iso List Neighborhood Paper_examples Printf QCheck QCheck_alcotest Query Relation Schema String Structure Tuple Weighted Wm_workload
