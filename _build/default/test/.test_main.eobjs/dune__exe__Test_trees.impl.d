test/test_trees.ml: Alcotest Alphabet Array Btree Dta Fun List Mso Mso_compile Nta Parser Printf Prng QCheck QCheck_alcotest Relation Structure Tree_query Trees_gen Tuple Wm_trees Wm_workload
