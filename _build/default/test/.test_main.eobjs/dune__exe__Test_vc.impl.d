test/test_vc.ml: Alcotest Fun List Paper_examples Printf QCheck QCheck_alcotest Query Query_vc Setfam Shatter Tuple Vc Weighted Wm_vc Wm_workload
