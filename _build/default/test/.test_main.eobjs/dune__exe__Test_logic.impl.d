test/test_logic.ml: Alcotest Array Eval Fo List Locality Mso Paper_examples Parser Printf QCheck QCheck_alcotest Query Schema Structure Tuple Weighted Wm_workload
