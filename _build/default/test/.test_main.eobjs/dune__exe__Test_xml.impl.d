test/test_xml.ml: Alcotest Biblio_xml Encode List Option Pattern Printf Prng QCheck QCheck_alcotest School_xml String Tuple Utree Weighted Wm_trees Wm_util Wm_watermark Wm_workload Wm_xml Xml
