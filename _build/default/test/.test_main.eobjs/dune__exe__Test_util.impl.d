test/test_util.ml: Alcotest Array Bitvec Codec Fun List Prng QCheck QCheck_alcotest Stats String Texttab Wm_util
