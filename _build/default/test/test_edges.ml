(* Edge-case and guard tests across the libraries: constructor validation,
   empty inputs, boundary conditions — the robustness a downstream user
   relies on. *)

open Wm_watermark
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let _ = (int, bool)

let raises f =
  match f () with exception Invalid_argument _ -> true | _ -> false

let test_schema_guards () =
  check bool "duplicate symbol" true
    (raises (fun () -> Schema.make [ { Schema.name = "E"; arity = 2 };
                                     { Schema.name = "E"; arity = 1 } ]));
  check bool "zero arity" true
    (raises (fun () -> Schema.make [ { Schema.name = "E"; arity = 0 } ]));
  check bool "zero weight arity" true
    (raises (fun () -> Schema.make ~weight_arity:0 []))

let test_weighted_guards () =
  check bool "arity mismatch on set" true
    (raises (fun () -> Weighted.set (Weighted.create 1) (Tuple.pair 0 1) 5));
  check bool "weight arity vs schema" true
    (raises (fun () ->
         Weighted.make (Structure.create Schema.graph 2) (Weighted.create 2)));
  check bool "weight outside universe" true
    (raises (fun () ->
         Weighted.make
           (Structure.create Schema.graph 2)
           (Weighted.set_elt (Weighted.create 1) 7 1)))

let test_gaifman_singletons () =
  (* Unary tuples create no Gaifman edges. *)
  let schema = Schema.make [ { Schema.name = "P"; arity = 1 } ] in
  let g =
    Structure.add_tuple (Structure.create schema 3) "P" (Tuple.singleton 1)
  in
  let gf = Gaifman.of_structure g in
  check int "no edges" 0 (Gaifman.max_degree gf);
  check int "three components" 3 (List.length (Gaifman.connected_components gf))

let test_empty_structure () =
  let g = Structure.create Schema.graph 0 in
  check int "empty universe" 0 (List.length (Structure.universe g));
  let gf = Gaifman.of_structure g in
  check int "no degree" 0 (Gaifman.max_degree gf)

let test_query_empty_results () =
  (* A query that never holds: empty result sets and empty active set. *)
  let g = Structure.create Schema.graph 3 in
  let q = Paper_examples.figure1_query in
  check int "no active" 0
    (Tuple.Set.cardinal (Query.active g q));
  check int "f = 0" 0
    (Query.f (Weighted.weigh (fun _ -> 5) g) q (Tuple.singleton 0))

let test_capacity_guard () =
  (* More than 26 active elements must be rejected by the brute-force
     counter. *)
  let ws = Random_struct.regular_rings (Wm_util.Prng.create 1) ~n:40 in
  let qs =
    Query_system.of_relational ws.Weighted.graph Paper_examples.figure1_query
  in
  check bool "too many actives" true
    (raises (fun () -> Capacity.count qs (Capacity.Max_le 1)))

let test_capacity_empty_deltas () =
  let qs =
    Query_system.of_custom ~params:[ Tuple.singleton 0 ]
      ~result_set:(fun _ -> Tuple.Set.singleton (Tuple.singleton 1))
      ~weight_arity:1
  in
  check bool "empty deltas" true
    (raises (fun () -> Capacity.count ~deltas:[] qs (Capacity.Max_le 1)))

let test_robust_guards () =
  check bool "redundancy needs positive length" true
    (raises (fun () ->
         Robust.redundancy_for
           { Robust.capacity = 10;
             embed = (fun _ w -> w);
             extract = (fun ~original ~server:_ -> Wm_util.Bitvec.create 10 |> fun v -> ignore original; v) }
           ~message_length:0))

let test_detector_guards () =
  check bool "length exceeds pairs" true
    (raises (fun () ->
         Detector.read [] ~original:(Weighted.create 1)
           ~observed:Tuple.Map.empty ~length:1))

let test_orientation_guard () =
  check bool "message longer than pairs" true
    (raises (fun () ->
         Pairing.orientation_marks [] (Wm_util.Codec.of_bool_list [ true ])))

let test_tree_scheme_empty_active () =
  (* An automaton that accepts nothing: no active elements, prepare must
     fail gracefully. *)
  let phi = Wm_logic.Parser.mso_of_string "S1(x,y) & S2(x,y)" in
  let compiled =
    Wm_trees.Mso_compile.compile ~base:[| "a"; "b" |] ~free:[ "x"; "y" ] phi
  in
  let q = Wm_trees.Tree_query.of_compiled compiled ~params:[ "x" ] ~results:[ "y" ] in
  let tree = Trees_gen.random_tree (Wm_util.Prng.create 1) ~alphabet:[ "a"; "b" ] ~size:20 in
  match Tree_scheme.prepare tree q with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty active set accepted"

let test_block_size_raises_capacity () =
  (* Smaller blocks, more pairs — the soundness-free tuning knob. *)
  let phi = Wm_logic.Parser.mso_of_string "S1(x,y) | S2(x,y)" in
  let compiled =
    Wm_trees.Mso_compile.compile ~base:[| "a"; "b" |] ~free:[ "x"; "y" ] phi
  in
  let q = Wm_trees.Tree_query.of_compiled compiled ~params:[ "x" ] ~results:[ "y" ] in
  let tree = Trees_gen.random_tree (Wm_util.Prng.create 5) ~alphabet:[ "a"; "b" ] ~size:200 in
  let cap_with block_size =
    match
      Tree_scheme.prepare
        ~options:{ Tree_scheme.default_options with block_size } tree q
    with
    | Ok s -> Tree_scheme.capacity s
    | Error _ -> 0
  in
  check bool "smaller blocks give at least as many pairs" true
    (cap_with (Some 4) >= cap_with None)

let test_texttab_guard () =
  let t = Wm_util.Texttab.create [ "a"; "b" ] in
  check bool "too many cells" true
    (raises (fun () -> Wm_util.Texttab.add_row t [ "1"; "2"; "3" ]))

let test_prng_zero_bound () =
  check bool "int 0 rejected" true
    (match Wm_util.Prng.int (Wm_util.Prng.create 1) 0 with
    | exception Assert_failure _ -> true
    | _ -> false)

let test_shatter_guards () =
  check bool "full too big" true (raises (fun () -> Shatter.full 20));
  check bool "half odd" true (raises (fun () -> Shatter.half 7))

let test_cw_guards () =
  check bool "clique 0" true (raises (fun () -> Wm_cliquewidth.Cw_term.clique 0));
  check bool "random 1 label" true
    (raises (fun () ->
         Wm_cliquewidth.Cw_term.random (Wm_util.Prng.create 1) ~labels:1 ~vertices:3));
  check bool "parse label range" true
    (raises (fun () ->
         Wm_cliquewidth.Cw_parse.to_tree ~labels:2 (Wm_cliquewidth.Cw_term.Vertex 5)));
  check bool "distance2 labels > 2" true
    (raises (fun () -> Wm_cliquewidth.Cw_adjacency.distance2_query ~labels:3))

let suite =
  [
    ("schema guards", `Quick, test_schema_guards);
    ("weighted guards", `Quick, test_weighted_guards);
    ("gaifman unary relations", `Quick, test_gaifman_singletons);
    ("empty structure", `Quick, test_empty_structure);
    ("query with empty results", `Quick, test_query_empty_results);
    ("capacity active-set guard", `Quick, test_capacity_guard);
    ("capacity empty deltas", `Quick, test_capacity_empty_deltas);
    ("robust guards", `Quick, test_robust_guards);
    ("detector guards", `Quick, test_detector_guards);
    ("orientation guard", `Quick, test_orientation_guard);
    ("tree scheme empty active", `Quick, test_tree_scheme_empty_active);
    ("block size raises capacity", `Slow, test_block_size_raises_capacity);
    ("texttab guard", `Quick, test_texttab_guard);
    ("prng zero bound", `Quick, test_prng_zero_bound);
    ("shatter guards", `Quick, test_shatter_guards);
    ("clique-width guards", `Quick, test_cw_guards);
  ]
