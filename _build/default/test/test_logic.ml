(* Tests for Wm_logic: FO evaluation, parametric queries, locality, the
   formula parser, and the brute-force MSO oracle. *)

open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let int64 = Alcotest.int64
let float = Alcotest.float
let list = Alcotest.list
let array = Alcotest.array
let option = Alcotest.option
let _ = (int, bool, string, int64, float, (fun x -> list x), (fun x -> array x), (fun x -> option x))

let path n =
  Structure.add_pairs (Structure.create Schema.graph n) "E"
    (List.concat (List.init (n - 1) (fun i -> [ (i, i + 1); (i + 1, i) ])))

let test_fo_eval_atoms () =
  let g = path 3 in
  let env = Eval.bind_all Eval.empty_env [ "x"; "y" ] (Tuple.pair 0 1) in
  check bool "edge" true (Eval.holds g env (Fo.atom "E" [ "x"; "y" ]));
  check bool "eq" false (Eval.holds g env (Fo.eq "x" "y"));
  check bool "not" true (Eval.holds g env (Fo.neg (Fo.eq "x" "y")))

let test_fo_eval_quantifiers () =
  let g = path 3 in
  let has_neighbor = Fo.exists "y" (Fo.atom "E" [ "x"; "y" ]) in
  List.iter
    (fun x ->
      check bool "every node has a neighbor" true
        (Eval.holds g (Eval.bind Eval.empty_env "x" x) has_neighbor))
    [ 0; 1; 2 ];
  let universal = Fo.forall "y" (Fo.atom "E" [ "x"; "y" ]) in
  check bool "no node adjacent to all (incl. self)" false
    (Eval.holds g (Eval.bind Eval.empty_env "x" 1) universal)

let test_fo_free_vars_and_rank () =
  let phi =
    Fo.(exists "y" (atom "E" [ "x"; "y" ] &&& forall "z" (neg (eq "z" "y"))))
  in
  check (list string) "free" [ "x" ] (Fo.free_vars phi);
  check int "rank" 2 (Fo.quantifier_rank phi)

let test_fo_well_formed () =
  check bool "good" true (Fo.well_formed Schema.graph (Fo.atom "E" [ "x"; "y" ]));
  check bool "bad arity" false (Fo.well_formed Schema.graph (Fo.atom "E" [ "x" ]));
  check bool "bad symbol" false (Fo.well_formed Schema.graph (Fo.atom "F" [ "x" ]))

let test_query_result_sets () =
  let fig = Paper_examples.figure1 in
  let q = Paper_examples.figure1_query in
  let w_of x =
    Query.result_set fig.Weighted.graph q (Tuple.singleton x)
    |> Tuple.Set.elements
    |> List.map (fun t -> t.(0))
  in
  (* Figure 2: W_a = W_b = {d,e}; W_c = {d}; W_d = {a,b,c}; W_e = {a,b,f};
     W_f = {e}. *)
  check (list int) "W_a" [ 3; 4 ] (w_of 0);
  check (list int) "W_b" [ 3; 4 ] (w_of 1);
  check (list int) "W_c" [ 3 ] (w_of 2);
  check (list int) "W_d" [ 0; 1; 2 ] (w_of 3);
  check (list int) "W_e" [ 0; 1; 5 ] (w_of 4);
  check (list int) "W_f" [ 4 ] (w_of 5)

let test_query_figure3_marking () =
  (* The (+1 on d, -1 on e) marking: distortion 0 on a,b,d,e; +1 on c;
     -1 on f — exactly Figure 3. *)
  let fig = Paper_examples.figure1 in
  let q = Paper_examples.figure1_query in
  let marked =
    Weighted.
      { fig with
        weights =
          apply_marks fig.weights
            [ (Tuple.singleton 3, 1); (Tuple.singleton 4, -1) ];
      }
  in
  let distortion x =
    Query.f marked q (Tuple.singleton x) - Query.f fig q (Tuple.singleton x)
  in
  check (list int) "figure 3 distortions" [ 0; 0; 1; 0; 0; -1 ]
    (List.map distortion [ 0; 1; 2; 3; 4; 5 ])

let test_query_guards () =
  Alcotest.check_raises "overlap"
    (Invalid_argument "Query.make: parameter and result variables overlap")
    (fun () ->
      ignore (Query.make ~params:[ "x" ] ~results:[ "x" ] (Fo.eq "x" "x")));
  Alcotest.check_raises "uncovered"
    (Invalid_argument "Query.make: free variable neither parameter nor result")
    (fun () ->
      ignore (Query.make ~params:[ "x" ] ~results:[ "y" ] (Fo.atom "E" [ "x"; "z" ])))

let test_locality_bound () =
  check int "rank 0" 0 (Locality.gaifman_bound (Fo.atom "E" [ "x"; "y" ]));
  check int "rank 1" 3
    (Locality.gaifman_bound (Fo.exists "y" (Fo.atom "E" [ "x"; "y" ])));
  check int "rank 2" 24
    (Locality.gaifman_bound
       (Fo.exists "y" (Fo.exists "z" (Fo.atom "E" [ "y"; "z" ]))))

let test_locality_respects () =
  let fig = Paper_examples.figure1 in
  (* The paper quotes locality rank 1 for the adjacency query; under
     Definition 5, rho = 0 already suffices because N_0(x,y) is the induced
     substructure on {x,y}, which contains the edge itself.  Both ranks must
     check out. *)
  check bool "rho=1 works" true
    (Locality.respects_rank fig.Weighted.graph (Fo.atom "E" [ "x"; "y" ]) ~rho:1);
  check (option int) "minimal rank" (Some 0)
    (Locality.minimal_rank fig.Weighted.graph (Fo.atom "E" [ "x"; "y" ]) ~max:3);
  (* A query about distance-2 connections is not 0-local. *)
  let two_away =
    Fo.(exists "w" (atom "E" [ "x"; "w" ] &&& atom "E" [ "w"; "y" ]))
  in
  check bool "two-away not 0-local" false
    (Locality.respects_rank fig.Weighted.graph two_away ~rho:0);
  check bool "two-away 1-local here" true
    (Locality.respects_rank fig.Weighted.graph two_away ~rho:1)

let test_cq_rank () =
  let rank s = Locality.cq_rank (Parser.fo_of_string s) in
  check (option int) "atom" (Some 0) (rank "E(x,y)");
  check (option int) "two hops" (Some 1) (rank "exists w. (E(x,w) & E(w,y))");
  (* A middle variable of a 3-hop chain is within 1 of *some* free
     variable (BFS runs from the whole free set), so the rank stays 1... *)
  check (option int) "three hops" (Some 1)
    (rank "exists w z. (E(x,w) & E(w,z) & E(z,y))");
  (* ...and a 4-hop chain's center is 2 away from both ends. *)
  check (option int) "four hops" (Some 2)
    (rank "exists w z u. (E(x,w) & E(w,z) & E(z,u) & E(u,y))");
  check (option int) "detached sentence part" (Some 0)
    (rank "E(x,y) & (exists u v. E(u,v))");
  check (option int) "not a CQ (negation)" None (rank "~E(x,y)");
  check (option int) "not a CQ (disjunction)" None (rank "E(x,y) | E(y,x)");
  check (option int) "not a CQ (universal)" None (rank "forall w. E(x,w)")

let test_cq_rank_is_correct_empirically () =
  (* The CQ rank must satisfy Definition 5 wherever we can check it. *)
  let fig = Paper_examples.figure1 in
  List.iter
    (fun s ->
      let phi = Parser.fo_of_string s in
      match Locality.cq_rank phi with
      | None -> Alcotest.fail ("expected a CQ: " ^ s)
      | Some rho ->
          check bool (s ^ " respects its CQ rank") true
            (Locality.respects_rank fig.Weighted.graph phi ~rho))
    [ "E(x,y)"; "exists w. (E(x,w) & E(w,y))" ]

let test_best_rank () =
  check int "CQ uses tight rank" 1
    (Locality.best_rank (Parser.fo_of_string "exists w. (E(x,w) & E(w,y))"));
  check int "non-CQ falls back to Gaifman" 3
    (Locality.best_rank (Parser.fo_of_string "~(exists w. E(x,w))"))

let test_locality_eta () =
  let q = Paper_examples.figure1_query in
  (* eta = 2 r k^(2 rho + 1) = 2 * 1 * 3^3 = 54 for k=3, rho=1. *)
  check int "eta" 54 (Locality.eta q ~k:3 ~rho:1)

let test_parser_fo () =
  let phi = Parser.fo_of_string "exists y. (E(x,y) & ~(x = y))" in
  check string "roundtrip" "exists y. E(x,y) & ~(x = y)" (Fo.to_string phi);
  check (list string) "free" [ "x" ] (Fo.free_vars phi)

let test_parser_precedence () =
  (* '&' binds tighter than '|', both tighter than '->'. *)
  let phi = Parser.fo_of_string "E(x,y) & E(y,x) | x = y -> true" in
  match phi with
  | Fo.Implies (Fo.Or (Fo.And _, Fo.Eq _), Fo.True) -> ()
  | _ -> Alcotest.fail ("unexpected parse: " ^ Fo.to_string phi)

let test_parser_multi_binder () =
  let phi = Parser.fo_of_string "exists x y. E(x,y)" in
  check (list string) "closed" [] (Fo.free_vars phi)

let test_parser_errors () =
  List.iter
    (fun s ->
      match Parser.mso_of_string s with
      | exception Parser.Error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ s))
    [ "E(x,"; "exists . true"; "x ="; "E(x,y) extra"; "(" ; "" ; "x" ]

let test_parser_mso () =
  let phi = Parser.mso_of_string "existsS X. (x in X & forall y. y in X)" in
  check (list string) "free elems" [ "x" ] (Mso.free_elem_vars phi);
  check (list string) "free sets" [] (Mso.free_set_vars phi)

let test_mso_oracle () =
  let g = path 3 in
  (* "X contains x and is closed under E" — on a connected graph, the only
     such X containing anything is reachable-set; check a couple of
     sentences. *)
  let closed =
    Parser.mso_of_string
      "existsS X. (x in X & forall y. forall z. (y in X & E(y,z) -> z in X) & ~(y0 in X))"
  in
  (* On a path 0-1-2, a closed set containing 0 must contain everything, so
     excluding y0=2 is impossible... *)
  check bool "closure forces membership" false
    (Mso.holds g ~elems:[ ("x", 0); ("y0", 2) ] ~sets:[] closed);
  (* ...but excluding a node in another component is fine. *)
  let g2 = Structure.add_pairs (Structure.create Schema.graph 3) "E" [ (0, 1); (1, 0) ] in
  check bool "disconnected escape" true
    (Mso.holds g2 ~elems:[ ("x", 0); ("y0", 2) ] ~sets:[] closed)

let test_mso_to_fo () =
  let fo = Parser.mso_of_string "exists y. E(x,y)" in
  check bool "downcast ok" true (Mso.to_fo fo <> None);
  let mso = Parser.mso_of_string "existsS X. x in X" in
  check bool "downcast fails" true (Mso.to_fo mso = None)

(* Property tests *)

let graph_gen =
  QCheck.Gen.(
    pair (int_range 2 6) (list_size (int_bound 10) (pair (int_bound 5) (int_bound 5))))

let arbitrary_graph =
  QCheck.make graph_gen ~print:(fun (n, es) ->
      Printf.sprintf "n=%d m=%d" n (List.length es))

let build (n, es) =
  Structure.add_pairs (Structure.create Schema.graph n)
    "E" (List.filter (fun (a, b) -> a < n && b < n) es)

let prop_de_morgan =
  QCheck.Test.make ~count:80 ~name:"~(exists) = forall ~" arbitrary_graph
    (fun spec ->
      let g = build spec in
      let a = Fo.neg (Fo.exists "y" (Fo.atom "E" [ "x"; "y" ])) in
      let b = Fo.forall "y" (Fo.neg (Fo.atom "E" [ "x"; "y" ])) in
      List.for_all
        (fun x ->
          let env = Eval.bind Eval.empty_env "x" x in
          Eval.holds g env a = Eval.holds g env b)
        (Structure.universe g))

let prop_result_set_matches_holds =
  QCheck.Test.make ~count:80 ~name:"result_set agrees with holds"
    arbitrary_graph
    (fun spec ->
      let g = build spec in
      let q =
        Query.make ~params:[ "u" ] ~results:[ "v" ]
          (Fo.exists "w" Fo.(atom "E" [ "u"; "w" ] &&& atom "E" [ "w"; "v" ]))
      in
      List.for_all
        (fun u ->
          let rs = Query.result_set g q (Tuple.singleton u) in
          List.for_all
            (fun v ->
              Tuple.Set.mem (Tuple.singleton v) rs
              = Eval.holds g
                  (Eval.bind_all Eval.empty_env [ "u"; "v" ] (Tuple.pair u v))
                  (Fo.exists "w" Fo.(atom "E" [ "u"; "w" ] &&& atom "E" [ "w"; "v" ])))
            (Structure.universe g))
        (Structure.universe g))

let prop_active_is_union =
  QCheck.Test.make ~count:60 ~name:"active = union of result sets"
    arbitrary_graph
    (fun spec ->
      let g = build spec in
      let q = Query.make ~params:[ "u" ] ~results:[ "v" ] (Fo.atom "E" [ "u"; "v" ]) in
      let act = Query.active g q in
      let union =
        List.fold_left
          (fun acc a -> Tuple.Set.union acc (Query.result_set g q a))
          Tuple.Set.empty (Query.all_params g q)
      in
      Tuple.Set.equal act union)

let prop_mso_of_fo_agrees =
  QCheck.Test.make ~count:50 ~name:"MSO oracle agrees with FO eval"
    arbitrary_graph
    (fun spec ->
      let g = build spec in
      let phi = Fo.exists "y" Fo.(atom "E" [ "x"; "y" ] &&& neg (eq "x" "y")) in
      List.for_all
        (fun x ->
          Eval.holds g (Eval.bind Eval.empty_env "x" x) phi
          = Mso.holds g ~elems:[ ("x", x) ] ~sets:[] (Mso.of_fo phi))
        (Structure.universe g))

let suite =
  [
    ("fo atoms", `Quick, test_fo_eval_atoms);
    ("fo quantifiers", `Quick, test_fo_eval_quantifiers);
    ("fo free vars and rank", `Quick, test_fo_free_vars_and_rank);
    ("fo well-formedness", `Quick, test_fo_well_formed);
    ("figure 2 result sets", `Quick, test_query_result_sets);
    ("figure 3 marking distortion", `Quick, test_query_figure3_marking);
    ("query construction guards", `Quick, test_query_guards);
    ("locality gaifman bound", `Quick, test_locality_bound);
    ("locality empirical check", `Quick, test_locality_respects);
    ("locality CQ rank", `Quick, test_cq_rank);
    ("locality CQ rank empirically", `Quick, test_cq_rank_is_correct_empirically);
    ("locality best rank", `Quick, test_best_rank);
    ("locality eta", `Quick, test_locality_eta);
    ("parser fo", `Quick, test_parser_fo);
    ("parser precedence", `Quick, test_parser_precedence);
    ("parser multi binder", `Quick, test_parser_multi_binder);
    ("parser rejects junk", `Quick, test_parser_errors);
    ("parser mso", `Quick, test_parser_mso);
    ("mso oracle", `Quick, test_mso_oracle);
    ("mso/fo downcast", `Quick, test_mso_to_fo);
    QCheck_alcotest.to_alcotest prop_de_morgan;
    QCheck_alcotest.to_alcotest prop_result_set_matches_holds;
    QCheck_alcotest.to_alcotest prop_active_is_union;
    QCheck_alcotest.to_alcotest prop_mso_of_fo_agrees;
  ]
