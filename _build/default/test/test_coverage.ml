(* Final coverage batch: small behaviors not pinned elsewhere. *)

open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let float = Alcotest.float
let _ = (int, bool, string, float)

let test_stats_histogram () =
  let h = Wm_util.Stats.histogram ~bins:2 [| 0.; 1.; 2.; 3. |] in
  check int "two bins" 2 (Array.length h);
  let _, _, c0 = h.(0) and _, _, c1 = h.(1) in
  check int "total count" 4 (c0 + c1);
  check int "empty input" 0 (Array.length (Wm_util.Stats.histogram ~bins:3 [||]))

let test_stats_constant_values () =
  (* All-equal values: single-width bins, no division by zero. *)
  let h = Wm_util.Stats.histogram ~bins:4 [| 5.; 5.; 5. |] in
  check int "all in some bin" 3
    (Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h)

let test_texttab_cells () =
  check string "int" "42" (Wm_util.Texttab.cell_int 42);
  check string "float digits" "3.14" (Wm_util.Texttab.cell_float ~digits:2 3.14159);
  check string "bool" "yes" (Wm_util.Texttab.cell_bool true)

let test_mso_compile_unsupported () =
  match
    Wm_trees.Mso_compile.compile ~base:[| "a" |] ~free:[ "x"; "y"; "z" ]
      (Wm_logic.Parser.mso_of_string "R(x,y,z)")
  with
  | exception Wm_trees.Mso_compile.Unsupported _ -> ()
  | _ -> Alcotest.fail "ternary atom accepted"

let test_mso_compile_undeclared_free () =
  match
    Wm_trees.Mso_compile.compile ~base:[| "a" |] ~free:[]
      (Wm_logic.Parser.mso_of_string "a(x)")
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undeclared free variable accepted"

let test_eval_unbound_variable () =
  let g = Structure.create Schema.graph 2 in
  match Eval.holds g Eval.empty_env (Fo.atom "E" [ "x"; "y" ]) with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unbound variable evaluated"

let test_query_answer_shape () =
  let ws = Paper_examples.travel in
  let answers =
    Query.answer ws Paper_examples.travel_query
      (Tuple.singleton (Structure.elt_of_name ws.Weighted.graph "India discovery"))
  in
  check int "two transports" 2 (List.length answers);
  check int "durations sum" ((16 * 60) + 55)
    (List.fold_left (fun acc (_, w) -> acc + w) 0 answers)

let test_structure_names () =
  let ws = Paper_examples.travel in
  check string "name" "F21"
    (Structure.name_of ws.Weighted.graph
       (Structure.elt_of_name ws.Weighted.graph "F21"));
  match Structure.elt_of_name ws.Weighted.graph "Nonexistent" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "unknown name resolved"

let test_btree_of_spec_alphabet_guard () =
  match
    Wm_trees.Btree.of_spec_with_alphabet [ "a" ] (Wm_trees.Btree.leaf "b")
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing label accepted"

let test_alphabet_insert_drop_inverse () =
  let a = Wm_trees.Alphabet.make ~base_size:3 ~bits:3 in
  let big = Wm_trees.Alphabet.make ~base_size:3 ~bits:4 in
  for letter = 0 to Wm_trees.Alphabet.size a - 1 do
    for p = 0 to 3 do
      List.iter
        (fun v ->
          let inserted = Wm_trees.Alphabet.insert_bit a p v letter in
          check bool "bit value" true (Wm_trees.Alphabet.bit big inserted p = v);
          check int "drop inverts insert" letter
            (Wm_trees.Alphabet.drop_bit big p inserted))
        [ false; true ]
    done
  done

let test_locality_saturation () =
  (* Very deep quantifier nesting must not overflow. *)
  let rec deep n phi = if n = 0 then phi else deep (n - 1) (Fo.exists (Printf.sprintf "v%d" n) phi) in
  let phi = deep 60 (Fo.atom "E" [ "x"; "v1" ]) in
  check bool "saturated, positive" true (Wm_logic.Locality.gaifman_bound phi > 0)

let test_vc_growth_monotone () =
  let f =
    Wm_vc.Setfam.of_int_sets ~universe:5 [ [ 0; 1 ]; [ 1; 2 ]; [ 3 ]; [] ]
  in
  check bool "growth monotone" true
    (Wm_vc.Vc.growth f 1 <= Wm_vc.Vc.growth f 2);
  check bool "growth bounded by family+" true
    (Wm_vc.Vc.growth f 2 <= 4)

let test_adversary_describe () =
  List.iter
    (fun a ->
      check bool "non-empty description" true
        (String.length (Wm_watermark.Adversary.describe a) > 0))
    [
      Wm_watermark.Adversary.Uniform_noise { amplitude = 1 };
      Wm_watermark.Adversary.Random_flips { count = 2; amplitude = 1 };
      Wm_watermark.Adversary.Rounding { multiple = 4 };
      Wm_watermark.Adversary.Constant_offset { delta = -3 };
      Wm_watermark.Adversary.Back_to_original
        { original = Weighted.create 1; fraction = 0.5 };
    ]

let test_rounding_attack_values () =
  let w = Weighted.of_list 1 [ (Tuple.singleton 0, 13); (Tuple.singleton 1, 16) ] in
  let attacked =
    Wm_watermark.Adversary.apply (Wm_util.Prng.create 1)
      (Wm_watermark.Adversary.Rounding { multiple = 8 })
      ~active:[ Tuple.singleton 0; Tuple.singleton 1 ]
      w
  in
  check int "13 -> 16" 16 (Weighted.get_elt attacked 0);
  check int "16 stays" 16 (Weighted.get_elt attacked 1)

let test_grid_structure () =
  let ws = Grid.structure ~w:3 ~h:2 in
  let g = ws.Weighted.graph in
  check int "size" 6 (Structure.size g);
  check bool "H edge" true
    (Relation.mem
       (Tuple.pair (Grid.vertex ~h:2 0 0) (Grid.vertex ~h:2 1 0))
       (Structure.relation g "H"));
  let gf = Gaifman.of_structure g in
  check bool "degree <= 4" true (Gaifman.max_degree gf <= 4);
  (* The neighbors query is usable by the local scheme on grids. *)
  match
    Wm_watermark.Local_scheme.prepare
      ~options:{ Wm_watermark.Local_scheme.default_options with rho = Some 1 }
      (Grid.structure ~w:8 ~h:3) Grid.neighbors_query
  with
  | Ok scheme ->
      check bool "grids are watermarkable (FO side)" true
        (Wm_watermark.Local_scheme.capacity scheme >= 1)
  | Error e -> Alcotest.fail e

let test_wrong_length_detect () =
  let ws = Random_struct.regular_rings (Wm_util.Prng.create 2) ~n:30 in
  match Wm_watermark.Local_scheme.prepare ws Paper_examples.figure1_query with
  | Error e -> Alcotest.fail e
  | Ok scheme -> (
      match
        Wm_watermark.Local_scheme.detect_weights scheme
          ~original:ws.Weighted.weights ~suspect:ws.Weighted.weights
          ~length:(Wm_watermark.Local_scheme.capacity scheme + 1)
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "overlong detect accepted")

let suite =
  [
    ("stats histogram", `Quick, test_stats_histogram);
    ("stats constant histogram", `Quick, test_stats_constant_values);
    ("texttab cells", `Quick, test_texttab_cells);
    ("mso compile unsupported atom", `Quick, test_mso_compile_unsupported);
    ("mso compile undeclared free", `Quick, test_mso_compile_undeclared_free);
    ("eval unbound variable", `Quick, test_eval_unbound_variable);
    ("query answer shape", `Quick, test_query_answer_shape);
    ("structure names", `Quick, test_structure_names);
    ("btree alphabet guard", `Quick, test_btree_of_spec_alphabet_guard);
    ("alphabet insert/drop inverse", `Quick, test_alphabet_insert_drop_inverse);
    ("locality bound saturates", `Quick, test_locality_saturation);
    ("vc growth monotone", `Quick, test_vc_growth_monotone);
    ("adversary descriptions", `Quick, test_adversary_describe);
    ("rounding attack values", `Quick, test_rounding_attack_values);
    ("grid structure and scheme", `Quick, test_grid_structure);
    ("detect length guard", `Quick, test_wrong_length_detect);
  ]
