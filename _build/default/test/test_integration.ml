(* End-to-end scenarios chaining several subsystems, as a user would:
   serialization in the loop, attacks between marking and detection,
   updates between distribution and detection. *)

open Wm_watermark
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let _ = (int, bool)

module Prng = Wm_util.Prng
module Codec = Wm_util.Codec
module Bitvec = Wm_util.Bitvec

(* 1. The 3-tier relational story, with files in the loop. *)
let test_relational_three_tier () =
  let owner_db = Random_struct.travel (Prng.create 77) ~travels:60 ~transports:150 in
  let query = Random_struct.travel_query in
  (* The owner's database lives on disk (Textio), as the CLI would have
     it. *)
  let owner_db =
    Wm_relational.Textio.of_string (Wm_relational.Textio.to_string owner_db)
  in
  (* Default options: rho comes from the CQ rank (0 for the atomic Route
     query). *)
  let scheme =
    match Local_scheme.prepare owner_db query with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  check int "tight default rho" 0 (Local_scheme.report scheme).Local_scheme.rho;
  let bits = 3 in
  check bool "capacity for 8 servers" true (Local_scheme.capacity scheme >= bits);
  let base = Robust.of_local scheme in
  let times = Robust.redundancy_for base ~message_length:bits in
  let copies =
    List.init 8 (fun i ->
        let m = Codec.of_int ~bits i in
        (i, Robust.mark base ~times m owner_db.Weighted.weights))
  in
  (* Server 5 leaks; before re-selling it adds noise and a price hike. *)
  let _, leaked = List.nth copies 5 in
  let leaked =
    Wm_relational.Textio.of_string
      (Wm_relational.Textio.to_string { owner_db with Weighted.weights = leaked })
  in
  let qs = Local_scheme.query_system scheme in
  let attacked =
    Adversary.apply (Prng.create 3)
      (Adversary.Constant_offset { delta = 5 })
      ~active:(Query_system.active qs) leaked.Weighted.weights
  in
  let attacked =
    Adversary.apply (Prng.create 4)
      (Adversary.Random_flips { count = 4; amplitude = 1 })
      ~active:(Query_system.active qs) attacked
  in
  let decoded =
    Robust.detect base ~times ~length:bits ~original:owner_db.Weighted.weights
      ~server:(Query_system.server qs attacked)
  in
  check int "server 5 convicted" 5 (Codec.to_int decoded)

(* 2. The XML story with serialization and the descendant axis. *)
let test_xml_nested_story () =
  let open Wm_xml in
  (* A school with two levels of nesting. *)
  let student f l e =
    Xml.element "student"
      [
        Xml.element "firstname" [ Xml.text f ];
        Xml.element "lastname" [ Xml.text l ];
        Xml.element "exam" [ Xml.int_text e ];
      ]
  in
  let g = Prng.create 21 in
  let names = [| "John"; "Robert"; "Alice"; "Mary" |] in
  let cls i =
    Xml.element "class"
      (List.init 8 (fun j ->
           student (Prng.choose g names)
             (Printf.sprintf "N%d_%d" i j)
             (Prng.int g 21)))
  in
  let doc = Utree.of_xml (Xml.element "school" (List.init 8 cls)) in
  let pattern = Pattern.parse "school//student[firstname=$a]/exam" in
  match Pipeline.prepare_xml doc pattern with
  | Error e -> Alcotest.fail e
  | Ok xs ->
      let cap = min 4 (Tree_scheme.capacity xs.Pipeline.scheme) in
      check bool "has capacity" true (cap >= 1);
      let message = Codec.random g cap in
      let marked = Pipeline.mark_xml xs ~message doc in
      (* Ship as text; the suspect re-serves it. *)
      let suspect =
        Utree.of_xml (Xml.parse (Xml.to_string (Utree.to_xml marked)))
      in
      let decoded = Pipeline.detect_xml xs ~original:doc ~suspect ~length:cap in
      check bool "mark survives the document cycle" true
        (Bitvec.equal decoded message);
      (* Every nested student's exam total moved by at most 1. *)
      List.iter
        (fun a ->
          let s d =
            List.fold_left
              (fun acc v -> acc + Option.value ~default:0 (Utree.value_of d v))
              0 (Pattern.eval_node pattern d a)
          in
          check bool "node distortion <= 1" true (abs (s suspect - s doc) <= 1))
        (Pattern.structural_params pattern doc)

(* 3. Multi-query marking surviving a weights-only update. *)
let test_multi_query_update () =
  let ws = Random_struct.regular_rings (Prng.create 31) ~n:48 in
  let adjacency = Paper_examples.figure1_query in
  let two_away =
    Query.make ~params:[ "u" ] ~results:[ "v" ]
      Fo.(exists "w" (atom "E" [ "u"; "w" ] &&& atom "E" [ "w"; "v" ]))
  in
  match Multi_scheme.prepare ws [ adjacency; two_away ] with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let cap = min 4 (Multi_scheme.capacity scheme) in
      let message = Codec.random (Prng.create 1) cap in
      let marked = Multi_scheme.mark scheme message ws.Weighted.weights in
      (* Owner bumps all weights by 10 (weights-only update). *)
      let updated =
        List.fold_left
          (fun w t -> Weighted.add_delta w t 10)
          ws.Weighted.weights
          (Weighted.support ws.Weighted.weights)
      in
      let propagated =
        Incremental.propagate ~original:ws.Weighted.weights ~marked ~updated
      in
      let decoded =
        Multi_scheme.detect_weights scheme ~original:updated
          ~suspect:propagated ~length:cap
      in
      check bool "multi-query mark survives update" true
        (Bitvec.equal decoded message)

(* 4. Clique-width marking with a statistically justified accusation. *)
let test_cliquewidth_verdict () =
  let open Wm_cliquewidth in
  (* Big enough that the carrier count can reject the no-mark null at the
     default alpha = 0.01 (a 3-bit mark cannot: 0.25^3 > 0.01 — honest
     statistics, not a defect). *)
  let labels = 2 in
  let term = Cw_term.clique 120 in
  let tree = Cw_parse.to_tree ~labels term in
  let q = Cw_adjacency.query ~labels in
  match Tree_scheme.prepare tree q with
  | Error e -> Alcotest.fail e
  | Ok scheme ->
      let n = Cw_term.vertex_count term in
      let gw =
        Weighted.of_list 1 (List.init n (fun i -> (Tuple.singleton i, 500 + i)))
      in
      let tw = Cw_parse.vertex_weights tree gw in
      let cap = Tree_scheme.capacity scheme in
      let message = Codec.random (Prng.create 5) cap in
      let marked = Tree_scheme.mark scheme message tw in
      let verdict_marked =
        Detector.read_weights (Tree_scheme.pairs scheme) ~original:tw
          ~suspect:marked ~length:cap
      in
      check bool "marked flagged" true (Detector.is_marked verdict_marked);
      check bool "id matches" true
        (Detector.match_pvalue ~expected:message verdict_marked < 0.05);
      let verdict_innocent =
        Detector.read_weights (Tree_scheme.pairs scheme) ~original:tw
          ~suspect:tw ~length:cap
      in
      check bool "innocent cleared" false (Detector.is_marked verdict_innocent)

let suite =
  [
    ("three-tier relational story", `Slow, test_relational_three_tier);
    ("nested XML story", `Slow, test_xml_nested_story);
    ("multi-query + update", `Slow, test_multi_query_update);
    ("clique-width + verdict", `Slow, test_cliquewidth_verdict);
  ]
