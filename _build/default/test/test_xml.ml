(* Tests for Wm_xml: parser/printer, unranked trees, the FCNS binary
   encoding, and pattern queries — including the Example 4 numbers and the
   equivalence of the direct evaluator with the compiled tree automaton. *)

open Wm_xml
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string
let list = Alcotest.list
let option = Alcotest.option
let _ = (int, bool, string, (fun x -> list x), fun x -> option x)

let school_text =
  {|<school>
  <student>
    <firstname>John</firstname>
    <lastname>Doe</lastname>
    <exam>11</exam>
  </student>
  <student>
    <firstname>Robert</firstname>
    <lastname>Durant</lastname>
    <exam>16</exam>
  </student>
  <student>
    <firstname>Robert</firstname>
    <lastname>Smith</lastname>
    <exam>12</exam>
  </student>
</school>|}

let test_parse_basic () =
  let doc = Xml.parse school_text in
  check (option string) "root tag" (Some "school") (Xml.tag_of doc);
  check int "students" 3 (List.length (Xml.children_of doc))

let test_parse_roundtrip () =
  let doc = Xml.parse school_text in
  let doc2 = Xml.parse (Xml.to_string doc) in
  check bool "parse . print = id" true (Xml.equal doc doc2)

let test_parse_attributes () =
  let doc = Xml.parse {|<a x="1" y="two &amp; three"><b/>text</a>|} in
  match doc with
  | Xml.Element { tag = "a"; attrs; children = [ Xml.Element { tag = "b"; _ }; Xml.Text t ] } ->
      check string "attr" "two & three" (List.assoc "y" attrs);
      check string "text" "text" t
  | _ -> Alcotest.fail "unexpected shape"

let test_parse_misc_skipped () =
  let doc = Xml.parse {|<?xml version="1.0"?><!-- hi --><a><!-- inner --><b/></a>|} in
  check (option string) "root" (Some "a") (Xml.tag_of doc);
  check int "one child" 1 (List.length (Xml.children_of doc))

let test_parse_errors () =
  List.iter
    (fun s ->
      match Xml.parse s with
      | exception Xml.Parse_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ s))
    [ "<a>"; "<a></b>"; "no markup"; "<a><b></a></b>"; "<a>&unknown;</a>"; "<a/><b/>" ]

let test_entities_roundtrip () =
  let doc = Xml.element "t" [ Xml.text "a<b&c>d\"e" ] in
  let doc2 = Xml.parse (Xml.to_string doc) in
  check bool "escapes survive" true (Xml.equal doc doc2)

let test_utree_shape () =
  let u = School_xml.example4 in
  check int "size: 1 school + 3*(student+3 tags+3 texts)" 22 (Utree.size u);
  check string "root label" "school" (Utree.label u 0);
  check bool "root not text" false (Utree.is_text u 0);
  check int "school children" 3 (List.length (Utree.children u 0));
  check (option int) "parent of root" None (Utree.parent u 0)

let test_utree_values () =
  let u = School_xml.example4 in
  let vs = Utree.value_nodes u in
  check int "three exam values" 3 (List.length vs);
  check (list int) "values" [ 11; 16; 12 ]
    (List.filter_map (Utree.value_of u) vs)

let test_utree_with_weights () =
  let u = School_xml.example4 in
  let w = Utree.weights u in
  let w' =
    List.fold_left
      (fun w v -> Weighted.add_delta w (Tuple.singleton v) 1)
      w (Utree.value_nodes u)
  in
  let u' = Utree.with_weights u w' in
  check (list int) "values bumped" [ 12; 17; 13 ]
    (List.filter_map (Utree.value_of u') (Utree.value_nodes u'));
  (* Untouched labels stay put. *)
  check string "tag intact" "school" (Utree.label u' 0)

let test_utree_attributes_survive_marking () =
  (* Attributes ride along the tree model: marking a document (rewriting
     its value nodes) must not lose them. *)
  let doc =
    Xml.parse
      {|<school version="2" lang="en"><student id="s1"><firstname>John</firstname><exam>11</exam></student></school>|}
  in
  let u = Utree.of_xml doc in
  check string "root attr" "2" (List.assoc "version" (Utree.attrs u 0));
  let w' =
    Weighted.apply_marks (Utree.weights u)
      (List.map (fun v -> (Tuple.singleton v, 1)) (Utree.value_nodes u))
  in
  let marked = Utree.with_weights u w' in
  let reparsed = Xml.parse (Xml.to_string (Utree.to_xml marked)) in
  match reparsed with
  | Xml.Element { attrs; children = [ Xml.Element { attrs = sattrs; _ } ]; _ } ->
      check string "root attrs kept" "en" (List.assoc "lang" attrs);
      check string "student attrs kept" "s1" (List.assoc "id" sattrs)
  | _ -> Alcotest.fail "unexpected shape"

let test_utree_xml_roundtrip () =
  let u = School_xml.example4 in
  check bool "to_xml . of_xml" true (Xml.equal (Utree.to_xml u) (Xml.parse school_text))

let test_encode_full_roundtrip () =
  let u = School_xml.example4 in
  let b = Encode.to_binary_full u in
  check int "same node count" (Utree.size u) (Wm_trees.Btree.size b);
  let u2 = Encode.of_binary_full b in
  check bool "roundtrip" true (Xml.equal (Utree.to_xml u) (Utree.to_xml u2))

let test_encode_preorder_ids () =
  (* FCNS preorder = unranked preorder, so labels line up index by index. *)
  let u = School_xml.example4 in
  let b = Encode.to_binary_abstract u in
  for v = 0 to Utree.size u - 1 do
    let expected = if Utree.is_text u v then Encode.text_letter else Utree.label u v in
    check string (Printf.sprintf "node %d" v) expected (Wm_trees.Btree.label_name b v)
  done

let test_encode_abstract_alphabet () =
  let u = School_xml.example4 in
  check (list string) "alphabet"
    [ "#text"; "exam"; "firstname"; "lastname"; "school"; "student" ]
    (Encode.abstract_alphabet u)

let test_pattern_parse () =
  let p = Pattern.parse "school/student[firstname=$a]/exam" in
  check (list string) "path" [ "school"; "student"; "exam" ]
    (List.map snd p.Pattern.steps);
  check bool "all child axes" true
    (List.for_all (fun (a, _) -> a = Pattern.Child) p.Pattern.steps);
  check int "pred step" 1 p.Pattern.pred_step;
  check string "pred tag" "firstname" p.Pattern.pred_tag;
  check string "roundtrip" "school/student[firstname=$a]/exam" (Pattern.to_string p)

let test_pattern_parse_descendant () =
  let p = Pattern.parse "school//student[firstname=$a]/exam" in
  (match p.Pattern.steps with
  | [ (Pattern.Child, "school"); (Pattern.Descendant, "student");
      (Pattern.Child, "exam") ] -> ()
  | _ -> Alcotest.fail "unexpected steps");
  check string "roundtrip" "school//student[firstname=$a]/exam"
    (Pattern.to_string p)

let test_pattern_parse_errors () =
  List.iter
    (fun s ->
      match Pattern.parse s with
      | exception Pattern.Parse_error _ -> ()
      | _ -> Alcotest.fail ("should not parse: " ^ s))
    [ "school/student"; "a[b=$x]/c[d=$y]"; "a[b]/c"; "a///b[c=$x]/d"; "";
      "//a[b=$x]/c" ]

let test_example4_f_robert () =
  (* The paper: f(Robert, psi) = 28 on the original document. *)
  let u = School_xml.example4 in
  let p = School_xml.example4_pattern in
  check int "f(Robert) = 28" 28 (Pattern.f_value p u "Robert");
  check int "f(John) = 11" 11 (Pattern.f_value p u "John");
  check int "f(Nobody) = 0" 0 (Pattern.f_value p u "Nobody")

let test_example4_distorted () =
  (* The second document of Example 4 (15 and 13): f(Robert) = 28 with
     distortion... the marked copy has f = 28 too (15+13); the paper says
     "has distortion 1 on the second" reading 15+13=28 vs 16+12=28 —
     distortion on the pair query is 0, each weight moved by 1.  Check the
     1-local distortion and the f values. *)
  let u = School_xml.example4 in
  let w = Utree.weights u in
  let exams = Utree.value_nodes u in
  let robert_exams = List.filter (fun v -> Utree.value_of u v <> Some 11) exams in
  let w' =
    match robert_exams with
    | [ e1; e2 ] ->
        Weighted.apply_marks w [ (Tuple.singleton e1, -1); (Tuple.singleton e2, 1) ]
    | _ -> Alcotest.fail "expected two Robert exams"
  in
  let u' = Utree.with_weights u w' in
  check bool "1-local" true (Weighted.is_local_distortion ~c:1 w w');
  check int "f(Robert) preserved" 28
    (Pattern.f_value School_xml.example4_pattern u' "Robert")

(* A nested school: students sit inside <class> groups at varying depth. *)
let nested_school =
  let student f l e =
    Xml.element "student"
      [
        Xml.element "firstname" [ Xml.text f ];
        Xml.element "lastname" [ Xml.text l ];
        Xml.element "exam" [ Xml.int_text e ];
      ]
  in
  Utree.of_xml
    (Xml.element "school"
       [
         Xml.element "class"
           [
             student "John" "Doe" 11;
             Xml.element "group" [ student "Robert" "Durant" 16 ];
           ];
         Xml.element "class" [ student "Robert" "Smith" 12 ];
       ])

let test_pattern_descendant_eval () =
  let u = nested_school in
  (* The child-axis pattern finds nothing: students are not direct
     children of school. *)
  let flat = Pattern.parse "school/student[firstname=$a]/exam" in
  check int "child axis misses nested" 0 (Pattern.f_value flat u "Robert");
  (* The descendant-axis pattern finds them all. *)
  let deep = Pattern.parse "school//student[firstname=$a]/exam" in
  check int "f(Robert) = 28" 28 (Pattern.f_value deep u "Robert");
  check int "f(John) = 11" 11 (Pattern.f_value deep u "John");
  check int "three params" 3 (List.length (Pattern.structural_params deep u))

let test_pattern_descendant_automaton () =
  let u = nested_school in
  let deep = Pattern.parse "school//student[firstname=$a]/exam" in
  let alphabet = Encode.abstract_alphabet u in
  let q = Pattern.compile deep ~alphabet in
  let b = Encode.to_binary_abstract u in
  let n = Utree.size u in
  for a = 0 to n - 1 do
    let direct = if Utree.is_text u a then Pattern.eval_node deep u a else [] in
    for v = 0 to n - 1 do
      check bool
        (Printf.sprintf "(a=%d,v=%d)" a v)
        (List.mem v direct)
        (Wm_trees.Tree_query.member q b (Tuple.singleton a) (Tuple.singleton v))
    done
  done

let test_pattern_descendant_result_step () =
  (* The result step itself may use the descendant axis:
     school//class[name=$a]//exam sums exams anywhere under the class. *)
  let u =
    Utree.of_xml
      (Xml.parse
         {|<school>
             <class><name>A</name>
               <group><exam>10</exam></group>
               <exam>5</exam>
             </class>
             <class><name>B</name><exam>7</exam></class>
           </school>|})
  in
  let p = Pattern.parse "school//class[name=$a]//exam" in
  check int "f(A) over nested exams" 15 (Pattern.f_value p u "A");
  check int "f(B)" 7 (Pattern.f_value p u "B");
  (* Automaton agreement on this shape too. *)
  let q = Pattern.compile p ~alphabet:(Encode.abstract_alphabet u) in
  let b = Encode.to_binary_abstract u in
  let n = Utree.size u in
  for a = 0 to n - 1 do
    let direct = if Utree.is_text u a then Pattern.eval_node p u a else [] in
    for v = 0 to n - 1 do
      check bool
        (Printf.sprintf "(a=%d,v=%d)" a v)
        (List.mem v direct)
        (Wm_trees.Tree_query.member q b (Tuple.singleton a) (Tuple.singleton v))
    done
  done

let test_biblio_workload () =
  let doc = Biblio_xml.generate (Wm_util.Prng.create 7) ~articles:24 () in
  let p = Biblio_xml.pattern in
  check int "24 structural params" 24
    (List.length (Pattern.structural_params p doc));
  (* Weights = citation counts only (year labels are non-numeric). *)
  check int "24 value nodes" 24 (List.length (Utree.value_nodes doc));
  (* f over an author sums that author's citation counts. *)
  let total =
    List.fold_left
      (fun acc a ->
        if Utree.label doc a = "Codd" then
          acc
          + List.fold_left
              (fun s v -> s + Option.value ~default:0 (Utree.value_of doc v))
              0 (Pattern.eval_node p doc a)
        else acc)
      0
      (Pattern.structural_params p doc)
  in
  check int "value-level = union of node-level" total
    (Pattern.f_value p doc "Codd")

let test_wrong_seed_reads_garbage () =
  (* The seed is the secret: a detector (or attacker) replaying preparation
     with the wrong seed selects different pairs and decodes noise. *)
  let ws = Wm_workload.Random_struct.regular_rings (Wm_util.Prng.create 3) ~n:80 in
  let q = Wm_workload.Paper_examples.figure1_query in
  let prep seed =
    match
      Wm_watermark.Local_scheme.prepare
        ~options:{ Wm_watermark.Local_scheme.default_options with seed } ws q
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let owner = prep 111 and intruder = prep 222 in
  let cap =
    min
      (Wm_watermark.Local_scheme.capacity owner)
      (Wm_watermark.Local_scheme.capacity intruder)
  in
  let cap = min 12 cap in
  let message = Wm_util.Codec.random (Wm_util.Prng.create 1) cap in
  let marked = Wm_watermark.Local_scheme.mark owner message ws.Weighted.weights in
  let right =
    Wm_watermark.Local_scheme.detect_weights owner
      ~original:ws.Weighted.weights ~suspect:marked ~length:cap
  in
  let wrong =
    Wm_watermark.Local_scheme.detect_weights intruder
      ~original:ws.Weighted.weights ~suspect:marked ~length:cap
  in
  check bool "right seed decodes" true (Wm_util.Bitvec.equal right message);
  check bool "wrong seed does not" false (Wm_util.Bitvec.equal wrong message)

let test_pattern_constant_predicates () =
  (* school/student[firstname=$a][lastname=Smith]/exam: only Smith rows. *)
  let u = School_xml.example4 in
  let p = Pattern.parse "school/student[firstname=$a][lastname=Smith]/exam" in
  check (Alcotest.list string) "constants" [ "Smith" ] (Pattern.constants p);
  check string "roundtrip" "school/student[firstname=$a][lastname=Smith]/exam"
    (Pattern.to_string p);
  (* Robert Smith has 12, Robert Durant 16: the filter keeps only Smith. *)
  check int "f(Robert) with Smith filter" 12 (Pattern.f_value p u "Robert");
  check int "f(John) filtered out" 0 (Pattern.f_value p u "John");
  (* And the compiled automaton agrees, over the constant-aware
     alphabet. *)
  let constants = Pattern.constants p in
  let q = Pattern.compile p ~alphabet:(Encode.abstract_alphabet ~constants u) in
  let b = Encode.to_binary_abstract ~constants u in
  let n = Utree.size u in
  for a = 0 to n - 1 do
    let direct = if Utree.is_text u a then Pattern.eval_node p u a else [] in
    for v = 0 to n - 1 do
      check bool
        (Printf.sprintf "(a=%d,v=%d)" a v)
        (List.mem v direct)
        (Wm_trees.Tree_query.member q b (Tuple.singleton a) (Tuple.singleton v))
    done
  done

let test_pattern_constant_collision () =
  (* A parameter whose text equals a constant must still work: filter on
     lastname=Robert while the parameter is a firstname that can also be
     "Robert". *)
  let u =
    Utree.of_xml
      (Xml.parse
         {|<school><student><firstname>Robert</firstname><lastname>Robert</lastname><exam>9</exam></student><student><firstname>Robert</firstname><lastname>Doe</lastname><exam>5</exam></student></school>|})
  in
  let p = Pattern.parse "school/student[firstname=$a][lastname=Robert]/exam" in
  check int "direct" 9 (Pattern.f_value p u "Robert");
  let constants = Pattern.constants p in
  let q = Pattern.compile p ~alphabet:(Encode.abstract_alphabet ~constants u) in
  let b = Encode.to_binary_abstract ~constants u in
  let n = Utree.size u in
  for a = 0 to n - 1 do
    let direct = if Utree.is_text u a then Pattern.eval_node p u a else [] in
    for v = 0 to n - 1 do
      check bool
        (Printf.sprintf "(a=%d,v=%d)" a v)
        (List.mem v direct)
        (Wm_trees.Tree_query.member q b (Tuple.singleton a) (Tuple.singleton v))
    done
  done

let test_pipeline_constant_pattern () =
  (* End-to-end marking with a constant filter in the registered query. *)
  let doc = School_xml.generate (Prng.create 12) ~students:80 () in
  let p = Pattern.parse "school/student[firstname=$a][lastname=Name0007]/exam" in
  match Wm_watermark.Pipeline.prepare_xml doc p with
  | Error e ->
      (* Tiny active sets may legitimately fail; the parse/eval side is the
         point here. *)
      check bool "informative error" true (String.length e > 0)
  | Ok xs ->
      let cap = Wm_watermark.Tree_scheme.capacity xs.Wm_watermark.Pipeline.scheme in
      check bool "capacity >= 1" true (cap >= 1)

let test_pattern_structural_params () =
  let u = School_xml.example4 in
  let p = School_xml.example4_pattern in
  let params = Pattern.structural_params p u in
  check int "three name nodes" 3 (List.length params);
  check (list string) "labels" [ "John"; "Robert"; "Robert" ]
    (List.sort compare (List.map (Utree.label u) params))

let test_pattern_automaton_agrees () =
  (* The compiled automaton must agree with the direct evaluator on every
     (structural parameter, candidate result) pair — Lemma 2 in action on
     Example 4 plus random documents. *)
  let p = School_xml.example4_pattern in
  let docs =
    School_xml.example4
    :: List.init 4 (fun i ->
           School_xml.generate (Prng.create (50 + i)) ~students:(2 + i) ())
  in
  let alphabet = Encode.abstract_alphabet School_xml.example4 in
  let q = Pattern.compile p ~alphabet in
  List.iter
    (fun u ->
      let b = Encode.to_binary_abstract u in
      let n = Utree.size u in
      for a = 0 to n - 1 do
        let direct =
          if Utree.is_text u a then Pattern.eval_node p u a else []
        in
        for v = 0 to n - 1 do
          let auto_says =
            Wm_trees.Tree_query.member q b (Tuple.singleton a) (Tuple.singleton v)
          in
          check bool
            (Printf.sprintf "(a=%d,v=%d)" a v)
            (List.mem v direct) auto_says
        done
      done)
    docs

let test_pattern_compiled_size () =
  (* The automaton should be small — pattern queries are the "m states"
     of Theorem 5, and |W|/4m pairs depend on m staying modest. *)
  let p = School_xml.example4_pattern in
  let alphabet = Encode.abstract_alphabet School_xml.example4 in
  let q = Pattern.compile p ~alphabet in
  check bool "at most 60 states" true
    (Wm_trees.Dta.nstates (Wm_trees.Tree_query.automaton q) <= 60)

(* Properties *)

let prop_xml_roundtrip =
  QCheck.Test.make ~count:40 ~name:"random school xml roundtrips"
    QCheck.(int_range 1 20)
    (fun n ->
      let u = School_xml.generate (Prng.create n) ~students:n () in
      let s = Xml.to_string (Utree.to_xml u) in
      Xml.equal (Xml.parse s) (Utree.to_xml u))

let prop_encode_roundtrip =
  QCheck.Test.make ~count:40 ~name:"FCNS encode/decode roundtrips"
    QCheck.(int_range 1 15)
    (fun n ->
      let u = School_xml.generate (Prng.create (100 + n)) ~students:n () in
      let b = Encode.to_binary_full u in
      Xml.equal (Utree.to_xml (Encode.of_binary_full b)) (Utree.to_xml u))

let prop_value_query_is_union =
  QCheck.Test.make ~count:30 ~name:"value answer = union of node answers"
    QCheck.(int_range 1 12)
    (fun n ->
      let u = School_xml.generate (Prng.create (200 + n)) ~students:n () in
      let p = School_xml.example4_pattern in
      List.for_all
        (fun value ->
          let by_value = Pattern.eval_value p u value in
          let by_union =
            Pattern.structural_params p u
            |> List.filter (fun a -> Utree.label u a = value)
            |> List.concat_map (Pattern.eval_node p u)
            |> List.sort_uniq compare
          in
          by_value = by_union)
        [ "John"; "Robert"; "Alice"; "Zed" ])

let suite =
  [
    ("xml parse basic", `Quick, test_parse_basic);
    ("xml parse/print roundtrip", `Quick, test_parse_roundtrip);
    ("xml attributes", `Quick, test_parse_attributes);
    ("xml comments and PI skipped", `Quick, test_parse_misc_skipped);
    ("xml rejects junk", `Quick, test_parse_errors);
    ("xml entity escaping", `Quick, test_entities_roundtrip);
    ("utree shape", `Quick, test_utree_shape);
    ("utree value nodes", `Quick, test_utree_values);
    ("utree weight rewrite", `Quick, test_utree_with_weights);
    ("utree/xml roundtrip", `Quick, test_utree_xml_roundtrip);
    ("utree attributes survive marking", `Quick, test_utree_attributes_survive_marking);
    ("encode full roundtrip", `Quick, test_encode_full_roundtrip);
    ("encode preserves preorder ids", `Quick, test_encode_preorder_ids);
    ("encode abstract alphabet", `Quick, test_encode_abstract_alphabet);
    ("pattern parse", `Quick, test_pattern_parse);
    ("pattern parse descendant axis", `Quick, test_pattern_parse_descendant);
    ("pattern parse errors", `Quick, test_pattern_parse_errors);
    ("pattern descendant evaluation", `Quick, test_pattern_descendant_eval);
    ("pattern descendant automaton", `Slow, test_pattern_descendant_automaton);
    ("pattern descendant result step", `Slow, test_pattern_descendant_result_step);
    ("bibliography workload", `Quick, test_biblio_workload);
    ("pattern constant predicates", `Slow, test_pattern_constant_predicates);
    ("pattern constant/parameter collision", `Slow, test_pattern_constant_collision);
    ("pipeline with constant filter", `Slow, test_pipeline_constant_pattern);
    ("wrong seed decodes garbage", `Quick, test_wrong_seed_reads_garbage);
    ("example 4: f(Robert) = 28", `Quick, test_example4_f_robert);
    ("example 4: marked copy", `Quick, test_example4_distorted);
    ("pattern structural params", `Quick, test_pattern_structural_params);
    ("pattern automaton agrees with evaluator", `Slow, test_pattern_automaton_agrees);
    ("pattern automaton is small", `Slow, test_pattern_compiled_size);
    QCheck_alcotest.to_alcotest prop_xml_roundtrip;
    QCheck_alcotest.to_alcotest prop_encode_roundtrip;
    QCheck_alcotest.to_alcotest prop_value_query_is_union;
  ]
