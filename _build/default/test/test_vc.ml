(* Tests for Wm_vc: set families, exact VC-dimension, Sauer-Shelah, and
   the query-defined families of the shattering workloads (the combinatorial
   heart of Theorem 2 and Remark 1). *)

open Wm_vc
open Wm_workload

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let list = Alcotest.list
let _ = (int, bool, fun x -> list x)

let powerset_family n =
  Setfam.of_int_sets ~universe:n
    (List.init (1 lsl n) (fun mask ->
         List.filter (fun i -> (mask lsr i) land 1 = 1) (List.init n Fun.id)))

let singleton_family n =
  Setfam.of_int_sets ~universe:n (List.init n (fun i -> [ i ]))

let test_setfam_dedup () =
  let f = Setfam.of_int_sets ~universe:4 [ [ 0; 1 ]; [ 1; 0 ]; [ 2 ] ] in
  check int "dedup" 2 (Setfam.cardinal f);
  check bool "mem" true (Setfam.mem_set f [ 0; 1 ]);
  check bool "not mem" false (Setfam.mem_set f [ 0 ])

let test_setfam_traces () =
  let f = Setfam.of_int_sets ~universe:4 [ []; [ 0 ]; [ 1 ]; [ 0; 1 ] ] in
  check int "traces on {0,1}" 4 (Setfam.trace_count f [ 0; 1 ]);
  check bool "shatters {0,1}" true (Setfam.shatters f [ 0; 1 ]);
  check bool "not {0,1,2}" false (Setfam.shatters f [ 0; 1; 2 ]);
  check bool "empty set shattered" true (Setfam.shatters f [])

let test_setfam_restriction () =
  let f = Setfam.of_int_sets ~universe:4 [ [ 0; 2 ]; [ 1; 2 ]; [ 3 ] ] in
  let r = Setfam.restriction f [ 0; 1 ] in
  check int "restricted universe" 2 (Setfam.universe_size r);
  (* Traces: {0}, {1}, {} *)
  check int "restricted cardinal" 3 (Setfam.cardinal r)

let test_vc_powerset () =
  check int "VC(2^[3]) = 3" 3 (Vc.dimension (powerset_family 3));
  check int "VC(2^[4]) = 4" 4 (Vc.dimension (powerset_family 4))

let test_vc_singletons () =
  check int "VC(singletons) = 1" 1 (Vc.dimension (singleton_family 6))

let test_vc_empty_family () =
  let f = Setfam.of_int_sets ~universe:3 [ [] ] in
  check int "VC({{}}) = 0" 0 (Vc.dimension f)

let test_vc_intervals () =
  (* Intervals [i, j) over 0..5: VC-dimension 2 (three points cannot be
     shattered: the middle one cannot be excluded alone). *)
  let sets = ref [] in
  for i = 0 to 5 do
    for j = i to 5 do
      sets := List.init (j - i) (fun k -> i + k) :: !sets
    done
  done;
  let f = Setfam.of_int_sets ~universe:5 !sets in
  check int "VC(intervals) = 2" 2 (Vc.dimension f)

let test_vc_max_cap () =
  check int "capped" 2 (Vc.dimension ~max:2 (powerset_family 4))

let test_shattered_sets () =
  let f = singleton_family 3 in
  check int "three 1-sets shattered" 3 (List.length (Vc.shattered_sets f 1));
  check (list (list int)) "no 2-sets" [] (Vc.shattered_sets f 2)

let test_sauer_shelah_values () =
  check int "d=0" 1 (Vc.sauer_shelah ~d:0 ~n:10);
  check int "d=1 n=10" 11 (Vc.sauer_shelah ~d:1 ~n:10);
  check int "d=2 n=10" 56 (Vc.sauer_shelah ~d:2 ~n:10);
  check int "d=n" 1024 (Vc.sauer_shelah ~d:10 ~n:10)

let test_growth () =
  let f = singleton_family 4 in
  check int "pi(2) = 3" 3 (Vc.growth f 2)
(* traces over 2 points: {}, {x}, {y} *)

let test_shatter_full_family () =
  (* Theorem 2's witness: the full family shatters its whole active set. *)
  List.iter
    (fun n ->
      let ws = Shatter.full n in
      let ix = Query_vc.of_query ws.Weighted.graph Shatter.query in
      check int
        (Printf.sprintf "universe = n (n=%d)" n)
        n
        (Setfam.universe_size ix.Query_vc.fam);
      check bool "maximal" true (Query_vc.maximal_on ws.Weighted.graph Shatter.query);
      check int "VC = |W|" n (Vc.dimension ix.Query_vc.fam))
    [ 2; 3; 4 ]

let test_shatter_half_family () =
  (* Remark 1: VC = n/2 = |W|/2, not maximal. *)
  List.iter
    (fun n ->
      let ws = Shatter.half n in
      let ix = Query_vc.of_query ws.Weighted.graph Shatter.query in
      check int "universe = n" n (Setfam.universe_size ix.Query_vc.fam);
      check bool "not maximal" false
        (Query_vc.maximal_on ws.Weighted.graph Shatter.query);
      check int "VC = n/2" (n / 2) (Vc.dimension ix.Query_vc.fam))
    [ 4; 6 ]

let test_half_free_only_in_hub () =
  let n = 6 in
  let ws = Shatter.half n in
  let hub = Tuple.singleton (Shatter.half_hub n) in
  let free = Shatter.half_free n in
  let g = ws.Weighted.graph in
  List.iter
    (fun w ->
      let holders =
        List.filter
          (fun a ->
            Tuple.Set.mem (Tuple.singleton w) (Query.result_set g Shatter.query a))
          (Query.all_params g Shatter.query)
      in
      check (list bool) "only hub" [ true ]
        (List.map (fun a -> Tuple.equal a hub) holders))
    free

let test_figure1_vc () =
  let fig = Paper_examples.figure1 in
  let d = Query_vc.dimension_of_query fig.Weighted.graph Paper_examples.figure1_query in
  (* W_a = W_b = {d,e}, W_c = {d}, W_d = {a,b,c}, W_e = {a,b,f}, W_f = {e}:
     {d, e} is shattered ({} from W_f via trace {e}... check: traces on
     {d,e}: W_a gives {d,e}, W_c gives {d}, W_f gives {e}, W_d gives {} —
     all four, so VC >= 2; no 3-set is shattered (family too small). *)
  check int "VC(figure1) = 2" 2 d

(* Properties *)

let family_gen =
  QCheck.Gen.(
    pair (int_range 1 6) (list_size (int_bound 12) (list_size (int_bound 5) (int_bound 5))))

let arbitrary_family =
  QCheck.make family_gen ~print:(fun (n, sets) ->
      Printf.sprintf "universe=%d, %d sets" n (List.length sets))

let build (n, sets) =
  Setfam.of_int_sets ~universe:n
    (List.map (List.filter (fun x -> x < n)) sets)

let prop_sauer_shelah =
  QCheck.Test.make ~count:100 ~name:"families respect Sauer-Shelah"
    arbitrary_family
    (fun spec -> Vc.respects_sauer_shelah (build spec))

let prop_vc_monotone_in_family =
  QCheck.Test.make ~count:60 ~name:"adding sets cannot lower VC"
    arbitrary_family
    (fun (n, sets) ->
      match sets with
      | [] -> true
      | _ :: rest ->
          Vc.dimension (build (n, rest)) <= Vc.dimension (build (n, sets)))

let prop_restriction_vc =
  QCheck.Test.make ~count:60 ~name:"restriction cannot raise VC"
    arbitrary_family
    (fun (n, sets) ->
      let f = build (n, sets) in
      let sub = List.init (max 1 (n / 2)) Fun.id in
      Vc.dimension (Setfam.restriction f sub) <= Vc.dimension f)

let suite =
  [
    ("setfam dedup", `Quick, test_setfam_dedup);
    ("setfam traces and shattering", `Quick, test_setfam_traces);
    ("setfam restriction", `Quick, test_setfam_restriction);
    ("vc of powerset", `Quick, test_vc_powerset);
    ("vc of singletons", `Quick, test_vc_singletons);
    ("vc of trivial family", `Quick, test_vc_empty_family);
    ("vc of intervals", `Quick, test_vc_intervals);
    ("vc with cap", `Quick, test_vc_max_cap);
    ("shattered sets enumeration", `Quick, test_shattered_sets);
    ("sauer-shelah values", `Quick, test_sauer_shelah_values);
    ("growth function", `Quick, test_growth);
    ("theorem 2 family is maximal", `Quick, test_shatter_full_family);
    ("remark 1 family is half-shattered", `Quick, test_shatter_half_family);
    ("remark 1 free elements", `Quick, test_half_free_only_in_hub);
    ("figure 1 VC-dimension", `Quick, test_figure1_vc);
    QCheck_alcotest.to_alcotest prop_sauer_shelah;
    QCheck_alcotest.to_alcotest prop_vc_monotone_in_family;
    QCheck_alcotest.to_alcotest prop_restriction_vc;
  ]
