(* Driver-side load generator for [wmark serve] (DESIGN.md 5.11).

     dune exec bench/loadgen.exe -- --requests 200
     dune exec bench/loadgen.exe -- --server _build/default/bin/wmark.exe

   Spawns the server as a child process speaking qpwm-serve/1 over
   stdin/stdout, runs a seeded mixed workload (detect / mark / setw /
   info / batch) against a prepared dataset, and fails — nonzero exit —
   on any [err] response, undecodable frame, or unclean server exit.
   CI uses it as the serve smoke test; locally it doubles as a quick
   throughput probe. *)

open Qpwm

let default_server =
  Filename.concat
    (Filename.concat (Filename.concat "_build" "default") "bin")
    "wmark.exe"

let usage () =
  prerr_endline
    "usage: loadgen [--server PATH] [--requests N] [--n N] [--seed N]";
  exit 2

let rec parse_args server requests n seed = function
  | [] -> (server, requests, n, seed)
  | "--server" :: v :: rest -> parse_args v requests n seed rest
  | "--requests" :: v :: rest -> (
      match int_of_string_opt v with
      | Some r when r > 0 -> parse_args server r n seed rest
      | _ -> usage ())
  | "--n" :: v :: rest -> (
      match int_of_string_opt v with
      | Some x when x >= 10 -> parse_args server requests x seed rest
      | _ -> usage ())
  | "--seed" :: v :: rest -> (
      match int_of_string_opt v with
      | Some s -> parse_args server requests n s rest
      | _ -> usage ())
  | _ -> usage ()

let () =
  let server, requests, n, seed =
    parse_args default_server 200 2_000 7
      (List.tl (Array.to_list Sys.argv))
  in
  if not (Sys.file_exists server) then begin
    Printf.eprintf "loadgen: server executable not found: %s\n" server;
    exit 2
  end;
  let ic, oc =
    Unix.open_process_args server [| server; "serve" |]
  in
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  let at = ref 0 in
  let failures = ref 0 in
  let sent = ref 0 in
  let answered = ref 0 in
  (* One round trip; returns the decoded response or counts a failure. *)
  let call req =
    let payload = Serve_protocol.encode_request req in
    Frame.write oc payload;
    incr sent;
    match Frame.read ic ~at:!at with
    | Error e ->
        Printf.eprintf "loadgen: frame error: %s\n" (Frame.error_to_string e);
        incr failures;
        None
    | Ok None ->
        Printf.eprintf "loadgen: server closed the stream mid-session\n";
        incr failures;
        None
    | Ok (Some (resp, at')) -> (
        at := at';
        match Serve_protocol.decode_response resp with
        | Error m ->
            Printf.eprintf "loadgen: undecodable response: %s\n" m;
            incr failures;
            None
        | Ok r ->
            (match r.Serve_protocol.status with
            | `Ok _ -> incr answered
            | `Err m ->
                Printf.eprintf "loadgen: err response to %s: %s\n"
                  (Serve_protocol.op_name req) m;
                incr failures);
            Some r)
  in
  let must req =
    match call req with
    | Some r when (match r.Serve_protocol.status with `Ok _ -> true | _ -> false)
      -> r
    | _ ->
        Printf.eprintf "loadgen: setup request %s failed\n"
          (Serve_protocol.op_name req);
        exit 1
  in
  (* setup: one dataset, sharded scheme, a mark to detect *)
  let _ = must Serve_protocol.Ping in
  let _ = must (Serve_protocol.Gen { id = "d"; n; seed }) in
  let _ =
    must
      (Serve_protocol.Prepare
         {
           id = "d";
           seed = 11;
           rho = Some 1;
           epsilon = 1.0;
           shard = true;
           qspec = Serve_protocol.Identity;
         })
  in
  let _ = must (Serve_protocol.Mark ("d", "1011001")) in
  (* seeded mixed workload *)
  let g = Prng.create (0x10AD + seed) in
  let t0 = Unix.gettimeofday () in
  for i = 1 to requests do
    let req =
      let r = Prng.int g 100 in
      if r < 45 then
        Serve_protocol.Detect
          { id = "d"; length = 1 + Prng.int g 7; shard = Prng.bool g }
      else if r < 60 then
        Serve_protocol.Batch
          (List.init
             (1 + Prng.int g 8)
             (fun _ ->
               Serve_protocol.encode_request
                 (Serve_protocol.Detect
                    { id = "d"; length = 1 + Prng.int g 7; shard = Prng.bool g })))
      else if r < 75 then
        Serve_protocol.Mark
          ( "d",
            String.init (1 + Prng.int g 7) (fun _ ->
                if Prng.bool g then '1' else '0') )
      else if r < 90 then
        Serve_protocol.Setw
          { id = "d"; value = 100 + Prng.int g 900; elt = [ Prng.int g n ] }
      else if r < 95 then Serve_protocol.Info "d"
      else Serve_protocol.Ping
    in
    ignore (call req);
    ignore i
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  (* stats must answer with a report body *)
  (match call Serve_protocol.Stats with
  | Some r when r.Serve_protocol.body <> None -> ()
  | _ ->
      prerr_endline "loadgen: stats returned no report body";
      incr failures);
  let _ = call Serve_protocol.Shutdown in
  close_out oc;
  (match Unix.close_process (ic, oc) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c ->
      Printf.eprintf "loadgen: server exited with %d\n" c;
      incr failures
  | Unix.WSIGNALED s | Unix.WSTOPPED s ->
      Printf.eprintf "loadgen: server killed by signal %d\n" s;
      incr failures);
  Printf.printf "loadgen: %d requests (%d answered ok) in %.3f s — %.0f req/s, %d failures\n"
    !sent !answered elapsed
    (float_of_int requests /. Float.max elapsed 1e-9)
    !failures;
  exit (if !failures = 0 then 0 else 1)
