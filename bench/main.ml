(* Experiment harness: one table per reproduced artifact of the paper.

     dune exec bench/main.exe            -- all experiments + micro-benches
     dune exec bench/main.exe -- e5 e7   -- a subset
     dune exec bench/main.exe -- --no-speed
     dune exec bench/main.exe -- --jobs 4 --json BENCH_PR2.json

   With --jobs > 1 the experiments themselves are dispatched on the
   {!Par} pool (each experiment's output is captured in a buffer and
   printed in submission order); --json writes per-experiment wall times
   and recorded scalars to a machine-readable trajectory file.

   Experiment ids and the paper artifacts they reproduce are indexed in
   DESIGN.md section 4; paper-vs-measured is recorded in EXPERIMENTS.md. *)

open Qpwm

(* --- output plumbing --------------------------------------------------
   Experiments print through [out].  Under sequential dispatch the sink
   is unset and output streams to stdout; under parallel dispatch each
   experiment task installs a per-task buffer in domain-local storage,
   and the driver prints the buffers in submission order, so the
   rendered report is identical for every job count. *)

let sink : Buffer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let out s =
  match Domain.DLS.get sink with
  | Some b -> Buffer.add_string b s
  | None -> Stdlib.print_string s

let print_string = out
let print_endline s = out s; out "\n"
let print_newline () = out "\n"

module Printf = struct
  let printf fmt = Stdlib.Printf.ksprintf out fmt
  let eprintf = Stdlib.Printf.eprintf
  let sprintf = Stdlib.Printf.sprintf
end

(* Same rendering as Texttab.print, routed through [out]. *)
module Texttab = struct
  include Texttab

  let print ?title t =
    (match title with
    | Some s ->
        print_newline ();
        print_endline s;
        print_endline (String.make (String.length s) '=')
    | None -> ());
    print_string (render t)
end

(* Wall-clock, not CPU time: parallel speedups are invisible to
   [Sys.time], which sums over domains. *)
let secs f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* --- scalar trajectory ------------------------------------------------
   Experiments may record named scalars; --json dumps them next to the
   per-experiment wall time.  Guarded by a mutex: under parallel
   dispatch several experiments record concurrently. *)

let scalar_mutex = Mutex.create ()
let scalars : (string, (string * Json.t) list ref) Hashtbl.t = Hashtbl.create 8

let record_scalars ~experiment kvs =
  Mutex.lock scalar_mutex;
  (match Hashtbl.find_opt scalars experiment with
  | Some r -> r := !r @ kvs
  | None -> Hashtbl.add scalars experiment (ref kvs));
  Mutex.unlock scalar_mutex

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Embed/detect straight from an explicit pair list (E3/E4 use synthetic
   pair sets outside any prepared scheme). *)
let embed_pairs pairs message w =
  Weighted.apply_marks w (Pairing.orientation_marks pairs message)

let read_pairs pairs ~original ~suspect ~length =
  let message = Bitvec.create length in
  List.iteri
    (fun i { Pairing.fst; snd } ->
      if i < length then begin
        let d t = Weighted.get suspect t - Weighted.get original t in
        Bitvec.set message i (d fst - d snd > 0)
      end)
    pairs;
  message

(* ------------------------------------------------------------------ *)
(* E1 — Figures 1-4: the worked example of Section 3. *)

let e1 () =
  header "E1. Figures 1-4: neighborhood types, classes, pair marking";
  let ws = Paper_examples.figure1 in
  let g = ws.Weighted.graph in
  let q = Paper_examples.figure1_query in
  let qs = Query_system.of_relational g q in
  let name x = Structure.name_of g x in
  let ix = Neighborhood.index g ~rho:1 (Query.all_params g q) in
  Printf.printf "ntp(1, G) = %d (paper: 3)\n" (Neighborhood.ntp ix);
  let canonical = Array.to_list ix.Neighborhood.representatives in
  let pairs = Pairing.s_partition qs ~canonical in
  let t = Texttab.create [ "u"; "type"; "W_u"; "cl(u)"; "distortion" ] in
  let classes = Pairing.classes qs ~canonical in
  let marks =
    Pairing.orientation_marks pairs (Codec.of_int ~bits:(List.length pairs) 1)
  in
  let w' = Weighted.apply_marks ws.Weighted.weights marks in
  Structure.iter_universe
    (fun x ->
      let a = Tuple.singleton x in
      let w_u =
        Query_system.result_set qs a |> Tuple.Set.elements
        |> List.map (fun b -> name b.(0))
        |> String.concat " "
      in
      let cl =
        match List.assoc_opt a classes with
        | Some c -> String.concat "," (List.map string_of_int c)
        | None -> "-"
      in
      Texttab.addf t "%s|%d|%s|%s|%+d" (name x)
        (Neighborhood.type_of ix a)
        w_u cl
        (Query_system.f qs w' a - Query_system.f qs ws.Weighted.weights a))
    g;
  Texttab.print t;
  Printf.printf "pairs: %s; max split = %d (certifies |distortion| <= 1)\n"
    (String.concat ", "
       (List.map
          (fun p ->
            Printf.sprintf "(%s,%s)" (name p.Pairing.fst.(0)) (name p.Pairing.snd.(0)))
          pairs))
    (Pairing.max_split qs pairs)

(* ------------------------------------------------------------------ *)
(* E2 — Theorem 1: #Mark(=1) equals the permanent. *)

let e2 () =
  header "E2. Theorem 1: #Mark on the reduction instance vs the permanent";
  let t =
    Texttab.create
      [ "n"; "edges"; "permanent"; "#Mark(all=1)"; "equal"; "perm ms"; "#Mark ms" ]
  in
  List.iter
    (fun (n, p, seed) ->
      let bg =
        if seed = 0 then Bipartite.complete n
        else Bipartite.random (Prng.create seed) ~n ~p
      in
      let edges =
        Array.fold_left
          (fun acc row -> acc + Array.fold_left (fun a b -> if b then a + 1 else a) 0 row)
          0 bg.Bipartite.adj
      in
      let perm, pt = secs (fun () -> Bipartite.permanent bg) in
      let ws, q = Bipartite.to_marking_problem bg in
      let cnt, ct = secs (fun () -> Capacity.count_matchings ws q) in
      Texttab.addf t "%d|%d|%d|%d|%s|%.2f|%.2f" n edges perm cnt
        (if perm = cnt then "yes" else "NO")
        (pt *. 1000.) (ct *. 1000.))
    [ (2, 0.7, 11); (3, 0.7, 16); (3, 0., 0); (4, 0.7, 17); (4, 0., 0); (5, 0.7, 15); (5, 0.7, 17) ];
  Texttab.print t;
  print_endline
    "The counts agree row by row: counting exact-capacity markings computes\n\
     the permanent, the paper's #P-hardness witness.  #Mark cost grows much\n\
     faster than Ryser's 2^n n — the brute force is only usable on toys."

(* ------------------------------------------------------------------ *)
(* E3 — Theorem 2: impossibility on the fully shattered family. *)

let e3 () =
  header "E3. Theorem 2: on shattered families, distortion = bits";
  let t =
    Texttab.create
      [ "n=|W|"; "VC"; "maximal"; "h (+1 marks)"; "max distortion"; "tw(nxn grid) <=" ]
  in
  List.iter
    (fun n ->
      let ws = Shatter.full n in
      let qs = Query_system.of_relational ws.Weighted.graph Shatter.query in
      let vc =
        if n <= 8 then
          string_of_int
            (Vc.dimension (Query_vc.of_query ws.Weighted.graph Shatter.query).Query_vc.fam)
        else "= n"
      in
      let maximal =
        if n <= 8 then
          if Query_vc.maximal_on ws.Weighted.graph Shatter.query then "yes" else "NO"
        else "yes"
      in
      let g = Prng.create (100 + n) in
      List.iter
        (fun h ->
          if h >= 1 && h <= n then begin
            let marked =
              Prng.sample g h (Array.of_list (Query_system.active qs))
            in
            let marks = Array.to_list (Array.map (fun w -> (w, 1)) marked) in
            let d = Distortion.of_marks qs marks in
            (* A *computed* tree-width upper bound for the n x n grid, from
               an actual validated decomposition (the exact value is
               min(w,h) = n). *)
            let grid = (Grid.structure ~w:n ~h:n).Weighted.graph in
            Texttab.addf t "%d|%s|%s|%d|%d|%d" n vc maximal h d
              (Treewidth.heuristic_width grid)
          end)
        [ 1; n / 2; n ])
    [ 4; 8; 12 ];
  Texttab.print t;
  print_endline
    "Every h same-sign distortions cost exactly h on some query (the\n\
     parameter enumerating the marked subset), so hiding |W|^(1-q eps) bits\n\
     within distortion 1/eps is impossible: no watermarking scheme exists.\n\
     Grids realize the same obstruction for MSO (Theorem 6) while their\n\
     tree-width grows (last column: a validated min-degree decomposition's\n\
     width, an upper bound on the exact value n)."

(* ------------------------------------------------------------------ *)
(* E4 — Remark 1: half-shattered family, n/4 bits at distortion 0. *)

let e4 () =
  header "E4. Remark 1: unbounded VC yet n/4 bits at zero distortion";
  let t =
    Texttab.create
      [ "n=|W|"; "VC"; "pairs"; "max split"; "global distortion"; "detected" ]
  in
  List.iter
    (fun n ->
      let ws = Shatter.half n in
      let qs = Query_system.of_relational ws.Weighted.graph Shatter.query in
      let vc =
        if n <= 12 then
          string_of_int
            (Vc.dimension (Query_vc.of_query ws.Weighted.graph Shatter.query).Query_vc.fam)
        else "n/2"
      in
      let rec pair_up = function
        | a :: b :: rest ->
            { Pairing.fst = Tuple.singleton a; snd = Tuple.singleton b }
            :: pair_up rest
        | _ -> []
      in
      let pairs = pair_up (Shatter.half_free n) in
      let bits = List.length pairs in
      let g = Prng.create n in
      let worst = ref 0 and detected = ref 0 in
      let trials = 64 in
      for _ = 1 to trials do
        let message = Codec.random g bits in
        let marked = embed_pairs pairs message ws.Weighted.weights in
        worst := max !worst (Distortion.global qs ws.Weighted.weights marked);
        if
          Bitvec.equal message
            (read_pairs pairs ~original:ws.Weighted.weights ~suspect:marked
               ~length:bits)
        then incr detected
      done;
      Texttab.addf t "%d|%s|%d|%d|%d|%d/%d" n vc bits
        (Pairing.max_split qs pairs)
        !worst !detected trials)
    [ 8; 12; 16; 20 ];
  Texttab.print t;
  print_endline
    "VC grows with n (unbounded on the class) yet n/4 bits embed with zero\n\
     distortion and perfect detection: maximal VC-dimension, not merely\n\
     unbounded, is what Theorem 2 needs."

(* ------------------------------------------------------------------ *)
(* E5 — Theorem 3: the local scheme on bounded-degree structures. *)

let e5 () =
  header "E5. Theorem 3: capacity and certified distortion on STRUCT_k";
  let q = Paper_examples.figure1_query in
  let t =
    Texttab.create
      [ "|U|"; "|W|"; "ntp"; "eps"; "budget"; "capacity"; "max |dist|";
        "detected"; "prepare ms" ]
  in
  List.iter
    (fun n ->
      List.iter
        (fun epsilon ->
          let ws = Random_struct.regular_rings (Prng.create n) ~n in
          let options =
            { Local_scheme.default_options with rho = Some 1; epsilon }
          in
          let scheme, ms = secs (fun () -> Local_scheme.prepare ~options ws q) in
          match scheme with
          | Error e -> Printf.printf "n=%d eps=%.2f: %s\n" n epsilon e
          | Ok scheme ->
              let r = Local_scheme.report scheme in
              let qs = Local_scheme.query_system scheme in
              let g = Prng.create (n + 1) in
              let cap = Local_scheme.capacity scheme in
              let worst = ref 0 and ok = ref 0 in
              let trials = 10 in
              for _ = 1 to trials do
                let message = Codec.random g cap in
                let marked = Local_scheme.mark scheme message ws.Weighted.weights in
                worst := max !worst (Distortion.global qs ws.Weighted.weights marked);
                if
                  Bitvec.equal message
                    (Local_scheme.detect_weights scheme
                       ~original:ws.Weighted.weights ~suspect:marked ~length:cap)
                then incr ok
              done;
              Texttab.addf t "%d|%d|%d|%.2f|%d|%d|%d|%d/%d|%.1f" n
                r.Local_scheme.active r.Local_scheme.ntp epsilon
                r.Local_scheme.budget cap !worst !ok trials (ms *. 1000.))
        [ 1.0; 0.5; 0.25 ])
    [ 40; 80; 160; 320 ];
  Texttab.print t;
  (* Ablation (DESIGN.md 3.3): the paper's randomized eps-good draw vs the
     greedy admission used by default.  Same certificate, different
     capacity and retry behavior. *)
  let t2 =
    Texttab.create
      [ "|W|"; "selection"; "capacity"; "max split"; "prepare ms" ]
  in
  List.iter
    (fun n ->
      let ws = Random_struct.regular_rings (Prng.create n) ~n in
      List.iter
        (fun (name, selection) ->
          let options =
            { Local_scheme.default_options with rho = Some 1; selection }
          in
          let scheme, ms = secs (fun () -> Local_scheme.prepare ~options ws q) in
          match scheme with
          | Error e -> Texttab.addf t2 "%d|%s|%s|-|-" n name e
          | Ok scheme ->
              let r = Local_scheme.report scheme in
              Texttab.addf t2 "%d|%s|%d|%d|%.1f" n name
                r.Local_scheme.pairs_selected r.Local_scheme.max_split
                (ms *. 1000.))
        [ ("greedy", `Greedy); ("random x500", `Random 500) ])
    [ 60; 120; 240 ];
  Texttab.print ~title:"ablation: greedy vs the paper's randomized selection" t2;
  print_endline
    "Capacity grows with |W| and with the allowed distortion 1/eps; the\n\
     measured max distortion never exceeds the certified budget, and\n\
     detection is exact in the non-adversarial model — Theorem 3's shape.\n\
     Both selection rules certify the same worst-case split; greedy\n\
     admission dominates the randomized draw's capacity (the draw's p is\n\
     calibrated for the worst-case eta, which is loose on rings)."

(* ------------------------------------------------------------------ *)
(* E6 — Remark 2: |W| = 5000, 1/eps = 40, 8 bits, 64 copies. *)

let e6 () =
  header "E6. Remark 2: |W| = 5000, distortion budget 40, 64 marked copies";
  let n = 5000 in
  let ws = Random_struct.regular_rings (Prng.create 7) ~n in
  let g = ws.Weighted.graph in
  (* Adjacency evaluated through the Gaifman view: semantically identical
     to psi(u,v) = E(u,v) (the FO evaluator equivalence is covered by the
     test suite); this keeps the 5000-element sweep interactive. *)
  let gf = Gaifman.of_structure g in
  let qs =
    Query_system.of_custom
      ~params:(List.init (Structure.size g) Tuple.singleton)
      ~result_set:(fun a ->
        Tuple.Set.of_list (List.map Tuple.singleton (Gaifman.neighbors gf a.(0))))
      ~weight_arity:1
  in
  let epsilon = 1. /. 40. in
  let options = { Local_scheme.default_options with rho = Some 1; epsilon } in
  let scheme, ms =
    secs (fun () ->
        Local_scheme.prepare ~options ~qs ws Paper_examples.figure1_query)
  in
  match scheme with
  | Error e -> print_endline ("prepare failed: " ^ e)
  | Ok scheme ->
      let r = Local_scheme.report scheme in
      Printf.printf
        "|W| = %d, ntp = %d, capacity = %d pairs, budget = %d (prepare %.0f ms)\n"
        r.Local_scheme.active r.Local_scheme.ntp r.Local_scheme.pairs_selected
        r.Local_scheme.budget (ms *. 1000.);
      let bits = 8 in
      Printf.printf
        "paper arithmetic: |W|^(1/4) = %.1f bits -> embed %d bits -> 2^%d = 64 copies\n"
        (float_of_int n ** 0.25) bits bits;
      let copies =
        List.init 64 (fun i ->
            (i, Local_scheme.mark scheme (Codec.of_int ~bits i) ws.Weighted.weights))
      in
      let all_ok =
        List.for_all
          (fun (i, marked) ->
            Codec.to_int
              (Local_scheme.detect_weights scheme ~original:ws.Weighted.weights
                 ~suspect:marked ~length:bits)
            = i)
          copies
      in
      let distinct =
        List.length
          (List.sort_uniq compare
             (List.map (fun (_, m) -> List.map snd (Weighted.bindings m)) copies))
      in
      let worst =
        List.fold_left
          (fun acc (_, m) -> max acc (Distortion.global qs ws.Weighted.weights m))
          0 copies
      in
      Printf.printf
        "64 copies: %d distinct, all identified: %s, worst distortion %d <= 40\n"
        distinct
        (if all_ok then "yes" else "NO")
        worst

(* ------------------------------------------------------------------ *)
(* E7 — Theorem 5: the tree scheme. *)

let tree_queries =
  lazy
    (let mk text =
       let phi = Parser.mso_of_string text in
       let compiled =
         Mso_compile.compile ~base:[| "a"; "b" |] ~free:[ "x"; "y" ] phi
       in
       Tree_query.of_compiled compiled ~params:[ "x" ] ~results:[ "y" ]
     in
     [
       ("child", mk "S1(x,y) | S2(x,y)");
       ("a-descendant", mk "Leq(x,y) & a(y)");
       ("left-child", mk "S1(x,y)");
     ])

let e7 () =
  header "E7. Theorem 5: pairs found vs the |W|/4m prediction";
  let t =
    Texttab.create
      [ "query"; "m"; "size"; "|W|"; "|W|/4m"; "capacity"; "max |dist|";
        "detected"; "prepare ms" ]
  in
  List.iter
    (fun (qname, q) ->
      List.iter
        (fun size ->
          let g = Prng.create (size + 13) in
          let tree = Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size in
          let scheme, ms = secs (fun () -> Tree_scheme.prepare tree q) in
          match scheme with
          | Error e -> Printf.printf "%s size=%d: %s\n" qname size e
          | Ok scheme ->
              let r = Tree_scheme.report scheme in
              let weights = Trees_gen.random_weights g tree ~lo:10 ~hi:99 in
              let qs = Tree_scheme.query_system scheme in
              let cap = Tree_scheme.capacity scheme in
              let worst = ref 0 and ok = ref 0 in
              let trials = 5 in
              for _ = 1 to trials do
                let message = Codec.random g cap in
                let marked = Tree_scheme.mark scheme message weights in
                worst := max !worst (Distortion.global qs weights marked);
                if
                  Bitvec.equal message
                    (Tree_scheme.detect_weights scheme ~original:weights
                       ~suspect:marked ~length:cap)
                then incr ok
              done;
              Texttab.addf t "%s|%d|%d|%d|%d|%d|%d|%d/%d|%.0f" qname
                r.Tree_scheme.states size r.Tree_scheme.active
                r.Tree_scheme.predicted_pairs cap !worst !ok trials (ms *. 1000.))
        [ 150; 300; 600 ])
    (Lazy.force tree_queries);
  Texttab.print t;
  print_endline
    "Capacity tracks the Theta(|W|/m) prediction (the lemma's |W|/4m with\n\
     behavioral pairing finding twins in most blocks), and the per-message\n\
     distortion never exceeds 1 — stronger than the 1/eps budget the\n\
     theorem asks for."

(* ------------------------------------------------------------------ *)
(* E8 — Lemma 2: MSO-to-automaton compilation. *)

let e8 () =
  header "E8. Lemma 2: compiled automata agree with the MSO oracle";
  let formulas =
    [
      ("label", "a(x)", [ "x" ]);
      ("left child", "S1(x,y)", [ "x"; "y" ]);
      ("tree order", "Leq(x,y)", [ "x"; "y" ]);
      ("has left child", "exists y. S1(x,y)", [ "x" ]);
      ("is root", "forall y. (Leq(y,x) -> y = x)", [ "x" ]);
      ("is leaf", "~(exists y. (S1(x,y) | S2(x,y)))", [ "x" ]);
      ( "grandchild",
        "exists z. ((S1(x,z) | S2(x,z)) & (S1(z,y) | S2(z,y)))",
        [ "x"; "y" ] );
      ( "order via sets",
        "forallS X. ((x in X & forall u. forall v. ((u in X & (S1(u,v) | S2(u,v))) -> v in X)) -> y in X)",
        [ "x"; "y" ] );
    ]
  in
  let t =
    Texttab.create
      [ "formula"; "free"; "states"; "labels"; "compile ms"; "oracle checks"; "agree" ]
  in
  List.iter
    (fun (name, text, free) ->
      let phi = Parser.mso_of_string text in
      let compiled, ms =
        secs (fun () -> Mso_compile.compile ~base:[| "a"; "b" |] ~free phi)
      in
      let g = Prng.create 77 in
      let checks = ref 0 and agree = ref true in
      for _ = 1 to 6 do
        let size = 1 + Prng.int g 7 in
        let tree = Trees_gen.random_tree g ~alphabet:[ "a"; "b" ] ~size in
        let struct_view = Btree.to_structure tree in
        let rec assignments = function
          | [] -> [ [] ]
          | v :: rest ->
              List.concat_map
                (fun partial -> List.init size (fun node -> (v, node) :: partial))
                (assignments rest)
        in
        List.iter
          (fun elems ->
            incr checks;
            let a = Mso_compile.accepts compiled tree ~elems ~sets:[] in
            let o = Mso.holds struct_view ~elems ~sets:[] phi in
            if a <> o then agree := false)
          (assignments free)
      done;
      Texttab.addf t "%s|%d|%d|%d|%.1f|%d|%s" name (List.length free)
        (Dta.nstates compiled.Mso_compile.auto)
        (Alphabet.size compiled.Mso_compile.alpha)
        (ms *. 1000.) !checks
        (if !agree then "yes" else "NO"))
    formulas;
  Texttab.print t

(* ------------------------------------------------------------------ *)
(* E9 — Example 4 at scale: XML watermarking. *)

let e9 () =
  header "E9. Example 4: XML school documents";
  let pattern = School_xml.example4_pattern in
  Printf.printf "f(Robert) on the paper's document = %d (paper: 28)\n"
    (Pattern.f_value pattern School_xml.example4 "Robert");
  let t =
    Texttab.create
      [ "students"; "nodes"; "|W|"; "m"; "capacity"; "node dist <= 1";
        "worst value dist"; "detected"; "prepare ms" ]
  in
  List.iter
    (fun students ->
      let doc = School_xml.generate (Prng.create students) ~students () in
      let prepared, ms = secs (fun () -> Pipeline.prepare_xml doc pattern) in
      match prepared with
      | Error e -> Printf.printf "students=%d: %s\n" students e
      | Ok xs ->
          let r = Tree_scheme.report xs.Pipeline.scheme in
          let cap = Tree_scheme.capacity xs.Pipeline.scheme in
          let message = Codec.random (Prng.create (students + 1)) cap in
          let marked = Pipeline.mark_xml xs ~message doc in
          let node_ok =
            List.for_all
              (fun a ->
                let sum d =
                  List.fold_left
                    (fun s v -> s + Option.value ~default:0 (Utree.value_of d v))
                    0 (Pattern.eval_node pattern d a)
                in
                abs (sum marked - sum doc) <= 1)
              (Pattern.structural_params pattern doc)
          in
          let names =
            List.sort_uniq compare
              (List.map (Utree.label doc) (Pattern.structural_params pattern doc))
          in
          let worst_value =
            List.fold_left
              (fun acc n ->
                max acc
                  (abs
                     (Pattern.f_value pattern marked n
                     - Pattern.f_value pattern doc n)))
              0 names
          in
          let decoded =
            Pipeline.detect_xml xs ~original:doc ~suspect:marked ~length:cap
          in
          Texttab.addf t "%d|%d|%d|%d|%d|%s|%d|%s|%.0f" students
            (Utree.size doc) r.Tree_scheme.active r.Tree_scheme.states cap
            (if node_ok then "yes" else "NO")
            worst_value
            (if Bitvec.equal decoded message then "yes" else "NO")
            (ms *. 1000.))
    [ 30; 100; 300 ];
  Texttab.print t;
  (* A second, deeper document family: bibliography//article[author=$a]/
     citations — the descendant axis in anger. *)
  let bpattern = Biblio_xml.pattern in
  let t2 =
    Texttab.create
      [ "articles"; "nodes"; "|W|"; "m"; "capacity"; "node dist <= 1";
        "detected"; "prepare ms" ]
  in
  List.iter
    (fun articles ->
      let doc = Biblio_xml.generate (Prng.create articles) ~articles () in
      let prepared, ms = secs (fun () -> Pipeline.prepare_xml doc bpattern) in
      match prepared with
      | Error e -> Printf.printf "articles=%d: %s\n" articles e
      | Ok xs ->
          let r = Tree_scheme.report xs.Pipeline.scheme in
          let cap = Tree_scheme.capacity xs.Pipeline.scheme in
          let message = Codec.random (Prng.create (articles + 1)) cap in
          let marked = Pipeline.mark_xml xs ~message doc in
          let node_ok =
            List.for_all
              (fun a ->
                let sum d =
                  List.fold_left
                    (fun s v -> s + Option.value ~default:0 (Utree.value_of d v))
                    0 (Pattern.eval_node bpattern d a)
                in
                abs (sum marked - sum doc) <= 1)
              (Pattern.structural_params bpattern doc)
          in
          let decoded =
            Pipeline.detect_xml xs ~original:doc ~suspect:marked ~length:cap
          in
          Texttab.addf t2 "%d|%d|%d|%d|%d|%s|%s|%.0f" articles
            (Utree.size doc) r.Tree_scheme.active r.Tree_scheme.states cap
            (if node_ok then "yes" else "NO")
            (if Bitvec.equal decoded message then "yes" else "NO")
            (ms *. 1000.))
    [ 40; 120 ];
  Texttab.print
    ~title:"bibliography//article[author=$a]/citations (descendant axis)" t2;
  print_endline
    "Node-level distortion respects the Theorem 5 certificate everywhere;\n\
     value-level distortion (a first name unions its occurrences) stays\n\
     far below the occurrence-count bound.  The nested bibliography family\n\
     exercises the // axis end to end."

(* ------------------------------------------------------------------ *)
(* E10 — Fact 1: detection under attack, redundancy sweep. *)

let e10 () =
  header "E10. Fact 1: detection rate vs attacker budget and redundancy";
  let ws = Random_struct.regular_rings (Prng.create 11) ~n:160 in
  let q = Paper_examples.figure1_query in
  let options = { Local_scheme.default_options with rho = Some 1 } in
  match Local_scheme.prepare ~options ws q with
  | Error e -> print_endline e
  | Ok scheme ->
      let base = Robust.of_local scheme in
      let qs = Local_scheme.query_system scheme in
      let active = Query_system.active qs in
      let bits = 4 in
      let trials = 25 in
      let t =
        Texttab.create [ "attack"; "budget d'"; "R=1"; "R=3"; "R=5" ]
      in
      let rate times attack_of seed budget_out =
        if times * bits > base.Robust.capacity then "n/a"
        else begin
          let ok = ref 0 in
          for k = 1 to trials do
            let g = Prng.create (seed + k) in
            let message = Codec.random g bits in
            let marked = Robust.mark base ~times message ws.Weighted.weights in
            let attacked = Adversary.apply g (attack_of ()) ~active marked in
            budget_out := max !budget_out (Distortion.global qs marked attacked);
            let decoded =
              Robust.detect base ~times ~length:bits
                ~original:ws.Weighted.weights
                ~server:(Query_system.server qs attacked)
            in
            if Bitvec.equal decoded message then incr ok
          done;
          Printf.sprintf "%.2f" (float_of_int !ok /. float_of_int trials)
        end
      in
      let row name attack_of seed =
        let budget = ref 0 in
        let r1 = rate 1 attack_of seed budget in
        let r3 = rate 3 attack_of (seed + 1000) budget in
        let r5 = rate 5 attack_of (seed + 2000) budget in
        Texttab.add_row t [ name; string_of_int !budget; r1; r3; r5 ]
      in
      row "none" (fun () -> Adversary.Constant_offset { delta = 0 }) 1;
      row "offset +9" (fun () -> Adversary.Constant_offset { delta = 9 }) 2;
      List.iter
        (fun count ->
          row
            (Printf.sprintf "%d flips +-1" count)
            (fun () -> Adversary.Random_flips { count; amplitude = 1 })
            (10 + count))
        [ 4; 16; 48; 120 ];
      row "uniform noise +-1" (fun () -> Adversary.Uniform_noise { amplitude = 1 }) 3;
      row "uniform noise +-2" (fun () -> Adversary.Uniform_noise { amplitude = 2 }) 4;
      Texttab.print t;
      print_endline
        "Higher redundancy survives bigger budgets; offsets are free for the\n\
         attacker but useless (pair differences cancel them) — the Fact 1\n\
         crossover in action."

(* ------------------------------------------------------------------ *)
(* E11 — Theorems 7-8: incremental updates and auto-collusion. *)

let e11 () =
  header "E11. Incremental updates";
  let ws = Random_struct.regular_rings (Prng.create 5) ~n:100 in
  let q = Paper_examples.figure1_query in
  let options = { Local_scheme.default_options with rho = Some 1 } in
  match Local_scheme.prepare ~options ws q with
  | Error e -> print_endline e
  | Ok scheme ->
      let bits = min 8 (Local_scheme.capacity scheme) in
      let t = Texttab.create [ "scenario"; "outcome" ] in
      let g = Prng.create 17 in
      (* Theorem 7 sweep: random weights-only updates. *)
      let ok = ref 0 in
      let trials = 20 in
      for _ = 1 to trials do
        let message = Codec.random g bits in
        let marked = Local_scheme.mark scheme message ws.Weighted.weights in
        let updated =
          List.fold_left
            (fun w t ->
              if Prng.bernoulli g 0.4 then Weighted.add_delta w t (Prng.int g 100)
              else w)
            ws.Weighted.weights
            (Weighted.support ws.Weighted.weights)
        in
        let propagated =
          Incremental.propagate ~original:ws.Weighted.weights ~marked ~updated
        in
        if
          Bitvec.equal message
            (Local_scheme.detect_weights scheme ~original:updated
               ~suspect:propagated ~length:bits)
        then incr ok
      done;
      Texttab.addf t "weights-only updates (Thm 7)|%d/%d detected" !ok trials;
      (* Theorem 8: type-preservation decisions. *)
      let triangles k =
        Structure.add_pairs
          (Structure.create Schema.graph (3 * k))
          "E"
          (List.concat_map
             (fun c ->
               let b = 3 * c in
               List.concat_map
                 (fun (x, y) -> [ (b + x, b + y); (b + y, b + x) ])
                 [ (0, 1); (1, 2); (2, 0) ])
             (List.init k Fun.id))
      in
      let verdict old_g new_g =
        match
          Incremental.update_decision ~rho:1 ~arity:1 ~old_graph:old_g
            ~new_graph:new_g
        with
        | `Keep_mark -> "keep mark"
        | `Remark_required -> "re-mark required"
      in
      Texttab.addf t "insert a triangle (Thm 8)|%s"
        (verdict (triangles 4) (triangles 6));
      Texttab.addf t "bridge two triangles (Thm 8)|%s"
        (verdict (triangles 4)
           (Structure.add_pairs (triangles 4) "E" [ (0, 3); (3, 0) ]));
      (* Auto-collusion. *)
      let m1 = Codec.random (Prng.create 3) bits in
      let m2 = Codec.random (Prng.create 4) bits in
      let c1 = Local_scheme.mark scheme m1 ws.Weighted.weights in
      let c2 = Local_scheme.mark scheme m2 ws.Weighted.weights in
      let avg = Incremental.average c1 c2 in
      let d1 =
        Codec.hamming m1
          (Local_scheme.detect_weights scheme ~original:ws.Weighted.weights
             ~suspect:avg ~length:bits)
      in
      Texttab.addf t "auto-collusion: average 2 copies|%d/%d bits still read as copy 1"
        (bits - d1) bits;
      Texttab.print t;
      print_endline
        "Weights-only updates never lose the mark; structural updates are\n\
         safe exactly when type-preserving; averaging two versions destroys\n\
         the disagreeing bits (only bits where both copies agree survive)."

(* ------------------------------------------------------------------ *)
(* E12 — the Agrawal-Kiernan comparison. *)

let e12 () =
  header "E12. Query distortion: Agrawal-Kiernan vs the Theorem 3 scheme";
  let ws = Random_struct.travel (Prng.create 21) ~travels:100 ~transports:250 in
  let q = Random_struct.travel_query in
  let qs = Query_system.of_relational ws.Weighted.graph q in
  let stats w =
    let a =
      Array.of_list
        (List.map (fun (_, v) -> float_of_int v) (Weighted.bindings w))
    in
    (Stats.mean a, Stats.stddev a)
  in
  let m0, s0 = stats ws.Weighted.weights in
  let t =
    Texttab.create
      [ "scheme"; "touched"; "mean shift"; "stddev shift"; "max query dist";
        "detected"; "rounding(8)" ]
  in
  List.iter
    (fun (gamma, xi) ->
      let p = { Agrawal_kiernan.key = 0xFEED; gamma; xi } in
      let marked = Agrawal_kiernan.mark p ws.Weighted.weights in
      let m1, s1 = stats marked in
      let attacked =
        Adversary.apply (Prng.create 9)
          (Adversary.Rounding { multiple = 8 })
          ~active:(Weighted.support marked) marked
      in
      Texttab.addf t "AK gamma=%d xi=%d|%d|%.2f|%.2f|%d|%s|%s" gamma xi
        (List.length (Agrawal_kiernan.marked_positions p ws.Weighted.weights))
        (m1 -. m0) (s1 -. s0)
        (Distortion.global qs ws.Weighted.weights marked)
        (if Agrawal_kiernan.is_detected p marked then "yes" else "NO")
        (if Agrawal_kiernan.is_detected p attacked then "survives" else "erased"))
    [ (8, 2); (4, 4); (2, 6) ];
  (let options = { Local_scheme.default_options with rho = Some 1 } in
   match Local_scheme.prepare ~options ws q with
   | Error e -> print_endline e
   | Ok scheme ->
       let cap = Local_scheme.capacity scheme in
       let message = Codec.random (Prng.create 2) cap in
       let marked = Local_scheme.mark scheme message ws.Weighted.weights in
       let m1, s1 = stats marked in
       let attacked =
         Adversary.apply (Prng.create 9)
           (Adversary.Rounding { multiple = 8 })
           ~active:(Query_system.active qs) marked
       in
       let after_attack =
         Local_scheme.detect_weights scheme ~original:ws.Weighted.weights
           ~suspect:attacked ~length:cap
       in
       let survived = cap - Codec.hamming message after_attack in
       Texttab.addf t "Theorem 3 (%d bits)|%d|%.2f|%.2f|%d|%s|%d/%d bits" cap
         (2 * cap) (m1 -. m0) (s1 -. s0)
         (Distortion.global qs ws.Weighted.weights marked)
         (if
            Bitvec.equal message
              (Local_scheme.detect_weights scheme ~original:ws.Weighted.weights
                 ~suspect:marked ~length:cap)
          then "yes"
          else "NO")
         survived cap);
  Texttab.print t;
  print_endline
    "Both preserve global mean/stddev (the only guarantee [1] gives), but\n\
     AK's max parametric-query distortion grows with gamma and xi while the\n\
     Theorem 3 scheme's stays at its certificate of 1.  Low-bit laundering\n\
     (rounding) erases AK; our pair differences partially survive it and\n\
     redundancy (E10) recovers the rest."

(* ------------------------------------------------------------------ *)
(* E13 — ablation: the aggregate swap (note in Section 1).  The sum in f
   can be replaced by mean, min or max without losing the positive
   results. *)

let e13 () =
  header "E13. Aggregate ablation: sum vs mean/min/max under pair marking";
  let q = Paper_examples.figure1_query in
  let t =
    Texttab.create
      [ "|W|"; "bits"; "max sum dist"; "max mean dist"; "max min dist"; "max max dist" ]
  in
  List.iter
    (fun n ->
      let ws = Random_struct.regular_rings (Prng.create n) ~n in
      let options = { Local_scheme.default_options with rho = Some 1 } in
      match Local_scheme.prepare ~options ws q with
      | Error e -> print_endline e
      | Ok scheme ->
          let qs = Local_scheme.query_system scheme in
          let cap = Local_scheme.capacity scheme in
          let g = Prng.create (n * 3) in
          let worst = Array.make 4 0. in
          for _ = 1 to 8 do
            let marked =
              Local_scheme.mark scheme (Codec.random g cap) ws.Weighted.weights
            in
            List.iteri
              (fun i agg ->
                worst.(i) <-
                  Float.max worst.(i)
                    (Distortion.global_agg agg qs ws.Weighted.weights marked))
              [ Distortion.Sum; Distortion.Mean; Distortion.Min; Distortion.Max ]
          done;
          Texttab.addf t "%d|%d|%.2f|%.2f|%.2f|%.2f" n cap worst.(0) worst.(1)
            worst.(2) worst.(3))
    [ 60; 120; 240 ];
  Texttab.print t;
  print_endline
    "All four aggregates stay within the certificate: sums by the split\n\
     argument, means because a contained pair contributes 0 and a split\n\
     pair at most 1/|W_a|, min/max because every weight moves by <= 1."

(* ------------------------------------------------------------------ *)
(* E14 — several registered queries at once. *)

let e14 () =
  header "E14. Multi-query preservation (psi_1, ..., psi_k simultaneously)";
  let adjacency = Paper_examples.figure1_query in
  let two_away =
    Query.make ~params:[ "u" ] ~results:[ "v" ]
      Fo.(exists "w" (atom "E" [ "u"; "w" ] &&& atom "E" [ "w"; "v" ]))
  in
  let t =
    Texttab.create
      [ "|U|"; "queries"; "capacity"; "budget"; "dist q1"; "dist q2"; "detected" ]
  in
  List.iter
    (fun n ->
      let ws = Random_struct.regular_rings (Prng.create (n + 2)) ~n in
      let options = { Local_scheme.default_options with rho = Some 2 } in
      match Multi_scheme.prepare ~options ws [ adjacency; two_away ] with
      | Error e -> Printf.printf "n=%d: %s\n" n e
      | Ok scheme ->
          let r = Multi_scheme.report scheme in
          let cap = Multi_scheme.capacity scheme in
          let g = Prng.create 4 in
          let worst = Array.make 2 0 in
          let ok = ref 0 in
          let trials = 8 in
          for _ = 1 to trials do
            let message = Codec.random g cap in
            let marked = Multi_scheme.mark scheme message ws.Weighted.weights in
            List.iter
              (fun (qi, d) -> worst.(qi) <- max worst.(qi) d)
              (Multi_scheme.distortion scheme ws.Weighted.weights marked);
            if
              Bitvec.equal message
                (Multi_scheme.detect_weights scheme ~original:ws.Weighted.weights
                   ~suspect:marked ~length:cap)
            then incr ok
          done;
          Texttab.addf t "%d|%d|%d|%d|%d|%d|%d/%d" n r.Multi_scheme.queries cap
            r.Multi_scheme.budget worst.(0) worst.(1) !ok trials)
    [ 40; 80; 160 ];
  Texttab.print t;
  print_endline
    "One pair selection certifies both registered queries at once — the\n\
     paper's 'straightforward by simple projection techniques' extension."

(* ------------------------------------------------------------------ *)
(* E15 — detection statistics: confidence, false positives, collusion. *)

let e15 () =
  header "E15. Detection statistics: confidence, false positives, collusion";
  let ws = Random_struct.regular_rings (Prng.create 19) ~n:120 in
  let q = Paper_examples.figure1_query in
  let options = { Local_scheme.default_options with rho = Some 1 } in
  match Local_scheme.prepare ~options ws q with
  | Error e -> print_endline e
  | Ok scheme ->
      let cap = min 12 (Local_scheme.capacity scheme) in
      let g = Prng.create 23 in
      let message = Codec.random g cap in
      let verdict_of suspect =
        Detector.read_weights (Local_scheme.pairs scheme)
          ~original:ws.Weighted.weights ~suspect ~length:cap
      in
      let t =
        Texttab.create
          [ "suspect"; "strong"; "weak"; "silent"; "confidence"; "marked?"; "p(match id)" ]
      in
      let row name suspect =
        let v = verdict_of suspect in
        Texttab.addf t "%s|%d|%d|%d|%.2f|%s|%.2g" name v.Detector.strong
          v.Detector.weak v.Detector.silent v.Detector.confidence
          (if Detector.is_marked v then "yes" else "no")
          (Detector.match_pvalue ~expected:message v)
      in
      row "marked copy" (Local_scheme.mark scheme message ws.Weighted.weights);
      row "original (innocent twin)" ws.Weighted.weights;
      row "innocent with +-1 noise"
        (Adversary.apply (Prng.create 5)
           (Adversary.Uniform_noise { amplitude = 1 })
           ~active:(Query_system.active (Local_scheme.query_system scheme))
           ws.Weighted.weights);
      List.iter
        (fun k ->
          let copies =
            List.init k (fun _ ->
                Local_scheme.mark scheme (Codec.random g cap) ws.Weighted.weights)
          in
          row
            (Printf.sprintf "%d-party collusion (average)" k)
            (Incremental.average_many copies))
        [ 2; 4; 8 ];
      Texttab.print t;
      print_endline
        "A marked copy shows every carrier intact (confidence 1, p ~ 2^-bits);\n\
         innocent servers show silence and no significant match; colluders\n\
         erode the strong-carrier count as k grows — the false-positive side\n\
         of Fact 1's limited-knowledge assumption, quantified."

(* ------------------------------------------------------------------ *)
(* E16 — Theorem 4: bounded clique-width via parse trees. *)

let e16 () =
  header "E16. Theorem 4: watermarking bounded clique-width graphs";
  let t =
    Texttab.create
      [ "graph"; "n"; "max degree"; "cwd <="; "m"; "capacity";
        "graph-query dist"; "detected" ]
  in
  let run ?(distance2 = false) name term labels =
    let tree = Cw_parse.to_tree ~labels term in
    let q =
      if distance2 then Cw_adjacency.distance2_query ~labels
      else Cw_adjacency.query ~labels
    in
    match Tree_scheme.prepare tree q with
    | Error e -> Printf.printf "%s: %s\n" name e
    | Ok scheme ->
        let graph = Cw_term.eval term in
        let gf = Gaifman.of_structure graph in
        let n = Structure.size graph in
        let graph_w =
          Weighted.of_list 1 (List.init n (fun i -> (Tuple.singleton i, 50 + i)))
        in
        let tw = Cw_parse.vertex_weights tree graph_w in
        let cap = Tree_scheme.capacity scheme in
        let g = Prng.create 3 in
        let worst = ref 0 and ok = ref 0 in
        let trials = 5 in
        let f w u =
          List.fold_left
            (fun s v -> s + Weighted.get_elt w v)
            0 (Gaifman.neighbors gf u)
        in
        for _ = 1 to trials do
          let message = Codec.random g cap in
          let marked_tw = Tree_scheme.mark scheme message tw in
          (if distance2 then
             (* graph query = distance-2 neighborhood sums; equal to the
                tree-side view by the tested correspondence *)
             worst :=
               max !worst
                 (Distortion.global (Tree_scheme.query_system scheme) tw marked_tw)
           else begin
             let marked_gw = Cw_parse.weights_to_graph tree marked_tw in
             Structure.iter_universe
               (fun u -> worst := max !worst (abs (f marked_gw u - f graph_w u)))
               graph
           end);
          if
            Bitvec.equal message
              (Tree_scheme.detect_weights scheme ~original:tw ~suspect:marked_tw
                 ~length:cap)
          then incr ok
        done;
        Texttab.addf t "%s|%d|%d|%d|%d|%d|%d|%d/%d" name n
          (Gaifman.max_degree gf) labels
          (Tree_scheme.report scheme).Tree_scheme.states cap !worst !ok trials
  in
  run "clique K40" (Cw_term.clique 40) 2;
  run "clique K80" (Cw_term.clique 80) 2;
  run "path P80" (Cw_term.path 80) 3;
  run "random cwd<=3, 60 v"
    (Cw_term.random (Prng.create 31) ~labels:3 ~vertices:60) 3;
  run "random cwd<=4, 100 v"
    (Cw_term.random (Prng.create 37) ~labels:4 ~vertices:100) 4;
  run ~distance2:true "K60, distance-2 query" (Cw_term.clique 60) 2;
  Texttab.print t;
  print_endline
    "Cliques have unbounded degree (Theorem 3's k blows up with n) but\n\
     clique-width 2: the parse-tree automaton has a size independent of\n\
     degree, and the marked parse-tree weights bound the distortion of the\n\
     *graph* adjacency query by 1 — Theorem 4 end to end."

(* ------------------------------------------------------------------ *)
(* E17 — indirect access on a query budget: how much of the mark a
   detector recovers when it can only afford a fraction of the possible
   queries.  (The paper's detector asks *all* parameters; a practical owner
   probing a pirate web form cannot.) *)

let e17 () =
  header "E17. Detection under a query budget (partial indirect access)";
  let ws = Random_struct.regular_rings (Prng.create 29) ~n:200 in
  let q = Paper_examples.figure1_query in
  match Local_scheme.prepare ws q with
  | Error e -> print_endline e
  | Ok scheme ->
      let qs = Local_scheme.query_system scheme in
      let cap = min 16 (Local_scheme.capacity scheme) in
      let params = Array.of_list (Query_system.params qs) in
      let t =
        Texttab.create
          [ "queries asked"; "fraction"; "carriers seen"; "bits correct"; "full id" ]
      in
      let trials = 20 in
      List.iter
        (fun fraction ->
          let asked = max 1 (int_of_float (fraction *. float_of_int (Array.length params))) in
          let seen = ref 0 and correct = ref 0 and full = ref 0 in
          for k = 1 to trials do
            let g = Prng.create (1000 + k) in
            let message = Codec.random g cap in
            let marked = Local_scheme.mark scheme message ws.Weighted.weights in
            let server = Query_system.server qs marked in
            let subset = Array.to_list (Prng.sample g asked params) in
            let observed = Query_system.reconstruct_some qs server subset in
            let v =
              Detector.read (Local_scheme.pairs scheme)
                ~original:ws.Weighted.weights ~observed ~length:cap
            in
            seen := !seen + v.Detector.strong + v.Detector.weak;
            correct := !correct + (cap - Codec.hamming message v.Detector.decoded);
            if Bitvec.equal message v.Detector.decoded then incr full
          done;
          Texttab.addf t "%d|%.2f|%.1f/%d|%.1f/%d|%d/%d" asked fraction
            (float_of_int !seen /. float_of_int trials)
            cap
            (float_of_int !correct /. float_of_int trials)
            cap !full trials)
        [ 0.02; 0.05; 0.1; 0.25; 0.5; 1.0 ];
      Texttab.print t;
      print_endline
        "Carriers become visible as soon as some asked parameter's result\n\
         set contains them; on rings each element sits in two parameters'\n\
         results, so coverage (hence recovered bits) rises quickly with the\n\
         budget and full identification needs only a modest fraction."

(* ------------------------------------------------------------------ *)
(* E18 — the paper's "note on relative error": marking by relative
   perturbation (w -> w(1 +- eps)) trivially bounds *relative* query
   distortion by eps, but (1) small weights get fragile, often vanishing
   marks, and (2) absolute distortion scales with the weights, which is
   wrong when "error is less tolerable as weights increase". *)

let e18 () =
  header "E18. Relative vs absolute perturbation (the note on relative error)";
  let q = Paper_examples.figure1_query in
  let eps = 0.01 in
  let t =
    Texttab.create
      [ "scheme"; "weights"; "abs global dist"; "local dist";
        "dead pairs"; "bits recovered" ]
  in
  let run label weigh_fn =
    let g = (Random_struct.regular_rings (Prng.create 3) ~n:120).Weighted.graph in
    let ws = Weighted.weigh weigh_fn g in
    let scheme =
      match Local_scheme.prepare ws q with Ok s -> s | Error e -> failwith e
    in
    let qs = Local_scheme.query_system scheme in
    let pairs = Local_scheme.pairs scheme in
    let cap = List.length pairs in
    let message = Codec.random (Prng.create 4) cap in
    (* Relative marking: a bit orients the pair as (x(1+eps), x(1-eps)),
       rounded back to integers — the scheme the note dismisses. *)
    let scale w tup d =
      let v = Weighted.get w tup in
      Weighted.set w tup
        (int_of_float (Float.round (float_of_int v *. (1. +. (d *. eps)))))
    in
    let rel =
      List.fold_left
        (fun (w, i) { Pairing.fst; snd } ->
          let dir = if Bitvec.get message i then 1. else -1. in
          (scale (scale w fst dir) snd (-.dir), i + 1))
        (ws.Weighted.weights, 0) pairs
      |> fst
    in
    let report name marked =
      let dead =
        List.fold_left
          (fun acc { Pairing.fst; snd } ->
            let moved tup =
              Weighted.get marked tup <> Weighted.get ws.Weighted.weights tup
            in
            if moved fst || moved snd then acc else acc + 1)
          0 pairs
      in
      let v =
        Detector.read_weights pairs ~original:ws.Weighted.weights
          ~suspect:marked ~length:cap
      in
      Texttab.addf t "%s|%s|%d|%d|%d/%d|%d/%d" name label
        (Distortion.global qs ws.Weighted.weights marked)
        (Weighted.local_distance ws.Weighted.weights marked)
        dead cap
        (cap - Codec.hamming message v.Detector.decoded)
        cap
    in
    report "relative 1%" rel;
    report "absolute +-1" (Local_scheme.mark scheme message ws.Weighted.weights)
  in
  run "tiny (1..4)" (fun v -> 1 + (v mod 4));
  run "large (~10^4)" (fun v -> 10_000 + v);
  Texttab.print t;
  print_endline
    "Relative marking keeps the *relative* distortion at 1% by fiat, but\n\
     pairs of small weights round back to themselves (no recoverable\n\
     signal), and on large weights the absolute query distortion is two\n\
     orders of magnitude above the +-1 scheme's certificate — both\n\
     objections of the paper's note, measured."

(* ------------------------------------------------------------------ *)
(* E19 — structural attacks and survivable detection.  A redistributor
   who deletes rows, samples a subset, renumbers the universe or prunes
   XML subtrees defeats any detector keyed by element/node id.  The
   survivable detector realigns the surviving carriers (names for rows,
   path signatures for XML value nodes), treats the rest as erasures,
   and conditions its p-value on what survived. *)

let e19 () =
  header "E19. Structural attacks: erasures, realignment, survivability";
  (* Relational: the full deterministic grid of attack_suite. *)
  let ws =
    Random_struct.travel (Prng.create 19) ~travels:100 ~transports:400
  in
  let q = Random_struct.travel_query in
  (match
     Attack_suite.run ~seed:19 ~redundancies:[ 1; 5 ] ~message_bits:4
       ~workload:"travel database (100 travels, 400 transports)" ws q
   with
  | Error e -> print_endline e
  | Ok report -> print_string (Attack_suite.render report));
  (* XML: the same story against subtree deletion and reordering. *)
  let students = 300 in
  let doc = School_xml.generate (Prng.create 20) ~students () in
  let p = School_xml.example4_pattern in
  match Pipeline.prepare_xml doc p with
  | Error e -> print_endline e
  | Ok xs ->
      let scheme = xs.Pipeline.scheme in
      let bits = 4 in
      let base = Robust.of_tree scheme in
      let times = Robust.redundancy_for base ~message_length:bits in
      let message = Codec.of_int ~bits 0b1011 in
      let marked =
        Utree.with_weights doc
          (Robust.mark base ~times message (Utree.weights doc))
      in
      let t =
        Texttab.create
          [ "tree attack"; "erased"; "p-value"; "survivable"; "aligned" ]
      in
      List.iteri
        (fun i attack ->
          let g = Prng.create (100 + i) in
          let suspect = Adversary.apply_tree g attack marked in
          let rv, _ =
            Survivable.detect_tree
              ~pairs:(Tree_scheme.pairs scheme)
              ~times ~length:bits ~original:doc suspect
          in
          let naive =
            match
              Pipeline.detect_xml xs ~original:doc ~suspect ~length:(bits * times)
            with
            | decoded ->
                Bitvec.equal message (Codec.majority_decode ~times decoded)
            | exception _ -> false
          in
          Texttab.addf t "%s|%d/%d|%.2g|%s|%s"
            (Adversary.describe_tree attack)
            rv.Survivable.carriers.Detector.erased (times * bits)
            (Survivable.match_pvalue ~expected:message rv)
            (if Bitvec.equal message rv.Survivable.message then "recovered"
             else "LOST")
            (if naive then "recovered" else "LOST"))
        [
          Adversary.Delete_subtrees { fraction = 0.1 };
          Adversary.Delete_subtrees { fraction = 0.25 };
          Adversary.Reorder_siblings;
          Adversary.Strip_values { fraction = 0.2 };
        ];
      Printf.printf "\nXML (school, %d students): %d bits at redundancy %d\n"
        students bits times;
      Texttab.print t;
      print_endline
        "Deleting rows or subtrees erases carriers instead of flipping\n\
         them: the erasure-aware majority still recovers the message and\n\
         the p-value is computed over survivors only, while the id-keyed\n\
         aligned detector reads garbage as soon as ids shift."

(* ------------------------------------------------------------------ *)
(* E20 — strong scaling of the wm_par pool: the two heaviest parallel
   call sites (neighborhood type indexing, the attack grid) swept over
   job counts, asserting along the way that every job count produces the
   jobs=1 result bit for bit.  Run it alone (bench e20) for clean
   timings: under parallel dispatch of the whole suite the sweeps share
   the machine with other experiments. *)

let e20 () =
  header "E20. Strong scaling: wm_par pool, jobs in {1, 2, 4}";
  let job_counts = [ 1; 2; 4 ] in
  Printf.printf "recommended domains on this machine: %d\n"
    (Domain.recommended_domain_count ());
  let t =
    Texttab.create [ "workload"; "jobs"; "wall s"; "speedup"; "= jobs 1" ]
  in
  let sweep name run equal =
    let baseline = ref None in
    let t1 = ref 1.0 in
    List.iter
      (fun j ->
        let x, dt = secs (fun () -> run j) in
        let same =
          match !baseline with
          | None ->
              baseline := Some x;
              t1 := dt;
              true
          | Some b -> equal b x
        in
        Texttab.addf t "%s|%d|%.3f|%.2fx|%s" name j dt (!t1 /. dt)
          (if same then "yes" else "NO");
        record_scalars ~experiment:"e20"
          [
            (Printf.sprintf "%s_wall_s_j%d" name j, Json.Float dt);
            (Printf.sprintf "%s_speedup_j%d" name j, Json.Float (!t1 /. dt));
            (Printf.sprintf "%s_identical_j%d" name j, Json.Bool same);
          ];
        if not same then
          failwith (Printf.sprintf "e20: %s at jobs=%d diverged from jobs=1" name j))
      job_counts
  in
  (* Workload A: rho-2 type indexing of a bounded-degree random graph —
     sphere extraction plus in-bucket isomorphism, the Theorem 3
     preprocessing cost. *)
  let wsa = Random_struct.graph (Prng.create 41) ~n:420 ~max_degree:6 ~edges:940 in
  let ga = wsa.Weighted.graph in
  sweep "ntp-index"
    (fun j -> Neighborhood.index_universe ~jobs:j ga ~rho:2 ~arity:1)
    (fun (a : Neighborhood.index) b ->
      Tuple.Map.equal ( = ) a.Neighborhood.types b.Neighborhood.types
      && a.Neighborhood.representatives = b.Neighborhood.representatives);
  (* Workload B: the E19 attack grid at redundancy 5, one pool task per
     cell. *)
  let wsb = Random_struct.travel (Prng.create 19) ~travels:100 ~transports:400 in
  sweep "attack-grid"
    (fun j ->
      match
        Attack_suite.run ~jobs:j ~seed:19 ~redundancies:[ 5 ] ~message_bits:4
          wsb Random_struct.travel_query
      with
      | Ok r -> r
      | Error e -> failwith ("e20: " ^ e))
    ( = );
  Texttab.print t;
  Printf.printf "pool size after the sweeps: %d runners\n" (Par.pool_size ());
  print_endline
    "Every job count reproduces the jobs=1 report exactly (the pool's\n\
     determinism contract); wall time drops with jobs up to the number of\n\
     hardware domains the runner provides."

(* ------------------------------------------------------------------ *)
(* E21 — incremental neighborhood-index maintenance: after an edit
   script touching a handful of elements, Neighborhood.reindex recomputes
   spheres only inside the dirty region (Gaifman locality) and splices
   the result into the previous index, bit-identical to a from-scratch
   index_universe.  The point of the experiment is the wall-clock gap on
   the largest bench instance. *)

let e21 () =
  header "E21. Incremental reindex vs full re-index (Gaifman locality)";
  let t =
    Texttab.create
      [ "instance"; "edit script"; "dirty"; "full s"; "incr s"; "speedup"; "identical" ]
  in
  let case ~instance ~g ~rho ~arity ~prev name edits =
    let edited, dirty = Structure.apply_edits g edits in
    let full, t_full = secs (fun () -> Neighborhood.index_universe edited ~rho ~arity) in
    let inc, t_inc = secs (fun () -> Neighborhood.reindex ~old:g edited ~prev ~dirty) in
    let same =
      Tuple.Map.equal ( = ) full.Neighborhood.types inc.Neighborhood.types
      && full.Neighborhood.representatives = inc.Neighborhood.representatives
    in
    let speedup = t_full /. t_inc in
    Texttab.addf t "%s|%s|%d|%.4f|%.4f|%.1fx|%s" instance name
      (List.length dirty) t_full t_inc speedup
      (if same then "yes" else "NO");
    if not same then failwith ("e21: incremental reindex diverged on " ^ name);
    speedup
  in
  (* Main instance: a 40x40 grid — 1600 elements, the largest structure
     the bench types, and the paper's regime (bounded degree, bounded
     type diversity): the dirty sphere is tiny and so is the set of old
     types the incremental path must anchor. *)
  let grid = (Grid.structure ~w:40 ~h:40).Weighted.graph in
  let rho = 2 and arity = 1 in
  let prev, t_prev = secs (fun () -> Neighborhood.index_universe grid ~rho ~arity) in
  Printf.printf
    "grid 40x40: %d elements, rho=%d, ntp=%d (%.3f s full index)\n"
    (Structure.size grid) rho (Neighborhood.ntp prev) t_prev;
  let gcase = case ~instance:"grid 40x40" ~g:grid ~rho ~arity ~prev in
  let mid = Grid.vertex ~h:40 20 20 in
  let single =
    gcase "1 tuple insert"
      [ Structure.Insert_tuple ("H", Tuple.pair mid (Grid.vertex ~h:40 23 23)) ]
  in
  let _ =
    gcase "1 tuple delete"
      [ Structure.Delete_tuple ("H", Tuple.pair mid (Grid.vertex ~h:40 21 20)) ]
  in
  let _ =
    gcase "8-edit script"
      (List.concat
         [
           List.init 4 (fun i ->
               Structure.Insert_tuple
                 ("V", Tuple.pair (Grid.vertex ~h:40 i i) (Grid.vertex ~h:40 (i + 2) i)));
           [ Structure.Add_element None ];
           List.init 3 (fun i ->
               Structure.Insert_tuple ("H", Tuple.pair (Grid.vertex ~h:40 30 i) 1600));
         ])
  in
  (* Contrast row: a random bounded-degree graph where nearly every
     element has its own type (ntp ~ n).  Anchoring one representative
     per surviving old type then costs as much as re-typing everything —
     locality buys nothing when the type count grows with the instance. *)
  let wsr = Random_struct.graph (Prng.create 41) ~n:420 ~max_degree:6 ~edges:940 in
  let gr = wsr.Weighted.graph in
  let prev_r, _ = secs (fun () -> Neighborhood.index_universe gr ~rho ~arity) in
  let _ =
    case ~instance:"random n=420" ~g:gr ~rho ~arity ~prev:prev_r
      "1 tuple insert"
      [ Structure.Insert_tuple ("E", Tuple.pair 17 230) ]
  in
  Texttab.print t;
  record_scalars ~experiment:"e21"
    [
      ("grid_full_index_wall_s", Json.Float t_prev);
      ("grid_ntp", Json.Int (Neighborhood.ntp prev));
      ("single_edit_speedup", Json.Float single);
      ("single_edit_meets_5x", Json.Bool (single >= 5.0));
    ];
  Printf.printf
    "A single-tuple edit dirties O(degree^rho) of the grid's %d elements;\n\
     the incremental path re-types that sphere plus one anchor per old\n\
     type and re-buckets by cached certificate (DESIGN.md 5.7).  The\n\
     acceptance bar is a >=5x speedup on the single-edit rows; the random\n\
     row shows the honest limit when ntp ~ n.\n"
    (Structure.size grid)

(* ------------------------------------------------------------------ *)
(* E22 — observability: what the wm_obs layer costs on the two heaviest
   workloads of E20/E21, and the per-phase breakdown it buys.  Each
   workload is timed best-of-3 with collection off, then best-of-3 with
   collection on; the acceptance bar is overhead below 5% on the E21
   index workload.  The enable flag is process-global, so run this
   experiment alone (bench e22) for clean numbers — under parallel
   dispatch the off-phase would also silence concurrent experiments. *)

let e22 () =
  header "E22. Observability overhead and per-phase breakdown";
  let best_of n f =
    let best = ref infinity in
    for _ = 1 to n do
      let (), dt = secs f in
      if dt < !best then best := dt
    done;
    !best
  in
  (* Workload A: the E21 full index of the 40x40 grid. *)
  let grid = (Grid.structure ~w:40 ~h:40).Weighted.graph in
  let index () = ignore (Neighborhood.index_universe grid ~rho:2 ~arity:1) in
  (* Workload B: the E20 attack grid at redundancy 5. *)
  let wsb = Random_struct.travel (Prng.create 19) ~travels:100 ~transports:400 in
  let attack () =
    match
      Attack_suite.run ~seed:19 ~redundancies:[ 5 ] ~message_bits:4 wsb
        Random_struct.travel_query
    with
    | Ok _ -> ()
    | Error e -> failwith ("e22: " ^ e)
  in
  let was = Obs.enabled () in
  let t = Texttab.create [ "workload"; "off s"; "on s"; "overhead"; "< 5%" ] in
  let measure name f =
    Obs.set_enabled false;
    let off = best_of 3 f in
    Obs.set_enabled true;
    let since = Obs.snapshot () in
    let on = best_of 3 f in
    let d = Obs.diff ~since (Obs.snapshot ()) in
    let pct = (on -. off) /. off *. 100. in
    Texttab.addf t "%s|%.3f|%.3f|%+.1f%%|%s" name off on pct
      (if pct < 5. then "yes" else "NO");
    record_scalars ~experiment:"e22"
      [
        (name ^ "_off_wall_s", Json.Float off);
        (name ^ "_on_wall_s", Json.Float on);
        (name ^ "_overhead_pct", Json.Float pct);
      ];
    (d, pct)
  in
  let di, pi = measure "ntp-index" index in
  let da, _ = measure "attack-grid" attack in
  Obs.set_enabled was;
  Texttab.print t;
  print_newline ();
  print_endline "per-phase breakdown — ntp-index (grid 40x40, 3 runs):";
  print_string (Obs_report.render di);
  print_newline ();
  print_endline "per-phase breakdown — attack grid (R=5, 3 runs):";
  print_string (Obs_report.render da);
  record_scalars ~experiment:"e22"
    [ ("overhead_below_5pct", Json.Bool (pi < 5.0)) ];
  print_newline ();
  print_endline
    "Recording is one domain-local increment per event, so the counters\n\
     are near-free; the timers/spans cost two clock reads per call.  The\n\
     acceptance bar (ntp-index overhead < 5%) is recorded as\n\
     overhead_below_5pct."

(* ------------------------------------------------------------------ *)
(* E23 — the neighborhood-typing fast path (DESIGN.md 5.9): per-index
   sphere cache, member-scan dedupe, CSR adjacency and exact partition
   refinement, measured against the preserved pre-PR pipeline
   (Neighborhood_ref) at jobs=1 on the two heaviest typing workloads
   (E20's random graph, E21's grid).  Both pipelines must produce
   bit-identical indexes; the acceptance bar is a >=2x speedup on the
   spheres (materialization) phase of the E20 workload.  The iso-check
   counts under the old Hashtbl.hash bucket keys and the new deep keys
   are recorded for the CI regression guard.  The obs flag is
   process-global, so run this experiment alone (bench e23) for clean
   numbers. *)

let e23 () =
  header "E23. Neighborhood-typing fast path vs pre-PR pipeline (jobs=1)";
  let was = Obs.enabled () in
  Obs.set_enabled true;
  let run_obs f =
    let since = Obs.snapshot () in
    let x, dt = secs f in
    (x, dt, Obs.diff ~since (Obs.snapshot ()))
  in
  (* best of 2, keeping the obs diff of the faster run *)
  let best f =
    let (_, d1, _) as r1 = run_obs f in
    let (_, d2, _) as r2 = run_obs f in
    if d2 < d1 then r2 else r1
  in
  let timer_s d name =
    match List.assoc_opt name d.Obs.timers with
    | Some tt -> tt.Obs.seconds
    | None -> 0.
  in
  let counter_v d name =
    Option.value ~default:0 (List.assoc_opt name d.Obs.counters)
  in
  let t =
    Texttab.create
      [ "workload"; "pipeline"; "wall s"; "spheres s"; "iso checks"; "identical" ]
  in
  let compare_on ~name g ~rho ~arity =
    let ix_new, t_new, d_new =
      best (fun () -> Neighborhood.index_universe ~jobs:1 g ~rho ~arity)
    in
    let ix_ref, t_ref, d_ref =
      best (fun () -> Neighborhood_ref.index_universe ~jobs:1 g ~rho ~arity)
    in
    let same =
      Tuple.Map.equal ( = ) ix_new.Neighborhood.types ix_ref.Neighborhood.types
      && ix_new.Neighborhood.representatives = ix_ref.Neighborhood.representatives
    in
    if not same then failwith ("e23: fast path diverged from reference on " ^ name);
    let sp_new = timer_s d_new "nbh.index.spheres" in
    let sp_ref = timer_s d_ref "nbh.ref.index.spheres" in
    let ic_new = counter_v d_new "nbh.iso_checks" in
    let ic_ref = counter_v d_ref "nbh.ref.iso_checks" in
    Texttab.addf t "%s|reference|%.3f|%.3f|%d|%s" name t_ref sp_ref ic_ref "-";
    Texttab.addf t "%s|fast path|%.3f|%.3f|%d|%s" name t_new sp_new ic_new "yes";
    Printf.printf
      "%s: wall %.2fx, spheres phase %.2fx; cache hits %d, member scans \
       deduped %d, refine rounds %d\n"
      name (t_ref /. t_new) (sp_ref /. sp_new)
      (counter_v d_new "nbh.sphere_cache_hits")
      (counter_v d_new "nbh.subs_deduped")
      (counter_v d_new "nbh.refine_rounds");
    (t_ref /. t_new, sp_ref /. sp_new, ic_new, ic_ref)
  in
  (* Workload A (the acceptance one): the E20 rho-2 unary typing of a
     bounded-degree random graph, ntp ~ n. *)
  let wsa = Random_struct.graph (Prng.create 41) ~n:420 ~max_degree:6 ~edges:940 in
  let wall_a, spheres_a, ic_new, ic_ref =
    compare_on ~name:"random n=420" wsa.Weighted.graph ~rho:2 ~arity:1
  in
  (* Workload B: the E21 40x40 grid — few types, heavy sphere overlap. *)
  let grid = (Grid.structure ~w:40 ~h:40).Weighted.graph in
  let wall_b, spheres_b, _, _ =
    compare_on ~name:"grid 40x40" grid ~rho:2 ~arity:1
  in
  (* Workload C: binary tuples — n^2 parameters share n element spheres,
     so the cache and the member-scan dedupe carry the whole phase. *)
  let wsc = Random_struct.graph (Prng.create 7) ~n:80 ~max_degree:5 ~edges:170 in
  let wall_c, spheres_c, _, _ =
    compare_on ~name:"random n=80 arity=2" wsc.Weighted.graph ~rho:1 ~arity:2
  in
  Obs.set_enabled was;
  Texttab.print t;
  record_scalars ~experiment:"e23"
    [
      ("wall_speedup", Json.Float wall_a);
      ("spheres_speedup", Json.Float spheres_a);
      ("grid_wall_speedup", Json.Float wall_b);
      ("grid_spheres_speedup", Json.Float spheres_b);
      ("arity2_wall_speedup", Json.Float wall_c);
      ("arity2_spheres_speedup", Json.Float spheres_c);
      ("iso_checks_new", Json.Int ic_new);
      ("iso_checks_baseline", Json.Int ic_ref);
      ("spheres_meets_2x", Json.Bool (spheres_a >= 2.0));
    ];
  Printf.printf
    "The fast path shares one sphere BFS per element, one member scan per\n\
     distinct sphere and one sub-Gaifman graph per tuple, and refines to\n\
     the exact 1-WL fixpoint instead of size-many hashed rounds.  The\n\
     acceptance bar (spheres-phase speedup >= 2x on the random workload,\n\
     output bit-identical) is recorded as spheres_meets_2x; the iso-check\n\
     counts feed the CI guard against bucket-key regressions.\n"

(* E24 — detect-and-recover robustness curves (DESIGN.md 5.10): mark the
   travel workload, protect it with Recovery capsules (Gaifman-local
   groups, keyed certificates replicated across sibling groups), then
   sweep three attack families over increasing intensity and compare the
   detection rate of the plain survivable pipeline against
   repair-then-detect.  The acceptance bar: repair never hurts (repaired
   rate >= unrepaired on every row — the CI guard), and strictly improves
   on at least one distortion and one mix-and-match row at an intensity
   where the unrepaired detector fails.  Every trial owns a PRNG derived
   from (row, trial) and all inner phases run at jobs=1, so the table is
   bit-identical at any --jobs. *)

let e24 () =
  header "E24. Repair-then-detect robustness curves (Recovery capsules)";
  let bits = 4 and times = 5 and trials = 8 in
  let message = Codec.of_int ~bits 0b1011 in
  let ws = Random_struct.travel (Prng.create 24) ~travels:100 ~transports:400 in
  let scheme =
    match Local_scheme.prepare ws Random_struct.travel_query with
    | Ok s -> s
    | Error e -> failwith ("e24: " ^ e)
  in
  let base = Robust.of_local scheme in
  let qs = Local_scheme.query_system scheme in
  Query_system.precompute qs;
  let active = Query_system.active qs in
  let nactive = List.length active in
  let marked_w = Robust.mark base ~times message ws.Weighted.weights in
  let marked = { ws with Weighted.weights = marked_w } in
  let cap = Recovery.protect marked in
  (* the second copy mix-and-match splices from: same instance, marked
     with the complement message *)
  let other_w =
    Robust.mark base ~times
      (Codec.of_int ~bits (lnot 0b1011 land ((1 lsl bits) - 1)))
      ws.Weighted.weights
  in
  let detect_plain suspect =
    let rv, _ =
      Survivable.detect_structure ~jobs:1 scheme ~times ~length:bits
        ~original:ws ~suspect
    in
    Bitvec.equal message rv.Survivable.message
  in
  let detect_rep suspect =
    let rv, report, _ =
      Recovery.detect_repaired ~jobs:1 cap scheme ~times ~length:bits
        ~original:ws ~suspect
    in
    (Bitvec.equal message rv.Survivable.message, report.Recovery.repaired)
  in
  let t =
    Texttab.create
      [ "attack"; "intensity"; "unrepaired"; "repaired"; "groups/trial" ]
  in
  let rows_json = ref [] in
  let run_row idx (family, label, intensity) =
    let un = ref 0 and rp = ref 0 and groups = ref 0 in
    for trial = 0 to trials - 1 do
      let g = Prng.create (0xE24001 + (7919 * idx) + trial) in
      let suspect =
        match family with
        | `Flips ->
            let count = int_of_float (intensity *. float_of_int nactive) in
            {
              ws with
              Weighted.weights =
                Adversary.apply g
                  (Adversary.Random_flips { count; amplitude = 2 })
                  ~active marked_w;
            }
        | `Mix ->
            {
              ws with
              Weighted.weights =
                Adversary.apply g
                  (Adversary.Mix_and_match
                     { other = other_w; fraction = intensity })
                  ~active marked_w;
            }
        | `Delete ->
            Adversary.apply_structural g
              (Adversary.Delete_tuples { fraction = intensity })
              marked
      in
      if detect_plain suspect then incr un;
      let ok, k = detect_rep suspect in
      if ok then incr rp;
      groups := !groups + k
    done;
    let fr x = float_of_int x /. float_of_int trials in
    Texttab.addf t "%s|%.2f|%.2f|%.2f|%.1f" label intensity (fr !un) (fr !rp)
      (float_of_int !groups /. float_of_int trials);
    rows_json :=
      Json.Obj
        [
          ("attack", Json.String label);
          ("intensity", Json.Float intensity);
          ("unrepaired", Json.Float (fr !un));
          ("repaired", Json.Float (fr !rp));
        ]
      :: !rows_json;
    (label, fr !un, fr !rp)
  in
  let grid =
    List.concat
      [
        List.map
          (fun i -> (`Flips, "random flips", i))
          [ 0.25; 0.5; 0.75; 1.0 ];
        List.map
          (fun i -> (`Mix, "mix-and-match", i))
          [ 0.25; 0.5; 0.75; 1.0 ];
        List.map (fun i -> (`Delete, "delete elements", i)) [ 0.2; 0.4; 0.6 ];
      ]
  in
  let results = List.mapi run_row grid in
  Texttab.print t;
  let monotone =
    List.for_all (fun (_, un, rp) -> rp >= un) results
  in
  let strict lbl =
    List.exists (fun (l, un, rp) -> l = lbl && un < 1.0 && rp > un) results
  in
  record_scalars ~experiment:"e24"
    [
      ("rows", Json.List (List.rev !rows_json));
      ("trials_per_row", Json.Int trials);
      ("groups", Json.Int (Recovery.ngroups cap));
      ("repair_never_hurts", Json.Bool monotone);
      ("strict_improvement_flips", Json.Bool (strict "random flips"));
      ("strict_improvement_mix", Json.Bool (strict "mix-and-match"));
    ];
  Printf.printf
    "Weight-level attacks leave every certificate host alive, so repair\n\
     restores the marked weights exactly and the repaired detector stays\n\
     at 1.00 after the unrepaired one collapses; deletions also remove\n\
     certificate copies, so recovery degrades only when all %d replica\n\
     hosts of a group die together.  repair_never_hurts and the two\n\
     strict_improvement flags feed the CI guard.\n"
    Recovery.default_options.Recovery.redundancy

(* ------------------------------------------------------------------ *)
(* E25: watermarking as a service.  Drives the wm_serve engine through
   the qpwm-serve/1 protocol (encode -> handle -> decode, exactly the
   bytes the wire would carry) on two datasets: a million-element
   regular-rings instance prepared with the identity query system and a
   Gaifman-component-sharded index, and a small "live" dataset taking
   the structural-update/audit/repair traffic.  Measures sustained mixed
   request throughput and pins the two sharding identities (sharded
   index = unsharded index, sharded detect = unsharded detect).

   WMARK_E25_N and WMARK_E25_REQS override the big-instance size and the
   request count so CI can run a small configuration; the committed
   BENCH_PR7.json comes from the full run. *)

let e25 () =
  header "E25. Watermarking as a service: scheduler + sharding (wm_serve)";
  let env_int name default floor =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some v when v >= floor -> v
    | _ -> default
  in
  let n = env_int "WMARK_E25_N" 1_000_000 100 in
  let reqs = env_int "WMARK_E25_REQS" 4_000 100 in
  let engine = Serve_engine.create () in
  let send what req =
    let payload =
      Serve_engine.handle engine (Serve_protocol.encode_request req)
    in
    match Serve_protocol.decode_response payload with
    | Ok ({ Serve_protocol.status = `Ok _; _ } as r) -> r
    | Ok { Serve_protocol.status = `Err m; _ } ->
        failwith (Printf.sprintf "e25 %s: %s" what m)
    | Error m -> failwith (Printf.sprintf "e25 %s: bad response: %s" what m)
  in
  let field r k =
    match Serve_protocol.field r k with
    | Some v -> v
    | None -> failwith ("e25: missing response field " ^ k)
  in
  let prepare id ~shard =
    Serve_protocol.Prepare
      {
        id;
        seed = 25;
        rho = Some 1;
        epsilon = 1.0;
        shard;
        qspec = Serve_protocol.Identity;
      }
  in
  (* -- sharded = unsharded, on a mid-size instance ------------------- *)
  let mid = min n 50_000 in
  let _ = send "gen mid" (Serve_protocol.Gen { id = "mid"; n = mid; seed = 7 }) in
  let p0, unshard_s = secs (fun () -> send "prepare mid" (prepare "mid" ~shard:false)) in
  let msg = String.init 64 (fun i -> if (i * 5 + 1) mod 3 = 0 then '1' else '0') in
  let _ = send "mark mid" (Serve_protocol.Mark ("mid", msg)) in
  let d0 =
    send "detect mid" (Serve_protocol.Detect { id = "mid"; length = 64; shard = false })
  in
  let p1, shard_s = secs (fun () -> send "re-prepare mid" (prepare "mid" ~shard:true)) in
  let d1 =
    send "detect mid sharded"
      (Serve_protocol.Detect { id = "mid"; length = 64; shard = true })
  in
  let index_equal =
    List.for_all
      (fun k -> field p0 k = field p1 k)
      [ "capacity"; "ntp"; "pairs_available"; "active"; "max_split" ]
  in
  let detect_equal = d0.Serve_protocol.fields = d1.Serve_protocol.fields in
  let t = Texttab.create [ "step"; "value" ] in
  Texttab.addf t "mid size|%d" mid;
  Texttab.addf t "prepare unsharded|%.2f s" unshard_s;
  Texttab.addf t "prepare sharded|%.2f s" shard_s;
  Texttab.addf t "sharded index = unsharded|%b" index_equal;
  Texttab.addf t "sharded detect = unsharded|%b" detect_equal;
  (* -- the million-element dataset ----------------------------------- *)
  let _, gen_s =
    secs (fun () -> send "gen big" (Serve_protocol.Gen { id = "big"; n; seed = 0x25 }))
  in
  let pb, prep_s = secs (fun () -> send "prepare big" (prepare "big" ~shard:true)) in
  let capacity = int_of_string (field pb "capacity") in
  let _ = send "mark big" (Serve_protocol.Mark ("big", msg)) in
  let db0 =
    send "detect big" (Serve_protocol.Detect { id = "big"; length = 64; shard = false })
  in
  let db1 =
    send "detect big sharded"
      (Serve_protocol.Detect { id = "big"; length = 64; shard = true })
  in
  let big_detect_equal = db0.Serve_protocol.fields = db1.Serve_protocol.fields in
  Texttab.addf t "big size|%d" n;
  Texttab.addf t "gen big|%.2f s" gen_s;
  Texttab.addf t "prepare big (sharded)|%.2f s" prep_s;
  Texttab.addf t "big capacity|%d bits" capacity;
  Texttab.addf t "big sharded detect = unsharded|%b" big_detect_equal;
  (* -- live dataset for writer-heavy traffic ------------------------- *)
  let live_n = 2_000 in
  let _ = send "gen live" (Serve_protocol.Gen { id = "live"; n = live_n; seed = 3 }) in
  let _ = send "prepare live" (prepare "live" ~shard:true) in
  let _ = send "mark live" (Serve_protocol.Mark ("live", "1010")) in
  (* the vault takes weight-level damage (setw) plus audit/repair; the
     live dataset takes structural updates, which invalidate a capsule
     by design, so the two writer families get separate datasets *)
  let _ = send "gen vault" (Serve_protocol.Gen { id = "vault"; n = live_n; seed = 5 }) in
  let _ = send "prepare vault" (prepare "vault" ~shard:false) in
  let _ = send "mark vault" (Serve_protocol.Mark ("vault", "1100")) in
  let _ =
    send "protect vault"
      (Serve_protocol.Protect { id = "vault"; key = 0x5EC2E7; redundancy = 2; group_size = 4 })
  in
  (* -- sustained mixed workload -------------------------------------- *)
  let g = Prng.create 0xE25 in
  let edge_present = ref false in
  let detect_req () =
    Serve_protocol.Detect { id = "big"; length = 64; shard = Prng.bool g }
  in
  let next_request () =
    let r = Prng.int g 100 in
    if r < 40 then detect_req ()
    else if r < 50 then
      (* a batch frame: 16 reads scheduled concurrently on the pool *)
      Serve_protocol.Batch
        (List.init 16 (fun _ ->
             Serve_protocol.encode_request (detect_req ())))
    else if r < 70 then
      Serve_protocol.Mark
        ( "big",
          String.init 64 (fun _ -> if Prng.bool g then '1' else '0') )
    else if r < 80 then
      Serve_protocol.Setw
        { id = "big"; value = 100 + Prng.int g 900; elt = [ Prng.int g n ] }
    else if r < 85 then Serve_protocol.Info "big"
    else if r < 90 then
      Serve_protocol.Detect { id = "live"; length = 4; shard = false }
    else if r < 93 then Serve_protocol.Audit "vault"
    else if r < 95 then
      Serve_protocol.Setw
        { id = "vault"; value = 100 + Prng.int g 900; elt = [ Prng.int g live_n ] }
    else if r < 98 then begin
      (* structural update: toggle one extra edge between two rings of
         the live instance, re-preparing incrementally each time *)
      let a = 0 and b = live_n - 1 in
      let op = if !edge_present then "delete" else "insert" in
      edge_present := not !edge_present;
      Serve_protocol.Update
        ( "live",
          Stdlib.Printf.sprintf "%s E %d %d\n%s E %d %d\n" op a b op b a )
    end
    else Serve_protocol.Repair "vault"
  in
  let workload = List.init reqs (fun _ -> next_request ()) in
  let answered = ref 0 and failed = ref 0 in
  let (), mixed_s =
    secs (fun () ->
        List.iter
          (fun req ->
            let what = Serve_protocol.op_name req in
            let r = send what req in
            (match r.Serve_protocol.status with
            | `Ok _ -> ()
            | `Err _ -> incr failed);
            answered :=
              !answered
              + (match req with Serve_protocol.Batch subs -> List.length subs | _ -> 1))
          workload)
  in
  let rps = float_of_int !answered /. mixed_s in
  Texttab.addf t "mixed requests|%d (%d frames)" !answered reqs;
  Texttab.addf t "mixed wall|%.2f s" mixed_s;
  Texttab.addf t "throughput|%.0f req/s" rps;
  Texttab.addf t "failures|%d" !failed;
  Texttab.print t;
  record_scalars ~experiment:"e25"
    [
      ("n", Json.Int n);
      ("requests", Json.Int !answered);
      ("throughput_rps", Json.Float rps);
      ("failures", Json.Int !failed);
      ("capacity_big", Json.Int capacity);
      ("prepare_big_s", Json.Float prep_s);
      ("sharded_index_equal", Json.Bool index_equal);
      ("sharded_detect_equal", Json.Bool (detect_equal && big_detect_equal));
    ];
  Printf.printf
    "The engine answers the mixed stream against the million-element\n\
     instance at %.0f req/s: detection reads only the asked prefix of\n\
     the half-million-pair scheme, marking rewrites O(message) weights,\n\
     and weights-only updates ride Theorem 7 in O(log n).  Sharding by\n\
     Gaifman component reproduces the unsharded index and verdicts bit\n\
     for bit (sharded_index_equal, sharded_detect_equal feed the CI\n\
     guard).\n"
    rps

(* ------------------------------------------------------------------ *)
(* E26 — the flat-memory core (PR 8): end-to-end tuples/second.

   Builds, marks and detects over the same op streams twice — once on
   the columnar Relation/Weighted and once on the frozen pre-flat
   representations (Relation_ref/Weighted_ref) — at 10^5 and 10^6
   elements, asserting bit-identical outputs (marked weight bindings,
   decoded message) along the way.  The CI guard reads
   load_detect_speedup (>= 2x required) and outputs_equal from
   BENCH_PR8.json.

   WMARK_E26_N overrides the larger instance size so CI runs small; the
   committed BENCH_PR8.json comes from the full run. *)

let e26 () =
  header "E26. Flat-memory core: load/mark/detect throughput (PR 8)";
  let env_int name default floor =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some v when v >= floor -> v
    | _ -> default
  in
  let nbig = env_int "WMARK_E26_N" 1_000_000 1_000 in
  let sizes = if nbig > 100_000 then [ 100_000; nbig ] else [ nbig ] in
  let t = Texttab.create [ "n"; "stage"; "flat"; "pre-flat"; "speedup" ] in
  let outputs_equal = ref true in
  let worst_speedup = ref infinity in
  let big_scalars = ref [] in
  List.iter
    (fun n ->
      let g = Prng.create (0xE26 + n) in
      let ws = Random_struct.regular_rings g ~n in
      let graph = ws.Weighted.graph in
      let schema = Structure.schema graph in
      (* identical op streams for both representations, extracted untimed *)
      let rel_tuples =
        Structure.fold_relations
          (fun name r acc -> (name, Relation.to_list r) :: acc)
          graph []
      in
      let wbindings = Weighted.bindings ws.Weighted.weights in
      let ntuples =
        List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0 rel_tuples
        + List.length wbindings
      in
      (* load: one bulk sort per relation vs a functional insert per tuple *)
      let (flat_g, flat_w), flat_load_s =
        secs (fun () ->
            let g0 =
              List.fold_left
                (fun g (name, ts) ->
                  Structure.set_relation g name
                    (Relation.of_list (Schema.arity_of schema name) ts))
                (Structure.create schema n) rel_tuples
            in
            (g0, Weighted.of_list 1 wbindings))
      in
      let (ref_rels, ref_w), ref_load_s =
        secs (fun () ->
            let rels =
              List.map
                (fun (name, ts) ->
                  ( name,
                    List.fold_left
                      (fun r tup -> Relation_ref.add tup r)
                      (Relation_ref.empty (Schema.arity_of schema name))
                      ts ))
                rel_tuples
            in
            let w =
              List.fold_left
                (fun w (tu, v) -> Weighted_ref.set w tu v)
                (Weighted_ref.create 1) wbindings
            in
            (rels, w))
      in
      outputs_equal :=
        !outputs_equal
        && Structure.equal flat_g graph
        && List.for_all
             (fun (name, r) ->
               Relation.to_list (Structure.relation flat_g name)
               = Relation_ref.to_list r)
             ref_rels
        && Weighted.bindings flat_w = Weighted_ref.bindings ref_w;
      (* mark: one +-1 pair per consecutive element pair, full scan *)
      let pairs =
        List.init (n / 2) (fun i ->
            {
              Pairing.fst = Tuple.singleton (2 * i);
              snd = Tuple.singleton ((2 * i) + 1);
            })
      in
      let message = Codec.random g (n / 2) in
      let marks = Pairing.orientation_marks pairs message in
      let flat_marked, flat_mark_s =
        secs (fun () -> Weighted.apply_marks flat_w marks)
      in
      let ref_marked, ref_mark_s =
        secs (fun () -> Weighted_ref.apply_marks ref_w marks)
      in
      outputs_equal :=
        !outputs_equal && Weighted.bindings flat_marked = Weighted_ref.bindings ref_marked;
      (* detect: full decode pass, four weight lookups per pair *)
      let flat_bits, flat_detect_s =
        secs (fun () ->
            let bits = Bitvec.create (n / 2) in
            List.iteri
              (fun i { Pairing.fst; snd } ->
                let d tu = Weighted.get flat_marked tu - Weighted.get flat_w tu in
                Bitvec.set bits i (d fst - d snd > 0))
              pairs;
            bits)
      in
      let ref_bits, ref_detect_s =
        secs (fun () ->
            let bits = Bitvec.create (n / 2) in
            List.iteri
              (fun i { Pairing.fst; snd } ->
                let d tu =
                  Weighted_ref.get ref_marked tu - Weighted_ref.get ref_w tu
                in
                Bitvec.set bits i (d fst - d snd > 0))
              pairs;
            bits)
      in
      outputs_equal :=
        !outputs_equal && Bitvec.equal flat_bits ref_bits
        && Bitvec.equal flat_bits message;
      (* flat-only pipeline stages for the tuples/s headline *)
      let text = Textio.to_string { Weighted.graph = flat_g; weights = flat_marked } in
      let _parsed, parse_s = secs (fun () -> Textio.of_string text) in
      let gf, gaifman_s = secs (fun () -> Gaifman.of_structure flat_g) in
      let (_, ncomps), comp_s = secs (fun () -> Gaifman.component_labels gf) in
      let speedup =
        (ref_load_s +. ref_detect_s) /. (flat_load_s +. flat_detect_s)
      in
      if speedup < !worst_speedup then worst_speedup := speedup;
      let e2e = flat_load_s +. flat_mark_s +. flat_detect_s in
      let tps = float_of_int ntuples /. e2e in
      Texttab.addf t "%d|load|%.3f s|%.3f s|%.2fx" n flat_load_s ref_load_s
        (ref_load_s /. flat_load_s);
      Texttab.addf t "%d|mark|%.3f s|%.3f s|%.2fx" n flat_mark_s ref_mark_s
        (ref_mark_s /. flat_mark_s);
      Texttab.addf t "%d|detect|%.3f s|%.3f s|%.2fx" n flat_detect_s
        ref_detect_s
        (ref_detect_s /. flat_detect_s);
      Texttab.addf t "%d|load+detect|%.3f s|%.3f s|%.2fx" n
        (flat_load_s +. flat_detect_s)
        (ref_load_s +. ref_detect_s)
        speedup;
      Texttab.addf t "%d|parse / gaifman / comps|%.3f / %.3f / %.3f s|-|-" n
        parse_s gaifman_s comp_s;
      Texttab.addf t "%d|end-to-end|%.0f tuples/s (%d tuples, %d comps)|-|-" n
        tps ntuples ncomps;
      if n = List.nth sizes (List.length sizes - 1) then
        big_scalars :=
          [
            ("n", Json.Int n);
            ("tuples", Json.Int ntuples);
            ("flat_load_s", Json.Float flat_load_s);
            ("ref_load_s", Json.Float ref_load_s);
            ("flat_mark_s", Json.Float flat_mark_s);
            ("ref_mark_s", Json.Float ref_mark_s);
            ("flat_detect_s", Json.Float flat_detect_s);
            ("ref_detect_s", Json.Float ref_detect_s);
            ("end_to_end_tuples_per_s", Json.Float tps);
          ])
    sizes;
  Texttab.print t;
  record_scalars ~experiment:"e26"
    (!big_scalars
    @ [
        ("load_detect_speedup", Json.Float !worst_speedup);
        ("outputs_equal", Json.Bool !outputs_equal);
      ]);
  Printf.printf
    "The columnar Relation/Weighted load with one sort per relation and\n\
     detect by binary search over contiguous int rows; the frozen\n\
     pre-flat representations replay the identical op streams for the\n\
     baseline.  Marked bindings and the decoded message are asserted\n\
     bit-identical (outputs_equal); load_detect_speedup is the worst\n\
     size's (ref load + detect) / (flat load + detect) and feeds the\n\
     >= 2x CI guard.\n"

(* --- E27: multi-recipient fingerprinting (PR 9) --------------------

   Batch generation of fingerprinted copies through the serving layer
   (one request, [count] recipients fanned onto the pool, digests as the
   proof of work), a planted-leak trace over the candidate population,
   and the collusion grid (coalition size x attack) measured directly on
   the library.  Two engines at jobs 1 and 2 replay the identical
   request stream; the raw response bytes must match. *)

let e27 () =
  header "E27. Multi-recipient fingerprinting: batch generation and tracing";
  let env_int name default floor =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some v when v >= floor -> v
    | _ -> default
  in
  let n = env_int "WMARK_E27_N" 100_000 500 in
  let copies = env_int "WMARK_E27_COPIES" 10_000 20 in
  let population = env_int "WMARK_E27_RECIPIENTS" 1_000 50 in
  let master = 0xF1D0 and gen_seed = 0x27 and prep_seed = 27 in
  let leak = "r7" in
  (* The engine's dataset rebuilt locally — same rings, same prepare
     options, same identity query system — to plant a leaked copy for
     the serve-side trace and to drive the collusion grid. *)
  let ws = Random_struct.regular_rings (Prng.create gen_seed) ~n in
  let qs =
    Query_system.of_custom
      ~params:(List.init (Structure.size ws.Weighted.graph) Tuple.singleton)
      ~result_set:(fun p -> Tuple.Set.singleton p)
      ~weight_arity:1
  in
  let q = Parser.query_of_string ~params:[ "u" ] ~results:[ "v" ] "u = v" in
  let options =
    { Local_scheme.default_options with seed = prep_seed; rho = Some 1; epsilon = 1.0 }
  in
  let scheme =
    match Local_scheme.prepare ~options ~qs ws q with
    | Ok s -> s
    | Error m -> failwith ("e27 prepare: " ^ m)
  in
  (* production-redundancy geometry (9 interleaved repetitions) when the
     capacity allows it; the scheme's defaults otherwise *)
  let fp =
    match Fingerprint.of_local ~times:9 ~master scheme with
    | Ok f -> f
    | Error _ -> (
        match Fingerprint.of_local ~master scheme with
        | Ok f -> f
        | Error m -> failwith ("e27 fingerprint: " ^ m))
  in
  let length = Fingerprint.length fp and times = Fingerprint.times fp in
  let planted =
    Textio.to_string
      { ws with Weighted.weights = Fingerprint.mark_for fp leak ws.Weighted.weights }
  in
  let fpreq =
    Serve_protocol.Fingerprint
      { id = "fp"; master; length = Some length; times = Some times;
        prefix = "r"; count = copies }
  in
  let treq =
    Serve_protocol.Trace
      { id = "fp"; master; length = Some length; times = Some times;
        prefix = "r"; count = population; alpha = 0.01; suspect = Some planted }
  in
  let run jobs =
    let engine = Serve_engine.create ~jobs () in
    let raw req = Serve_engine.handle engine (Serve_protocol.encode_request req) in
    let ok what payload =
      match Serve_protocol.decode_response payload with
      | Ok ({ Serve_protocol.status = `Ok _; _ } as r) -> r
      | Ok { Serve_protocol.status = `Err m; _ } ->
          failwith (Printf.sprintf "e27 %s: %s" what m)
      | Error m -> failwith (Printf.sprintf "e27 %s: bad response: %s" what m)
    in
    let _, gen_s =
      secs (fun () ->
          ok "gen" (raw (Serve_protocol.Gen { id = "fp"; n; seed = gen_seed })))
    in
    let _, prep_s =
      secs (fun () ->
          ok "prepare"
            (raw
               (Serve_protocol.Prepare
                  { id = "fp"; seed = prep_seed; rho = Some 1; epsilon = 1.0;
                    shard = false; qspec = Serve_protocol.Identity })))
    in
    let fp_payload, fp_s = secs (fun () -> raw fpreq) in
    let fp_resp = ok "fingerprint" fp_payload in
    let tr_payload, tr_s = secs (fun () -> raw treq) in
    let tr_resp = ok "trace" tr_payload in
    (gen_s, prep_s, fp_payload, fp_resp, fp_s, tr_payload, tr_resp, tr_s)
  in
  let gen1, prep1, fpp1, fpr1, fps1, trp1, trr1, trs1 = run 1 in
  let _gen2, _prep2, fpp2, _fpr2, fps2, trp2, _trr2, trs2 = run 2 in
  let serve_identical = String.equal fpp1 fpp2 && String.equal trp1 trp2 in
  let field r k =
    match Serve_protocol.field r k with
    | Some v -> v
    | None -> failwith ("e27: missing response field " ^ k)
  in
  let leak_traced = field trr1 "accused" = leak && field trr1 "naccused" = "1" in
  let digest_lines =
    List.length (String.split_on_char '\n' (Option.value ~default:"" fpr1.Serve_protocol.body))
  in
  let best_fp_s = Float.min fps1 fps2 in
  let t = Texttab.create [ "step"; "value" ] in
  Texttab.addf t "instance|%d elements (rings), %d recipients" n population;
  Texttab.addf t "codeword|%d bits x %d repetitions" length times;
  Texttab.addf t "gen / prepare|%.2f / %.2f s" gen1 prep1;
  Texttab.addf t "fingerprint %d copies (jobs 1)|%.2f s" copies fps1;
  Texttab.addf t "fingerprint %d copies (jobs 2)|%.2f s" copies fps2;
  Texttab.addf t "generation throughput|%.0f copies/s" (float_of_int copies /. best_fp_s);
  Texttab.addf t "digest lines returned|%d" digest_lines;
  Texttab.addf t "trace %d candidates (jobs 1 / 2)|%.2f / %.2f s" population trs1 trs2;
  Texttab.addf t "planted leak %s uniquely accused|%b" leak leak_traced;
  Texttab.addf t "responses identical across job counts|%b" serve_identical;
  Texttab.print t;
  (* -- the collusion grid ------------------------------------------- *)
  let grid_fp =
    match Fingerprint.of_local ~length:256 ~times:3 ~master scheme with
    | Ok f -> f
    | Error _ -> fp
  in
  let report, grid_s =
    secs (fun () ->
        Fingerprint.run_grid ~alpha:0.001 ~recipients:[ population ] grid_fp
          ws.Weighted.weights)
  in
  print_newline ();
  print_string (Fingerprint.render_grid report);
  Printf.printf "grid: %.2f s\n" grid_s;
  let rows = report.Fingerprint.rows in
  let false_total =
    List.fold_left
      (fun a (o : Fingerprint.outcome) -> a + o.false_accusations)
      0 rows
  in
  let all_traced = List.for_all (fun (o : Fingerprint.outcome) -> o.traced) rows in
  let min_accuracy =
    List.fold_left (fun a (o : Fingerprint.outcome) -> Float.min a o.accuracy) 1.0 rows
  in
  let solo_clean =
    List.for_all
      (fun (o : Fingerprint.outcome) ->
        o.coalition > 1 || (o.false_accusations = 0 && o.accuracy = 1.0))
      rows
  in
  record_scalars ~experiment:"e27"
    [
      ("n", Json.Int n);
      ("copies", Json.Int copies);
      ("recipients", Json.Int population);
      ("length", Json.Int length);
      ("times", Json.Int times);
      ("fingerprint_s", Json.Float best_fp_s);
      ("copies_per_s", Json.Float (float_of_int copies /. best_fp_s));
      ("trace_s", Json.Float (Float.min trs1 trs2));
      ("serve_identical", Json.Bool serve_identical);
      ("leak_traced", Json.Bool leak_traced);
      ("grid_false_accusations", Json.Int false_total);
      ("grid_all_traced", Json.Bool all_traced);
      ("grid_min_accuracy", Json.Float min_accuracy);
      ("grid_no_collusion_clean", Json.Bool solo_clean);
      ("grid", Fingerprint.grid_to_json report);
    ];
  Printf.printf
    "One prepared scheme serves every recipient: the fingerprint request\n\
     derives %d keys from the master, embeds each codeword on the pool and\n\
     returns per-copy digests; the trace request scores all %d candidates\n\
     against the planted copy under the Sidak-corrected threshold.  The\n\
     grid colludes k copies per cell (majority / mix / interleave, per-copy\n\
     laundering noise) and must accuse members only — false accusations\n\
     feed the CI guard.\n"
    copies population

(* --- E28: bounded-width neighborhood typing (PR 10) ----------------

   The decomposition-driven fast path (DESIGN.md 5.14) against the
   generic iso-classifying indexer on the three ISSUE workloads: the
   40x40 grid, a random sparse graph at average degree ~3, and the
   biblio-XML element tree flattened to an E-edge structure.  Each
   workload is typed twice per path (best-of-2) with the bound set to
   the workload's surveyed max sphere width, outputs asserted
   bit-identical in-bench.  Typing time is the nbh.index.codes +
   nbh.index.prep + nbh.index.classify timer total, so the bounded
   path's own decomposition probes, canonical codes and grouping are
   charged against the prep + classify work they replace; sphere
   extraction (identical on both paths) is reported separately.
   grid_typing_speedup and outputs_equal feed the >= 2x CI guard via
   BENCH_PR10.json.

   WMARK_E28_GRID / WMARK_E28_N / WMARK_E28_ARTICLES override the
   workload sizes so CI runs small; the committed BENCH_PR10.json comes
   from the full run. *)

let e28 () =
  header "E28. Bounded-width typing: decomposition codes vs generic iso";
  let env_int name default floor =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some v when v >= floor -> v
    | _ -> default
  in
  let gside = env_int "WMARK_E28_GRID" 40 6 in
  let nrand = env_int "WMARK_E28_N" 360 24 in
  let articles = env_int "WMARK_E28_ARTICLES" 40 3 in
  let was = Obs.enabled () in
  Obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Obs.set_enabled was)
  @@ fun () ->
  let grid = (Grid.structure ~w:gside ~h:gside).Weighted.graph in
  let sparse =
    (Random_struct.graph (Prng.create 0xE28) ~n:nrand ~max_degree:3
       ~edges:(3 * nrand / 2))
      .Weighted.graph
  in
  (* the biblio-XML document tree as a relational structure: one element
     per node, E = parent-child, document order *)
  let xmltree =
    let doc = Biblio_xml.generate (Prng.create articles) ~articles () in
    let n = Utree.size doc in
    let edges =
      List.concat_map
        (fun p ->
          List.concat_map (fun c -> [ (p, c); (c, p) ]) (Utree.children doc p))
        (List.init n (fun i -> i))
    in
    Structure.add_pairs (Structure.create Schema.graph n) "E" edges
  in
  let timer_s d name =
    match List.assoc_opt name d.Obs.timers with
    | Some t -> t.Obs.seconds
    | None -> 0.0
  in
  (* Typing = everything downstream of sphere extraction: the generic
     path pays Iso.prep for every distinct sphere plus the iso-check
     classification; the bounded path pays decomposition + canonical
     codes + grouping (nbh.index.codes), prep for group leaders only,
     and a classification that answers per group.  Sphere extraction
     (BFS + substructure materialization) is identical on both paths
     and reported separately. *)
  let typing d =
    timer_s d "nbh.index.codes" +. timer_s d "nbh.index.prep"
    +. timer_s d "nbh.index.classify"
  in
  (* one measured index run: (index, typing s, spheres-span s, diff) *)
  let measure g ~rho ~width_bound =
    let since = Obs.snapshot () in
    let ix = Neighborhood.index_universe ~width_bound g ~rho ~arity:1 in
    let d = Obs.diff ~since (Obs.snapshot ()) in
    (ix, typing d, d)
  in
  let best_of_2 g ~rho ~width_bound =
    let r1 = measure g ~rho ~width_bound in
    let r2 = measure g ~rho ~width_bound in
    let (_, t1, _) = r1 and (_, t2, _) = r2 in
    if t1 <= t2 then r1 else r2
  in
  (* local-scheme capacity of an index: same-type elements pair up *)
  let capacity ix =
    let per_type = Hashtbl.create 64 in
    Tuple.Map.iter
      (fun _ ty ->
        Hashtbl.replace per_type ty
          (1 + Option.value ~default:0 (Hashtbl.find_opt per_type ty)))
      ix.Neighborhood.types;
    Hashtbl.fold (fun _ c acc -> acc + (c / 2)) per_type 0
  in
  let t =
    Texttab.create
      [ "workload"; "n"; "rho"; "bound"; "ntp"; "capacity"; "spheres s";
        "generic s"; "bounded s"; "speedup"; "identical" ]
  in
  let outputs_equal = ref true in
  let results =
    List.map
      (fun (name, g, rho) ->
        let width = Neighborhood.max_sphere_width g ~rho in
        let gen, gen_s, d_gen = best_of_2 g ~rho ~width_bound:0 in
        let bnd, bnd_s, d_bnd = best_of_2 g ~rho ~width_bound:width in
        (* pure extraction: the spheres span minus its nested code/prep *)
        let extraction d =
          timer_s d "nbh.index.spheres"
          -. timer_s d "nbh.index.codes"
          -. timer_s d "nbh.index.prep"
        in
        let gen_ext = extraction d_gen and bnd_ext = extraction d_bnd in
        let same =
          gen.Neighborhood.rho = bnd.Neighborhood.rho
          && Tuple.Map.equal Int.equal gen.Neighborhood.types
               bnd.Neighborhood.types
          && gen.Neighborhood.representatives = bnd.Neighborhood.representatives
        in
        outputs_equal := !outputs_equal && same;
        let speedup = gen_s /. bnd_s in
        Texttab.addf t "%s|%d|%d|%d|%d|%d|%.4f|%.4f|%.4f|%.2fx|%s" name
          (Structure.size g) rho width (Neighborhood.ntp gen) (capacity gen)
          gen_ext gen_s bnd_s speedup
          (if same then "yes" else "NO");
        if not same then failwith ("e28: bounded path diverged on " ^ name);
        (name, width, gen_s, bnd_s, gen_ext, bnd_ext, speedup, d_bnd,
         capacity gen, Neighborhood.ntp gen))
      [
        (Printf.sprintf "grid %dx%d" gside gside, grid, 2);
        (Printf.sprintf "random n=%d d~3" nrand, sparse, 2);
        (Printf.sprintf "biblio-xml a=%d" articles, xmltree, 2);
      ]
  in
  Texttab.print t;
  let counter_of d name =
    match List.assoc_opt name d.Obs.counters with Some v -> v | None -> 0
  in
  let scalars_of
      (name, width, gen_s, bnd_s, gen_ext, bnd_ext, speedup, d_bnd, cap, ntp) =
    let p = String.map (function ' ' | '~' | '=' -> '_' | c -> c) name in
    [
      (p ^ "_width_bound", Json.Int width);
      (p ^ "_ntp", Json.Int ntp);
      (p ^ "_capacity", Json.Int cap);
      (p ^ "_generic_spheres_s", Json.Float gen_ext);
      (p ^ "_bounded_spheres_s", Json.Float bnd_ext);
      (p ^ "_generic_typing_s", Json.Float gen_s);
      (p ^ "_bounded_typing_s", Json.Float bnd_s);
      (p ^ "_typing_speedup", Json.Float speedup);
      (p ^ "_iso_bypassed", Json.Int (counter_of d_bnd "nbh.bw.iso_bypassed"));
      (p ^ "_decompositions",
       Json.Int (counter_of d_bnd "nbh.bw.decompositions"));
      (p ^ "_width_fallbacks",
       Json.Int (counter_of d_bnd "nbh.bw.width_fallbacks"));
    ]
  in
  (* stable grid_* names for the CI guard, independent of the
     size-carrying per-workload prefixes above *)
  let grid_stable =
    match results with
    | (_, width, _, _, _, _, s, d_bnd, _, _) :: _ ->
        [
          ("grid_typing_speedup", Json.Float s);
          ("grid_width_bound", Json.Int width);
          ("grid_iso_bypassed",
           Json.Int (counter_of d_bnd "nbh.bw.iso_bypassed"));
          ("grid_width_fallbacks",
           Json.Int (counter_of d_bnd "nbh.bw.width_fallbacks"));
        ]
    | [] -> [ ("grid_typing_speedup", Json.Float 0.0) ]
  in
  record_scalars ~experiment:"e28"
    (List.concat_map scalars_of results
    @ grid_stable
    @ [ ("outputs_equal", Json.Bool !outputs_equal) ]);
  Printf.printf
    "Per workload the bound is the surveyed max sphere width, so every\n\
     sphere takes the decomposition-code path and exact iso runs only\n\
     once per code group.  Typing time is the codes+prep+classify timer\n\
     total: the bounded path's decomposition probes, canonical codes\n\
     and grouping are charged against the prep+classify work they\n\
     replace, and sphere extraction (identical on both paths) is the\n\
     separate spheres column.  Outputs are asserted bit-identical\n\
     in-bench; grid_typing_speedup and outputs_equal feed the >= 2x CI\n\
     guard.\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17); ("e18", e18);
    ("e19", e19); ("e20", e20); ("e21", e21); ("e22", e22); ("e23", e23);
    ("e24", e24); ("e25", e25); ("e26", e26); ("e27", e27); ("e28", e28);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc jobs json = function
    | [] -> (List.rev acc, jobs, json)
    | "--jobs" :: v :: rest -> parse acc (int_of_string_opt v) json rest
    | "--json" :: path :: rest -> parse acc jobs (Some path) rest
    | "--width-bound" :: v :: rest ->
        (match int_of_string_opt v with
        | Some k when k >= 0 -> Neighborhood.set_width_bound (Some k)
        | _ -> Printf.eprintf "ignoring --width-bound %s\n" v);
        parse acc jobs json rest
    | a :: rest -> parse (a :: acc) jobs json rest
  in
  let args, jobs_arg, json_path = parse [] None None args in
  (match jobs_arg with Some _ -> Par.set_jobs jobs_arg | None -> ());
  (* A trajectory file always carries the counters: flip collection on
     unless the user explicitly opted out with WMARK_STATS=0. *)
  if json_path <> None && Sys.getenv_opt "WMARK_STATS" <> Some "0" then
    Obs.set_enabled true;
  let no_speed = List.mem "--no-speed" args in
  let wanted = List.filter (fun a -> a <> "--no-speed") args in
  let to_run =
    if wanted = [] then experiments
    else
      List.filter_map
        (fun id ->
          match List.assoc_opt id experiments with
          | Some f -> Some (id, f)
          | None ->
              Printf.eprintf "unknown experiment %s\n" id;
              None)
        wanted
  in
  let t0 = Unix.gettimeofday () in
  let results =
    if Par.jobs () <= 1 then
      (* sequential: stream straight to stdout.  Counter deltas are
         attributable per experiment only here — under parallel dispatch
         concurrent experiments share the cells, so the trajectory file
         then carries one global snapshot instead. *)
      List.map
        (fun (id, f) ->
          let since = Obs.snapshot () in
          let (), dt = secs f in
          let obs =
            if Obs.enabled () then Some (Obs.diff ~since (Obs.snapshot ()))
            else None
          in
          (id, None, dt, obs))
        to_run
    else
      (* parallel: one pool task per experiment, output captured
         per-task and replayed below in submission order *)
      Par.map_list
        (fun (id, f) ->
          let b = Buffer.create 4096 in
          let prev = Domain.DLS.get sink in
          Domain.DLS.set sink (Some b);
          let (), dt =
            Fun.protect
              ~finally:(fun () -> Domain.DLS.set sink prev)
              (fun () -> secs f)
          in
          (id, Some (Buffer.contents b), dt, None))
        to_run
  in
  List.iter
    (fun (_, captured, _, _) ->
      match captured with Some s -> Stdlib.print_string s | None -> ())
    results;
  if (not no_speed) && wanted = [] then Speed.run ();
  (match json_path with
  | None -> ()
  | Some path ->
      let experiments_json =
        List.map
          (fun (id, _, dt, obs) ->
            Json.Obj
              ([ ("id", Json.String id); ("wall_s", Json.Float dt) ]
              @ (match Hashtbl.find_opt scalars id with
                | Some r -> [ ("scalars", Json.Obj !r) ]
                | None -> [])
              @
              match obs with
              | Some d ->
                  [
                    ( "obs",
                      Json.Obj
                        [
                          ("counters", Obs_report.counters_json d);
                          ("timers", Obs_report.timers_json d);
                          ("histos", Obs_report.histos_json d);
                        ] );
                  ]
              | None -> []))
          results
      in
      let global_obs =
        if Obs.enabled () then begin
          let s = Obs.snapshot () in
          [
            ( "obs",
              Json.Obj
                [
                  ("counters", Obs_report.counters_json s);
                  ("timers", Obs_report.timers_json s);
                  ("histos", Obs_report.histos_json s);
                ] );
          ]
        end
        else []
      in
      Json.to_file path
        (Json.Obj
           ([
              ("schema", Json.String "qpwm-bench/1");
              ("pr", Json.Int 10);
              ("jobs", Json.Int (Par.jobs ()));
              ("pool_size", Json.Int (Par.pool_size ()));
              ("recommended_domains", Json.Int (Domain.recommended_domain_count ()));
              ("experiments", Json.List experiments_json);
            ]
           @ global_obs));
      Stdlib.Printf.printf "\nwrote %s\n" path);
  Printf.printf "\ntotal: %.1f s (wall)\n" (Unix.gettimeofday () -. t0)
