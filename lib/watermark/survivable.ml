type alignment = {
  observed : int Tuple.Map.t;
  total : int;
  matched : int;
  missing : int;
}

(* Observability: the cost and yield of carrier realignment — how many
   endpoints were looked up and how many survived the attack. *)
module Obs = Wm_obs.Obs

let c_align_lookups = Obs.counter "align.lookups"
let c_align_matched = Obs.counter "align.matched"
let c_align_missing = Obs.counter "align.missing"
let t_align = Obs.timer "align.time"

let record_alignment a =
  Obs.add c_align_lookups a.total;
  Obs.add c_align_matched a.matched;
  Obs.add c_align_missing a.missing;
  a

(* --- relational alignment: match by element display names ------------- *)

module Smap = Map.Make (String)

(* name -> element for the suspect; duplicated names are ambiguous and
   excluded (matching one of several same-named rows would decode noise,
   an erasure is honest). *)
let name_index g =
  let index, dup =
    Structure.fold_universe
      (fun x (index, dup) ->
        let n = Structure.name_of g x in
        if Smap.mem n index then (index, Smap.add n () dup)
        else (Smap.add n x index, dup))
      g (Smap.empty, Smap.empty)
  in
  Smap.filter (fun n _ -> not (Smap.mem n dup)) index

let align_structures ?jobs ?tuples ~(original : Weighted.structure)
    ~(suspect : Weighted.structure) () =
  Obs.time t_align @@ fun () ->
  record_alignment @@
  let tuples =
    match tuples with
    | Some ts -> ts
    | None -> Weighted.support original.Weighted.weights
  in
  let og = original.Weighted.graph in
  let index = name_index suspect.Weighted.graph in
  let locate t =
    let out = Array.make (Tuple.arity t) (-1) in
    let ok = ref true in
    Array.iteri
      (fun i x ->
        match Smap.find_opt (Structure.name_of og x) index with
        | Some y -> out.(i) <- y
        | None -> ok := false)
      t;
    if !ok then Some (Weighted.get suspect.Weighted.weights out) else None
  in
  (* each carrier endpoint is located independently (parallel phase);
     the alignment map is then folded sequentially in input order *)
  let located =
    Wm_par.Pool.map_list ?jobs (fun t -> (t, locate t)) tuples
  in
  let observed, matched, missing =
    List.fold_left
      (fun (obs, m, s) (t, hit) ->
        match hit with
        | Some v -> (Tuple.Map.add t v obs, m + 1, s)
        | None -> (obs, m, s + 1))
      (Tuple.Map.empty, 0, 0) located
  in
  { observed; total = matched + missing; matched; missing }

(* --- XML alignment: match value nodes by root-to-node path ------------ *)

(* The identity of an element is its tag plus the nearby non-numeric text
   (firstnames, titles, ... — whatever a redistributor must keep for the
   data to stay useful).  Numeric text is excluded because those are
   exactly the weights the marker perturbs.  "Nearby" means at most two
   levels down (the element's own text and its children's text, e.g. a
   student's <firstname> content): identity must stay *local*, or deleting
   one subtree would change every ancestor's identity and break all other
   signatures in the document.  A value node's signature is the identity
   path from the root down to its parent; an ordinal disambiguates
   same-signature siblings (several exams of one student), which therefore
   survive deletion but not reordering. *)
let identity_text u v =
  let buf = Buffer.create 32 in
  let rec go depth v =
    if Wm_xml.Utree.is_text u v then begin
      if int_of_string_opt (Wm_xml.Utree.label u v) = None then begin
        Buffer.add_string buf (Wm_xml.Utree.label u v);
        Buffer.add_char buf '|'
      end
    end
    else if depth < 2 then
      List.iter (go (depth + 1)) (Wm_xml.Utree.children u v)
  in
  go 0 v;
  Buffer.contents buf

let path_signature u v =
  let rec up v acc =
    match Wm_xml.Utree.parent u v with
    | None -> acc
    | Some p -> up p ((Wm_xml.Utree.label u p, identity_text u p) :: acc)
  in
  up v []

(* signature (with ordinal) -> node, dropping colliding signatures. *)
let signature_index u =
  let counts = Hashtbl.create 64 in
  let index = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let s = path_signature u v in
      let k = (s, Option.value ~default:0 (Hashtbl.find_opt counts s)) in
      Hashtbl.replace counts s (snd k + 1);
      Hashtbl.replace index k v)
    (Wm_xml.Utree.value_nodes u);
  index

let align_trees ~original ~suspect =
  Obs.time t_align @@ fun () ->
  record_alignment @@
  let sindex = signature_index suspect in
  let counts = Hashtbl.create 64 in
  let observed, matched, missing =
    List.fold_left
      (fun (obs, m, s) v ->
        let sg = path_signature original v in
        let k = (sg, Option.value ~default:0 (Hashtbl.find_opt counts sg)) in
        Hashtbl.replace counts sg (snd k + 1);
        match Hashtbl.find_opt sindex k with
        | Some v' -> begin
            match Wm_xml.Utree.value_of suspect v' with
            | Some x -> (Tuple.Map.add (Tuple.singleton v) x obs, m + 1, s)
            | None -> (obs, m, s + 1)
          end
        | None -> (obs, m, s + 1))
      (Tuple.Map.empty, 0, 0)
      (Wm_xml.Utree.value_nodes original)
  in
  { observed; total = matched + missing; matched; missing }

(* --- degraded-mode reading ------------------------------------------- *)

let read ?jobs pairs ~original alignment ~length =
  Detector.read ?jobs pairs ~original ~observed:alignment.observed ~length

type robust_verdict = {
  message : Bitvec.t;
  carriers : Detector.verdict;
  times : int;
  erased_bits : int;
  all_erased : bool;
}

let detect_robust ?jobs ~pairs ~times ~length ~original alignment =
  let carriers = read ?jobs pairs ~original alignment ~length:(times * length) in
  let message = Bitvec.create length in
  let erased_bits = ref 0 in
  for i = 0 to length - 1 do
    let ones = ref 0 and alive = ref 0 in
    for t = 0 to times - 1 do
      let j = (t * length) + i in
      if not (Bitvec.get carriers.Detector.erasure j) then begin
        incr alive;
        if Bitvec.get carriers.Detector.decoded j then incr ones
      end
    done;
    if !alive = 0 then incr erased_bits;
    Bitvec.set message i (2 * !ones > !alive)
  done;
  (* Total wipe-out is an explicit verdict, not a zero-trials binomial
     call decoding to a confident all-zero message. *)
  {
    message;
    carriers;
    times;
    erased_bits = !erased_bits;
    all_erased = carriers.Detector.erased = times * length;
  }

let match_pvalue ~expected rv =
  Detector.match_pvalue
    ~expected:(Codec.repeat ~times:rv.times expected)
    rv.carriers

let detect_structure ?jobs scheme ~times ~length
    ~(original : Weighted.structure) ~(suspect : Weighted.structure) =
  let pairs = Local_scheme.pairs scheme in
  let endpoints =
    List.concat_map (fun { Pairing.fst; snd } -> [ fst; snd ]) pairs
  in
  let alignment =
    align_structures ?jobs ~tuples:endpoints ~original ~suspect ()
  in
  ( detect_robust ?jobs ~pairs ~times ~length
      ~original:original.Weighted.weights alignment,
    alignment )

let detect_tree ?jobs ~pairs ~times ~length ~original suspect =
  let alignment = align_trees ~original ~suspect in
  ( detect_robust ?jobs ~pairs ~times ~length
      ~original:(Wm_xml.Utree.weights original)
      alignment,
    alignment )
