type options = Local_scheme.options

type report = {
  queries : int;
  rho : int list;
  ntp : int list;
  active : int;
  pairs_available : int;
  pairs_selected : int;
  budget : int;
  max_split : int;
}

type t = {
  systems : Query_system.t list;
  combined : Query_system.t;
  selected : Pairing.pair list;
  rep : report;
  indexes : Neighborhood.index list;
  options : options;
}

(* Disjoint union of query systems: parameters carry their query index as
   a leading component.  Result sets (hence active sets, split counts,
   distortion) are untouched — only parameter identity is enriched. *)
let tag i a = Tuple.concat (Tuple.singleton i) a

let combined_of systems =
  let arr = Array.of_list systems in
  let params =
    List.concat
      (List.mapi
         (fun i qs -> List.map (tag i) (Query_system.params qs))
         systems)
  in
  Query_system.of_custom ~params
    ~result_set:(fun tagged ->
      let i = tagged.(0) in
      let a = Array.sub tagged 1 (Array.length tagged - 1) in
      Query_system.result_set arr.(i) a)
    ~weight_arity:(Query_system.weight_arity (List.hd systems))

(* Tail shared by [prepare] and [update]; deterministic in its inputs, so
   incrementally refreshed systems/indexes reproduce the scheme exactly. *)
let assemble ~options ~queries ~systems ~indexes =
  let combined = combined_of systems in
  if Query_system.active combined = [] then
    Error "queries have no active weighted elements"
  else begin
    let canonical =
      List.concat
        (List.mapi
           (fun i ix ->
             List.map (tag i) (Array.to_list ix.Neighborhood.representatives))
           indexes)
    in
    let all_pairs = Pairing.s_partition combined ~canonical in
    let budget = int_of_float (ceil (1.0 /. options.Local_scheme.epsilon)) in
    let selected =
      Pairing.select_greedy
        (Prng.create options.Local_scheme.seed)
        combined all_pairs ~budget
    in
    if selected = [] then Error "no pair survived eps-good selection"
    else
      Ok
        {
          systems;
          combined;
          selected;
          indexes;
          options;
          rep =
            {
              queries = List.length queries;
              rho = List.map (fun ix -> ix.Neighborhood.rho) indexes;
              ntp = List.map Neighborhood.ntp indexes;
              active = List.length (Query_system.active combined);
              pairs_available = List.length all_pairs;
              pairs_selected = List.length selected;
              budget;
              max_split = Pairing.max_split combined selected;
            };
        }
  end

let check_arity (ws : Weighted.structure) queries =
  List.exists
    (fun q -> Query.result_arity q <> Weighted.arity ws.Weighted.weights)
    queries

let prepare ?(options = Local_scheme.default_options) (ws : Weighted.structure)
    queries =
  let g = ws.Weighted.graph in
  if queries = [] then Error "no queries"
  else if check_arity ws queries then
    Error "some query's result arity differs from the weight arity"
  else begin
    let systems = List.map (Query_system.of_relational g) queries in
    let rhos =
      List.map
        (fun q ->
          match options.Local_scheme.rho with
          | Some r -> r
          | None -> Locality.best_rank q.Query.phi)
        queries
    in
    let indexes =
      List.map2
        (fun q rho -> Neighborhood.index g ~rho (Query.all_params g q))
        queries rhos
    in
    assemble ~options ~queries ~systems ~indexes
  end

let update t ~old (ws : Weighted.structure) queries ~dirty =
  let options = t.options in
  let g = ws.Weighted.graph in
  if List.length queries <> List.length t.systems then
    Error "update: query list differs from the prepared one"
  else if check_arity ws queries then
    Error "some query's result arity differs from the weight arity"
  else begin
    let old_g = old.Weighted.graph in
    let old_gf = Gaifman.of_structure old_g in
    let gf = Gaifman.refresh g ~prev:old_gf ~dirty in
    let systems =
      List.map2
        (fun (qs, ix) q ->
          let rho = ix.Neighborhood.rho in
          let affected =
            Neighborhood.affected_elements ~old_gf ~gf ~rho ~dirty
          in
          Query_system.refresh_relational qs g q ~affected)
        (List.combine t.systems t.indexes)
        queries
    in
    let indexes =
      List.map
        (fun ix -> Neighborhood.reindex ~old:old_g g ~prev:ix ~dirty)
        t.indexes
    in
    assemble ~options ~queries ~systems ~indexes
  end

let report t = t.rep
let capacity t = List.length t.selected
let pairs t = t.selected
let indexes t = t.indexes

let mark t message w =
  Weighted.apply_marks w (Pairing.orientation_marks t.selected message)

let detect_weights t ~original ~suspect ~length =
  if length > capacity t then
    invalid_arg "Multi_scheme.detect_weights: length exceeds capacity";
  let observed =
    Query_system.reconstruct t.combined (Query_system.server t.combined suspect)
  in
  (Detector.read t.selected ~original ~observed ~length).Detector.decoded

let distortion t w w' =
  List.mapi (fun i qs -> (i, Distortion.global qs w w')) t.systems
