(** Deterministic attack-survivability sweeps.

    The harness behind experiment E19 and the [wmark attack] subcommand:
    mark a workload through the {!Robust} (Fact 1) wrapper, subject the
    marked copy to a grid of (attack x budget x redundancy) cells — both
    weight-level ({!Adversary.attack}) and structural
    ({!Adversary.structural}) — and record, per cell, the bit-error rate,
    the erasure rate, the id-match p-value over surviving carriers, the
    distortion the attacker spent, and whether the survivable and the
    plain aligned detector each recovered the message.

    Everything is a pure function of the seed: each cell gets its own
    generator derived from (seed, redundancy, grid position), so adding a
    row to the grid never changes earlier rows. *)

type spec =
  | Weights of Adversary.attack
  | Structural of Adversary.structural
  | Edited of Adversary.edit_attack
      (** An edit-script attack: surviving element ids are preserved, the
          reported dirty set drives an incremental
          {!Wm_relational.Neighborhood.reindex} from the scheme's base
          index, and the cell reports whether the attack drifted the
          neighborhood-type set ({!outcome.type_drift}). *)

val describe_spec : spec -> string

type outcome = {
  attack : string;
  redundancy : int;
  bits : int;
  carriers : int;  (** pairs read = redundancy * bits *)
  erased : int;
  erasure_rate : float;
  bit_errors : int;  (** Hamming distance decoded vs embedded *)
  ber : float;
  pvalue : float;  (** id-match p-value over surviving carriers *)
  distortion : int option;
      (** global budget d' spent, for weight-level attacks *)
  recovered : bool;  (** survivable detector got the exact message *)
  naive_recovered : bool;  (** the aligned detector path did too *)
  type_drift : bool option;
      (** [Edited] cells only: did the attack create or suppress a
          neighborhood type (Theorem 8's re-mark condition), measured by
          incremental reindex against the base index *)
}

type report = {
  workload : string;
  message : Bitvec.t;
  capacity : int;
  active : int;
  rows : outcome list;
}

val default_grid : active:int -> spec list
(** Budgets scaled to the workload: flip counts at 10%/30% of the active
    set, deletions at 10–30%, a half sample, 10% noise rows, a shuffle,
    plus a zero-delta offset as the no-attack baseline row; appended after
    those, edit-script cells (tuple drops at 10%/30%, a 10% element
    graft) that also report type drift. *)

val run :
  ?jobs:int ->
  ?options:Local_scheme.options ->
  ?seed:int ->
  ?redundancies:int list ->
  ?message_bits:int ->
  ?grid:spec list ->
  ?workload:string ->
  Weighted.structure ->
  Query.t ->
  (report, string) result
(** Prepare the Theorem 3 scheme once, then sweep — one grid cell per
    {!Wm_par.Pool} task when [jobs] (default {!Wm_par.Pool.jobs})
    exceeds 1.  Every cell owns a PRNG derived from (seed, redundancy,
    grid position), so the report is bit-identical for every job count.
    Redundancies that do not fit the capacity are skipped; [Error _]
    when none fits or the scheme cannot be prepared. *)

val to_csv : report -> string
(** Machine-readable form, one line per cell, RFC-4180-quoted attack
    labels. *)

val to_json : report -> Wm_util.Json.t
(** The report as JSON ([wmark attack --json], the bench trajectory). *)

val render : report -> string
(** Human-readable table. *)

val pp : Format.formatter -> report -> unit
