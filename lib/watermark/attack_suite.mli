(** Deterministic attack-survivability sweeps.

    The harness behind experiment E19 and the [wmark attack] subcommand:
    mark a workload through the {!Robust} (Fact 1) wrapper, subject the
    marked copy to a grid of (attack x budget x redundancy) cells — both
    weight-level ({!Adversary.attack}) and structural
    ({!Adversary.structural}) — and record, per cell, the bit-error rate,
    the erasure rate, the id-match p-value over surviving carriers, the
    distortion the attacker spent, and whether the survivable and the
    plain aligned detector each recovered the message.

    Everything is a pure function of the seed: each cell gets its own
    generator derived from (seed, redundancy, grid position), so adding a
    row to the grid never changes earlier rows. *)

type spec =
  | Weights of Adversary.attack
  | Structural of Adversary.structural
  | Edited of Adversary.edit_attack
      (** An edit-script attack: surviving element ids are preserved, the
          reported dirty set drives an incremental
          {!Wm_relational.Neighborhood.reindex} from the scheme's base
          index, and the cell reports whether the attack drifted the
          neighborhood-type set ({!outcome.type_drift}). *)
  | Mixed of { fraction : float }
      (** Mix-and-match against a {e second} copy of the same instance
          marked with the complement message (the suite marks it
          internally): spliced carriers vote for the other message.
          Kamran–Farooq taxonomy, arXiv:1801.08271. *)
  | Informed_offset of { delta : int }
      (** {!Adversary.Targeted_offset} on the scheme's own pair list: a
          recovery-aware attacker distorts every carrier {e identically on
          both pair endpoints}, so weight-difference detection stays
          blind while the content audit registers every touched group. *)
  | Capsule_mix of { fraction : float }
      (** {!Mixed} plus {!Recovery.splice} of the two copies' certificate
          capsules at the same fraction: the surviving records are
          authentic but describe the other marking, so repair can be
          actively wrong — the false-repair hazard the
          {!outcome.false_repairs} column measures. *)

val describe_spec : spec -> string

val spec_params : spec -> string
(** Machine-readable [kind:key=value,...] parameter string — with the
    master seed and the grid index this replays any cell standalone
    ([wmark attack --only]). *)

type outcome = {
  attack : string;
  grid_index : int;  (** position in the grid — the replay handle *)
  cell_seed : int;
      (** the derived per-cell PRNG seed ((master * 1000003) + (R * 1009)
          + index) actually used, recorded for standalone replay *)
  params : string;  (** {!spec_params} of the cell's attack *)
  redundancy : int;
  bits : int;
  carriers : int;  (** pairs read = redundancy * bits *)
  erased : int;
  erasure_rate : float;
  bit_errors : int;  (** Hamming distance decoded vs embedded *)
  ber : float;
  pvalue : float;  (** id-match p-value over surviving carriers *)
  accused : bool;
      (** [pvalue] at or below the {!Detector.sidak}-corrected threshold
          (alpha 0.01) over the {e full} grid: every cell scores one
          ownership hypothesis, so the grid is a family of simultaneous
          tests and the uncorrected per-cell alpha would overstate the
          evidence.  Computed before any [only] filtering, so replayed
          cells keep their verdicts. *)
  distortion : int option;
      (** global budget d' spent, for weight-level attacks *)
  recovered : bool;  (** survivable detector got the exact message *)
  naive_recovered : bool;  (** the aligned detector path did too *)
  type_drift : bool option;
      (** [Edited] cells only: did the attack create or suppress a
          neighborhood type (Theorem 8's re-mark condition), measured by
          incremental reindex against the base index *)
  rec_recovered : bool;
      (** repair-then-detect ({!Recovery.detect_repaired}) got the exact
          message *)
  recovered_bits : int;
      (** message bits wrong before repair and right after — what the
          certificates bought *)
  false_repairs : int;
      (** message bits right before repair and wrong after — repair
          actively hurting, e.g. under [Capsule_mix] *)
  groups_repaired : int;
  groups_unrepairable : int;
  groups_distorted : int;  (** audit result on the unrepaired suspect *)
  groups_erased : int;
}

type report = {
  workload : string;
  message : Bitvec.t;
  capacity : int;
  active : int;
  rows : outcome list;
}

val default_grid : active:int -> spec list
(** Budgets scaled to the workload: flip counts at 10%/30% of the active
    set, deletions at 10–30%, a half sample, 10% noise rows, a shuffle,
    plus a zero-delta offset as the no-attack baseline row; appended after
    those, edit-script cells (tuple drops at 10%/30%, a 10% element
    graft) that also report type drift. *)

val run :
  ?jobs:int ->
  ?options:Local_scheme.options ->
  ?seed:int ->
  ?redundancies:int list ->
  ?message_bits:int ->
  ?grid:spec list ->
  ?only:int list ->
  ?workload:string ->
  Weighted.structure ->
  Query.t ->
  (report, string) result
(** Prepare the Theorem 3 scheme once, then sweep — one grid cell per
    {!Wm_par.Pool} task when [jobs] (default {!Wm_par.Pool.jobs})
    exceeds 1.  Every cell owns a PRNG derived from (seed, redundancy,
    grid position), so the report is bit-identical for every job count.
    [only] restricts the sweep to the listed grid indices {e without}
    changing their derived PRNGs — any cell from a previous report or
    trace span replays standalone with identical numbers.  Redundancies
    that do not fit the capacity are skipped; [Error _] when none fits or
    the scheme cannot be prepared. *)

val to_csv : report -> string
(** Machine-readable form, one line per cell, RFC-4180-quoted attack
    labels. *)

val to_json : report -> Wm_util.Json.t
(** The report as JSON ([wmark attack --json], the bench trajectory). *)

val render : report -> string
(** Human-readable table. *)

val pp : Format.formatter -> report -> unit
