(** The interface watermarking schemes program against.

    Both instantiations of the paper — FO queries over relational
    structures (Section 3) and automaton queries over trees (Section 4) —
    present the same surface to a marker/detector: a set of possible
    parameters, a result-set function W_a, and weights.  A query system
    value captures that surface once, with memoized result sets (the
    evaluator is called once per parameter, and the cost is the substrate's
    to report, not to hide).

    The {e server} type models the data server of the 3-tier setting: the
    only thing a detector may touch.  A server answers a parameter with
    A_a = { (b, W(b)) : b in W_a } and nothing else; detectors reconstruct
    active weights exclusively through {!reconstruct}. *)

type t

val of_relational : Structure.t -> Query.t -> t
(** Parameters are all of U^r. *)

val of_tree : Wm_trees.Tree_query.t -> Wm_trees.Btree.t -> t
(** Parameters are all k-tuples of nodes. *)

val of_custom :
  params:Tuple.t list -> result_set:(Tuple.t -> Tuple.Set.t) ->
  weight_arity:int -> t
(** Escape hatch for synthetic families (the Remark 1 experiment). *)

val params : t -> Tuple.t list
val weight_arity : t -> int

val result_set : t -> Tuple.t -> Tuple.Set.t
(** W_a (memoized). *)

val active : t -> Tuple.t list
(** W as a sorted list. *)

val active_set : t -> Tuple.Set.t

val precompute : t -> unit
(** Force every memo (all result sets, the active set) eagerly, promoting
    params into a lock-free frozen map.  A query system is safe to share
    across {!Wm_par.Pool} domains with or without this call — cache misses
    on tuples outside [params] (survivable realignment asks those) go
    through an internal mutex — but precomputing keeps the common path
    lock-free.  Parallel call sites ({!Wm_watermark.Attack_suite.run}) call
    this before fanning out. *)

val refresh :
  t ->
  result_fn:(Tuple.t -> Tuple.Set.t) ->
  holds:(Tuple.t -> Tuple.t -> bool) ->
  params:Tuple.t list ->
  size:int ->
  affected:int list ->
  t
(** Edit-scoped cache carry-over: a query system for the edited substrate
    ([result_fn]/[params] evaluate there, [size] is its universe) whose
    memo is seeded from this one instead of starting cold.  A cached entry
    survives when its parameter tuple avoids [affected] (see
    {!Wm_relational.Neighborhood.affected_elements}) and stays in range;
    its result set is patched by dropping results touching the affected
    region and re-asking [holds param result] for every candidate result
    tuple that touches it.  Parameters inside the region are dropped and
    re-evaluated lazily.  Sound for queries local at the radius used to
    compute [affected] — the same assumption the scheme's type index makes
    (DESIGN.md 5.7). *)

val refresh_relational : t -> Structure.t -> Query.t -> affected:int list -> t
(** {!refresh} specialized to an FO query over the edited structure:
    membership probes are {!Wm_logic.Eval.holds} on the patched
    bindings. *)

val f : t -> Weighted.t -> Tuple.t -> int
(** f_(G,W)(a) = sum of weights over W_a. *)

(** {1 Servers} *)

type server = Tuple.t -> (Tuple.t * int) list
(** What a data server exposes to final users. *)

val server : t -> Weighted.t -> server
(** An honest server over the given (possibly marked, possibly attacked)
    weights. *)

val reconstruct : t -> server -> int Tuple.Map.t
(** Observed weight of every active element, obtained by querying the
    server on every parameter — the paper's "the active weights can always
    be recovered by asking A_a for all possible values of a".  When answers
    disagree across parameters (a cheating server), the value seen last in
    parameter order wins; honest servers are consistent. *)

val reconstruct_some : t -> server -> Tuple.t list -> int Tuple.Map.t
(** Like {!reconstruct} but asking only the listed parameters — a detector
    on a query budget (a real owner probing a pirate site cannot fire
    millions of requests).  Elements not covered by any asked parameter are
    absent from the map and read as silent carriers downstream. *)
