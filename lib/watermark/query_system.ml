type t = {
  params : Tuple.t list;
  result_fn : Tuple.t -> Tuple.Set.t;
  weight_arity : int;
  cache : Tuple.Set.t Tuple.Hashtbl.t;
  mutable active : Tuple.Set.t option;
}

let make params result_fn weight_arity =
  {
    params;
    result_fn;
    weight_arity;
    cache = Tuple.Hashtbl.create (List.length params);
    active = None;
  }

let of_relational g q =
  make (Query.all_params g q) (Query.result_set g q) (Query.result_arity q)

let of_tree tq tree =
  make
    (Wm_trees.Tree_query.all_params tq tree)
    (Wm_trees.Tree_query.result_set tq tree)
    (Wm_trees.Tree_query.s tq)

let of_custom ~params ~result_set ~weight_arity =
  make params result_set weight_arity

let params t = t.params
let weight_arity t = t.weight_arity

let result_set t a =
  match Tuple.Hashtbl.find_opt t.cache a with
  | Some s -> s
  | None ->
      let s = t.result_fn a in
      Tuple.Hashtbl.replace t.cache a s;
      s

let active_set t =
  match t.active with
  | Some s -> s
  | None ->
      let s =
        List.fold_left
          (fun acc a -> Tuple.Set.union acc (result_set t a))
          Tuple.Set.empty t.params
      in
      t.active <- Some s;
      s

let active t = Tuple.Set.elements (active_set t)

let precompute t =
  (* Force every param's result set into the cache and materialize the
     active set.  After this, [result_set]/[f]/[server] only read, so a
     query system can be shared by several domains — the cache and the
     [active] field are the only mutable state in the value. *)
  ignore (active_set t)

let f t w a =
  Tuple.Set.fold (fun b acc -> acc + Weighted.get w b) (result_set t a) 0

type server = Tuple.t -> (Tuple.t * int) list

let server t w a =
  Tuple.Set.fold (fun b acc -> (b, Weighted.get w b) :: acc) (result_set t a) []
  |> List.rev

let reconstruct_some _t srv params =
  List.fold_left
    (fun acc a ->
      List.fold_left (fun acc (b, v) -> Tuple.Map.add b v acc) acc (srv a))
    Tuple.Map.empty params

let reconstruct t srv = reconstruct_some t srv t.params
