(* Observability: the memoization behavior of [result_set] (frozen-map
   hits vs. mutex-guarded cache hits vs. full evaluations) and the reach
   of edit-scoped refreshes. *)
module Obs = Wm_obs.Obs

let c_frozen_hits = Obs.counter "qs.frozen_hits"
let c_cache_hits = Obs.counter "qs.cache_hits"
let c_misses = Obs.counter "qs.misses"
let c_refreshes = Obs.counter "qs.refreshes"
let c_refresh_kept = Obs.counter "qs.refresh_kept"
let c_refresh_candidates = Obs.counter "qs.refresh_candidates"

type t = {
  params : Tuple.t list;
  result_fn : Tuple.t -> Tuple.Set.t;
  weight_arity : int;
  mutable frozen : Tuple.Set.t Tuple.Map.t;
      (* lock-free read path: written only by [precompute]/[refresh] before
         the value is shared across domains *)
  cache : Tuple.Set.t Tuple.Hashtbl.t; (* guarded by [lock] *)
  lock : Mutex.t;
  mutable active : Tuple.Set.t option;
}

let make params result_fn weight_arity =
  {
    params;
    result_fn;
    weight_arity;
    frozen = Tuple.Map.empty;
    cache = Tuple.Hashtbl.create (List.length params);
    lock = Mutex.create ();
    active = None;
  }

let of_relational g q =
  make (Query.all_params g q) (Query.result_set g q) (Query.result_arity q)

let of_tree tq tree =
  make
    (Wm_trees.Tree_query.all_params tq tree)
    (Wm_trees.Tree_query.result_set tq tree)
    (Wm_trees.Tree_query.s tq)

let of_custom ~params ~result_set ~weight_arity =
  make params result_set weight_arity

let params t = t.params
let weight_arity t = t.weight_arity

let result_set t a =
  match Tuple.Map.find_opt a t.frozen with
  | Some s ->
      Obs.incr c_frozen_hits;
      s
  | None -> (
      Mutex.lock t.lock;
      match Tuple.Hashtbl.find_opt t.cache a with
      | Some s ->
          Mutex.unlock t.lock;
          Obs.incr c_cache_hits;
          s
      | None ->
          (* Evaluate outside the lock: [result_fn] is deterministic, so a
             racing domain computing the same miss stores the same set and
             either store may win. *)
          Mutex.unlock t.lock;
          Obs.incr c_misses;
          let s = t.result_fn a in
          Mutex.lock t.lock;
          Tuple.Hashtbl.replace t.cache a s;
          Mutex.unlock t.lock;
          s)

let active_set t =
  match t.active with
  | Some s -> s
  | None ->
      let s =
        List.fold_left
          (fun acc a -> Tuple.Set.union acc (result_set t a))
          Tuple.Set.empty t.params
      in
      t.active <- Some s;
      s

let active t = Tuple.Set.elements (active_set t)

let precompute t =
  (* Promote every param's result set into the frozen map and materialize
     the active set.  After this, [result_set] on a param never touches the
     hashtable; only misses on non-param tuples do, and those go through
     [lock]. *)
  t.frozen <-
    List.fold_left
      (fun m a -> Tuple.Map.add a (result_set t a) m)
      t.frozen t.params;
  ignore (active_set t)

(* --- edit-scoped refresh --------------------------------------------- *)

let refresh t ~result_fn ~holds ~params ~size ~affected =
  Obs.incr c_refreshes;
  let in_a = Array.make (max size 1) false in
  List.iter (fun x -> if x >= 0 && x < size then in_a.(x) <- true) affected;
  let touched tup = Array.exists (fun x -> x >= size || in_a.(x)) tup in
  (* Result tuples whose membership may have flipped: those with an element
     in the affected region.  Everything else keeps its old verdict, by the
     same rho-locality the scheme's type index relies on. *)
  let candidates =
    let r = t.weight_arity in
    let rec go k acc =
      if k = 0 then acc
      else
        go (k - 1)
          (List.concat_map
             (fun rest -> List.init size (fun x -> x :: rest))
             acc)
    in
    if size = 0 then []
    else
      List.filter_map
        (fun l ->
          let tup = Tuple.of_list l in
          if touched tup then Some tup else None)
        (go r [ [] ])
  in
  let patch a s =
    let kept = Tuple.Set.filter (fun b -> not (touched b)) s in
    List.fold_left
      (fun acc b -> if holds a b then Tuple.Set.add b acc else acc)
      kept candidates
  in
  Obs.add c_refresh_candidates (List.length candidates);
  let survivors = ref Tuple.Map.empty in
  let add a s =
    if (not (touched a)) && not (Tuple.Map.mem a !survivors) then
      survivors := Tuple.Map.add a (patch a s) !survivors
  in
  Tuple.Map.iter add t.frozen;
  Mutex.lock t.lock;
  Tuple.Hashtbl.iter add t.cache;
  Mutex.unlock t.lock;
  Obs.add c_refresh_kept (Tuple.Map.cardinal !survivors);
  {
    params;
    result_fn;
    weight_arity = t.weight_arity;
    frozen = !survivors;
    cache = Tuple.Hashtbl.create (List.length params);
    lock = Mutex.create ();
    active = None;
  }

let refresh_relational t g q ~affected =
  let holds a b =
    let env = Eval.bind_all Eval.empty_env q.Query.params a in
    let env = Eval.bind_all env q.Query.results b in
    Eval.holds g env q.Query.phi
  in
  refresh t
    ~result_fn:(Query.result_set g q)
    ~holds
    ~params:(Query.all_params g q)
    ~size:(Structure.size g) ~affected

let f t w a =
  Tuple.Set.fold (fun b acc -> acc + Weighted.get w b) (result_set t a) 0

type server = Tuple.t -> (Tuple.t * int) list

let server t w a =
  Tuple.Set.fold (fun b acc -> (b, Weighted.get w b) :: acc) (result_set t a) []
  |> List.rev

let reconstruct_some _t srv params =
  List.fold_left
    (fun acc a ->
      List.fold_left (fun acc (b, v) -> Tuple.Map.add b v acc) acc (srv a))
    Tuple.Map.empty params

let reconstruct t srv = reconstruct_some t srv t.params
