(* Multi-recipient fingerprinting (see fingerprint.mli).

   Observability: fp.copies counts generated copies, fp.reads carrier
   reads, fp.traces tracing runs, fp.scored candidates scored,
   fp.accused accusations made, fp.cells collusion-grid cells; fp.mark /
   fp.read / fp.trace / fp.grid time the corresponding phases. *)

module Obs = Wm_obs.Obs

let c_copies = Obs.counter "fp.copies"
let c_reads = Obs.counter "fp.reads"
let c_traces = Obs.counter "fp.traces"
let c_scored = Obs.counter "fp.scored"
let c_accused = Obs.counter "fp.accused"
let c_cells = Obs.counter "fp.cells"
let t_mark = Obs.timer "fp.mark"
let t_read = Obs.timer "fp.read"
let t_trace = Obs.timer "fp.trace"
let t_grid = Obs.timer "fp.grid"
let t_cell = Obs.timer "fp.cell"

type t = {
  embed : Bitvec.t -> Weighted.t -> Weighted.t;
  pairs : Pairing.pair array;  (* the marked prefix: times * length pairs *)
  active : Tuple.t list;
  master : int;
  length : int;
  times : int;
}

let length t = t.length
let times t = t.times
let master t = t.master

(* --- key derivation -------------------------------------------------- *)

(* FNV-1a with the master key mixed in as a prefix (same construction as
   the recovery layer's keyed certificates): without the master key the
   per-recipient keys, and hence the codewords, are unpredictable. *)
let fnv_prime = 0x100000001B3
let fnv_basis = Int64.to_int 0xCBF29CE484222325L (* 64-bit basis mod 2^63 *)

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime) s;
  !h

let recipient_key ~master rid =
  let h = fnv_string fnv_basis (string_of_int master) in
  let h = (h lxor 0x7C) * fnv_prime in
  fnv_string h rid land max_int

let codeword t rid =
  Codec.random (Prng.create (recipient_key ~master:t.master rid)) t.length

(* --- construction ---------------------------------------------------- *)

let geometry ?length ?times capacity =
  let length = match length with Some l -> l | None -> min 128 capacity in
  if length <= 0 then Error "fingerprint: codeword length must be positive"
  else if length > capacity then
    Error
      (Printf.sprintf "fingerprint: codeword length %d exceeds capacity %d"
         length capacity)
  else
    let times =
      match times with
      | Some r -> r
      | None ->
          let r = capacity / length in
          if r mod 2 = 0 then max 1 (r - 1) else r
    in
    if times < 1 then Error "fingerprint: times must be >= 1"
    else if times * length > capacity then
      Error
        (Printf.sprintf
           "fingerprint: %d x %d carrier bits exceed capacity %d" times
           length capacity)
    else Ok (length, times)

let prefix_pairs n pairs =
  let rec go n acc = function
    | p :: rest when n > 0 -> go (n - 1) (p :: acc) rest
    | _ -> Array.of_list (List.rev acc)
  in
  go n [] pairs

let make ?length ?times ~master ~capacity ~pairs ~active embed =
  match geometry ?length ?times capacity with
  | Error _ as e -> e
  | Ok (length, times) ->
      Ok
        {
          embed;
          pairs = prefix_pairs (times * length) pairs;
          active;
          master;
          length;
          times;
        }

let of_local ?length ?times ~master scheme =
  make ?length ?times ~master
    ~capacity:(Local_scheme.capacity scheme)
    ~pairs:(Local_scheme.pairs scheme)
    ~active:(Query_system.active (Local_scheme.query_system scheme))
    (Local_scheme.mark scheme)

(* Multi_scheme exposes no query system; the union of pair endpoints is
   the carrier-relevant active set. *)
let active_of_pairs pairs =
  Tuple.Set.elements
    (List.fold_left
       (fun acc { Pairing.fst; snd } ->
         Tuple.Set.add fst (Tuple.Set.add snd acc))
       Tuple.Set.empty pairs)

let of_multi ?length ?times ~master scheme =
  let pairs = Multi_scheme.pairs scheme in
  make ?length ?times ~master
    ~capacity:(Multi_scheme.capacity scheme)
    ~pairs ~active:(active_of_pairs pairs)
    (Multi_scheme.mark scheme)

(* --- generation ------------------------------------------------------ *)

let mark_for t rid w =
  Obs.time t_mark @@ fun () ->
  Obs.incr c_copies;
  t.embed (Codec.repeat ~times:t.times (codeword t rid)) w

let digest w =
  let h = ref (fnv_string fnv_basis "qpwm-fp/1") in
  let mix x = h := (!h lxor x) * fnv_prime in
  mix (Weighted.arity w);
  mix (Weighted.default w);
  let arity = Weighted.arity w in
  Weighted.iter_bindings_flat
    (fun buf off v ->
      for i = off to off + arity - 1 do
        mix buf.(i)
      done;
      mix v)
    w;
  !h land max_int

(* --- tracing --------------------------------------------------------- *)

let read ?jobs t ~original ~suspect =
  Obs.time t_read @@ fun () ->
  Obs.incr c_reads;
  let observed =
    Array.fold_left
      (fun acc { Pairing.fst; snd } ->
        Tuple.Map.add fst (Weighted.get suspect fst)
          (Tuple.Map.add snd (Weighted.get suspect snd) acc))
      Tuple.Map.empty t.pairs
  in
  Wm_par.Pool.parallel_map ?jobs
    (Detector.classify_carrier ~original ~observed)
    t.pairs

(* Per message bit, a tie-explicit majority over the surviving signal
   carriers.  Silent carriers (zero difference — what collusion leaves
   wherever the coalition's codewords split evenly) and erasures abstain
   rather than voting false; a tied or empty vote decides nothing.
   Scoring decided bits, not raw carriers, is what keeps the innocent
   null exactly Binomial(decided, 1/2): the [times] repetitions of one
   message bit are correlated in the suspect, so counting them as
   independent trials would fatten the tail and accuse innocents. *)
let decode t carriers =
  if Array.length carriers <> t.times * t.length then
    invalid_arg "Fingerprint.decode: carrier count mismatch";
  Array.init t.length (fun i ->
      let ones = ref 0 and votes = ref 0 in
      for c = 0 to t.times - 1 do
        match carriers.((c * t.length) + i) with
        | Detector.Cell (bit, (`Strong | `Weak)) ->
            incr votes;
            if bit then incr ones
        | Detector.Cell (_, `Silent) | Detector.Erased -> ()
      done;
      if 2 * !ones > !votes && !votes > 0 then Some true
      else if 2 * !ones < !votes then Some false
      else None)

type score = {
  rid : string;
  agreements : int;
  trials : int;
  pvalue : float;
  accused : bool;
}

type trace_report = {
  candidates : int;
  alpha : float;
  threshold : float;
  decided : int;
  scores : score list;
  accused : string list;
}

let score t decoded rid =
  if Array.length decoded <> t.length then
    invalid_arg "Fingerprint.score: decoded length mismatch";
  let cw = codeword t rid in
  let agree = ref 0 and trials = ref 0 in
  Array.iteri
    (fun i v ->
      match v with
      | Some b ->
          incr trials;
          if b = Bitvec.get cw i then incr agree
      | None -> ())
    decoded;
  (!agree, !trials)

let trace ?jobs ?(alpha = 0.01) t ~original ~suspect candidates =
  if candidates = [] then invalid_arg "Fingerprint.trace: no candidates";
  Obs.time t_trace @@ fun () ->
  Obs.incr c_traces;
  let carriers = read ?jobs t ~original ~suspect in
  let decoded = decode t carriers in
  let decided =
    Array.fold_left (fun n v -> if v = None then n else n + 1) 0 decoded
  in
  let n = List.length candidates in
  let threshold = Detector.sidak ~alpha ~tests:n in
  let scores =
    Wm_par.Pool.map_list ?jobs
      (fun rid ->
        let agreements, trials = score t decoded rid in
        let pvalue = Detector.binomial_tail ~trials ~successes:agreements in
        { rid; agreements; trials; pvalue; accused = pvalue <= threshold })
      candidates
  in
  Obs.add c_scored n;
  let accused =
    List.filter_map
      (fun (s : score) -> if s.accused then Some s.rid else None)
      scores
  in
  Obs.add c_accused (List.length accused);
  { candidates = n; alpha; threshold; decided; scores; accused }

let verify t rid ~original ~suspect =
  let carriers = read t ~original ~suspect in
  let raw = Bitvec.create (Array.length carriers) in
  Array.iteri
    (fun j c ->
      match c with
      | Detector.Cell (bit, _) -> Bitvec.set raw j bit
      | Detector.Erased -> ())
    carriers;
  let votes = Codec.majority_decode_opt ~times:t.times raw in
  let cw = codeword t rid in
  let ok = ref true in
  Array.iteri
    (fun i v ->
      match v with
      | Some b when b = Bitvec.get cw i -> ()
      | _ -> ok := false)
    votes;
  !ok

(* --- the collusion grid ---------------------------------------------- *)

type outcome = {
  grid_index : int;
  cell_seed : int;
  recipients : int;
  coalition : int;
  attack : string;
  params : string;
  noise : int;
  caught : int;
  false_accusations : int;
  traced : bool;
  accuracy : float;
  threshold : float;
  min_member_p : float;
  min_innocent_p : float;
}

type grid_report = {
  length : int;
  times : int;
  alpha : float;
  rows : outcome list;
}

let attack_tag = function
  | Adversary.Coalition_majority -> "majority"
  | Adversary.Coalition_mix -> "mix"
  | Adversary.Coalition_interleave -> "interleave"

let run_grid ?jobs ?(seed = 0xF19) ?(alpha = 0.001) ?(noise = 1)
    ?(recipients = [ 1000 ]) ?(coalitions = [ 1; 2; 3 ])
    ?(attacks =
      [
        Adversary.Coalition_majority; Adversary.Coalition_mix;
        Adversary.Coalition_interleave;
      ]) ?(prefix = "r") t w =
  Obs.time t_grid @@ fun () ->
  let cells =
    List.concat_map
      (fun nrec ->
        List.concat_map
          (fun k -> List.map (fun a -> (nrec, k, a)) attacks)
          coalitions)
      recipients
    |> List.mapi (fun index cell -> (index, cell))
  in
  let run_cell (index, (nrec, k, attack)) =
    Obs.incr c_cells;
    (* the cell's grid position is its seed: adding rows to the grid
       never reshuffles earlier ones (the Attack_suite convention) *)
    let cell_seed = (seed * 1_000_003) + (index * 1009) in
    let g = Prng.create cell_seed in
    let rid i = prefix ^ string_of_int i in
    let coalition = Prng.sample g k (Array.init nrec Fun.id) in
    let k = Array.length coalition in
    let copies =
      Array.mapi
        (fun ci ridx ->
          let m = mark_for t (rid ridx) w in
          if noise <= 0 then m
          else
            (* each colluder launders its own copy on its own derived
               stream — shared noise would cancel in weight differences *)
            Adversary.apply
              (Adversary.copy_prng ~cell_seed ~copy:ci)
              (Adversary.Uniform_noise { amplitude = noise })
              ~active:t.active m)
        coalition
    in
    let colluded =
      Adversary.apply_collusion g attack ~active:t.active copies
    in
    let rep =
      (* jobs:1 — the cell is already one pool task *)
      trace ~jobs:1 ~alpha t ~original:w ~suspect:colluded
        (List.init nrec rid)
    in
    let is_member = Array.make nrec false in
    Array.iter (fun i -> is_member.(i) <- true) coalition;
    let caught = ref 0 and falsely = ref 0 in
    let min_m = ref 1.0 and min_i = ref 1.0 in
    List.iteri
      (fun i (s : score) ->
        if is_member.(i) then begin
          if s.accused then incr caught;
          if s.pvalue < !min_m then min_m := s.pvalue
        end
        else begin
          if s.accused then incr falsely;
          if s.pvalue < !min_i then min_i := s.pvalue
        end)
      rep.scores;
    {
      grid_index = index;
      cell_seed;
      recipients = nrec;
      coalition = k;
      attack = Adversary.describe_collusion attack;
      params =
        Printf.sprintf "collusion:attack=%s,recipients=%d,coalition=%d,noise=%d"
          (attack_tag attack) nrec k noise;
      noise;
      caught = !caught;
      false_accusations = !falsely;
      traced = !caught > 0;
      accuracy = float_of_int !caught /. float_of_int (max 1 k);
      threshold = rep.threshold;
      min_member_p = !min_m;
      min_innocent_p = !min_i;
    }
  in
  let timed_cell ((index, (nrec, k, attack)) as cell) =
    Obs.span
      ~detail:
        (Printf.sprintf "%s N=%d k=%d idx=%d seed=%d"
           (Adversary.describe_collusion attack)
           nrec k index
           ((seed * 1_000_003) + (index * 1009)))
      t_cell
      (fun () -> run_cell cell)
  in
  let rows = Wm_par.Pool.map_list ?jobs timed_cell cells in
  { length = t.length; times = t.times; alpha; rows }

let render_grid r =
  let t =
    Texttab.create
      [
        "recipients"; "k"; "attack"; "noise"; "caught"; "false"; "accuracy";
        "member p"; "innocent p"; "traced";
      ]
  in
  List.iter
    (fun o ->
      Texttab.addf t "%d|%d|%s|%d|%d/%d|%d|%.2f|%.2g|%.2g|%s" o.recipients
        o.coalition o.attack o.noise o.caught o.coalition o.false_accusations
        o.accuracy o.min_member_p o.min_innocent_p
        (if o.traced then "traced" else "MISSED"))
    r.rows;
  Printf.sprintf "codeword: %d bits x %d copies, alpha %g (Sidak-corrected)\n%s"
    r.length r.times r.alpha (Texttab.render t)

let outcome_to_json o =
  Json.Obj
    [
      ("grid_index", Json.Int o.grid_index);
      ("cell_seed", Json.Int o.cell_seed);
      ("recipients", Json.Int o.recipients);
      ("coalition", Json.Int o.coalition);
      ("attack", Json.String o.attack);
      ("params", Json.String o.params);
      ("noise", Json.Int o.noise);
      ("caught", Json.Int o.caught);
      ("false_accusations", Json.Int o.false_accusations);
      ("traced", Json.Bool o.traced);
      ("accuracy", Json.Float o.accuracy);
      ("threshold", Json.Float o.threshold);
      ("min_member_p", Json.Float o.min_member_p);
      ("min_innocent_p", Json.Float o.min_innocent_p);
    ]

let grid_to_json r =
  Json.Obj
    [
      ("length", Json.Int r.length);
      ("times", Json.Int r.times);
      ("alpha", Json.Float r.alpha);
      ("rows", Json.List (List.map outcome_to_json r.rows));
    ]
