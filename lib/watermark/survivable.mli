(** Degraded-mode detection after structural attacks.

    The aligned detectors ({!Local_scheme.detect_weights},
    {!Tree_scheme.detect_weights}, {!Pipeline.detect_xml}) assume the
    suspect is a weights-only copy of the original: carriers are keyed by
    element id / node id, so the moment a redistributor deletes tuples,
    samples a subset, renumbers the universe or prunes XML subtrees, they
    read garbage — or raise.  This module re-aligns the surviving carriers
    against the original before reading:

    {ul
    {- relational elements are matched by their display names (the key
       columns of the row, materialized by the structural attacks);}
    {- XML value nodes are matched by their root-to-node path, where each
       ancestor is identified by its tag and the non-numeric text of its
       subtree, plus an ordinal among same-path siblings.}}

    Carriers with no surviving endpoint become {e erasures}
    ({!Detector.verdict}[.erased]), not errors: they are excluded from the
    sign statistics and from {!Detector.match_pvalue}'s trials, so
    detection confidence degrades gracefully with the attack budget
    instead of collapsing.  Carrier location and classification are
    per-carrier local, so both run on the {!Wm_par.Pool} when [?jobs]
    (default {!Wm_par.Pool.jobs}) exceeds 1, with results bit-identical
    to [jobs:1].  This is the regime studied for locally
    treelike databases (Chattopadhyay–Praveen, arXiv:1909.11369) and graph
    watermarking under node deletion (Eppstein et al., arXiv:1605.09425). *)

type alignment = {
  observed : int Tuple.Map.t;
      (** surviving carrier (keyed by {e original} tuple / node id) ->
          its weight in the suspect *)
  total : int;
  matched : int;
  missing : int;
}

val align_structures :
  ?jobs:int ->
  ?tuples:Tuple.t list ->
  original:Weighted.structure ->
  suspect:Weighted.structure ->
  unit ->
  alignment
(** Align the listed original tuples (default: the support of the original
    weights) against the suspect by element names.  Names duplicated in
    the suspect are ambiguous and count as missing. *)

val align_trees :
  original:Wm_xml.Utree.t -> suspect:Wm_xml.Utree.t -> alignment
(** Align the original's value nodes against the suspect by path
    signature.  Reordered subtrees still match (signatures carry no
    sibling position); same-path siblings match by surviving ordinal, so
    deleting one exam of a student erases at most that student's later
    exams. *)

val read :
  ?jobs:int -> Pairing.pair list -> original:Weighted.t -> alignment ->
  length:int -> Detector.verdict
(** {!Detector.read} over the aligned observations: unmatched carriers are
    erasures, half-matched pairs vote by their surviving endpoint. *)

(** {1 Redundant (Fact 1 wrapper) decoding with erasures} *)

type robust_verdict = {
  message : Bitvec.t;
      (** majority vote per message bit over the {e surviving} copies *)
  carriers : Detector.verdict;  (** the raw carrier-level verdict *)
  times : int;
  erased_bits : int;  (** message bits all of whose copies were erased *)
  all_erased : bool;
      (** {e every} carrier was erased: the message field is vacuous
          (all-zero by the tie rule, not decoded), {!match_pvalue} is the
          uninformative 1.0 over zero trials, and no ownership claim of
          any kind is supported.  Callers must check this flag before
          reading [message] — a total wipe-out is an explicit verdict,
          not a confident all-zero decode. *)
}

val detect_robust :
  ?jobs:int -> pairs:Pairing.pair list -> times:int -> length:int ->
  original:Weighted.t -> alignment -> robust_verdict
(** Decode a [length]-bit message embedded with {!Robust.mark} [~times]
    from whatever carriers survived.  Erased copies abstain from the
    majority instead of voting 0, so a bit is lost only when a majority of
    its {e surviving} copies is corrupted, or every copy is erased. *)

val match_pvalue : expected:Bitvec.t -> robust_verdict -> float
(** Carrier-level p-value of the suspect agreeing with [expected],
    conditioned on surviving carriers only. *)

(** {1 End-to-end conveniences} *)

val detect_structure :
  ?jobs:int -> Local_scheme.t -> times:int -> length:int ->
  original:Weighted.structure -> suspect:Weighted.structure ->
  robust_verdict * alignment
(** Align (on the scheme's pair endpoints) and decode in one step. *)

val detect_tree :
  ?jobs:int -> pairs:Pairing.pair list -> times:int -> length:int ->
  original:Wm_xml.Utree.t -> Wm_xml.Utree.t ->
  robust_verdict * alignment
(** [detect_tree ~pairs ~times ~length ~original suspect] — same for XML
    documents; [pairs] come from {!Tree_scheme.pairs} (node ids in the
    binary encoding coincide with document node ids). *)
