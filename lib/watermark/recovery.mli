(** Tamper localization and detect-and-recover marking.

    The detectors answer "is the mark present?" globally; a production
    system serving millions of marked copies must also answer {e where} a
    copy was tampered with and {e whether the damage can be undone}.  In
    the spirit of Khataeimaragheh-Rashidi (arXiv:1009.0827), this module
    embeds redundant keyed integrity certificates alongside the mark:

    {ul
    {- the marked structure is partitioned into {e Gaifman-local groups}
       ({!Wm_relational.Gaifman.local_groups}) — connected, bounded-size,
       and deterministic, so owner and auditor derive the same partition
       independently, exactly like the scheme's pair list;}
    {- each group gets a {e record}: the group's content (member names,
       their incident tuples, and every marked weight owned by the group)
       under a keyed FNV certificate.  An attacker without the key cannot
       forge a record that verifies;}
    {- each record is {e replicated} across [redundancy] sibling groups.
       A record copy is usable against a suspect only while its host group
       survives there — the availability model of certificates embedded in
       the data itself, which is what makes the robustness curves honest:
       deleting groups also deletes the certificate copies they host.}}

    {!audit} classifies every group of a suspect copy as intact /
    distorted / erased (plus {e blind} when every certificate copy is
    gone), yielding the {!Detector.tamper} map that turns a binary
    verdict into localized suspicion.  {!repair} restores distorted and
    erased groups from their surviving authentic records — weights,
    missing elements, and missing tuples — and reports its confidence.
    Repair-then-detect is the degraded-mode pipeline measured by
    experiment E24 and the [wmark audit] / [wmark repair] subcommands.

    Everything here is deterministic: [protect] is a pure function of
    (structure, options), audits and repairs are bit-identical at every
    [jobs] count. *)

type options = {
  key : int;  (** certificate key; detection-side must match marker-side *)
  redundancy : int;  (** certificate copies per group, >= 1 *)
  group_size : int;  (** max elements per Gaifman-local group, >= 1 *)
}

val default_options : options
(** key 0x5EC2E7, redundancy 3, group_size 8. *)

type group = {
  gid : int;
  members : int array;  (** element ids in the protected structure, sorted *)
  names : string array;  (** display names, parallel to [members] *)
}

type capsule
(** The recovery layer of one marked copy: groups, records, replica
    placement.  Conceptually embedded in the marked copy (the
    availability model above); operationally re-derivable by the owner
    from the marked structure and the key. *)

val protect : ?options:options -> Weighted.structure -> capsule
(** Build the capsule of a marked weighted structure.  Display names are
    materialized first (element identity must survive renumbering, as in
    {!Survivable}). *)

val groups : capsule -> group array
val group_of : capsule -> int -> int
(** Group id of an element of the protected structure. *)

val ngroups : capsule -> int

(** {1 Capsule-level attacks}

    What a redistributor can do to embedded certificates: splice two
    marked copies' capsules (mix-and-match — the records stay authentic,
    they just describe the {e other} copy's marking, the false-repair
    hazard), or rewrite records without the key (forgery — rejected at
    audit time). *)

val splice : Prng.t -> fraction:float -> capsule -> other:capsule -> capsule
(** Replace each group's record by [other]'s record for the same group
    with probability [fraction].  The capsules must come from {!protect}
    over the same structure (same partition).  Deterministic in the
    generator. *)

val forge : Prng.t -> fraction:float -> amplitude:int -> capsule -> capsule
(** An attacker without the key perturbs each record's payload weights by
    at most [amplitude] with probability [fraction] and recomputes the
    certificate unkeyed; {!audit} rejects such records as inauthentic. *)

(** {1 Audit: the tamper map} *)

type status =
  | Intact  (** content matches the authentic certificate *)
  | Distorted  (** content disagrees: weights changed, members or tuples
                   missing or injected *)
  | Erased  (** no member survives in the suspect *)
  | Blind  (** no surviving authentic certificate copy — nothing can be
               said about this group *)

type audit = {
  statuses : status array;  (** indexed by gid *)
  intact : int;
  distorted : int;
  erased : int;
  blind : int;
  forged_rejected : int;  (** record copies that failed certificate
                              verification *)
  tamper : Detector.tamper;  (** the same counts, in the shape
                                 {!Detector.with_tamper} attaches *)
}

val audit : ?jobs:int -> capsule -> suspect:Weighted.structure -> audit
(** Classify every group against a suspect copy.  Elements are realigned
    by display name (ambiguous duplicated names count as missing, as in
    {!Survivable}); group classification is per-group local and runs on
    the {!Wm_par.Pool} when [jobs] (default {!Wm_par.Pool.jobs}) exceeds
    1, bit-identical at every job count. *)

val dirty_groups : audit -> int list
(** Gids not classified [Intact], ascending — the localized suspicion. *)

(** {1 Repair} *)

type repair_report = {
  findings : audit;
  repaired : int;  (** damaged groups fully restored to their record *)
  unrepairable : int;  (** damaged groups with no usable record ([Blind])
                           or only partially restorable *)
  restored_weights : int;
  restored_elements : int;  (** erased members re-created by name *)
  restored_tuples : int;
  confidence : float;  (** (intact + repaired) / groups *)
}

val repair :
  ?jobs:int -> capsule -> suspect:Weighted.structure ->
  Weighted.structure * repair_report
(** Best-effort restoration: for every [Distorted] or [Erased] group with
    a surviving authentic record, re-create missing members (fresh
    elements named as the originals), re-insert missing recorded tuples
    whose endpoints all exist, and restore the recorded marked weights.
    When afterwards every protected element exists under an unambiguous
    name, the result is also {e renumbered} back to the protected copy's
    element order (attacker noise elements moved to the end), so a fully
    repaired copy reads through the plain id-keyed detectors, not only
    the name-aligned ones.  Groups are repaired in gid order, so the
    result is deterministic; [jobs] only parallelizes the audit phase. *)

val detect_repaired :
  ?jobs:int -> capsule -> Local_scheme.t -> times:int -> length:int ->
  original:Weighted.structure -> suspect:Weighted.structure ->
  Survivable.robust_verdict * repair_report * Weighted.structure
(** The repair-then-detect pipeline: audit, repair, then
    {!Survivable.detect_structure} on the repaired copy, with the tamper
    map attached to the verdict's carriers
    ({!Detector.verdict}[.tamper]). *)

(** {1 Reporting} *)

val render_audit : capsule -> audit -> string
(** Human-readable tamper map (one line per non-intact group). *)

val audit_json : capsule -> audit -> Wm_util.Json.t
val repair_json : repair_report -> Wm_util.Json.t
