type pair = { fst : Tuple.t; snd : Tuple.t }

let classes qs ~canonical =
  let canon_sets =
    List.mapi (fun i a -> (i, Query_system.result_set qs a)) canonical
  in
  List.map
    (fun w ->
      let cl =
        List.filter_map
          (fun (i, s) -> if Tuple.Set.mem w s then Some i else None)
          canon_sets
      in
      (w, cl))
    (Query_system.active qs)

let s_partition qs ~canonical =
  let by_class = Hashtbl.create 16 in
  List.iter
    (fun (w, cl) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_class cl) in
      Hashtbl.replace by_class cl (w :: prev))
    (classes qs ~canonical);
  let pairs = ref [] in
  Hashtbl.iter
    (fun _ ws ->
      let rec pair_up = function
        | a :: b :: rest ->
            pairs := { fst = a; snd = b } :: !pairs;
            pair_up rest
        | _ -> ()
      in
      (* Keep deterministic order inside the group. *)
      pair_up (List.sort Tuple.compare ws))
    by_class;
  List.sort (fun p q -> Tuple.compare p.fst q.fst) !pairs

let orientation_marks pairs message =
  let l = Bitvec.length message in
  if l > List.length pairs then
    invalid_arg "Pairing.orientation_marks: message longer than capacity";
  List.concat
    (List.mapi
       (fun i { fst; snd } ->
         if i >= l then []
         else if Bitvec.get message i then [ (fst, 1); (snd, -1) ]
         else [ (fst, -1); (snd, 1) ])
       pairs)

(* Inverted result-set index: for each active element, the ascending list
   of parameter indexes whose result set contains it.  A parameter's
   result set splits a pair iff it contains exactly one endpoint, so the
   parameters a pair touches are the symmetric difference of its
   endpoints' lists — O(result-set mass) once, then O(touches) per pair,
   instead of the O(pairs * params) full scan that made selection
   quadratic on large instances (the serving engine prepares
   million-element structures). *)
let inverted qs =
  let params = Array.of_list (Query_system.params qs) in
  let owner : (Tuple.t, int list ref) Hashtbl.t =
    Hashtbl.create (2 * Array.length params)
  in
  Array.iteri
    (fun i a ->
      Tuple.Set.iter
        (fun w ->
          match Hashtbl.find_opt owner w with
          | Some l -> l := i :: !l
          | None -> Hashtbl.add owner w (ref [ i ]))
        (Query_system.result_set qs a))
    params;
  let param_ixs w =
    match Hashtbl.find_opt owner w with
    | Some l -> List.rev !l
    | None -> []
  in
  (params, param_ixs)

let rec sym_diff (a : int list) b =
  match (a, b) with
  | [], r | r, [] -> r
  | x :: xs, y :: ys ->
      if x < y then x :: sym_diff xs b
      else if y < x then y :: sym_diff a ys
      else sym_diff xs ys

let split_counts qs pairs =
  let params, param_ixs = inverted qs in
  let split = Array.make (Array.length params) 0 in
  List.iter
    (fun { fst; snd } ->
      List.iter
        (fun i -> split.(i) <- split.(i) + 1)
        (sym_diff (param_ixs fst) (param_ixs snd)))
    pairs;
  Array.to_list (Array.mapi (fun i a -> (a, split.(i))) params)

let max_split qs pairs =
  List.fold_left (fun acc (_, c) -> max acc c) 0 (split_counts qs pairs)

let select_random g qs pairs ~p ~budget =
  let chosen = List.filter (fun _ -> Prng.bernoulli g p) pairs in
  if max_split qs chosen <= budget then Some chosen else None

let select_greedy g qs pairs ~budget =
  let arr = Array.of_list pairs in
  Prng.shuffle g arr;
  (* Incremental split counts per parameter, maintained through the
     inverted index; admission order and outcome are identical to the
     full-scan formulation. *)
  let params, param_ixs = inverted qs in
  let split = Array.make (Array.length params) 0 in
  let chosen = ref [] in
  Array.iter
    (fun pr ->
      let touches = sym_diff (param_ixs pr.fst) (param_ixs pr.snd) in
      if List.for_all (fun i -> split.(i) + 1 <= budget) touches then begin
        List.iter (fun i -> split.(i) <- split.(i) + 1) touches;
        chosen := pr :: !chosen
      end)
    arr;
  List.sort (fun p q -> Tuple.compare p.fst q.fst) !chosen
