(** Attack models for the adversarial setting (Section 1 / Fact 1).

    An attacker holds a marked instance and perturbs it to erase the mark,
    under the {e bounded distortion} assumption (it must still sell useful
    data) and the {e limited knowledge} assumption (it does not know which
    weights carry the mark).

    Two families:

    {ul
    {- {e Weight-level} attacks ({!attack}) transform weight assignments
       and never touch the structure — the paper's Fact 1 regime, where
       membership in query results is parameter data by definition.}
    {- {e Structural} attacks ({!structural}, {!tree_attack}) model a real
       redistributor who deletes tuples, samples a subset, injects noise
       rows, renumbers, or prunes and reorders XML subtrees.  These return
       a perturbed {e structure}; the aligned detectors silently break on
       them, and {!Survivable} is the degraded-mode answer.}} *)

type attack =
  | Uniform_noise of { amplitude : int }
      (** Add an independent uniform integer in [-amplitude, amplitude] to
          every active weight. *)
  | Random_flips of { count : int; amplitude : int }
      (** Add +-amplitude to [count] randomly chosen active weights —
          the attacker guessing mark positions. *)
  | Rounding of { multiple : int }
      (** Round every active weight to the nearest multiple — the classic
          "launder the low bits" attack that kills LSB schemes. *)
  | Constant_offset of { delta : int }
      (** Shift every active weight — pair-difference detectors are
          provably immune. *)
  | Back_to_original of { original : Weighted.t; fraction : float }
      (** Reset a random fraction of active weights to their values in
          another copy the attacker obtained (models partial knowledge
          leakage; fraction 1.0 erases the mark completely). *)
  | Mix_and_match of { other : Weighted.t; fraction : float }
      (** Splice a random fraction of active weights from a {e second
          marked copy} (Kamran–Farooq mix-and-match, arXiv:1801.08271):
          each spliced carrier votes for the other copy's message, so
          majorities flip without the distortion budget ever exceeding
          the marking amplitude. *)
  | Targeted_offset of { pairs : Pairing.pair list; delta : int }
      (** A recovery-aware attacker who learned the scheme's pair list
          shifts {e both} endpoints of every pair by the same delta.
          Weight-difference detection is provably blind to it
          ({!Detector.read} sees unchanged differences); only a
          content-level audit ({!Recovery.audit}) registers the
          distortion. *)

val apply :
  Prng.t -> attack -> active:Tuple.t list -> Weighted.t -> Weighted.t

val describe : attack -> string

val global_budget_used :
  Query_system.t -> before:Weighted.t -> after:Weighted.t -> int
(** The d' the attack actually spent (max query-weight change) — reported
    next to detection rates in experiment E10. *)

(** {1 Collusion attacks}

    A coalition of k recipients, each holding a copy fingerprinted with
    its own codeword ({!Fingerprint}), combines the copies into one
    suspect that implicates no single member.  All three keep every
    weight within the set of values some coalition copy holds, so the
    distortion budget never exceeds the marking amplitude. *)

type collusion =
  | Coalition_majority
      (** Per-tuple lower median of the k copies: carriers where the
          coalition's codewords disagree collapse to the majority
          orientation (an even split goes silent). *)
  | Coalition_mix
      (** Per-tuple uniform donor copy — iid mix-and-match across the
          whole coalition. *)
  | Coalition_interleave
      (** Round-robin through a randomly permuted, randomly phased copy
          order: every copy donates an exactly balanced share. *)

val copy_prng : cell_seed:int -> copy:int -> Prng.t
(** The generator for per-copy perturbations inside one coalition cell,
    derived from the cell seed and the copy index ([>= 0]).  Distinct
    copies get distinct, independent streams — one shared stream would
    correlate the copies' noise, which cancels in weight differences and
    understates the attack.  Deterministic: equal (seed, copy) give equal
    streams. *)

val apply_collusion :
  Prng.t -> collusion -> active:Tuple.t list -> Weighted.t array ->
  Weighted.t
(** Combine the coalition's copies over the active tuples; off-active
    tuples keep the first copy's values.  Deterministic in the generator
    (draw order: one draw per active tuple for [Coalition_mix]; a
    shuffle plus one offset draw for [Coalition_interleave]; none for
    [Coalition_majority]).  Raises [Invalid_argument] on an empty
    coalition. *)

val describe_collusion : collusion -> string

(** {1 Structural attacks on relational instances}

    All four renumber or resize the universe; surviving elements keep
    their display name (materialized via
    {!Wm_relational.Structure.with_default_names} when absent), the moral
    equivalent of rows keeping their key columns when other rows are
    deleted.  {!Survivable.align_structures} re-identifies carriers
    through those names. *)

type structural =
  | Delete_tuples of { fraction : float }
      (** Drop each element independently with the given probability,
          together with every relation tuple and weight mentioning it.
          At least one element always survives. *)
  | Subset_sample of { keep : float }
      (** Keep each element independently with probability [keep] — the
          "sell a sample" redistribution attack. *)
  | Insert_noise_tuples of { count : int; amplitude : int }
      (** Append [count] fresh elements, each joining one random tuple per
          relation symbol; unary weights of noise elements are uniform in
          [0, amplitude]. *)
  | Shuffle_universe
      (** Renumber the elements by a random permutation — pure
          identity-stripping; no information is lost, but detectors keyed
          on element ids read garbage. *)

val apply_structural :
  Prng.t -> structural -> Weighted.structure -> Weighted.structure
(** Deterministic in the generator: equal seeds give equal suspects. *)

val describe_structural : structural -> string

(** {1 Edit-script attacks}

    Structural perturbations phrased as {!Wm_relational.Structure.edit}
    scripts: element ids of survivors are untouched (tuples are dropped in
    place, fresh elements are appended), so the script's dirty set feeds
    {!Wm_relational.Neighborhood.reindex} directly and the attack grid can
    measure neighborhood-type drift against the scheme's base index
    instead of re-typing the suspect from scratch. *)

type edit_attack =
  | Drop_relation_tuples of { fraction : float }
      (** Delete each relation tuple independently with the given
          probability — thins query results without renumbering. *)
  | Graft_elements of { count : int; amplitude : int }
      (** Append [count] fresh elements, each joining one random tuple per
          relation symbol; unary weights of grafted elements are uniform
          in [0, amplitude]. *)

val edit_script :
  Prng.t -> edit_attack -> Weighted.structure ->
  Structure.edit list * (Tuple.t * int) list
(** The attack as an edit script plus weight entries for grafted
    carriers.  Deterministic in the generator. *)

val apply_edit_attack :
  Prng.t -> edit_attack -> Weighted.structure ->
  Weighted.structure * Structure.edit list * int list
(** Runs {!edit_script} through {!Wm_relational.Structure.apply_edits}:
    the suspect instance, the script, and the dirty element set. *)

val describe_edit : edit_attack -> string

(** {1 Structural attacks on XML documents} *)

type tree_attack =
  | Delete_subtrees of { fraction : float }
      (** Delete each non-root element subtree independently with the
          given probability (a surviving ancestor keeps its other
          children). *)
  | Reorder_siblings
      (** Shuffle the child order under every element — document order,
          which node-id-keyed detectors depend on, is destroyed. *)
  | Strip_values of { fraction : float }
      (** Delete each integer-valued text node (each weight carrier)
          independently with the given probability. *)

val apply_tree : Prng.t -> tree_attack -> Wm_xml.Utree.t -> Wm_xml.Utree.t
(** Deterministic in the generator; attributes and non-value text are
    carried along untouched. *)

val describe_tree : tree_attack -> string
