(** Detection statistics: confidence and false-positive control.

    The schemes' [detect] functions return the most likely message; a real
    owner also needs to know {e whether there is a mark at all} before
    accusing anyone.  Definition 2 allows the detector a failure
    probability delta, and Fact 1's limited-knowledge assumption bounds the
    chance beta that an innocent server's data looks gamma-close to a
    marked copy.  This module quantifies both from the observable signal:
    each selected pair should show a weight-difference of exactly (+1,-1)
    or (-1,+1); anything else is noise.

    A pair is a {e strong} carrier when the observed difference
    delta(fst) - delta(snd) is exactly +-2 (an intact orientation), {e weak}
    when it is nonzero but not +-2 (damaged but readable by sign), and
    {e silent} when it is 0 (no signal — what unrelated data shows on
    almost every pair).  A pair neither of whose endpoints was observed at
    all — deleted by a structural attack, or not covered by any asked
    parameter on a query budget — is an {e erasure}: it carries no evidence
    in either direction and is excluded from the statistics rather than
    counted as disagreement.  Under the null hypothesis "no mark", each
    surviving pair's sign is a fair coin at best, so the binomial tail on
    sign-consistency over the survivors gives a p-value for ownership
    claims. *)

type tamper = {
  t_groups : int;  (** Gaifman-local groups the recovery layer audited *)
  t_intact : int;  (** groups whose keyed certificate verified *)
  t_distorted : int;  (** groups whose content disagrees with the certificate *)
  t_erased : int;  (** groups with no surviving member *)
  t_blind : int;  (** groups with no surviving authentic certificate copy *)
}
(** Tamper localization, attached by {!Wm_watermark.Recovery.audit}:
    instead of the binary "erased or ok" a carrier gives, the tamper map
    says {e where} a suspect copy was damaged, group by group, so
    detection degrades gracefully into localized suspicion. *)

type verdict = {
  decoded : Bitvec.t;
  erasure : Bitvec.t;  (** bit i set when carrier i was erased *)
  strong : int;  (** pairs with an intact +-2 difference *)
  weak : int;  (** damaged but sign-readable pairs *)
  silent : int;  (** observed pairs with zero difference *)
  erased : int;  (** pairs with no observed endpoint at all *)
  confidence : float;  (** (strong + weak) / pairs surviving *)
  tamper : tamper option;
      (** localization report when a recovery audit ran; [None] from the
          plain readers *)
}

val with_tamper : verdict -> tamper -> verdict
(** Attach a recovery audit's localization to a verdict. *)

val suspicion : tamper -> float
(** Fraction of audited groups that are not intact — 0 on a pristine
    copy, 1 when every group was distorted, erased or lost its
    certificate. *)

(** {1 Carrier-level interface}

    The serving layer's sharded detector classifies carriers
    shard-by-shard and reassembles; exposing the per-carrier step and the
    accumulation separately lets it reuse both ends of {!read} unchanged,
    which is what makes "sharded detect = unsharded detect" true by
    construction rather than by test alone. *)

type carrier = Erased | Cell of bool * [ `Strong | `Weak | `Silent ]
(** What one pair contributes: no surviving endpoint ([Erased]), or a
    decoded bit with its signal class. *)

val classify_carrier :
  original:Weighted.t -> observed:int Tuple.Map.t -> Pairing.pair -> carrier
(** Classify one pair from the observed weights — pure and independent
    per pair, the unit of work the pool parallelizes. *)

val verdict_of_carriers : carrier array -> verdict
(** Accumulate classifications in index order into a verdict; the array
    length is the read length. *)

val read :
  ?jobs:int -> Pairing.pair list -> original:Weighted.t ->
  observed:int Tuple.Map.t -> length:int -> verdict
(** Decode [length] bits from the pair list, classifying each carrier.
    A pair with {e no} observed endpoint is an erasure; a pair with one
    observed endpoint still votes by the sign of the surviving half.
    Carriers are independent, so classification runs on the
    {!Wm_par.Pool} when [jobs] (default {!Wm_par.Pool.jobs}) exceeds 1;
    the verdict is bit-identical for every job count. *)

val read_weights :
  ?jobs:int -> Pairing.pair list -> original:Weighted.t ->
  suspect:Weighted.t -> length:int -> verdict
(** Total-observation convenience: every endpoint is read from [suspect],
    so no carrier is erased. *)

val binomial_tail : trials:int -> successes:int -> float
(** P[X >= successes] for X ~ Binomial(trials, 1/2) — the null-hypothesis
    p-value of observing that much sign agreement by chance. *)

val binomial_tail_p : p:float -> trials:int -> successes:int -> float
(** General-[p] upper tail.  Raises [Invalid_argument] unless
    [0 <= p <= 1] (NaN included); the degenerate endpoints are exact:
    [p = 0] gives 0 and [p = 1] gives 1 for any satisfiable
    [0 < successes <= trials]. *)

val match_pvalue : expected:Bitvec.t -> verdict -> float
(** p-value of the decoded message agreeing with [expected] as much as it
    does, under the no-mark null, conditioned on the {e surviving} carriers
    only — erased positions contribute neither agreement nor trials, so a
    subset attack cannot manufacture disagreement by deleting carriers.
    Small value = confident accusation. *)

val bonferroni : alpha:float -> tests:int -> float
(** [alpha / tests] — the per-test threshold that keeps the family-wise
    false-accusation probability of [tests] simultaneous hypothesis tests
    at most [alpha].  Raises [Invalid_argument] unless [0 < alpha <= 1]
    and [tests >= 1]. *)

val sidak : alpha:float -> tests:int -> float
(** [1 - (1 - alpha)^(1/tests)] — the exact correction under independent
    tests, slightly less conservative than {!bonferroni} (equal at
    [tests = 1]).  This is what {!Wm_watermark.Fingerprint.trace} and the
    attack grid's per-cell verdicts apply before accusing.  Same
    [Invalid_argument] conditions as {!bonferroni}. *)

val is_marked : ?alpha:float -> verdict -> bool
(** Does the carrier signal itself (ignoring the message value) reject the
    no-mark null at level [alpha] (default 0.01)?  Tests the {e strong}
    count against the conservative ceiling 1/4 on the chance that
    unrelated 1-local noise fakes an exact +-2 antisymmetric pair, over
    the surviving (non-erased) carriers. *)
