type attack =
  | Uniform_noise of { amplitude : int }
  | Random_flips of { count : int; amplitude : int }
  | Rounding of { multiple : int }
  | Constant_offset of { delta : int }
  | Back_to_original of { original : Weighted.t; fraction : float }
  | Mix_and_match of { other : Weighted.t; fraction : float }
  | Targeted_offset of { pairs : Pairing.pair list; delta : int }

let apply g attack ~active w =
  match attack with
  | Uniform_noise { amplitude } ->
      List.fold_left
        (fun w t ->
          Weighted.add_delta w t (Prng.int g ((2 * amplitude) + 1) - amplitude))
        w active
  | Random_flips { count; amplitude } ->
      let targets = Prng.sample g count (Array.of_list active) in
      Array.fold_left
        (fun w t -> Weighted.add_delta w t (Prng.pm_one g * amplitude))
        w targets
  | Rounding { multiple } ->
      assert (multiple > 0);
      List.fold_left
        (fun w t ->
          let v = Weighted.get w t in
          let down = v - (((v mod multiple) + multiple) mod multiple) in
          let rounded =
            if v - down <= multiple / 2 then down else down + multiple
          in
          Weighted.set w t rounded)
        w active
  | Constant_offset { delta } ->
      List.fold_left (fun w t -> Weighted.add_delta w t delta) w active
  | Back_to_original { original; fraction } ->
      List.fold_left
        (fun w t ->
          if Prng.bernoulli g fraction then
            Weighted.set w t (Weighted.get original t)
          else w)
        w active
  | Mix_and_match { other; fraction } ->
      (* Kamran–Farooq mix-and-match: splice in the corresponding weights
         of a second marked copy the attacker bought — carriers whose
         donor copy encodes the complementary bit flip sign. *)
      List.fold_left
        (fun w t ->
          if Prng.bernoulli g fraction then Weighted.set w t (Weighted.get other t)
          else w)
        w active
  | Targeted_offset { pairs; delta } ->
      (* A recovery-aware attacker who learned the pair list shifts BOTH
         endpoints of each pair by the same delta: the weight-difference
         detector is provably blind to it, only a content audit sees the
         distortion. *)
      List.fold_left
        (fun w { Pairing.fst; snd } ->
          Weighted.add_delta (Weighted.add_delta w fst delta) snd delta)
        w pairs

let describe = function
  | Uniform_noise { amplitude } -> Printf.sprintf "uniform noise +-%d" amplitude
  | Random_flips { count; amplitude } ->
      Printf.sprintf "%d random +-%d flips" count amplitude
  | Rounding { multiple } -> Printf.sprintf "round to multiples of %d" multiple
  | Constant_offset { delta } -> Printf.sprintf "offset %+d" delta
  | Back_to_original { fraction; _ } ->
      Printf.sprintf "reset %.0f%% to a leaked copy" (100. *. fraction)
  | Mix_and_match { fraction; _ } ->
      Printf.sprintf "mix-and-match %.0f%% from a second copy" (100. *. fraction)
  | Targeted_offset { pairs; delta } ->
      Printf.sprintf "pairwise offset %+d on %d known pairs" delta
        (List.length pairs)

let global_budget_used qs ~before ~after = Distortion.global qs before after

(* ------------------------------------------------------------------ *)
(* Collusion: k recipients pool their differently-fingerprinted copies. *)

type collusion = Coalition_majority | Coalition_mix | Coalition_interleave

(* Every copy in a coalition cell gets its own generator, derived from
   the cell seed and the copy's index.  Reusing one stream (or one seed)
   across the k copies would correlate their perturbations — identical
   noise on every copy cancels in weight differences and understates the
   attack; the regression test in test_fingerprint.ml pins both the
   derivation and the draw order. *)
let copy_prng ~cell_seed ~copy =
  if copy < 0 then invalid_arg "Adversary.copy_prng: copy must be >= 0";
  Prng.create ((cell_seed * 1_000_003) + ((copy + 1) * 7919))

let apply_collusion g c ~active copies =
  let k = Array.length copies in
  if k = 0 then invalid_arg "Adversary.apply_collusion: empty coalition";
  match c with
  | Coalition_majority ->
      (* Per-tuple lower median (the lower of the two middles when k is
         even) — deterministic, no draws.  Where the coalition's marks
         disagree on a pair, the median collapses toward the majority
         orientation; an even split yields equal endpoints and a silent
         carrier, which tie-explicit scoring treats as an abstention. *)
      List.fold_left
        (fun w t ->
          let vs = Array.map (fun copy -> Weighted.get copy t) copies in
          Array.sort compare vs;
          Weighted.set w t vs.((k - 1) / 2))
        copies.(0) active
  | Coalition_mix ->
      (* Per-tuple uniform donor copy: pair endpoints drawn from
         different copies decode as whichever donor pair survives, so
         carriers vote for a random coalition member. *)
      List.fold_left
        (fun w t -> Weighted.set w t (Weighted.get copies.(Prng.int g k) t))
        copies.(0) active
  | Coalition_interleave ->
      (* Round-robin over a randomly permuted, randomly phased copy
         order: exactly balanced donor shares, unlike the iid mix. *)
      let perm = Array.init k Fun.id in
      Prng.shuffle g perm;
      let offset = Prng.int g k in
      let pos = ref 0 in
      List.fold_left
        (fun w t ->
          let donor = perm.((!pos + offset) mod k) in
          incr pos;
          Weighted.set w t (Weighted.get copies.(donor) t))
        copies.(0) active

let describe_collusion = function
  | Coalition_majority -> "coalition majority vote"
  | Coalition_mix -> "coalition mix-and-match"
  | Coalition_interleave -> "coalition random interleave"

(* ------------------------------------------------------------------ *)
(* Structural attacks: the suspect is no longer a weights-only copy. *)

type structural =
  | Delete_tuples of { fraction : float }
  | Subset_sample of { keep : float }
  | Insert_noise_tuples of { count : int; amplitude : int }
  | Shuffle_universe

(* Rebuild the weighted structure induced on [kept] (original element ids,
   order significant — it becomes the new numbering).  Weights of dropped
   elements disappear; surviving weights follow the renaming.  Names are
   materialized first so element identity survives the renumbering. *)
let induce_weighted (ws : Weighted.structure) kept =
  let g = Structure.with_default_names ws.Weighted.graph in
  let g', old_of_new = Structure.induced g kept in
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun nw od -> Hashtbl.replace new_of_old od nw) old_of_new;
  let rename t =
    let out = Array.map (fun x -> Option.value ~default:(-1) (Hashtbl.find_opt new_of_old x)) t in
    if Array.exists (fun x -> x < 0) out then None else Some out
  in
  let w' =
    List.fold_left
      (fun acc (t, v) ->
        match rename t with Some t' -> Weighted.set acc t' v | None -> acc)
      (Weighted.create
         ~default:(Weighted.default ws.Weighted.weights)
         (Weighted.arity ws.Weighted.weights))
      (Weighted.bindings ws.Weighted.weights)
  in
  Weighted.make g' w'

let apply_structural g attack (ws : Weighted.structure) =
  let graph = ws.Weighted.graph in
  let n = Structure.size graph in
  match attack with
  | Delete_tuples { fraction } ->
      (* one bernoulli per element, ascending — same draw order as the
         universe-list filter this replaces *)
      let kept =
        List.rev
          (Structure.fold_universe
             (fun x acc -> if Prng.bernoulli g fraction then acc else x :: acc)
             graph [])
      in
      let kept = if kept = [] then [ 0 ] else kept in
      induce_weighted ws kept
  | Subset_sample { keep } ->
      let kept =
        List.rev
          (Structure.fold_universe
             (fun x acc -> if Prng.bernoulli g keep then x :: acc else acc)
             graph [])
      in
      let kept = if kept = [] then [ 0 ] else kept in
      induce_weighted ws kept
  | Shuffle_universe ->
      let perm = Array.init n Fun.id in
      Prng.shuffle g perm;
      induce_weighted ws (Array.to_list perm)
  | Insert_noise_tuples { count; amplitude } ->
      let g0 = Structure.with_default_names graph in
      let n' = n + count in
      let names =
        Array.init n' (fun i ->
            if i < n then Structure.name_of g0 i
            else Printf.sprintf "noise_%d" i)
      in
      let schema = Structure.schema graph in
      let fresh = Structure.create ~names schema n' in
      let fresh =
        Structure.fold_relations
          (fun name r acc -> Structure.set_relation acc name r)
          graph fresh
      in
      (* Each noise element joins one random tuple per relation symbol. *)
      let fresh =
        List.fold_left
          (fun acc e ->
            List.fold_left
              (fun acc (sym : Schema.symbol) ->
                let t =
                  Array.init sym.Schema.arity (fun _ -> Prng.int g n')
                in
                let slot = Prng.int g sym.Schema.arity in
                t.(slot) <- e;
                Structure.add_tuple acc sym.Schema.name t)
              acc (Schema.symbols schema))
          fresh
          (List.init count (fun i -> n + i))
      in
      let weights =
        if Weighted.arity ws.Weighted.weights = 1 then
          List.fold_left
            (fun w e -> Weighted.set_elt w e (Prng.int g (max 1 (amplitude + 1))))
            ws.Weighted.weights
            (List.init count (fun i -> n + i))
        else ws.Weighted.weights
      in
      Weighted.make fresh weights

(* ------------------------------------------------------------------ *)
(* Edit-script attacks: structural perturbations that keep the surviving
   element numbering, expressed in the Structure.edit vocabulary.  The
   dirty set they report feeds Neighborhood.reindex, so a detector (or the
   attack grid) can measure type drift from the base index instead of
   re-typing the whole suspect. *)

type edit_attack =
  | Drop_relation_tuples of { fraction : float }
  | Graft_elements of { count : int; amplitude : int }

let edit_script g attack (ws : Weighted.structure) =
  let graph = ws.Weighted.graph in
  match attack with
  | Drop_relation_tuples { fraction } ->
      let edits =
        Structure.fold_relations
          (fun name r acc ->
            Relation.fold
              (fun t acc ->
                if Prng.bernoulli g fraction then
                  Structure.Delete_tuple (name, t) :: acc
                else acc)
              r acc)
          graph []
      in
      (List.rev edits, [])
  | Graft_elements { count; amplitude } ->
      let n = Structure.size graph in
      let schema = Structure.schema graph in
      let edits = ref [] in
      let weights = ref [] in
      for i = 0 to count - 1 do
        let e = n + i in
        edits :=
          Structure.Add_element (Some (Printf.sprintf "noise_%d" e)) :: !edits;
        List.iter
          (fun (sym : Schema.symbol) ->
            let t = Array.init sym.Schema.arity (fun _ -> Prng.int g (e + 1)) in
            t.(Prng.int g sym.Schema.arity) <- e;
            edits := Structure.Insert_tuple (sym.Schema.name, t) :: !edits)
          (Schema.symbols schema);
        if Weighted.arity ws.Weighted.weights = 1 then
          weights :=
            (Tuple.singleton e, Prng.int g (max 1 (amplitude + 1))) :: !weights
      done;
      (List.rev !edits, List.rev !weights)

let apply_edit_attack g attack (ws : Weighted.structure) =
  let edits, wsets = edit_script g attack ws in
  let graph, dirty = Structure.apply_edits ws.Weighted.graph edits in
  let weights =
    List.fold_left
      (fun w (t, v) -> Weighted.set w t v)
      ws.Weighted.weights wsets
  in
  (Weighted.make graph weights, edits, dirty)

let describe_edit = function
  | Drop_relation_tuples { fraction } ->
      Printf.sprintf "edit: drop %.0f%% of relation tuples" (100. *. fraction)
  | Graft_elements { count; _ } ->
      Printf.sprintf "edit: graft %d noise elements" count

let describe_structural = function
  | Delete_tuples { fraction } ->
      Printf.sprintf "delete %.0f%% of tuples" (100. *. fraction)
  | Subset_sample { keep } ->
      Printf.sprintf "subset-sample keeping %.0f%%" (100. *. keep)
  | Insert_noise_tuples { count; _ } ->
      Printf.sprintf "insert %d noise tuples" count
  | Shuffle_universe -> "shuffle the universe numbering"

(* ------------------------------------------------------------------ *)
(* XML tree attacks: perturb the document shape itself. *)

type tree_attack =
  | Delete_subtrees of { fraction : float }
  | Reorder_siblings
  | Strip_values of { fraction : float }

let apply_tree g attack u =
  let rec map_node (x : Wm_xml.Xml.t) : Wm_xml.Xml.t option =
    match x with
    | Wm_xml.Xml.Text s -> begin
        match attack with
        | Strip_values { fraction }
          when int_of_string_opt s <> None && Prng.bernoulli g fraction ->
            None
        | _ -> Some x
      end
    | Wm_xml.Xml.Element { tag; attrs; children } ->
        let survivors =
          List.filter_map
            (fun c ->
              match (attack, c) with
              | Delete_subtrees { fraction }, Wm_xml.Xml.Element _
                when Prng.bernoulli g fraction ->
                  None
              | _ -> map_node c)
            children
        in
        let survivors =
          match attack with
          | Reorder_siblings when List.length survivors > 1 ->
              let a = Array.of_list survivors in
              Prng.shuffle g a;
              Array.to_list a
          | _ -> survivors
        in
        Some (Wm_xml.Xml.Element { tag; attrs; children = survivors })
  in
  match map_node (Wm_xml.Utree.to_xml u) with
  | Some doc -> Wm_xml.Utree.of_xml doc
  | None -> u (* the root is never deleted *)

let describe_tree = function
  | Delete_subtrees { fraction } ->
      Printf.sprintf "delete %.0f%% of subtrees" (100. *. fraction)
  | Reorder_siblings -> "reorder siblings"
  | Strip_values { fraction } ->
      Printf.sprintf "strip %.0f%% of value nodes" (100. *. fraction)
