(** Preserving several registered queries at once.

    The paper treats one query psi "without loss of generality, ...
    extension to several queries psi_1, ..., psi_k is straightforward by
    simple projection techniques".  Concretely: tag every parameter with
    its query's index, take canonical parameters per query, classes become
    vectors over all queries' canonical result sets, and eps-goodness is
    certified against every (query, parameter) pair.  A pair marking that
    survives selection then bounds the distortion of {e each} registered
    query by the budget simultaneously. *)

type options = Local_scheme.options

type t

type report = {
  queries : int;
  rho : int list;  (** locality rank used per query *)
  ntp : int list;  (** canonical parameters per query *)
  active : int;  (** |W| = union of the queries' active sets *)
  pairs_available : int;
  pairs_selected : int;
  budget : int;
  max_split : int;  (** worst split over all queries' parameters *)
}

val prepare :
  ?options:options -> Weighted.structure -> Query.t list -> (t, string) result
(** All queries must share the weight arity; at least one query. *)

val update :
  t ->
  old:Weighted.structure ->
  Weighted.structure ->
  Query.t list ->
  dirty:int list ->
  (t, string) result
(** Re-prepare after structural edits without recomputing the per-query
    type indexes or query memos from scratch: each index goes through
    {!Wm_relational.Neighborhood.reindex} over the reported dirty set and
    each query system through {!Query_system.refresh} at that query's own
    radius.  Bit-identical to [prepare] with the original options on the
    edited instance.  [queries] must be the list [t] was prepared with
    (same length, same order). *)

val report : t -> report
val capacity : t -> int
val pairs : t -> Pairing.pair list

val indexes : t -> Neighborhood.index list
(** Per-query neighborhood indexes (what {!update} maintains). *)

val mark : t -> Bitvec.t -> Weighted.t -> Weighted.t

val detect_weights :
  t -> original:Weighted.t -> suspect:Weighted.t -> length:int -> Bitvec.t
(** Reads the mark back using only the answers the suspect would give to
    the registered queries (all of them). *)

val distortion : t -> Weighted.t -> Weighted.t -> (int * int) list
(** Per-query global distortion (query index, max |f' - f|) — for checking
    the simultaneous certificate. *)
