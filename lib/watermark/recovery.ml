(* Observability: the recovery layer's three verbs.  rec.groups counts
   groups audited, rec.repaired / rec.unrepairable the repair outcomes;
   rec.forged_rejected the record copies that failed certificate
   verification. *)
module Obs = Wm_obs.Obs

let c_groups = Obs.counter "rec.groups"
let c_repaired = Obs.counter "rec.repaired"
let c_unrepairable = Obs.counter "rec.unrepairable"
let c_forged = Obs.counter "rec.forged_rejected"
let t_protect = Obs.timer "rec.protect"
let t_audit = Obs.timer "rec.audit"
let t_repair = Obs.timer "rec.repair"

type options = { key : int; redundancy : int; group_size : int }

let default_options = { key = 0x5EC2E7; redundancy = 3; group_size = 8 }

type group = { gid : int; members : int array; names : string array }

(* A record describes one group's content entirely by display names, so
   it stays comparable after the suspect is renumbered: the member names,
   every relation tuple incident to a member (full tuple, components as
   names — a tuple spanning two groups appears in both records), and the
   marked weight of every supported weight tuple owned by the group (a
   weight tuple belongs to the group of its first component). *)
type record = {
  r_gid : int;
  r_members : string array;  (* sorted *)
  r_tuples : (string * string array) list;  (* sorted, deduped *)
  r_weights : (string array * int) list;  (* sorted by name tuple *)
  r_mac : int;
}

type capsule = {
  opts : options;
  groups : group array;
  grp_of : int array;
  copies : record array array;  (* copies.(g).(j) lives in group hosts.(g).(j) *)
  hosts : int array array;
}

(* --- keyed certificate ----------------------------------------------- *)

(* FNV-1a over the canonical serialization; the key is mixed in as a
   prefix, so an attacker without it cannot recompute a verifying
   certificate for altered content. *)
let fnv_prime = 0x100000001B3
let fnv_basis = Int64.to_int 0xCBF29CE484222325L (* 64-bit basis mod 2^63 *)

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime) s;
  !h

let canon r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "g%d|" r.r_gid);
  Array.iter
    (fun n ->
      Buffer.add_string buf n;
      Buffer.add_char buf ';')
    r.r_members;
  Buffer.add_string buf "|T:";
  List.iter
    (fun (rel, names) ->
      Buffer.add_string buf rel;
      Buffer.add_char buf '(';
      Array.iter
        (fun n ->
          Buffer.add_string buf n;
          Buffer.add_char buf ',')
        names;
      Buffer.add_string buf ");")
    r.r_tuples;
  Buffer.add_string buf "|W:";
  List.iter
    (fun (names, v) ->
      Array.iter
        (fun n ->
          Buffer.add_string buf n;
          Buffer.add_char buf ',')
        names;
      Buffer.add_string buf (Printf.sprintf "=%d;" v))
    r.r_weights;
  Buffer.contents buf

let mac ~key r = fnv_string (fnv_string fnv_basis (string_of_int key)) (canon r)
let unkeyed_mac r = fnv_string fnv_basis (canon r)
let verify ~key r = r.r_mac = mac ~key r
let seal ~key r = { r with r_mac = mac ~key r }

(* --- protect ---------------------------------------------------------- *)

(* Per-element incident (relation, tuple) lists in one relation pass. *)
let incident_index g =
  let inc = Array.make (Structure.size g) [] in
  Structure.fold_relations
    (fun rel r () ->
      Relation.iter
        (fun t ->
          let seen = ref [] in
          Array.iter
            (fun x ->
              if not (List.mem x !seen) then begin
                seen := x :: !seen;
                inc.(x) <- (rel, t) :: inc.(x)
              end)
            t)
        r)
    g ();
  inc

let cmp_named_tuple (r1, n1) (r2, n2) =
  match compare r1 r2 with 0 -> compare n1 n2 | c -> c

let protect ?(options = default_options) (ws : Weighted.structure) =
  Obs.time t_protect @@ fun () ->
  if options.redundancy < 1 then invalid_arg "Recovery.protect: redundancy < 1";
  let g = Structure.with_default_names ws.Weighted.graph in
  let name x = Structure.name_of g x in
  let gf = Gaifman.of_structure g in
  let raw = Gaifman.local_groups gf ~max_size:options.group_size in
  let k = Array.length raw in
  let groups =
    Array.mapi
      (fun gid members ->
        let members = Array.of_list members in
        { gid; members; names = Array.map name members })
      raw
  in
  let grp_of = Array.make (Structure.size g) (-1) in
  Array.iter
    (fun gr -> Array.iter (fun x -> grp_of.(x) <- gr.gid) gr.members)
    groups;
  let inc = incident_index g in
  (* weight tuples bucketed by the group of their first component *)
  let owned = Array.make k [] in
  List.iter
    (fun (t, v) ->
      if Array.length t > 0 then begin
        let gid = grp_of.(t.(0)) in
        if gid >= 0 then owned.(gid) <- (Array.map name t, v) :: owned.(gid)
      end)
    (Weighted.bindings ws.Weighted.weights);
  let records =
    Array.map
      (fun gr ->
        let tuples =
          Array.fold_left
            (fun acc x ->
              List.fold_left
                (fun acc (rel, t) -> (rel, Array.map name t) :: acc)
                acc inc.(x))
            [] gr.members
        in
        let tuples = List.sort_uniq cmp_named_tuple tuples in
        let weights = List.sort compare owned.(gr.gid) in
        seal ~key:options.key
          {
            r_gid = gr.gid;
            r_members = Array.map name gr.members;
            r_tuples = tuples;
            r_weights = weights;
            r_mac = 0;
          })
      groups
  in
  let hosts =
    Array.init k (fun gid ->
        (* deterministic sibling placement; dedupe when the partition is
           smaller than the redundancy *)
        let hs =
          List.init options.redundancy (fun j -> (gid + 1 + j) mod k)
        in
        Array.of_list (List.sort_uniq compare hs))
  in
  {
    opts = options;
    groups;
    grp_of;
    copies = Array.init k (fun gid -> Array.map (fun _ -> records.(gid)) hosts.(gid));
    hosts;
  }

let groups c = c.groups
let group_of c x = c.grp_of.(x)
let ngroups c = Array.length c.groups

(* --- capsule-level attacks ------------------------------------------- *)

let splice g ~fraction c ~other =
  if ngroups c <> ngroups other then
    invalid_arg "Recovery.splice: capsules from different partitions";
  {
    c with
    copies =
      Array.mapi
        (fun gid copies ->
          if Prng.bernoulli g fraction then Array.copy other.copies.(gid)
          else copies)
        c.copies;
  }

let forge g ~fraction ~amplitude c =
  let perturb r =
    let r' =
      {
        r with
        r_weights =
          List.map
            (fun (names, v) ->
              (names, v + Prng.int g ((2 * amplitude) + 1) - amplitude))
            r.r_weights;
      }
    in
    (* without the key the best the attacker can do is an unkeyed sum *)
    { r' with r_mac = unkeyed_mac r' }
  in
  {
    c with
    copies =
      Array.map
        (fun copies ->
          Array.map
            (fun r -> if Prng.bernoulli g fraction then perturb r else r)
            copies)
        c.copies;
  }

(* --- audit ------------------------------------------------------------ *)

type status = Intact | Distorted | Erased | Blind

type audit = {
  statuses : status array;
  intact : int;
  distorted : int;
  erased : int;
  blind : int;
  forged_rejected : int;
  tamper : Detector.tamper;
}

module Smap = Map.Make (String)

(* name -> suspect element, duplicated names excluded (matching one of
   several same-named rows would restore data into the wrong row; an
   erasure is honest) — the Survivable convention. *)
let name_index g =
  let index, dup =
    Structure.fold_universe
      (fun x (index, dup) ->
        let n = Structure.name_of g x in
        if Smap.mem n index then (index, Smap.add n () dup)
        else (Smap.add n x index, dup))
      g (Smap.empty, Smap.empty)
  in
  Smap.filter (fun n _ -> not (Smap.mem n dup)) index

(* Classify one group against the suspect; returns the status, the
   authentic record used (if any), and how many available copies were
   rejected as forged.  [alive] and [lookup] describe the pristine
   suspect. *)
let classify c ~alive ~lookup ~suspect_inc ~suspect_name ~sweights gid =
  let survivors =
    Array.to_list c.groups.(gid).names |> List.filter_map lookup
  in
  let rejected = ref 0 in
  let record =
    (* first surviving, authentic copy in deterministic host order *)
    let rec pick j =
      if j >= Array.length c.hosts.(gid) then None
      else if not alive.(c.hosts.(gid).(j)) then pick (j + 1)
      else begin
        let r = c.copies.(gid).(j) in
        if verify ~key:c.opts.key r then Some r
        else begin
          incr rejected;
          pick (j + 1)
        end
      end
    in
    pick 0
  in
  let status =
    match (survivors, record) with
    | [], _ -> Erased
    | _, None -> Blind
    | _ :: _, Some r ->
        let members_ok =
          Array.for_all (fun n -> lookup n <> None) r.r_members
        in
        let tuples_ok () =
          let observed =
            List.fold_left
              (fun acc x ->
                List.fold_left
                  (fun acc (rel, t) -> (rel, Array.map suspect_name t) :: acc)
                  acc suspect_inc.(x))
              [] survivors
          in
          List.sort_uniq cmp_named_tuple observed = r.r_tuples
        in
        let weights_ok () =
          List.for_all
            (fun (names, v) ->
              let ids = Array.map lookup names in
              Array.for_all (fun o -> o <> None) ids
              && Weighted.get sweights (Array.map Option.get ids) = v)
            r.r_weights
        in
        if members_ok && tuples_ok () && weights_ok () then Intact
        else Distorted
  in
  (status, record, !rejected)

let audit_context c (suspect : Weighted.structure) =
  let sg = suspect.Weighted.graph in
  let index = name_index sg in
  let lookup n = Smap.find_opt n index in
  let alive =
    Array.map
      (fun gr -> Array.exists (fun n -> lookup n <> None) gr.names)
      c.groups
  in
  let suspect_inc = incident_index sg in
  (alive, lookup, suspect_inc, Structure.name_of sg, suspect.Weighted.weights)

let assemble_audit results =
  let statuses = Array.map (fun (s, _, _) -> s) results in
  let count s = Array.fold_left (fun n x -> if x = s then n + 1 else n) 0 statuses in
  let intact = count Intact
  and distorted = count Distorted
  and erased = count Erased
  and blind = count Blind in
  let forged_rejected = Array.fold_left (fun n (_, _, f) -> n + f) 0 results in
  Obs.add c_groups (Array.length statuses);
  Obs.add c_forged forged_rejected;
  {
    statuses;
    intact;
    distorted;
    erased;
    blind;
    forged_rejected;
    tamper =
      {
        Detector.t_groups = Array.length statuses;
        t_intact = intact;
        t_distorted = distorted;
        t_erased = erased;
        t_blind = blind;
      };
  }

let classify_all ?jobs c (suspect : Weighted.structure) =
  let alive, lookup, suspect_inc, suspect_name, sweights =
    audit_context c suspect
  in
  Wm_par.Pool.parallel_map ?jobs
    (classify c ~alive ~lookup ~suspect_inc ~suspect_name ~sweights)
    (Array.init (ngroups c) Fun.id)

let audit ?jobs c ~suspect =
  Obs.time t_audit @@ fun () -> assemble_audit (classify_all ?jobs c suspect)

let dirty_groups a =
  Array.to_list a.statuses
  |> List.mapi (fun gid s -> (gid, s))
  |> List.filter_map (fun (gid, s) -> if s = Intact then None else Some gid)

(* --- repair ----------------------------------------------------------- *)

type repair_report = {
  findings : audit;
  repaired : int;
  unrepairable : int;
  restored_weights : int;
  restored_elements : int;
  restored_tuples : int;
  confidence : float;
}

let repair ?jobs c ~suspect =
  Obs.time t_repair @@ fun () ->
  let results = classify_all ?jobs c suspect in
  let findings = assemble_audit results in
  (* Mutable repair state: the structure grows fresh elements (named as
     the originals), so the name table is maintained alongside.  Groups
     are processed in gid order — deterministic at every job count. *)
  let sg = ref (Structure.with_default_names suspect.Weighted.graph) in
  let sw = ref suspect.Weighted.weights in
  let table =
    ref
      (Smap.filter_map
         (fun _ x -> Some x)
         (name_index !sg))
  in
  let resolve n = Smap.find_opt n !table in
  let restored_weights = ref 0
  and restored_elements = ref 0
  and restored_tuples = ref 0
  and repaired = ref 0
  and unrepairable = ref 0 in
  let damaged = ref [] in
  Array.iteri
    (fun gid (status, record, _) ->
      match (status, record) with
      | (Distorted | Erased), Some r -> damaged := (gid, r) :: !damaged
      | (Distorted | Erased | Blind), _ -> incr unrepairable
      | Intact, _ -> ())
    results;
  let damaged = List.rev !damaged in
  (* Phase A: resurrect every missing protected member by name — in
     damaged groups so the record content can land (and a tuple spanning
     two damaged groups finds both endpoints in phase B), in blind groups
     as empty shells so the protected numbering can be restored in phase
     D.  Intact groups have nothing missing by definition. *)
  Array.iteri
    (fun gid (status, _, _) ->
      if status <> Intact then
        Array.iter
          (fun n ->
            match resolve n with
            | Some _ -> ()
            | None ->
                let g', fresh =
                  Structure.apply_edit !sg (Structure.Add_element (Some n))
                in
                sg := g';
                (match fresh with
                | [ x ] ->
                    table := Smap.add n x !table;
                    incr restored_elements
                | _ -> assert false))
          c.groups.(gid).names)
    results;
  (* Phase B: reconcile each member's incident tuples with the record —
     re-insert recorded tuples whose endpoints all exist, remove tuples
     the record does not know (injected noise touching a member). *)
  List.iter
    (fun (_, r) ->
      let recorded = r.r_tuples in
      (* removals first: observed incident tuples of surviving members
         that the record does not list *)
      let inc = incident_index !sg in
      Array.iter
        (fun n ->
          match resolve n with
          | None -> ()
          | Some x ->
              List.iter
                (fun (rel, t) ->
                  let named = (rel, Array.map (Structure.name_of !sg) t) in
                  if not (List.exists (fun rt -> cmp_named_tuple rt named = 0) recorded)
                  then sg := fst (Structure.apply_edit !sg (Structure.Delete_tuple (rel, t))))
                inc.(x))
        r.r_members;
      List.iter
        (fun (rel, names) ->
          let ids = Array.map resolve names in
          if Array.for_all (fun o -> o <> None) ids then begin
            let t = Array.map Option.get ids in
            if not (Relation.mem t (Structure.relation !sg rel)) then begin
              sg := Structure.add_tuple !sg rel t;
              incr restored_tuples
            end
          end)
        recorded)
    damaged;
  (* Phase C: restore the recorded marked weights. *)
  List.iter
    (fun (_, r) ->
      let members_ok = Array.for_all (fun n -> resolve n <> None) r.r_members in
      let tuples_ok =
        List.for_all
          (fun (rel, names) ->
            let ids = Array.map resolve names in
            Array.for_all (fun o -> o <> None) ids
            && Relation.mem (Array.map Option.get ids) (Structure.relation !sg rel))
          r.r_tuples
      in
      let weights_ok = ref true in
      List.iter
        (fun (names, v) ->
          let ids = Array.map resolve names in
          if Array.for_all (fun o -> o <> None) ids then begin
            sw := Weighted.set !sw (Array.map Option.get ids) v;
            incr restored_weights
          end
          else weights_ok := false)
        r.r_weights;
      if members_ok && tuples_ok && !weights_ok then incr repaired
      else incr unrepairable)
    damaged;
  Obs.add c_repaired !repaired;
  Obs.add c_unrepairable !unrepairable;
  let k = ngroups c in
  let report =
    {
      findings;
      repaired = !repaired;
      unrepairable = !unrepairable;
      restored_weights = !restored_weights;
      restored_elements = !restored_elements;
      restored_tuples = !restored_tuples;
      confidence =
        (if k = 0 then 1.
         else float_of_int (findings.intact + !repaired) /. float_of_int k);
    }
  in
  (* Phase D: restore the protected numbering.  Phase A made every
     protected element exist by name, so when the whole universe resolves
     injectively we can renumber the repaired copy back to the marked
     copy's element order (attacker noise elements go to the end): the
     result reads through the plain id-keyed detectors, not only the
     name-aligned ones.  Skipped (keeping the suspect numbering) when
     duplicated names leave the mapping ambiguous. *)
  let renumbered =
    let total = Array.length c.grp_of in
    let pname = Array.make total "" in
    Array.iter
      (fun gr ->
        Array.iteri (fun i x -> pname.(x) <- gr.names.(i)) gr.members)
      c.groups;
    let target = Array.init total (fun x -> resolve pname.(x)) in
    if not (Array.for_all (fun o -> o <> None) target) then None
    else begin
      let target = Array.map Option.get target in
      let image = Hashtbl.create total in
      Array.iter (fun x -> Hashtbl.replace image x ()) target;
      if Hashtbl.length image <> total then None
      else begin
        let extras =
          List.rev
            (Structure.fold_universe
               (fun x acc -> if Hashtbl.mem image x then acc else x :: acc)
               !sg [])
        in
        let keep = Array.to_list target @ extras in
        let g', old_of_new = Structure.induced !sg keep in
        let new_of_old = Hashtbl.create (Array.length old_of_new) in
        Array.iteri (fun nw od -> Hashtbl.replace new_of_old od nw) old_of_new;
        let w' =
          List.fold_left
            (fun acc (t, v) ->
              Weighted.set acc
                (Array.map (fun x -> Hashtbl.find new_of_old x) t)
                v)
            (Weighted.create ~default:(Weighted.default !sw) (Weighted.arity !sw))
            (Weighted.bindings !sw)
        in
        Some (Weighted.make g' w')
      end
    end
  in
  ( (match renumbered with
    | Some r -> r
    | None -> Weighted.make !sg !sw),
    report )

let detect_repaired ?jobs c scheme ~times ~length ~original ~suspect =
  let repaired_ws, report = repair ?jobs c ~suspect in
  let rv, _alignment =
    Survivable.detect_structure ?jobs scheme ~times ~length ~original
      ~suspect:repaired_ws
  in
  let rv =
    {
      rv with
      Survivable.carriers =
        Detector.with_tamper rv.Survivable.carriers report.findings.tamper;
    }
  in
  (rv, report, repaired_ws)

(* --- reporting -------------------------------------------------------- *)

let status_label = function
  | Intact -> "intact"
  | Distorted -> "distorted"
  | Erased -> "erased"
  | Blind -> "blind"

let render_audit c a =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "groups: %d total, %d intact, %d distorted, %d erased, %d blind\n"
       (Array.length a.statuses) a.intact a.distorted a.erased a.blind);
  if a.forged_rejected > 0 then
    Buffer.add_string buf
      (Printf.sprintf "rejected %d forged certificate copies\n" a.forged_rejected);
  Buffer.add_string buf
    (Printf.sprintf "suspicion: %.2f\n" (Detector.suspicion a.tamper));
  Array.iteri
    (fun gid s ->
      if s <> Intact then
        Buffer.add_string buf
          (Printf.sprintf "  group %d [%s]: %s\n" gid
             (String.concat ","
                (Array.to_list c.groups.(gid).names))
             (status_label s)))
    a.statuses;
  Buffer.contents buf

let audit_json c a =
  Wm_util.Json.(
    Obj
      [
        ("groups", Int (Array.length a.statuses));
        ("intact", Int a.intact);
        ("distorted", Int a.distorted);
        ("erased", Int a.erased);
        ("blind", Int a.blind);
        ("forged_rejected", Int a.forged_rejected);
        ("suspicion", Float (Detector.suspicion a.tamper));
        ( "dirty_groups",
          List
            (List.map
               (fun gid ->
                 Obj
                   [
                     ("gid", Int gid);
                     ("status", String (status_label a.statuses.(gid)));
                     ( "members",
                       List
                         (Array.to_list
                            (Array.map
                               (fun n -> String n)
                               c.groups.(gid).names)) );
                   ])
               (dirty_groups a)) );
      ])

let repair_json r =
  Wm_util.Json.(
    Obj
      [
        ("repaired", Int r.repaired);
        ("unrepairable", Int r.unrepairable);
        ("restored_weights", Int r.restored_weights);
        ("restored_elements", Int r.restored_elements);
        ("restored_tuples", Int r.restored_tuples);
        ("confidence", Float r.confidence);
      ])
