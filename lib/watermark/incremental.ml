let propagate ~original ~marked ~updated =
  let support =
    List.sort_uniq Tuple.compare
      (Weighted.support original @ Weighted.support marked
     @ Weighted.support updated)
  in
  List.fold_left
    (fun w t ->
      let delta = Weighted.get marked t - Weighted.get original t in
      if delta = 0 then w else Weighted.add_delta w t delta)
    updated support

let type_set g ~rho ~arity =
  let ix = Neighborhood.index_universe g ~rho ~arity in
  let gf = Gaifman.of_structure g in
  Array.map
    (fun rep -> Neighborhood.of_tuple g gf ~rho rep)
    ix.Neighborhood.representatives

let type_preserving ~rho ~arity g1 g2 =
  let reps1 = type_set g1 ~rho ~arity and reps2 = type_set g2 ~rho ~arity in
  let covered a b =
    Array.for_all
      (fun (na : Neighborhood.nbh) ->
        Array.exists
          (fun (nb : Neighborhood.nbh) ->
            Iso.isomorphic na.sub na.center nb.sub nb.center)
          b)
      a
  in
  covered reps1 reps2 && covered reps2 reps1

let update_decision ~rho ~arity ~old_graph ~new_graph =
  if type_preserving ~rho ~arity old_graph new_graph then `Keep_mark
  else `Remark_required

(* Same dichotomy, but from indexes already in hand (e.g. the before/after
   of Neighborhood.reindex): only the representatives are re-materialized,
   no universe re-typing. *)
let type_preserving_ix g1 (ix1 : Neighborhood.index) g2
    (ix2 : Neighborhood.index) =
  if ix1.rho <> ix2.rho then
    invalid_arg "Incremental.type_preserving_ix: indexes disagree on rho";
  let nbs g (ix : Neighborhood.index) =
    let gf = Gaifman.of_structure g in
    Array.map
      (fun rep -> Neighborhood.of_tuple g gf ~rho:ix.rho rep)
      ix.representatives
  in
  let reps1 = nbs g1 ix1 and reps2 = nbs g2 ix2 in
  let covered a b =
    Array.for_all
      (fun (na : Neighborhood.nbh) ->
        Array.exists
          (fun (nb : Neighborhood.nbh) ->
            Iso.isomorphic na.sub na.center nb.sub nb.center)
          b)
      a
  in
  covered reps1 reps2 && covered reps2 reps1

let update_decision_ix ~old_graph ~old_index ~new_graph ~new_index =
  if type_preserving_ix old_graph old_index new_graph new_index then `Keep_mark
  else `Remark_required

let average a b =
  let support =
    List.sort_uniq Tuple.compare (Weighted.support a @ Weighted.support b)
  in
  List.fold_left
    (fun w t ->
      let va = Weighted.get a t and vb = Weighted.get b t in
      let avg = if (va + vb) mod 2 = 0 then (va + vb) / 2 else va in
      Weighted.set w t avg)
    (Weighted.create (Weighted.arity a))
    support

let average_many copies =
  match copies with
  | [] -> invalid_arg "Incremental.average_many: no copies"
  | [ single ] -> single
  | first :: _ ->
      let k = List.length copies in
      let support =
        List.sort_uniq Tuple.compare
          (List.concat_map Weighted.support copies)
      in
      List.fold_left
        (fun w t ->
          let sum = List.fold_left (fun s c -> s + Weighted.get c t) 0 copies in
          let lo = sum / k in
          let frac2 = 2 * (sum - (lo * k)) in
          let avg =
            if frac2 > k then lo + 1
            else if frac2 < k then lo
            else Weighted.get first t
          in
          Weighted.set w t avg)
        (Weighted.create (Weighted.arity first))
        support
