(* Observability: one trace span per grid cell (the unit the pool
   schedules), annotated with the cell's attack and redundancy so
   --trace-json shows where the grid's wall time went. *)
module Obs = Wm_obs.Obs

let c_cells = Obs.counter "attack.cells"
let t_cell = Obs.timer "attack.cell"

type spec =
  | Weights of Adversary.attack
  | Structural of Adversary.structural
  | Edited of Adversary.edit_attack
  | Mixed of { fraction : float }
  | Informed_offset of { delta : int }
  | Capsule_mix of { fraction : float }

let describe_spec = function
  | Weights a -> Adversary.describe a
  | Structural a -> Adversary.describe_structural a
  | Edited a -> Adversary.describe_edit a
  | Mixed { fraction } ->
      Printf.sprintf "mix-and-match %.0f%% (second copy)" (100. *. fraction)
  | Informed_offset { delta } -> Printf.sprintf "informed pair offset %+d" delta
  | Capsule_mix { fraction } ->
      Printf.sprintf "mix-and-match %.0f%% + spliced certificates"
        (100. *. fraction)

(* Machine-readable parameters: enough, together with the master seed and
   the grid index, to replay any cell standalone ([wmark attack --only]). *)
let spec_params = function
  | Weights (Adversary.Uniform_noise { amplitude }) ->
      Printf.sprintf "uniform_noise:amplitude=%d" amplitude
  | Weights (Adversary.Random_flips { count; amplitude }) ->
      Printf.sprintf "random_flips:count=%d,amplitude=%d" count amplitude
  | Weights (Adversary.Rounding { multiple }) ->
      Printf.sprintf "rounding:multiple=%d" multiple
  | Weights (Adversary.Constant_offset { delta }) ->
      Printf.sprintf "constant_offset:delta=%d" delta
  | Weights (Adversary.Back_to_original { fraction; _ }) ->
      Printf.sprintf "back_to_original:fraction=%g" fraction
  | Weights (Adversary.Mix_and_match { fraction; _ }) ->
      Printf.sprintf "mix_and_match:fraction=%g" fraction
  | Weights (Adversary.Targeted_offset { delta; pairs }) ->
      Printf.sprintf "targeted_offset:delta=%d,pairs=%d" delta
        (List.length pairs)
  | Structural (Adversary.Delete_tuples { fraction }) ->
      Printf.sprintf "delete_tuples:fraction=%g" fraction
  | Structural (Adversary.Subset_sample { keep }) ->
      Printf.sprintf "subset_sample:keep=%g" keep
  | Structural (Adversary.Insert_noise_tuples { count; amplitude }) ->
      Printf.sprintf "insert_noise:count=%d,amplitude=%d" count amplitude
  | Structural Adversary.Shuffle_universe -> "shuffle_universe"
  | Edited (Adversary.Drop_relation_tuples { fraction }) ->
      Printf.sprintf "drop_relation_tuples:fraction=%g" fraction
  | Edited (Adversary.Graft_elements { count; amplitude }) ->
      Printf.sprintf "graft_elements:count=%d,amplitude=%d" count amplitude
  | Mixed { fraction } -> Printf.sprintf "mixed:fraction=%g" fraction
  | Informed_offset { delta } -> Printf.sprintf "informed_offset:delta=%d" delta
  | Capsule_mix { fraction } ->
      Printf.sprintf "capsule_mix:fraction=%g" fraction

type outcome = {
  attack : string;
  grid_index : int;
  cell_seed : int;
  params : string;
  redundancy : int;
  bits : int;
  carriers : int;
  erased : int;
  erasure_rate : float;
  bit_errors : int;
  ber : float;
  pvalue : float;
  accused : bool;
  distortion : int option;
  recovered : bool;
  naive_recovered : bool;
  type_drift : bool option;
  rec_recovered : bool;
  recovered_bits : int;
  false_repairs : int;
  groups_repaired : int;
  groups_unrepairable : int;
  groups_distorted : int;
  groups_erased : int;
}

type report = {
  workload : string;
  message : Bitvec.t;
  capacity : int;
  active : int;
  rows : outcome list;
}

let default_grid ~active =
  let tenth = max 1 (active / 10) in
  [
    Weights (Adversary.Constant_offset { delta = 0 });
    Weights (Adversary.Uniform_noise { amplitude = 1 });
    Weights (Adversary.Uniform_noise { amplitude = 2 });
    Weights (Adversary.Random_flips { count = tenth; amplitude = 1 });
    Weights (Adversary.Random_flips { count = 3 * tenth; amplitude = 1 });
    Weights (Adversary.Constant_offset { delta = 7 });
    Structural (Adversary.Delete_tuples { fraction = 0.1 });
    Structural (Adversary.Delete_tuples { fraction = 0.2 });
    Structural (Adversary.Delete_tuples { fraction = 0.3 });
    Structural (Adversary.Subset_sample { keep = 0.5 });
    Structural (Adversary.Insert_noise_tuples { count = tenth; amplitude = 999 });
    Structural Adversary.Shuffle_universe;
    (* Appended last: per-cell PRNGs are keyed by grid position, so
       existing rows keep their exact values. *)
    Edited (Adversary.Drop_relation_tuples { fraction = 0.1 });
    Edited (Adversary.Drop_relation_tuples { fraction = 0.3 });
    Edited (Adversary.Graft_elements { count = tenth; amplitude = 999 });
    (* Recovery-aware rows (appended, same reason): mix-and-match against
       a second marked copy, an informed pairwise offset the detector is
       blind to, and mix-and-match with spliced certificate capsules —
       the false-repair hazard. *)
    Mixed { fraction = 0.3 };
    Mixed { fraction = 0.6 };
    Informed_offset { delta = 5 };
    Capsule_mix { fraction = 0.5 };
  ]

(* A deterministic per-cell generator: the cell's position in the grid is
   its seed, so adding rows never reshuffles earlier ones. *)
let cell_prng ~seed ~redundancy ~index =
  Prng.create ((seed * 1_000_003) + (redundancy * 1009) + index)

let run ?jobs ?(options = Local_scheme.default_options) ?(seed = 0xA77AC)
    ?(redundancies = [ 1; 3; 5 ]) ?(message_bits = 4) ?grid ?only ?workload
    (ws : Weighted.structure) q =
  match Local_scheme.prepare ~options ws q with
  | Error e -> Error ("attack suite: " ^ e)
  | Ok scheme ->
      let qs = Local_scheme.query_system scheme in
      (* Freeze the query system's memos: grid cells share it read-only
         across domains. *)
      Query_system.precompute qs;
      let active = Query_system.active qs in
      let nactive = List.length active in
      let grid = match grid with Some g -> g | None -> default_grid ~active:nactive in
      let capacity = Local_scheme.capacity scheme in
      let base = Robust.of_local scheme in
      let message = Codec.of_int ~bits:message_bits (0b1011 land ((1 lsl message_bits) - 1)) in
      let usable = List.filter (fun r -> r * message_bits <= capacity) redundancies in
      if usable = [] then
        Error
          (Printf.sprintf
             "attack suite: capacity %d cannot hold %d bits at any requested \
              redundancy"
             capacity message_bits)
      else begin
        (* One grid cell = one task.  Marking is done once per redundancy
           (sequentially — it is cheap and shared), the cells carry their
           own PRNG seeded by grid position, so the row list is identical
           to the sequential sweep for every job count. *)
        (* The complement-marked second copy the mix-and-match rows splice
           from, and the certificate capsules of both copies. *)
        let other_message =
          Codec.of_int ~bits:message_bits
            (lnot (Codec.to_int message) land ((1 lsl message_bits) - 1))
        in
        let cells =
          List.concat_map
            (fun times ->
              let marked = Robust.mark base ~times message ws.Weighted.weights in
              let marked_ws = { ws with Weighted.weights = marked } in
              let cap = Recovery.protect marked_ws in
              let other =
                Robust.mark base ~times other_message ws.Weighted.weights
              in
              let other_cap =
                Recovery.protect { ws with Weighted.weights = other }
              in
              List.mapi
                (fun index spec ->
                  (times, marked, marked_ws, cap, other, other_cap, index, spec))
                grid)
            usable
        in
        (* Every cell scores one ownership hypothesis, so the grid is a
           family of simultaneous tests: accuse only below the
           Šidák-corrected threshold over the FULL grid (computed before
           the --only filter, so a replayed cell keeps its verdict). *)
        let accuse_threshold =
          Detector.sidak ~alpha:0.01 ~tests:(List.length cells)
        in
        let cells =
          match only with
          | None -> cells
          | Some keep ->
              (* filter AFTER indexing: a replayed cell keeps the PRNG of
                 its original grid position *)
              List.filter
                (fun (_, _, _, _, _, _, index, _) -> List.mem index keep)
                cells
        in
        let base_ix = Local_scheme.index scheme in
        let run_cell (times, marked, marked_ws, cap, other, other_cap, index, spec)
            =
          let g = cell_prng ~seed ~redundancy:times ~index in
          let capsule = ref cap in
          let suspect_ws, distortion, type_drift =
            match spec with
            | Weights a ->
                let attacked = Adversary.apply g a ~active marked in
                ( { ws with Weighted.weights = attacked },
                  Some (Distortion.global qs marked attacked),
                  None )
            | Mixed { fraction } ->
                let attacked =
                  Adversary.apply g
                    (Adversary.Mix_and_match { other; fraction })
                    ~active marked
                in
                ( { ws with Weighted.weights = attacked },
                  Some (Distortion.global qs marked attacked),
                  None )
            | Informed_offset { delta } ->
                let attacked =
                  Adversary.apply g
                    (Adversary.Targeted_offset
                       { pairs = Local_scheme.pairs scheme; delta })
                    ~active marked
                in
                ( { ws with Weighted.weights = attacked },
                  Some (Distortion.global qs marked attacked),
                  None )
            | Capsule_mix { fraction } ->
                (* weights AND certificates from the second copy: the
                   surviving records are authentic but describe the other
                   marking — repair can now be actively wrong *)
                let attacked =
                  Adversary.apply g
                    (Adversary.Mix_and_match { other; fraction })
                    ~active marked
                in
                capsule := Recovery.splice g ~fraction !capsule ~other:other_cap;
                ( { ws with Weighted.weights = attacked },
                  Some (Distortion.global qs marked attacked),
                  None )
            | Structural a ->
                (Adversary.apply_structural g a marked_ws, None, None)
            | Edited a ->
                (* The script keeps surviving element ids, so its dirty set
                   drives an incremental reindex from the scheme's base
                   index: type drift costs one dirty-region sweep per cell
                   instead of two full universe typings. *)
                let suspect, _script, dirty =
                  Adversary.apply_edit_attack g a marked_ws
                in
                let suspect_ix =
                  Neighborhood.reindex ~jobs:1 ~old:ws.Weighted.graph
                    suspect.Weighted.graph ~prev:base_ix ~dirty
                in
                let drift =
                  not
                    (Incremental.type_preserving_ix ws.Weighted.graph base_ix
                       suspect.Weighted.graph suspect_ix)
                in
                (suspect, None, Some drift)
          in
          let rv, _alignment =
            (* jobs:1 — the cell is already one parallel task; nesting
               pool batches inside a cell would only add queue churn *)
            Survivable.detect_structure ~jobs:1 scheme ~times
              ~length:message_bits ~original:ws ~suspect:suspect_ws
          in
          let carriers = times * message_bits in
          let erased = rv.Survivable.carriers.Detector.erased in
          let bit_errors = Codec.hamming message rv.Survivable.message in
          let naive =
            Robust.detect base ~times ~length:message_bits
              ~original:ws.Weighted.weights
              ~server:(Query_system.server qs suspect_ws.Weighted.weights)
          in
          (* Repair-then-detect: audit the suspect against the capsule,
             restore what the surviving certificates support, re-run the
             survivable detector on the repaired copy. *)
          let rv_rep, rep_report, _ =
            Recovery.detect_repaired ~jobs:1 !capsule scheme ~times
              ~length:message_bits ~original:ws ~suspect:suspect_ws
          in
          let rep_bit_errors = Codec.hamming message rv_rep.Survivable.message in
          let findings = rep_report.Recovery.findings in
          let pvalue = Survivable.match_pvalue ~expected:message rv in
          {
            attack = describe_spec spec;
            grid_index = index;
            cell_seed = (seed * 1_000_003) + (times * 1009) + index;
            params = spec_params spec;
            redundancy = times;
            bits = message_bits;
            carriers;
            erased;
            erasure_rate = float_of_int erased /. float_of_int (max 1 carriers);
            bit_errors;
            ber = float_of_int bit_errors /. float_of_int message_bits;
            pvalue;
            accused = pvalue <= accuse_threshold;
            distortion;
            recovered = Bitvec.equal message rv.Survivable.message;
            naive_recovered = Bitvec.equal message naive;
            type_drift;
            rec_recovered = Bitvec.equal message rv_rep.Survivable.message;
            recovered_bits = max 0 (bit_errors - rep_bit_errors);
            false_repairs = max 0 (rep_bit_errors - bit_errors);
            groups_repaired = rep_report.Recovery.repaired;
            groups_unrepairable = rep_report.Recovery.unrepairable;
            groups_distorted = findings.Recovery.distorted;
            groups_erased = findings.Recovery.erased;
          }
        in
        let timed_cell ((times, _, _, _, _, _, index, spec) as cell) =
          Obs.incr c_cells;
          (* seed + parameters in the span detail: any cell in a trace is
             replayable standalone (wmark attack --seed S --only I). *)
          Obs.span
            ~detail:
              (Printf.sprintf "%s R=%d idx=%d seed=%d [%s]"
                 (describe_spec spec) times index
                 ((seed * 1_000_003) + (times * 1009) + index)
                 (spec_params spec))
            t_cell
            (fun () -> run_cell cell)
        in
        let rows = Wm_par.Pool.map_list ?jobs timed_cell cells in
        Ok
          {
            workload =
              (match workload with
              | Some w -> w
              | None -> Printf.sprintf "structure, %d active weights" nactive);
            message;
            capacity;
            active = nactive;
            rows;
          }
      end

let csv_header =
  "attack,grid_index,cell_seed,params,redundancy,bits,carriers,erased,erasure_rate,bit_errors,ber,pvalue,accused,distortion,recovered,naive_recovered,type_drift,rec_recovered,recovered_bits,false_repairs,groups_repaired,groups_unrepairable,groups_distorted,groups_erased"

let to_csv r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf csv_header;
  Buffer.add_char buf '\n';
  List.iter
    (fun o ->
      Buffer.add_string buf
        (Printf.sprintf
           "%S,%d,%d,%S,%d,%d,%d,%d,%.4f,%d,%.4f,%.3g,%b,%s,%b,%b,%s,%b,%d,%d,%d,%d,%d,%d\n"
           o.attack o.grid_index o.cell_seed o.params o.redundancy o.bits
           o.carriers o.erased o.erasure_rate o.bit_errors o.ber o.pvalue
           o.accused
           (match o.distortion with Some d -> string_of_int d | None -> "")
           o.recovered o.naive_recovered
           (match o.type_drift with Some b -> string_of_bool b | None -> "")
           o.rec_recovered o.recovered_bits o.false_repairs o.groups_repaired
           o.groups_unrepairable o.groups_distorted o.groups_erased))
    r.rows;
  Buffer.contents buf

let outcome_to_json o =
  Wm_util.Json.(
    Obj
      [
        ("attack", String o.attack);
        ("redundancy", Int o.redundancy);
        ("bits", Int o.bits);
        ("carriers", Int o.carriers);
        ("erased", Int o.erased);
        ("erasure_rate", Float o.erasure_rate);
        ("bit_errors", Int o.bit_errors);
        ("ber", Float o.ber);
        ("pvalue", Float o.pvalue);
        ("accused", Bool o.accused);
        ( "distortion",
          match o.distortion with Some d -> Int d | None -> Null );
        ("recovered", Bool o.recovered);
        ("naive_recovered", Bool o.naive_recovered);
        ( "type_drift",
          (match o.type_drift with Some b -> Bool b | None -> Null) );
        ("grid_index", Int o.grid_index);
        ("cell_seed", Int o.cell_seed);
        ("params", String o.params);
        ("rec_recovered", Bool o.rec_recovered);
        ("recovered_bits", Int o.recovered_bits);
        ("false_repairs", Int o.false_repairs);
        ("groups_repaired", Int o.groups_repaired);
        ("groups_unrepairable", Int o.groups_unrepairable);
        ("groups_distorted", Int o.groups_distorted);
        ("groups_erased", Int o.groups_erased);
      ])

let to_json r =
  Wm_util.Json.(
    Obj
      [
        ("workload", String r.workload);
        ("message", Int (Codec.to_int r.message));
        ("message_bits", Int (Bitvec.length r.message));
        ("capacity", Int r.capacity);
        ("active", Int r.active);
        ("rows", List (List.map outcome_to_json r.rows));
      ])

let render r =
  let t =
    Texttab.create
      [
        "attack"; "R"; "erased"; "BER"; "p-value"; "verdict"; "d'";
        "survivable"; "aligned"; "types"; "repaired"; "+bits"; "false";
      ]
  in
  List.iter
    (fun o ->
      Texttab.addf t "%s|%d|%d/%d|%.2f|%.2g|%s|%s|%s|%s|%s|%s|%d|%d" o.attack
        o.redundancy o.erased o.carriers o.ber o.pvalue
        (if o.accused then "accused" else "-")
        (match o.distortion with Some d -> string_of_int d | None -> "-")
        (if o.recovered then "recovered" else "LOST")
        (if o.naive_recovered then "recovered" else "LOST")
        (match o.type_drift with
        | Some true -> "drift"
        | Some false -> "stable"
        | None -> "-")
        (if o.rec_recovered then "recovered" else "LOST")
        o.recovered_bits o.false_repairs)
    r.rows;
  Printf.sprintf
    "workload: %s\nmessage: %d bits (%d), capacity %d, active %d\n%s"
    r.workload (Bitvec.length r.message) (Codec.to_int r.message) r.capacity
    r.active (Texttab.render t)

let pp fmt r = Format.pp_print_string fmt (render r)
