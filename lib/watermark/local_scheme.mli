(** The Theorem 3 watermarking scheme: local queries on bounded-degree
    structures.

    Pipeline (Section 3): type every parameter by its rho-neighborhood,
    pick one canonical parameter per type, partition active elements into
    equal-class pairs, select an eps-good subset of pairs (worst-case split
    count <= ceil(1/eps), so {e every} message's global distortion is
    within budget), and embed message bits as pair orientations.  The
    detector replays the preparation (same structure, query and seed),
    queries the suspect server on every parameter, and reads each selected
    pair's weight-difference sign.

    Determinism contract: [prepare] is a deterministic function of
    (structure, query, options) — marker and detector derive the same pair
    list independently, which is what lets detection work from query
    answers alone. *)

type options = {
  seed : int;  (** drives pair selection; same seed -> same scheme *)
  rho : int option;
      (** locality rank; default: {!Wm_logic.Locality.best_rank} — the tight
          conjunctive-query rank when applicable, else the Gaifman bound *)
  epsilon : float;  (** distortion budget 1/eps; default 1.0 (budget 1) *)
  selection : [ `Greedy | `Random of int ];
      (** [`Random tries] retries the paper's probabilistic draw; [`Greedy]
          (default) admits pairs under the same certificate. *)
}

val default_options : options

type t
(** A prepared scheme: everything the marker and detector share. *)

type report = {
  degree : int;  (** Gaifman degree k of the instance *)
  rho : int;
  ntp : int;  (** number of neighborhood types = |S| *)
  active : int;  (** |W| *)
  pairs_available : int;  (** size of the S-partition *)
  pairs_selected : int;  (** capacity in bits *)
  eta : int;  (** Lemma 1 bound *)
  budget : int;  (** ceil(1/eps) *)
  max_split : int;  (** certified worst-case distortion over all params *)
}

val prepare :
  ?options:options -> ?qs:Query_system.t -> ?gf:Gaifman.t ->
  ?ix:Neighborhood.index -> Weighted.structure -> Query.t ->
  (t, string) result
(** Fails (with a message) when the query is unusable, e.g. result arity
    differs from the weight arity, or no pair survives selection.  [qs]
    overrides the evaluator — pass a {!Query_system.of_custom} value when
    you have a faster (but semantically identical) way to enumerate result
    sets than the generic FO evaluator; the scheme itself only consumes
    the query-system interface.  [gf] (the structure's Gaifman graph) and
    [ix] (a type index of the query system's parameters at the effective
    rho — ignored if its rho differs) skip the two preparation passes a
    caller has already done; the serving engine passes both so repeat
    prepares against a stored dataset, and sharded index construction,
    reuse cached state.  Results are identical with or without them
    provided they describe the same structure. *)

val update :
  ?old_gf:Gaifman.t ->
  t ->
  old:Weighted.structure ->
  Weighted.structure ->
  Query.t ->
  dirty:int list ->
  (t, string) result
(** Re-prepare after structural edits, incrementally: [update t ~old ws q
    ~dirty] is [prepare ~options ws q] for the options [t] was prepared
    with — same pairs, same report, bit for bit — but the neighborhood
    index comes from {!Wm_relational.Neighborhood.reindex} over the dirty
    set the edits reported (see {!Wm_relational.Structure.apply_edits}) and
    the query memo is carried over through {!Query_system.refresh} instead
    of starting cold.  [old] is the instance [t] was prepared on; [old_gf]
    optionally supplies its (cached) Gaifman graph so a serving engine
    does not rebuild it per edit script.  After a
    type-changing update the marker re-embeds (Theorem 8's dichotomy):
    compare {!index} before and after, or use
    {!Wm_watermark.Incremental.update_decision}. *)

val index : t -> Neighborhood.index
(** The scheme's neighborhood type index (what {!update} maintains). *)

val report : t -> report
val capacity : t -> int
(** Number of message bits the scheme can embed. *)

val pairs : t -> Pairing.pair list
val query_system : t -> Query_system.t

val mark : t -> Bitvec.t -> Weighted.t -> Weighted.t
(** Embed a message of length <= capacity into the weights (must be the
    weights [prepare] saw, or a weights-only update of them — Theorem 7). *)

val detect : t -> original:Weighted.t -> server:Query_system.server ->
  length:int -> Bitvec.t
(** Read back an embedded message of the given length, using only query
    answers from the suspect server.  Ambiguous pairs (difference of
    unexpected magnitude, e.g. after an attack) decode by sign, ties to
    0. *)

val detect_weights : t -> original:Weighted.t -> suspect:Weighted.t ->
  length:int -> Bitvec.t
(** Convenience wrapper building an honest server over suspect weights. *)
