(* Observability: how many carriers each read classified, and how the
   classifications split — the per-phase cost the detector contributes to
   an attack-grid cell. *)
module Obs = Wm_obs.Obs

let c_reads = Obs.counter "det.reads"
let c_carriers = Obs.counter "det.carriers"
let c_erased = Obs.counter "det.erased"
let t_read = Obs.timer "det.read"

type tamper = {
  t_groups : int;
  t_intact : int;
  t_distorted : int;
  t_erased : int;
  t_blind : int;
}

type verdict = {
  decoded : Bitvec.t;
  erasure : Bitvec.t;
  strong : int;
  weak : int;
  silent : int;
  erased : int;
  confidence : float;
  tamper : tamper option;
}

let with_tamper v t = { v with tamper = Some t }

let suspicion t =
  if t.t_groups = 0 then 0.
  else float_of_int (t.t_groups - t.t_intact) /. float_of_int t.t_groups

(* What one carrier contributes, computed independently per pair — the
   unit of work the domain pool parallelizes. *)
type carrier = Erased | Cell of bool * [ `Strong | `Weak | `Silent ]

let classify_carrier ~original ~observed { Pairing.fst; snd } =
  let seen t = Tuple.Map.mem t observed in
  if (not (seen fst)) && not (seen snd) then Erased
  else begin
    let delta t =
      match Tuple.Map.find_opt t observed with
      | Some v -> v - Weighted.get original t
      | None -> 0
    in
    let d = delta fst - delta snd in
    Cell
      ( d > 0,
        if d = 2 || d = -2 then `Strong else if d <> 0 then `Weak else `Silent
      )
  end

(* Sequential accumulation of per-carrier classifications, in index
   order — shared by the plain reader and the sharded serving path, so
   both produce the same verdict from the same carrier array by
   construction. *)
let verdict_of_carriers carriers =
  let length = Array.length carriers in
  let decoded = Bitvec.create length in
  let erasure = Bitvec.create length in
  let strong = ref 0 and weak = ref 0 and silent = ref 0 and erased = ref 0 in
  Array.iteri
    (fun i c ->
      match c with
      | Erased ->
          Bitvec.set erasure i true;
          incr erased
      | Cell (bit, kind) -> (
          Bitvec.set decoded i bit;
          match kind with
          | `Strong -> incr strong
          | `Weak -> incr weak
          | `Silent -> incr silent))
    carriers;
  Obs.add c_erased !erased;
  let read_count = length - !erased in
  {
    decoded;
    erasure;
    strong = !strong;
    weak = !weak;
    silent = !silent;
    erased = !erased;
    confidence =
      (if read_count = 0 then 0.
       else float_of_int (!strong + !weak) /. float_of_int read_count);
    tamper = None;
  }

(* First [n] elements, stopping early — [List.filteri] would traverse
   the whole half-million-pair list on every serve request. *)
let take n l =
  let rec go n acc = function
    | x :: rest when n > 0 -> go (n - 1) (x :: acc) rest
    | _ -> List.rev acc
  in
  go n [] l

let read ?jobs pairs ~original ~observed ~length =
  let asked = take length pairs in
  if List.length asked < length then
    invalid_arg "Detector.read: length exceeds pair count";
  Obs.time t_read @@ fun () ->
  Obs.incr c_reads;
  Obs.add c_carriers length;
  let carriers =
    (* parallel phase: each carrier is classified on its own; the
       sequential accumulation is in index order, so the verdict is
       bit-identical to the jobs=1 loop *)
    Wm_par.Pool.parallel_map ?jobs
      (classify_carrier ~original ~observed)
      (Array.of_list asked)
  in
  verdict_of_carriers carriers

let read_weights ?jobs pairs ~original ~suspect ~length =
  (* Only the first [length] carriers are read, so only their endpoints
     need observing — a serving engine answering thousands of short
     detects per second on a scheme with hundreds of thousands of pairs
     must not pay O(capacity) per request. *)
  let asked = take length pairs in
  if List.length asked < length then
    invalid_arg "Detector.read_weights: length exceeds pair count";
  let observed =
    List.fold_left
      (fun acc { Pairing.fst; snd } ->
        Tuple.Map.add fst (Weighted.get suspect fst)
          (Tuple.Map.add snd (Weighted.get suspect snd) acc))
      Tuple.Map.empty asked
  in
  read ?jobs asked ~original ~observed ~length

(* log C(n,k) via lgamma-free accumulation to stay in float range. *)
let log_choose n k =
  let k = min k (n - k) in
  let acc = ref 0. in
  for i = 1 to k do
    acc := !acc +. log (float_of_int (n - k + i)) -. log (float_of_int i)
  done;
  !acc

let binomial_tail_p ~p ~trials ~successes =
  (* The negated comparison also rejects NaN, which every [<] test lets
     through. *)
  if not (p >= 0. && p <= 1.) then
    invalid_arg "Detector.binomial_tail_p: p must be in [0, 1]";
  if successes <= 0 then 1.
  else if successes > trials then 0.
  else if p = 0. then 0. (* no success is ever drawn *)
  else if p = 1. then 1. (* log (1 - p) = -inf; 0 * -inf = nan at k = trials *)
  else begin
    let lp = log p and lq = log (1. -. p) in
    let total = ref 0. in
    for k = successes to trials do
      total :=
        !total
        +. exp
             (log_choose trials k
             +. (float_of_int k *. lp)
             +. (float_of_int (trials - k) *. lq))
    done;
    min 1. !total
  end

let binomial_tail ~trials ~successes = binomial_tail_p ~p:0.5 ~trials ~successes

let match_pvalue ~expected verdict =
  let n = Bitvec.length expected in
  if n <> Bitvec.length verdict.decoded then
    invalid_arg "Detector.match_pvalue: length mismatch";
  let trials = ref 0 and agree = ref 0 in
  for i = 0 to n - 1 do
    if not (Bitvec.get verdict.erasure i) then begin
      incr trials;
      if Bitvec.get expected i = Bitvec.get verdict.decoded i then incr agree
    end
  done;
  binomial_tail ~trials:!trials ~successes:!agree

(* Multiple-testing corrections.  A sweep that scores n hypotheses at
   per-test level alpha accuses a wrong one with probability up to
   n * alpha; tracing thousands of candidate recipients, or judging every
   cell of an attack grid, must shrink the per-test threshold to keep the
   family-wise error at alpha. *)

let check_correction who ~alpha ~tests =
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg (who ^ ": alpha must be in (0, 1]");
  if tests < 1 then invalid_arg (who ^ ": tests must be >= 1")

let bonferroni ~alpha ~tests =
  check_correction "Detector.bonferroni" ~alpha ~tests;
  alpha /. float_of_int tests

let sidak ~alpha ~tests =
  check_correction "Detector.sidak" ~alpha ~tests;
  1. -. ((1. -. alpha) ** (1. /. float_of_int tests))

let is_marked ?(alpha = 0.01) verdict =
  let read = verdict.strong + verdict.weak + verdict.silent in
  (* Null hypothesis: no mark.  A pair shows the exact antisymmetric +-2
     signature only if the two weights independently drifted by +-1 in
     opposite directions — probability 2/9 under uniform +-1 noise, 0 for
     an exact copy; 1/4 is a conservative ceiling.  Strong carriers beyond
     what that explains reject the null. *)
  binomial_tail_p ~p:0.25 ~trials:read ~successes:verdict.strong < alpha
