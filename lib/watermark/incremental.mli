(** Incremental watermarking (Section 5).

    Weights-only updates (Theorem 7): when the owner changes base weights
    but not the structure, re-applying the stored mark deltas to the new
    weights preserves both the global-distortion certificate and
    detection.  Structural updates are safe exactly when they are
    {e type-preserving} (Theorem 8): no neighborhood isomorphism type is
    created or suppressed, so the canonical parameter set S — hence the
    S-partition and the detector — still applies.  Otherwise the owner
    must re-mark, which exposes it to the {e auto-collusion} attack: a
    server averaging two differently-marked versions cancels the +-1 pair
    orientations. *)

val propagate :
  original:Weighted.t -> marked:Weighted.t -> updated:Weighted.t -> Weighted.t
(** [propagate ~original ~marked ~updated] carries the mark M = marked -
    original over to the updated weights: result = updated + M (per
    element over the union of supports). *)

val type_preserving :
  rho:int -> arity:int -> Structure.t -> Structure.t -> bool
(** Do the two structures realize exactly the same set of rho-neighborhood
    isomorphism types on arity-[arity] parameter tuples?  (Multiplicities
    may differ — the paper only requires that no type appears or
    disappears.) *)

val update_decision :
  rho:int -> arity:int -> old_graph:Structure.t -> new_graph:Structure.t ->
  [ `Keep_mark | `Remark_required ]
(** Theorem 8's dichotomy, as a decision procedure the owner runs before
    publishing an update. *)

val type_preserving_ix :
  Structure.t -> Neighborhood.index -> Structure.t -> Neighborhood.index ->
  bool
(** {!type_preserving} when both universe indexes are already in hand —
    e.g. before and after {!Wm_relational.Neighborhood.reindex} — so only
    the representatives are compared, with no universe re-typing.  The
    indexes must share [rho]. *)

val update_decision_ix :
  old_graph:Structure.t -> old_index:Neighborhood.index ->
  new_graph:Structure.t -> new_index:Neighborhood.index ->
  [ `Keep_mark | `Remark_required ]
(** {!update_decision} via {!type_preserving_ix} — the cheap path used by
    [wmark update]. *)

val average : Weighted.t -> Weighted.t -> Weighted.t
(** The auto-collusion attack: per-element integer average (rounding
    toward the first argument).  Averaging two copies with opposite pair
    orientations erases those bits — the experiment E11 failure case. *)

val average_many : Weighted.t list -> Weighted.t
(** k-party collusion: per-element mean of all copies, rounded to nearest
    (ties toward the first copy's value).  With k independent random
    messages a pair's expected averaged difference shrinks toward 0, and
    any bit on which the colluders split near-evenly dies. *)
