type options = {
  seed : int;
  rho : int option;
  epsilon : float;
  selection : [ `Greedy | `Random of int ];
}

let default_options =
  { seed = 0xC0FFEE; rho = None; epsilon = 1.0; selection = `Greedy }

type report = {
  degree : int;
  rho : int;
  ntp : int;
  active : int;
  pairs_available : int;
  pairs_selected : int;
  eta : int;
  budget : int;
  max_split : int;
}

type t = {
  qs : Query_system.t;
  selected : Pairing.pair list;
  rep : report;
  ix : Neighborhood.index;
  options : options;
}

(* The pairing/selection/report tail shared by [prepare] and [update]: a
   deterministic function of (options, query, query system, degree, index),
   so an incremental update that reproduces the same inputs reproduces the
   same scheme. *)
let assemble ~options ~g ~q ~qs ~degree ~rho ~ix =
  let active = Query_system.active qs in
  if active = [] then Error "query has no active weighted elements"
  else begin
    let canonical = Array.to_list ix.Neighborhood.representatives in
    let all_pairs = Pairing.s_partition qs ~canonical in
    let budget = int_of_float (ceil (1.0 /. options.epsilon)) in
    let eta = Locality.eta q ~k:degree ~rho in
    let selected =
      let g0 = Prng.create options.seed in
      match options.selection with
      | `Greedy -> Pairing.select_greedy g0 qs all_pairs ~budget
      | `Random tries ->
          let n = Locality.query_count_bound g q in
          let p =
            1.0
            /. (float_of_int (max 1 eta)
               *. (float_of_int (2 * n) ** options.epsilon))
          in
          let rec attempt i =
            if i = 0 then []
            else
              match Pairing.select_random g0 qs all_pairs ~p ~budget with
              | Some pairs when pairs <> [] -> pairs
              | _ -> attempt (i - 1)
          in
          attempt tries
    in
    if selected = [] then Error "no pair survived eps-good selection"
    else
      let rep =
        {
          degree;
          rho;
          ntp = Neighborhood.ntp ix;
          active = List.length active;
          pairs_available = List.length all_pairs;
          pairs_selected = List.length selected;
          eta;
          budget;
          max_split = Pairing.max_split qs selected;
        }
      in
      Ok { qs; selected; rep; ix; options }
  end

let prepare ?(options = default_options) ?qs ?gf ?ix (ws : Weighted.structure)
    q =
  let g = ws.Weighted.graph in
  if Query.result_arity q <> Weighted.arity ws.Weighted.weights then
    Error "result arity differs from weight arity"
  else if options.epsilon <= 0. || options.epsilon > 1. then
    Error "epsilon must lie in (0, 1]"
  else begin
    let qs =
      match qs with Some qs -> qs | None -> Query_system.of_relational g q
    in
    let gf = match gf with Some gf -> gf | None -> Gaifman.of_structure g in
    let degree = Gaifman.max_degree gf in
    let rho =
      match options.rho with
      | Some r -> r
      | None -> Locality.best_rank q.Query.phi
    in
    let ix =
      match ix with
      | Some ix when ix.Neighborhood.rho = rho -> ix
      | Some _ | None -> Neighborhood.index g ~rho (Query_system.params qs)
    in
    assemble ~options ~g ~q ~qs ~degree ~rho ~ix
  end

let update ?old_gf t ~old (ws : Weighted.structure) q ~dirty =
  let options = t.options in
  let g = ws.Weighted.graph in
  if Query.result_arity q <> Weighted.arity ws.Weighted.weights then
    Error "result arity differs from weight arity"
  else begin
    let old_g = old.Weighted.graph in
    let rho = t.ix.Neighborhood.rho in
    let old_gf =
      match old_gf with
      | Some gf -> gf
      | None -> Gaifman.of_structure old_g
    in
    let gf = Gaifman.refresh g ~prev:old_gf ~dirty in
    let degree = Gaifman.max_degree gf in
    let affected = Neighborhood.affected_elements ~old_gf ~gf ~rho ~dirty in
    let ix = Neighborhood.reindex ~old:old_g g ~prev:t.ix ~dirty in
    let qs = Query_system.refresh_relational t.qs g q ~affected in
    assemble ~options ~g ~q ~qs ~degree ~rho ~ix
  end

let report t = t.rep
(* O(1): the report already carries the selected-pair count, and a
   serving engine consults the capacity on every mark/detect request. *)
let capacity t = t.rep.pairs_selected
let pairs t = t.selected
let query_system t = t.qs
let index t = t.ix

let mark t message w =
  (* Pairs beyond the message carry no marks; truncating first keeps a
     short-message mark O(message) instead of O(capacity), which is what
     a serving engine marking against a half-million-pair scheme needs. *)
  let l = Bitvec.length message in
  if l > capacity t then
    invalid_arg "Pairing.orientation_marks: message longer than capacity";
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  Weighted.apply_marks w (Pairing.orientation_marks (take l t.selected) message)

let detect t ~original ~server ~length =
  if length > capacity t then
    invalid_arg "Local_scheme.detect: length exceeds capacity";
  let observed = Query_system.reconstruct t.qs server in
  let delta b =
    match Tuple.Map.find_opt b observed with
    | Some v -> v - Weighted.get original b
    | None -> 0
  in
  let message = Bitvec.create length in
  let rec walk i = function
    | { Pairing.fst; snd } :: rest when i < length ->
        Bitvec.set message i (delta fst - delta snd > 0);
        walk (i + 1) rest
    | _ -> ()
  in
  walk 0 t.selected;
  message

let detect_weights t ~original ~suspect ~length =
  detect t ~original ~server:(Query_system.server t.qs suspect) ~length
