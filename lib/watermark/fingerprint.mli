(** Multi-recipient fingerprinting with collusion-resistant tracing.

    The schemes embed {e one} message per marked instance; production
    watermarking must identify {e which} of many recipients leaked a
    copy.  This layer derives one key per recipient from a single master
    key (a keyed FNV transform, GUIDWatermark-style — recipient ids are
    arbitrary strings, so the id space is unbounded and 2^64+ ids cost
    nothing), expands each key into a pseudorandom codeword, and embeds
    the codeword through the shared prepared scheme's pair carriers
    ({!Pairing} orientations, [times] interleaved repetitions a la
    {!Robust}).  Every recipient's copy is a query-preserving marking of
    the {e same} prepared scheme: preparation happens once, generation is
    O(codeword) marks per copy.

    Tracing scores every candidate recipient against a suspect copy: the
    carriers are read once, each message bit is decoded by tie-explicit
    majority over its surviving signal carriers (ties and silent carriers
    abstain — see {!Wm_util.Codec.majority_decode_opt}), and a
    candidate's p-value is the binomial tail of its codeword's agreement
    with the decided bits.  Because bits are decided independently and an
    innocent's codeword bits are uniform, the null distribution is
    exactly Binomial(decided, 1/2) — scoring raw carriers instead would
    correlate the [times] repetitions of each bit and wreck the tail.
    Accusation applies the Šidák-corrected threshold
    ({!Detector.sidak}), so the family-wise false-accusation rate over
    all candidates stays at [alpha].

    Collusion (Boneh–Shaw regime): k colluders combining their copies
    ({!Adversary.collusion}) can silence carriers where their codewords
    disagree, but the majority orientation still follows each member's
    codeword on ~3/4 of the bits, which the binomial score separates from
    the innocents' 1/2 given enough codeword bits.  {!run_grid} measures
    exactly this — tracing accuracy and false accusations over a
    (recipient count x coalition size x attack) grid. *)

type t
(** A fingerprinting context: a prepared carrier scheme plus the master
    key and the codeword geometry (length, repetitions). *)

val of_local :
  ?length:int -> ?times:int -> master:int -> Local_scheme.t ->
  (t, string) result
(** Layer over a prepared {!Local_scheme}.  [length] is the codeword size
    in bits (default [min 128 capacity]); [times] the repetition count
    (default the largest odd value with [times * length <= capacity]).
    [Error _] when the geometry does not fit the scheme's capacity. *)

val of_multi :
  ?length:int -> ?times:int -> master:int -> Multi_scheme.t ->
  (t, string) result
(** Same layering over a {!Multi_scheme}: each recipient's copy preserves
    every registered query at once. *)

val length : t -> int
val times : t -> int
val master : t -> int

val recipient_key : master:int -> string -> int
(** The keyed FNV derivation: one master key -> one integer key per
    recipient id.  Deterministic and platform-stable; an adversary
    without the master key cannot predict any recipient's key. *)

val codeword : t -> string -> Bitvec.t
(** [codeword t rid] is the recipient's [length t]-bit codeword — the
    PRNG expansion of {!recipient_key}.  Distinct recipients get
    independent uniform codewords with overwhelming probability. *)

val mark_for : t -> string -> Weighted.t -> Weighted.t
(** [mark_for t rid w] embeds [rid]'s codeword ([times] interleaved
    repetitions) into the original weights [w] — one recipient's
    fingerprinted copy.  Deterministic; O(times * length) marks. *)

val digest : Weighted.t -> int
(** A non-negative FNV digest of the full weight assignment (ascending
    binding order) — how the serving layer ships proof of 10^4 generated
    copies over the wire without shipping the copies: equal weights give
    equal digests at every job count. *)

val read : ?jobs:int -> t -> original:Weighted.t -> suspect:Weighted.t ->
  Detector.carrier array
(** Classify the scheme's [times * length] fingerprint carriers against a
    suspect weight assignment (cf. {!Detector.classify_carrier});
    parallel over carriers, bit-identical at every job count. *)

val decode : t -> Detector.carrier array -> bool option array
(** Per message bit, the tie-explicit majority over its surviving signal
    carriers: [Some b] on a strict majority, [None] when erased, silent
    or split carriers leave no decided majority. *)

type score = {
  rid : string;
  agreements : int;  (** decided bits matching the candidate's codeword *)
  trials : int;  (** decided bits (candidate-independent) *)
  pvalue : float;  (** binomial tail of the agreement under the null *)
  accused : bool;  (** pvalue <= the Šidák-corrected threshold *)
}

type trace_report = {
  candidates : int;
  alpha : float;  (** requested family-wise error level *)
  threshold : float;  (** Šidák per-candidate threshold actually applied *)
  decided : int;  (** message bits the suspect copy decided *)
  scores : score list;  (** in candidate order *)
  accused : string list;  (** accused recipient ids, in candidate order *)
}

val score : t -> bool option array -> string -> int * int
(** [score t decoded rid] is [(agreements, trials)] of [rid]'s codeword
    against the decoded bits — exposed for the serving layer and tests;
    {!trace} wraps it with the p-value and the corrected threshold. *)

val trace :
  ?jobs:int -> ?alpha:float -> t -> original:Weighted.t ->
  suspect:Weighted.t -> string list -> trace_report
(** Read the suspect's carriers once, then score every candidate
    (parallel over candidates) and accuse those below the Šidák-corrected
    threshold for [alpha] (default 0.01) over [List.length candidates]
    tests.  Raises [Invalid_argument] on an empty candidate list.
    Deterministic and bit-identical at every job count. *)

val verify : t -> string -> original:Weighted.t -> suspect:Weighted.t -> bool
(** Exact single-recipient check: decode the carriers (weights-only
    read), majority-vote each bit tie-explicitly
    ({!Wm_util.Codec.majority_decode_opt}), and require every bit decided
    and equal to [rid]'s codeword.  A copy marked for another recipient —
    equivalently, a detect under the wrong recipient key — fails with
    overwhelming probability. *)

(** {1 The collusion grid}

    The fingerprinting analogue of {!Attack_suite}: deterministic cells
    over (recipient count x coalition size x collusion attack), each cell
    seeded by its grid position so adding rows never reshuffles earlier
    ones. *)

type outcome = {
  grid_index : int;
  cell_seed : int;  (** derived per-cell seed, for standalone replay *)
  recipients : int;
  coalition : int;  (** k — 1 means a single leaker, no collusion *)
  attack : string;
  params : string;  (** machine-readable [kind:key=value] cell params *)
  noise : int;  (** per-copy laundering noise amplitude *)
  caught : int;  (** coalition members accused *)
  false_accusations : int;  (** innocents accused *)
  traced : bool;  (** at least one member accused *)
  accuracy : float;  (** caught / coalition *)
  threshold : float;  (** Šidák threshold applied in this cell *)
  min_member_p : float;  (** best (smallest) coalition-member p-value *)
  min_innocent_p : float;  (** best innocent p-value (1.0 if none) *)
}

type grid_report = {
  length : int;
  times : int;
  alpha : float;
  rows : outcome list;
}

val run_grid :
  ?jobs:int -> ?seed:int -> ?alpha:float -> ?noise:int ->
  ?recipients:int list -> ?coalitions:int list ->
  ?attacks:Adversary.collusion list -> ?prefix:string -> t -> Weighted.t ->
  grid_report
(** For every cell: draw a coalition from the recipient population,
    generate its fingerprinted copies, perturb each copy on its own
    derived stream ({!Adversary.copy_prng}, amplitude [noise], default
    1), collude them ({!Adversary.apply_collusion}), and {!trace} the
    result against {e all} recipients.  Defaults: seed 0xF19, alpha
    0.001, recipients [[1000]], coalitions [[1; 2; 3]], all three
    attacks, ids [prefix ^ index] with prefix ["r"].  One pool task per
    cell; bit-identical at every job count. *)

val render_grid : grid_report -> string
val grid_to_json : grid_report -> Wm_util.Json.t
