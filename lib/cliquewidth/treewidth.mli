(** Tree decompositions.

    Theorem 4's last step: "structures with tree-width k have clique-width
    at most 2^k, and the previous remark applies."  This module supplies
    the tree-width side: decomposition values with an exact validity
    checker, a classical elimination-ordering heuristic that produces valid
    decompositions (an upper bound on the true width), and exact widths for
    the families the experiments use.  Together with
    {!Cw_term.of_tree_graph} (trees have clique-width <= 3) it grounds the
    tree-width column of the E3 table in computed objects rather than
    formulas. *)

type t = {
  bags : int list array;  (** bag contents, sorted element ids *)
  edges : (int * int) list;  (** tree edges between bag indices *)
}

val width : t -> int
(** max bag size - 1. *)

val validate : Structure.t -> t -> (unit, string) result
(** The three tree-decomposition conditions against the structure's
    Gaifman graph: every element in some bag; every Gaifman edge inside
    some bag; for each element, the bags containing it form a connected
    subtree.  Also checks that [edges] is a tree over the bags. *)

val by_min_degree : Structure.t -> t
(** The min-degree elimination heuristic: repeatedly eliminate a
    minimum-degree vertex, turning its neighborhood into a clique; bags are
    the elimination cliques, glued in elimination order (one tree, even on
    disconnected structures).  Always valid (checked by the tests); the
    width is an upper bound on the true tree-width, exact on chordal
    graphs.  Delegates to {!Tdecomp.eliminate}, the engine shared with
    the neighborhood indexer's bounded-width fast path. *)

val by_min_fill : Structure.t -> t
(** The min-fill elimination heuristic: eliminate the vertex whose
    neighborhood needs the fewest fill edges to become a clique (degree,
    then lowest id, as tie-breaks).  Often tighter than min-degree on
    near-chordal graphs; same validity guarantees. *)

val of_sphere : ?heuristic:Tdecomp.heuristic -> Gaifman.t -> t
(** Decompose a caller-provided (sub-)Gaifman graph — e.g. the CSR
    sphere graph the neighborhood fast-path context already built —
    without re-deriving adjacency from a structure.  [heuristic]
    defaults to [Min_degree]. *)

val heuristic_width : Structure.t -> int
(** [width (by_min_degree g)]. *)
