type t =
  | Vertex of int
  | Union of t * t
  | Add_edges of int * int * t
  | Relabel of int * int * t

let rec width = function
  | Vertex l -> l + 1
  | Union (s, t) -> max (width s) (width t)
  | Add_edges (a, b, t) -> max (max a b + 1) (width t)
  | Relabel (a, b, t) -> max (max a b + 1) (width t)

let rec vertex_count = function
  | Vertex _ -> 1
  | Union (s, t) -> vertex_count s + vertex_count t
  | Add_edges (_, _, t) | Relabel (_, _, t) -> vertex_count t

let rec validate = function
  | Vertex l -> if l < 0 then Error "negative label" else Ok ()
  | Union (s, t) -> (
      match validate s with Ok () -> validate t | e -> e)
  | Add_edges (a, b, t) ->
      if a < 0 || b < 0 then Error "negative label"
      else if a = b then Error "eta requires distinct labels"
      else validate t
  | Relabel (a, b, t) ->
      if a < 0 || b < 0 then Error "negative label" else validate t

(* Evaluation: returns (vertices as (id, current label) list in leaf
   preorder, accumulated edge list); the counter threads leaf ids. *)
let eval term =
  let next = ref 0 in
  let rec go = function
    | Vertex l ->
        let id = !next in
        incr next;
        ([ (id, l) ], [])
    | Union (s, t) ->
        let vs, es = go s in
        let vt, et = go t in
        (vs @ vt, es @ et)
    | Add_edges (a, b, t) ->
        let vs, es = go t in
        let news =
          List.concat_map
            (fun (u, lu) ->
              if lu = a then
                List.filter_map
                  (fun (v, lv) -> if lv = b then Some (u, v) else None)
                  vs
              else [])
            vs
        in
        (vs, news @ es)
    | Relabel (a, b, t) ->
        let vs, es = go t in
        (List.map (fun (v, l) -> (v, if l = a then b else l)) vs, es)
  in
  let vs, es = go term in
  let n = List.length vs in
  let g = ref (Structure.create Schema.graph n) in
  List.iter
    (fun (u, v) -> g := Structure.add_pairs !g "E" [ (u, v); (v, u) ])
    es;
  !g

let labels_after term =
  let next = ref 0 in
  let rec go = function
    | Vertex l ->
        let id = !next in
        incr next;
        [ (id, l) ]
    | Union (s, t) -> go s @ go t
    | Add_edges (_, _, t) -> go t
    | Relabel (a, b, t) ->
        List.map (fun (v, l) -> (v, if l = a then b else l)) (go t)
  in
  let vs = go term in
  let out = Array.make (List.length vs) 0 in
  List.iter (fun (v, l) -> out.(v) <- l) vs;
  out

let clique n =
  if n < 1 then invalid_arg "Cw_term.clique";
  let rec go i acc =
    if i = n then acc
    else
      go (i + 1)
        (Relabel (1, 0, Add_edges (0, 1, Union (acc, Vertex 1))))
  in
  go 1 (Vertex 0)

let path n =
  if n < 1 then invalid_arg "Cw_term.path";
  (* Invariant: the rightmost vertex carries label 1, the rest 0. *)
  let rec go i acc =
    if i = n then acc
    else
      go (i + 1)
        (Relabel (2, 1, Relabel (1, 0, Add_edges (1, 2, Union (acc, Vertex 2)))))
  in
  go 1 (Vertex 1)

(* Trees have clique-width <= 3.  Invariant of [build v]: a term whose
   graph is the subtree rooted at v, with v labeled 1 and everything else
   labeled 0; children are attached one at a time through the scratch
   label 2.  Term leaves appear in preorder of the rooted tree, recorded
   in [visit]. *)
let of_tree_graph g =
  let n = Structure.size g in
  if n = 0 then None
  else begin
    let gf = Gaifman.of_structure g in
    let edge_count =
      Structure.fold_universe
        (fun v acc -> acc + Gaifman.degree gf v)
        g 0
      / 2
    in
    let comps = Gaifman.connected_components gf in
    if edge_count <> n - List.length comps then None (* a cycle somewhere *)
    else begin
      let visit = ref [] in
      let rec build parent v =
        visit := v :: !visit;
        let children =
          List.filter (fun c -> Some c <> parent) (Gaifman.neighbors gf v)
        in
        List.fold_left
          (fun acc c ->
            Relabel
              (2, 0, Add_edges (1, 2, Union (acc, Relabel (1, 2, build (Some v) c)))))
          (Vertex 1) children
      in
      let term =
        match comps with
        | [] -> assert false
        | first :: rest ->
            List.fold_left
              (fun acc comp -> Union (acc, Relabel (1, 0, build None (List.hd comp))))
              (Relabel (1, 0, build None (List.hd first)))
              rest
      in
      Some (term, Array.of_list (List.rev !visit))
    end
  end

let random g ~labels ~vertices =
  if labels < 2 then invalid_arg "Cw_term.random: need >= 2 labels";
  if vertices < 1 then invalid_arg "Cw_term.random: need >= 1 vertex";
  let pool =
    ref (List.init vertices (fun _ -> Vertex (Prng.int g labels)))
  in
  let pick () =
    let arr = Array.of_list !pool in
    let i = Prng.int g (Array.length arr) in
    pool := List.filteri (fun j _ -> j <> i) !pool;
    arr.(i)
  in
  while List.length !pool > 1 do
    let s = pick () in
    let t = pick () in
    let combined = Union (s, t) in
    let a = Prng.int g labels in
    let b = (a + 1 + Prng.int g (labels - 1)) mod labels in
    let combined = Add_edges (a, b, combined) in
    let combined =
      if Prng.bernoulli g 0.3 then
        Relabel (Prng.int g labels, Prng.int g labels, combined)
      else combined
    in
    pool := combined :: !pool
  done;
  List.hd !pool

let rec pp fmt = function
  | Vertex l -> Format.fprintf fmt "%d" l
  | Union (s, t) -> Format.fprintf fmt "(%a + %a)" pp s pp t
  | Add_edges (a, b, t) -> Format.fprintf fmt "eta[%d,%d](%a)" a b pp t
  | Relabel (a, b, t) -> Format.fprintf fmt "rho[%d->%d](%a)" a b pp t
