module Iset = Set.Make (Int)

type t = { bags : int list array; edges : (int * int) list }

(* The elimination engine lives in Wm_relational.Tdecomp (the
   neighborhood indexer's bounded-width fast path runs it on per-sphere
   sub-Gaifman graphs and cannot depend on this library); this module
   keeps the structure-level API and the exact validity checker. *)
let of_decomp (d : Tdecomp.t) =
  { bags = Array.map Array.to_list d.Tdecomp.bags; edges = d.Tdecomp.edges }

let width t =
  Array.fold_left (fun acc bag -> max acc (List.length bag - 1)) 0 t.bags

let validate g t =
  let n = Structure.size g in
  let nbags = Array.length t.bags in
  let in_bag = Array.make n [] in
  (try
     Array.iteri
       (fun b bag -> List.iter (fun v -> in_bag.(v) <- b :: in_bag.(v)) bag)
       t.bags
   with Invalid_argument _ ->
     invalid_arg "Treewidth.validate: bag element outside the universe");
  (* 1. Every element occurs. *)
  let missing =
    Structure.fold_universe
      (fun v acc -> acc || in_bag.(v) = [])
      g false
  in
  if missing then Error "element in no bag"
  else begin
    (* The bag tree must be a tree (or forest matching bag count). *)
    let ok_edges =
      List.for_all (fun (a, b) -> a >= 0 && a < nbags && b >= 0 && b < nbags) t.edges
    in
    if not ok_edges then Error "bag edge out of range"
    else begin
      let adj = Array.make nbags [] in
      List.iter
        (fun (a, b) ->
          adj.(a) <- b :: adj.(a);
          adj.(b) <- a :: adj.(b))
        t.edges;
      (* acyclicity: |edges| = nbags - #components *)
      let seen = Array.make nbags false in
      let comps = ref 0 in
      for b = 0 to nbags - 1 do
        if not seen.(b) then begin
          incr comps;
          let q = Queue.create () in
          Queue.add b q;
          seen.(b) <- true;
          while not (Queue.is_empty q) do
            let x = Queue.pop q in
            List.iter
              (fun y ->
                if not seen.(y) then begin
                  seen.(y) <- true;
                  Queue.add y q
                end)
              adj.(x)
          done
        end
      done;
      if List.length t.edges <> nbags - !comps then Error "bag graph has a cycle"
      else begin
        (* 2. Every Gaifman edge inside some bag. *)
        let gf = Gaifman.of_structure g in
        let covered u v =
          List.exists (fun b -> List.mem v t.bags.(b)) in_bag.(u)
        in
        let bad_edge =
          Structure.fold_universe
            (fun u acc ->
              acc
              || List.exists
                   (fun v -> not (covered u v))
                   (Gaifman.neighbors gf u))
            g false
        in
        if bad_edge then Error "edge covered by no bag"
        else begin
          (* 3. Occurrence connectivity per element. *)
          let connected v =
            let bags_v = Iset.of_list in_bag.(v) in
            match in_bag.(v) with
            | [] -> true
            | b0 :: _ ->
                let seen = ref (Iset.singleton b0) in
                let q = Queue.create () in
                Queue.add b0 q;
                while not (Queue.is_empty q) do
                  let x = Queue.pop q in
                  List.iter
                    (fun y ->
                      if Iset.mem y bags_v && not (Iset.mem y !seen) then begin
                        seen := Iset.add y !seen;
                        Queue.add y q
                      end)
                    adj.(x)
                done;
                Iset.equal !seen bags_v
          in
          if Structure.fold_universe (fun v acc -> acc && connected v) g true
          then Ok ()
          else Error "occurrence not connected"
        end
      end
    end
  end

let by_min_degree g =
  of_decomp
    (Tdecomp.eliminate ~heuristic:Tdecomp.Min_degree (Gaifman.of_structure g))

let by_min_fill g =
  of_decomp
    (Tdecomp.eliminate ~heuristic:Tdecomp.Min_fill (Gaifman.of_structure g))

let of_sphere ?(heuristic = Tdecomp.Min_degree) gf =
  of_decomp (Tdecomp.eliminate ~heuristic gf)

let heuristic_width g = width (by_min_degree g)
