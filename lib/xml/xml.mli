(** Minimal XML documents: parsing and printing.

    Just enough XML for the paper's Section 4 workloads: elements, text,
    attributes, comments and processing instructions (the last two are
    skipped on parse).  No namespaces, DTDs or CDATA.  Whitespace-only text
    between elements is dropped; other text is kept verbatim after entity
    decoding. *)

type t =
  | Element of { tag : string; attrs : (string * string) list; children : t list }
  | Text of string

exception Parse_error of string
(** Raised with a message naming the line, column and problem. *)

type error = { line : int; column : int; message : string }
(** 1-based line and column; both 0 when no position applies. *)

val error_to_string : error -> string

val parse_result : string -> (t, error) result
(** Total: parses one document (leading [<?xml ...?>] allowed); every
    malformed input comes back as [Error] with position information.
    Never raises. *)

val parse : string -> t
(** @raise Parse_error on malformed input (delegates to
    {!parse_result}). *)

val to_string : ?indent:bool -> t -> string
(** Serializes; [indent] (default true) pretty-prints with 2-space
    indentation, text-only elements staying on one line. *)

val element : string -> t list -> t
(** Element with no attributes. *)

val text : string -> t
val int_text : int -> t

val tag_of : t -> string option
val children_of : t -> t list

val equal : t -> t -> bool
(** Structural equality (attribute order significant). *)
