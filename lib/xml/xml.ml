type t =
  | Element of { tag : string; attrs : (string * string) list; children : t list }
  | Text of string

exception Parse_error of string

type error = { line : int; column : int; message : string }

let error_to_string e =
  Printf.sprintf "line %d, column %d: %s" e.line e.column e.message

(* Internal: failures carry the raw offset; [parse_result] converts it to
   line/column against the source once, at the boundary. *)
exception Fail_at of int * string

let fail off msg = raise (Fail_at (off, msg))

let position_of src off =
  let off = min (max 0 off) (String.length src) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to off - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, off - !bol + 1)

(* ------------------------------------------------------------------ *)
(* Lexing helpers over a string cursor. *)

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let looking_at c s =
  let n = String.length s in
  c.pos + n <= String.length c.src && String.sub c.src c.pos n = s

let advance c n = c.pos <- c.pos + n

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance c 1
  done

let is_name_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-' || ch = '.' || ch = ':'

let read_name c =
  let start = c.pos in
  while (match peek c with Some ch -> is_name_char ch | None -> false) do
    advance c 1
  done;
  if c.pos = start then fail c.pos "expected a name";
  String.sub c.src start (c.pos - start)

let decode_entities ?(base = 0) s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '&' then begin
      let semi =
        match String.index_from_opt s !i ';' with
        | Some j when j - !i <= 6 -> j
        | _ -> fail (base + !i) "unterminated entity"
      in
      let name = String.sub s (!i + 1) (semi - !i - 1) in
      Buffer.add_string buf
        (match name with
        | "lt" -> "<"
        | "gt" -> ">"
        | "amp" -> "&"
        | "quot" -> "\""
        | "apos" -> "'"
        | _ -> fail (base + !i) ("unknown entity &" ^ name ^ ";"));
      i := semi + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let encode_entities s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let is_blank s = String.for_all (fun ch -> ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r') s

(* ------------------------------------------------------------------ *)

let rec skip_misc c =
  skip_ws c;
  if looking_at c "<!--" then begin
    (match
       let rec find i =
         if i + 3 > String.length c.src then None
         else if String.sub c.src i 3 = "-->" then Some i
         else find (i + 1)
       in
       find (c.pos + 4)
     with
    | Some j -> c.pos <- j + 3
    | None -> fail c.pos "unterminated comment");
    skip_misc c
  end
  else if looking_at c "<?" then begin
    (match String.index_from_opt c.src c.pos '>' with
    | Some j -> c.pos <- j + 1
    | None -> fail c.pos "unterminated processing instruction");
    skip_misc c
  end

let read_attr c =
  let name = read_name c in
  skip_ws c;
  if peek c <> Some '=' then fail c.pos "expected '=' in attribute";
  advance c 1;
  skip_ws c;
  let quote =
    match peek c with
    | Some ('"' as q) | Some ('\'' as q) -> q
    | _ -> fail c.pos "expected quoted attribute value"
  in
  advance c 1;
  let start = c.pos in
  (match String.index_from_opt c.src c.pos quote with
  | Some j -> c.pos <- j
  | None -> fail c.pos "unterminated attribute value");
  let value = decode_entities ~base:start (String.sub c.src start (c.pos - start)) in
  advance c 1;
  (name, value)

let rec read_element c =
  if peek c <> Some '<' then fail c.pos "expected '<'";
  advance c 1;
  let tag = read_name c in
  let attrs = ref [] in
  skip_ws c;
  while (match peek c with Some ch -> is_name_char ch | None -> false) do
    attrs := read_attr c :: !attrs;
    skip_ws c
  done;
  if looking_at c "/>" then begin
    advance c 2;
    Element { tag; attrs = List.rev !attrs; children = [] }
  end
  else begin
    if peek c <> Some '>' then fail c.pos "expected '>'";
    advance c 1;
    let children = read_children c tag in
    Element { tag; attrs = List.rev !attrs; children }
  end

and read_children c tag =
  let close = "</" ^ tag in
  let out = ref [] in
  let finished = ref false in
  while not !finished do
    if looking_at c close then begin
      advance c (String.length close);
      skip_ws c;
      if peek c <> Some '>' then fail c.pos "expected '>' in closing tag";
      advance c 1;
      finished := true
    end
    else if looking_at c "<!--" || looking_at c "<?" then skip_misc c
    else if looking_at c "</" then fail c.pos ("mismatched closing tag, wanted " ^ tag)
    else if peek c = Some '<' then out := read_element c :: !out
    else begin
      let start = c.pos in
      while peek c <> Some '<' && peek c <> None do
        advance c 1
      done;
      if peek c = None then fail start ("unterminated element " ^ tag);
      let txt = String.sub c.src start (c.pos - start) in
      if not (is_blank txt) then
        out := Text (decode_entities ~base:start (String.trim txt)) :: !out
    end
  done;
  List.rev !out

let parse_result s =
  let run () =
    let c = { src = s; pos = 0 } in
    skip_misc c;
    if peek c <> Some '<' then fail c.pos "document must start with an element";
    let doc = read_element c in
    skip_misc c;
    if c.pos <> String.length s then
      fail c.pos "trailing content after document";
    doc
  in
  match run () with
  | doc -> Ok doc
  | exception Fail_at (off, message) ->
      let line, column = position_of s off in
      Error { line; column; message }
  | exception (Invalid_argument m | Failure m) ->
      (* Defensive: no parser path should reach here, but a total result
         API must not leak an exception on any input. *)
      Error { line = 0; column = 0; message = m }

let parse s =
  match parse_result s with
  | Ok doc -> doc
  | Error e -> raise (Parse_error (error_to_string e))

(* ------------------------------------------------------------------ *)

let to_string ?(indent = true) doc =
  let buf = Buffer.create 1024 in
  let attrs_str attrs =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (encode_entities v)) attrs)
  in
  let rec go depth node =
    let pad = if indent then String.make (2 * depth) ' ' else "" in
    match node with
    | Text s ->
        Buffer.add_string buf pad;
        Buffer.add_string buf (encode_entities s);
        if indent then Buffer.add_char buf '\n'
    | Element { tag; attrs; children = [] } ->
        Buffer.add_string buf (Printf.sprintf "%s<%s%s/>" pad tag (attrs_str attrs));
        if indent then Buffer.add_char buf '\n'
    | Element { tag; attrs; children = [ Text s ] } ->
        Buffer.add_string buf
          (Printf.sprintf "%s<%s%s>%s</%s>" pad tag (attrs_str attrs)
             (encode_entities s) tag);
        if indent then Buffer.add_char buf '\n'
    | Element { tag; attrs; children } ->
        Buffer.add_string buf (Printf.sprintf "%s<%s%s>" pad tag (attrs_str attrs));
        if indent then Buffer.add_char buf '\n';
        List.iter (go (depth + 1)) children;
        Buffer.add_string buf (Printf.sprintf "%s</%s>" pad tag);
        if indent then Buffer.add_char buf '\n'
  in
  go 0 doc;
  Buffer.contents buf

let element tag children = Element { tag; attrs = []; children }
let text s = Text s
let int_text n = Text (string_of_int n)

let tag_of = function Element { tag; _ } -> Some tag | Text _ -> None
let children_of = function Element { children; _ } -> children | Text _ -> []

let rec equal a b =
  match (a, b) with
  | Text x, Text y -> x = y
  | Element ea, Element eb ->
      ea.tag = eb.tag && ea.attrs = eb.attrs
      && List.length ea.children = List.length eb.children
      && List.for_all2 equal ea.children eb.children
  | _ -> false
