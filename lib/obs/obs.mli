(** wm_obs — low-overhead observability: counters, timers, trace spans.

    The three performance-critical subsystems (the wm_par domain pool,
    the neighborhood-type indexer, the memoized query system / detector
    stack) instrument themselves through this module.  Design rules:

    - {b Domain safety without contention.}  Every counter, timer and
      span buffer accumulates into a per-domain cell ({!Domain.DLS});
      the only shared mutation is a one-time registration of each cell
      under a mutex, at a domain's first touch.  Instrumenting a hot
      path therefore never adds lock traffic to the path it measures.
    - {b No-ops when disabled.}  All record operations first read one
      atomic flag and return immediately when observation is off, so
      [jobs=1] microbenchmarks are unaffected by the instrumentation
      being compiled in.
    - {b No effect on results.}  Instrumentation only writes to
      observation cells; enabling or disabling it leaves every computed
      value bit-identical (property-tested in test/test_obs.ml).

    The flag starts enabled iff the environment variable [WMARK_STATS]
    is set to anything other than ["0"] or [""]; [wmark --stats],
    [--trace-json] and the bench harness flip it at startup.

    Handles ({!counter}, {!timer}) are meant to be created once, at
    module initialization of the instrumented library, and used from any
    domain. *)

(** {1 Enable / disable} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Counters — named monotonic integers} *)

type counter

val counter : string -> counter
(** [counter name] registers a counter.  Names are a dotted vocabulary
    ([pool.tasks_enqueued], [nbh.iso_checks], ... — see DESIGN.md 5.8);
    creating two counters with the same name merges their totals at
    snapshot time. *)

val incr : counter -> unit
val add : counter -> int -> unit

(** {1 Timers — accumulated wall-clock time per name} *)

type timer

val timer : string -> timer

val time : timer -> (unit -> 'a) -> 'a
(** [time t f] runs [f ()], charging its wall-clock duration and one
    call to [t] on the current domain.  Exceptions propagate; the
    partial duration is still recorded.  When disabled this is [f ()]. *)

(** {1 Histograms — fixed-bucket latency distributions}

    Counters answer "how many", timers answer "how long in total";
    histograms answer "how were the individual durations distributed" —
    what a serving endpoint's p50/p99 needs.  Every histogram shares one
    fixed log-spaced bucket layout ({!histo_bounds}: 1 us doubling to
    ~8.4 s, plus an overflow bucket), so per-domain accumulation and
    snapshot merging are plain integer-array sums. *)

type histo

val histo : string -> histo
(** [histo name] registers a histogram; same naming vocabulary and
    same-name merge-at-snapshot semantics as {!counter}. *)

val observe : histo -> float -> unit
(** Record one observation (seconds).  Like {!add}, a no-op when
    disabled; a plain domain-local write otherwise. *)

val observe_span : histo -> (unit -> 'a) -> 'a
(** [observe_span h f] runs [f ()] and records its wall-clock duration.
    Exceptions propagate; the partial duration is still recorded. *)

val histo_bounds : float array
(** The shared finite bucket upper bounds, ascending, in seconds.
    Bucket [i] of a {!histo_total} counts observations
    [<= histo_bounds.(i)] (and above the previous bound); the final
    extra bucket counts overflows. *)

(** {1 Trace spans — individual timed events, nestable} *)

val span : ?detail:string -> timer -> (unit -> 'a) -> 'a
(** [span t f] is {!time} plus one trace event recording the span's
    start, duration, owning domain and nesting depth (spans on the same
    domain nest; depth is per-domain).  [detail] annotates the event
    (e.g. the attack-grid cell being run) and is carried verbatim into
    the [qpwm-trace/1] output. *)

(** {1 Snapshots} *)

type timer_total = { calls : int; seconds : float }

type span_event = {
  sp_name : string;
  sp_detail : string option;
  sp_domain : int;  (** integer id of the domain that ran the span *)
  sp_depth : int;  (** nesting depth on that domain, outermost = 0 *)
  sp_start : float;  (** seconds since process start *)
  sp_dur : float;  (** seconds *)
}

type histo_total = {
  count : int;
  sum : float;  (** sum of all observations, seconds *)
  buckets : int array;
      (** per-bucket counts, length [Array.length histo_bounds + 1] *)
}

type snapshot = {
  taken : float;  (** seconds since process start *)
  counters : (string * int) list;  (** sorted by name, zeros dropped *)
  timers : (string * timer_total) list;  (** sorted by name *)
  histos : (string * histo_total) list;  (** sorted by name, empties dropped *)
  spans : span_event list;  (** sorted by (start, domain, name) *)
}

val snapshot : unit -> snapshot
(** Merge all per-domain cells.  Safe to call while other domains keep
    recording; the result is a consistent-enough view for reporting
    (counts of still-running work may be mid-update). *)

val diff : since:snapshot -> snapshot -> snapshot
(** [diff ~since now]: counters and timers subtracted pairwise (entries
    that did not move are dropped), spans restricted to those starting
    at or after [since.taken].  The usual way to attribute activity to
    one experiment or one CLI run. *)

val reset : unit -> unit
(** Zero every cell and drop all recorded spans.  Meant for the start of
    a CLI invocation or between bench experiments; concurrent recorders
    may leak a few events across the reset, which only matters if the
    caller also failed to quiesce the work it is measuring. *)
