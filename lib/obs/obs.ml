(* Counters, timers and trace spans with per-domain accumulation.

   Shape of the data: every handle owns a registry of per-domain cells.
   A domain's first touch of a handle allocates its private cell (via
   Domain.DLS) and registers it — the only mutex-protected operation —
   after which all recording is a plain write to domain-local memory.
   [snapshot] walks the registries and merges.

   Nothing here is transactional: a snapshot taken while other domains
   record sees each cell at some recent value, which is exactly what a
   progress report needs and all it promises. *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "WMARK_STATS" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* One mutex for all registration and snapshot traffic; recording never
   takes it. *)
let registry_mu = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mu) f

let now =
  let t0 = Unix.gettimeofday () in
  fun () -> Unix.gettimeofday () -. t0

(* ------------------------------------------------------------------ *)
(* Counters *)

type counter = {
  c_name : string;
  c_cells : int ref list ref;  (* under [registry_mu] *)
  c_key : int ref Domain.DLS.key;
}

let counters : counter list ref = ref []

let counter name =
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let r = ref 0 in
        with_registry (fun () -> cells := r :: !cells);
        r)
  in
  let c = { c_name = name; c_cells = cells; c_key = key } in
  with_registry (fun () -> counters := c :: !counters);
  c

let add c n = if Atomic.get enabled_flag then begin
    let r = Domain.DLS.get c.c_key in
    r := !r + n
  end

let incr c = add c 1

(* ------------------------------------------------------------------ *)
(* Timers *)

type timer_cell = { mutable t_calls : int; mutable t_secs : float }

type timer = {
  t_name : string;
  t_cells : timer_cell list ref;
  t_key : timer_cell Domain.DLS.key;
}

let timers : timer list ref = ref []

let timer name =
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = { t_calls = 0; t_secs = 0. } in
        with_registry (fun () -> cells := c :: !cells);
        c)
  in
  let t = { t_name = name; t_cells = cells; t_key = key } in
  with_registry (fun () -> timers := t :: !timers);
  t

let charge t dt =
  let c = Domain.DLS.get t.t_key in
  c.t_calls <- c.t_calls + 1;
  c.t_secs <- c.t_secs +. dt

let time t f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> charge t (now () -. t0)) f
  end

(* ------------------------------------------------------------------ *)
(* Histograms *)

(* Fixed log-spaced buckets shared by every histogram: 1 us doubling up
   to ~8.4 s, plus one overflow bucket.  A fixed layout is what makes
   per-domain cells and snapshot merging plain integer-array sums. *)
let histo_bounds =
  Array.init 24 (fun i -> 1e-6 *. float_of_int (1 lsl i))

let histo_buckets = Array.length histo_bounds + 1

type histo_cell = {
  h_counts : int array;  (* length [histo_buckets], last = overflow *)
  mutable h_n : int;
  mutable h_sum : float;
}

type histo = {
  h_name : string;
  h_cells : histo_cell list ref;  (* under [registry_mu] *)
  h_key : histo_cell Domain.DLS.key;
}

let histos : histo list ref = ref []

let histo name =
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let c = { h_counts = Array.make histo_buckets 0; h_n = 0; h_sum = 0. } in
        with_registry (fun () -> cells := c :: !cells);
        c)
  in
  let h = { h_name = name; h_cells = cells; h_key = key } in
  with_registry (fun () -> histos := h :: !histos);
  h

let bucket_of v =
  let rec find i =
    if i >= Array.length histo_bounds then i
    else if v <= histo_bounds.(i) then i
    else find (i + 1)
  in
  find 0

let observe h v =
  if Atomic.get enabled_flag then begin
    let c = Domain.DLS.get h.h_key in
    c.h_counts.(bucket_of v) <- c.h_counts.(bucket_of v) + 1;
    c.h_n <- c.h_n + 1;
    c.h_sum <- c.h_sum +. v
  end

let observe_span h f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let t0 = now () in
    Fun.protect ~finally:(fun () -> observe h (now () -. t0)) f
  end

(* ------------------------------------------------------------------ *)
(* Spans *)

type span_event = {
  sp_name : string;
  sp_detail : string option;
  sp_domain : int;
  sp_depth : int;
  sp_start : float;
  sp_dur : float;
}

(* Per-domain event buffer plus nesting depth; buffers are registered
   like counter cells. *)
type span_cell = { mutable events : span_event list; mutable depth : int }

let span_cells : span_cell list ref = ref []

let span_key =
  Domain.DLS.new_key (fun () ->
      let c = { events = []; depth = 0 } in
      with_registry (fun () -> span_cells := c :: !span_cells);
      c)

let span ?detail t f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let cell = Domain.DLS.get span_key in
    let depth = cell.depth in
    cell.depth <- depth + 1;
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let dt = now () -. t0 in
        cell.depth <- depth;
        cell.events <-
          {
            sp_name = t.t_name;
            sp_detail = detail;
            sp_domain = (Domain.self () :> int);
            sp_depth = depth;
            sp_start = t0;
            sp_dur = dt;
          }
          :: cell.events;
        charge t dt)
      f
  end

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type timer_total = { calls : int; seconds : float }

type histo_total = { count : int; sum : float; buckets : int array }

type snapshot = {
  taken : float;
  counters : (string * int) list;
  timers : (string * timer_total) list;
  histos : (string * histo_total) list;
  spans : span_event list;
}

module Smap = Map.Make (String)

let snapshot () =
  with_registry (fun () ->
      let cs =
        List.fold_left
          (fun m c ->
            let v = List.fold_left (fun acc r -> acc + !r) 0 !(c.c_cells) in
            Smap.update c.c_name
              (fun prev -> Some (Option.value ~default:0 prev + v))
              m)
          Smap.empty !counters
      in
      let ts =
        List.fold_left
          (fun m t ->
            let v =
              List.fold_left
                (fun acc c ->
                  { calls = acc.calls + c.t_calls; seconds = acc.seconds +. c.t_secs })
                { calls = 0; seconds = 0. }
                !(t.t_cells)
            in
            Smap.update t.t_name
              (fun prev ->
                let p = Option.value ~default:{ calls = 0; seconds = 0. } prev in
                Some { calls = p.calls + v.calls; seconds = p.seconds +. v.seconds })
              m)
          Smap.empty !timers
      in
      let hs =
        List.fold_left
          (fun m h ->
            let v =
              List.fold_left
                (fun acc c ->
                  Array.iteri
                    (fun i n -> acc.buckets.(i) <- acc.buckets.(i) + n)
                    c.h_counts;
                  { acc with count = acc.count + c.h_n; sum = acc.sum +. c.h_sum })
                { count = 0; sum = 0.; buckets = Array.make histo_buckets 0 }
                !(h.h_cells)
            in
            Smap.update h.h_name
              (fun prev ->
                match prev with
                | None -> Some v
                | Some p ->
                    Array.iteri
                      (fun i n -> v.buckets.(i) <- v.buckets.(i) + n)
                      p.buckets;
                    Some { v with count = p.count + v.count; sum = p.sum +. v.sum })
              m)
          Smap.empty !histos
      in
      let sps =
        List.concat_map (fun c -> c.events) !span_cells
        |> List.sort (fun a b ->
               compare
                 (a.sp_start, a.sp_domain, a.sp_name)
                 (b.sp_start, b.sp_domain, b.sp_name))
      in
      {
        taken = now ();
        counters = Smap.bindings (Smap.filter (fun _ v -> v <> 0) cs);
        timers = Smap.bindings (Smap.filter (fun _ v -> v.calls <> 0) ts);
        histos = Smap.bindings (Smap.filter (fun _ v -> v.count <> 0) hs);
        spans = sps;
      })

let diff ~since current =
  let base = Smap.of_seq (List.to_seq since.counters) in
  let counters =
    List.filter_map
      (fun (k, v) ->
        let d = v - Option.value ~default:0 (Smap.find_opt k base) in
        if d = 0 then None else Some (k, d))
      current.counters
  in
  let tbase = Smap.of_seq (List.to_seq since.timers) in
  let timers =
    List.filter_map
      (fun (k, v) ->
        let p =
          Option.value ~default:{ calls = 0; seconds = 0. } (Smap.find_opt k tbase)
        in
        let d = { calls = v.calls - p.calls; seconds = v.seconds -. p.seconds } in
        if d.calls = 0 then None else Some (k, d))
      current.timers
  in
  let hbase = Smap.of_seq (List.to_seq since.histos) in
  let histos =
    List.filter_map
      (fun (k, v) ->
        let p =
          match Smap.find_opt k hbase with
          | Some p -> p
          | None ->
              { count = 0; sum = 0.; buckets = Array.make histo_buckets 0 }
        in
        let d =
          {
            count = v.count - p.count;
            sum = v.sum -. p.sum;
            buckets = Array.mapi (fun i n -> n - p.buckets.(i)) v.buckets;
          }
        in
        if d.count = 0 then None else Some (k, d))
      current.histos
  in
  {
    taken = current.taken;
    counters;
    timers;
    histos;
    spans = List.filter (fun e -> e.sp_start >= since.taken) current.spans;
  }

let reset () =
  with_registry (fun () ->
      List.iter (fun c -> List.iter (fun r -> r := 0) !(c.c_cells)) !counters;
      List.iter
        (fun t ->
          List.iter
            (fun c ->
              c.t_calls <- 0;
              c.t_secs <- 0.)
            !(t.t_cells))
        !timers;
      List.iter
        (fun h ->
          List.iter
            (fun c ->
              Array.fill c.h_counts 0 histo_buckets 0;
              c.h_n <- 0;
              c.h_sum <- 0.)
            !(h.h_cells))
        !histos;
      List.iter (fun c -> c.events <- []) !span_cells)
