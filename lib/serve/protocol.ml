(* qpwm-serve/1 wire protocol (DESIGN.md 5.11).

   Transport: length-prefixed frames ({!Wm_util.Frame}); every frame
   payload is text.  A request payload is a header line — op and
   space-separated operands — optionally followed by '\n' and a body
   (Textio structure text, edit scripts, batched sub-frames).  A
   response payload is "ok <op>" or "err <message>" on line 1, then one
   "key value" line per result field, then an optional body after a
   blank line.  Responses carry no timings or other nondeterminism:
   byte-identical requests against equal store state produce
   byte-identical responses at every job count, which is what the
   scheduler's determinism tests pin. *)

type query_spec =
  | Identity
  | Fo of { params : string list; results : string list; formula : string }

type req =
  | Ping
  | Stats
  | Shutdown
  | Info of string
  | Put of string * string
  | Gen of { id : string; n : int; seed : int }
  | Load of string * string option
  | Snapshot of string * string option
  | Prepare of {
      id : string;
      seed : int;
      rho : int option;
      epsilon : float;
      shard : bool;
      qspec : query_spec;
    }
  | Mark of string * string
  | Detect of { id : string; length : int; shard : bool }
  | Setw of { id : string; value : int; elt : int list }
  | Update of string * string
  | Protect of { id : string; key : int; redundancy : int; group_size : int }
  | Audit of string
  | Repair of string
  | Fingerprint of {
      id : string;
      master : int;
      length : int option;
      times : int option;
      prefix : string;
      count : int;
    }
  | Trace of {
      id : string;
      master : int;
      length : int option;
      times : int option;
      prefix : string;
      count : int;
      alpha : float;
      suspect : string option;
    }
  | Batch of string list

let op_name = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Info _ -> "info"
  | Put _ -> "put"
  | Gen _ -> "gen"
  | Load _ -> "load"
  | Snapshot _ -> "snapshot"
  | Prepare _ -> "prepare"
  | Mark _ -> "mark"
  | Detect _ -> "detect"
  | Setw _ -> "setw"
  | Update _ -> "update"
  | Protect _ -> "protect"
  | Audit _ -> "audit"
  | Repair _ -> "repair"
  | Fingerprint _ -> "fingerprint"
  | Trace _ -> "trace"
  | Batch _ -> "batch"

(* Read-only requests may be batched onto the pool against the last
   published dataset version; everything else is a writer and
   serializes.  [Batch] is classified by its contents at scheduling
   time, not here. *)
let is_read = function
  | Ping | Stats | Info _ | Detect _ | Audit _ | Fingerprint _ | Trace _ ->
      true
  | Shutdown | Put _ | Gen _ | Load _ | Snapshot _ | Prepare _ | Mark _
  | Setw _ | Update _ | Protect _ | Repair _ | Batch _ ->
      false

(* --- request encoding ----------------------------------------------- *)

let with_body header = function
  | "" -> header
  | body -> header ^ "\n" ^ body

let string_of_qspec = function
  | Identity -> "@identity"
  | Fo { params; results; formula } ->
      Printf.sprintf "@fo %s %s %s" (String.concat "," params)
        (String.concat "," results)
        formula

let encode_request = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Info id -> "info " ^ id
  | Put (id, body) -> with_body ("put " ^ id) body
  | Gen { id; n; seed } -> Printf.sprintf "gen %s rings %d %d" id n seed
  | Load (id, path) ->
      "load " ^ id ^ (match path with None -> "" | Some p -> " " ^ p)
  | Snapshot (id, path) ->
      "snapshot " ^ id ^ (match path with None -> "" | Some p -> " " ^ p)
  | Prepare { id; seed; rho; epsilon; shard; qspec } ->
      Printf.sprintf "prepare %s %d %s %g %d %s" id seed
        (match rho with None -> "-" | Some r -> string_of_int r)
        epsilon
        (if shard then 1 else 0)
        (string_of_qspec qspec)
  | Mark (id, bits) -> Printf.sprintf "mark %s %s" id bits
  | Detect { id; length; shard } ->
      Printf.sprintf "detect %s %d %d" id length (if shard then 1 else 0)
  | Setw { id; value; elt } ->
      Printf.sprintf "setw %s %d %s" id value
        (String.concat " " (List.map string_of_int elt))
  | Update (id, body) -> with_body ("update " ^ id) body
  | Protect { id; key; redundancy; group_size } ->
      Printf.sprintf "protect %s %d %d %d" id key redundancy group_size
  | Audit id -> "audit " ^ id
  | Repair id -> "repair " ^ id
  | Fingerprint { id; master; length; times; prefix; count } ->
      Printf.sprintf "fingerprint %s %d %s %s %s %d" id master
        (match length with None -> "-" | Some l -> string_of_int l)
        (match times with None -> "-" | Some r -> string_of_int r)
        prefix count
  | Trace { id; master; length; times; prefix; count; alpha; suspect } ->
      with_body
        (Printf.sprintf "trace %s %d %s %s %s %d %g" id master
           (match length with None -> "-" | Some l -> string_of_int l)
           (match times with None -> "-" | Some r -> string_of_int r)
           prefix count alpha)
        (match suspect with None -> "" | Some s -> s)
  | Batch subs ->
      with_body
        (Printf.sprintf "batch %d" (List.length subs))
        (String.concat "" (List.map Frame.encode subs))

(* --- request parsing ------------------------------------------------ *)

let ( let* ) = Result.bind

let split_header payload =
  match String.index_opt payload '\n' with
  | None -> (payload, "")
  | Some i ->
      ( String.sub payload 0 i,
        String.sub payload (i + 1) (String.length payload - i - 1) )

let tokens line =
  List.filter (fun s -> s <> "") (String.split_on_char ' ' line)

let int_arg what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what s)

let float_arg what s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected a number, got %S" what s)

let bool_arg what s =
  match s with
  | "0" -> Ok false
  | "1" -> Ok true
  | _ -> Error (Printf.sprintf "%s: expected 0 or 1, got %S" what s)

let id_arg s =
  if Store.valid_id s then Ok s
  else Error (Printf.sprintf "invalid dataset id %S" s)

(* "-" means "use the scheme's default" (the prepare-rho convention). *)
let opt_int_arg what s =
  if s = "-" then Ok None else Result.map Option.some (int_arg what s)

let csv s = List.filter (fun x -> x <> "") (String.split_on_char ',' s)

(* The formula is the tail of the header line, spaces included — recover
   it from the original line rather than re-joining tokens. *)
let tail_after line n =
  let rec skip i n =
    if n = 0 then i
    else
      match String.index_from_opt line i ' ' with
      | None -> String.length line
      | Some j ->
          let rec eat j =
            if j < String.length line && line.[j] = ' ' then eat (j + 1) else j
          in
          skip (eat j) (n - 1)
  in
  let rec eat i =
    if i < String.length line && line.[i] = ' ' then eat (i + 1) else i
  in
  let i = skip (eat 0) n in
  String.sub line i (String.length line - i)

let parse_qspec line ~skip toks =
  match toks with
  | [ "@identity" ] -> Ok Identity
  | "@fo" :: params :: results :: _ :: _ ->
      let formula = tail_after line (skip + 3) in
      Ok (Fo { params = csv params; results = csv results; formula })
  | _ -> Error "expected @identity or @fo <params> <results> <formula>"

let rec decode_subframes body pos acc =
  match Frame.decode body ~pos with
  | Error e -> Error (Frame.error_to_string e)
  | Ok None -> Ok (List.rev acc)
  | Ok (Some (payload, pos')) -> decode_subframes body pos' (payload :: acc)

let decode_request payload =
  let header, body = split_header payload in
  match tokens header with
  | [] -> Error "empty request"
  | op :: args -> (
      match (op, args) with
      | "ping", [] -> Ok Ping
      | "stats", [] -> Ok Stats
      | "shutdown", [] -> Ok Shutdown
      | "info", [ id ] ->
          let* id = id_arg id in
          Ok (Info id)
      | "put", [ id ] ->
          let* id = id_arg id in
          Ok (Put (id, body))
      | "gen", [ id; "rings"; n; seed ] ->
          let* id = id_arg id in
          let* n = int_arg "gen n" n in
          let* seed = int_arg "gen seed" seed in
          if n <= 0 then Error "gen n: must be positive" else Ok (Gen { id; n; seed })
      | "load", [ id ] ->
          let* id = id_arg id in
          Ok (Load (id, None))
      | "load", [ id; path ] ->
          let* id = id_arg id in
          Ok (Load (id, Some path))
      | "snapshot", [ id ] ->
          let* id = id_arg id in
          Ok (Snapshot (id, None))
      | "snapshot", [ id; path ] ->
          let* id = id_arg id in
          Ok (Snapshot (id, Some path))
      | "prepare", id :: seed :: rho :: epsilon :: shard :: qtoks ->
          let* id = id_arg id in
          let* seed = int_arg "prepare seed" seed in
          let* rho =
            if rho = "-" then Ok None
            else Result.map Option.some (int_arg "prepare rho" rho)
          in
          let* epsilon = float_arg "prepare epsilon" epsilon in
          let* shard = bool_arg "prepare shard" shard in
          let* qspec = parse_qspec header ~skip:6 qtoks in
          Ok (Prepare { id; seed; rho; epsilon; shard; qspec })
      | "mark", [ id; bits ] ->
          let* id = id_arg id in
          if bits <> "" && String.for_all (fun c -> c = '0' || c = '1') bits
          then Ok (Mark (id, bits))
          else Error "mark: message must be a nonempty string of 0s and 1s"
      | "detect", [ id; length; shard ] ->
          let* id = id_arg id in
          let* length = int_arg "detect length" length in
          let* shard = bool_arg "detect shard" shard in
          if length <= 0 then Error "detect length: must be positive"
          else Ok (Detect { id; length; shard })
      | "setw", id :: value :: (_ :: _ as elt) ->
          let* id = id_arg id in
          let* value = int_arg "setw value" value in
          let* elt =
            List.fold_right
              (fun e acc ->
                let* acc = acc in
                let* e = int_arg "setw element" e in
                Ok (e :: acc))
              elt (Ok [])
          in
          Ok (Setw { id; value; elt })
      | "update", [ id ] ->
          let* id = id_arg id in
          Ok (Update (id, body))
      | "protect", [ id; key; redundancy; group_size ] ->
          let* id = id_arg id in
          let* key = int_arg "protect key" key in
          let* redundancy = int_arg "protect redundancy" redundancy in
          let* group_size = int_arg "protect group_size" group_size in
          if redundancy < 1 || group_size < 1 then
            Error "protect: redundancy and group_size must be >= 1"
          else Ok (Protect { id; key; redundancy; group_size })
      | "audit", [ id ] ->
          let* id = id_arg id in
          Ok (Audit id)
      | "repair", [ id ] ->
          let* id = id_arg id in
          Ok (Repair id)
      | "fingerprint", [ id; master; length; times; prefix; count ] ->
          let* id = id_arg id in
          let* master = int_arg "fingerprint master" master in
          let* length = opt_int_arg "fingerprint length" length in
          let* times = opt_int_arg "fingerprint times" times in
          let* count = int_arg "fingerprint count" count in
          if count <= 0 then Error "fingerprint count: must be positive"
          else Ok (Fingerprint { id; master; length; times; prefix; count })
      | "trace", [ id; master; length; times; prefix; count; alpha ] ->
          let* id = id_arg id in
          let* master = int_arg "trace master" master in
          let* length = opt_int_arg "trace length" length in
          let* times = opt_int_arg "trace times" times in
          let* count = int_arg "trace count" count in
          let* alpha = float_arg "trace alpha" alpha in
          if count <= 0 then Error "trace count: must be positive"
          else if not (alpha > 0. && alpha <= 1.) then
            Error "trace alpha: must be in (0, 1]"
          else
            Ok
              (Trace
                 {
                   id;
                   master;
                   length;
                   times;
                   prefix;
                   count;
                   alpha;
                   suspect = (if body = "" then None else Some body);
                 })
      | "batch", [ n ] ->
          let* n = int_arg "batch count" n in
          let* subs = decode_subframes body 0 [] in
          if List.length subs <> n then
            Error
              (Printf.sprintf "batch: header says %d sub-requests, body has %d"
                 n (List.length subs))
          else Ok (Batch subs)
      | _, _ -> Error (Printf.sprintf "malformed request %S" header))

(* --- responses ------------------------------------------------------ *)

type resp = {
  status : [ `Ok of string | `Err of string ];
  fields : (string * string) list;
  body : string option;
}

let ok_payload op ?body fields =
  let b = Buffer.create 128 in
  Buffer.add_string b "ok ";
  Buffer.add_string b op;
  List.iter
    (fun (k, v) ->
      Buffer.add_char b '\n';
      Buffer.add_string b k;
      Buffer.add_char b ' ';
      Buffer.add_string b v)
    fields;
  (match body with
  | None -> ()
  | Some body ->
      Buffer.add_string b "\n\n";
      Buffer.add_string b body);
  Buffer.contents b

(* Error text can contain anything (parser positions quote raw input);
   Textio's name escaping keeps the payload single-line and lossless. *)
let err_payload message = "err " ^ Textio.escape_name message

(* First occurrence of "\n\n" splits fields from body. *)
let cut_body payload =
  let n = String.length payload in
  let rec find i =
    if i + 1 >= n then None
    else if payload.[i] = '\n' && payload.[i + 1] = '\n' then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> (payload, None)
  | Some i ->
      (String.sub payload 0 i, Some (String.sub payload (i + 2) (n - i - 2)))

let decode_response payload =
  let head, rest = cut_body payload in
  match String.split_on_char '\n' head with
  | [] -> Error "empty response"
  | first :: lines -> (
      let fields =
        List.map
          (fun line ->
            match String.index_opt line ' ' with
            | None -> (line, "")
            | Some i ->
                ( String.sub line 0 i,
                  String.sub line (i + 1) (String.length line - i - 1) ))
          lines
      in
      match String.index_opt first ' ' with
      | Some i when String.sub first 0 i = "ok" ->
          Ok
            {
              status = `Ok (String.sub first (i + 1) (String.length first - i - 1));
              fields;
              body = rest;
            }
      | Some i when String.sub first 0 i = "err" ->
          Ok
            {
              status =
                `Err
                  (Textio.unescape_name
                     (String.sub first (i + 1) (String.length first - i - 1)));
              fields;
              body = rest;
            }
      | _ -> Error (Printf.sprintf "malformed response line %S" first))

let field resp k = List.assoc_opt k resp.fields
