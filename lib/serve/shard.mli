(** Gaifman-component sharding (DESIGN.md 5.11).

    A rho-sphere never leaves its connected component of the Gaifman
    graph, so neighborhood indexing and detection both decompose along
    components: shards run in parallel on the {!Wm_par.Pool}, and a
    sequential merge walks the global parameter order so the result —
    type numbering and representatives included — is bit-identical to
    the unsharded computation. *)

type plan
(** A component decomposition of one structure's universe. *)

val plan : Gaifman.t -> plan
val ncomps : plan -> int

val index :
  ?jobs:int ->
  ?width_bound:int ->
  Structure.t ->
  Gaifman.t ->
  plan ->
  rho:int ->
  Tuple.t list ->
  (Neighborhood.index, string) result
(** Sharded [Neighborhood.index g ~rho params]: each component's
    parameters are typed on its induced substructure, then classes are
    merged across shards by exact (certificate-filtered) neighborhood
    isomorphism, numbered by first occurrence in the global parameter
    order.  Only arity-1 parameter sets shard (higher arities may
    straddle components); other inputs return [Error].  [width_bound]
    is forwarded to the per-shard {!Neighborhood.index} calls (omitted:
    the process-wide {!Neighborhood.set_width_bound} /
    [WMARK_WIDTH_BOUND] resolution applies, so the serve path honors
    the global knob). *)

val read_weights :
  ?jobs:int ->
  plan ->
  Pairing.pair list ->
  original:Weighted.t ->
  suspect:Weighted.t ->
  length:int ->
  Detector.verdict
(** Sharded [Detector.read_weights]: carriers are partitioned by their
    first endpoint's component, classified shard-by-shard in parallel,
    scattered back into slot order and accumulated by
    {!Detector.verdict_of_carriers} — the verdict equals the unsharded
    one by construction. *)
