(** Persistent dataset store keyed by dataset id (DESIGN.md 5.11).

    Holds, per id, the weighted structure plus the derived state the
    serving endpoints reuse across requests: the cached Gaifman graph,
    the component shard plan, the prepared scheme (with its frozen
    query-system memo and neighborhood index), and a recovery capsule.
    Only the weighted structure persists to disk (one Textio file per id
    under the store directory); derived state is a deterministic
    function of it and is rebuilt on demand after a restart.

    Readers never lock: they snapshot the entry's current immutable
    [dataset] value.  Writers serialize per id and publish a fresh value
    with a single store, so in-flight readers keep the version they
    started from. *)

type prep = {
  scheme : Local_scheme.t;
  query : Query.t;
  qspec : string;  (** the query text the client sent, echoed by info *)
  sharded : bool;  (** whether the index came from {!Shard.index} *)
}

type dataset = {
  id : string;
  base : Weighted.structure;  (** original weights — detection reference *)
  cur : Weighted.t;  (** published (possibly marked) weights *)
  gf : Gaifman.t;
  plan : Shard.plan;
  prep : prep option;
  cap : (Recovery.options * Recovery.capsule) option;
}

type t

val create : ?dir:string -> unit -> t
val dir : t -> string option

val valid_id : string -> bool
(** Wire-safe ids: nonempty, <= 128 chars of [A-Za-z0-9._-], not
    starting with a dot (ids double as file names under the store
    directory). *)

val of_structure : string -> Weighted.structure -> dataset
(** A fresh dataset: [cur = base.weights], Gaifman graph and shard plan
    computed, nothing prepared. *)

val put : t -> dataset -> (unit, string) result
(** Insert or replace (id taken from the dataset). *)

val get : t -> string -> dataset option
(** Lock-free reader snapshot of the latest published version. *)

val update :
  t -> string -> (dataset -> (dataset * 'a, string) result) ->
  ('a, string) result
(** Run a writer under the dataset's writer lock: reads the current
    version, and publishes the returned one unless the writer fails.
    Writers to the same id serialize; readers proceed on the previous
    version meanwhile. *)

val ids : t -> string list
(** All dataset ids, sorted. *)

val snapshot : t -> string -> ?path:string -> unit -> (string, string) result
(** Write the dataset's structure with its {e current} weights to
    [path], defaulting to [<dir>/<id>.qpwm]; returns the path used. *)

val load : t -> string -> ?path:string -> unit -> (string, string) result
(** (Re)load a dataset from its Textio file, replacing any in-memory
    version; the loaded weights become both [base] and [cur]. *)
