(* Persistent dataset store (DESIGN.md 5.11).

   One entry per dataset id: the structure, its published weights, and
   the derived state the endpoints reuse across requests — Gaifman
   graph, shard plan, prepared scheme, recovery capsule.  Derived state
   is deterministic from (structure, options), so only the weighted
   structure itself is persisted (Textio under [dir]); everything else
   is rebuilt on demand after a restart.

   Concurrency contract: the registry mutex only guards the id table.
   Each entry carries its own writer mutex; a writer recomputes a fresh
   [dataset] value and publishes it with a single mutable-field store,
   so readers never lock — they snapshot the current pointer and work on
   an immutable value while the next version is being built. *)

type prep = {
  scheme : Local_scheme.t;
  query : Query.t;
  qspec : string;  (* the query text the client sent, echoed by [info] *)
  sharded : bool;  (* whether the index was built via Shard.index *)
}

type dataset = {
  id : string;
  base : Weighted.structure;  (* original weights — detection reference *)
  cur : Weighted.t;  (* published (possibly marked) weights *)
  gf : Gaifman.t;
  plan : Shard.plan;
  prep : prep option;
  cap : (Recovery.options * Recovery.capsule) option;
}

type entry = { emu : Mutex.t; mutable ds : dataset }
type t = { mu : Mutex.t; tbl : (string, entry) Hashtbl.t; dir : string option }

let valid_id id =
  let ok = function
    | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true
    | _ -> false
  in
  String.length id > 0
  && String.length id <= 128
  && id.[0] <> '.'
  && String.for_all ok id

let create ?dir () = { mu = Mutex.create (); tbl = Hashtbl.create 16; dir }
let dir t = t.dir

let of_structure id (ws : Weighted.structure) =
  let gf = Gaifman.of_structure ws.Weighted.graph in
  {
    id;
    base = ws;
    cur = ws.Weighted.weights;
    gf;
    plan = Shard.plan gf;
    prep = None;
    cap = None;
  }

let with_mu mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let find t id = with_mu t.mu (fun () -> Hashtbl.find_opt t.tbl id)

let get t id =
  match find t id with None -> None | Some e -> Some e.ds

let ids t =
  with_mu t.mu (fun () ->
      List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.tbl []))

let put t ds =
  if not (valid_id ds.id) then Error "invalid dataset id"
  else begin
    with_mu t.mu (fun () ->
        match Hashtbl.find_opt t.tbl ds.id with
        | Some e -> with_mu e.emu (fun () -> e.ds <- ds)
        | None -> Hashtbl.add t.tbl ds.id { emu = Mutex.create (); ds });
    Ok ()
  end

(* Run a writer against the dataset's current version, holding its
   writer lock for the whole read-compute-publish cycle so concurrent
   writers to the same id serialize; readers keep seeing the previous
   version until the single publishing store. *)
let update t id f =
  match find t id with
  | None -> Error (Printf.sprintf "unknown dataset %S" id)
  | Some e ->
      with_mu e.emu (fun () ->
          match f e.ds with
          | Error _ as err -> err
          | Ok (ds', out) ->
              e.ds <- ds';
              Ok out)

let path_of t id =
  match t.dir with
  | None -> None
  | Some d -> Some (Filename.concat d (id ^ ".qpwm"))

let snapshot t id ?path () =
  match get t id with
  | None -> Error (Printf.sprintf "unknown dataset %S" id)
  | Some ds -> (
      match (path, path_of t id) with
      | None, None -> Error "no store directory and no explicit path"
      | Some p, _ | None, Some p ->
          (try
             Textio.save p
               { Weighted.graph = ds.base.Weighted.graph; weights = ds.cur };
             Ok p
           with Sys_error m -> Error m))

let load t id ?path () =
  if not (valid_id id) then Error "invalid dataset id"
  else
    match (path, path_of t id) with
    | None, None -> Error "no store directory and no explicit path"
    | Some p, _ | None, Some p -> (
        match
          (try Textio.load_result p
           with Sys_error m -> Error { Textio.line = 0; message = m })
        with
        | Error e -> Error (Textio.error_to_string e)
        | Ok ws ->
            Result.map (fun () -> p) (put t (of_structure id ws)))
