(** The request engine behind [wmark serve] (DESIGN.md 5.11).

    Decodes frame payloads ({!Protocol}), dispatches them against the
    dataset {!Store}, and encodes responses.  [batch] frames go through
    the scheduler: maximal runs of consecutive read-only sub-requests
    execute concurrently on the {!Wm_par.Pool} against the last
    published dataset version, writers serialize in arrival order — so
    the response list is byte-identical at every job count.  Responses
    carry no timings; per-endpoint latency lands in [serve.lat.*]
    histograms ({!Wm_obs.Obs.histo}) and [serve.*] counters, surfaced by
    the [stats] endpoint and the CLI's [--stats]/[--trace-json]
    reporting. *)

type t

val create : ?dir:string -> ?jobs:int -> unit -> t
(** [dir] enables [load]/[snapshot] default paths ([<dir>/<id>.qpwm]);
    [jobs] caps the pool width used for batched reads and inner parallel
    phases (default: the pool's configured width). *)

val store : t -> Store.t

val stopped : t -> bool
(** Set once a [shutdown] request has been handled; the transport loop
    should stop reading after writing the pending response. *)

val handle : t -> string -> string
(** Map one request frame payload to its response frame payload.  Never
    raises on malformed input — decoding and dispatch errors come back
    as [err] payloads. *)
