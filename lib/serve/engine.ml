(* The request engine behind [wmark serve] (DESIGN.md 5.11).

   [handle] decodes one frame payload, dispatches it against the store,
   and encodes the response.  [Batch] frames go through the scheduler:
   maximal runs of consecutive read-only sub-requests execute
   concurrently on the {!Wm_par.Pool} (each against the last published
   dataset version, with inner operations pinned to one job), writers
   run sequentially in arrival order.  Because readers are pure
   functions of a published version and writers publish atomically, the
   response list is byte-identical at every job count — the property
   test/test_serve.ml pins.

   Determinism rule for responses: no timings, no absolute paths the
   client did not supply, no iteration order of any hash table.  All
   measurement goes through wm_obs (counters and per-endpoint latency
   histograms), surfaced by [stats] and the CLI's [--stats]/[--trace-json]
   reporting, never through response fields. *)

module Obs = Wm_obs.Obs
module Pool = Wm_par.Pool

let c_requests = Obs.counter "serve.requests"
let c_errors = Obs.counter "serve.errors"
let c_batches = Obs.counter "serve.batches"
let c_batched_reads = Obs.counter "serve.batched_reads"

(* One latency histogram per endpoint, created eagerly so the stats
   report lists every op from the start. *)
let op_names =
  [
    "ping"; "stats"; "shutdown"; "info"; "put"; "gen"; "load"; "snapshot";
    "prepare"; "mark"; "detect"; "setw"; "update"; "protect"; "audit";
    "repair"; "fingerprint"; "trace"; "batch"; "invalid";
  ]

let histos =
  List.map (fun op -> (op, Obs.histo ("serve.lat." ^ op))) op_names

let histo_of op =
  match List.assoc_opt op histos with
  | Some h -> h
  | None -> List.assoc "invalid" histos

type t = {
  store : Store.t;
  jobs : int option;  (* pool width for batched reads; None = pool default *)
  mutable stopped : bool;
}

let create ?dir ?jobs () = { store = Store.create ?dir (); jobs; stopped = false }
let store t = t.store
let stopped t = t.stopped

(* --- small codecs --------------------------------------------------- *)

let bits_of_string s =
  let v = Bitvec.create (String.length s) in
  String.iteri (fun i c -> Bitvec.set v i (c = '1')) s;
  v

let string_of_bits v =
  String.init (Bitvec.length v) (fun i -> if Bitvec.get v i then '1' else '0')

let itoa = string_of_int
let ftoa = Printf.sprintf "%.6f"

(* --- query systems --------------------------------------------------- *)

(* The identity query on weight-arity-1 structures: every element is its
   own parameter and its own (singleton) result set.  Constant-time per
   parameter, which is what lets the engine prepare million-element
   datasets the generic FO evaluator cannot touch (Remark 1's escape
   hatch; measured by E25). *)
let identity_query =
  lazy (Parser.query_of_string ~params:[ "u" ] ~results:[ "v" ] "u = v")

let identity_qs n =
  Query_system.of_custom
    ~params:(List.init n Tuple.singleton)
    ~result_set:(fun p -> Tuple.Set.singleton p)
    ~weight_arity:1

let resolve_query (ds : Store.dataset) = function
  | Protocol.Identity ->
      if Weighted.arity ds.base.Weighted.weights <> 1 then
        Error "identity query requires weight arity 1"
      else
        Ok
          ( identity_qs (Structure.size ds.base.Weighted.graph),
            Lazy.force identity_query,
            "@identity" )
  | Protocol.Fo { params; results; formula } -> (
      if params = [] || results = [] then
        Error "fo query: params and results must be nonempty"
      else
        try
          let q = Parser.query_of_string ~params ~results formula in
          Ok
            ( Query_system.of_relational ds.base.Weighted.graph q,
              q,
              Protocol.string_of_qspec
                (Protocol.Fo { params; results; formula }) )
        with Parser.Error m -> Error ("fo query: " ^ m))

(* --- endpoint helpers ------------------------------------------------ *)

let ok = Protocol.ok_payload
let err m = Protocol.err_payload m

let with_dataset t id f =
  match Store.get t.store id with
  | None -> err (Printf.sprintf "unknown dataset %S" id)
  | Some ds -> f ds

let with_prep (ds : Store.dataset) f =
  match ds.prep with
  | None -> err (Printf.sprintf "dataset %S has no prepared scheme" ds.id)
  | Some prep -> f prep

let with_capsule (ds : Store.dataset) f =
  match ds.cap with
  | None -> err (Printf.sprintf "dataset %S is not protected" ds.id)
  | Some (opts, cap) -> f opts cap

let dataset_fields (ds : Store.dataset) =
  [
    ("size", itoa (Structure.size ds.base.Weighted.graph));
    ("weight_arity", itoa (Weighted.arity ds.base.Weighted.weights));
    ("components", itoa (Shard.ncomps ds.plan));
  ]

let put_structure t ~op id ws =
  let ds = Store.of_structure id ws in
  match Store.put t.store ds with
  | Error m -> err m
  | Ok () -> ok op (dataset_fields ds)

(* Mirror [wmark update]'s weight carry-over: entries all of whose
   elements survive in the edited universe keep their value. *)
let carry_weights n' w =
  List.fold_left
    (fun acc (tup, v) ->
      if Array.for_all (fun x -> x >= 0 && x < n') tup then
        Weighted.set acc tup v
      else acc)
    (Weighted.create ~default:(Weighted.default w) (Weighted.arity w))
    (Weighted.bindings w)

(* --- dispatch -------------------------------------------------------- *)

(* [jobs] is the width available to *inner* parallel operations: writers
   and lone requests get the engine's configured width, sub-requests of
   a batched read run get 1 (the batch itself owns the pool). *)
let rec dispatch t ~jobs (req : Protocol.req) =
  match req with
  | Ping -> ok "ping" []
  | Stats -> ok "stats" ~body:(Obs_report.render (Obs.snapshot ())) []
  | Shutdown ->
      t.stopped <- true;
      ok "shutdown" []
  | Info id ->
      with_dataset t id @@ fun ds ->
      let prep_fields =
        match ds.prep with
        | None -> [ ("prepared", "0") ]
        | Some p ->
            let rep = Local_scheme.report p.scheme in
            [
              ("prepared", "1");
              ("query", Textio.escape_name p.qspec);
              ("sharded", if p.sharded then "1" else "0");
              ("capacity", itoa (Local_scheme.capacity p.scheme));
              ("rho", itoa rep.Local_scheme.rho);
              ("ntp", itoa rep.Local_scheme.ntp);
            ]
      in
      let cap_fields =
        match ds.cap with
        | None -> [ ("protected", "0") ]
        | Some (_, cap) ->
            [ ("protected", "1"); ("groups", itoa (Recovery.ngroups cap)) ]
      in
      ok "info" (dataset_fields ds @ prep_fields @ cap_fields)
  | Put (id, body) -> (
      match Textio.of_string_result body with
      | Error e -> err (Textio.error_to_string e)
      | Ok ws -> put_structure t ~op:"put" id ws)
  | Gen { id; n; seed } ->
      put_structure t ~op:"gen" id
        (Wm_workload.Random_struct.regular_rings (Prng.create seed) ~n)
  | Load (id, path) -> (
      match Store.load t.store id ?path () with
      | Error m -> err m
      | Ok _ ->
          with_dataset t id @@ fun ds -> ok "load" (dataset_fields ds))
  | Snapshot (id, path) -> (
      match Store.snapshot t.store id ?path () with
      | Error m -> err m
      | Ok _ -> ok "snapshot" [ ("id", id) ])
  | Prepare { id; seed; rho; epsilon; shard; qspec } ->
      let result =
        Store.update t.store id @@ fun ds ->
        match resolve_query ds qspec with
        | Error m -> Error m
        | Ok (qs, q, qtext) -> (
            let rho =
              match rho with
              | Some r -> r
              | None -> Locality.best_rank q.Query.phi
            in
            let options =
              {
                Local_scheme.default_options with
                seed;
                rho = Some rho;
                epsilon;
              }
            in
            let g = ds.base.Weighted.graph in
            let ix =
              if not shard then Ok None
              else
                Result.map Option.some
                  (Shard.index ?jobs g ds.gf ds.plan ~rho
                     (Query_system.params qs))
            in
            match ix with
            | Error m -> Error m
            | Ok ix -> (
                match
                  Local_scheme.prepare ~options ~qs ~gf:ds.gf ?ix
                    { Weighted.graph = g; weights = ds.base.Weighted.weights }
                    q
                with
                | Error m -> Error m
                | Ok scheme ->
                    let rep = Local_scheme.report scheme in
                    Ok
                      ( {
                          ds with
                          prep =
                            Some
                              { Store.scheme; query = q; qspec = qtext;
                                sharded = shard };
                        },
                        [
                          ("capacity", itoa (Local_scheme.capacity scheme));
                          ("rho", itoa rep.Local_scheme.rho);
                          ("ntp", itoa rep.Local_scheme.ntp);
                          ("active", itoa rep.Local_scheme.active);
                          ("pairs_available",
                           itoa rep.Local_scheme.pairs_available);
                          ("max_split", itoa rep.Local_scheme.max_split);
                          ("sharded", if shard then "1" else "0");
                        ] )))
      in
      (match result with Error m -> err m | Ok fields -> ok "prepare" fields)
  | Mark (id, bits) ->
      let result =
        Store.update t.store id @@ fun ds ->
        match ds.prep with
        | None -> Error (Printf.sprintf "dataset %S has no prepared scheme" id)
        | Some prep ->
            let message = bits_of_string bits in
            let capacity = Local_scheme.capacity prep.scheme in
            if Bitvec.length message > capacity then
              Error
                (Printf.sprintf "message length %d exceeds capacity %d"
                   (Bitvec.length message) capacity)
            else
              let cur =
                Local_scheme.mark prep.scheme message ds.base.Weighted.weights
              in
              Ok
                ( { ds with cur },
                  [
                    ("length", itoa (Bitvec.length message));
                    ("capacity", itoa capacity);
                  ] )
      in
      (match result with Error m -> err m | Ok fields -> ok "mark" fields)
  | Detect { id; length; shard } ->
      with_dataset t id @@ fun ds ->
      with_prep ds @@ fun prep ->
      let capacity = Local_scheme.capacity prep.scheme in
      if length > capacity then
        err
          (Printf.sprintf "detect length %d exceeds capacity %d" length
             capacity)
      else
        let pairs = Local_scheme.pairs prep.scheme in
        let original = ds.base.Weighted.weights and suspect = ds.cur in
        let verdict =
          if shard then
            Shard.read_weights ?jobs ds.plan pairs ~original ~suspect ~length
          else Detector.read_weights ?jobs pairs ~original ~suspect ~length
        in
        ok "detect"
          [
            ("message", string_of_bits verdict.Detector.decoded);
            ("strong", itoa verdict.Detector.strong);
            ("weak", itoa verdict.Detector.weak);
            ("silent", itoa verdict.Detector.silent);
            ("erased", itoa verdict.Detector.erased);
            ("confidence", ftoa verdict.Detector.confidence);
            ("marked", if Detector.is_marked verdict then "1" else "0");
          ]
  | Setw { id; value; elt } ->
      let result =
        Store.update t.store id @@ fun ds ->
        let tup = Array.of_list elt in
        let n = Structure.size ds.base.Weighted.graph in
        if Array.length tup <> Weighted.arity ds.base.Weighted.weights then
          Error "setw: tuple arity differs from weight arity"
        else if not (Array.for_all (fun x -> x >= 0 && x < n) tup) then
          Error "setw: element outside the universe"
        else
          (* Theorem 7: a weights-only update commutes with the mark —
             shift the published weight by the same delta the mark put
             on this tuple, O(log n), no re-preparation. *)
          let delta =
            Weighted.get ds.cur tup - Weighted.get ds.base.Weighted.weights tup
          in
          let base =
            {
              ds.base with
              Weighted.weights = Weighted.set ds.base.Weighted.weights tup value;
            }
          in
          let cur = Weighted.set ds.cur tup (value + delta) in
          Ok
            ( { ds with base; cur },
              [ ("value", itoa value); ("published", itoa (value + delta)) ] )
      in
      (match result with Error m -> err m | Ok fields -> ok "setw" fields)
  | Update (id, body) ->
      let result =
        Store.update t.store id @@ fun ds ->
        match Textio.edits_of_string_result body with
        | Error e -> Error (Textio.error_to_string e)
        | Ok edits -> (
            let g' =
              try Ok (Structure.apply_edits ds.base.Weighted.graph edits)
              with Invalid_argument m | Failure m -> Error m
            in
            match g' with
            | Error m -> Error ("update: " ^ m)
            | Ok (g', dirty) -> (
                let n' = Structure.size g' in
                let base =
                  Weighted.make g' (carry_weights n' ds.base.Weighted.weights)
                in
                let cur = carry_weights n' ds.cur in
                let gf' = Gaifman.refresh g' ~prev:ds.gf ~dirty in
                let fields =
                  [ ("size", itoa n'); ("dirty", itoa (List.length dirty)) ]
                in
                match ds.prep with
                | None ->
                    Ok
                      ( {
                          ds with
                          base;
                          cur = base.Weighted.weights;
                          gf = gf';
                          plan = Shard.plan gf';
                          cap = None;
                        },
                        fields )
                | Some prep -> (
                    match
                      Local_scheme.update ~old_gf:ds.gf prep.scheme
                        ~old:ds.base base prep.query ~dirty
                    with
                    | Error m -> Error ("update: " ^ m)
                    | Ok scheme' ->
                        (* Theorem 8's dichotomy: a type-preserving edit
                           keeps the published marks readable; otherwise
                           the owner must re-mark. *)
                        let decision =
                          Incremental.update_decision_ix
                            ~old_graph:ds.base.Weighted.graph
                            ~old_index:(Local_scheme.index prep.scheme)
                            ~new_graph:g'
                            ~new_index:(Local_scheme.index scheme')
                        in
                        let type_preserving = decision = `Keep_mark in
                        Ok
                          ( {
                              ds with
                              base;
                              cur =
                                (if type_preserving then cur
                                 else base.Weighted.weights);
                              gf = gf';
                              plan = Shard.plan gf';
                              prep = Some { prep with scheme = scheme' };
                              cap = None;
                            },
                            fields
                            @ [
                                ("capacity",
                                 itoa (Local_scheme.capacity scheme'));
                                ("type_preserving",
                                 if type_preserving then "1" else "0");
                              ] ))))
      in
      (match result with Error m -> err m | Ok fields -> ok "update" fields)
  | Protect { id; key; redundancy; group_size } ->
      let result =
        Store.update t.store id @@ fun ds ->
        let options = { Recovery.key; redundancy; group_size } in
        let cap =
          Recovery.protect ~options
            { Weighted.graph = ds.base.Weighted.graph; weights = ds.cur }
        in
        Ok
          ( { ds with cap = Some (options, cap) },
            [ ("groups", itoa (Recovery.ngroups cap)) ] )
      in
      (match result with Error m -> err m | Ok fields -> ok "protect" fields)
  | Audit id ->
      with_dataset t id @@ fun ds ->
      with_capsule ds @@ fun _ cap ->
      let a =
        Recovery.audit ?jobs cap
          ~suspect:{ Weighted.graph = ds.base.Weighted.graph; weights = ds.cur }
      in
      ok "audit"
        [
          ("groups", itoa (Array.length a.Recovery.statuses));
          ("intact", itoa a.Recovery.intact);
          ("distorted", itoa a.Recovery.distorted);
          ("erased", itoa a.Recovery.erased);
          ("blind", itoa a.Recovery.blind);
          ("suspicion", ftoa (Detector.suspicion a.Recovery.tamper));
        ]
  | Repair id ->
      let result =
        Store.update t.store id @@ fun ds ->
        match ds.cap with
        | None -> Error (Printf.sprintf "dataset %S is not protected" id)
        | Some (_, cap) ->
            let ws', rep =
              Recovery.repair cap
                ~suspect:
                  { Weighted.graph = ds.base.Weighted.graph; weights = ds.cur }
            in
            let fields =
              [
                ("repaired", itoa rep.Recovery.repaired);
                ("unrepairable", itoa rep.Recovery.unrepairable);
                ("restored_weights", itoa rep.Recovery.restored_weights);
                ("confidence", ftoa rep.Recovery.confidence);
              ]
            in
            (* Only publish repaired weights while they still live in
               the dataset's own universe. *)
            if
              Structure.size ws'.Weighted.graph
              = Structure.size ds.base.Weighted.graph
            then Ok ({ ds with cur = ws'.Weighted.weights }, fields)
            else Ok (ds, fields @ [ ("published", "0") ])
      in
      (match result with Error m -> err m | Ok fields -> ok "repair" fields)
  | Fingerprint { id; master; length; times; prefix; count } -> (
      with_dataset t id @@ fun ds ->
      with_prep ds @@ fun prep ->
      match Fingerprint.of_local ?length ?times ~master prep.scheme with
      | Error m -> err m
      | Ok fp ->
          let w = ds.base.Weighted.weights in
          (* one pool task per copy; the response ships digests, not
             copies — combined digest first, per-recipient lines in the
             body, all independent of the job count *)
          let lines =
            Pool.map_list ?jobs
              (fun i ->
                let rid = prefix ^ itoa i in
                Printf.sprintf "%s %x" rid
                  (Fingerprint.digest (Fingerprint.mark_for fp rid w)))
              (List.init count Fun.id)
          in
          let combined =
            List.fold_left
              (fun h line ->
                String.fold_left
                  (fun h c -> (h lxor Char.code c) * 0x100000001B3)
                  h line)
              0 lines
            land max_int
          in
          ok "fingerprint"
            [
              ("count", itoa count);
              ("length", itoa (Fingerprint.length fp));
              ("times", itoa (Fingerprint.times fp));
              ("digest", Printf.sprintf "%x" combined);
            ]
            ~body:(String.concat "\n" lines))
  | Trace { id; master; length; times; prefix; count; alpha; suspect } -> (
      with_dataset t id @@ fun ds ->
      with_prep ds @@ fun prep ->
      match Fingerprint.of_local ?length ?times ~master prep.scheme with
      | Error m -> err m
      | Ok fp -> (
          let suspect =
            match suspect with
            | None -> Ok ds.cur
            | Some body -> (
                match Textio.of_string_result body with
                | Error e -> Error (Textio.error_to_string e)
                | Ok ws -> Ok ws.Weighted.weights)
          in
          match suspect with
          | Error m -> err m
          | Ok suspect ->
              let rep =
                Fingerprint.trace ?jobs ~alpha fp
                  ~original:ds.base.Weighted.weights ~suspect
                  (List.init count (fun i -> prefix ^ itoa i))
              in
              let score_line (s : Fingerprint.score) =
                Printf.sprintf "%s %d %d %.6g %d" s.Fingerprint.rid
                  s.Fingerprint.agreements s.Fingerprint.trials
                  s.Fingerprint.pvalue
                  (if s.Fingerprint.accused then 1 else 0)
              in
              ok "trace"
                [
                  ("candidates", itoa rep.Fingerprint.candidates);
                  ("alpha", Printf.sprintf "%.6g" rep.Fingerprint.alpha);
                  ("threshold", Printf.sprintf "%.6g" rep.Fingerprint.threshold);
                  ("decided", itoa rep.Fingerprint.decided);
                  ("naccused", itoa (List.length rep.Fingerprint.accused));
                  ("accused", String.concat "," rep.Fingerprint.accused);
                ]
                ~body:
                  (String.concat "\n"
                     (List.map score_line rep.Fingerprint.scores))))
  | Batch subs ->
      Obs.incr c_batches;
      let resps = run_batch t subs in
      ok "batch"
        [ ("n", itoa (List.length resps)) ]
        ~body:(String.concat "" (List.map Frame.encode resps))

(* The scheduler: walk the decoded sub-requests in arrival order;
   maximal runs of read-only requests fan out on the pool (inner
   operations single-job — the run owns the pool), writers and malformed
   requests run inline.  Readers see the version published by the last
   preceding writer, exactly as in the sequential order, so the response
   list is independent of the job count. *)
and run_batch t subs =
  let items =
    List.map
      (fun payload ->
        match Protocol.decode_request payload with
        | Ok (Protocol.Batch _) -> Error "batch: nesting not allowed"
        | other -> other)
      subs
  in
  let rec go acc = function
    | [] -> List.rev acc
    | Ok req :: _ as l when Protocol.is_read req ->
        let rec split run = function
          | Ok req :: rest when Protocol.is_read req ->
              split (req :: run) rest
          | rest -> (List.rev run, rest)
        in
        let run, rest = split [] l in
        Obs.add c_batched_reads (List.length run);
        let resps =
          Pool.map_list ?jobs:t.jobs
            (fun req -> observe t ~jobs:(Some 1) req)
            run
        in
        go (List.rev_append resps acc) rest
    | Ok req :: rest -> go (observe t ~jobs:t.jobs req :: acc) rest
    | Error m :: rest ->
        Obs.incr c_errors;
        go (err m :: acc) rest
  in
  go [] items

(* Per-endpoint latency, recorded around the dispatch proper. *)
and observe t ~jobs req =
  Obs.incr c_requests;
  Obs.observe_span (histo_of (Protocol.op_name req)) @@ fun () ->
  let resp = dispatch t ~jobs req in
  if String.length resp >= 3 && String.sub resp 0 3 = "err" then
    Obs.incr c_errors;
  resp

let handle t payload =
  match Protocol.decode_request payload with
  | Error m ->
      Obs.incr c_requests;
      Obs.incr c_errors;
      Obs.observe_span (histo_of "invalid") (fun () -> err m)
  | Ok req -> observe t ~jobs:t.jobs req
