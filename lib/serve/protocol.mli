(** The qpwm-serve/1 wire protocol (DESIGN.md 5.11).

    Frames ({!Wm_util.Frame}) carry text payloads.  A request is a
    header line ([op] and space-separated operands), optionally followed
    by a newline and a body.  A response starts with ["ok <op>"] or
    ["err <message>"], followed by ["key value"] lines and an optional
    body after a blank line.  Responses are free of timings and other
    nondeterminism: equal requests against equal store state yield
    byte-identical responses at every job count. *)

type query_spec =
  | Identity
      (** weight-arity-1 identity query — every element is its own
          parameter and result (the Remark 1 escape hatch, evaluated in
          O(1) per parameter) *)
  | Fo of { params : string list; results : string list; formula : string }
      (** an FO formula for the generic evaluator *)

type req =
  | Ping
  | Stats  (** observability report (text body) — never batched *)
  | Shutdown
  | Info of string
  | Put of string * string  (** id, Textio structure text as body *)
  | Gen of { id : string; n : int; seed : int }  (** synthetic rings *)
  | Load of string * string option
  | Snapshot of string * string option
  | Prepare of {
      id : string;
      seed : int;
      rho : int option;  (** [None] = the scheme's default rank *)
      epsilon : float;
      shard : bool;  (** build the index via {!Shard.index} *)
      qspec : query_spec;
    }
  | Mark of string * string  (** id, message as 0/1 text *)
  | Detect of { id : string; length : int; shard : bool }
  | Setw of { id : string; value : int; elt : int list }
      (** weights-only update of one tuple (Theorem 7 territory) *)
  | Update of string * string  (** id, edit script as body *)
  | Protect of { id : string; key : int; redundancy : int; group_size : int }
  | Audit of string
  | Repair of string
  | Fingerprint of {
      id : string;
      master : int;
      length : int option;  (** codeword bits; [None] = scheme default *)
      times : int option;  (** repetitions; [None] = scheme default *)
      prefix : string;
      count : int;
    }
      (** generate [count] fingerprinted copies for recipients
          [prefix ^ i], fanned onto the pool; the response body lists one
          "rid hex-digest" line per copy plus a combined digest field, so
          batch generation is verifiable without shipping the copies *)
  | Trace of {
      id : string;
      master : int;
      length : int option;
      times : int option;
      prefix : string;
      count : int;  (** candidate recipients [prefix ^ 0 .. prefix ^ (count-1)] *)
      alpha : float;  (** family-wise error level before correction *)
      suspect : string option;
          (** Textio structure text of the suspect copy as the request
              body; [None] traces the dataset's current weights *)
    }
  | Batch of string list
      (** raw sub-request payloads, framed back-to-back in the body *)

val string_of_qspec : query_spec -> string

val op_name : req -> string
(** The histogram/latency label, e.g. ["detect"]. *)

val is_read : req -> bool
(** Read-only requests run concurrently against the last published
    dataset version; writers serialize.  [Batch] classifies by contents
    at scheduling time and is a writer here. *)

val encode_request : req -> string
val decode_request : string -> (req, string) result

type resp = {
  status : [ `Ok of string | `Err of string ];
  fields : (string * string) list;
  body : string option;
}

val ok_payload : string -> ?body:string -> (string * string) list -> string
val err_payload : string -> string
val decode_response : string -> (resp, string) result
val field : resp -> string -> string option
