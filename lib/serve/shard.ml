(* Gaifman-component sharding (DESIGN.md 5.11).

   A rho-sphere never crosses a connected component of the Gaifman
   graph, so the expensive per-tuple work of both indexing and detection
   decomposes along components: each shard is typed (or classified)
   independently on the wm_par pool, and a sequential merge reproduces
   the unsharded result bit for bit — global type ids included, because
   the merge walks parameters in their global order and numbers classes
   by first occurrence, exactly like the unsharded indexer's final
   renumbering pass. *)

module Obs = Wm_obs.Obs

let c_shards = Obs.counter "serve.shards_indexed"
let c_xshard_iso = Obs.counter "serve.cross_shard_iso"
let t_shard_index = Obs.timer "serve.shard_index"

type plan = { comp_of : int array; ncomps : int }

let plan gf =
  let comp_of, ncomps = Gaifman.component_labels gf in
  { comp_of; ncomps }

let ncomps plan = plan.ncomps

(* Components are the unit of independence, but a million-element
   instance of small rings has hundreds of thousands of them, and the
   per-shard fixed costs (inducing the substructure scans every tuple of
   every relation) would dominate.  Shards are therefore {e buckets} of
   whole components — a fixed count, independent of the job count, so
   the decomposition itself is deterministic; the merge would produce
   the same index for any bucketing anyway. *)
let nbuckets plan = max 1 (min plan.ncomps 64)
let bucket_of plan x = plan.comp_of.(x) mod nbuckets plan

(* First-occurrence dedup, as Neighborhood.index performs internally —
   the merged numbering must be computed over the same tuple stream. *)
let distinct tuples =
  let seen = ref Tuple.Set.empty in
  List.filter
    (fun c ->
      if Tuple.Set.mem c !seen then false
      else begin
        seen := Tuple.Set.add c !seen;
        true
      end)
    tuples

(* --- sharded neighborhood indexing ---------------------------------- *)

(* One shard's classification result: for each of its parameter slots
   (in global order) the local type id, plus one representative per
   local type materialized as its neighborhood in the *global* structure
   (for the cross-shard merge). *)
type shard_result = {
  sr_slots : int array;  (* global slot of each of the shard's params *)
  sr_types : int array;  (* local type id, parallel to [sr_slots] *)
  sr_certs : int array;  (* per local type: Iso certificate *)
  sr_preps : Iso.prep array;  (* per local type: refinement prep *)
}

let index ?jobs ?width_bound g gf plan ~rho params =
  Obs.time t_shard_index @@ fun () ->
  let params = distinct params in
  match params with
  | [] ->
      Ok
        {
          Neighborhood.rho;
          arity = 0;
          types = Tuple.Map.empty;
          representatives = [||];
        }
  | p0 :: _ when Array.length p0 <> 1 ->
      Error "sharded indexing requires arity-1 parameters"
  | _ ->
      let params = Array.of_list params in
      let n = Array.length plan.comp_of in
      if Array.exists (fun p -> p.(0) < 0 || p.(0) >= n) params then
        Error "parameter outside the planned universe"
      else begin
        (* Group parameter slots by bucket, keeping global order. *)
        let nb = nbuckets plan in
        let by_bucket = Array.make nb [] in
        Array.iteri
          (fun slot p -> by_bucket.(bucket_of plan p.(0)) <- slot :: by_bucket.(bucket_of plan p.(0)))
          params;
        let buckets =
          Array.of_list
            (List.filter
               (fun b -> by_bucket.(b) <> [])
               (List.init nb (fun b -> b)))
        in
        (* Bucket membership, ascending per bucket (one pass). *)
        let bucket_members = Array.make nb [] in
        for x = n - 1 downto 0 do
          bucket_members.(bucket_of plan x) <- x :: bucket_members.(bucket_of plan x)
        done;
        Obs.add c_shards (Array.length buckets);
        (* Per-shard typing: induce the bucket's substructure, type its
           parameters locally (a sphere never leaves its component, so
           the local sphere of an element equals its global sphere),
           then rematerialize one representative per local type in the
           global structure for the merge. *)
        let shard b =
          let slots = Array.of_list (List.rev by_bucket.(b)) in
          let memb = bucket_members.(b) in
          let sub, old_of_new = Structure.induced g memb in
          let new_of_old = Hashtbl.create (Array.length old_of_new) in
          Array.iteri (fun nw old -> Hashtbl.replace new_of_old old nw) old_of_new;
          let local_params =
            Array.to_list
              (Array.map
                 (fun slot -> Tuple.singleton
                      (Hashtbl.find new_of_old params.(slot).(0)))
                 slots)
          in
          (* The bounded-width dispatch applies per shard: each local
             sphere equals its global sphere (spheres never leave a
             component), so the width probe sees the same graphs the
             unsharded indexer would. *)
          let lix = Neighborhood.index ~jobs:1 ?width_bound sub ~rho local_params in
          let lty =
            Array.map
              (fun slot ->
                Neighborhood.type_of lix
                  (Tuple.singleton (Hashtbl.find new_of_old params.(slot).(0))))
              slots
          in
          let reps =
            Array.map
              (fun r ->
                let nb =
                  Neighborhood.of_tuple g gf ~rho
                    (Tuple.singleton old_of_new.(r.(0)))
                in
                Iso.prep nb.Neighborhood.sub nb.Neighborhood.center)
              lix.Neighborhood.representatives
          in
          {
            sr_slots = slots;
            sr_types = lty;
            sr_certs = Array.map Iso.certificate_of_prep reps;
            sr_preps = reps;
          }
        in
        let results = Wm_par.Pool.parallel_map ?jobs shard buckets in
        (* Sequential merge in global parameter order: first occurrence
           of each (shard, local type) either joins an existing global
           class (exact isomorphism against representatives from other
           shards, certificate-filtered) or opens a new one. *)
        let slot_ty = Array.make (Array.length params) (-1) in
        let shard_of_slot = Array.make (Array.length params) (-1) in
        Array.iteri
          (fun si r ->
            Array.iteri
              (fun k slot ->
                slot_ty.(slot) <- r.sr_types.(k);
                shard_of_slot.(slot) <- si)
              r.sr_slots)
          results;
        let global_of = Hashtbl.create 64 in
        let classes = ref [] in  (* (cert, prep, gty), insertion order *)
        let reps = ref [] in
        let next = ref 0 in
        let types = ref Tuple.Map.empty in
        Array.iteri
          (fun slot p ->
            let key = (shard_of_slot.(slot), slot_ty.(slot)) in
            let gty =
              match Hashtbl.find_opt global_of key with
              | Some gty -> gty
              | None ->
                  let sr = results.(shard_of_slot.(slot)) in
                  let cert = sr.sr_certs.(slot_ty.(slot)) in
                  let prep = sr.sr_preps.(slot_ty.(slot)) in
                  let found =
                    List.find_opt
                      (fun (c, pr, _) ->
                        c = cert
                        && begin
                             Obs.incr c_xshard_iso;
                             Iso.isomorphic_prep prep pr
                           end)
                      (List.rev !classes)
                  in
                  let gty =
                    match found with
                    | Some (_, _, gty) -> gty
                    | None ->
                        let gty = !next in
                        incr next;
                        classes := (cert, prep, gty) :: !classes;
                        reps := p :: !reps;
                        gty
                  in
                  Hashtbl.add global_of key gty;
                  gty
            in
            types := Tuple.Map.add p gty !types)
          params;
        Ok
          {
            Neighborhood.rho;
            arity = 1;
            types = !types;
            representatives = Array.of_list (List.rev !reps);
          }
      end

(* --- sharded detection ---------------------------------------------- *)

(* Carriers are independent, so any partition reproduces the verdict;
   partitioning by the first endpoint's component keeps each pool task's
   weight reads local to one shard.  The per-slot classifications are
   scattered back into global order and accumulated by the detector's
   own verdict assembly, so the result is Detector.read_weights bit for
   bit. *)
let read_weights ?jobs plan pairs ~original ~suspect ~length =
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  let asked = Array.of_list (take length pairs) in
  if Array.length asked < length then
    invalid_arg "Shard.read_weights: length exceeds pair count";
  let n = Array.length plan.comp_of in
  let comp_of_pair (p : Pairing.pair) =
    let x = p.Pairing.fst.(0) in
    if Array.length p.Pairing.fst = 1 && x >= 0 && x < n then plan.comp_of.(x)
    else -1
  in
  let by_comp : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let comp_order = ref [] in
  Array.iteri
    (fun slot p ->
      let c = comp_of_pair p in
      match Hashtbl.find_opt by_comp c with
      | Some l -> l := slot :: !l
      | None ->
          Hashtbl.add by_comp c (ref [ slot ]);
          comp_order := c :: !comp_order)
    asked;
  let chunks =
    Array.of_list
      (List.rev_map
         (fun c -> Array.of_list (List.rev !(Hashtbl.find by_comp c)))
         !comp_order)
  in
  let classified =
    Wm_par.Pool.parallel_map ?jobs
      (fun slots ->
        let observed =
          Array.fold_left
            (fun acc slot ->
              let { Pairing.fst; snd } = asked.(slot) in
              Tuple.Map.add fst (Weighted.get suspect fst)
                (Tuple.Map.add snd (Weighted.get suspect snd) acc))
            Tuple.Map.empty slots
        in
        Array.map
          (fun slot -> Detector.classify_carrier ~original ~observed asked.(slot))
          slots)
      chunks
  in
  let carriers =
    Array.make length (Detector.Cell (false, `Silent))
  in
  Array.iteri
    (fun ci slots ->
      Array.iteri (fun k slot -> carriers.(slot) <- classified.(ci).(k)) slots)
    chunks;
  Detector.verdict_of_carriers carriers
