(** Query-preserving watermarking — the public umbrella.

    One [open Qpwm] (or qualified access) reaches the whole system:

    - {!Prng}, {!Bitvec}, {!Codec}, {!Stats}, {!Texttab}, {!Json}:
      utilities;
    - {!Obs}, {!Obs_report}: observability — counters, timers and trace
      spans ([WMARK_STATS] / [--stats] / [--trace-json] control);
    - {!Par}: the multicore execution engine (domain pool, deterministic
      parallel combinators, [WMARK_JOBS] / [--jobs] control);
    - {!Tuple}, {!Schema}, {!Relation}, {!Structure}, {!Weighted},
      {!Gaifman}, {!Iso}, {!Neighborhood}: relational substrate;
    - {!Fo}, {!Mso}, {!Eval}, {!Query}, {!Locality}, {!Parser}: logic;
    - {!Btree}, {!Alphabet}, {!Dta}, {!Nta}, {!Mso_compile}, {!Tree_query}:
      trees and automata;
    - {!Xml}, {!Utree}, {!Encode}, {!Pattern}: XML documents;
    - {!Setfam}, {!Vc}, {!Query_vc}: VC-dimension;
    - {!Query_system}, {!Distortion}, {!Pairing}, {!Local_scheme},
      {!Tree_scheme}, {!Detectors via schemes}, {!Adversary}, {!Robust},
      {!Capacity}, {!Incremental}, {!Agrawal_kiernan}, {!Pipeline}:
      the watermarking core;
    - {!Serve_store}, {!Serve_protocol}, {!Serve_engine}, {!Serve_shard},
      {!Frame}: the [wmark serve] layer — persistent dataset store,
      length-prefixed wire protocol, batching scheduler, and
      Gaifman-component sharding;
    - {!Paper_examples}, {!Random_struct}, {!Shatter}, {!Grid},
      {!Trees_gen}, {!School_xml}, {!Bipartite}: workloads. *)

(* utilities *)
module Prng = Wm_util.Prng
module Bitvec = Wm_util.Bitvec
module Codec = Wm_util.Codec
module Stats = Wm_util.Stats
module Texttab = Wm_util.Texttab
module Json = Wm_util.Json

(* observability: counters, timers, trace spans (see lib/obs) *)
module Obs = Wm_obs.Obs
module Obs_report = Wm_util.Obs_report

(* multicore execution engine *)
module Par = Wm_par.Pool

(* relational substrate *)
module Tuple = Wm_relational.Tuple
module Schema = Wm_relational.Schema
module Relation = Wm_relational.Relation
module Relation_ref = Wm_relational.Relation_ref
module Structure = Wm_relational.Structure
module Weighted = Wm_relational.Weighted
module Weighted_ref = Wm_relational.Weighted_ref
module Gaifman = Wm_relational.Gaifman
module Tdecomp = Wm_relational.Tdecomp
module Iso = Wm_relational.Iso
module Neighborhood = Wm_relational.Neighborhood
module Neighborhood_ref = Wm_relational.Neighborhood_ref
module Textio = Wm_relational.Textio

(* logic *)
module Fo = Wm_logic.Fo
module Mso = Wm_logic.Mso
module Eval = Wm_logic.Eval
module Query = Wm_logic.Query
module Locality = Wm_logic.Locality
module Parser = Wm_logic.Parser

(* trees and automata *)
module Btree = Wm_trees.Btree
module Alphabet = Wm_trees.Alphabet
module Dta = Wm_trees.Dta
module Nta = Wm_trees.Nta
module Mso_compile = Wm_trees.Mso_compile
module Tree_query = Wm_trees.Tree_query

(* XML *)
module Xml = Wm_xml.Xml
module Utree = Wm_xml.Utree
module Encode = Wm_xml.Encode
module Pattern = Wm_xml.Pattern

(* VC dimension *)
module Setfam = Wm_vc.Setfam
module Vc = Wm_vc.Vc
module Query_vc = Wm_vc.Query_vc

(* watermarking core *)
module Query_system = Wm_watermark.Query_system
module Distortion = Wm_watermark.Distortion
module Pairing = Wm_watermark.Pairing
module Local_scheme = Wm_watermark.Local_scheme
module Tree_scheme = Wm_watermark.Tree_scheme
module Multi_scheme = Wm_watermark.Multi_scheme
module Detector = Wm_watermark.Detector
module Adversary = Wm_watermark.Adversary
module Robust = Wm_watermark.Robust
module Survivable = Wm_watermark.Survivable
module Recovery = Wm_watermark.Recovery
module Attack_suite = Wm_watermark.Attack_suite
module Fingerprint = Wm_watermark.Fingerprint
module Capacity = Wm_watermark.Capacity
module Incremental = Wm_watermark.Incremental
module Agrawal_kiernan = Wm_watermark.Agrawal_kiernan
module Pipeline = Wm_watermark.Pipeline

(* clique-width (Theorem 4) *)
module Cw_term = Wm_cliquewidth.Cw_term
module Cw_parse = Wm_cliquewidth.Cw_parse
module Cw_adjacency = Wm_cliquewidth.Cw_adjacency
module Treewidth = Wm_cliquewidth.Treewidth

(* serving layer: store, wire protocol, scheduler, sharding *)
module Serve_store = Wm_serve.Store
module Serve_protocol = Wm_serve.Protocol
module Serve_engine = Wm_serve.Engine
module Serve_shard = Wm_serve.Shard
module Frame = Wm_util.Frame

(* workloads *)
module Paper_examples = Wm_workload.Paper_examples
module Random_struct = Wm_workload.Random_struct
module Shatter = Wm_workload.Shatter
module Grid = Wm_workload.Grid
module Trees_gen = Wm_workload.Trees_gen
module School_xml = Wm_workload.School_xml
module Biblio_xml = Wm_workload.Biblio_xml
module Bipartite = Wm_workload.Bipartite
