(** Minimal JSON emission (no parsing, no dependencies).

    The bench harness and the CLI export machine-readable results —
    the perf trajectory in [BENCH_PR2.json], attack grids behind
    [wmark attack --json] — without pulling a JSON library into the
    dependency cone.  Output is UTF-8, RFC 8259: strings are escaped,
    non-finite floats degrade to [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] (default [true]) indents with two spaces. *)

val to_file : string -> t -> unit
(** Write [to_string] plus a trailing newline to a file. *)
