let mean a =
  let n = Array.length a in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else
    let m = mean a in
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a /. float_of_int n

let stddev a = sqrt (variance a)

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> ((if x < lo then x else lo), if x > hi then x else hi))
    (a.(0), a.(0))
    a

let quantile q a =
  if Array.length a = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of range";
  let s = Array.copy a in
  Array.sort compare s;
  let n = Array.length s in
  let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
  s.(max 0 (min (n - 1) i))

let imean a = mean (Array.map float_of_int a)

let imax a =
  (* Seed with a.(0), not 0: folding from 0 silently clamps all-negative
     inputs to 0. *)
  if Array.length a = 0 then 0 else Array.fold_left max a.(0) a

let rate num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let histogram ~bins a =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length a = 0 then [||]
  else
    let lo, hi = min_max a in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let i = int_of_float ((x -. lo) /. width) in
        let i = max 0 (min (bins - 1) i) in
        counts.(i) <- counts.(i) + 1)
      a;
    Array.mapi
      (fun i c ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), c))
      counts
