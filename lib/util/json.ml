type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else Some (Printf.sprintf "%.12g" f)

let to_string ?(pretty = true) v =
  let buf = Buffer.create 256 in
  let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> (
        match float_repr f with
        | Some s -> Buffer.add_string buf s
        | None -> Buffer.add_string buf "null")
    | String s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) x)
          items;
        nl ();
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, x) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad (depth + 1);
            escape buf k;
            Buffer.add_string buf (if pretty then ": " else ":");
            go (depth + 1) x)
          fields;
        nl ();
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')
