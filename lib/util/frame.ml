(* Length-prefixed framing for the wmark serve wire protocol: a 4-byte
   big-endian payload length followed by the payload bytes.  The reader
   is total — truncation and oversized declarations come back as
   positioned [Error]s, never exceptions — because the peer is untrusted
   input, exactly like a Textio file. *)

type error = { at : int; message : string }

let error_to_string e = Printf.sprintf "byte %d: %s" e.at e.message

let default_max_len = 64 * 1024 * 1024

let header_len = 4

let encode payload =
  let n = String.length payload in
  let b = Bytes.create (header_len + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

(* Decode one frame of [s] starting at [pos].  [Ok None] is a clean end
   (nothing after [pos]); a partial header or payload is an error at the
   offset where the missing byte would have been. *)
let decode ?(max_len = default_max_len) s ~pos =
  let n = String.length s in
  if pos < 0 || pos > n then
    Error { at = pos; message = "position out of range" }
  else if pos = n then Ok None
  else if n - pos < header_len then
    Error { at = n; message = "truncated frame header" }
  else begin
    let byte i = Char.code s.[pos + i] in
    let len = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
    if len > max_len then
      Error
        {
          at = pos;
          message =
            Printf.sprintf "frame length %d exceeds limit %d" len max_len;
        }
    else if n - pos - header_len < len then
      Error { at = n; message = "truncated frame payload" }
    else Ok (Some (String.sub s (pos + header_len) len, pos + header_len + len))
  end

let write oc payload =
  output_string oc (encode payload);
  flush oc

(* Read exactly [n] bytes or report how far we got. *)
let really_read ic ~at n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then Ok (Bytes.unsafe_to_string b)
    else
      match input ic b off (n - off) with
      | 0 -> Error { at = at + off; message = "unexpected end of stream" }
      | k -> go (off + k)
      | exception End_of_file ->
          Error { at = at + off; message = "unexpected end of stream" }
  in
  go 0

let read ?(max_len = default_max_len) ic ~at =
  match input_char ic with
  | exception End_of_file -> Ok None  (* clean end between frames *)
  | c0 -> (
      match really_read ic ~at:(at + 1) 3 with
      | Error e -> Error e
      | Ok rest ->
          let byte i =
            Char.code (if i = 0 then c0 else rest.[i - 1])
          in
          let len =
            (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
          in
          if len > max_len then
            Error
              {
                at;
                message =
                  Printf.sprintf "frame length %d exceeds limit %d" len max_len;
              }
          else (
            match really_read ic ~at:(at + header_len) len with
            | Error e -> Error e
            | Ok payload -> Ok (Some (payload, at + header_len + len))))
