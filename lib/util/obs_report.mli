(** Rendering for {!Wm_obs.Obs} snapshots: the human-readable [--stats]
    table and the machine-readable [qpwm-trace/1] JSON document. *)

val render : Wm_obs.Obs.snapshot -> string
(** Counters and timers as {!Texttab} tables (counters sorted by name;
    timers with call counts, totals and per-call means), followed by a
    per-name aggregation of trace spans.  Empty sections are omitted;
    an entirely empty snapshot renders a short hint instead. *)

val counters_json : Wm_obs.Obs.snapshot -> Json.t
(** Just the counters, as a flat object — what the bench harness embeds
    per experiment into BENCH_PR*.json. *)

val timers_json : Wm_obs.Obs.snapshot -> Json.t
(** Timers as [{name: {calls, seconds}}]. *)

val histo_quantile : Wm_obs.Obs.histo_total -> float -> float
(** Conservative quantile estimate (seconds) from the fixed bucket
    layout: the upper bound of the first bucket whose cumulative count
    reaches the requested fraction of the total; 0 on an empty
    histogram. *)

val histos_json : Wm_obs.Obs.snapshot -> Json.t
(** Latency histograms as [{name: {count, sum_s, p50_s, p90_s, p99_s,
    buckets}}] with [buckets] listing only non-empty cells as
    [{le_s, n}] ([le_s] is ["inf"] for the overflow bucket). *)

val trace_json : Wm_obs.Obs.snapshot -> Json.t
(** The full snapshot under schema [qpwm-trace/1]: counters, timers,
    latency histograms and the individual span events ([name], optional
    [detail], [domain], [depth], [start_s], [dur_s] — starts are seconds
    since process start). *)
