(** Small descriptive-statistics helpers for the experiment harness.

    The Agrawal-Kiernan baseline (experiment E12) is judged by the paper on
    whether it preserves the mean and variance of numerical attributes; the
    experiment tables also report maxima, quantiles and rates. *)

val mean : float array -> float
(** Arithmetic mean; 0. on the empty array. *)

val variance : float array -> float
(** Population variance; 0. on arrays of length < 2. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** Smallest and largest value; raises [Invalid_argument] on empty input. *)

val quantile : float -> float array -> float
(** [quantile q a] with [0 <= q <= 1]; nearest-rank on a sorted copy. *)

val imean : int array -> float

val imax : int array -> int
(** Largest element; [imax] of an empty array is 0 (all our uses measure
    non-negative distortions, where 0 is the correct neutral element).
    On non-empty input the true maximum is returned even when every
    element is negative. *)

val rate : int -> int -> float
(** [rate num den] is [num/den] as a float, 0. when [den = 0]. *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins a] splits the value range into [bins] equal intervals
    and returns [(lo, hi, count)] per bin.  Raises [Invalid_argument] when
    [bins <= 0]. *)
