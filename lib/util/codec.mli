(** Watermark message codec.

    A mark is a boolean word m in {0,1}^l (Definition 2).  Owners usually
    want to embed an identity — a server id or a short string — so this
    module converts between the representations used at the API boundary:
    integers, ASCII strings, and {!Bitvec.t} messages. *)

val of_int : bits:int -> int -> Bitvec.t
(** [of_int ~bits n] is the little-endian [bits]-long encoding of [n].
    Raises [Invalid_argument] unless [0 <= bits <= 62] and
    [0 <= n < 2^bits]. *)

val to_int : Bitvec.t -> int
(** Little-endian decoding; raises [Invalid_argument] on messages longer
    than 62 bits. *)

val of_string : string -> Bitvec.t
(** 8 bits per byte, little-endian within each byte. *)

val to_string : Bitvec.t -> string
(** Inverse of {!of_string}; raises [Invalid_argument] unless the length
    is divisible by 8. *)

val of_bool_list : bool list -> Bitvec.t
val to_bool_list : Bitvec.t -> bool list

val random : Prng.t -> int -> Bitvec.t
(** [random g l] is a uniform message of length [l]. *)

val hamming : Bitvec.t -> Bitvec.t -> int
(** Number of positions where the two messages differ; raises
    [Invalid_argument] on a length mismatch. *)

val repeat : times:int -> Bitvec.t -> Bitvec.t
(** [repeat ~times m] concatenates [times] copies of [m]: the redundancy
    encoding used by the adversarial (Khanna-Zane style) wrapper. *)

val majority_decode : times:int -> Bitvec.t -> Bitvec.t
(** Inverse of {!repeat} by per-position strict majority vote.  Raises
    [Invalid_argument] unless [times > 0] and the input length is a
    multiple of [times].  With an even [times], a position that splits
    exactly [times/2] vs [times/2] is a tie and decodes to [false]; use
    odd redundancies when that bias matters. *)

val majority_decode_opt : times:int -> Bitvec.t -> bool option array
(** Tie-explicit {!majority_decode}: position [i] is [Some b] on a strict
    majority for [b] and [None] on an exact [times/2] split.  Collusion
    voting (k copies spliced into one) produces even splits constantly;
    callers that score agreement must see the tie as an abstention, not a
    silent [false] — {!Wm_watermark.Fingerprint} decodes through this.
    Same [Invalid_argument] conditions as {!majority_decode}. *)
