(** Length-prefixed framing for the [wmark serve] wire protocol
    (DESIGN.md 5.11).

    One frame is a 4-byte big-endian payload length followed by exactly
    that many payload bytes.  Reading is total: truncated streams and
    frames whose declared length exceeds the limit come back as
    positioned {!error}s instead of exceptions, so a malicious or broken
    peer cannot crash the server — the same hardening contract as
    {!Wm_relational.Textio.of_string_result}. *)

type error = { at : int; message : string }
(** [at] is a 0-based byte offset into the stream (or string): the start
    of the offending frame for an oversized declaration, the first
    missing byte for a truncation. *)

val error_to_string : error -> string

val default_max_len : int
(** 64 MiB — the payload ceiling used when [max_len] is omitted. *)

val header_len : int
(** 4. *)

val encode : string -> string
(** Frame one payload. *)

val decode :
  ?max_len:int -> string -> pos:int -> ((string * int) option, error) result
(** [decode s ~pos] reads one frame starting at [pos]: [Ok None] when
    [pos] is exactly the end of [s], [Ok (Some (payload, next))]
    otherwise, with [next] the offset just past the frame. *)

val write : out_channel -> string -> unit
(** Frame and write one payload, flushing the channel. *)

val read :
  ?max_len:int -> in_channel -> at:int -> ((string * int) option, error) result
(** [read ic ~at] reads one frame from the channel; [at] is the caller's
    running byte offset (used only for error positions and the returned
    next offset).  [Ok None] on a clean end-of-stream between frames;
    end-of-stream inside a frame is an error. *)
