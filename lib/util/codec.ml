let of_int ~bits n =
  if bits < 0 || bits > 62 then
    invalid_arg "Codec.of_int: bits must be in [0, 62]";
  if n < 0 || (bits < 62 && n >= 1 lsl bits) then
    invalid_arg
      (Printf.sprintf "Codec.of_int: %d does not fit in %d bits" n bits);
  let v = Bitvec.create bits in
  for i = 0 to bits - 1 do
    Bitvec.set v i ((n lsr i) land 1 = 1)
  done;
  v

let to_int v =
  if Bitvec.length v > 62 then
    invalid_arg "Codec.to_int: message longer than 62 bits";
  let n = ref 0 in
  for i = Bitvec.length v - 1 downto 0 do
    n := (!n lsl 1) lor (if Bitvec.get v i then 1 else 0)
  done;
  !n

let of_string s =
  let v = Bitvec.create (8 * String.length s) in
  String.iteri
    (fun i c ->
      let c = Char.code c in
      for b = 0 to 7 do
        Bitvec.set v ((8 * i) + b) ((c lsr b) land 1 = 1)
      done)
    s;
  v

let to_string v =
  let n = Bitvec.length v in
  if n mod 8 <> 0 then
    invalid_arg "Codec.to_string: length must be a multiple of 8";
  String.init (n / 8) (fun i ->
      let c = ref 0 in
      for b = 7 downto 0 do
        c := (!c lsl 1) lor (if Bitvec.get v ((8 * i) + b) then 1 else 0)
      done;
      Char.chr !c)

let of_bool_list bs = Bitvec.of_bools (Array.of_list bs)
let to_bool_list v = Array.to_list (Bitvec.to_bools v)

let random g l =
  let v = Bitvec.create l in
  for i = 0 to l - 1 do
    Bitvec.set v i (Prng.bool g)
  done;
  v

let hamming a b =
  if Bitvec.length a <> Bitvec.length b then
    invalid_arg "Codec.hamming: length mismatch";
  Bitvec.popcount (Bitvec.diff (Bitvec.union a b) (Bitvec.inter a b))

let repeat ~times m =
  let l = Bitvec.length m in
  let v = Bitvec.create (l * times) in
  for t = 0 to times - 1 do
    for i = 0 to l - 1 do
      Bitvec.set v ((t * l) + i) (Bitvec.get m i)
    done
  done;
  v

let majority_decode ~times v =
  let n = Bitvec.length v in
  if times <= 0 then invalid_arg "Codec.majority_decode: times must be positive";
  if n mod times <> 0 then
    invalid_arg "Codec.majority_decode: length not a multiple of times";
  let l = n / times in
  let out = Bitvec.create l in
  for i = 0 to l - 1 do
    let ones = ref 0 in
    for t = 0 to times - 1 do
      if Bitvec.get v ((t * l) + i) then incr ones
    done;
    (* strict majority: an even [times] split (ones = times/2) is a tie
       and decodes to false — the documented bias, not an accident *)
    Bitvec.set out i (2 * !ones > times)
  done;
  out

let majority_decode_opt ~times v =
  let n = Bitvec.length v in
  if times <= 0 then
    invalid_arg "Codec.majority_decode_opt: times must be positive";
  if n mod times <> 0 then
    invalid_arg "Codec.majority_decode_opt: length not a multiple of times";
  let l = n / times in
  Array.init l (fun i ->
      let ones = ref 0 in
      for t = 0 to times - 1 do
        if Bitvec.get v ((t * l) + i) then incr ones
      done;
      if 2 * !ones > times then Some true
      else if 2 * !ones < times then Some false
      else None)
