module Obs = Wm_obs.Obs

let ms s = s *. 1000.

(* Quantile estimate from the fixed bucket layout: the upper bound of the
   first bucket whose cumulative count reaches q * total (conservative —
   never under-reports a latency). *)
let histo_quantile (h : Obs.histo_total) q =
  if h.Obs.count = 0 then 0.
  else begin
    let target =
      int_of_float (ceil (q *. float_of_int h.Obs.count)) |> max 1
    in
    let rec walk i acc =
      if i >= Array.length h.Obs.buckets then
        Obs.histo_bounds.(Array.length Obs.histo_bounds - 1)
      else
        let acc = acc + h.Obs.buckets.(i) in
        if acc >= target then
          if i < Array.length Obs.histo_bounds then Obs.histo_bounds.(i)
          else Obs.histo_bounds.(Array.length Obs.histo_bounds - 1)
        else walk (i + 1) acc
    in
    walk 0 0
  end

let render (snap : Obs.snapshot) =
  let buf = Buffer.create 1024 in
  if snap.Obs.counters <> [] then begin
    let t = Texttab.create [ "counter"; "value" ] in
    List.iter (fun (k, v) -> Texttab.addf t "%s|%d" k v) snap.Obs.counters;
    Buffer.add_string buf "counters\n";
    Buffer.add_string buf (Texttab.render t)
  end;
  if snap.Obs.timers <> [] then begin
    let t = Texttab.create [ "timer"; "calls"; "total ms"; "mean ms" ] in
    List.iter
      (fun (k, { Obs.calls; seconds }) ->
        Texttab.addf t "%s|%d|%.2f|%.4f" k calls (ms seconds)
          (ms seconds /. float_of_int (max 1 calls)))
      snap.Obs.timers;
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf "timers\n";
    Buffer.add_string buf (Texttab.render t)
  end;
  if snap.Obs.histos <> [] then begin
    let t =
      Texttab.create
        [ "histogram"; "count"; "mean ms"; "p50 ms"; "p90 ms"; "p99 ms" ]
    in
    List.iter
      (fun (k, h) ->
        Texttab.addf t "%s|%d|%.4f|%.4f|%.4f|%.4f" k h.Obs.count
          (ms h.Obs.sum /. float_of_int (max 1 h.Obs.count))
          (ms (histo_quantile h 0.50))
          (ms (histo_quantile h 0.90))
          (ms (histo_quantile h 0.99)))
      snap.Obs.histos;
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf "latency histograms\n";
    Buffer.add_string buf (Texttab.render t)
  end;
  (* Spans aggregated by name: the individual events go to --trace-json;
     the table answers "where did the time go" at a glance. *)
  if snap.Obs.spans <> [] then begin
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun e ->
        match Hashtbl.find_opt tbl e.Obs.sp_name with
        | Some (n, total) ->
            Hashtbl.replace tbl e.Obs.sp_name (n + 1, total +. e.Obs.sp_dur)
        | None ->
            Hashtbl.add tbl e.Obs.sp_name (1, e.Obs.sp_dur);
            order := e.Obs.sp_name :: !order)
      snap.Obs.spans;
    let t = Texttab.create [ "span"; "events"; "total ms" ] in
    List.iter
      (fun name ->
        let n, total = Hashtbl.find tbl name in
        Texttab.addf t "%s|%d|%.2f" name n (ms total))
      (List.rev !order);
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf "trace spans (aggregated)\n";
    Buffer.add_string buf (Texttab.render t)
  end;
  if Buffer.length buf = 0 then
    Buffer.add_string buf
      "no observations recorded (is stats collection enabled? set \
       WMARK_STATS=1 or pass --stats)\n";
  Buffer.contents buf

let counters_json (snap : Obs.snapshot) =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.Obs.counters)

let timers_json (snap : Obs.snapshot) =
  Json.Obj
    (List.map
       (fun (k, { Obs.calls; seconds }) ->
         (k, Json.Obj [ ("calls", Json.Int calls); ("seconds", Json.Float seconds) ]))
       snap.Obs.timers)

let histos_json (snap : Obs.snapshot) =
  Json.Obj
    (List.map
       (fun (k, h) ->
         let buckets =
           List.filter_map
             (fun i ->
               if h.Obs.buckets.(i) = 0 then None
               else
                 let le =
                   if i < Array.length Obs.histo_bounds then
                     Json.Float Obs.histo_bounds.(i)
                   else Json.String "inf"
                 in
                 Some
                   (Json.Obj
                      [ ("le_s", le); ("n", Json.Int h.Obs.buckets.(i)) ]))
             (List.init (Array.length h.Obs.buckets) Fun.id)
         in
         ( k,
           Json.Obj
             [
               ("count", Json.Int h.Obs.count);
               ("sum_s", Json.Float h.Obs.sum);
               ("p50_s", Json.Float (histo_quantile h 0.50));
               ("p90_s", Json.Float (histo_quantile h 0.90));
               ("p99_s", Json.Float (histo_quantile h 0.99));
               ("buckets", Json.List buckets);
             ] ))
       snap.Obs.histos)

let span_json (e : Obs.span_event) =
  Json.Obj
    ([ ("name", Json.String e.Obs.sp_name) ]
    @ (match e.Obs.sp_detail with
      | Some d -> [ ("detail", Json.String d) ]
      | None -> [])
    @ [
        ("domain", Json.Int e.Obs.sp_domain);
        ("depth", Json.Int e.Obs.sp_depth);
        ("start_s", Json.Float e.Obs.sp_start);
        ("dur_s", Json.Float e.Obs.sp_dur);
      ])

let trace_json (snap : Obs.snapshot) =
  Json.Obj
    [
      ("schema", Json.String "qpwm-trace/1");
      ("taken_s", Json.Float snap.Obs.taken);
      ("counters", counters_json snap);
      ("timers", timers_json snap);
      ("histos", histos_json snap);
      ("spans", Json.List (List.map span_json snap.Obs.spans));
    ]
