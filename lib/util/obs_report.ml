module Obs = Wm_obs.Obs

let ms s = s *. 1000.

let render (snap : Obs.snapshot) =
  let buf = Buffer.create 1024 in
  if snap.Obs.counters <> [] then begin
    let t = Texttab.create [ "counter"; "value" ] in
    List.iter (fun (k, v) -> Texttab.addf t "%s|%d" k v) snap.Obs.counters;
    Buffer.add_string buf "counters\n";
    Buffer.add_string buf (Texttab.render t)
  end;
  if snap.Obs.timers <> [] then begin
    let t = Texttab.create [ "timer"; "calls"; "total ms"; "mean ms" ] in
    List.iter
      (fun (k, { Obs.calls; seconds }) ->
        Texttab.addf t "%s|%d|%.2f|%.4f" k calls (ms seconds)
          (ms seconds /. float_of_int (max 1 calls)))
      snap.Obs.timers;
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf "timers\n";
    Buffer.add_string buf (Texttab.render t)
  end;
  (* Spans aggregated by name: the individual events go to --trace-json;
     the table answers "where did the time go" at a glance. *)
  if snap.Obs.spans <> [] then begin
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun e ->
        match Hashtbl.find_opt tbl e.Obs.sp_name with
        | Some (n, total) ->
            Hashtbl.replace tbl e.Obs.sp_name (n + 1, total +. e.Obs.sp_dur)
        | None ->
            Hashtbl.add tbl e.Obs.sp_name (1, e.Obs.sp_dur);
            order := e.Obs.sp_name :: !order)
      snap.Obs.spans;
    let t = Texttab.create [ "span"; "events"; "total ms" ] in
    List.iter
      (fun name ->
        let n, total = Hashtbl.find tbl name in
        Texttab.addf t "%s|%d|%.2f" name n (ms total))
      (List.rev !order);
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    Buffer.add_string buf "trace spans (aggregated)\n";
    Buffer.add_string buf (Texttab.render t)
  end;
  if Buffer.length buf = 0 then
    Buffer.add_string buf
      "no observations recorded (is stats collection enabled? set \
       WMARK_STATS=1 or pass --stats)\n";
  Buffer.contents buf

let counters_json (snap : Obs.snapshot) =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) snap.Obs.counters)

let timers_json (snap : Obs.snapshot) =
  Json.Obj
    (List.map
       (fun (k, { Obs.calls; seconds }) ->
         (k, Json.Obj [ ("calls", Json.Int calls); ("seconds", Json.Float seconds) ]))
       snap.Obs.timers)

let span_json (e : Obs.span_event) =
  Json.Obj
    ([ ("name", Json.String e.Obs.sp_name) ]
    @ (match e.Obs.sp_detail with
      | Some d -> [ ("detail", Json.String d) ]
      | None -> [])
    @ [
        ("domain", Json.Int e.Obs.sp_domain);
        ("depth", Json.Int e.Obs.sp_depth);
        ("start_s", Json.Float e.Obs.sp_start);
        ("dur_s", Json.Float e.Obs.sp_dur);
      ])

let trace_json (snap : Obs.snapshot) =
  Json.Obj
    [
      ("schema", Json.String "qpwm-trace/1");
      ("taken_s", Json.Float snap.Obs.taken);
      ("counters", counters_json snap);
      ("timers", timers_json snap);
      ("spans", Json.List (List.map span_json snap.Obs.spans));
    ]
