(* Flat columnar relations (DESIGN.md 5.12).

   The canonical storage is one contiguous int array of [nrows] rows in
   ascending tuple order ([data], row-major, [arity] cells per row):
   membership is binary search, iteration walks a cache-resident array
   instead of a balanced tree of boxed tuples, and bulk construction
   ([of_list], [filter], [union], [rename]) builds the array directly.

   The functional update API is kept by a small overlay: [adds] holds
   live tuples absent from [data], [dels] the data rows removed.  Both
   stay bounded — any update pushing the overlay past max(64, nrows/4)
   folds it into a fresh flat array — so single edits are cheap and a
   long add-chain (the Textio load path, the attack generators) costs
   amortized O(arity) per tuple in array copies plus small-set inserts.

   Every observable behavior (ascending iteration order, error
   messages, [equal]) is bit-identical to the frozen pre-flat
   implementation [Relation_ref]; test/test_flatcore.ml enforces this
   on random op sequences. *)

type t = {
  arity : int;
  nrows : int;          (* rows in [data], including deleted ones *)
  data : int array;     (* nrows * arity, row-major, ascending, distinct *)
  adds : Tuple.Set.t;   (* live tuples not among the data rows *)
  nadds : int;
  dels : Tuple.Set.t;   (* data rows that have been removed *)
  ndels : int;
}

let empty arity =
  if arity < 1 then invalid_arg "Relation.empty: arity < 1";
  {
    arity;
    nrows = 0;
    data = [||];
    adds = Tuple.Set.empty;
    nadds = 0;
    dels = Tuple.Set.empty;
    ndels = 0;
  }

let arity r = r.arity
let cardinal r = r.nrows - r.ndels + r.nadds
let is_empty r = cardinal r = 0

(* --- row primitives ------------------------------------------------- *)

(* Int comparison, kept monomorphic: the generic [compare] costs a C
   call per cell, which dominates binary search and sorting here. *)
let icmp (x : int) y = if x < y then -1 else if x > y then 1 else 0

(* data row [i] vs tuple [t], lexicographic (equal arities). *)
let cmp_row r i (t : Tuple.t) =
  let base = i * r.arity in
  let rec go j =
    if j = r.arity then 0
    else
      let c = icmp r.data.(base + j) t.(j) in
      if c <> 0 then c else go (j + 1)
  in
  go 0

(* Index of [t] among the data rows, -1 if absent. *)
let find_row r t =
  let lo = ref 0 and hi = ref (r.nrows - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let c = cmp_row r mid t in
    if c = 0 then found := mid else if c < 0 then lo := mid + 1 else hi := mid - 1
  done;
  !found

(* rows [i] and [j] of one flat buffer *)
let cmp_rows arity (buf : int array) i j =
  let bi = i * arity and bj = j * arity in
  let rec go p =
    if p = arity then 0
    else
      let c = icmp buf.(bi + p) buf.(bj + p) in
      if c <> 0 then c else go (p + 1)
  in
  go 0

let rows_equal arity (buf : int array) bi (out : int array) bo =
  let rec go p = p = arity || (buf.(bi + p) = out.(bo + p) && go (p + 1)) in
  go 0

(* Sort [k] rows of [buf] and drop duplicates; returns (rows, data).
   [buf] must be private to the caller (it is returned directly on the
   fast path).  Bulk sources are usually already ascending — [to_list]
   of a relation, a file saved by Textio — so sortedness is checked in
   one O(k) sweep first and the heapsort skipped when it holds. *)
let sort_dedup_rows arity buf k =
  let sorted = ref true in
  let i = ref 1 in
  while !sorted && !i < k do
    if cmp_rows arity buf (!i - 1) !i > 0 then sorted := false;
    incr i
  done;
  if !sorted then begin
    let dups = ref 0 in
    for i = 1 to k - 1 do
      if rows_equal arity buf (i * arity) buf ((i - 1) * arity) then incr dups
    done;
    if !dups = 0 then (k, buf)
    else begin
      let out = Array.make ((k - !dups) * arity) 0 in
      let w = ref 0 in
      for i = 0 to k - 1 do
        if i = 0 || not (rows_equal arity buf (i * arity) buf ((i - 1) * arity))
        then begin
          Array.blit buf (i * arity) out (!w * arity) arity;
          incr w
        end
      done;
      (!w, out)
    end
  end
  else begin
    let idx = Array.init k (fun i -> i) in
    Array.sort (fun i j -> cmp_rows arity buf i j) idx;
    let out = Array.make (k * arity) 0 in
    let w = ref 0 in
    Array.iter
      (fun i ->
        if !w = 0
           || not (rows_equal arity buf (i * arity) out ((!w - 1) * arity))
        then begin
          Array.blit buf (i * arity) out (!w * arity) arity;
          incr w
        end)
      idx;
    (!w, if !w = k then out else Array.sub out 0 (!w * arity))
  end

let of_rows arity (nrows, data) =
  {
    arity;
    nrows;
    data;
    adds = Tuple.Set.empty;
    nadds = 0;
    dels = Tuple.Set.empty;
    ndels = 0;
  }

(* --- merged iteration ------------------------------------------------

   Live rows in ascending tuple order: the sorted data rows (minus
   [dels]) merged with the sorted [adds].  [f] receives (buffer,
   offset); for a flat value this is the zero-allocation fast path. *)

let iter_flat f r =
  let a = r.arity in
  if r.nadds = 0 && r.ndels = 0 then
    for i = 0 to r.nrows - 1 do
      f r.data (i * a)
    done
  else begin
    (* Deleted row indices come out ascending: dels iterates in tuple
       order and the data rows are sorted the same way. *)
    let dels =
      ref (List.rev (Tuple.Set.fold (fun t acc -> find_row r t :: acc) r.dels []))
    in
    let adds = ref (Tuple.Set.elements r.adds) in
    let i = ref 0 in
    while !i < r.nrows || !adds <> [] do
      match !dels with
      | d :: rest when d = !i ->
          dels := rest;
          incr i
      | _ -> (
          if !i >= r.nrows then (
            match !adds with
            | t :: rest ->
                f t 0;
                adds := rest
            | [] -> ())
          else
            match !adds with
            | t :: rest when cmp_row r !i t > 0 ->
                f t 0;
                adds := rest
            | _ ->
                f r.data (!i * a);
                incr i)
    done
  end

(* The tuple at (buf, off) as a Tuple.t, sharing when it already is one. *)
let tup arity (buf : int array) off =
  if off = 0 && Array.length buf = arity then buf else Array.sub buf off arity

let iter f r = iter_flat (fun buf off -> f (tup r.arity buf off)) r

let fold f r acc =
  let acc = ref acc in
  iter (fun t -> acc := f t !acc) r;
  !acc

let to_list r = List.rev (fold (fun t acc -> t :: acc) r [])

let for_all p r =
  let exception Falsified in
  try
    iter (fun t -> if not (p t) then raise Falsified) r;
    true
  with Falsified -> false

let exists p r = not (for_all (fun t -> not (p t)) r)

(* --- compaction ------------------------------------------------------ *)

let flatten r =
  if r.nadds = 0 && r.ndels = 0 then r
  else begin
    let n = cardinal r in
    let out = Array.make (n * r.arity) 0 in
    let w = ref 0 in
    iter_flat
      (fun buf off ->
        Array.blit buf off out !w r.arity;
        w := !w + r.arity)
      r;
    of_rows r.arity (n, out)
  end

let overlay_limit r = max 64 (r.nrows / 4)

let maybe_compact r =
  if r.nadds + r.ndels > overlay_limit r then flatten r else r

(* --- point queries and updates -------------------------------------- *)

let mem t r =
  Tuple.arity t = r.arity
  && (Tuple.Set.mem t r.adds
     || ((not (Tuple.Set.mem t r.dels)) && find_row r t >= 0))

let add t r =
  if Tuple.arity t <> r.arity then invalid_arg "Relation.add: arity mismatch";
  if Tuple.Set.mem t r.adds then r
  else if Tuple.Set.mem t r.dels then
    { r with dels = Tuple.Set.remove t r.dels; ndels = r.ndels - 1 }
  else if find_row r t >= 0 then r
  else
    maybe_compact { r with adds = Tuple.Set.add t r.adds; nadds = r.nadds + 1 }

let remove t r =
  if Tuple.arity t <> r.arity then r
  else if Tuple.Set.mem t r.adds then
    { r with adds = Tuple.Set.remove t r.adds; nadds = r.nadds - 1 }
  else if (not (Tuple.Set.mem t r.dels)) && find_row r t >= 0 then
    maybe_compact { r with dels = Tuple.Set.add t r.dels; ndels = r.ndels + 1 }
  else r

(* --- bulk builders --------------------------------------------------- *)

let of_list ar ts =
  if ar < 1 then invalid_arg "Relation.empty: arity < 1";
  let k = List.length ts in
  let buf = Array.make (k * ar) 0 in
  List.iteri
    (fun i t ->
      if Tuple.arity t <> ar then invalid_arg "Relation.add: arity mismatch";
      Array.blit t 0 buf (i * ar) ar)
    ts;
  of_rows ar (sort_dedup_rows ar buf k)

let of_pairs ps = of_list 2 (List.map (fun (a, b) -> Tuple.pair a b) ps)

(* Filtering preserves order, so the surviving rows are already sorted
   and distinct — two merged walks, no sort. *)
let filter p r =
  let a = r.arity in
  let n = ref 0 in
  iter (fun t -> if p t then incr n) r;
  let out = Array.make (!n * a) 0 in
  let w = ref 0 in
  iter
    (fun t ->
      if p t then begin
        Array.blit t 0 out !w a;
        w := !w + a
      end)
    r;
  of_rows a (!n, out)

let restrict keep r = filter (fun t -> Array.for_all keep t) r

let union a b =
  if a.arity <> b.arity then invalid_arg "Relation.union: arity mismatch";
  let fa = flatten a and fb = flatten b in
  let ar = a.arity in
  let out = Array.make ((fa.nrows + fb.nrows) * ar) 0 in
  let cmp i j =
    let bi = i * ar and bj = j * ar in
    let rec go p =
      if p = ar then 0
      else
        let c = icmp fa.data.(bi + p) fb.data.(bj + p) in
        if c <> 0 then c else go (p + 1)
    in
    go 0
  in
  let w = ref 0 and i = ref 0 and j = ref 0 in
  let emit (src : int array) off =
    Array.blit src off out (!w * ar) ar;
    incr w
  in
  while !i < fa.nrows || !j < fb.nrows do
    if !i >= fa.nrows then begin
      emit fb.data (!j * ar);
      incr j
    end
    else if !j >= fb.nrows then begin
      emit fa.data (!i * ar);
      incr i
    end
    else
      let c = cmp !i !j in
      if c < 0 then begin
        emit fa.data (!i * ar);
        incr i
      end
      else if c > 0 then begin
        emit fb.data (!j * ar);
        incr j
      end
      else begin
        emit fa.data (!i * ar);
        incr i;
        incr j
      end
  done;
  of_rows ar (!w, if !w * ar = Array.length out then out else Array.sub out 0 (!w * ar))

let rename f r =
  let a = r.arity in
  let n = cardinal r in
  let buf = Array.make (n * a) 0 in
  let w = ref 0 in
  iter_flat
    (fun src off ->
      for p = 0 to a - 1 do
        buf.(!w + p) <- f src.(off + p)
      done;
      w := !w + a)
    r;
  of_rows a (sort_dedup_rows a buf n)

let equal a b =
  a.arity = b.arity
  && cardinal a = cardinal b
  &&
  let fa = flatten a and fb = flatten b in
  fa.data = fb.data

let max_elt r =
  let best = ref (-1) in
  iter_flat
    (fun buf off ->
      for p = 0 to r.arity - 1 do
        if buf.(off + p) > !best then best := buf.(off + p)
      done)
    r;
  !best

let pp fmt r =
  Format.fprintf fmt "{%s}"
    (String.concat "; " (List.map Tuple.to_string (to_list r)))
