(** Plain-text serialization of weighted structures.

    The on-disk format the [wmark] CLI reads and writes.  Line-oriented,
    comments with [#]:

    {v
    # qpwm weighted structure
    schema Route/2 Timetable/4
    weight_arity 1
    size 18
    name 0 India discovery      # optional, one per line
    rel Route 0 3
    rel Timetable 3 9 10 15
    weight 3 635
    v}

    Unknown directives are an error; names may contain spaces (the rest of
    the line).  Characters the line format cannot carry raw — ['#'],
    ['%'], every control byte (codes below [0x20] plus DEL, which would
    corrupt a line- or frame-oriented transport such as the [wmark serve]
    wire protocol), and leading/trailing/doubled spaces — are escaped as
    ['%XX'] (uppercase hex) on write and decoded on read, so every name
    round-trips byte for byte; files written by older versions (which
    never contain escapes) parse unchanged. *)

exception Format_error of string

type error = { line : int; message : string }
(** [line] is 1-based; 0 when no single line is to blame (e.g. a missing
    [schema] directive or an IO error). *)

val error_to_string : error -> string

val escape_name : string -> string
(** The name-escaping pass on its own: ['%XX'] for ['#'], ['%'], control
    bytes and boundary/doubled spaces.  The serve wire protocol reuses it
    to keep arbitrary error text single-line. *)

val unescape_name : string -> string
(** Inverse of {!escape_name}; decodes only codes the escaper emits, so
    legacy percent signs in never-escaped text survive. *)

val to_string : Weighted.structure -> string

val of_string_result : string -> (Weighted.structure, error) result
(** Total: every malformed input — unknown directives, non-integers,
    out-of-range indices, arity mismatches, inconsistent weights — comes
    back as [Error] with line information.  Never raises. *)

val of_string : string -> Weighted.structure
(** @raise Format_error on malformed content (delegates to
    {!of_string_result}). *)

val save : string -> Weighted.structure -> unit

val load : string -> Weighted.structure
(** @raise Sys_error on IO problems, @raise Format_error on malformed
    content. *)

val load_result : string -> (Weighted.structure, error) result
(** Total file variant: IO problems come back as [Error] with line 0. *)

(** {1 Edit scripts}

    The line-oriented form of {!Structure.edit} lists — what
    [wmark update] reads.  One edit per line, same comment and [%XX]
    escaping conventions as the structure format:

    {v
    # qpwm edit script
    insert Route 0 3
    delete Route 0 3
    add                 # anonymous fresh element
    add Elbonia%20      # named fresh element
    remove 17           # must be the current last element
    v} *)

val edits_to_string : Structure.edit list -> string

val edits_of_string_result : string -> (Structure.edit list, error) result
(** Total: malformed lines come back as [Error] with line information. *)

val edits_of_string : string -> Structure.edit list
(** @raise Format_error on malformed content. *)
