(* Flat weight assignments (DESIGN.md 5.12).

   The explicit entries live in two parallel flat buffers: [keys], one
   contiguous row-major int array of [nk] sorted distinct tuple rows
   (the row index is the interned tuple id), and [vals], a Bigarray of
   the corresponding weights — unboxed, off the OCaml minor heap, so a
   million-element assignment is two cache-friendly blocks instead of a
   balanced tree of boxed (tuple, int) nodes.  [get] is binary search.

   Like [Relation], functional updates go through a bounded overlay
   ([over], a small map of added/overridden entries) that compacts back
   into fresh flat buffers once it passes max(64, nk/4).  There is no
   removal in this API, which keeps the overlay one-sided.

   An explicit entry whose value equals [default] is still an entry: it
   shows up in [bindings]/[support] exactly as the pre-flat map did.

   Semantic bugfix carried by this PR (mirrored in [Weighted_ref] so
   the equivalence suite pins it): [local_distance] now accounts for
   the |default - default'| delta of tuples outside both supports —
   previously two assignments with different defaults but equal
   supports could report distance 0. *)

type t = {
  arity : int;
  default : int;
  nk : int;             (* rows in [keys] / length of [vals] *)
  keys : int array;     (* nk * arity, row-major, ascending, distinct *)
  vals : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  over : int Tuple.Map.t;  (* entries added/overridden since last compact *)
  nover : int;
}

let no_vals = Bigarray.Array1.create Bigarray.int Bigarray.c_layout 0

let create ?(default = 0) arity =
  if arity < 1 then invalid_arg "Weighted.create: arity < 1";
  {
    arity;
    default;
    nk = 0;
    keys = [||];
    vals = no_vals;
    over = Tuple.Map.empty;
    nover = 0;
  }

let arity w = w.arity
let default w = w.default

(* Monomorphic int comparison — the generic [compare] costs a C call
   per cell, which dominates the binary search. *)
let icmp (x : int) y = if x < y then -1 else if x > y then 1 else 0

(* key row [i] vs tuple [t], lexicographic (equal arities). *)
let cmp_key w i (t : Tuple.t) =
  let base = i * w.arity in
  let rec go j =
    if j = w.arity then 0
    else
      let c = icmp w.keys.(base + j) t.(j) in
      if c <> 0 then c else go (j + 1)
  in
  go 0

(* Index of [t] among the key rows, -1 if absent. *)
let find_key w t =
  let lo = ref 0 and hi = ref (w.nk - 1) and found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let c = cmp_key w mid t in
    if c = 0 then found := mid else if c < 0 then lo := mid + 1 else hi := mid - 1
  done;
  !found

let get w t =
  if Tuple.arity t <> w.arity then w.default
  else if w.nover = 0 then
    if w.arity = 1 then begin
      (* Singleton keys are plain ints.  When they are dense — ascending
         distinct with first 0 and last nk-1, i.e. keys.(i) = i, the
         shape [weigh] builds over a full universe — lookup is O(1);
         otherwise an int binary search with no closure or boxing. *)
      let x = t.(0) in
      let nk = w.nk in
      if nk > 0 && w.keys.(0) = 0 && w.keys.(nk - 1) = nk - 1 then
        if x >= 0 && x < nk then w.vals.{x} else w.default
      else begin
        let lo = ref 0 and hi = ref (nk - 1) and res = ref w.default in
        while !lo <= !hi do
          let mid = (!lo + !hi) lsr 1 in
          let k = Array.unsafe_get w.keys mid in
          if k < x then lo := mid + 1
          else if k > x then hi := mid - 1
          else begin
            res := w.vals.{mid};
            lo := !hi + 1
          end
        done;
        !res
      end
    end
    else
      let i = find_key w t in
      if i < 0 then w.default else w.vals.{i}
  else
    match Tuple.Map.find_opt t w.over with
    | Some v -> v
    | None ->
        let i = find_key w t in
        if i < 0 then w.default else w.vals.{i}

(* Explicit entries in ascending tuple order, as (buffer, offset, value);
   zero per-entry allocation on a compacted value. *)
let iter_bindings_flat f w =
  let a = w.arity in
  if w.nover = 0 then
    for i = 0 to w.nk - 1 do
      f w.keys (i * a) w.vals.{i}
    done
  else begin
    let over = ref (Tuple.Map.bindings w.over) in
    let i = ref 0 in
    while !i < w.nk || !over <> [] do
      match !over with
      | [] ->
          f w.keys (!i * a) w.vals.{!i};
          incr i
      | (t, v) :: rest ->
          if !i >= w.nk then begin
            f t 0 v;
            over := rest
          end
          else
            let c = cmp_key w !i t in
            if c < 0 then begin
              f w.keys (!i * a) w.vals.{!i};
              incr i
            end
            else if c > 0 then begin
              f t 0 v;
              over := rest
            end
            else begin
              (* overridden row: the overlay value wins *)
              f t 0 v;
              over := rest;
              incr i
            end
    done
  end

let count_bindings w =
  let n = ref 0 in
  iter_bindings_flat (fun _ _ _ -> incr n) w;
  !n

let compact w =
  if w.nover = 0 then w
  else begin
    let n = count_bindings w in
    let keys = Array.make (n * w.arity) 0 in
    let vals = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
    let i = ref 0 in
    iter_bindings_flat
      (fun buf off v ->
        Array.blit buf off keys (!i * w.arity) w.arity;
        vals.{!i} <- v;
        incr i)
      w;
    { w with nk = n; keys; vals; over = Tuple.Map.empty; nover = 0 }
  end

let overlay_limit w = max 64 (w.nk / 4)

let set w t v =
  if Tuple.arity t <> w.arity then invalid_arg "Weighted.set: arity mismatch";
  let nover = if Tuple.Map.mem t w.over then w.nover else w.nover + 1 in
  let w = { w with over = Tuple.Map.add t v w.over; nover } in
  if w.nover > overlay_limit w then compact w else w

let set_elt w x v = set w (Tuple.singleton x) v
let get_elt w x = get w (Tuple.singleton x)

(* Bulk build: one sort over the pairs instead of a functional insert
   each.  Later occurrences of a key win, like the fold of [set] this
   replaces — ties are broken by list position. *)
let of_list ?(default = 0) arity l =
  let w0 = create ~default arity in
  let arr = Array.of_list l in
  let k = Array.length arr in
  if k = 0 then w0
  else begin
    Array.iter
      (fun (t, _) ->
        if Tuple.arity t <> arity then
          invalid_arg "Weighted.set: arity mismatch")
      arr;
    (* Already-ascending input (bindings of another assignment, a saved
       file) skips the sort; the dedup sweep below handles equal
       adjacent keys either way, later occurrence winning. *)
    let sorted = ref true in
    let i = ref 1 in
    while !sorted && !i < k do
      if Tuple.compare (fst arr.(!i - 1)) (fst arr.(!i)) > 0 then
        sorted := false;
      incr i
    done;
    let idx = Array.init k (fun i -> i) in
    if not !sorted then
      Array.sort
        (fun i j ->
          let ti, _ = arr.(i) and tj, _ = arr.(j) in
          let c = Tuple.compare ti tj in
          if c <> 0 then c else icmp i j)
        idx;
    let keys = Array.make (k * arity) 0 in
    let vtmp = Array.make k 0 in
    let row_equals r (t : Tuple.t) =
      let base = r * arity in
      let rec go p = p = arity || (keys.(base + p) = t.(p) && go (p + 1)) in
      go 0
    in
    let w = ref (-1) in
    Array.iter
      (fun i ->
        let t, v = arr.(i) in
        if !w >= 0 && row_equals !w t then vtmp.(!w) <- v
        else begin
          incr w;
          Array.blit t 0 keys (!w * arity) arity;
          vtmp.(!w) <- v
        end)
      idx;
    let nk = !w + 1 in
    let keys = if nk = k then keys else Array.sub keys 0 (nk * arity) in
    let vals = Bigarray.Array1.create Bigarray.int Bigarray.c_layout nk in
    for i = 0 to nk - 1 do
      vals.{i} <- vtmp.(i)
    done;
    { w0 with nk; keys; vals }
  end

let tup arity (buf : int array) off =
  if off = 0 && Array.length buf = arity then buf else Array.sub buf off arity

let bindings w =
  let acc = ref [] in
  iter_bindings_flat (fun buf off v -> acc := (tup w.arity buf off, v) :: !acc) w;
  List.rev !acc

let support w = List.map fst (bindings w)

let add_delta w t d = set w t (get w t + d)

(* Bulk mark application: net delta per tuple, then one merged rebuild
   of the flat buffers — a mark list touching the whole support costs
   O(nk + m log m) instead of m overlay inserts with interleaved
   compactions.  Same observable result as folding [add_delta]: every
   marked tuple ends with an explicit entry valued [get w t + net t],
   net-zero marks included. *)
let apply_marks w marks =
  if marks = [] then w
  else begin
    let arr = Array.of_list marks in
    let m = Array.length arr in
    Array.iter
      (fun (t, _) ->
        if Tuple.arity t <> w.arity then
          invalid_arg "Weighted.set: arity mismatch")
      arr;
    (* Net delta per tuple.  Deltas sum, so order within equal keys is
       irrelevant: sort by tuple — skipped when the stream is already
       ascending, the common shape of an orientation-mark list — then
       collapse runs in one sweep. *)
    let sorted = ref true in
    let i = ref 1 in
    while !sorted && !i < m do
      if Tuple.compare (fst arr.(!i - 1)) (fst arr.(!i)) > 0 then
        sorted := false;
      incr i
    done;
    if not !sorted then
      Array.sort (fun (ta, _) (tb, _) -> Tuple.compare ta tb) arr;
    let dts = Array.make m [||] and dds = Array.make m 0 in
    let nd = ref 0 in
    Array.iter
      (fun (t, d) ->
        if !nd > 0 && Tuple.compare dts.(!nd - 1) t = 0 then
          dds.(!nd - 1) <- dds.(!nd - 1) + d
        else begin
          dts.(!nd) <- t;
          dds.(!nd) <- d;
          incr nd
        end)
      arr;
    let nd = !nd in
    let base = compact w in
    let a = base.arity in
    let fresh = ref 0 in
    for j = 0 to nd - 1 do
      if find_key base dts.(j) < 0 then incr fresh
    done;
    let nk = base.nk + !fresh in
    let keys = Array.make (nk * a) 0 in
    let vals = Bigarray.Array1.create Bigarray.int Bigarray.c_layout nk in
    let wi = ref 0 and i = ref 0 and j = ref 0 in
    let put_row src off v =
      Array.blit src off keys (!wi * a) a;
      vals.{!wi} <- v;
      incr wi
    in
    while !i < base.nk || !j < nd do
      if !j >= nd then begin
        put_row base.keys (!i * a) base.vals.{!i};
        incr i
      end
      else if !i >= base.nk then begin
        put_row dts.(!j) 0 (base.default + dds.(!j));
        incr j
      end
      else
        let c = cmp_key base !i dts.(!j) in
        if c < 0 then begin
          put_row base.keys (!i * a) base.vals.{!i};
          incr i
        end
        else if c > 0 then begin
          put_row dts.(!j) 0 (base.default + dds.(!j));
          incr j
        end
        else begin
          put_row dts.(!j) 0 (base.vals.{!i} + dds.(!j));
          incr i;
          incr j
        end
    done;
    { base with nk; keys; vals }
  end

let local_distance a b =
  if a.arity <> b.arity then invalid_arg "Weighted.local_distance: arity";
  (* Off both supports every tuple weighs the respective default, so the
     sup starts at |default - default'| (the PR 8 bugfix), then a merged
     walk over the two sorted supports covers the explicit entries. *)
  let rec go d la lb =
    match (la, lb) with
    | [], [] -> d
    | (_, va) :: la, [] -> go (max d (abs (va - b.default))) la []
    | [], (_, vb) :: lb -> go (max d (abs (a.default - vb))) [] lb
    | (ta, va) :: la', (tb, vb) :: lb' ->
        let c = Tuple.compare ta tb in
        if c = 0 then go (max d (abs (va - vb))) la' lb'
        else if c < 0 then go (max d (abs (va - b.default))) la' lb
        else go (max d (abs (a.default - vb))) la lb'
  in
  go (abs (a.default - b.default)) (bindings a) (bindings b)

let is_local_distortion ~c a b = local_distance a b <= c

let equal a b =
  a.arity = b.arity && local_distance a b = 0 && a.default = b.default

let pp fmt w =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (t, v) -> Format.fprintf fmt "W%a = %d@," Tuple.pp t v)
    (bindings w);
  Format.fprintf fmt "@]"

type structure = { graph : Structure.t; weights : t }

let make graph weights =
  if arity weights <> Schema.weight_arity (Structure.schema graph) then
    invalid_arg "Weighted.make: weight arity differs from schema";
  let n = Structure.size graph in
  iter_bindings_flat
    (fun buf off _ ->
      for p = 0 to weights.arity - 1 do
        let x = buf.(off + p) in
        if x < 0 || x >= n then
          invalid_arg "Weighted.make: weighted tuple outside universe"
      done)
    weights;
  { graph; weights }

(* The E26 hot path: the universe is 0..n-1 so the singleton key rows
   are already sorted — fill both flat buffers directly, no overlay. *)
let weigh f g =
  let n = Structure.size g in
  let keys = Array.init n Fun.id in
  let vals = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  for i = 0 to n - 1 do
    vals.{i} <- f i
  done;
  make g
    { arity = 1; default = 0; nk = n; keys; vals; over = Tuple.Map.empty;
      nover = 0 }
