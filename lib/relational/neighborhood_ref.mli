(** The pre-fast-path neighborhood indexer, preserved as an executable
    reference (DESIGN.md 5.9).

    Everything here reproduces the original pipeline byte for byte:
    per-tuple {!Structure.induced} over {!Gaifman.sphere_tuple} with no
    sphere cache or member-scan sharing, three Gaifman-graph builds per
    tuple, hashed colour refinement run for size-many rounds, and
    [Hashtbl.hash] bucket keys.  Its only consumers are the property
    tests asserting the fast path is bit-identical to it, and bench
    experiment E23 measuring the speedup against it.  Observability is
    under [nbh.ref.*] so both pipelines can be diffed from one
    snapshot. *)

val index :
  ?jobs:int -> Structure.t -> rho:int -> Tuple.t list -> Neighborhood.index
(** The original {!Neighborhood.index}: same result — type ids and
    representatives included — computed the slow way. *)

val index_universe :
  ?jobs:int -> Structure.t -> rho:int -> arity:int -> Neighborhood.index
(** The original {!Neighborhood.index_universe}, including the
    [n^arity] cons-list enumeration. *)

val certificate : Structure.t -> int list -> int
(** The original hashed refinement certificate (exposed for tests that
    pin down its collision behaviour against {!Iso.certificate}). *)

val isomorphic : Structure.t -> int list -> Structure.t -> int list -> bool
(** The original exact test, with the quadratic forced-image scan. *)
