(** Isomorphism of small structures with distinguished elements.

    Neighborhood equivalence a ~rho b (Section 3) is isomorphism of the
    neighborhoods N_rho(a) and N_rho(b), where the i-th distinguished
    element of one must map to the i-th of the other.  Bounded-degree
    spheres are small, so a certificate-bucketed backtracking search is
    exact and fast enough.  The certificate comes from {e exact} partition
    refinement (1-WL with dense canonical renumbering, run to its true
    fixpoint): it is sound — isomorphic inputs always get equal
    certificates — and is used to avoid the quadratic number of pairwise
    tests when typing all parameters.

    The {!prep} API lets a caller that classifies many neighborhoods do
    the refinement (and the Gaifman-graph construction) once per
    neighborhood and reuse it across every pairwise test — the indexer's
    fast path. *)

type prep
(** Precomputed refinement data for one [(structure, distinguished)]
    pair: its Gaifman graph, stable exact colors, and certificate. *)

val prep : ?gf:Gaifman.t -> Structure.t -> int list -> prep
(** [prep g dist] refines [(g, dist)] to its stable coloring.  Pass [gf]
    (the Gaifman graph of [g]) to skip rebuilding it — results are
    identical either way. *)

val certificate_of_prep : prep -> int

val isomorphic_prep : prep -> prep -> bool
(** Exact center-respecting isomorphism, reusing both precomputations. *)

val isomorphic :
  ?gfa:Gaifman.t ->
  ?gfb:Gaifman.t ->
  Structure.t -> int list -> Structure.t -> int list -> bool
(** [isomorphic a da b db] decides whether there is an isomorphism of [a]
    onto [b] mapping the i-th element of [da] to the i-th of [db].  The two
    structures must share a schema; distinguished lists must have equal
    lengths.  [gfa]/[gfb] optionally supply the precomputed Gaifman
    graphs. *)

val certificate : ?gf:Gaifman.t -> Structure.t -> int list -> int
(** Refinement-based invariant of [(structure, distinguished)] up to
    isomorphism: equal for isomorphic inputs, usually different
    otherwise.  Supplying [gf] (the structure's Gaifman graph) skips its
    reconstruction and never changes the value. *)

val mix : int -> int -> int
(** The deep FNV-style int mixer behind the certificate — exposed so
    bucket keys elsewhere (cheap invariants) hash every component instead
    of the ~10 nodes [Hashtbl.hash] samples. *)
