module Smap = Map.Make (String)

type t = {
  schema : Schema.t;
  size : int;
  names : string array option;
  (* name -> lowest element id carrying it; built eagerly whenever a
     names array is installed and never mutated afterwards, so sharing
     a structure across wm_par domains stays race-free.  Lowest id wins
     on duplicate names, matching the first-match linear scan this
     index replaced (DESIGN.md 5.12). *)
  idx : (string, int) Hashtbl.t option;
  rels : Relation.t Smap.t;
}

let index_names = function
  | None -> None
  | Some a ->
      let h = Hashtbl.create (max 16 (Array.length a)) in
      for i = Array.length a - 1 downto 0 do
        Hashtbl.replace h a.(i) i
      done;
      Some h

let create ?names schema size =
  if size < 0 then invalid_arg "Structure.create: negative size";
  (match names with
  | Some a when Array.length a <> size ->
      invalid_arg "Structure.create: names length mismatch"
  | _ -> ());
  let rels =
    List.fold_left
      (fun m (s : Schema.symbol) -> Smap.add s.name (Relation.empty s.arity) m)
      Smap.empty (Schema.symbols schema)
  in
  { schema; size; names; idx = index_names names; rels }

let schema g = g.schema
let size g = g.size

let universe g = List.init g.size Fun.id

let iter_universe f g =
  for i = 0 to g.size - 1 do
    f i
  done

let fold_universe f g acc =
  let acc = ref acc in
  for i = 0 to g.size - 1 do
    acc := f i !acc
  done;
  !acc

let name_of g i =
  match g.names with Some a -> a.(i) | None -> string_of_int i

let elt_of_name g name =
  match g.idx with
  | None -> raise Not_found
  | Some h -> (
      match Hashtbl.find_opt h name with
      | Some i -> i
      | None -> raise Not_found)

let has_names g = g.names <> None

let with_default_names g =
  match g.names with
  | Some _ -> g
  | None ->
      let names = Some (Array.init g.size string_of_int) in
      { g with names; idx = index_names names }

let with_names g names =
  if Array.length names <> g.size then
    invalid_arg "Structure.with_names: names length mismatch";
  { g with names = Some names; idx = index_names (Some names) }

let relation g name =
  match Smap.find_opt name g.rels with
  | Some r -> r
  | None -> raise Not_found

let check_tuple g t =
  if Array.exists (fun x -> x < 0 || x >= g.size) t then
    invalid_arg "Structure.add_tuple: element out of range"

let add_tuple g name t =
  check_tuple g t;
  let r = relation g name in
  { g with rels = Smap.add name (Relation.add t r) g.rels }

let add_pairs g name ps =
  List.fold_left (fun g (a, b) -> add_tuple g name (Tuple.pair a b)) g ps

let set_relation g name r =
  if not (Schema.mem g.schema name) then raise Not_found;
  if Relation.arity r <> Schema.arity_of g.schema name then
    invalid_arg "Structure.set_relation: arity mismatch";
  let a = Relation.arity r in
  Relation.iter_flat
    (fun buf off ->
      for p = 0 to a - 1 do
        let x = buf.(off + p) in
        if x < 0 || x >= g.size then
          invalid_arg "Structure.add_tuple: element out of range"
      done)
    r;
  { g with rels = Smap.add name r g.rels }

let fold_relations f g acc = Smap.fold f g.rels acc

let tuples_count g =
  fold_relations (fun _ r acc -> acc + Relation.cardinal r) g 0

let induced g sub =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun x ->
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x (Hashtbl.length seen);
        order := x :: !order
      end)
    sub;
  let old = Array.of_list (List.rev !order) in
  let k = Array.length old in
  let names =
    match g.names with
    | None -> None
    | Some a -> Some (Array.map (fun o -> a.(o)) old)
  in
  let keep x = Hashtbl.mem seen x in
  let rename x = Hashtbl.find seen x in
  let rels =
    Smap.map (fun r -> Relation.rename rename (Relation.restrict keep r)) g.rels
  in
  ({ schema = g.schema; size = k; names; idx = index_names names; rels }, old)

(* --- edits ---------------------------------------------------------- *)

type edit =
  | Insert_tuple of string * Tuple.t
  | Delete_tuple of string * Tuple.t
  | Add_element of string option
  | Remove_element of int

let remove_tuple g name t =
  check_tuple g t;
  let r = relation g name in
  { g with rels = Smap.add name (Relation.remove t r) g.rels }

let apply_edit g = function
  | Insert_tuple (name, t) ->
      let g' = add_tuple g name t in
      (g', List.sort_uniq compare (Array.to_list t))
  | Delete_tuple (name, t) ->
      if Relation.mem t (relation g name) then
        (remove_tuple g name t, List.sort_uniq compare (Array.to_list t))
      else (g, [])
  | Add_element name ->
      let fresh = g.size in
      let names =
        match (g.names, name) with
        | None, None -> None
        | _ ->
            let base =
              match g.names with
              | Some a -> a
              | None -> Array.init g.size string_of_int
            in
            Some
              (Array.init (g.size + 1) (fun i ->
                   if i < g.size then base.(i)
                   else Option.value ~default:(string_of_int i) name))
      in
      ({ g with size = g.size + 1; names; idx = index_names names }, [ fresh ])
  | Remove_element x ->
      if x <> g.size - 1 then
        invalid_arg
          (Printf.sprintf
             "Structure.apply_edit: can only remove the last element (%d, \
              universe has %d)"
             x g.size);
      (* Incident tuples go with the element; their surviving endpoints are
         the dirty set (the removed id itself no longer exists). *)
      let dirty = ref [] in
      let rels =
        Smap.map
          (fun r ->
            Relation.filter
              (fun t ->
                if Tuple.mem_elt x t then begin
                  Array.iter (fun y -> if y <> x then dirty := y :: !dirty) t;
                  false
                end
                else true)
              r)
          g.rels
      in
      let names =
        match g.names with Some a -> Some (Array.sub a 0 x) | None -> None
      in
      ( { g with size = x; names; idx = index_names names; rels },
        List.sort_uniq compare !dirty )

let apply_edits g edits =
  let g', dirty =
    List.fold_left
      (fun (g, acc) e ->
        let g', d = apply_edit g e in
        (g', List.rev_append d acc))
      (g, []) edits
  in
  (* Dirty ids are reported against the *final* universe: ids that no
     longer exist (a later Remove_element) are dropped — their former
     neighbors are already dirty via the removal itself. *)
  (g', List.sort_uniq compare (List.filter (fun x -> x < g'.size) dirty))

let equal a b =
  a.size = b.size && Smap.equal Relation.equal a.rels b.rels

let pp fmt g =
  Format.fprintf fmt "@[<v>universe: %d elements@," g.size;
  Smap.iter
    (fun name r -> Format.fprintf fmt "%s: %a@," name Relation.pp r)
    g.rels;
  Format.fprintf fmt "@]"
