exception Format_error of string

type error = { line : int; message : string }

let error_to_string e =
  if e.line > 0 then Printf.sprintf "line %d: %s" e.line e.message
  else e.message

(* Names may contain characters the line format cannot carry raw: '#'
   starts a comment, leading/trailing/doubled spaces are eaten by trim and
   word splitting, '%' is our escape lead, and control bytes (every
   [< 0x20] plus DEL) would corrupt a line- or frame-oriented transport —
   the serve wire protocol carries these texts verbatim.  Escape exactly
   those on write and decode exactly the escapes we emit on read, so old
   files (which never contain escapes) parse unchanged. *)
let must_escape ch =
  ch = '%' || ch = '#' || Char.code ch < 0x20 || Char.code ch = 0x7f

let escape_name s =
  let n = String.length s in
  let buf = Buffer.create n in
  String.iteri
    (fun i ch ->
      let boundary = i = 0 || i = n - 1 in
      let doubled = i > 0 && s.[i - 1] = ' ' && ch = ' ' in
      if must_escape ch then
        Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code ch))
      else if ch = ' ' && (boundary || doubled) then
        Buffer.add_string buf "%20"
      else Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let hex_digit = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let unescape_name s =
  let n = String.length s in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    let unescaped =
      if s.[!i] = '%' && !i + 2 < n then
        match (hex_digit s.[!i + 1], hex_digit s.[!i + 2]) with
        | Some hi, Some lo ->
            let c = Char.chr ((hi lsl 4) lor lo) in
            (* Decode only codes [escape_name] emits, so unescape o
               escape is the identity and raw '%'s in old files (always
               escaped on write, but tolerated on read) pass through. *)
            if must_escape c || c = ' ' then Some c else None
        | _ -> None
      else None
    in
    match unescaped with
    | Some c ->
        Buffer.add_char buf c;
        i := !i + 3
    | None ->
        Buffer.add_char buf s.[!i];
        incr i
  done;
  Buffer.contents buf

let to_string (ws : Weighted.structure) =
  let g = ws.Weighted.graph in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# qpwm weighted structure\n";
  add "schema %s\n"
    (String.concat " "
       (List.map
          (fun (s : Schema.symbol) -> Printf.sprintf "%s/%d" s.name s.arity)
          (Schema.symbols (Structure.schema g))));
  add "weight_arity %d\n" (Schema.weight_arity (Structure.schema g));
  add "size %d\n" (Structure.size g);
  Structure.iter_universe
    (fun x ->
      let n = Structure.name_of g x in
      if n <> string_of_int x then add "name %d %s\n" x (escape_name n))
    g;
  Structure.fold_relations
    (fun name r () ->
      let a = Relation.arity r in
      Relation.iter_flat
        (fun rbuf off ->
          add "rel %s" name;
          for p = 0 to a - 1 do
            add " %d" rbuf.(off + p)
          done;
          add "\n")
        r)
    g ();
  let wa = Weighted.arity ws.Weighted.weights in
  Weighted.iter_bindings_flat
    (fun wbuf off v ->
      add "weight";
      for p = 0 to wa - 1 do
        add " %d" wbuf.(off + p)
      done;
      add " %d\n" v)
    ws.Weighted.weights;
  Buffer.contents buf

(* The total parser.  Every failure path — including library-level
   [Invalid_argument]s from schema/structure construction — comes back as
   [Error] with the best line information available. *)
let of_string_result text =
  let exception Fail of error in
  let fail ?(line = 0) fmt =
    Printf.ksprintf (fun message -> raise (Fail { line; message })) fmt
  in
  try
    let lines = String.split_on_char '\n' text in
    let schema = ref None in
    let weight_arity = ref 1 in
    let size = ref None in
    let names = ref [] in
    let rels = ref [] in
    let weights = ref [] in
    List.iteri
      (fun lineno line ->
        let lineno = lineno + 1 in
        let int_of s =
          match int_of_string_opt s with
          | Some n -> n
          | None -> fail ~line:lineno "not an integer: %S" s
        in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line <> "" then begin
          let words = String.split_on_char ' ' line |> List.filter (( <> ) "") in
          match words with
          | "schema" :: syms ->
              let parse_sym s =
                match String.split_on_char '/' s with
                | [ name; ar ] -> { Schema.name; arity = int_of ar }
                | _ -> fail ~line:lineno "bad symbol %S" s
              in
              schema := Some (lineno, List.map parse_sym syms)
          | [ "weight_arity"; a ] -> weight_arity := int_of a
          | [ "size"; n ] -> size := Some (lineno, int_of n)
          | "name" :: x :: rest ->
              names :=
                (lineno, int_of x, unescape_name (String.concat " " rest))
                :: !names
          | "rel" :: name :: elts ->
              rels := (lineno, name, List.map int_of elts) :: !rels
          | "weight" :: parts -> begin
              match List.rev parts with
              | v :: rev_t ->
                  weights :=
                    (lineno, List.rev_map int_of rev_t, int_of v) :: !weights
              | [] -> fail ~line:lineno "empty weight"
            end
          | _ -> fail ~line:lineno "unknown directive %S" line
        end)
      lines;
    let schema_line, symbols =
      match !schema with Some s -> s | None -> fail "missing schema"
    in
    let size_line, size =
      match !size with Some n -> n | None -> fail "missing size"
    in
    if size < 0 then fail ~line:size_line "negative size %d" size;
    let schema =
      match Schema.make ~weight_arity:!weight_arity symbols with
      | s -> s
      | exception Invalid_argument m -> fail ~line:schema_line "bad schema: %s" m
    in
    let name_arr =
      if !names = [] then None
      else begin
        let a = Array.init size string_of_int in
        List.iter
          (fun (line, x, n) ->
            if x < 0 || x >= size then
              fail ~line "name index %d out of range" x;
            a.(x) <- n)
          !names;
        Some a
      end
    in
    let g0 = Structure.create ?names:name_arr schema size in
    (* Bulk load: validate the lines in file order with exactly the
       checks (and messages) the per-line [Structure.add_tuple] fold
       performed — range, then symbol, then arity — then group by
       relation and build each with one [Relation.of_list] sort instead
       of a million functional inserts. *)
    let by_rel = Hashtbl.create 8 in
    List.iter
      (fun (line, name, elts) ->
        let t = Tuple.of_list elts in
        if Array.exists (fun x -> x < 0 || x >= size) t then
          fail ~line "bad tuple for %s: %s" name
            "Structure.add_tuple: element out of range";
        if not (Schema.mem schema name) then
          fail ~line "unknown relation %S" name;
        if Tuple.arity t <> Schema.arity_of schema name then
          fail ~line "bad tuple for %s: %s" name "Relation.add: arity mismatch";
        let prev = try Hashtbl.find by_rel name with Not_found -> [] in
        Hashtbl.replace by_rel name (t :: prev))
      (List.rev !rels);
    let g =
      ref
        (List.fold_left
           (fun g (s : Schema.symbol) ->
             match Hashtbl.find_opt by_rel s.name with
             | None -> g
             | Some ts ->
                 Structure.set_relation g s.name
                   (Relation.of_list s.arity (List.rev ts)))
           g0 (Schema.symbols schema))
    in
    let w =
      List.fold_left
        (fun w (line, t, v) ->
          match Weighted.set w (Tuple.of_list t) v with
          | w' -> w'
          | exception Invalid_argument m -> fail ~line "bad weight: %s" m)
        (Weighted.create !weight_arity)
        (List.rev !weights)
    in
    match Weighted.make !g w with
    | ws -> Ok ws
    | exception Invalid_argument m -> fail "inconsistent weights: %s" m
  with
  | Fail e -> Error e
  | Invalid_argument m | Failure m -> Error { line = 0; message = m }

let of_string text =
  match of_string_result text with
  | Ok ws -> ws
  | Error e -> raise (Format_error (error_to_string e))

(* ------------------------------------------------------------------ *)
(* Edit scripts: the line-oriented form of Structure.edit lists that
   [wmark update] consumes.  Same comment and escaping conventions as the
   structure format. *)

let edits_to_string edits =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# qpwm edit script\n";
  List.iter
    (fun e ->
      match (e : Structure.edit) with
      | Structure.Insert_tuple (name, t) ->
          add "insert %s %s\n" name
            (String.concat " " (List.map string_of_int (Tuple.to_list t)))
      | Structure.Delete_tuple (name, t) ->
          add "delete %s %s\n" name
            (String.concat " " (List.map string_of_int (Tuple.to_list t)))
      | Structure.Add_element None -> add "add\n"
      | Structure.Add_element (Some n) -> add "add %s\n" (escape_name n)
      | Structure.Remove_element x -> add "remove %d\n" x)
    edits;
  Buffer.contents buf

let edits_of_string_result text =
  let exception Fail of error in
  let fail ~line fmt =
    Printf.ksprintf (fun message -> raise (Fail { line; message })) fmt
  in
  try
    let edits = ref [] in
    List.iteri
      (fun lineno line ->
        let lineno = lineno + 1 in
        let int_of s =
          match int_of_string_opt s with
          | Some n -> n
          | None -> fail ~line:lineno "not an integer: %S" s
        in
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line <> "" then begin
          let words = String.split_on_char ' ' line |> List.filter (( <> ) "") in
          let edit =
            match words with
            | "insert" :: name :: (_ :: _ as elts) ->
                Structure.Insert_tuple
                  (name, Tuple.of_list (List.map int_of elts))
            | "delete" :: name :: (_ :: _ as elts) ->
                Structure.Delete_tuple
                  (name, Tuple.of_list (List.map int_of elts))
            | [ "add" ] -> Structure.Add_element None
            | "add" :: rest ->
                Structure.Add_element
                  (Some (unescape_name (String.concat " " rest)))
            | [ "remove"; x ] -> Structure.Remove_element (int_of x)
            | _ -> fail ~line:lineno "unknown edit %S" line
          in
          edits := edit :: !edits
        end)
      (String.split_on_char '\n' text);
    Ok (List.rev !edits)
  with Fail e -> Error e

let edits_of_string text =
  match edits_of_string_result text with
  | Ok es -> es
  | Error e -> raise (Format_error (error_to_string e))

let save path ws =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ws))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = of_string (read_file path)

let load_result path =
  match read_file path with
  | text -> of_string_result text
  | exception Sys_error m -> Error { line = 0; message = m }
