(** Gaifman graphs, distances, spheres (Section 3).

    Two elements are adjacent in the Gaifman graph of G iff they co-occur in
    some tuple of some relation.  The locality machinery of Theorem 3 (and
    the class STRUCT_k of structures with Gaifman graph of degree <= k)
    lives on top of this module. *)

type t
(** A CSR (compressed sparse row) view of the Gaifman graph of one
    structure: a flat sorted neighbor array plus per-element offsets, so
    traversal allocates nothing. *)

val of_structure : Structure.t -> t

val of_tuples : n:int -> Tuple.t list -> t
(** The Gaifman graph of an explicit tuple list over universe [0..n-1] —
    the co-occurrence graph of an induced substructure given its member
    tuples, without materializing the substructure. *)

val refresh : Structure.t -> prev:t -> dirty:int list -> t
(** [refresh g ~prev ~dirty] is [of_structure g], computed by copying every
    adjacency row of [prev] whose element is not in [dirty] (an edge can only
    change when a tuple containing both endpoints is edited, and every edit
    dirties its tuple's elements — see {!Structure.apply_edit}).  [prev] must
    be the Gaifman graph of the pre-edit structure and [dirty] the dirty set
    the edits reported; elements outside [prev]'s universe count as dirty. *)

val size : t -> int

val neighbors : t -> int -> int list
(** Sorted, without self-loops or duplicates. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Iterate a row in ascending order without materializing a list. *)

val degree : t -> int -> int

val degrees : t -> int array
(** All degrees, indexed by element. *)

val max_degree : t -> int
(** The k for which the structure belongs to STRUCT_k (0 for edgeless). *)

val reach : t -> sources:int list -> bound:int -> int list
(** Multi-source bounded BFS: all elements at distance [<= bound] from some
    source ([bound < 0] means unbounded), sorted.  Out-of-range sources are
    ignored — convenient when probing an old graph with post-edit ids. *)

val distance : t -> int -> int -> int option
(** BFS distance; [None] when disconnected (the paper's d(a,b) = infinity). *)

val sphere : t -> rho:int -> int -> int list
(** [sphere g ~rho a] is S_rho(a) = elements at distance <= rho, sorted. *)

val sphere_array : t -> rho:int -> int -> int array
(** [sphere] as a sorted array — the representation the neighborhood
    indexer's per-element cache stores. *)

val sphere_tuple : t -> rho:int -> Tuple.t -> int list
(** S_rho of a tuple: union of the element spheres, sorted. *)

val connected_components : t -> int list list

val component_labels : t -> int array * int
(** [(comp, ncomps)] with [comp.(x)] the dense id of [x]'s connected
    component; ids follow the order of {!connected_components} (each
    component numbered at its lowest element).  The serving layer shards
    index and detect work along these labels — a rho-sphere never
    crosses a component, so per-component results merge exactly
    (DESIGN.md 5.11). *)

val local_groups : t -> max_size:int -> int list array
(** Deterministic partition of the universe into {e Gaifman-local groups}:
    each group is a connected (in this graph) set of at most [max_size]
    elements, grown by BFS from the lowest unassigned element, neighbors
    in ascending order; isolated elements form singleton groups.  Groups
    never span connected components, so by Gaifman locality an edit can
    only dirty the groups whose elements its dirty set touches (plus
    their rho-spheres).  The recovery layer partitions its integrity
    certificates along these groups.  Sorted members, groups in seed
    (first-element) order; every element belongs to exactly one group. *)
