(** Gaifman graphs, distances, spheres (Section 3).

    Two elements are adjacent in the Gaifman graph of G iff they co-occur in
    some tuple of some relation.  The locality machinery of Theorem 3 (and
    the class STRUCT_k of structures with Gaifman graph of degree <= k)
    lives on top of this module. *)

type t
(** An adjacency-list view of the Gaifman graph of one structure. *)

val of_structure : Structure.t -> t

val refresh : Structure.t -> prev:t -> dirty:int list -> t
(** [refresh g ~prev ~dirty] is [of_structure g], computed by copying every
    adjacency row of [prev] whose element is not in [dirty] (an edge can only
    change when a tuple containing both endpoints is edited, and every edit
    dirties its tuple's elements — see {!Structure.apply_edit}).  [prev] must
    be the Gaifman graph of the pre-edit structure and [dirty] the dirty set
    the edits reported; elements outside [prev]'s universe count as dirty. *)

val size : t -> int

val neighbors : t -> int -> int list
(** Sorted, without self-loops or duplicates. *)

val degree : t -> int -> int

val max_degree : t -> int
(** The k for which the structure belongs to STRUCT_k (0 for edgeless). *)

val reach : t -> sources:int list -> bound:int -> int list
(** Multi-source bounded BFS: all elements at distance [<= bound] from some
    source ([bound < 0] means unbounded), sorted.  Out-of-range sources are
    ignored — convenient when probing an old graph with post-edit ids. *)

val distance : t -> int -> int -> int option
(** BFS distance; [None] when disconnected (the paper's d(a,b) = infinity). *)

val sphere : t -> rho:int -> int -> int list
(** [sphere g ~rho a] is S_rho(a) = elements at distance <= rho, sorted. *)

val sphere_tuple : t -> rho:int -> Tuple.t -> int list
(** S_rho of a tuple: union of the element spheres, sorted. *)

val connected_components : t -> int list list
