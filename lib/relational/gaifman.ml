type t = { adj : int array array }

module Iset = Set.Make (Int)

let of_structure g =
  let n = Structure.size g in
  let sets = Array.make n Iset.empty in
  let add_edge a b =
    if a <> b then begin
      sets.(a) <- Iset.add b sets.(a);
      sets.(b) <- Iset.add a sets.(b)
    end
  in
  Structure.fold_relations
    (fun _ r () ->
      Relation.iter
        (fun t ->
          let k = Array.length t in
          for i = 0 to k - 1 do
            for j = i + 1 to k - 1 do
              add_edge t.(i) t.(j)
            done
          done)
        r)
    g ();
  { adj = Array.map (fun s -> Array.of_list (Iset.elements s)) sets }

(* Incremental rebuild: only the adjacency rows of dirty elements can differ
   from [prev] (an edge {y,z} appears or disappears only with a tuple
   containing both, and every such edit dirties its endpoints), so we scan
   the relations once for tuples touching the dirty set and copy every other
   row.  Elements beyond [prev]'s universe are treated as dirty. *)
let refresh g ~prev ~dirty =
  let n = Structure.size g in
  let prev_n = Array.length prev.adj in
  let is_dirty = Array.make n false in
  List.iter (fun x -> if x >= 0 && x < n then is_dirty.(x) <- true) dirty;
  for a = prev_n to n - 1 do
    is_dirty.(a) <- true
  done;
  let sets = Array.make n Iset.empty in
  let add a b = if a <> b && is_dirty.(a) then sets.(a) <- Iset.add b sets.(a) in
  Structure.fold_relations
    (fun _ r () ->
      Relation.iter
        (fun t ->
          if Array.exists (fun x -> is_dirty.(x)) t then
            let k = Array.length t in
            for i = 0 to k - 1 do
              for j = 0 to k - 1 do
                if i <> j then add t.(i) t.(j)
              done
            done)
        r)
    g ();
  {
    adj =
      Array.init n (fun a ->
          if is_dirty.(a) then Array.of_list (Iset.elements sets.(a))
          else prev.adj.(a));
  }

let size g = Array.length g.adj

let neighbors g a = Array.to_list g.adj.(a)

let degree g a = Array.length g.adj.(a)

let max_degree g =
  Array.fold_left (fun acc row -> max acc (Array.length row)) 0 g.adj

(* BFS from [a], visiting nodes at distance <= bound (or all if bound < 0);
   calls [visit node dist] once per reached node, in distance order. *)
let bfs g a ~bound visit =
  let n = size g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(a) <- 0;
  Queue.add a q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    visit u dist.(u);
    if bound < 0 || dist.(u) < bound then
      Array.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        g.adj.(u)
  done;
  dist

let reach g ~sources ~bound =
  let n = size g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun a ->
      if a >= 0 && a < n && dist.(a) < 0 then begin
        dist.(a) <- 0;
        Queue.add a q
      end)
    sources;
  let acc = ref [] in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    acc := u :: !acc;
    if bound < 0 || dist.(u) < bound then
      Array.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        g.adj.(u)
  done;
  List.sort compare !acc

let distance g a b =
  if a = b then Some 0
  else
    let dist = bfs g a ~bound:(-1) (fun _ _ -> ()) in
    if dist.(b) < 0 then None else Some dist.(b)

let sphere g ~rho a =
  let acc = ref [] in
  ignore (bfs g a ~bound:rho (fun u _ -> acc := u :: !acc));
  List.sort compare !acc

let sphere_tuple g ~rho t =
  let s =
    Array.fold_left
      (fun acc a -> Iset.union acc (Iset.of_list (sphere g ~rho a)))
      Iset.empty t
  in
  Iset.elements s

let connected_components g =
  let n = size g in
  let seen = Array.make n false in
  let comps = ref [] in
  for a = 0 to n - 1 do
    if not seen.(a) then begin
      let comp = ref [] in
      ignore
        (bfs g a ~bound:(-1) (fun u _ ->
             seen.(u) <- true;
             comp := u :: !comp));
      comps := List.sort compare !comp :: !comps
    end
  done;
  List.rev !comps
