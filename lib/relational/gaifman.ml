(* CSR (compressed sparse row) adjacency: one flat sorted neighbor array
   plus an offset array, so BFS and refinement walk int arrays with no
   per-node list allocation.  Rows are sorted and duplicate-free; the
   public API (sorted neighbor lists, spheres, ...) is unchanged. *)

type t = { off : int array; nbr : int array }

let size g = Array.length g.off - 1

let degree g a = g.off.(a + 1) - g.off.(a)

let degrees g = Array.init (size g) (fun a -> degree g a)

let neighbors g a = Array.to_list (Array.sub g.nbr g.off.(a) (degree g a))

let iter_neighbors g a f =
  for i = g.off.(a) to g.off.(a + 1) - 1 do
    f g.nbr.(i)
  done

let max_degree g =
  let best = ref 0 in
  for a = 0 to size g - 1 do
    if degree g a > !best then best := degree g a
  done;
  !best

let icmp (a : int) b = compare a b

(* Counting-sort [m] directed edges (self-loops already excluded) into
   rows, then sort and dedupe each row in place. *)
let csr_of_edges n src dst m =
  let cnt = Array.make (n + 1) 0 in
  for e = 0 to m - 1 do
    cnt.(src.(e) + 1) <- cnt.(src.(e) + 1) + 1
  done;
  for a = 1 to n do
    cnt.(a) <- cnt.(a) + cnt.(a - 1)
  done;
  let pos = Array.copy cnt in
  let row = Array.make m 0 in
  for e = 0 to m - 1 do
    let a = src.(e) in
    row.(pos.(a)) <- dst.(e);
    pos.(a) <- pos.(a) + 1
  done;
  let off = Array.make (n + 1) 0 in
  let nbr = Array.make m 0 in
  let w = ref 0 in
  for a = 0 to n - 1 do
    off.(a) <- !w;
    let lo = cnt.(a) and hi = cnt.(a + 1) in
    if hi > lo then begin
      let slice = Array.sub row lo (hi - lo) in
      Array.sort icmp slice;
      Array.iter
        (fun v ->
          if !w = off.(a) || nbr.(!w - 1) <> v then begin
            nbr.(!w) <- v;
            incr w
          end)
        slice
    end
  done;
  off.(n) <- !w;
  { off; nbr = Array.sub nbr 0 !w }

(* Shared two-pass edge gather over flat tuple rows: the callback is
   invoked twice with identical enumerations of (buffer, offset, arity)
   rows — first to count directed pairs exactly, then to emit them.
   Feeding it [Relation.iter_flat] means a million-tuple structure is
   scanned with no per-tuple allocation at all. *)
let build n iter_rows =
  let m = ref 0 in
  iter_rows (fun _ _ k -> m := !m + (k * (k - 1)));
  let src = Array.make (max 1 !m) 0 and dst = Array.make (max 1 !m) 0 in
  let p = ref 0 in
  iter_rows (fun (buf : int array) off k ->
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          if i <> j && buf.(off + i) <> buf.(off + j) then begin
            src.(!p) <- buf.(off + i);
            dst.(!p) <- buf.(off + j);
            incr p
          end
        done
      done);
  csr_of_edges n src dst !p

let of_structure g =
  build (Structure.size g) (fun f ->
      Structure.fold_relations
        (fun _ r () ->
          let a = Relation.arity r in
          Relation.iter_flat (fun buf off -> f buf off a) r)
        g ())

let of_tuples ~n ts =
  build n (fun f -> List.iter (fun t -> f t 0 (Array.length t)) ts)

(* Incremental rebuild: only the adjacency rows of dirty elements can differ
   from [prev] (an edge {y,z} appears or disappears only with a tuple
   containing both, and every such edit dirties its endpoints), so we scan
   the relations once for tuples touching the dirty set, counting-sort the
   dirty rows, and blit every other row from [prev].  Elements beyond
   [prev]'s universe are treated as dirty. *)
let refresh g ~prev ~dirty =
  let n = Structure.size g in
  let prev_n = size prev in
  let is_dirty = Array.make n false in
  List.iter (fun x -> if x >= 0 && x < n then is_dirty.(x) <- true) dirty;
  for a = prev_n to n - 1 do
    is_dirty.(a) <- true
  done;
  let fresh =
    build n (fun f ->
        Structure.fold_relations
          (fun _ r () ->
            let a = Relation.arity r in
            Relation.iter_flat
              (fun buf off ->
                let touches = ref false in
                for p = off to off + a - 1 do
                  if is_dirty.(buf.(p)) then touches := true
                done;
                if !touches then f buf off a)
              r)
          g ())
  in
  let off = Array.make (n + 1) 0 in
  for a = 0 to n - 1 do
    let d = if is_dirty.(a) then degree fresh a else degree prev a in
    off.(a + 1) <- off.(a) + d
  done;
  let nbr = Array.make off.(n) 0 in
  for a = 0 to n - 1 do
    let source, lo =
      if is_dirty.(a) then (fresh.nbr, fresh.off.(a)) else (prev.nbr, prev.off.(a))
    in
    Array.blit source lo nbr off.(a) (off.(a + 1) - off.(a))
  done;
  { off; nbr }

(* BFS from [a], visiting nodes at distance <= bound (or all if bound < 0);
   calls [visit node dist] once per reached node, in distance order. *)
let bfs g a ~bound visit =
  let n = size g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(a) <- 0;
  Queue.add a q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    visit u dist.(u);
    if bound < 0 || dist.(u) < bound then
      iter_neighbors g u (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
  done;
  dist

let reach g ~sources ~bound =
  let n = size g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun a ->
      if a >= 0 && a < n && dist.(a) < 0 then begin
        dist.(a) <- 0;
        Queue.add a q
      end)
    sources;
  let acc = ref [] in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    acc := u :: !acc;
    if bound < 0 || dist.(u) < bound then
      iter_neighbors g u (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
  done;
  List.sort compare !acc

let distance g a b =
  if a = b then Some 0
  else
    let dist = bfs g a ~bound:(-1) (fun _ _ -> ()) in
    if dist.(b) < 0 then None else Some dist.(b)

(* Bounded BFS with a local visited table: spheres are degree-bounded
   and small, and this runs once per element of the universe — [bfs]'s
   O(n) distance array per call would make sphere extraction quadratic
   over the whole instance. *)
let sphere_array g ~rho a =
  let dist = Hashtbl.create 16 in
  let q = Queue.create () in
  Hashtbl.replace dist a 0;
  Queue.add a q;
  let acc = ref [ a ] and count = ref 1 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let du = Hashtbl.find dist u in
    if du < rho then
      iter_neighbors g u (fun v ->
          if not (Hashtbl.mem dist v) then begin
            Hashtbl.replace dist v (du + 1);
            Queue.add v q;
            acc := v :: !acc;
            incr count
          end)
  done;
  let s = Array.make !count 0 in
  List.iter
    (fun u ->
      decr count;
      s.(!count) <- u)
    !acc;
  Array.sort icmp s;
  s

let sphere g ~rho a = Array.to_list (sphere_array g ~rho a)

module Iset = Set.Make (Int)

let sphere_tuple g ~rho t =
  let s =
    Array.fold_left
      (fun acc a -> Iset.union acc (Iset.of_list (sphere g ~rho a)))
      Iset.empty t
  in
  Iset.elements s

(* Component labeling without the per-component lists: ids are dense and
   assigned in order of each component's lowest element.  One shared
   queue and label array across all components — [bfs] would allocate an
   O(n) distance array per component, which is quadratic on a structure
   made of hundreds of thousands of small components (the serve layer's
   shard plan labels million-element instances on every [gen]). *)
let component_labels g =
  let n = size g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  let q = Queue.create () in
  for a = 0 to n - 1 do
    if comp.(a) < 0 then begin
      let c = !next in
      incr next;
      comp.(a) <- c;
      Queue.add a q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        iter_neighbors g u (fun v ->
            if comp.(v) < 0 then begin
              comp.(v) <- c;
              Queue.add v q
            end)
      done
    end
  done;
  (comp, !next)

let connected_components g =
  let comp, ncomps = component_labels g in
  let members = Array.make ncomps [] in
  (* descending scan so each component's list comes out ascending *)
  for a = size g - 1 downto 0 do
    members.(comp.(a)) <- a :: members.(comp.(a))
  done;
  Array.to_list members

(* Gaifman-local groups: BFS growth from the lowest unassigned element,
   capped at [max_size] members.  The frontier is a FIFO over ascending
   neighbor rows, so the partition is a deterministic function of the
   graph alone — the marker and the auditor derive the same groups
   independently, exactly like the scheme's pair list. *)
let local_groups g ~max_size =
  if max_size < 1 then invalid_arg "Gaifman.local_groups: max_size < 1";
  let n = size g in
  let assigned = Array.make n false in
  let groups = ref [] in
  for seed = 0 to n - 1 do
    if not assigned.(seed) then begin
      let members = ref [] and count = ref 0 in
      let q = Queue.create () in
      assigned.(seed) <- true;
      Queue.add seed q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        members := u :: !members;
        incr count;
        iter_neighbors g u (fun v ->
            if (not assigned.(v)) && !count + Queue.length q < max_size then begin
              assigned.(v) <- true;
              Queue.add v q
            end)
      done;
      groups := List.sort icmp !members :: !groups
    end
  done;
  Array.of_list (List.rev !groups)
