(** Finite structures (database instances).

    A structure interprets every relation symbol of a schema over the finite
    universe [{0, ..., size-1}].  Elements can optionally carry display names
    (["India discovery"], ["F21"], ...) so the worked examples of the paper
    print exactly like its tables; names never influence semantics. *)

type t

val create : ?names:string array -> Schema.t -> int -> t
(** [create schema size] is the structure with empty relations.  When given,
    [names] must have length [size]. *)

val schema : t -> Schema.t
val size : t -> int
(** Universe cardinality. *)

val universe : t -> int list
(** [0; ...; size-1]. *)

val name_of : t -> int -> string
(** Display name; defaults to the decimal element id. *)

val elt_of_name : t -> string -> int
(** Inverse lookup. @raise Not_found if no element has that name. *)

val has_names : t -> bool
(** Does the structure carry an explicit names array? *)

val with_default_names : t -> t
(** Materialize the implicit decimal names into an explicit names array (a
    no-op when names are already present).  Structural attacks call this
    before renumbering so element identity survives as a name — the moral
    equivalent of a row keeping its key column when other rows are
    deleted. *)

val with_names : t -> string array -> t
(** Replace the names array; must have length [size]. *)

val relation : t -> string -> Relation.t
(** Interpretation of a symbol. @raise Not_found on unknown symbols. *)

val add_tuple : t -> string -> Tuple.t -> t
(** Functional update; validates arity and element range. *)

val add_pairs : t -> string -> (int * int) list -> t

val set_relation : t -> string -> Relation.t -> t

val fold_relations : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a

val tuples_count : t -> int
(** Total number of tuples across all relations. *)

val induced : t -> int list -> t * int array
(** [induced g sub] is the substructure induced on the (deduplicated)
    elements of [sub], renamed to [0 .. k-1] in the order given, together
    with the renaming table [old.(new_id) = old_id].  Keeps the schema. *)

val equal : t -> t -> bool
(** Same size and identical relation interpretations (names ignored). *)

val pp : Format.formatter -> t -> unit
