(** Finite structures (database instances).

    A structure interprets every relation symbol of a schema over the finite
    universe [{0, ..., size-1}].  Elements can optionally carry display names
    (["India discovery"], ["F21"], ...) so the worked examples of the paper
    print exactly like its tables; names never influence semantics. *)

type t

val create : ?names:string array -> Schema.t -> int -> t
(** [create schema size] is the structure with empty relations.  When given,
    [names] must have length [size]. *)

val schema : t -> Schema.t
val size : t -> int
(** Universe cardinality. *)

val universe : t -> int list
(** [0; ...; size-1].  Allocates a fresh list per call — hot loops
    should use {!iter_universe}/{!fold_universe} instead. *)

val iter_universe : (int -> unit) -> t -> unit
(** [iter_universe f g] calls [f] on [0 .. size-1] ascending, without
    materializing the universe list. *)

val fold_universe : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending allocation-free fold over [0 .. size-1]. *)

val name_of : t -> int -> string
(** Display name; defaults to the decimal element id. *)

val elt_of_name : t -> string -> int
(** Inverse lookup, O(1) via an index built when names are installed;
    the lowest id wins when names collide. @raise Not_found if no
    element has that name. *)

val has_names : t -> bool
(** Does the structure carry an explicit names array? *)

val with_default_names : t -> t
(** Materialize the implicit decimal names into an explicit names array (a
    no-op when names are already present).  Structural attacks call this
    before renumbering so element identity survives as a name — the moral
    equivalent of a row keeping its key column when other rows are
    deleted. *)

val with_names : t -> string array -> t
(** Replace the names array; must have length [size]. *)

val relation : t -> string -> Relation.t
(** Interpretation of a symbol. @raise Not_found on unknown symbols. *)

val add_tuple : t -> string -> Tuple.t -> t
(** Functional update; validates arity and element range. *)

val add_pairs : t -> string -> (int * int) list -> t

val set_relation : t -> string -> Relation.t -> t

val fold_relations : (string -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a

val tuples_count : t -> int
(** Total number of tuples across all relations. *)

(** {1 Edits}

    The update engine's vocabulary: functional single-step edits that also
    report which elements they {e dirty} — the seeds of the Gaifman-local
    maintenance in {!Wm_relational.Gaifman.refresh} and
    {!Wm_relational.Neighborhood.reindex}.  An element is dirty when a
    tuple mentioning it appeared or disappeared, or when it entered the
    universe; by Gaifman locality, only tuples whose rho-sphere touches a
    dirty element can change neighborhood type (DESIGN.md 5.7). *)

type edit =
  | Insert_tuple of string * Tuple.t
  | Delete_tuple of string * Tuple.t
  | Add_element of string option
      (** Appends one element (id = old size), optionally named. *)
  | Remove_element of int
      (** Must be the last element (id = size-1), so surviving ids keep
          their meaning; incident tuples are dropped with it. *)

val apply_edit : t -> edit -> t * int list
(** The edited structure and the sorted dirty-element set (ids valid in
    the {e new} universe).  Deleting an absent tuple is a no-op with an
    empty dirty set.  @raise Invalid_argument on out-of-range elements,
    unknown relation symbols, or removing a non-last element. *)

val apply_edits : t -> edit list -> t * int list
(** Left-to-right {!apply_edit}; the union of the dirty sets, restricted
    to elements that still exist in the final universe. *)

val induced : t -> int list -> t * int array
(** [induced g sub] is the substructure induced on the (deduplicated)
    elements of [sub], renamed to [0 .. k-1] in the order given, together
    with the renaming table [old.(new_id) = old_id].  Keeps the schema. *)

val equal : t -> t -> bool
(** Same size and identical relation interpretations (names ignored). *)

val pp : Format.formatter -> t -> unit
