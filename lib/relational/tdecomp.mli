(** Elimination-ordering tree decompositions over CSR Gaifman graphs.

    The shared engine behind {!Wm_cliquewidth.Treewidth} (whole
    structures, Theorem 4 tooling) and the bounded-width
    neighborhood-typing fast path (per-sphere sub-Gaifman graphs,
    DESIGN.md 5.14).  It lives here, below the cliquewidth layer,
    because [Neighborhood] cannot depend on [wm_cliquewidth].

    All tie-breaks go to the lowest vertex id, so every decomposition is
    a deterministic function of its input graph — the canonical-code
    machinery of the fast path depends on that. *)

type t = {
  bags : int array array;
      (** bag of elimination step [s]: the elimination clique, sorted *)
  edges : (int * int) list;  (** tree edges between bag indices *)
  step_of : int array;  (** elimination step (= own bag) of each vertex *)
  width : int;  (** max bag size - 1 (0 for the empty graph) *)
}

type heuristic = Min_degree | Min_fill

val width : t -> int

val eliminate : ?heuristic:heuristic -> ?cap:int -> Gaifman.t -> t
(** Eliminate all vertices in heuristic order ([Min_degree] by default;
    [Min_fill] picks the vertex adding the fewest fill edges, degree
    then id as tie-breaks), turning each eliminated vertex's remaining
    neighborhood into a clique.  Bags are the elimination cliques; each
    bag attaches to the bag of its earliest-eliminated remaining member,
    and component-final bags glue to the last bag, so the result is one
    tree even on disconnected graphs.

    With [cap], elimination aborts as soon as a bag would exceed width
    [cap]: the result then has [width = cap + 1] and empty [bags] /
    [step_of] — a width probe, not a decomposition (test with
    {!exceeded}).  @raise Invalid_argument on a negative [cap]. *)

val eliminate_masks : ?heuristic:heuristic -> ?cap:int -> int array -> t
(** {!eliminate} on bitmask adjacency: [adj.(v)] has bit [w] set iff
    [{v, w}] is an edge (self-bits ignored; the mask array is copied,
    not consumed).  This is the word-sized fast path the neighborhood
    indexer probes every sphere with — identical output to building a
    {!Gaifman.t} and calling {!eliminate}.  @raise Invalid_argument on
    more than 62 vertices or a negative [cap]. *)

val exceeded : cap:int -> t -> bool
(** Whether an [eliminate ~cap] run aborted (width above the cap). *)

val canonical_labels : t -> colors:int array -> root:int -> int array
(** [canonical_labels t ~colors ~root] is a permutation of [0..n-1]
    relabeling the decomposed graph's vertices canonically: the bag tree
    is rooted at [root]'s own elimination bag, every bag gets an
    AHU-style subtree code (bottom-up, children folded in sorted order,
    bag members contributing the iso-invariant [colors]), and a
    depth-first walk — children in code order, members in color order —
    assigns dense labels at first sight.  Isomorphic pointed spheres
    whose decompositions agree are relabeled onto literally equal
    structures, letting callers compare flat encodings instead of
    running isomorphism tests.

    @raise Invalid_argument if [root] or a bag edge is out of range, if
    [colors] has the wrong length, if the bag graph is disconnected, or
    if [t] is an aborted width probe. *)
