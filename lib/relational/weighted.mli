(** Weight assignments and weighted structures.

    A weighted structure (G, W) pairs a finite structure with a weight
    assignment W : U^s -> N (Section 1).  The watermarking schemes perturb
    weights of s-tuples by +-1 while leaving the structure — the parameter
    part — untouched, so weights live in their own value, sharing the
    structure.

    Distortion vocabulary (Section 1): W' is a {e c-local distortion} of W
    when |W(w) - W'(w)| <= c for every s-tuple w; the {e d-global}
    assumption additionally bounds the change of every query weight f(a) and
    is checked by {!Wm_watermark.Distortion} because it needs a query. *)

type t
(** A weight assignment.  Tuples without an explicit entry weigh
    [default] (0 unless stated otherwise).  Flat-memory representation
    (DESIGN.md 5.12): explicit entries are a sorted contiguous key
    array plus an unboxed Bigarray of weights; behavior matches the
    frozen {!Weighted_ref}. *)

val create : ?default:int -> int -> t
(** [create arity] is the empty assignment on [arity]-tuples. *)

val arity : t -> int

val default : t -> int
(** The weight of tuples without an explicit entry. *)

val get : t -> Tuple.t -> int
val set : t -> Tuple.t -> int -> t
(** Functional update; validates arity. *)

val set_elt : t -> int -> int -> t
(** [set_elt w x v] abbreviates [set w [|x|] v] for the common s = 1 case. *)

val get_elt : t -> int -> int

val of_list : ?default:int -> int -> (Tuple.t * int) list -> t

val bindings : t -> (Tuple.t * int) list
(** Explicit entries, ascending tuple order. *)

val iter_bindings_flat : (int array -> int -> int -> unit) -> t -> unit
(** [iter_bindings_flat f w] calls [f buf off v] once per explicit entry
    in ascending tuple order; the key occupies [buf.(off) .. buf.(off +
    arity w - 1)].  Zero per-entry allocation on a bulk-built value; the
    buffer must not be mutated. *)

val support : t -> Tuple.t list
(** Tuples with an explicit entry. *)

val add_delta : t -> Tuple.t -> int -> t
(** [add_delta w t d] adds [d] to the weight of [t]. *)

val apply_marks : t -> (Tuple.t * int) list -> t
(** Adds every listed delta; the list is a mark in the paper's sense. *)

val local_distance : t -> t -> int
(** sup-distance max_w |W(w) - W'(w)| over {e all} tuples: the union of
    supports, plus the [|default - default'|] delta every off-support
    tuple contributes.  This is the smallest c for which the c-local
    distortion assumption holds. *)

val is_local_distortion : c:int -> t -> t -> bool
(** Does the second assignment satisfy the c-local assumption wrt the
    first? *)

val equal : t -> t -> bool
(** Extensional equality on the union of supports. *)

val pp : Format.formatter -> t -> unit

type structure = { graph : Structure.t; weights : t }
(** A weighted structure (G, W). *)

val make : Structure.t -> t -> structure
(** Validates that the weight arity matches the schema and every supported
    tuple lies in the universe. *)

val weigh : (int -> int) -> Structure.t -> structure
(** [weigh f g] puts weight [f x] on every element [x] — s = 1
    convenience. *)
