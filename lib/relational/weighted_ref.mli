(** Frozen pre-flat weight-assignment representation: the balanced-map
    implementation {!Weighted} replaced, kept as the behavioral
    reference for equivalence tests and the E26 baseline.  Carries the
    same [local_distance] default-delta bugfix as the live module (see
    the .ml header); otherwise same contracts as the matching subset of
    {!Weighted}. *)

type t

val create : ?default:int -> int -> t
val arity : t -> int
val default : t -> int

val get : t -> Tuple.t -> int
val set : t -> Tuple.t -> int -> t
val set_elt : t -> int -> int -> t
val get_elt : t -> int -> int

val of_list : ?default:int -> int -> (Tuple.t * int) list -> t
val bindings : t -> (Tuple.t * int) list
val support : t -> Tuple.t list

val add_delta : t -> Tuple.t -> int -> t
val apply_marks : t -> (Tuple.t * int) list -> t

val local_distance : t -> t -> int
val is_local_distortion : c:int -> t -> t -> bool
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
