(** Frozen pre-flat relation representation (PR 8's [Neighborhood_ref]
    analogue): the balanced-tree implementation [Relation] replaced,
    kept as the behavioral reference for equivalence tests and the E26
    baseline.  Same contracts as the matching subset of {!Relation}. *)

type t

val empty : int -> t
val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val mem : Tuple.t -> t -> bool
val add : Tuple.t -> t -> t
val remove : Tuple.t -> t -> t

val of_list : int -> Tuple.t list -> t
val of_pairs : (int * int) list -> t
val to_list : t -> Tuple.t list

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Tuple.t -> bool) -> t -> t
val for_all : (Tuple.t -> bool) -> t -> bool
val exists : (Tuple.t -> bool) -> t -> bool

val union : t -> t -> t
val equal : t -> t -> bool
val restrict : (int -> bool) -> t -> t
val rename : (int -> int) -> t -> t
val max_elt : t -> int

val pp : Format.formatter -> t -> unit
