(* Exact isomorphism by backtracking, pruned by *exact* partition
   refinement (1-WL with dense canonical renumbering, the refine-once
   discipline of nauty/Traces) instead of the former hashed refinement:
   each round maps every node to the signature (own color, sorted
   neighbor-color multiset), renumbers the distinct signatures densely in
   sorted order, and stops at the true fixpoint — the class count no
   longer grows — rather than running size-many hash rounds.  The dense
   renumbering is a function of iso-invariant data only, so colors of
   isomorphic inputs agree pointwise under any center-respecting
   isomorphism, which keeps both the candidate pruning and the
   certificate sound. *)

module Obs = Wm_obs.Obs

let c_refine_rounds = Obs.counter "nbh.refine_rounds"

(* Deep order-sensitive mixer (FNV-1a over native ints).  The default
   [Hashtbl.hash] examines only ~10 meaningful nodes, so long
   degree/census lists collide into coarse buckets on large spheres;
   folding every component keeps buckets fine. *)
let mix h x = (h lxor x) * 0x01000193 land max_int

let mix_list h xs = List.fold_left mix h xs

type prep = {
  g : Structure.t;
  dist : int list;
  gf : Gaifman.t;
  colors : int array;  (* stable exact refinement, canonical dense ids *)
  ncolors : int;
  hs : int array;
      (* deep per-node content hash of the same refinement history:
         canonical colors order the classes but forget what the classes
         looked like, so the certificate also folds the signature
         {e content} — pointwise preserved by any center-respecting
         isomorphism, hence sound, and finer than counts alone *)
  cert : int;
}

let cmp_ia (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let r = ref 0 and i = ref 0 in
    while !r = 0 && !i < la do
      r := compare a.(!i) b.(!i);
      incr i
    done;
    !r
  end

(* In-place insertion sort of [a.(lo..hi)] — signatures carry one bounded
   adjacency row each, where this beats the general sort. *)
let isort (a : int array) lo hi =
  for i = lo + 1 to hi do
    let v = a.(i) in
    let j = ref (i - 1) in
    while !j >= lo && a.(!j) > v do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- v
  done

(* Canonical dense renumbering: distinct signatures sorted (content-only
   order), ids assigned in that order.  One permutation sort plus a
   linear sweep — no hashing of the signatures.  Signatures are flat int
   arrays, compared element-wise. *)
let dense_renumber sigs =
  let n = Array.length sigs in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> cmp_ia sigs.(i) sigs.(j)) idx;
  let colors = Array.make n 0 in
  let k = ref 0 in
  Array.iteri
    (fun p i ->
      if p > 0 && cmp_ia sigs.(idx.(p - 1)) sigs.(i) <> 0 then incr k;
      colors.(i) <- !k)
    idx;
  (colors, if n = 0 then 0 else !k + 1)

let initial_colors g dist =
  let n = Structure.size g in
  let dist_ix = Array.make n (-1) in
  List.iteri (fun i a -> dist_ix.(a) <- i) dist;
  (* Incidence as a count vector per node, indexed by (relation, position)
     in schema fold order — the same order for every structure over one
     schema, so the signatures stay content-canonical while comparing as
     flat int arrays instead of sorted (name, pos) lists. *)
  let ncodes =
    Structure.fold_relations (fun _ r acc -> acc + Relation.arity r) g 0
  in
  let codehash = Array.make (max 1 ncodes) 0 in
  let counts = Array.init n (fun _ -> Array.make ncodes 0) in
  let (_ : int) =
    Structure.fold_relations
      (fun name r base ->
        let h = Hashtbl.hash name in
        let ar = Relation.arity r in
        for pos = 0 to ar - 1 do
          codehash.(base + pos) <- mix h pos
        done;
        Relation.iter_flat
          (fun buf off ->
            for pos = 0 to ar - 1 do
              let a = buf.(off + pos) in
              counts.(a).(base + pos) <- counts.(a).(base + pos) + 1
            done)
          r;
        base + ar)
      g 0
  in
  let hs =
    Array.init n (fun a ->
        let h = ref (mix 0x811c9dc5 dist_ix.(a)) in
        let ca = counts.(a) in
        for c = 0 to ncodes - 1 do
          if ca.(c) > 0 then h := mix (mix !h codehash.(c)) ca.(c)
        done;
        !h)
  in
  let sigs =
    Array.init n (fun a ->
        let s = Array.make (ncodes + 1) dist_ix.(a) in
        Array.blit counts.(a) 0 s 1 ncodes;
        s)
  in
  (dense_renumber sigs, hs)

(* Refine to the exact fixpoint.  Refinement only ever splits classes, so
   the partition is stable as soon as one round leaves the class count
   unchanged; the colors of the previous round are then already stable
   and canonical. *)
let refine_fixpoint gf ((colors0, k0), hs0) =
  let n = Array.length colors0 in
  let colors = ref colors0 and k = ref k0 and hs = ref hs0 in
  let rounds = ref 0 in
  let stable = ref (n = 0 || !k = n) in
  while not !stable do
    let sigs =
      Array.init n (fun a ->
          let deg = Gaifman.degree gf a in
          let s = Array.make (deg + 1) !colors.(a) in
          let i = ref 1 in
          Gaifman.iter_neighbors gf a (fun v ->
              s.(!i) <- !colors.(v);
              incr i);
          isort s 1 deg;
          s)
    in
    let colors', k' = dense_renumber sigs in
    incr rounds;
    if k' = !k then stable := true
    else begin
      (* content hashes evolve in lock-step: same signature, deep-mixed
         (skipped on the final no-split round, whose colors are also
         discarded) *)
      let cur = !hs in
      hs :=
        Array.init n (fun a ->
            let deg = Gaifman.degree gf a in
            let nh = Array.make deg 0 in
            let i = ref 0 in
            Gaifman.iter_neighbors gf a (fun v ->
                nh.(!i) <- cur.(v);
                incr i);
            isort nh 0 (deg - 1);
            Array.fold_left mix cur.(a) nh);
      colors := colors';
      k := k';
      if !k = n then stable := true
    end
  done;
  (* The partition is stable, but the content hashes still gain
     information: they now evolve along the quotient multigraph (how the
     stable classes are wired together, with multiplicities), which the
     census cannot see.  Up to [ncolors] extra hash-only rounds — cheap
     int folds, capped by the old pipeline's total of [n] rounds — keep
     the certificate as discriminating as the history-carrying hashed
     colors it replaced. *)
  let extra = max 0 (min 2 (n - !rounds)) in
  for _ = 1 to extra do
    let cur = !hs in
    hs :=
      Array.init n (fun a ->
          let deg = Gaifman.degree gf a in
          let nh = Array.make deg 0 in
          let i = ref 0 in
          Gaifman.iter_neighbors gf a (fun v ->
              nh.(!i) <- cur.(v);
              incr i);
          isort nh 0 (deg - 1);
          Array.fold_left mix cur.(a) nh)
  done;
  Obs.add c_refine_rounds !rounds;
  (!colors, !k, !hs)

let certificate_of g dist colors ncolors hs =
  let census = Array.make (max 1 ncolors) 0 in
  Array.iter (fun c -> census.(c) <- census.(c) + 1) colors;
  let h = ref (mix 0x811c9dc5 (Structure.size g)) in
  h := mix !h ncolors;
  Structure.fold_relations
    (fun name r () ->
      h := mix (mix !h (Hashtbl.hash name)) (Relation.cardinal r))
    g ();
  Array.iter (fun c -> h := mix !h c) census;
  (* the sorted content-hash multiset carries what the census forgets:
     which refinement histories the classes actually had *)
  let sorted_hs = Array.copy hs in
  Array.sort (fun (x : int) y -> compare x y) sorted_hs;
  Array.iter (fun v -> h := mix !h v) sorted_hs;
  h := mix_list !h (List.map (fun a -> colors.(a)) dist);
  h := mix_list !h (List.map (fun a -> hs.(a)) dist);
  !h

let prep ?gf g dist =
  let gf = match gf with Some gf -> gf | None -> Gaifman.of_structure g in
  let colors, ncolors, hs = refine_fixpoint gf (initial_colors g dist) in
  {
    g;
    dist;
    gf;
    colors;
    ncolors;
    hs;
    cert = certificate_of g dist colors ncolors hs;
  }

let certificate_of_prep p = p.cert

let certificate ?gf g dist = (prep ?gf g dist).cert

let isomorphic_prep pa pb =
  let ga = pa.g and gb = pb.g in
  let n = Structure.size ga in
  if
    n <> Structure.size gb
    || List.length pa.dist <> List.length pb.dist
    || pa.ncolors <> pb.ncolors
  then false
  else begin
    let ca = pa.colors and cb = pb.colors in
    let ha = pa.hs and hb = pb.hs in
    let census c =
      let t = Array.make (max 1 pa.ncolors) 0 in
      Array.iter (fun x -> t.(x) <- t.(x) + 1) c;
      t
    in
    let sorted h =
      let s = Array.copy h in
      Array.sort (fun (x : int) y -> compare x y) s;
      s
    in
    if census ca <> census cb || sorted ha <> sorted hb then false
    else begin
      let rel_names =
        Structure.fold_relations (fun name _ acc -> name :: acc) ga []
      in
      let sizes_ok =
        List.for_all
          (fun name ->
            Relation.cardinal (Structure.relation ga name)
            = Relation.cardinal (Structure.relation gb name))
          rel_names
      in
      if not sizes_ok then false
      else begin
        (* Forced images of distinguished elements; duplicates in [da] must
           repeat consistently in [db] and images must be distinct.  The
           reverse-image table makes the injectivity test O(1) per pair
           instead of a fold over everything forced so far. *)
        let forced = Hashtbl.create 8 in
        let forced_rev = Hashtbl.create 8 in
        let forced_ok =
          List.for_all2
            (fun a b ->
              match Hashtbl.find_opt forced a with
              | Some b' -> b = b'
              | None ->
                  if Hashtbl.mem forced_rev b then false
                  else begin
                    Hashtbl.add forced a b;
                    Hashtbl.add forced_rev b a;
                    true
                  end)
            pa.dist pb.dist
        in
        if not forced_ok then false
        else begin
          (* Tuples of A indexed by their highest-ordered element so we
             check a tuple exactly once, as soon as it becomes fully
             mapped. *)
          let map = Array.make n (-1) in
          let used = Array.make n false in
          let order = Array.make n (-1) in
          (* Order: distinguished first, then a BFS-ish sweep (over the
             precomputed Gaifman graph) to keep partial maps connected
             when possible. *)
          let pos = ref 0 in
          let placed = Array.make n false in
          List.iter
            (fun a ->
              if not placed.(a) then begin
                order.(!pos) <- a;
                placed.(a) <- true;
                incr pos
              end)
            pa.dist;
          let queue = Queue.create () in
          List.iter (fun a -> Queue.add a queue) pa.dist;
          while not (Queue.is_empty queue) do
            let u = Queue.pop queue in
            Gaifman.iter_neighbors pa.gf u (fun v ->
                if not placed.(v) then begin
                  order.(!pos) <- v;
                  placed.(v) <- true;
                  incr pos;
                  Queue.add v queue
                end)
          done;
          for a = 0 to n - 1 do
            if not placed.(a) then begin
              order.(!pos) <- a;
              placed.(a) <- true;
              incr pos
            end
          done;
          let order_ix = Array.make n (-1) in
          Array.iteri (fun i a -> order_ix.(a) <- i) order;
          (* tuples_at.(i): tuples of A whose latest element (in order) is
             order.(i), paired with their relation. *)
          let tuples_at = Array.make n [] in
          Structure.fold_relations
            (fun name r () ->
              Relation.iter
                (fun t ->
                  let last =
                    Array.fold_left (fun acc x -> max acc order_ix.(x)) (-1) t
                  in
                  tuples_at.(last) <- (name, t) :: tuples_at.(last))
                r)
            ga ();
          let rec extend i =
            if i = n then true
            else
              let a = order.(i) in
              let try_image b =
                (not used.(b))
                && ca.(a) = cb.(b)
                && ha.(a) = hb.(b)
                &&
                begin
                  map.(a) <- b;
                  used.(b) <- true;
                  let ok =
                    List.for_all
                      (fun (name, t) ->
                        let img = Array.map (fun x -> map.(x)) t in
                        Relation.mem img (Structure.relation gb name))
                      tuples_at.(i)
                  in
                  let ok = ok && extend (i + 1) in
                  if not ok then begin
                    map.(a) <- -1;
                    used.(b) <- false
                  end;
                  ok
                end
              in
              (* Unforced nodes scan candidate images 0..n-1 directly —
                 the same ascending order the old per-node
                 [Structure.universe] list gave, without allocating it
                 once per backtrack node. *)
              match Hashtbl.find_opt forced a with
              | Some b -> try_image b
              | None ->
                  let rec scan b = b < n && (try_image b || scan (b + 1)) in
                  scan 0
          in
          extend 0
        end
      end
    end
  end

let isomorphic ?gfa ?gfb ga da gb db =
  isomorphic_prep (prep ?gf:gfa ga da) (prep ?gf:gfb gb db)
