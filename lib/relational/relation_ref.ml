(* The pre-flat relation representation (balanced tree of boxed tuples),
   frozen verbatim as the equivalence reference for the columnar
   [Relation] (DESIGN.md 5.12) — the same pattern as [Neighborhood_ref].
   Every public operation of [Relation] that both modules share must
   agree observation-for-observation; test/test_flatcore.ml drives
   random op sequences through both. *)

type t = { arity : int; tuples : Tuple.Set.t }

let empty arity =
  if arity < 1 then invalid_arg "Relation.empty: arity < 1";
  { arity; tuples = Tuple.Set.empty }

let arity r = r.arity
let cardinal r = Tuple.Set.cardinal r.tuples
let is_empty r = Tuple.Set.is_empty r.tuples

let mem t r = Tuple.Set.mem t r.tuples

let add t r =
  if Tuple.arity t <> r.arity then invalid_arg "Relation.add: arity mismatch";
  { r with tuples = Tuple.Set.add t r.tuples }

let remove t r = { r with tuples = Tuple.Set.remove t r.tuples }

let of_list arity ts = List.fold_left (fun r t -> add t r) (empty arity) ts

let of_pairs ps = of_list 2 (List.map (fun (a, b) -> Tuple.pair a b) ps)

let to_list r = Tuple.Set.elements r.tuples

let iter f r = Tuple.Set.iter f r.tuples
let fold f r acc = Tuple.Set.fold f r.tuples acc
let filter p r = { r with tuples = Tuple.Set.filter p r.tuples }
let for_all p r = Tuple.Set.for_all p r.tuples
let exists p r = Tuple.Set.exists p r.tuples

let union a b =
  if a.arity <> b.arity then invalid_arg "Relation.union: arity mismatch";
  { a with tuples = Tuple.Set.union a.tuples b.tuples }

let equal a b = a.arity = b.arity && Tuple.Set.equal a.tuples b.tuples

let restrict keep r = filter (fun t -> Array.for_all keep t) r

let rename f r =
  fold (fun t acc -> add (Array.map f t) acc) r (empty r.arity)

let max_elt r = fold (fun t acc -> max acc (Tuple.max_elt t)) r (-1)

let pp fmt r =
  Format.fprintf fmt "{%s}"
    (String.concat "; " (List.map Tuple.to_string (to_list r)))
