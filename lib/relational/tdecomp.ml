(* Elimination-ordering tree decompositions over CSR Gaifman graphs.

   This is the engine behind both Treewidth (lib/cliquewidth, which
   wraps it over whole structures for the Theorem 4 tooling) and the
   bounded-width neighborhood-typing fast path (Neighborhood, DESIGN.md
   5.14), which runs it on per-sphere sub-Gaifman graphs.  It lives in
   wm_relational because Neighborhood cannot depend on wm_cliquewidth
   (the dependency points the other way).

   The heuristics are the classical elimination orderings: repeatedly
   pick a vertex (minimum degree, or minimum fill-in), make its
   neighborhood a clique, and drop it; the elimination cliques are the
   bags, glued in elimination order.  Always a valid decomposition; the
   width is an upper bound on the true tree-width, exact on chordal
   graphs.  Ties break to the lowest vertex id, so the decomposition is
   a deterministic function of the graph — the canonical-code machinery
   below relies on that. *)

module Iset = Set.Make (Int)

type t = {
  bags : int array array;
  edges : (int * int) list;
  step_of : int array;
  width : int;
}

type heuristic = Min_degree | Min_fill

let width t = t.width

(* Missing edges among the neighbors of [v] — the number of fill edges
   eliminating [v] would add. *)
let fill_count adj v =
  let nb = adj.(v) in
  let missing = ref 0 in
  Iset.iter
    (fun a ->
      Iset.iter
        (fun b -> if a < b && not (Iset.mem b adj.(a)) then incr missing)
        nb)
    nb;
  !missing

(* Shared tail: the bag of elimination step s attaches to the step of
   the earliest-eliminated remaining member of its bag; last bags of
   components attach to the final bag, so the bag graph is always one
   tree even on disconnected inputs (validated by the cliquewidth
   tests). *)
let glue_edges n bags step_of =
  let edges = ref [] in
  for s = 0 to n - 1 do
    let v = ref (-1) in
    Array.iter (fun u -> if step_of.(u) = s then v := u) bags.(s);
    if Array.length bags.(s) > 1 then begin
      let next = ref max_int in
      Array.iter (fun u -> if u <> !v then next := min !next step_of.(u)) bags.(s);
      edges := (s, !next) :: !edges
    end
    else if s < n - 1 then edges := (s, n - 1) :: !edges
  done;
  !edges

let capped cap =
  match cap with
  | Some c -> { bags = [||]; edges = []; step_of = [||]; width = c + 1 }
  | None -> assert false

(* Bitmask fast path for graphs that fit one machine word — every
   per-sphere probe of the neighborhood indexer lands here.  Same
   heuristic keys, same strict-< lowest-id tie-breaks, same bags (bit
   iteration is ascending), so the result is identical to the generic
   Iset path below. *)
let popcount x =
  let c = ref 0 and x = ref x in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr c
  done;
  !c

let eliminate_small ~heuristic ~cap adj n =
  let fill_small v =
    (* missing edges among neighbors: for each neighbor a, the higher
       neighbors of v that a misses *)
    let nb = adj.(v) in
    let missing = ref 0 in
    for a = 0 to n - 1 do
      if nb land (1 lsl a) <> 0 then
        missing :=
          !missing
          + popcount (nb land lnot adj.(a) land lnot ((1 lsl (a + 1)) - 1))
    done;
    !missing
  in
  let alive = ref ((1 lsl n) - 1) in
  let step_of = Array.make n (-1) in
  let bags = Array.make n [||] in
  let wid = ref 0 in
  let exceeded = ref false in
  let step = ref 0 in
  while (not !exceeded) && !step < n do
    let best = ref (-1) and bk1 = ref max_int and bk2 = ref max_int in
    for v = 0 to n - 1 do
      if !alive land (1 lsl v) <> 0 then begin
        let k1, k2 =
          match heuristic with
          | Min_degree -> (popcount adj.(v), 0)
          | Min_fill -> (fill_small v, popcount adj.(v))
        in
        if !best < 0 || k1 < !bk1 || (k1 = !bk1 && k2 < !bk2) then begin
          best := v;
          bk1 := k1;
          bk2 := k2
        end
      end
    done;
    let v = !best in
    let bag_width = popcount adj.(v) in
    wid := max !wid bag_width;
    match cap with
    | Some c when bag_width > c -> exceeded := true
    | _ ->
        step_of.(v) <- !step;
        let bagm = adj.(v) lor (1 lsl v) in
        let bag = Array.make (bag_width + 1) 0 in
        let i = ref 0 in
        for u = 0 to n - 1 do
          if bagm land (1 lsl u) <> 0 then begin
            bag.(!i) <- u;
            incr i
          end
        done;
        bags.(!step) <- bag;
        let nbv = adj.(v) in
        for a = 0 to n - 1 do
          if nbv land (1 lsl a) <> 0 then
            adj.(a) <- (adj.(a) lor nbv) land lnot ((1 lsl a) lor (1 lsl v))
        done;
        alive := !alive land lnot (1 lsl v);
        incr step
  done;
  if !exceeded then capped cap
  else { bags; edges = glue_edges n bags step_of; step_of; width = !wid }

let eliminate ?(heuristic = Min_degree) ?cap gf =
  (match cap with
  | Some c when c < 0 ->
      invalid_arg "Tdecomp.eliminate: cap must be nonnegative"
  | _ -> ());
  let n = Gaifman.size gf in
  if n <= 62 then begin
    let adj = Array.make n 0 in
    for v = 0 to n - 1 do
      Gaifman.iter_neighbors gf v (fun w -> adj.(v) <- adj.(v) lor (1 lsl w))
    done;
    eliminate_small ~heuristic ~cap adj n
  end
  else
  let adj =
    Array.init n (fun v ->
        let s = ref Iset.empty in
        Gaifman.iter_neighbors gf v (fun w -> s := Iset.add w !s);
        !s)
  in
  let alive = Array.make n true in
  let step_of = Array.make n (-1) in
  let bags = Array.make n [||] in
  let wid = ref 0 in
  let exceeded = ref false in
  let step = ref 0 in
  while (not !exceeded) && !step < n do
    (* minimum-key alive vertex; strict [<] keeps the lowest id on ties *)
    let best = ref (-1) and best_key = ref (max_int, max_int) in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let key =
          match heuristic with
          | Min_degree -> (Iset.cardinal adj.(v), 0)
          | Min_fill -> (fill_count adj v, Iset.cardinal adj.(v))
        in
        if !best < 0 || key < !best_key then begin
          best := v;
          best_key := key
        end
      end
    done;
    let v = !best in
    let bag_width = Iset.cardinal adj.(v) in
    (* = |bag| - 1 *)
    wid := max !wid bag_width;
    match cap with
    | Some c when bag_width > c ->
        (* Every remaining elimination bag would be at least this wide;
           the caller only needs to know the bound is exceeded. *)
        exceeded := true
    | _ ->
        step_of.(v) <- !step;
        bags.(!step) <- Array.of_list (Iset.elements (Iset.add v adj.(v)));
        (* make the neighborhood a clique, drop v *)
        Iset.iter
          (fun a ->
            Iset.iter
              (fun b -> if a <> b then adj.(a) <- Iset.add b adj.(a))
              adj.(v);
            adj.(a) <- Iset.remove v adj.(a))
          adj.(v);
        alive.(v) <- false;
        incr step
  done;
  if !exceeded then capped cap
  else { bags; edges = glue_edges n bags step_of; step_of; width = !wid }

let eliminate_masks ?(heuristic = Min_degree) ?cap adj =
  (match cap with
  | Some c when c < 0 ->
      invalid_arg "Tdecomp.eliminate_masks: cap must be nonnegative"
  | _ -> ());
  let n = Array.length adj in
  if n > 62 then
    invalid_arg "Tdecomp.eliminate_masks: more than 62 vertices";
  (* the elimination loop consumes the adjacency in place *)
  eliminate_small ~heuristic ~cap (Array.copy adj) n

let exceeded ~cap t = t.width > cap

(* --- canonical relabeling from a rooted decomposition ----------------

   Root the bag tree at the anchor vertex's own elimination bag, give
   every bag an AHU-style subtree code (bottom-up, children folded in
   sorted order), then walk the tree depth-first — children in code
   order, bag members in color order — assigning dense labels at first
   sight.  The resulting permutation is a deterministic function of
   (graph, colors, root); two isomorphic pointed spheres whose
   decompositions agree get relabelings under which they are literally
   equal, which is what lets the neighborhood indexer compare flat
   encodings instead of running isomorphism tests. *)

let canonical_labels t ~colors ~root =
  let n = Array.length t.step_of in
  if root < 0 || root >= n then
    invalid_arg "Tdecomp.canonical_labels: root vertex out of range";
  if Array.length colors <> n then
    invalid_arg "Tdecomp.canonical_labels: colors length mismatch";
  let nbags = Array.length t.bags in
  (* CSR bag adjacency — this runs once per typed tuple on the
     neighborhood fast path, so it is deliberately allocation-lean *)
  let deg = Array.make (nbags + 1) 0 in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= nbags || b < 0 || b >= nbags then
        invalid_arg "Tdecomp.canonical_labels: bag edge out of range";
      deg.(a + 1) <- deg.(a + 1) + 1;
      deg.(b + 1) <- deg.(b + 1) + 1)
    t.edges;
  for i = 0 to nbags - 1 do
    deg.(i + 1) <- deg.(i + 1) + deg.(i)
  done;
  let off = deg in
  let nbr = Array.make (max 1 off.(nbags)) 0 in
  let fill = Array.make nbags 0 in
  List.iter
    (fun (a, b) ->
      nbr.(off.(a) + fill.(a)) <- b;
      fill.(a) <- fill.(a) + 1;
      nbr.(off.(b) + fill.(b)) <- a;
      fill.(b) <- fill.(b) + 1)
    t.edges;
  let rb = t.step_of.(root) in
  (* preorder DFS over the bag tree *)
  let parent = Array.make nbags (-1) in
  let order = Array.make nbags (-1) in
  let stack = Array.make nbags 0 in
  let sp = ref 1 and cnt = ref 0 in
  stack.(0) <- rb;
  parent.(rb) <- rb;
  while !sp > 0 do
    decr sp;
    let b = stack.(!sp) in
    order.(!cnt) <- b;
    incr cnt;
    for i = off.(b) to off.(b + 1) - 1 do
      let c = nbr.(i) in
      if parent.(c) = -1 then begin
        parent.(c) <- b;
        stack.(!sp) <- c;
        incr sp
      end
    done
  done;
  parent.(rb) <- -1;
  if !cnt <> nbags then
    invalid_arg "Tdecomp.canonical_labels: bag graph is disconnected";
  (* children in CSR form, grouped by parent *)
  let coff = Array.make (nbags + 1) 0 in
  for b = 0 to nbags - 1 do
    if parent.(b) >= 0 then coff.(parent.(b) + 1) <- coff.(parent.(b) + 1) + 1
  done;
  for i = 0 to nbags - 1 do
    coff.(i + 1) <- coff.(i + 1) + coff.(i)
  done;
  let child = Array.make (max 1 (nbags - 1)) 0 in
  let cfill = Array.make nbags 0 in
  for b = 0 to nbags - 1 do
    let p = parent.(b) in
    if p >= 0 then begin
      child.(coff.(p) + cfill.(p)) <- b;
      cfill.(p) <- cfill.(p) + 1
    end
  done;
  (* bottom-up subtree codes: reverse preorder processes children first *)
  let code = Array.make nbags 0 in
  let scratch = Array.make (max 1 (nbags - 1)) 0 in
  for i = !cnt - 1 downto 0 do
    let b = order.(i) in
    let h = ref 0x811c9dc5 in
    h := Iso.mix !h (Array.length t.bags.(b));
    let cs = Array.map (fun v -> colors.(v)) t.bags.(b) in
    Array.sort (fun (a : int) b -> compare a b) cs;
    Array.iter (fun c -> h := Iso.mix !h c) cs;
    let nc = coff.(b + 1) - coff.(b) in
    for j = 0 to nc - 1 do
      scratch.(j) <- code.(child.(coff.(b) + j))
    done;
    let cks = Array.sub scratch 0 nc in
    Array.sort (fun (a : int) b -> compare a b) cks;
    Array.iter (fun ck -> h := Iso.mix !h ck) cks;
    code.(b) <- !h
  done;
  (* top-down labeling: bag members in color order, children in subtree-
     code order, dense labels at first sight *)
  let labels = Array.make n (-1) in
  let next = ref 0 in
  let rec visit b =
    let mem = Array.copy t.bags.(b) in
    Array.sort
      (fun u v ->
        let c = compare (colors.(u) : int) colors.(v) in
        if c <> 0 then c else compare (u : int) v)
      mem;
    Array.iter
      (fun v ->
        if labels.(v) = -1 then begin
          labels.(v) <- !next;
          incr next
        end)
      mem;
    let nc = coff.(b + 1) - coff.(b) in
    if nc > 0 then begin
      let cs = Array.sub child coff.(b) nc in
      Array.sort
        (fun a b ->
          let c = compare (code.(a) : int) code.(b) in
          if c <> 0 then c else compare (a : int) b)
        cs;
      Array.iter visit cs
    end
  in
  visit rb;
  labels
