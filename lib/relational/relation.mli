(** Finite relations: sets of equal-arity tuples.

    Flat-memory representation (DESIGN.md 5.12): the tuples live in one
    contiguous row-major int array in ascending order, with a small
    functional add/remove overlay folded back in once it grows past a
    fraction of the array.  [mem] is binary search; bulk builders and
    {!iter_flat} touch no per-tuple heap blocks.  All observable
    behavior matches the frozen {!Relation_ref}. *)

type t

val empty : int -> t
(** [empty arity] is the empty relation of the given arity. *)

val arity : t -> int
val cardinal : t -> int
val is_empty : t -> bool

val mem : Tuple.t -> t -> bool
val add : Tuple.t -> t -> t
(** @raise Invalid_argument if the tuple's arity differs. *)

val remove : Tuple.t -> t -> t

val of_list : int -> Tuple.t list -> t
(** Bulk build: one array fill, one sort, one dedup sweep — the load
    path for million-tuple relations. *)

val of_pairs : (int * int) list -> t
(** Convenience builder for binary relations. *)

val to_list : t -> Tuple.t list
(** Ascending tuple order. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Tuple.t -> bool) -> t -> t
val for_all : (Tuple.t -> bool) -> t -> bool
val exists : (Tuple.t -> bool) -> t -> bool

val union : t -> t -> t
val equal : t -> t -> bool

val restrict : (int -> bool) -> t -> t
(** [restrict keep r] keeps the tuples all of whose elements satisfy [keep]
    — the relation part of an induced substructure. *)

val rename : (int -> int) -> t -> t
(** Applies an element renaming to every tuple. *)

val max_elt : t -> int
(** Largest element mentioned, -1 if empty. *)

(** {1 Flat access}

    The zero-allocation face of the representation, used by the Gaifman
    builder, the refinement seed of {!Iso}, and every consumer that
    only reads cells. *)

val iter_flat : (int array -> int -> unit) -> t -> unit
(** [iter_flat f r] calls [f buf off] once per tuple in ascending order;
    the tuple occupies [buf.(off) .. buf.(off + arity r - 1)].  On a
    compacted value (any bulk-built relation) no per-tuple allocation
    happens; the buffer must not be mutated. *)

val flatten : t -> t
(** An overlay-free equivalent value — O(1) when already flat.  Useful
    before a long sequence of [mem]/[iter_flat] on a freshly edited
    relation. *)

val pp : Format.formatter -> t -> unit
