(** rho-neighborhoods and isomorphism types (Section 3).

    N_rho(c) is the substructure induced on the sphere S_rho(c), with the
    elements of the tuple c as distinguished constants.  Two tuples are
    ~rho-equivalent iff their neighborhoods are isomorphic; ntp(rho, G)
    counts the equivalence classes.  The local watermarking scheme picks one
    {e canonical parameter} per class (Theorem 3). *)

type nbh = {
  sub : Structure.t;  (** the induced substructure, renamed to 0..k-1 *)
  center : int list;  (** images of the tuple's elements in [sub] *)
  original : int array;  (** renaming: [original.(new_id) = old element] *)
}

val of_tuple : Structure.t -> Gaifman.t -> rho:int -> Tuple.t -> nbh
(** Materializes N_rho(c). *)

val equivalent :
  Structure.t -> Gaifman.t -> rho:int -> Tuple.t -> Tuple.t -> bool
(** The ~rho relation: isomorphism of the two neighborhoods. *)

type index = {
  rho : int;
  types : int Tuple.Map.t;  (** type id of every indexed tuple *)
  representatives : Tuple.t array;  (** representatives.(ty) has type ty *)
}
(** A computed type index over a set of tuples: type ids are dense in
    [0 .. ntp-1] and [representatives] realizes the paper's canonical
    parameter set S. *)

val index : ?jobs:int -> Structure.t -> rho:int -> Tuple.t list -> index
(** Types every listed tuple: pre-buckets by cheap invariants (sphere
    size, tuple count, degree multiset, center pattern) and by
    {!Iso.certificate}, then verifies with exact isomorphism inside each
    bucket.  Sphere extraction and in-bucket classification run on the
    {!Wm_par.Pool} when [jobs] (default {!Wm_par.Pool.jobs}) exceeds 1;
    the result — type ids included — is bit-identical to the sequential
    [jobs:1] fold for every job count. *)

val index_universe : ?jobs:int -> Structure.t -> rho:int -> arity:int -> index
(** Types all of U^arity. *)

val ntp : index -> int
(** Number of types = |S|. *)

val type_of : index -> Tuple.t -> int
(** @raise Not_found if the tuple was not indexed. *)

val all_tuples : Structure.t -> arity:int -> Tuple.t list
(** U^arity in lexicographic order (helper shared with the evaluator). *)
